// Chaos acceptance tests for the hardened service layer (ISSUE 8): a
// daemon whose store fails persistently degrades to read-only and
// recovers instead of crashing, and a client riding scripted
// connection drops produces output byte-identical to a fault-free run.
// go test -race runs all of it under the race detector.
package fem2_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	fem2 "repro"
	"repro/internal/fault"
)

// attachChaosMetrics opts a chaos test into live metrics emission when
// FEM2_METRICS is set to an interval (e.g. 50ms): CI runs the chaos
// suite with the emitter ticking hard to prove it neither flakes nor
// races the fault storms.  FEM2_METRICS_OUT appends the emitted lines
// to a file (each line is one Write, so concurrent emitters do not
// interleave); unset, the lines are generated and discarded.
func attachChaosMetrics(t *testing.T, sys *fem2.System) {
	t.Helper()
	spec := os.Getenv("FEM2_METRICS")
	if spec == "" {
		return
	}
	interval, err := time.ParseDuration(spec)
	if err != nil {
		t.Fatalf("FEM2_METRICS=%q: %v", spec, err)
	}
	w := io.Writer(io.Discard)
	if path := os.Getenv("FEM2_METRICS_OUT"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		w = f
	}
	em := fem2.NewMetricsEmitter(sys.Obs, fem2.MetricsEmitterOpts{Interval: interval, W: w})
	em.Start()
	t.Cleanup(em.Stop)
}

// TestChaosStoreDegradeAndRecover drives the full degradation arc over
// the wire: persistent injected write failures trip the guard, the
// daemon serves read-only (mutating verbs refuse with the degraded
// code, ping and version announce the state, reads keep answering),
// and once the weather clears a probe re-arms writes with nothing
// lost.
func TestChaosStoreDegradeAndRecover(t *testing.T) {
	in := fault.NewInjector(42,
		fault.Rule{Op: fault.OpPut, Fault: fault.Fault{Err: fault.ErrIO}},
		fault.Rule{Op: fault.OpBatch, Fault: fault.Fault{Err: fault.ErrIO}})
	in.Disarm() // start with clear skies
	sys, srv, addr, _ := startServer(t, fem2.ServerConfig{},
		fem2.WithStore(fem2.StoreConfig{Wrap: fault.WrapStore(in)}),
		fem2.WithStoreGuard(fem2.GuardOpts{ProbeInterval: -1})) // probe manually, deterministically
	attachChaosMetrics(t, sys)
	defer sys.Close()
	defer srv.Shutdown(context.Background())
	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Healthy phase: build and persist a model; health reads clean.
	remotePlate(t, cl, "wing", 6, 4)
	if _, err := cl.Do(ctx, fem2.StoreCommand{Model: "wing"}); err != nil {
		t.Fatalf("store under clear skies: %v", err)
	}
	if res, _ := cl.Do(ctx, fem2.PingCommand{}); res.String() != "pong" {
		t.Fatalf("healthy ping = %q", res)
	}

	// Storm: every store write fails.  The writes behind the store verb
	// trip the guard after its consecutive-failure threshold.
	in.Arm()
	for i := 0; i < 5 && !sys.Degraded(); i++ {
		if _, err := cl.Do(ctx, fem2.StoreCommand{Model: "wing"}); err == nil {
			t.Fatal("store verb succeeded under injected write failures")
		}
	}
	if !sys.Degraded() {
		t.Fatal("guard never degraded under persistent write failures")
	}

	// Degraded: health verbs announce it...
	if res, _ := cl.Do(ctx, fem2.PingCommand{}); res.String() != "pong (degraded)" {
		t.Errorf("degraded ping = %q, want %q", res, "pong (degraded)")
	}
	if res, _ := cl.Do(ctx, fem2.VersionCommand{}); !strings.Contains(res.String(), "degraded") {
		t.Errorf("degraded version = %q, want a degraded marker", res)
	}
	// ...mutating verbs refuse fast with the typed degraded error...
	if _, err := cl.Do(ctx, fem2.Define{Name: "blocked"}); !errors.Is(err, fem2.ErrStoreDegraded) {
		t.Errorf("mutating verb while degraded = %v, want ErrStoreDegraded", err)
	}
	if _, err := cl.Do(ctx, fem2.StoreCommand{Model: "wing"}); !errors.Is(err, fem2.ErrStoreDegraded) {
		t.Errorf("store verb while degraded = %v, want ErrStoreDegraded", err)
	}
	// ...and reads keep serving: the database still lists and retrieves
	// the model persisted before the storm.
	if res, err := cl.Do(ctx, fem2.ListCommand{What: fem2.ListDB}); err != nil || !strings.Contains(res.String(), "wing") {
		t.Errorf("db list while degraded = %q, %v", res, err)
	}
	if _, err := cl.Do(ctx, fem2.RetrieveCommand{Name: "wing"}); err != nil {
		t.Errorf("retrieve while degraded: %v", err)
	}
	// A fresh connection learns the state at handshake.
	cl2, err := fem2.Dial(addr, "eng2")
	if err != nil {
		t.Fatal(err)
	}
	if !cl2.Degraded() {
		t.Error("welcome on a degraded daemon did not announce it")
	}
	cl2.Close()

	// Recovery: the weather clears, the probe re-arms writes.
	in.Disarm()
	if !sys.Health.Probe() {
		t.Fatal("probe after disarm did not re-arm writes")
	}
	if sys.Degraded() {
		t.Fatal("still degraded after a successful probe")
	}
	if res, _ := cl.Do(ctx, fem2.PingCommand{}); res.String() != "pong" {
		t.Errorf("recovered ping = %q", res)
	}
	if _, err := cl.Do(ctx, fem2.StoreCommand{Model: "wing"}); err != nil {
		t.Errorf("store after recovery: %v", err)
	}
	if sys.Health.Trips() != 1 {
		t.Errorf("guard trips = %d, want 1", sys.Health.Trips())
	}
}

// chaosScript is the scripted workload both runs execute: a build and
// solve phase that completes before any fault fires, then a storm of
// idempotent global verbs across which the connection drops are
// scheduled.  Every line past the solve is replayable, so the chaos
// run's output must match the clean run's byte for byte.
const chaosScript = `generate grid wing 6 4 6 4 clamp-left
load wing tip endload 0 -100
submit solve wing tip
wait job-1
ping
ping
version
status job-1
jobs
wait job-1
ping
version
jobs
`

// TestChaosConnectionDropsByteIdentical runs the scripted workload
// twice against identical fresh daemons — once over clean TCP, once
// with connection 1 killed on an outbound frame and connection 2 cut
// mid-frame — and requires the two outputs to be byte-identical: the
// retry layer absorbs the weather without changing a single rendered
// line.
func TestChaosConnectionDropsByteIdentical(t *testing.T) {
	run := func(dialer func(string) (net.Conn, error)) (string, *fem2.Client) {
		sys, srv, addr, _ := startServer(t, fem2.ServerConfig{})
		attachChaosMetrics(t, sys)
		t.Cleanup(func() { srv.Shutdown(context.Background()); sys.Close() })
		cl, err := fem2.DialWithOptions(addr, "eng", fem2.ClientOptions{
			MaxRetries: 4, BaseBackoff: time.Millisecond, Seed: 11, Dialer: dialer})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		var out bytes.Buffer
		if err := cl.Run(context.Background(), strings.NewReader(chaosScript), &out, false); err != nil {
			t.Fatalf("scripted run: %v", err)
		}
		return out.String(), cl
	}

	want, ref := run(nil)
	if ref.Reconnects() != 0 {
		t.Fatalf("clean run reconnected %d times", ref.Reconnects())
	}

	// Conn 1 dies on its 7th outbound frame (the storm's second ping);
	// conn 2 is cut five bytes into its 3rd frame (the replayed storm
	// continues); conn 3 rides out the rest untouched.
	drop := fault.NewInjector(11, fault.Rule{
		Op: fault.OpWrite, After: 6, Count: 1, Fault: fault.Fault{Err: fault.ErrIO}})
	cut := fault.NewInjector(12, fault.Rule{
		Op: fault.OpWrite, After: 2, Count: 1, Fault: fault.Fault{Err: fault.ErrIO, Partial: 5}})
	dialer := fault.Dialer(func(n int) *fault.Injector {
		switch n {
		case 1:
			return drop
		case 2:
			return cut
		}
		return nil
	})
	got, chaos := run(dialer)

	if chaos.Reconnects() != 2 {
		t.Errorf("chaos run reconnects = %d, want 2", chaos.Reconnects())
	}
	if drop.Injected() == 0 || cut.Injected() == 0 {
		t.Errorf("faults fired = %d, %d — the storm never hit", drop.Injected(), cut.Injected())
	}
	if got != want {
		t.Errorf("chaos output diverged from the fault-free run:\n--- clean ---\n%s--- chaos ---\n%s", want, got)
	}
	if !strings.Contains(want, "pong") || !strings.Contains(want, "job-1") {
		t.Fatalf("reference output suspiciously empty:\n%s", want)
	}
}

// TestChaosRequestTimeoutExemptsSubmit pins the submit exemption from
// the server-side request timeout: a queued job inherits the
// submitting request's context, so if the timeout bounded submit, its
// deadline would cancel the job the moment the submit answered.  The
// wait must return the solve result, not "cancelled".
func TestChaosRequestTimeoutExemptsSubmit(t *testing.T) {
	sys, srv, addr, _ := startServer(t, fem2.ServerConfig{RequestTimeout: 250 * time.Millisecond})
	attachChaosMetrics(t, sys)
	defer sys.Close()
	defer srv.Shutdown(context.Background())
	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	remotePlate(t, cl, "beam", 6, 4)
	id, out, err := submitAndWait(cl, "beam")
	if err != nil {
		t.Fatalf("submit→wait under -request-timeout: %v", err)
	}
	if !strings.Contains(out, "solved") && !strings.Contains(out, "beam") {
		t.Fatalf("job-%d result = %q", id, out)
	}
	// The timeout itself still works on non-exempt verbs: give the job
	// long enough to have finished, then confirm a plain ping answers.
	if res, err := cl.Do(context.Background(), fem2.PingCommand{}); err != nil || res.String() != "pong" {
		t.Fatalf("ping after timed submit: %v %v", res, err)
	}
}
