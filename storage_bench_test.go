// Storage benchmarks: the perf trajectory of the durable KV layer.
// BenchmarkStorePutWriteThrough times one write-through put at the
// store surface, BenchmarkStoreColdOpen times a full system open +
// database recovery against store size, and
// BenchmarkStoreSnapshotRoundTrip times the snapshot/restore verbs.
// scripts/bench.sh writes the results to BENCH_store.json.
package fem2_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	fem2 "repro"
)

// benchFileSystem opens a file-backed system for benchmarking.
func benchFileSystem(b *testing.B, path string) *fem2.System {
	b.Helper()
	sys, err := fem2.New(fileStoreOpts(path))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkStorePutWriteThrough times one 1 KiB put through the
// write-through cache onto the append-only file backend — the
// per-record latency every database store and journal write pays.
func BenchmarkStorePutWriteThrough(b *testing.B) {
	sys := benchFileSystem(b, filepath.Join(b.TempDir(), "bench.db"))
	defer sys.Close()
	value := bytes.Repeat([]byte{0xAB}, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Store.Put(fmt.Sprintf("m:bench-%08d", i), value); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreColdOpen times a cold start against store size: open
// the store file, replay the log, recover the model database, and
// attach the job journal, for increasing stored-model counts.
func BenchmarkStoreColdOpen(b *testing.B) {
	for _, models := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("models-%d", models), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.db")
			sys := benchFileSystem(b, path)
			s := sys.Session("bench")
			for i := 0; i < models; i++ {
				name := fmt.Sprintf("m%02d", i)
				mustBench(b, s, fmt.Sprintf("generate grid %s 6 4 6 4 clamp-left", name))
				mustBench(b, s, "store "+name)
			}
			sys.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := fem2.New(fileStoreOpts(path))
				if err != nil {
					b.Fatal(err)
				}
				sys.Close()
			}
		})
	}
}

// BenchmarkStoreSnapshotRoundTrip times one snapshot of a solved
// workspace plus its restore into another session.
func BenchmarkStoreSnapshotRoundTrip(b *testing.B) {
	dir := b.TempDir()
	sys, err := fem2.New()
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session("bench")
	mustBench(b, s, "generate grid plate 12 8 12 8 clamp-left")
	mustBench(b, s, "load plate tip endload 0 -250")
	mustBench(b, s, "solve plate tip")
	mustBench(b, s, "stresses plate")
	fresh := sys.Session("fresh")
	path := filepath.Join(dir, "bench.snap")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustBench(b, s, "snapshot "+path)
		mustBench(b, fresh, "restore "+path)
	}
}

// BenchmarkStoreKillRecovery measures the robustness headline number:
// SIGKILL-to-serving time.  A file-backed daemon is seeded with stored
// models and job history and killed; each iteration then starts a
// fresh daemon on that store and times process start + log replay +
// recovery until a network ping answers.  ns/op is the full outage
// window a supervisor restart incurs.
func BenchmarkStoreKillRecovery(b *testing.B) {
	dir := b.TempDir()
	bin := buildFem2d(b, dir)
	storePath := filepath.Join(dir, "fem2.db")

	// Seed: persist models and a solved job, then die hard mid-life so
	// every recovery replays a log a real crash would leave.
	daemon, addr := startDaemon(b, bin, storePath)
	cl, err := fem2.Dial(addr, "seed")
	if err != nil {
		daemon.Process.Kill()
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("m%02d", i)
		for _, line := range []string{
			fmt.Sprintf("generate grid %s 6 4 6 4 clamp-left", name),
			fmt.Sprintf("load %s tip endload 0 -100", name),
			"store " + name,
		} {
			if _, err := cl.Execute(ctx, line); err != nil {
				b.Fatalf("seeding %q: %v", line, err)
			}
		}
	}
	if _, err := cl.Execute(ctx, "submit solve m00 tip"); err != nil {
		b.Fatal(err)
	}
	if _, err := cl.Execute(ctx, "wait job-1"); err != nil {
		b.Fatal(err)
	}
	cl.Close()
	daemon.Process.Kill()
	daemon.Wait()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, addr := startDaemon(b, bin, storePath)
		cl, err := fem2.Dial(addr, "bench")
		if err != nil {
			d.Process.Kill()
			b.Fatal(err)
		}
		if res, err := cl.Do(ctx, fem2.PingCommand{}); err != nil || res.String() != "pong" {
			b.Fatalf("recovered daemon ping = %v, %v", res, err)
		}
		b.StopTimer()
		cl.Close()
		d.Process.Kill()
		d.Wait()
		b.StartTimer()
	}
}

// mustBench runs one command line, failing the benchmark on error.
func mustBench(b *testing.B, s *fem2.Session, line string) {
	b.Helper()
	if _, err := s.Execute(line); err != nil {
		b.Fatalf("command %q: %v", line, err)
	}
}
