// Acceptance tests for ISSUE 9's observability subsystem: server-side
// counters move when a scripted wire session drives the daemon, the
// stats verb renders identically over the wire and locally, and the
// instrumented hot paths (job dispatch, warm direct solve) stay within
// a few percent of their uninstrumented cost.  CI runs the server test
// under -race.
package fem2_test

import (
	"context"
	"strings"
	"testing"

	fem2 "repro"
	"repro/internal/command"
	"repro/internal/job"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// statVal finds a named entry in a stats table, -1 when absent.
func statVal(entries []fem2.StatEntry, name string) int64 {
	for _, e := range entries {
		if e.Name == name {
			return e.Value
		}
	}
	return -1
}

// statHist finds a named histogram in a stats result, nil when absent.
func statHist(hists []fem2.StatHistogram, name string) *fem2.StatHistogram {
	for i := range hists {
		if hists[i].Name == name {
			return &hists[i]
		}
	}
	return nil
}

// TestServerCountersMoveOverWire drives a scripted wire session —
// ping, model build, an asynchronous solve — and then asks the server
// for its stats over the same connection: the frame counters, job
// counters, connection gauge, and per-verb latency histograms must all
// have moved, and the stats rendering must survive a wire round trip
// byte-identically.
func TestServerCountersMoveOverWire(t *testing.T) {
	sys, srv, addr, _ := startServer(t, fem2.ServerConfig{})
	defer srv.Shutdown(context.Background())
	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if _, err := cl.Do(ctx, fem2.PingCommand{}); err != nil {
		t.Fatal(err)
	}
	remotePlate(t, cl, "plate", 8, 4)
	if _, _, err := submitAndWait(cl, "plate"); err != nil {
		t.Fatal(err)
	}

	res, err := cl.Do(ctx, fem2.StatsCommand{})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := res.(*fem2.StatsResult)
	if !ok {
		t.Fatalf("stats answered %T, want *StatsResult", res)
	}

	for _, c := range []struct {
		name string
		min  int64
	}{
		{obs.ServerFramesIn, 5},  // hello + ping + 2 builds + submit + wait + stats
		{obs.ServerFramesOut, 5}, // their responses
		{obs.JobSubmitted, 1},
		{obs.JobDone, 1},
	} {
		if got := statVal(sr.Counters, c.name); got < c.min {
			t.Errorf("counter %s = %d, want >= %d", c.name, got, c.min)
		}
	}
	if got := statVal(sr.Gauges, obs.ServerConnections); got < 1 {
		t.Errorf("gauge %s = %d, want >= 1 (this connection)", obs.ServerConnections, got)
	}
	if h := statHist(sr.Histograms, obs.ServerRequestPrefix+"ping"); h == nil || h.Count < 1 {
		t.Errorf("histogram %sping missing or empty: %+v", obs.ServerRequestPrefix, h)
	}
	if h := statHist(sr.Histograms, obs.JobLatencyPrefix+"solve"); h == nil || h.Count < 1 {
		t.Errorf("histogram %ssolve missing or empty: %+v", obs.JobLatencyPrefix, h)
	}

	// The rendering a REPL would print must survive the codec untouched
	// — the "byte-identical over the wire" guarantee for the new verb.
	data, err := fem2.MarshalResult(sr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fem2.UnmarshalResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != sr.String() {
		t.Errorf("stats rendering diverged across the codec:\n%q\nvs\n%q", back.String(), sr.String())
	}

	// The server-side snapshot agrees the work happened.
	snap := sys.StatsSnapshot()
	if snap.Counter(obs.JobDone) < 1 {
		t.Errorf("local snapshot job.done = %d, want >= 1", snap.Counter(obs.JobDone))
	}
	if snap.Counter(obs.ServerFramesIn) < statVal(sr.Counters, obs.ServerFramesIn) {
		t.Errorf("local snapshot frames_in went backwards: %d < %d",
			snap.Counter(obs.ServerFramesIn), statVal(sr.Counters, obs.ServerFramesIn))
	}
}

// TestStatsAnswersLocally pins the local path: a plain session answers
// the stats verb from its system's registry, counting its own jobs.
func TestStatsAnswersLocally(t *testing.T) {
	sys, err := fem2.New()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session("eng")
	for _, line := range []string{
		"generate grid g 6 4 6 4 clamp-left",
		"load g tip endload 0 -100",
		"solve g tip",
	} {
		if _, err := s.Execute(line); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Execute("stats")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Do(context.Background(), fem2.StatsCommand{})
	if err != nil {
		t.Fatal(err)
	}
	sr := res.(*fem2.StatsResult)
	if got := statVal(sr.Counters, obs.FactorMisses); got < 1 {
		t.Errorf("factor.misses = %d, want >= 1 after a cold solve", got)
	}
	// The per-backend solve histogram names the backend that actually
	// ran, not the requested "auto".
	var perBackend *fem2.StatHistogram
	for i := range sr.Histograms {
		if strings.HasPrefix(sr.Histograms[i].Name, obs.JobLatencySolvePrefix) {
			perBackend = &sr.Histograms[i]
		}
	}
	if perBackend == nil {
		t.Errorf("no %s<backend> histogram after a solve", obs.JobLatencySolvePrefix)
	} else {
		if perBackend.Count < 1 {
			t.Errorf("%s count = %d, want >= 1", perBackend.Name, perBackend.Count)
		}
		if backend := strings.TrimPrefix(perBackend.Name, obs.JobLatencySolvePrefix); backend == "" || backend == "auto" {
			t.Errorf("per-backend histogram named %q; want the concrete backend", perBackend.Name)
		}
	}
	if out == "" {
		t.Error("stats rendered empty")
	}
}

// pingExec is the cheapest possible Executor: the benchmark measures
// the scheduler's dispatch machinery, not the command.
type pingExec struct{}

func (pingExec) Do(ctx context.Context, cmd command.Command) (command.Result, error) {
	return &command.PingResult{}, nil
}

// BenchmarkObsOverhead pins the cost of instrumentation on the two hot
// paths the metrics ride.  Each pair runs the identical workload with
// the obs registry absent (nil no-op sinks) and present; the committed
// BENCH_obs.json carries the before/after and docs/observability.md
// quotes the measured overhead.
func BenchmarkObsOverhead(b *testing.B) {
	runDispatch := func(b *testing.B, instrumented bool) {
		s := job.NewScheduler(1, nil)
		defer s.Close()
		if instrumented {
			s.SetObs(obs.New())
		}
		ctx := context.Background()
		ex := pingExec{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id, err := s.Submit(ctx, "bench", ex, command.Ping{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Wait(ctx, id); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("dispatch/bare", func(b *testing.B) { runDispatch(b, false) })
	b.Run("dispatch/instrumented", func(b *testing.B) { runDispatch(b, true) })

	runWarm := func(b *testing.B, instrumented bool) {
		k, rhs := benchSystem(b, 16)
		fc := &linalg.FactorCache{}
		if instrumented {
			reg := obs.New()
			fc.Instrument(reg.Counter(obs.FactorHits), reg.Counter(obs.FactorMisses),
				reg.Counter(obs.FactorRefactors))
		}
		// Prime the cache so every measured solve is the warm path.
		if _, _, err := fc.SolveCached(linalg.BackendCholeskyRCM, k, rhs, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fc.SolveCached(linalg.BackendCholeskyRCM, k, rhs, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("warmsolve/bare", func(b *testing.B) { runWarm(b, false) })
	b.Run("warmsolve/instrumented", func(b *testing.B) { runWarm(b, true) })
}
