// Acceptance test for the high-availability cluster: two fem2d daemons
// share one store file through the lease protocol, the leader is
// SIGKILLed mid-workload, and a multi-endpoint client rides the
// failover transparently — the scripted output is byte-identical to a
// run that never lost a daemon, and no terminal job record is lost.
// go test -race runs all of it under the race detector.
package fem2_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	fem2 "repro"
	"repro/internal/cluster"
)

// waitServing blocks until the daemon logs its serving line (then
// keeps draining stderr so the process never blocks on it).
func waitServing(t testing.TB, cmd *exec.Cmd, stderr io.ReadCloser) {
	t.Helper()
	servingRe := regexp.MustCompile(`serving FEM-2 .* on `)
	up := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stderr)
		notified := false
		for sc.Scan() {
			if !notified && servingRe.MatchString(sc.Text()) {
				close(up)
				notified = true
			}
		}
	}()
	select {
	case <-up:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("clustered fem2d never reported its address")
	}
}

// pickAddr reserves a loopback address the daemon can bind shortly
// after: clustered daemons must know their own address up front (it
// goes into the lease record), so the dynamic-port trick from the
// other e2e tests does not apply.
func pickAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startClusterDaemon launches fem2d as a cluster member on addr over
// the shared store file and waits for its serving line.
func startClusterDaemon(t testing.TB, bin, storePath, addr string, ttl time.Duration) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-advertise", addr, "-workers", "1",
		"-store", "file", "-store-path", storePath, "-lease-ttl", ttl.String())
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitServing(t, cmd, stderr)
	return cmd
}

// clusterScript is the workload whose rendered output must not depend
// on whether a failover happened mid-run.
var clusterScript = []string{
	"generate grid plate 6 4 6 4 clamp-left",
	"load plate tip endload 0 -250",
	"store plate",
}

// TestClusterFailover is the headline acceptance test: kill the leader
// with SIGKILL mid-workload and the surviving follower takes over the
// lease, replays the journal, and serves the rest of the script with
// byte-identical output.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemons")
	}
	dir := t.TempDir()
	bin := buildFem2d(t, dir)
	ctx := context.Background()

	// Control: the same script against a lone daemon that never dies.
	soloStore := filepath.Join(dir, "solo.db")
	solo, soloAddr := startDaemon(t, bin, soloStore)
	defer func() {
		solo.Process.Signal(syscall.SIGTERM)
		solo.Wait()
	}()
	soloCl, err := fem2.Dial(soloAddr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range clusterScript {
		mustRemote(t, soloCl, line)
	}
	wantSolve := mustRemote(t, soloCl, "solve plate tip")
	soloCl.Close()

	// The cluster: two daemons over one store file.  The first to start
	// founds the cluster and is leader.
	storePath := filepath.Join(dir, "fem2.db")
	ttl := 500 * time.Millisecond
	addrA, addrB := pickAddr(t), pickAddr(t)
	daemonA := startClusterDaemon(t, bin, storePath, addrA, ttl)
	killedA := false
	defer func() {
		if !killedA {
			daemonA.Process.Kill()
			daemonA.Wait()
		}
	}()
	daemonB := startClusterDaemon(t, bin, storePath, addrB, ttl)
	defer func() {
		daemonB.Process.Signal(syscall.SIGTERM)
		daemonB.Wait()
	}()

	// A follower serves reads and refuses writes with a redirect.  A
	// no-retry client surfaces the refusal as a not-leader error.
	direct, err := fem2.Dial(addrB, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if got := direct.Role(); got != "follower" {
		t.Errorf("second daemon's role = %q, want follower", got)
	}
	if got := direct.Leader(); got != addrA {
		t.Errorf("follower advertises leader %q, want %q", got, addrA)
	}
	if _, err := direct.Execute(ctx, "list db"); err != nil {
		t.Errorf("read on follower refused: %v", err)
	}
	_, err = direct.Execute(ctx, "generate grid x 2 2 1 1 clamp-left")
	if !errors.Is(err, cluster.ErrNotLeader) {
		t.Errorf("write on follower = %v, want not-leader", err)
	}
	direct.Close()

	// The real client: both endpoints, retries on — it dials the
	// leader, and later follows the failover on its own.
	cl, err := fem2.DialWithOptions(addrA+","+addrB, "eng", fem2.ClientOptions{
		MaxRetries: 10, BaseBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.Role(); got != "leader" {
		t.Fatalf("client connected to a %q; first endpoint should lead", got)
	}
	for _, line := range clusterScript {
		mustRemote(t, cl, line)
	}
	preSolve := mustRemote(t, cl, "solve plate tip")
	if preSolve != wantSolve {
		t.Fatalf("clustered solve diverged before any failover:\n got: %q\nwant: %q", preSolve, wantSolve)
	}
	// One async job run to completion: its terminal record must survive
	// the failover via the shared journal.
	res, err := cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: "plate", Set: "tip"}})
	if err != nil {
		t.Fatal(err)
	}
	jobID := res.(*fem2.SubmitResult).ID
	if _, err := cl.Do(ctx, fem2.WaitCommand{ID: jobID}); err != nil {
		t.Fatal(err)
	}

	// kill -9 the leader mid-session: no drain, no lease release.  The
	// follower must take over within about one TTL.
	if err := daemonA.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemonA.Wait()
	killedA = true

	// First contact after the kill is a replayable verb: the client
	// notices the dead link here and fails over to the survivor.
	if _, err := cl.Do(ctx, fem2.PingCommand{}); err != nil {
		t.Fatalf("ping across the failover: %v", err)
	}
	// Each redirect opens a fresh session, so workspace state set before
	// the survivor promotes would be lost to the next bounce.  Land a
	// write first: once one succeeds, the session sits on the new leader
	// and stays put.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cl.Execute(ctx, "generate grid warmup 2 2 1 1 clamp-left"); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("no write ever landed on the survivor: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Promotion sealed the log and refreshed the survivor's view, so the
	// stored model is there; the rest of the script runs on one session.
	mustRemote(t, cl, "retrieve plate")
	postSolve := mustRemote(t, cl, "solve plate tip")
	if postSolve != wantSolve {
		t.Errorf("solve after failover diverged:\n got: %q\nwant: %q", postSolve, wantSolve)
	}
	if cl.Failovers() == 0 {
		t.Error("client reports zero failovers after the leader died")
	}
	if got := cl.Role(); got != "leader" {
		t.Errorf("client's serving daemon role = %q, want leader (survivor promoted)", got)
	}

	// The pre-kill job's terminal record came through the takeover.
	out := mustRemote(t, cl, fmt.Sprintf("status job-%d", jobID))
	if !strings.Contains(out, "done") {
		t.Errorf("terminal job record lost across failover: %q", out)
	}
	if out := mustRemote(t, cl, "list db"); !strings.Contains(out, "plate") {
		t.Errorf("stored model lost across failover: %q", out)
	}
}

// TestClusterGracefulHandover pins the cheap path: a SIGTERMed leader
// releases its lease on the way out, so the follower takes over
// without waiting out the TTL.
func TestClusterGracefulHandover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and stops real daemons")
	}
	dir := t.TempDir()
	bin := buildFem2d(t, dir)
	storePath := filepath.Join(dir, "fem2.db")
	// A deliberately long TTL: if takeover waited for expiry, the test
	// would time out — a prompt promotion proves the release happened.
	ttl := 30 * time.Second
	addrA, addrB := pickAddr(t), pickAddr(t)
	daemonA := startClusterDaemon(t, bin, storePath, addrA, ttl)
	daemonB := startClusterDaemon(t, bin, storePath, addrB, ttl)
	defer func() {
		daemonB.Process.Signal(syscall.SIGTERM)
		daemonB.Wait()
	}()

	daemonA.Process.Signal(syscall.SIGTERM)
	daemonA.Wait()

	deadline := time.Now().Add(15 * time.Second)
	for {
		cl, err := fem2.Dial(addrB, "probe")
		if err == nil {
			role := cl.Role()
			cl.Close()
			if role == "leader" {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never promoted after the leader's graceful exit")
		}
		time.Sleep(100 * time.Millisecond)
	}
}
