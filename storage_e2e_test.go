// Acceptance tests for the durable storage layer: a file-backed system
// serves its stored models, solution history, and complete terminal
// job history across a restart; a daemon killed with SIGKILL
// mid-workload recovers with in-flight jobs deterministically failed;
// and snapshot/restore round-trips a workspace byte-identically, both
// locally and over the wire.  go test -race runs all of it under the
// race detector.
package fem2_test

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	fem2 "repro"
)

// fileStoreOpts selects the file backend at path for fem2.New.
func fileStoreOpts(path string) fem2.Option {
	return fem2.WithStore(fem2.StoreConfig{Backend: fem2.StoreFile, Path: path})
}

// TestSystemSurvivesRestart pins the in-process restart story: models
// stored in the database and terminal job records all come back when a
// new system opens the same store file.
func TestSystemSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fem2.db")
	ctx := context.Background()

	sys, err := fem2.New(fem2.WithWorkers(2), fileStoreOpts(path))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Session("eng")
	mustExecute(t, s, "generate grid plate 6 4 6 4 clamp-left")
	mustExecute(t, s, "load plate tip endload 0 -250")
	solveOut := mustExecute(t, s, "solve plate tip")
	mustExecute(t, s, "store plate")
	id, err := s.SubmitAsync(ctx, fem2.SolveCommand{Model: "plate", Set: "tip"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Jobs.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	sys2, err := fem2.New(fem2.WithWorkers(2), fileStoreOpts(path))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer sys2.Close()
	if got := sys2.StorageBackend(); got != "file" {
		t.Errorf("StorageBackend = %q, want file", got)
	}
	s2 := sys2.Session("eng")
	if out := mustExecute(t, s2, "list db"); !strings.Contains(out, "plate") {
		t.Errorf("list db after restart = %q", out)
	}
	mustExecute(t, s2, "retrieve plate")
	if out := mustExecute(t, s2, "solve plate tip"); out != solveOut {
		t.Errorf("solve on recovered model = %q, want %q", out, solveOut)
	}
	snap, err := sys2.Jobs.Status(id)
	if err != nil {
		t.Fatalf("job history lost across restart: %v", err)
	}
	if snap.State != fem2.JobDone || snap.Model != "plate" {
		t.Errorf("recovered job = %+v", snap)
	}
	if out := mustExecute(t, s2, "jobs"); !strings.Contains(out, "done") {
		t.Errorf("jobs after restart = %q", out)
	}
}

// mustExecute runs one command line on a local session.
func mustExecute(t *testing.T, s *fem2.Session, line string) string {
	t.Helper()
	out, err := s.Execute(line)
	if err != nil {
		t.Fatalf("command %q: %v", line, err)
	}
	return out
}

// buildFem2d compiles the daemon into dir and returns the binary path.
func buildFem2d(t testing.TB, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "fem2d")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/fem2d")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building fem2d: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches fem2d on a loopback port with the given store
// file, parses the bound address from its log, and returns the process
// and address.
func startDaemon(t testing.TB, bin, storePath string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1",
		"-store", "file", "-store-path", storePath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrRe := regexp.MustCompile(`serving FEM-2 .* on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		// Drain the rest so the daemon never blocks on stderr.
		for sc.Scan() {
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("fem2d never reported its address")
		return nil, ""
	}
}

// TestDaemonKillRecovery is the kill-and-restart acceptance test: a
// fem2d daemon on a file store is SIGKILLed mid-workload; its restart
// serves every stored model and the job history, with the job that was
// in flight at the kill deterministically failed as lost to restart.
func TestDaemonKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	dir := t.TempDir()
	bin := buildFem2d(t, dir)
	storePath := filepath.Join(dir, "fem2.db")
	ctx := context.Background()

	daemon, addr := startDaemon(t, bin, storePath)
	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		daemon.Process.Kill()
		t.Fatal(err)
	}
	mustRemote(t, cl, "generate grid plate 6 4 6 4 clamp-left")
	mustRemote(t, cl, "load plate tip endload 0 -250")
	mustRemote(t, cl, "store plate")
	mustRemote(t, cl, "generate grid big 64 64 64 64 clamp-left")
	mustRemote(t, cl, "load big heavy endload 0 -1000")
	// Two heavy solves on one worker: the first occupies it, so the
	// second is still queued (non-terminal) whenever the kill lands.
	if _, err := cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: "big", Set: "heavy"}}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: "plate", Set: "tip"}})
	if err != nil {
		t.Fatal(err)
	}
	lostID := res.(*fem2.SubmitResult).ID

	// kill -9: no drain, no flush — the crash the journal exists for.
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()
	cl.Close()

	daemon2, addr2 := startDaemon(t, bin, storePath)
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		daemon2.Wait()
	}()
	cl2, err := fem2.Dial(addr2, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if got := cl2.Storage(); got != "file" {
		t.Errorf("restarted daemon storage = %q, want file", got)
	}
	if out := mustRemote(t, cl2, "list db"); !strings.Contains(out, "plate") {
		t.Errorf("list db after kill = %q", out)
	}
	mustRemote(t, cl2, "retrieve plate")
	if out := mustRemote(t, cl2, "solve plate tip"); !strings.Contains(out, "plate") {
		t.Errorf("solve on recovered model = %q", out)
	}
	out := mustRemote(t, cl2, fmt.Sprintf("status job-%d", lostID))
	wantErr := fmt.Sprintf("job-%d lost to restart", lostID)
	if !strings.Contains(out, "failed") || !strings.Contains(out, wantErr) {
		t.Errorf("status of in-flight job after kill = %q, want failed %q", out, wantErr)
	}
}

// mustRemote runs one command line over the wire.
func mustRemote(t *testing.T, cl *fem2.Client, line string) string {
	t.Helper()
	out, err := cl.Execute(context.Background(), line)
	if err != nil {
		t.Fatalf("remote command %q: %v", line, err)
	}
	return out
}

// storageScript drives one session (local or remote) through the
// workload the snapshot acceptance test compares across transports.
var storageScript = []string{
	"material 200000 0.3 10 2000",
	"generate grid plate 6 4 6 4 clamp-left",
	"load plate tip endload 0 -250",
	"solve plate tip",
	"stresses plate",
}

// storageRenders is the follow-up script whose renderings must be
// byte-identical after a restore.
var storageRenders = []string{
	"display model plate",
	"display displacements plate",
	"display stresses plate",
	"list workspace",
}

// TestSnapshotRestoreOverWire pins the acceptance criterion: the same
// script snapshot on a local session and through a fem2d daemon
// restores into fresh sessions that render byte-identical results.
func TestSnapshotRestoreOverWire(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Local: run the script, snapshot, restore into a fresh session.
	sysA, err := fem2.New()
	if err != nil {
		t.Fatal(err)
	}
	defer sysA.Close()
	local := sysA.Session("eng")
	for _, line := range storageScript {
		mustExecute(t, local, line)
	}
	localSnap := filepath.Join(dir, "local.snap")
	mustExecute(t, local, "snapshot "+localSnap)

	// Remote: identical script through a daemon; snapshot writes
	// server-side, which is this machine.
	_, srv, addr, _ := startServer(t, fem2.ServerConfig{})
	defer srv.Shutdown(context.Background())
	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, line := range storageScript {
		mustRemote(t, cl, line)
	}
	wireSnap := filepath.Join(dir, "wire.snap")
	out, err := cl.Execute(ctx, "snapshot "+wireSnap)
	if err != nil {
		t.Fatal(err)
	}
	localOut := mustExecute(t, local, "snapshot "+filepath.Join(dir, "again.snap"))
	if strings.ReplaceAll(out, wireSnap, "X") != strings.ReplaceAll(localOut, filepath.Join(dir, "again.snap"), "X") {
		t.Errorf("snapshot renderings diverged: %q vs %q", out, localOut)
	}
	if fi, err := os.Stat(wireSnap); err != nil || fi.Size() == 0 {
		t.Fatalf("wire snapshot file: %v", err)
	}

	// Both snapshots restore into fresh sessions that render the same
	// bytes — and match the originating session.
	want := renderAll(t, local)
	for name, snap := range map[string]string{"local": localSnap, "wire": wireSnap} {
		sysB, err := fem2.New()
		if err != nil {
			t.Fatal(err)
		}
		fresh := sysB.Session("fresh")
		mustExecute(t, fresh, "restore "+snap)
		if got := renderAll(t, fresh); got != want {
			t.Errorf("%s snapshot restore diverged:\n got: %q\nwant: %q", name, got, want)
		}
		sysB.Close()
	}

	// Restore also round-trips over the wire into a fresh daemon.
	_, srv2, addr2, _ := startServer(t, fem2.ServerConfig{})
	defer srv2.Shutdown(context.Background())
	cl2, err := fem2.Dial(addr2, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	mustRemote(t, cl2, "restore "+wireSnap)
	var got []string
	for _, line := range storageRenders {
		got = append(got, mustRemote(t, cl2, line))
	}
	if strings.Join(got, "\n") != want {
		t.Errorf("wire restore renderings diverged:\n got: %q\nwant: %q", strings.Join(got, "\n"), want)
	}
}

// renderAll collects the follow-up renderings from a local session.
func renderAll(t *testing.T, s *fem2.Session) string {
	t.Helper()
	var out []string
	for _, line := range storageRenders {
		out = append(out, mustExecute(t, s, line))
	}
	return strings.Join(out, "\n")
}
