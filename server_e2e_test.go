// Acceptance tests for the network layer: ISSUE 6's guarantees that a
// fem2d daemon serves the full typed command surface to concurrent
// clients with renderings byte-identical to local execution, enforces
// per-tenant quotas, pushes job-state notifications, survives mid-solve
// disconnects, and drains gracefully without losing terminal job
// records.  go test -race runs all of it under the race detector.
package fem2_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	fem2 "repro"
)

// startServer boots a system and serves it on a loopback listener,
// returning the dial address and Serve's eventual error.
func startServer(t *testing.T, cfg fem2.ServerConfig, opts ...fem2.Option) (*fem2.System, *fem2.Server, string, chan error) {
	t.Helper()
	sys, err := fem2.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := fem2.NewServer(sys, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	servErr := make(chan error, 1)
	go func() { servErr <- srv.Serve(ln) }()
	return sys, srv, ln.Addr().String(), servErr
}

// remotePlate builds one model + tip load set through a network client.
func remotePlate(t testing.TB, cl *fem2.Client, model string, nx, ny int) {
	t.Helper()
	ctx := context.Background()
	cmds := []fem2.Command{
		fem2.GenerateGrid{Name: model, NX: nx, NY: ny, W: float64(nx), H: float64(ny), ClampLeft: true},
		fem2.EndLoad{Model: model, Set: "tip", FY: -100},
	}
	for _, c := range cmds {
		if _, err := cl.Do(ctx, c); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
	}
}

// submitAndWait submits a solve through the wire and waits for its
// result, returning the job id and the result rendering.
func submitAndWait(cl *fem2.Client, model string) (int64, string, error) {
	ctx := context.Background()
	res, err := cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: model, Set: "tip"}})
	if err != nil {
		return 0, "", fmt.Errorf("submit: %w", err)
	}
	id := res.(*fem2.SubmitResult).ID
	out, err := cl.Do(ctx, fem2.WaitCommand{ID: id})
	if err != nil {
		return id, "", fmt.Errorf("wait job-%d: %w", id, err)
	}
	return id, out.String(), nil
}

// TestServerREPLByteIdentical drives one scripted session through a
// local Session.Run and through a network client against a daemon, and
// requires the two outputs to match byte for byte — results, error
// lines, and all.
func TestServerREPLByteIdentical(t *testing.T) {
	script := strings.Join([]string{
		"ping",
		"version",
		"generate grid wing 8 4 8 4 clamp-left",
		"load wing cruise endload 0 -500",
		"solve wing cruise",
		"solve wing cruise method cg precond jacobi",
		"stresses wing",
		"display model wing",
		"display displacements wing",
		"display stresses wing",
		"list workspace",
		"solve nosuch cruise",       // not-found error line
		"generate grid bad 1 1 0 0", // usage error line
		"frobnicate the plate",      // unknown verb error line
		"quit",
	}, "\n") + "\n"

	localSys, err := fem2.New()
	if err != nil {
		t.Fatal(err)
	}
	defer localSys.Close()
	var localOut strings.Builder
	if err := localSys.Session("eng").Run(strings.NewReader(script), &localOut); err != nil {
		t.Fatal(err)
	}

	_, srv, addr, _ := startServer(t, fem2.ServerConfig{})
	defer srv.Shutdown(context.Background())
	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var remoteOut strings.Builder
	if err := cl.Run(context.Background(), strings.NewReader(script), &remoteOut, false); err != nil {
		t.Fatal(err)
	}

	if localOut.String() != remoteOut.String() {
		t.Errorf("network rendering diverged from local:\n--- local ---\n%s--- remote ---\n%s",
			localOut.String(), remoteOut.String())
	}
}

// TestServerConcurrentClientsRace is the headline acceptance test: many
// concurrent network clients on shared and distinct model names, plus
// clients that disconnect mid-solve, then a graceful drain — renderings
// byte-identical to local execution and no terminal job record lost.
func TestServerConcurrentClientsRace(t *testing.T) {
	const clients = 20      // ≥ 16; half share a model name, half are distinct
	const disconnectors = 4 // dial, submit a long solve, vanish mid-flight

	sys, srv, addr, servErr := startServer(t, fem2.ServerConfig{}, fem2.WithWorkers(8))

	// Reference renderings from a purely local system.
	refSys, err := fem2.New()
	if err != nil {
		t.Fatal(err)
	}
	defer refSys.Close()
	ref := refSys.Session("ref")
	ctx := context.Background()
	want := make([]string, clients)
	models := make([]string, clients)
	seen := map[string]bool{}
	for i := range models {
		models[i] = "shared"
		if i%2 == 1 {
			models[i] = fmt.Sprintf("plate-%d", i)
		}
		if !seen[models[i]] {
			buildPlate(t, ref, models[i], 6, 4)
			seen[models[i]] = true
		}
		res, err := ref.Do(ctx, fem2.SolveCommand{Model: models[i], Set: "tip"})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.String()
	}

	var wg sync.WaitGroup
	got := make([]string, clients)
	jobIDs := make([]int64, clients)
	errc := make(chan error, clients+disconnectors)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := fem2.Dial(addr, fmt.Sprintf("user-%d", i))
			if err != nil {
				errc <- fmt.Errorf("user-%d dial: %w", i, err)
				return
			}
			defer cl.Close()
			remotePlate(t, cl, models[i], 6, 4)
			id, out, err := submitAndWait(cl, models[i])
			if err != nil {
				errc <- fmt.Errorf("user-%d: %w", i, err)
				return
			}
			jobIDs[i], got[i] = id, out
		}(i)
	}

	// The disconnectors: submit a solve big enough to still be in
	// flight, then slam the connection shut.  The server must cancel
	// exactly their jobs and keep serving everyone else.
	lostIDs := make([]int64, disconnectors)
	for i := 0; i < disconnectors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := fem2.Dial(addr, fmt.Sprintf("ghost-%d", i))
			if err != nil {
				errc <- fmt.Errorf("ghost-%d dial: %w", i, err)
				return
			}
			remotePlate(t, cl, fmt.Sprintf("ghost-model-%d", i), 120, 120)
			res, err := cl.Do(ctx, fem2.SubmitCommand{
				Cmd: fem2.SolveCommand{Model: fmt.Sprintf("ghost-model-%d", i), Set: "tip"}})
			if err != nil {
				errc <- fmt.Errorf("ghost-%d submit: %w", i, err)
				return
			}
			lostIDs[i] = res.(*fem2.SubmitResult).ID
			cl.Close() // mid-solve disconnect
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for i := range got {
		if got[i] != want[i] {
			t.Errorf("client %d (%s): network %q != local %q", i, models[i], got[i], want[i])
		}
	}

	// The ghosts' jobs reach a terminal state (cancelled by session
	// teardown, or done if completion won the race) without taking the
	// server down.
	for i, id := range lostIDs {
		deadline := time.Now().Add(10 * time.Second)
		for {
			snap, err := sys.Jobs.Status(fem2.JobID(id))
			if err != nil {
				t.Fatalf("ghost-%d job-%d: %v", i, id, err)
			}
			if snap.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("ghost-%d job-%d stuck in %v after disconnect", i, id, snap.State)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Graceful drain: no live jobs remain, so Shutdown returns clean,
	// Serve reports the closed sentinel, and every terminal job record
	// survives the drain.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-servErr:
		if !errors.Is(err, fem2.ErrServerClosed) {
			t.Errorf("Serve = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned after Shutdown")
	}
	for i, id := range jobIDs {
		snap, err := sys.Jobs.Status(fem2.JobID(id))
		if err != nil {
			t.Errorf("client %d job-%d lost across drain: %v", i, id, err)
			continue
		}
		if snap.State != fem2.JobDone {
			t.Errorf("client %d job-%d = %v across drain, want done", i, id, snap.State)
		}
	}
	if _, err := fem2.Dial(addr, "late"); err == nil {
		t.Error("Dial succeeded after Shutdown")
	}
}

// TestServerQuotaEnforced: with a one-job-per-connection bound under
// the reject policy, a saturated connection's submit fails with
// ErrJobQuota while other connections are unaffected.
func TestServerQuotaEnforced(t *testing.T) {
	_, srv, addr, _ := startServer(t,
		fem2.ServerConfig{MaxJobsPerSession: 1, QuotaPolicy: fem2.QuotaReject},
		fem2.WithWorkers(4))
	defer srv.Shutdown(context.Background())

	ctx := context.Background()
	cl, err := fem2.Dial(addr, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	remotePlate(t, cl, "big", 100, 100)
	res, err := cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: "big", Set: "tip"}})
	if err != nil {
		t.Fatal(err)
	}
	id := res.(*fem2.SubmitResult).ID

	// Second submit while the first is live: rejected, and the wire
	// code classifies back to the quota sentinel.
	_, err = cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: "big", Set: "tip"}})
	if !errors.Is(err, fem2.ErrJobQuota) {
		t.Errorf("over-quota submit = %v, want ErrJobQuota", err)
	}

	// Another tenant is not throttled by the first one's saturation.
	cl2, err := fem2.Dial(addr, "modest")
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	remotePlate(t, cl2, "small", 6, 4)
	if _, _, err := submitAndWait(cl2, "small"); err != nil {
		t.Errorf("other tenant blocked by first tenant's quota: %v", err)
	}

	if _, err := cl.Do(ctx, fem2.WaitCommand{ID: id}); err != nil {
		t.Fatal(err)
	}
	// Slot freed: the same connection may submit again.
	if _, _, err := submitAndWait(cl, "big"); err != nil {
		t.Errorf("submit after slot freed: %v", err)
	}
}

// TestServerNotifications: submitting a solve yields the pushed
// queued → running → done trail on the client's event stream, without
// any polling.
func TestServerNotifications(t *testing.T) {
	_, srv, addr, _ := startServer(t, fem2.ServerConfig{}, fem2.WithWorkers(2))
	defer srv.Shutdown(context.Background())

	cl, err := fem2.Dial(addr, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	remotePlate(t, cl, "wing", 8, 4)
	res, err := cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: "wing", Set: "tip"}})
	if err != nil {
		t.Fatal(err)
	}
	id := res.(*fem2.SubmitResult).ID

	var states []string
	timeout := time.After(10 * time.Second)
	for len(states) == 0 || states[len(states)-1] != "done" {
		select {
		case ev, ok := <-cl.Events():
			if !ok {
				t.Fatalf("event stream closed after %v", states)
			}
			if ev.Job != id {
				continue
			}
			states = append(states, ev.State)
		case <-timeout:
			t.Fatalf("no terminal notification; got %v", states)
		}
	}
	want := []string{"queued", "running", "done"}
	if len(states) != len(want) {
		t.Fatalf("notification trail = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("notification trail = %v, want %v", states, want)
		}
	}
}

// TestServerDrainGates: while the server drains behind a live job,
// mutating commands are refused, job control still answers, and the
// cancelled job's record survives the drain.
func TestServerDrainGates(t *testing.T) {
	sys, srv, addr, servErr := startServer(t, fem2.ServerConfig{}, fem2.WithWorkers(2))

	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	remotePlate(t, cl, "huge", 160, 160)
	res, err := cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: "huge", Set: "tip"}})
	if err != nil {
		t.Fatal(err)
	}
	id := res.(*fem2.SubmitResult).ID

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()

	// Mutating verbs are refused once the drain gate is up (the first
	// few may still land before Shutdown flips the flag).
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		_, err := cl.Do(ctx, fem2.Define{Name: fmt.Sprintf("late-%d", i)})
		if err != nil && strings.Contains(err.Error(), "draining") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("define was never refused while draining")
		}
		time.Sleep(time.Millisecond)
	}

	// Job control still answers: status reads, cancel releases the
	// drain.
	if _, err := cl.Do(ctx, fem2.StatusCommand{ID: id}); err != nil {
		t.Errorf("status during drain: %v", err)
	}
	if _, err := cl.Do(ctx, fem2.CancelCommand{ID: id}); err != nil {
		t.Errorf("cancel during drain: %v", err)
	}

	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown = %v", err)
	}
	select {
	case err := <-servErr:
		if !errors.Is(err, fem2.ErrServerClosed) {
			t.Errorf("Serve = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned")
	}
	snap, err := sys.Jobs.Status(fem2.JobID(id))
	if err != nil {
		t.Fatalf("job record lost across drain: %v", err)
	}
	if !snap.State.Terminal() {
		t.Errorf("job state after drain = %v, want terminal", snap.State)
	}
}

// TestServerPingVersionOverWire pins the health verbs' remote
// renderings.
func TestServerPingVersionOverWire(t *testing.T) {
	_, srv, addr, _ := startServer(t, fem2.ServerConfig{})
	defer srv.Shutdown(context.Background())
	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	res, err := cl.Do(ctx, fem2.PingCommand{})
	if err != nil || res.String() != "pong" {
		t.Errorf("ping = %q, %v", res, err)
	}
	res, err = cl.Do(ctx, fem2.VersionCommand{})
	want := fmt.Sprintf("fem2 %s (protocol %d, storage mem)", fem2.Release, fem2.ProtocolVersion)
	if err != nil || res.String() != want {
		t.Errorf("version = %q, %v; want %q", res, err, want)
	}
	if got := cl.Storage(); got != "mem" {
		t.Errorf("welcome storage = %q, want %q", got, "mem")
	}
}
