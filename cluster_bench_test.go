// Failover-latency benchmark: how long after a leader's crash does the
// surviving follower serve writes?  This is the cluster's headline
// number — bounded below by the lease TTL (a crashed leader's lease
// must expire before anyone may take over) plus one follower poll plus
// the takeover work itself (seal the log, reload the database, replay
// the journal).  scripts/bench.sh writes it to BENCH_cluster.json and
// the benchgate holds the trajectory.
package fem2_test

import (
	"path/filepath"
	"testing"
	"time"

	fem2 "repro"
)

func BenchmarkClusterFailover(b *testing.B) {
	const ttl = 150 * time.Millisecond
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		path := filepath.Join(b.TempDir(), "fem2.db")
		sysA, err := fem2.New(fem2.WithWorkers(1),
			fem2.WithStore(fem2.StoreConfig{Backend: fem2.StoreFile, Path: path}),
			fem2.WithCluster(fem2.ClusterOpts{Owner: "a", Advertise: "a:0", TTL: ttl}))
		if err != nil {
			b.Fatal(err)
		}
		sysB, err := fem2.New(fem2.WithWorkers(1),
			fem2.WithStore(fem2.StoreConfig{Backend: fem2.StoreFile, Path: path}),
			fem2.WithCluster(fem2.ClusterOpts{Owner: "b", Advertise: "b:0", TTL: ttl}))
		if err != nil {
			sysA.Close()
			b.Fatal(err)
		}
		if sysA.ClusterRole() != "leader" || sysB.ClusterRole() != "follower" {
			b.Fatalf("roles before the crash: a=%s b=%s", sysA.ClusterRole(), sysB.ClusterRole())
		}
		// Put some state where the takeover has to replay it.
		s := sysA.Session("eng")
		if _, err := s.Execute("generate grid plate 6 4 6 4 clamp-left"); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Execute("store plate"); err != nil {
			b.Fatal(err)
		}

		b.StartTimer()
		sysA.Cluster.Abandon() // the crash: lease left to expire in place
		for sysB.ClusterRole() != "leader" {
			time.Sleep(time.Millisecond)
		}
		b.StopTimer()

		sysB.Close()
		sysA.Close()
	}
}
