package fem2_test

import (
	"os"
	"strings"
	"testing"

	fem2 "repro"
	"repro/internal/metrics"
)

// TestScriptedWorkstation drives the full stack with the same script file
// cmd/fem2 -script consumes, and checks the run end to end: no errors,
// both models stored, every VM level exercised.
func TestScriptedWorkstation(t *testing.T) {
	f, err := os.Open("testdata/demo.fem2")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sys, err := fem2.NewSystem(fem2.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Session("scripted")
	var out strings.Builder
	if err := s.Run(f, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "error:") {
		t.Fatalf("script produced errors:\n%s", text)
	}
	for _, want := range []string{
		"generated grid \"spar\"", "solved \"spar\"", "parallel on 4 workers",
		"generated truss \"jib\"", "max von Mises", "bye",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("script output missing %q", want)
		}
	}
	if got := sys.Database.Names(); len(got) != 2 || got[0] != "jib" || got[1] != "spar" {
		t.Errorf("database = %v", got)
	}
	// Every level saw activity.
	for _, l := range []fem2.Level{fem2.LevelAUVM, fem2.LevelNAVM, fem2.LevelSPVM, fem2.LevelARCH} {
		active := false
		for _, ctr := range []string{metrics.CtrOps, metrics.CtrFlops, metrics.CtrCycles, metrics.CtrMsgs} {
			if sys.Metrics.Get(l, ctr) > 0 {
				active = true
			}
		}
		if !active {
			t.Errorf("level %v recorded no activity", l)
		}
	}
}

// TestTraceCommunicationPattern checks that the event trace of a real
// parallel solve reconstructs the neighbour-banded cluster communication
// pattern — the trace-level view of E14.
func TestTraceCommunicationPattern(t *testing.T) {
	sys, err := fem2.NewSystem(fem2.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Session("eng")
	for _, c := range []string{
		"generate grid g 12 8 12 8 clamp-left",
		"load g l endload 0 -100",
		"solve g l parallel 4",
	} {
		if _, err := s.Execute(c); err != nil {
			t.Fatalf("%q: %v", c, err)
		}
	}
	ids, m := sys.Trace.CommunicationMatrix("fetch")
	if len(ids) < 2 {
		t.Fatalf("trace saw fetch traffic between %d clusters", len(ids))
	}
	var total, offDiag int
	for i := range m {
		for j := range m[i] {
			total += m[i][j]
			if i != j {
				offDiag += m[i][j]
			}
		}
	}
	if total == 0 || offDiag == 0 {
		t.Errorf("communication matrix empty: total=%d offdiag=%d", total, offDiag)
	}
	// The trace summary mentions the fetch events.
	if sum := sys.Trace.Summary(); !strings.Contains(sum, "fetch") {
		t.Errorf("trace summary missing fetch kind:\n%s", sum)
	}
}
