#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmarks and write BENCH_assembly.json.
#
# The JSON file is the machine-readable benchmark history for this repo:
# one entry per benchmark with iterations, ns/op, B/op, and allocs/op.
# Re-run after perf work and commit the result so successive PRs carry a
# before/after trail.
#
#   BENCH=<regex>     benchmarks to run   (default: the assembly + solver set)
#   BENCHTIME=<n>x|s  per-benchmark time  (default: 50x)
#   OUT=<path>        output JSON         (default: BENCH_assembly.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-Assemble|SubstructureSolve|SolveBackends}"
BENCHTIME="${BENCHTIME:-50x}"
OUT="${OUT:-BENCH_assembly.json}"

raw=$(go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" .)
echo "$raw"

# Go appends a "-<GOMAXPROCS>" suffix to benchmark names only when
# GOMAXPROCS != 1; strip exactly that suffix so names are comparable
# across hosts (and so "parallel-8" keeps its worker count on 1-cpu
# machines).
procs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}"

{
  echo '{'
  echo "  \"date\": \"$(date -u +%FT%TZ)\","
  echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"cpus\": $(nproc 2>/dev/null || echo 1),"
  echo "  \"bench\": ["
  echo "$raw" | awk -v procs="$procs" '
    /^Benchmark/ {
      name = $1
      if (procs != 1) sub("-" procs "$", "", name)
      ns = ""; bytes = ""; allocs = ""
      for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
      }
      line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
      if (ns != "")     line = line sprintf(", \"ns_per_op\": %s", ns)
      if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
      if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
      line = line "}"
      if (n++) printf(",\n")
      printf("%s", line)
    }
    END { printf("\n") }
  '
  echo '  ]'
  echo '}'
} > "$OUT"

echo "wrote $OUT"
