#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmarks and write the
# machine-readable benchmark history: BENCH_assembly.json (assembly +
# solver kernels), BENCH_jobs.json (job-service throughput at 1/4/16
# parallel sessions), BENCH_direct.json (cold/warm/refactor direct
# solves through the factor-once plan layer), BENCH_server.json
# (network job throughput at 1/4/16 concurrent wire clients),
# BENCH_store.json (write-through put latency, cold open + recovery vs
# stored-model count, snapshot/restore round-trip, and SIGKILL-to-
# serving daemon recovery time), BENCH_obs.json (the observability
# overhead pairs: job dispatch and warm direct solve, bare vs
# instrumented), and BENCH_cluster.json (leader-crash-to-follower-
# serving failover latency in a two-daemon cluster).
#
# Each JSON file holds one entry per benchmark with iterations, ns/op,
# B/op, allocs/op, and any custom metrics (jobs/s, profile-nnz).
# Re-run after perf work and commit the results so successive PRs carry
# a before/after trail.
#
#   BENCH=<regex>           assembly benchmarks   (default: the assembly + solver set)
#   BENCHTIME=<n>x|s        per-benchmark time    (default: 50x)
#   JOBS_BENCH=<regex>      job benchmarks        (default: ConcurrentSolves)
#   JOBS_BENCHTIME=<n>x|s   per-benchmark time    (default: 20x)
#   DIRECT_BENCH=<regex>    direct-solve benches  (default: DirectSolve)
#   DIRECT_BENCHTIME=<n>x|s per-benchmark time    (default: 100x)
#   SERVER_BENCH=<regex>    network benchmarks    (default: ServerThroughput)
#   SERVER_BENCHTIME=<n>x|s per-benchmark time    (default: 20x)
#   STORE_BENCH=<regex>     storage benchmarks    (default: ^BenchmarkStore)
#   STORE_BENCHTIME=<n>x|s  per-benchmark time    (default: 50x)
#   OBS_BENCH=<regex>       obs overhead benches  (default: ^BenchmarkObsOverhead$)
#   OBS_BENCHTIME=<n>x|s    per-benchmark time    (default: 200x)
#   CLUSTER_BENCH=<regex>   cluster benchmarks    (default: ^BenchmarkClusterFailover$)
#   CLUSTER_BENCHTIME=<n>x|s per-benchmark time   (default: 10x)
#   OUT=<path>              assembly output JSON  (default: BENCH_assembly.json)
#   JOBS_OUT=<path>         jobs output JSON      (default: BENCH_jobs.json)
#   DIRECT_OUT=<path>       direct output JSON    (default: BENCH_direct.json)
#   SERVER_OUT=<path>       server output JSON    (default: BENCH_server.json)
#   STORE_OUT=<path>        storage output JSON   (default: BENCH_store.json)
#   OBS_OUT=<path>          obs output JSON       (default: BENCH_obs.json)
#   CLUSTER_OUT=<path>      cluster output JSON   (default: BENCH_cluster.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-Assemble|SubstructureSolve|SolveBackends}"
BENCHTIME="${BENCHTIME:-50x}"
JOBS_BENCH="${JOBS_BENCH:-ConcurrentSolves}"
JOBS_BENCHTIME="${JOBS_BENCHTIME:-20x}"
DIRECT_BENCH="${DIRECT_BENCH:-DirectSolve}"
DIRECT_BENCHTIME="${DIRECT_BENCHTIME:-100x}"
SERVER_BENCH="${SERVER_BENCH:-ServerThroughput}"
SERVER_BENCHTIME="${SERVER_BENCHTIME:-20x}"
STORE_BENCH="${STORE_BENCH:-^BenchmarkStore}"
STORE_BENCHTIME="${STORE_BENCHTIME:-50x}"
OBS_BENCH="${OBS_BENCH:-^BenchmarkObsOverhead$}"
OBS_BENCHTIME="${OBS_BENCHTIME:-200x}"
CLUSTER_BENCH="${CLUSTER_BENCH:-^BenchmarkClusterFailover$}"
CLUSTER_BENCHTIME="${CLUSTER_BENCHTIME:-10x}"
OUT="${OUT:-BENCH_assembly.json}"
JOBS_OUT="${JOBS_OUT:-BENCH_jobs.json}"
DIRECT_OUT="${DIRECT_OUT:-BENCH_direct.json}"
SERVER_OUT="${SERVER_OUT:-BENCH_server.json}"
STORE_OUT="${STORE_OUT:-BENCH_store.json}"
OBS_OUT="${OBS_OUT:-BENCH_obs.json}"
CLUSTER_OUT="${CLUSTER_OUT:-BENCH_cluster.json}"

# Go appends a "-<GOMAXPROCS>" suffix to benchmark names only when
# GOMAXPROCS != 1; strip exactly that suffix so names are comparable
# across hosts (and so "parallel-8" keeps its worker count on 1-cpu
# machines).
procs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}"

# write_json <raw go-test -bench output> <out path>
write_json() {
  local raw="$1" out="$2"
  {
    echo '{'
    echo "  \"date\": \"$(date -u +%FT%TZ)\","
    echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"cpus\": $(nproc 2>/dev/null || echo 1),"
    echo "  \"gomaxprocs\": $procs,"
    echo "  \"bench\": ["
    echo "$raw" | awk -v procs="$procs" '
      /^Benchmark/ {
        name = $1
        if (procs != 1) sub("-" procs "$", "", name)
        ns = ""; bytes = ""; allocs = ""; jobs = ""; nnz = ""
        for (i = 3; i < NF; i++) {
          if ($(i+1) == "ns/op") ns = $i
          if ($(i+1) == "B/op") bytes = $i
          if ($(i+1) == "allocs/op") allocs = $i
          if ($(i+1) == "jobs/s") jobs = $i
          if ($(i+1) == "profile-nnz") nnz = $i
        }
        line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
        if (ns != "")     line = line sprintf(", \"ns_per_op\": %s", ns)
        if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
        if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
        if (jobs != "")   line = line sprintf(", \"jobs_per_sec\": %s", jobs)
        if (nnz != "")    line = line sprintf(", \"profile_nnz\": %s", nnz)
        line = line "}"
        if (n++) printf(",\n")
        printf("%s", line)
      }
      END { printf("\n") }
    '
    echo '  ]'
    echo '}'
  } > "$out"
  echo "wrote $out"
}

raw=$(go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" .)
echo "$raw"
write_json "$raw" "$OUT"

raw=$(go test -run '^$' -bench "$JOBS_BENCH" -benchtime "$JOBS_BENCHTIME" .)
echo "$raw"
write_json "$raw" "$JOBS_OUT"

raw=$(go test -run '^$' -bench "$DIRECT_BENCH" -benchmem -benchtime "$DIRECT_BENCHTIME" .)
echo "$raw"
write_json "$raw" "$DIRECT_OUT"

raw=$(go test -run '^$' -bench "$SERVER_BENCH" -benchtime "$SERVER_BENCHTIME" .)
echo "$raw"
write_json "$raw" "$SERVER_OUT"

raw=$(go test -run '^$' -bench "$STORE_BENCH" -benchmem -benchtime "$STORE_BENCHTIME" .)
echo "$raw"
write_json "$raw" "$STORE_OUT"

raw=$(go test -run '^$' -bench "$OBS_BENCH" -benchmem -benchtime "$OBS_BENCHTIME" .)
echo "$raw"
write_json "$raw" "$OBS_OUT"

raw=$(go test -run '^$' -bench "$CLUSTER_BENCH" -benchtime "$CLUSTER_BENCHTIME" .)
echo "$raw"
write_json "$raw" "$CLUSTER_OUT"
