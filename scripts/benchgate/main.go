// Command benchgate is the perf-trajectory CI gate: it compares a
// fresh benchmark run against the committed BENCH_*.json history and
// fails when a headline metric regresses beyond the tolerance.
//
// Usage:
//
//	go run ./scripts/benchgate -baseline . -current /tmp/benchnow [-tolerance 0.20]
//
// The gated headlines are the numbers the project steers by:
//
//	BENCH_jobs.json     BenchmarkConcurrentSolves/sessions=4  jobs_per_sec  (higher is better)
//	BENCH_direct.json   BenchmarkDirectSolve/warm             ns_per_op     (lower is better)
//	BENCH_store.json    BenchmarkStoreKillRecovery            ns_per_op     (lower is better)
//	BENCH_cluster.json  BenchmarkClusterFailover              ns_per_op     (lower is better)
//
// A headline missing from either side is a failure too — a renamed or
// dropped benchmark must not silently unguard the trajectory.  The
// tolerance is deliberately loose (20% by default): CI machines are
// noisy, and the gate exists to catch real cliffs, not jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

// benchFile mirrors the JSON scripts/bench.sh writes.
type benchFile struct {
	Date   string       `json:"date"`
	Commit string       `json:"commit"`
	Bench  []benchEntry `json:"bench"`
}

type benchEntry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

// headline is one gated metric: where it lives, which benchmark row,
// which field, and which direction is good.
type headline struct {
	file         string
	bench        string
	metric       string // "ns_per_op" | "jobs_per_sec"
	higherBetter bool
}

var headlines = []headline{
	{"BENCH_jobs.json", "BenchmarkConcurrentSolves/sessions=4", "jobs_per_sec", true},
	{"BENCH_direct.json", "BenchmarkDirectSolve/warm", "ns_per_op", false},
	{"BENCH_store.json", "BenchmarkStoreKillRecovery", "ns_per_op", false},
	{"BENCH_cluster.json", "BenchmarkClusterFailover", "ns_per_op", false},
}

func main() {
	baseline := flag.String("baseline", ".", "directory holding the committed BENCH_*.json history")
	current := flag.String("current", "", "directory holding the fresh run's BENCH_*.json files")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression per headline")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}

	failed := false
	for _, h := range headlines {
		base, err := lookup(filepath.Join(*baseline, h.file), h)
		if err != nil {
			fmt.Printf("FAIL %-60s baseline: %v\n", h.bench, err)
			failed = true
			continue
		}
		cur, err := lookup(filepath.Join(*current, h.file), h)
		if err != nil {
			fmt.Printf("FAIL %-60s current: %v\n", h.bench, err)
			failed = true
			continue
		}
		if base <= 0 {
			fmt.Printf("FAIL %-60s baseline %s is %g, cannot gate\n", h.bench, h.metric, base)
			failed = true
			continue
		}
		// regression is the fractional move in the bad direction;
		// improvements come out negative and always pass.
		regression := (cur - base) / base
		if h.higherBetter {
			regression = (base - cur) / base
		}
		verdict := "ok  "
		if regression > *tolerance {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-60s %s %12.1f -> %12.1f  (%+.1f%%, tolerance %.0f%%)\n",
			verdict, h.bench, h.metric, base, cur, 100*delta(base, cur), 100**tolerance)
	}
	if failed {
		fmt.Println("benchgate: headline regression beyond tolerance (or metric missing)")
		os.Exit(1)
	}
	fmt.Println("benchgate: all headlines within tolerance")
}

// delta is the signed fractional change current/baseline - 1.
func delta(base, cur float64) float64 { return cur/base - 1 }

// lookup reads one BENCH file and extracts a headline's value.
func lookup(path string, h headline) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, e := range f.Bench {
		if e.Name != h.bench {
			continue
		}
		switch h.metric {
		case "jobs_per_sec":
			if e.JobsPerSec == 0 {
				return 0, fmt.Errorf("%s: %s has no jobs_per_sec", path, h.bench)
			}
			return e.JobsPerSec, nil
		case "ns_per_op":
			if e.NsPerOp == 0 {
				return 0, fmt.Errorf("%s: %s has no ns_per_op", path, h.bench)
			}
			return e.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("%s: benchmark %q not present", path, h.bench)
}
