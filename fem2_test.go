package fem2_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	fem2 "repro"
	"repro/internal/fem"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := fem2.NewSystem(fem2.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Session("engineer")
	for _, cmd := range []string{
		"generate grid wing 8 6 8 6 clamp-left",
		"load wing cruise endload 0 -1000",
		"solve wing cruise parallel 4",
		"stresses wing",
		"store wing",
	} {
		if _, err := s.Execute(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if sys.Machine.Makespan() == 0 {
		t.Error("no simulated time elapsed")
	}
	if got := sys.Database.Names(); len(got) != 1 || got[0] != "wing" {
		t.Errorf("database = %v", got)
	}
}

// TestREPLSolveBackendsAgree is the acceptance check for the unified
// engine: every backend — and CG under each preconditioner — is
// selectable by name through the REPL solve verb, and all produce the
// same displacements on the shared fixture (a bar chain, diagonally
// dominant enough that even Jacobi converges).
func TestREPLSolveBackendsAgree(t *testing.T) {
	sys, err := fem2.NewSystem(fem2.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Session("eng")
	for _, cmd := range []string{
		"generate bar chain 12 120",
		"load chain tip 24 500", // x of the tip node
		"solve chain tip",
	} {
		if _, err := s.Execute(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	ref := append([]float64(nil), s.WS.Solution("chain").U...)
	var scale float64
	for _, v := range ref {
		if math.Abs(v) > scale {
			scale = math.Abs(v)
		}
	}
	cases := []struct{ spec, engine string }{
		{"method cholesky", "cholesky"},
		{"method cholesky-rcm", "cholesky-rcm"},
		{"method cg", "cg"},
		{"method cg precond jacobi", "cg+jacobi"},
		{"method cg precond ssor", "cg+ssor"},
		{"method jacobi", "jacobi"},
		{"method sor", "sor"},
	}
	for _, c := range cases {
		out, err := s.Execute("solve chain tip " + c.spec)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if !strings.Contains(out, "("+c.engine+")") {
			t.Errorf("%q output %q does not name engine %q", c.spec, out, c.engine)
		}
		got := s.WS.Solution("chain").U
		for i := range ref {
			if math.Abs(got[i]-ref[i]) > 1e-6*scale {
				t.Errorf("%q: dof %d differs: %g vs %g", c.spec, i, got[i], ref[i])
				break
			}
		}
	}
	// Unknown names fail at parse time with the registry listed.
	if _, err := s.Execute("solve chain tip method gauss"); !errors.Is(err, fem2.ErrUsage) {
		t.Errorf("unknown method error = %v, want ErrUsage", err)
	}
	if _, err := s.Execute("solve chain tip method cg precond ilu"); !errors.Is(err, fem2.ErrUsage) {
		t.Errorf("unknown precond error = %v, want ErrUsage", err)
	}
}

// TestSolveCancelledThroughFacade checks the facade surfaces the shared
// cancellation taxonomy end to end.
func TestSolveCancelledThroughFacade(t *testing.T) {
	m, err := fem2.RectGrid("c", fem2.RectGridOpts{NX: 8, NY: 8, W: 8, H: 8, Mat: fem2.Steel(), ClampLeft: true})
	if err != nil {
		t.Fatal(err)
	}
	ls := fem.EndLoad("tip", fem2.RectGridOpts{NX: 8, NY: 8, W: 8, H: 8}, 0, -100)
	ctx, cancel := context.WithCancel(context.Background())
	opts := fem2.SolveOpts{Backend: fem2.BackendCG, Tol: 1e-14,
		OnIteration: func(iter int, _ float64) {
			if iter == 1 {
				cancel()
			}
		}}
	if _, err := fem2.Solve(ctx, m, ls, opts); !errors.Is(err, fem2.ErrCancelled) {
		t.Errorf("cancelled solve returned %v, want ErrCancelled", err)
	}
}

func TestProgrammaticAPIMatchesCommandAPI(t *testing.T) {
	// Build and solve the same model through the Go API and through
	// the command language; displacements must agree exactly.
	o := fem2.RectGridOpts{NX: 6, NY: 4, W: 6, H: 4, Mat: fem2.Steel(), ClampLeft: true}
	m, err := fem2.RectGrid("plate", o)
	if err != nil {
		t.Fatal(err)
	}
	ls := fem.EndLoad("tip", o, 0, -500)
	apiSol, err := fem2.Solve(context.Background(), m, ls, fem2.SolveOpts{Backend: fem2.BackendCholesky})
	if err != nil {
		t.Fatal(err)
	}

	sys, _ := fem2.NewSystem(fem2.DefaultConfig())
	s := sys.Session("u")
	for _, cmd := range []string{
		"generate grid plate 6 4 6 4 clamp-left",
		"load plate tip endload 0 -500",
		"solve plate tip method cholesky",
	} {
		if _, err := s.Execute(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	cmdSol := s.WS.Solution("plate")
	if len(cmdSol.U) != len(apiSol.U) {
		t.Fatalf("dof counts differ: %d vs %d", len(cmdSol.U), len(apiSol.U))
	}
	for i := range apiSol.U {
		if math.Abs(apiSol.U[i]-cmdSol.U[i]) > 1e-12 {
			t.Fatalf("dof %d differs: %g vs %g", i, apiSol.U[i], cmdSol.U[i])
		}
	}
}

func TestLayerSpecsAndGrammarsExported(t *testing.T) {
	layers := fem2.FEM2Layers()
	if len(layers) != 4 {
		t.Fatalf("layers = %d", len(layers))
	}
	grammars := fem2.AllLevelGrammars()
	if len(grammars) < 5 {
		t.Fatalf("grammars = %d", len(grammars))
	}
	for name, g := range grammars {
		if errs := g.WellFormed(); len(errs) > 0 {
			t.Errorf("grammar %s: %v", name, errs)
		}
	}
	if fem2.LevelAUVM.String() != "AUVM" || fem2.LevelARCH.String() != "ARCH" {
		t.Error("level names wrong")
	}
}

func TestStressRecoveryThroughFacade(t *testing.T) {
	m, err := fem2.CantileverTruss("tr", 3, 100, 80, fem2.Steel())
	if err != nil {
		t.Fatal(err)
	}
	ls := &fem2.LoadSet{Name: "tip", Entries: []fem.LoadEntry{{DOF: fem.DOF(3, 1), Value: -100}}}
	sol, err := fem2.Solve(context.Background(), m, ls, fem2.SolveOpts{Backend: fem2.BackendCG})
	if err != nil {
		t.Fatal(err)
	}
	st, err := fem2.Stresses(m, sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != len(m.Elements) {
		t.Errorf("stresses for %d of %d elements", len(st), len(m.Elements))
	}
}

func TestDesignIteratorThroughFacade(t *testing.T) {
	small := fem2.DefaultConfig()
	small.Clusters = 1
	small.PEsPerCluster = 2
	big := fem2.DefaultConfig()
	it := &fem2.DesignIterator{
		Candidates: []fem2.Config{small, big},
		Workload: func(sys *fem2.System) error {
			s := sys.Session("e")
			for _, c := range []string{
				"generate grid g 8 4 8 4 clamp-left",
				"load g l endload 0 -1",
				"solve g l parallel 4",
			} {
				if _, err := s.Execute(c); err != nil {
					return err
				}
			}
			return nil
		},
	}
	best, history, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("history = %d", len(history))
	}
	if best.Config.Clusters != big.Clusters {
		t.Errorf("winner = %d clusters", best.Config.Clusters)
	}
}

func ExampleSession() {
	sys, _ := fem2.NewSystem(fem2.DefaultConfig())
	s := sys.Session("engineer")
	out, _ := s.Execute("generate grid panel 4 4 4 4 clamp-left")
	fmt.Println(out)
	// Output: generated grid "panel": 25 nodes, 32 elements
}

func TestPartitionExportedAndShaped(t *testing.T) {
	o := fem2.RectGridOpts{NX: 8, NY: 8, W: 8, H: 8, Mat: fem2.Steel(), ClampLeft: true}
	m, _ := fem2.RectGrid("p", o)
	asm, err := fem.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	ls := fem.EndLoad("l", o, 1, 0)
	_, index := m.FreeDOFs()
	b, _ := m.RHS(ls, index, len(asm.Free))
	d, err := fem2.Partition(asm.K, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.P != 4 || d.TotalHaloWords() == 0 {
		t.Errorf("partition P=%d halo=%d", d.P, d.TotalHaloWords())
	}
}

func TestFunctionalOptions(t *testing.T) {
	sys, err := fem2.New(
		fem2.WithClusters(2),
		fem2.WithPEsPerCluster(4),
		fem2.WithSharedMemoryWords(1<<16),
		fem2.WithCostModel(100, 2, 1, 25),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Machine.Clusters()); got != 2 {
		t.Errorf("clusters = %d, want 2", got)
	}
	// WithConfig replaces wholesale; later options still apply.
	cfg := fem2.DefaultConfig()
	cfg.Clusters = 8
	sys2, err := fem2.New(fem2.WithConfig(cfg), fem2.WithPEsPerCluster(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys2.Machine.Clusters()); got != 8 {
		t.Errorf("clusters = %d, want 8", got)
	}
	// Invalid options surface the arch validation error.
	if _, err := fem2.New(fem2.WithClusters(0)); err == nil {
		t.Error("zero clusters accepted")
	}
	// The compat constructor is New(WithConfig(cfg)).
	if _, err := fem2.NewSystem(fem2.DefaultConfig()); err != nil {
		t.Errorf("NewSystem compat: %v", err)
	}
}

func TestTypedCommandFacade(t *testing.T) {
	sys, err := fem2.New()
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Session("typed")
	ctx := context.Background()

	// Parse produces the re-exported command types.
	cmd, err := fem2.Parse("solve g l parallel 2")
	if err != nil {
		t.Fatal(err)
	}
	if sc, ok := cmd.(fem2.SolveCommand); !ok || sc.Parallel != 2 {
		t.Fatalf("Parse returned %#v", cmd)
	}

	// The enum kinds and constants are usable without string literals.
	var _ fem2.SolveMethod = fem2.SolveCG
	var _ fem2.DisplayKind = fem2.DisplayStresses
	if cmd := (fem2.ListCommand{What: fem2.ListWorkspace}); cmd.String() != "list workspace" {
		t.Errorf("list command renders %q", cmd.String())
	}

	// The typed flow end to end, with typed result access.
	for _, c := range []fem2.Command{
		fem2.GenerateGrid{Name: "g", NX: 6, NY: 4, W: 6, H: 4, ClampLeft: true},
		fem2.EndLoad{Model: "g", Set: "l", FY: -100},
	} {
		if _, err := s.Do(ctx, c); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
	}
	res, err := s.Do(ctx, fem2.SolveCommand{Model: "g", Set: "l", Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := res.(*fem2.SolveResult)
	if !ok {
		t.Fatalf("solve returned %T", res)
	}
	if sr.Parallel != 4 || sr.Iterations == 0 || sr.Makespan == 0 || sr.MaxDisp <= 0 {
		t.Errorf("solve result = %+v", sr)
	}

	// Every verb's reply is assertable through the facade aliases — the
	// reason the result types are re-exported (e.g. a new node's index
	// feeds the next AddBar without parsing text).
	res, err = s.Do(ctx, fem2.Define{Name: "hand"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.(*fem2.DefineResult); !ok {
		t.Errorf("define returned %T", res)
	}
	res, err = s.Do(ctx, fem2.AddNode{Model: "hand", X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	if nr, ok := res.(*fem2.NodeResult); !ok || nr.ID != 0 {
		t.Errorf("node returned %#v", res)
	}

	// The error taxonomy is visible through the facade.
	if _, err := s.Do(ctx, fem2.RetrieveCommand{Name: "ghost"}); !errors.Is(err, fem2.ErrNotFound) {
		t.Errorf("retrieve ghost: %v", err)
	}
	if _, err := fem2.Parse("solve"); !errors.Is(err, fem2.ErrUsage) {
		t.Errorf("bad parse: %v", err)
	}
	cancelledCtx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Do(cancelledCtx, fem2.ListCommand{What: "db"}); !errors.Is(err, fem2.ErrCancelled) {
		t.Errorf("cancelled Do: %v", err)
	}
	if _, err := s.Do(ctx, fem2.QuitCommand{}); !errors.Is(err, fem2.ErrQuit) {
		t.Errorf("quit: %v", err)
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tabs, err := fem2.RunAllExperiments()
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, tab := range tabs {
		all.WriteString(tab.String())
	}
	for _, want := range []string{"E1", "E11", "design-method"} {
		if !strings.Contains(all.String(), want) {
			t.Errorf("experiment output missing %q", want)
		}
	}
}
