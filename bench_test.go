// Benchmark harness: one bench per experiment in DESIGN.md's
// per-experiment index.  Each BenchmarkE* target regenerates its table
// (printed once under -v via b.Log) and reports the headline quantity as
// a custom metric, so `go test -bench=. -benchmem` reproduces the full
// evaluation of the paper.
package fem2_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"

	fem2 "repro"
	"repro/internal/arch"
	"repro/internal/exp"
	"repro/internal/fem"
	"repro/internal/hgraph"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/navm"
	"repro/internal/spvm"
	"repro/internal/trace"
)

// logTable prints an experiment table once per benchmark.
func logTable(b *testing.B, t *exp.Table, err error) *exp.Table {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + t.String())
	return t
}

// BenchmarkE1RequirementsSweep regenerates the Adams–Voigt style
// processing/storage/communication requirements table (E1).
func BenchmarkE1RequirementsSweep(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E1Requirements([]int{8, 16, 32}, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE2SolverSpeedup regenerates the solver speedup curve (E2).
func BenchmarkE2SolverSpeedup(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E2SolverSpeedup(24, []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	t = logTable(b, t, nil)
	if s, err := strconv.ParseFloat(t.Rows[len(t.Rows)-1][2], 64); err == nil {
		b.ReportMetric(s, "speedup@16")
	}
}

// BenchmarkE3Substructure regenerates the substructure parallelism table
// (E3).
func BenchmarkE3Substructure(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E3Substructure([]int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE4MultiUser regenerates the multi-user throughput table (E4).
func BenchmarkE4MultiUser(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E4MultiUser([]int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE5TaskInitiation regenerates the dynamic task initiation table
// (E5).
func BenchmarkE5TaskInitiation(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E5TaskInitiation([]int{10, 100, 1000})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE6WindowAccess regenerates the window access cost table (E6).
func BenchmarkE6WindowAccess(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E6WindowAccess()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE7FaultIsolation regenerates the fault isolation table (E7).
func BenchmarkE7FaultIsolation(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E7FaultIsolation([]int{0, 1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE8ProgrammabilityLevels regenerates the per-level
// programmability table (E8).
func BenchmarkE8ProgrammabilityLevels(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E8Programmability()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE9ClusterScheduling regenerates the cluster scheduling table
// (E9).
func BenchmarkE9ClusterScheduling(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E9ClusterScheduling([]int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE10LinalgKernels regenerates the NAVM kernel scaling table
// (E10).
func BenchmarkE10LinalgKernels(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E10LinalgKernels([]int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE11HGraphValidation regenerates the formal-specification
// validation table (E11) and measures grammar-check throughput.
func BenchmarkE11HGraphValidation(b *testing.B) {
	g := hgraph.SPVMMessageGrammar()
	msg := &spvm.Message{Type: spvm.MsgInitiate, TaskType: "w", Replications: 8, Params: []float64{1, 2}}
	gr := msg.ToHGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if errs := g.Validate(gr); len(errs) != 0 {
			b.Fatal(errs)
		}
	}
	b.StopTimer()
	t, err := exp.E11HGraphValidation(20)
	logTable(b, t, err)
}

// BenchmarkE12SolverComparison regenerates the CG / multi-colour SOR /
// Jacobi comparison (E12).
func BenchmarkE12SolverComparison(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E12SolverComparison(8, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE13LatencyAblation regenerates the network latency ablation
// (E13) — the design-space sensitivity study.
func BenchmarkE13LatencyAblation(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E13LatencyAblation([]int64{0, 50, 200, 800})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE14CommunicationPattern regenerates the cluster traffic
// matrices (E14) — the paper's "communication patterns" measurement.
func BenchmarkE14CommunicationPattern(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E14CommunicationPattern()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkE15RenumberingAblation regenerates the RCM renumbering
// ablation (E15) for the direct-solve baseline.
func BenchmarkE15RenumberingAblation(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.E15RenumberingAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// BenchmarkDesignIteration runs the design-method loop itself.
func BenchmarkDesignIteration(b *testing.B) {
	var t *exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.DesignIteration()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t, nil)
}

// --- kernel micro-benchmarks (the substrate costs behind the tables) ---

func benchSystem(b *testing.B, n int) (*linalg.CSR, linalg.Vector) {
	b.Helper()
	o := fem.RectGridOpts{NX: n, NY: n, W: float64(n), H: float64(n), Mat: fem.Steel(), ClampLeft: true}
	m, err := fem.RectGrid("bench", o)
	if err != nil {
		b.Fatal(err)
	}
	asm, err := fem.Assemble(m)
	if err != nil {
		b.Fatal(err)
	}
	ls := fem.EndLoad("l", o, 0, -1000)
	_, index := m.FreeDOFs()
	rhs, err := m.RHS(ls, index, len(asm.Free))
	if err != nil {
		b.Fatal(err)
	}
	return asm.K, rhs
}

// BenchmarkSolveBackends compares every backend in the solver registry
// — plus CG under each registered preconditioner — on one fixed plate,
// reporting iteration counts and flops per engine so the benchmark
// history carries a solver-trajectory signal.  A newly registered
// backend appears as a new sub-benchmark automatically.
func BenchmarkSolveBackends(b *testing.B) {
	k, rhs := benchSystem(b, 12)
	type engine struct{ backend, precond string }
	var cases []engine
	for _, name := range fem2.Backends() {
		cases = append(cases, engine{name, ""})
		if name == fem2.BackendCG {
			for _, p := range fem2.Preconds() {
				cases = append(cases, engine{name, p})
			}
		}
	}
	for _, c := range cases {
		label := c.backend
		if c.precond != "" {
			label += "+" + c.precond
		}
		b.Run(label, func(b *testing.B) {
			solver, err := linalg.Backend(c.backend)
			if err != nil {
				b.Fatal(err)
			}
			var info linalg.Info
			for i := 0; i < b.N; i++ {
				_, info, err = solver.Solve(context.Background(), k, rhs, linalg.IterOpts{Precond: c.precond})
				// Plain Jacobi legitimately exhausts its budget on
				// plates; the cost of trying is still the measurement.
				if err != nil && !errors.Is(err, linalg.ErrNoConvergence) {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(info.Iterations), "iters")
			b.ReportMetric(float64(info.Flops)/1e6, "Mflops")
		})
	}
}

// BenchmarkSequentialCG is the sequential baseline solver.
func BenchmarkSequentialCG(b *testing.B) {
	k, rhs := benchSystem(b, 16)
	b.ResetTimer()
	cgSolver, err := linalg.Backend(linalg.BackendCG)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := cgSolver.Solve(context.Background(), k, rhs, linalg.IterOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandedCholesky is the 1980s production direct solver baseline.
func BenchmarkBandedCholesky(b *testing.B) {
	k, rhs := benchSystem(b, 16)
	banded := k.ToBanded()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := banded.SolveCholesky(rhs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelCG16 is the distributed solver on 16 simulated
// workers.
func BenchmarkParallelCG16(b *testing.B) {
	k, rhs := benchSystem(b, 16)
	d, err := navm.Partition(k, rhs, 16)
	if err != nil {
		b.Fatal(err)
	}
	cfg := arch.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := navm.NewRuntime(arch.MustNew(cfg))
		rt.AttachInstrumentation(metrics.NewCollector(), nil)
		if _, _, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(k.N)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpMV measures the raw sparse kernel.
func BenchmarkSpMV(b *testing.B) {
	k, rhs := benchSystem(b, 24)
	out := linalg.NewVector(k.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MulVec(rhs, out, nil)
	}
	b.SetBytes(int64(k.NNZ() * 8))
}

// BenchmarkAssembly measures direct-stiffness assembly.
func BenchmarkAssembly(b *testing.B) {
	o := fem.RectGridOpts{NX: 16, NY: 16, W: 16, H: 16, Mat: fem.Steel(), ClampLeft: true}
	m, err := fem.RectGrid("bench", o)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fem.Assemble(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemble compares the assembly pipelines on the experiment
// plates: the triplet reference path (append + sort per assembly), the
// one-shot workspace path (symbolic + numeric), repeat numeric assembly
// through a reused workspace (the assemble-once-solve-many hot path),
// and the parallel numeric phase at 1/2/4/8 workers.  -benchmem shows
// the headline: pattern reuse eliminates the per-assembly sort and
// triplet allocations.
func BenchmarkAssemble(b *testing.B) {
	for _, n := range []int{8, 16} {
		o := fem.RectGridOpts{NX: n, NY: n, W: float64(n), H: float64(n), Mat: fem.Steel(), ClampLeft: true}
		m, err := fem.RectGrid("bench", o)
		if err != nil {
			b.Fatal(err)
		}
		prefix := "plate-" + strconv.Itoa(n) + "/"
		b.Run(prefix+"triplets", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fem.AssembleTriplets(m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(prefix+"pattern-once", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fem.Assemble(m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(prefix+"pattern-reuse", func(b *testing.B) {
			ws, err := fem.NewWorkspace(m)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ws.Assemble(); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(prefix+"parallel-"+strconv.Itoa(workers), func(b *testing.B) {
				ws, err := fem.NewWorkspace(m)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ws.AssembleParallel(workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSubstructureSolve measures the substructured solve with its
// condensation fan-out pinned to 1/2/4/8 host workers: the per-
// substructure interior factor (banded) and Schur condensation overlap
// across cores, the interface solve is the serial tail.
func BenchmarkSubstructureSolve(b *testing.B) {
	o := fem.RectGridOpts{NX: 32, NY: 8, W: 32, H: 8, Mat: fem.Steel(), ClampLeft: true}
	m, err := fem.RectGrid("bench", o)
	if err != nil {
		b.Fatal(err)
	}
	ls := fem.EndLoad("tip", o, 0, -2000)
	s, err := fem.PartitionByX(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers-"+strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fem.SolveSubstructuredWorkers(ctx, m, s, ls, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDirectSolve measures the factor-once split of the direct
// solvers on the plate-16 fixture: cold is the full cholesky-rcm
// pipeline per solve (symbolic + factor + solve, what every solve paid
// before the plan layer), warm is a repeat solve riding a retained
// factor (band and envelope storage), and refactor is the
// values-changed path — in-place numeric refactorisation plus solve.
// Warm and refactor run with zero steady-state allocations; the
// ProfileNNZ metrics show band vs envelope storage.
func BenchmarkDirectSolve(b *testing.B) {
	k, rhs := benchSystem(b, 16)
	newPlan := func(b *testing.B, opts linalg.PlanOpts) *linalg.DirectPlan {
		b.Helper()
		plan, err := linalg.NewDirectPlan(k, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := plan.Refactor(k, nil); err != nil {
			b.Fatal(err)
		}
		return plan
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := linalg.SolveCholeskyRCM(k, rhs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		plan := newPlan(b, linalg.PlanOpts{Ordering: linalg.OrderRCM})
		out := linalg.NewVector(k.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.SolveInto(rhs, out, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(plan.ProfileNNZ()), "profile-nnz")
	})
	b.Run("warm-env", func(b *testing.B) {
		plan := newPlan(b, linalg.PlanOpts{Ordering: linalg.OrderRCM, Storage: linalg.StorageEnvelope})
		out := linalg.NewVector(k.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.SolveInto(rhs, out, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(plan.ProfileNNZ()), "profile-nnz")
	})
	b.Run("refactor", func(b *testing.B) {
		plan := newPlan(b, linalg.PlanOpts{Ordering: linalg.OrderRCM})
		out := linalg.NewVector(k.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.Refactor(k, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := plan.SolveInto(rhs, out, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMessageCodec measures SPVM message encode+decode.
func BenchmarkMessageCodec(b *testing.B) {
	m := &spvm.Message{
		Type: spvm.MsgRemoteCall, Procedure: "dot", Caller: 3,
		Window: &spvm.WindowDesc{Array: "x", Kind: "row", Owner: 1, Rows: 1, Cols: 64},
		Params: make([]float64, 32),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spvm.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeapAllocFree measures the SPVM variable-size-block heap.
func BenchmarkHeapAllocFree(b *testing.B) {
	h := spvm.NewHeap(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1, err := h.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		a2, err := h.Alloc(128)
		if err != nil {
			b.Fatal(err)
		}
		h.Free(a1)
		h.Free(a2)
	}
}

// BenchmarkKernelDispatch measures the cluster kernel's decode+dispatch.
func BenchmarkKernelDispatch(b *testing.B) {
	cfg := arch.DefaultConfig()
	m := arch.MustNew(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Send(1, i%cfg.Clusters, 8, 0, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaskInitiation measures NAVM task spawn+join round trips.
func BenchmarkTaskInitiation(b *testing.B) {
	cfg := arch.DefaultConfig()
	rt := navm.NewRuntime(arch.MustNew(cfg))
	rt.AttachInstrumentation(metrics.NewCollector(), trace.NewCapped(1))
	root, err := rt.NewRootTask()
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.RegisterTaskType("noop", 16, 2, func(tc *navm.TaskCtx, r int) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := root.Initiate("noop", 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Wait(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseDispatch measures the command layer itself on a cheap
// verb, so parsing and dispatch dominate: the full Execute adapter
// (parse + interpret + render), the typed path with a per-call Parse,
// and the typed path with a pre-built command — the overhead a server
// skips by holding the AST.
func BenchmarkParseDispatch(b *testing.B) {
	newBenchSession := func(b *testing.B) *fem2.Session {
		b.Helper()
		sys, err := fem2.New()
		if err != nil {
			b.Fatal(err)
		}
		s := sys.Session("bench")
		if _, err := s.Execute("generate grid g 4 4 4 4 clamp-left"); err != nil {
			b.Fatal(err)
		}
		return s
	}
	const line = "display model g"
	b.Run("execute", func(b *testing.B) {
		s := newBenchSession(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(line); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse+do", func(b *testing.B) {
		s := newBenchSession(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cmd, err := fem2.Parse(line)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Do(ctx, cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("do", func(b *testing.B) {
		s := newBenchSession(b)
		ctx := context.Background()
		cmd := fem2.Display{What: "model", Model: "g"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Do(ctx, cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConcurrentSolves measures the asynchronous job service as a
// front end: N sessions each submit a solve on their own model through
// the shared scheduler and wait for all of them, so the headline metric
// is jobs/sec at 1, 4, and 16 parallel sessions.  Distinct models never
// serialize, so this exercises the worker pool, the per-model lock map,
// and the per-job metrics plumbing at full concurrency.
func BenchmarkConcurrentSolves(b *testing.B) {
	for _, sessions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			sys, err := fem2.New(fem2.WithWorkers(sessions))
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			ctx := context.Background()
			ss := make([]*fem2.Session, sessions)
			cmds := make([]fem2.Command, sessions)
			for i := range ss {
				ss[i] = sys.Session(fmt.Sprintf("user-%d", i))
				model := fmt.Sprintf("plate-%d", i)
				for _, line := range []string{
					fmt.Sprintf("generate grid %s 8 6 8 6 clamp-left", model),
					fmt.Sprintf("load %s tip endload 0 -100", model),
				} {
					if _, err := ss[i].Execute(line); err != nil {
						b.Fatal(err)
					}
				}
				cmds[i] = fem2.SolveCommand{Model: model, Set: "tip"}
			}
			ids := make([]fem2.JobID, sessions)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i := range ss {
					id, err := ss[i].SubmitAsync(ctx, cmds[i])
					if err != nil {
						b.Fatal(err)
					}
					ids[i] = id
				}
				for _, id := range ids {
					if _, err := sys.Jobs.Wait(ctx, id); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*sessions)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServerThroughput is BenchmarkConcurrentSolves pushed through
// the wire: N network clients against one fem2d-style server, each
// submitting a solve on its own model and waiting for the result, so
// the headline jobs/s at 1/4/16 clients carries the full protocol cost
// — frame codec, per-connection session, scheduler admission, and the
// notification fan-out — on top of the solve itself.
func BenchmarkServerThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			sys, err := fem2.New(fem2.WithWorkers(clients))
			if err != nil {
				b.Fatal(err)
			}
			srv := fem2.NewServer(sys, fem2.ServerConfig{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Shutdown(context.Background())

			ctx := context.Background()
			cls := make([]*fem2.Client, clients)
			cmds := make([]fem2.Command, clients)
			for i := range cls {
				cl, err := fem2.Dial(ln.Addr().String(), fmt.Sprintf("user-%d", i))
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				cls[i] = cl
				model := fmt.Sprintf("plate-%d", i)
				for _, cmd := range []fem2.Command{
					fem2.GenerateGrid{Name: model, NX: 8, NY: 6, W: 8, H: 6, ClampLeft: true},
					fem2.EndLoad{Model: model, Set: "tip", FY: -100},
				} {
					if _, err := cl.Do(ctx, cmd); err != nil {
						b.Fatal(err)
					}
				}
				cmds[i] = fem2.SolveCommand{Model: model, Set: "tip"}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				errc := make(chan error, clients)
				var wg sync.WaitGroup
				for i := range cls {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						res, err := cls[i].Do(ctx, fem2.SubmitCommand{Cmd: cmds[i]})
						if err != nil {
							errc <- err
							return
						}
						if _, err := cls[i].Do(ctx, fem2.WaitCommand{ID: res.(*fem2.SubmitResult).ID}); err != nil {
							errc <- err
						}
					}(i)
				}
				wg.Wait()
				close(errc)
				for err := range errc {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*clients)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkAUVMCommand measures command interpretation end to end.
func BenchmarkAUVMCommand(b *testing.B) {
	sys, err := fem2.NewSystem(fem2.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	s := sys.Session("bench")
	if _, err := s.Execute("generate grid g 8 8 8 8 clamp-left"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Execute("load g l endload 0 -1000"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute("solve g l method cholesky"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrammarValidateModel measures validating the AUVM model
// grammar.
func BenchmarkGrammarValidateModel(b *testing.B) {
	g := hgraph.StructureModelGrammar()
	gr := hgraph.NewGraph("model")
	root := gr.Add("model")
	root.Arc("name", gr.AddAtom("n", hgraph.Str("bench")))
	grid := hgraph.NewGraph("grid")
	groot := grid.Add("grid")
	groot.Arc("nodes", grid.AddAtom("n", hgraph.Int(100)))
	groot.Arc("dof-per-node", grid.AddAtom("d", hgraph.Int(2)))
	gn := hgraph.NewNode("grid")
	gn.SetSub(grid)
	gr.AddNode(gn)
	root.Arc("grid", gn)
	elems := gr.Add("elements")
	root.Arc("elements", elems)
	loads := gr.Add("loads")
	root.Arc("loads", loads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if errs := g.Validate(gr); len(errs) != 0 {
			b.Fatal(errs)
		}
	}
}
