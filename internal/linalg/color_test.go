package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyColoringPoissonIsRedBlack(t *testing.T) {
	m := poisson2D(6)
	c := GreedyColoring(m)
	if c.NumColors != 2 {
		t.Errorf("5-point stencil colored with %d colors, want 2 (red/black)", c.NumColors)
	}
	if err := c.Validate(m); err != nil {
		t.Fatal(err)
	}
	// Every row has exactly one color and appears once in Rows.
	count := 0
	for _, rows := range c.Rows {
		count += len(rows)
	}
	if count != m.N {
		t.Errorf("Rows lists %d of %d rows", count, m.N)
	}
}

func TestColoringValidateCatchesConflict(t *testing.T) {
	m := poisson2D(3)
	c := GreedyColoring(m)
	// Corrupt: force neighbours 0 and 1 to the same color.
	c.ColorOf[1] = c.ColorOf[0]
	if err := c.Validate(m); err == nil {
		t.Error("conflicting coloring validated")
	}
	// Wrong length rejected.
	bad := &Coloring{ColorOf: []int{0}}
	if err := bad.Validate(m); err == nil {
		t.Error("short coloring validated")
	}
}

func TestGreedyColoringDiagonalMatrixOneColor(t *testing.T) {
	m, err := NewCSRFromTriplets(4, []Triplet{
		{0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := GreedyColoring(m)
	if c.NumColors != 1 {
		t.Errorf("decoupled rows colored with %d colors", c.NumColors)
	}
}

func TestMultiColorSORSolvesPoisson(t *testing.T) {
	m := poisson2D(5)
	want := NewVector(m.N)
	rng := rand.New(rand.NewSource(9))
	for i := range want {
		want[i] = rng.Float64()*2 - 1
	}
	b := m.MulVec(want, nil, nil)
	c := GreedyColoring(m)
	opts := DefaultIterOpts(m.N)
	opts.Tol = 1e-9
	opts.MaxIter = 20000
	st := &Stats{}
	x, iters, err := MultiColorSOR(m, b, c, opts, st)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d > 1e-6 {
		t.Errorf("multi-colour SOR error %g after %d iters", d, iters)
	}
	if st.Flops == 0 || st.Iterations != iters {
		t.Errorf("stats %+v", *st)
	}
}

func TestMultiColorSORConvergesLikeLexicographicSOR(t *testing.T) {
	// Red/black ordering changes the iteration but not the limit; the
	// iteration counts stay within a small factor for the Poisson
	// problem.
	m := poisson2D(6)
	b := NewVector(m.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	opts := DefaultIterOpts(m.N)
	opts.Tol = 1e-8
	opts.MaxIter = 50000
	_, lexIters, err := seqSOR(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := GreedyColoring(m)
	xRB, rbIters, err := MultiColorSOR(m, b, c, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	xLex, _, _ := seqSOR(m, b, opts, nil)
	if d := MaxAbsDiff(xRB, xLex); d > 1e-6 {
		t.Errorf("orderings disagree by %g", d)
	}
	if rbIters > 3*lexIters {
		t.Errorf("red/black took %d iters vs lexicographic %d", rbIters, lexIters)
	}
}

func TestMultiColorSORErrors(t *testing.T) {
	m := poisson2D(3)
	b := NewVector(m.N)
	b.Fill(1)
	c := GreedyColoring(m)
	opts := DefaultIterOpts(m.N)
	opts.Omega = 2.5
	if _, _, err := MultiColorSOR(m, b, c, opts, nil); err == nil {
		t.Error("bad omega accepted")
	}
	// Zero diagonal.
	zd, _ := NewCSRFromTriplets(2, []Triplet{{0, 1, 1}, {1, 0, 1}})
	czd := GreedyColoring(zd)
	if _, _, err := MultiColorSOR(zd, Vector{1, 1}, czd, DefaultIterOpts(2), nil); err == nil {
		t.Error("zero diagonal accepted")
	}
	// Budget exhaustion.
	opts = DefaultIterOpts(m.N)
	opts.MaxIter = 1
	opts.Tol = 1e-15
	if _, _, err := MultiColorSOR(m, b, c, opts, nil); err == nil {
		t.Error("budget exhaustion not reported")
	}
	// Zero RHS short-circuits.
	if x, iters, err := MultiColorSOR(m, NewVector(m.N), c, DefaultIterOpts(m.N), nil); err != nil || iters != 0 || NormInf(x) != 0 {
		t.Error("zero rhs mishandled")
	}
}

// Property: greedy coloring of random sparse SPD-patterned matrices is
// always valid and uses at most maxDegree+1 colors.
func TestQuickGreedyColoringValid(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%20 + 2
		rng := rand.New(rand.NewSource(seed))
		var ts []Triplet
		for i := 0; i < n; i++ {
			ts = append(ts, Triplet{i, i, 4})
		}
		// Random symmetric off-diagonals.
		for e := 0; e < 2*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			ts = append(ts, Triplet{i, j, -1}, Triplet{j, i, -1})
		}
		m, err := NewCSRFromTriplets(n, ts)
		if err != nil {
			return false
		}
		c := GreedyColoring(m)
		if c.Validate(m) != nil {
			return false
		}
		maxDeg := 0
		for i := 0; i < n; i++ {
			if d := m.RowNNZ(i) - 1; d > maxDeg {
				maxDeg = d
			}
		}
		return c.NumColors <= maxDeg+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDenseCholFactorAndSolve(t *testing.T) {
	a := DenseFromRows([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 5},
	})
	ch, err := CholeskyDense(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{1, -2, 0.5}
	b := a.MulVec(want, nil, nil)
	x := ch.Solve(b, nil)
	if d := MaxAbsDiff(x, want); d > 1e-12 {
		t.Errorf("DenseChol solve error %g", d)
	}
	// Multi-RHS solve.
	bm := NewDense(3, 2)
	for i := 0; i < 3; i++ {
		bm.Set(i, 0, b[i])
		bm.Set(i, 1, 2*b[i])
	}
	xm := ch.SolveMatrix(bm, nil)
	for i := 0; i < 3; i++ {
		if d := xm.At(i, 0) - want[i]; d > 1e-12 || d < -1e-12 {
			t.Errorf("SolveMatrix col 0 row %d off by %g", i, d)
		}
		if d := xm.At(i, 1) - 2*want[i]; d > 1e-12 || d < -1e-12 {
			t.Errorf("SolveMatrix col 1 row %d off by %g", i, d)
		}
	}
}

func TestDenseCholRejectsNonSPD(t *testing.T) {
	if _, err := CholeskyDense(DenseFromRows([][]float64{{0}}), nil); err == nil {
		t.Error("zero pivot accepted")
	}
	if _, err := CholeskyDense(NewDense(2, 3), nil); err == nil {
		t.Error("non-square accepted")
	}
	indef := DenseFromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := CholeskyDense(indef, nil); err == nil {
		t.Error("indefinite accepted")
	}
}

// Property: DenseChol agrees with Gaussian elimination on random SPD
// matrices A = MᵀM + I.
func TestQuickDenseCholMatchesGauss(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.Float64()*2-1)
			}
		}
		a := m.Transpose().Mul(m, nil)
		for i := 0; i < n; i++ {
			a.AddAt(i, i, 1)
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		ch, err := CholeskyDense(a, nil)
		if err != nil {
			return false
		}
		xc := ch.Solve(b, nil)
		xg, err := a.SolveGauss(b, nil)
		if err != nil {
			return false
		}
		return MaxAbsDiff(xc, xg) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
