package linalg

import (
	"fmt"
)

// RCM computes the reverse Cuthill–McKee ordering of a structurally
// symmetric sparse matrix: perm[newIndex] = oldIndex.  RCM was the
// standard bandwidth-reducing preprocessing of 1980s finite element
// codes — banded Cholesky cost grows with the square of the bandwidth,
// so a good numbering decides whether the direct baseline is viable.
func RCM(a *CSR) []int {
	n := a.N
	// perm doubles as the BFS queue: a vertex is appended when
	// discovered and processed when head reaches it, so the slice is the
	// Cuthill–McKee order with no separate queue allocation.
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	deg := func(i int) int { return a.RowNNZ(i) }
	var nbrs []int

	// Process each connected component from a minimum-degree start.
	for head := 0; len(perm) < n; {
		start := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (start == -1 || deg(i) < deg(start)) {
				start = i
			}
		}
		// BFS in degree order (Cuthill–McKee).
		perm = append(perm, start)
		visited[start] = true
		for ; head < len(perm); head++ {
			v := perm[head]
			nbrs = nbrs[:0]
			for _, j := range a.RowColumns(v) {
				if j != v && !visited[j] {
					visited[j] = true
					nbrs = append(nbrs, j)
				}
			}
			// Insertion sort by (degree, index) — a strict total order,
			// so the result is identical to any comparison sort, without
			// sort.Slice's per-call allocations (neighbour lists are
			// element-arity small).
			for x := 1; x < len(nbrs); x++ {
				for y := x; y > 0; y-- {
					dy, dp := deg(nbrs[y]), deg(nbrs[y-1])
					if dy < dp || (dy == dp && nbrs[y] < nbrs[y-1]) {
						nbrs[y], nbrs[y-1] = nbrs[y-1], nbrs[y]
						continue
					}
					break
				}
			}
			perm = append(perm, nbrs...)
		}
	}
	// Reverse (the "R" in RCM).
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Permute applies a symmetric permutation to the matrix: result[i][j] =
// a[perm[i]][perm[j]].  perm[newIndex] = oldIndex, as produced by RCM.
func (a *CSR) Permute(perm []int) (*CSR, error) {
	if len(perm) != a.N {
		return nil, fmt.Errorf("%w: permutation of %d for order %d", ErrDimension, len(perm), a.N)
	}
	inv := make([]int, a.N)
	seen := make([]bool, a.N)
	for newI, oldI := range perm {
		if oldI < 0 || oldI >= a.N || seen[oldI] {
			return nil, fmt.Errorf("linalg: not a permutation at %d", newI)
		}
		seen[oldI] = true
		inv[oldI] = newI
	}
	ts := make([]Triplet, 0, a.NNZ())
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			ts = append(ts, Triplet{Row: inv[i], Col: inv[a.ColIdx[k]], Val: a.Val[k]})
		}
	}
	return NewCSRFromTriplets(a.N, ts)
}

// PermuteVector gathers v into the new ordering: out[i] = v[perm[i]].
func PermuteVector(v Vector, perm []int) Vector {
	out := NewVector(len(perm))
	for i, oldI := range perm {
		out[i] = v[oldI]
	}
	return out
}

// UnpermuteVector scatters a solution back to the original ordering:
// out[perm[i]] = v[i].
func UnpermuteVector(v Vector, perm []int) Vector {
	out := NewVector(len(perm))
	for i, oldI := range perm {
		out[oldI] = v[i]
	}
	return out
}

// SolveCholeskyRCM solves A*x = b by banded Cholesky after RCM
// reordering, returning the solution in the original ordering — the full
// 1980s production direct-solve pipeline.  It is a one-shot DirectPlan:
// the permuted values scatter straight into banded storage through the
// plan's index map instead of materialising a permuted CSR from
// triplets, which is where the old pipeline's hundreds of allocations
// per solve went.  Callers that solve one topology repeatedly should
// retain the plan (NewDirectPlan) or go through a FactorCache instead.
func SolveCholeskyRCM(a *CSR, b Vector, st *Stats) (Vector, error) {
	plan, err := NewDirectPlan(a, PlanOpts{Ordering: OrderRCM})
	if err != nil {
		return nil, err
	}
	if err := plan.Refactor(a, st); err != nil {
		return nil, err
	}
	return plan.SolveInto(b, nil, st)
}
