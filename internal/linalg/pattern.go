package linalg

import "fmt"

// Pattern is the symbolic half of sparse assembly: the CSR sparsity
// pattern of a matrix, separated from its values.  Finite element
// assembly visits the same mesh topology once per load step, design
// iteration, or solver-comparison row, so the expensive part — sorting
// the scattered (row, col) contributions into CSR order — is computed
// once here and every numeric re-assembly becomes a branch-light
// scatter-add through a precomputed index map.
//
// RowPtr and ColIdx have exactly the CSR meaning; CSR matrices built by
// NewCSR share them (callers must treat them as immutable).
type Pattern struct {
	N      int
	RowPtr []int
	ColIdx []int
}

// NewPattern builds the sparsity pattern of an n×n matrix from entry
// coordinates, collapsing duplicates.  Instead of a comparison sort it
// runs a two-pass counting (radix) sort — stable by column, then stable
// by row — so construction is O(nnz + n).
//
// The second return value is the scatter map: scatter[k] is the flat
// index into a pattern-ordered value array (CSR Val) that coordinate k
// lands on.  Duplicate coordinates share a flat index, so a numeric
// phase that walks the inputs in order and adds Val[scatter[k]] += v
// reproduces duplicate summation in exactly the input order.
//
// Every coordinate is represented in the pattern, including those whose
// values later sum to zero: the pattern is a function of the topology
// alone, which is what makes it sound to reuse across re-assemblies.
func NewPattern(n int, rows, cols []int) (*Pattern, []int, error) {
	if len(rows) != len(cols) {
		return nil, nil, fmt.Errorf("%w: pattern rows %d vs cols %d", ErrDimension, len(rows), len(cols))
	}
	m := len(rows)
	for k := 0; k < m; k++ {
		if rows[k] < 0 || rows[k] >= n || cols[k] < 0 || cols[k] >= n {
			return nil, nil, fmt.Errorf("linalg: entry (%d,%d) outside order %d", rows[k], cols[k], n)
		}
	}
	// Pass 1: stable counting sort of entry indices by column.
	cnt := make([]int, n+1)
	for _, c := range cols {
		cnt[c+1]++
	}
	for c := 0; c < n; c++ {
		cnt[c+1] += cnt[c]
	}
	byCol := make([]int, m)
	for k := 0; k < m; k++ {
		c := cols[k]
		byCol[cnt[c]] = k
		cnt[c]++
	}
	// Pass 2: stable counting sort of the column-ordered indices by row,
	// yielding entries sorted by (row, col), ties in input order.
	for i := range cnt {
		cnt[i] = 0
	}
	for _, r := range rows {
		cnt[r+1]++
	}
	for r := 0; r < n; r++ {
		cnt[r+1] += cnt[r]
	}
	order := make([]int, m)
	for _, k := range byCol {
		r := rows[k]
		order[cnt[r]] = k
		cnt[r]++
	}
	// Collapse duplicates into the CSR pattern while recording where
	// each input coordinate scatters.
	p := &Pattern{N: n, RowPtr: make([]int, n+1)}
	scatter := make([]int, m)
	colIdx := make([]int, 0, m)
	prevRow, prevCol := -1, -1
	for _, k := range order {
		r, c := rows[k], cols[k]
		if r != prevRow || c != prevCol {
			colIdx = append(colIdx, c)
			p.RowPtr[r+1]++
			prevRow, prevCol = r, c
		}
		scatter[k] = len(colIdx) - 1
	}
	for i := 0; i < n; i++ {
		p.RowPtr[i+1] += p.RowPtr[i]
	}
	p.ColIdx = colIdx
	return p, scatter, nil
}

// NNZ returns the number of stored entries the pattern describes.
func (p *Pattern) NNZ() int { return len(p.ColIdx) }

// RowNNZ returns the number of stored entries in row i.
func (p *Pattern) RowNNZ(i int) int { return p.RowPtr[i+1] - p.RowPtr[i] }

// NewCSR returns a CSR matrix over this pattern with a fresh zero value
// array.  RowPtr and ColIdx are shared with the pattern (and with every
// other CSR built from it); only Val is private to the returned matrix.
func (p *Pattern) NewCSR() *CSR {
	return &CSR{N: p.N, RowPtr: p.RowPtr, ColIdx: p.ColIdx, Val: make([]float64, len(p.ColIdx))}
}
