package linalg

import (
	"fmt"
	"math"
)

// DenseChol is the Cholesky factorisation of a dense symmetric positive
// definite matrix, kept for repeated solves — substructure condensation
// solves K_ii against many right-hand sides (one per interface dof).
type DenseChol struct {
	n int
	l *Dense // lower triangle, including diagonal
}

// CholeskyDense factors an SPD dense matrix A = L·Lᵀ.
func CholeskyDense(a *Dense, st *Stats) (*DenseChol, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: CholeskyDense %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	l := NewDense(n, n)
	var flops int64
	for j := 0; j < n; j++ {
		s := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			s -= v * v
			flops += 2
		}
		if s <= 0 {
			return nil, fmt.Errorf("linalg: dense matrix not positive definite at %d (pivot %g)", j, s)
		}
		d := math.Sqrt(s)
		flops++
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
				flops += 2
			}
			l.Set(i, j, s/d)
			flops++
		}
	}
	st.addFlops(flops)
	return &DenseChol{n: n, l: l}, nil
}

// Solve returns x with A·x = b.
func (c *DenseChol) Solve(b Vector, st *Stats) Vector {
	if len(b) != c.n {
		panic(fmt.Errorf("%w: DenseChol.Solve order %d with rhs %d", ErrDimension, c.n, len(b)))
	}
	y := b.Clone()
	var flops int64
	for i := 0; i < c.n; i++ {
		s := y[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
			flops += 2
		}
		y[i] = s / c.l.At(i, i)
		flops++
	}
	for i := c.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * y[k]
			flops += 2
		}
		y[i] = s / c.l.At(i, i)
		flops++
	}
	st.addFlops(flops)
	return y
}

// SolveMatrix solves A·X = B column by column.
func (c *DenseChol) SolveMatrix(b *Dense, st *Stats) *Dense {
	if b.Rows != c.n {
		panic(fmt.Errorf("%w: DenseChol.SolveMatrix order %d with %d rows", ErrDimension, c.n, b.Rows))
	}
	out := NewDense(c.n, b.Cols)
	col := NewVector(c.n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.At(i, j)
		}
		x := c.Solve(col, st)
		for i := 0; i < c.n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}
