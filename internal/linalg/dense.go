package linalg

import "fmt"

// Dense is a row-major dense matrix.  Element stiffness matrices and the
// small interface systems produced by substructure condensation are dense;
// the global FEM systems are stored banded or sparse.
type Dense struct {
	Rows, Cols int
	data       []float64
}

// NewDense returns a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Errorf("%w: NewDense %dx%d", ErrDimension, rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// DenseFromRows builds a matrix from row slices, which must all share one
// length.
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Errorf("%w: DenseFromRows row %d has %d cols, want %d", ErrDimension, i, len(r), m.Cols))
		}
		copy(m.data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i,j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// AddAt adds v to element (i,j); the core assembly primitive.
func (m *Dense) AddAt(i, j int, v float64) { m.data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) Vector { return Vector(m.data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns an independent copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// MulVec computes out = M*x, allocating out when nil.
func (m *Dense) MulVec(x, out Vector, st *Stats) Vector {
	if len(x) != m.Cols {
		panic(fmt.Errorf("%w: Dense.MulVec %dx%d by %d", ErrDimension, m.Rows, m.Cols, len(x)))
	}
	if out == nil {
		out = NewVector(m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	st.addFlops(int64(2 * m.Rows * m.Cols))
	return out
}

// Mul computes the product M*B.
func (m *Dense) Mul(b *Dense, st *Stats) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Errorf("%w: Dense.Mul %dx%d by %dx%d", ErrDimension, m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.AddAt(i, j, a*b.At(k, j))
			}
		}
	}
	st.addFlops(int64(2 * m.Rows * m.Cols * b.Cols))
	return out
}

// Transpose returns Mᵀ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// IsSymmetric reports whether |m_ij - m_ji| <= tol for all i,j.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			d := m.At(i, j) - m.At(j, i)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// SolveGauss solves M*x = b by Gaussian elimination with partial pivoting,
// destroying neither operand.  Used for the small dense interface systems
// in substructure analysis.
func (m *Dense) SolveGauss(b Vector, st *Stats) (Vector, error) {
	n := m.Rows
	if m.Cols != n || len(b) != n {
		return nil, fmt.Errorf("%w: SolveGauss %dx%d with rhs %d", ErrDimension, m.Rows, m.Cols, len(b))
	}
	a := m.Clone()
	x := b.Clone()
	var flops int64
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		pv := a.At(k, k)
		if pv < 0 {
			pv = -pv
		}
		for i := k + 1; i < n; i++ {
			v := a.At(i, k)
			if v < 0 {
				v = -v
			}
			if v > pv {
				p, pv = i, v
			}
		}
		if pv == 0 {
			return nil, fmt.Errorf("linalg: singular matrix at pivot %d", k)
		}
		if p != k {
			for j := k; j < n; j++ {
				ak, ap := a.At(k, j), a.At(p, j)
				a.Set(k, j, ap)
				a.Set(p, j, ak)
			}
			x[k], x[p] = x[p], x[k]
		}
		for i := k + 1; i < n; i++ {
			f := a.At(i, k) / a.At(k, k)
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				a.AddAt(i, j, -f*a.At(k, j))
			}
			x[i] -= f * x[k]
			flops += int64(2*(n-k) + 3)
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
		flops += int64(2*(n-i-1) + 1)
	}
	st.addFlops(flops)
	return x, nil
}
