package linalg

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// seqCG, seqJacobi, and seqSOR adapt the engine kernels to the historic
// (x, iters, err) shape the kernel-level tests in this package assert
// against; the engine API itself is covered by engine_test.go.
func seqCG(a Operator, b Vector, opts IterOpts, st *Stats) (Vector, int, error) {
	x, iters, _, err := cg(context.Background(), a, b, nil, opts, st, nil)
	return x, iters, err
}

func seqJacobi(a *CSR, b Vector, opts IterOpts, st *Stats) (Vector, int, error) {
	x, iters, _, err := jacobi(context.Background(), a, b, opts, st, nil)
	return x, iters, err
}

func seqSOR(a *CSR, b Vector, opts IterOpts, st *Stats) (Vector, int, error) {
	x, iters, _, err := sor(context.Background(), a, b, opts, st, nil)
	return x, iters, err
}

func solveAllWaysSystem(t *testing.T, n int) (*CSR, Vector, Vector) {
	t.Helper()
	m := poisson2D(n)
	want := NewVector(m.N)
	rng := rand.New(rand.NewSource(7))
	for i := range want {
		want[i] = rng.Float64()*2 - 1
	}
	b := m.MulVec(want, nil, nil)
	return m, b, want
}

func TestCGSolvesPoisson(t *testing.T) {
	m, b, want := solveAllWaysSystem(t, 8)
	st := &Stats{}
	x, iters, err := seqCG(m, b, DefaultIterOpts(m.N), st)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d > 1e-6 {
		t.Errorf("CG error %g", d)
	}
	if iters <= 0 || iters > m.N {
		t.Errorf("CG iterations = %d (CG must finish within n for SPD)", iters)
	}
	if st.Flops == 0 || st.Iterations != iters {
		t.Errorf("stats = %+v, iters = %d", *st, iters)
	}
}

func TestCGZeroRHS(t *testing.T) {
	m, _, _ := solveAllWaysSystem(t, 4)
	x, iters, err := seqCG(m, NewVector(m.N), DefaultIterOpts(m.N), nil)
	if err != nil || iters != 0 {
		t.Fatalf("zero rhs: err=%v iters=%d", err, iters)
	}
	if NormInf(Vector(x)) != 0 {
		t.Error("zero rhs should give zero solution")
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	// -I is symmetric negative definite: pᵀAp < 0 immediately.
	m, err := NewCSRFromTriplets(3, []Triplet{{0, 0, -1}, {1, 1, -1}, {2, 2, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := seqCG(m, Vector{1, 1, 1}, DefaultIterOpts(3), nil); err == nil {
		t.Error("CG on negative definite matrix did not report breakdown")
	}
}

func TestCGNoConvergenceBudget(t *testing.T) {
	m, b, _ := solveAllWaysSystem(t, 8)
	opts := DefaultIterOpts(m.N)
	opts.MaxIter = 1
	opts.Tol = 1e-14
	_, _, err := seqCG(m, b, opts, nil)
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("want ErrNoConvergence, got %v", err)
	}
}

func TestCGIterationCallback(t *testing.T) {
	m, b, _ := solveAllWaysSystem(t, 4)
	var history []float64
	opts := DefaultIterOpts(m.N)
	opts.OnIteration = func(iter int, resid float64) { history = append(history, resid) }
	_, iters, err := seqCG(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != iters {
		t.Errorf("callback fired %d times for %d iterations", len(history), iters)
	}
	if history[len(history)-1] > opts.Tol {
		t.Errorf("final residual %g above tol", history[len(history)-1])
	}
}

func TestJacobiSolvesPoisson(t *testing.T) {
	m, b, want := solveAllWaysSystem(t, 5)
	opts := DefaultIterOpts(m.N)
	opts.Tol = 1e-10
	opts.MaxIter = 20000
	x, iters, err := seqJacobi(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d > 1e-7 {
		t.Errorf("Jacobi error %g after %d iters", d, iters)
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	m, err := NewCSRFromTriplets(2, []Triplet{{0, 1, 1}, {1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := seqJacobi(m, Vector{1, 1}, DefaultIterOpts(2), nil); err == nil {
		t.Error("Jacobi with zero diagonal did not fail")
	}
}

func TestJacobiZeroRHS(t *testing.T) {
	m, _, _ := solveAllWaysSystem(t, 3)
	x, iters, err := seqJacobi(m, NewVector(m.N), DefaultIterOpts(m.N), nil)
	if err != nil || iters != 0 || NormInf(Vector(x)) != 0 {
		t.Errorf("zero rhs: x=%v iters=%d err=%v", x, iters, err)
	}
}

func TestSORSolvesPoissonFasterThanJacobi(t *testing.T) {
	m, b, want := solveAllWaysSystem(t, 5)
	opts := DefaultIterOpts(m.N)
	opts.Tol = 1e-9
	opts.MaxIter = 20000

	_, jIters, err := seqJacobi(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, sIters, err := seqSOR(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d > 1e-6 {
		t.Errorf("SOR error %g", d)
	}
	if sIters >= jIters {
		t.Errorf("SOR (%d iters) should beat Jacobi (%d iters) on Poisson", sIters, jIters)
	}
}

func TestSORGaussSeidelOmegaOne(t *testing.T) {
	m, b, want := solveAllWaysSystem(t, 4)
	opts := DefaultIterOpts(m.N)
	opts.Omega = 1.0
	opts.MaxIter = 20000
	x, _, err := seqSOR(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d > 1e-6 {
		t.Errorf("Gauss-Seidel error %g", d)
	}
}

func TestSORRejectsBadOmega(t *testing.T) {
	m, b, _ := solveAllWaysSystem(t, 3)
	for _, w := range []float64{0, -1, 2, 2.5} {
		opts := DefaultIterOpts(m.N)
		opts.Omega = w
		if _, _, err := seqSOR(m, b, opts, nil); err == nil {
			t.Errorf("SOR accepted omega = %g", w)
		}
	}
}

func TestSORZeroDiagonal(t *testing.T) {
	m, err := NewCSRFromTriplets(2, []Triplet{{0, 1, 1}, {1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := seqSOR(m, Vector{1, 1}, DefaultIterOpts(2), nil); err == nil {
		t.Error("SOR with zero diagonal did not fail")
	}
}

func TestResidualZeroForExactSolution(t *testing.T) {
	m, b, want := solveAllWaysSystem(t, 4)
	if r := Residual(m, want, b, nil); r > 1e-10 {
		t.Errorf("residual of exact solution = %g", r)
	}
}

func TestAllSolversAgree(t *testing.T) {
	m, b, _ := solveAllWaysSystem(t, 6)
	opts := DefaultIterOpts(m.N)
	opts.Tol = 1e-10
	opts.MaxIter = 50000

	xc, _, err := seqCG(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	xj, _, err := seqJacobi(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	xs, _, err := seqSOR(m, b, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := m.ToBanded().SolveCholesky(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(xc, xb); d > 1e-6 {
		t.Errorf("CG vs Cholesky differ by %g", d)
	}
	if d := MaxAbsDiff(xj, xb); d > 1e-6 {
		t.Errorf("Jacobi vs Cholesky differ by %g", d)
	}
	if d := MaxAbsDiff(xs, xb); d > 1e-6 {
		t.Errorf("SOR vs Cholesky differ by %g", d)
	}
}

// Property: CG solves random SPD diagonally-perturbed Laplacians and the
// solution matches the direct banded solve.
func TestQuickCGMatchesDirect(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%10 + 2
		rng := rand.New(rand.NewSource(seed))
		ts := poisson1D(n)
		for i := 0; i < n; i++ {
			ts = append(ts, Triplet{i, i, rng.Float64()}) // keep SPD
		}
		m, err := NewCSRFromTriplets(n, ts)
		if err != nil {
			return false
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		x, _, err := seqCG(m, b, DefaultIterOpts(n), nil)
		if err != nil {
			return false
		}
		xd, err := m.ToBanded().SolveCholesky(b, nil)
		if err != nil {
			return false
		}
		return MaxAbsDiff(x, xd) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
