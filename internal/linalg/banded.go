package linalg

import (
	"fmt"
	"math"
)

// Banded is a symmetric positive-definite matrix stored in lower banded
// form: element (i,j) with 0 <= i-j <= Bandwidth is kept at band[i][i-j].
// This is the classical storage scheme of 1980s finite element codes; the
// sequential banded Cholesky solver below is the baseline the FEM-2 paper's
// parallel methods are compared against.
type Banded struct {
	N         int
	Bandwidth int // number of sub-diagonals stored (half-bandwidth)
	band      []float64
}

// NewBanded returns a zero symmetric banded matrix of order n with the
// given half-bandwidth.
func NewBanded(n, bandwidth int) *Banded {
	if n < 0 || bandwidth < 0 {
		panic(fmt.Errorf("%w: NewBanded n=%d bw=%d", ErrDimension, n, bandwidth))
	}
	if bandwidth >= n && n > 0 {
		bandwidth = n - 1
	}
	return &Banded{N: n, Bandwidth: bandwidth, band: make([]float64, n*(bandwidth+1))}
}

// inBand reports whether (i,j) lies inside the stored band.
func (b *Banded) inBand(i, j int) bool {
	d := i - j
	if d < 0 {
		d = -d
	}
	return d <= b.Bandwidth
}

// At returns element (i,j), exploiting symmetry; outside the band it is 0.
func (b *Banded) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	if i-j > b.Bandwidth {
		return 0
	}
	return b.band[i*(b.Bandwidth+1)+(i-j)]
}

// Set assigns element (i,j) (and by symmetry (j,i)).  Setting outside the
// band panics: the mesh numbering determines the bandwidth up front.
func (b *Banded) Set(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	if i-j > b.Bandwidth {
		panic(fmt.Errorf("linalg: Banded.Set(%d,%d) outside bandwidth %d", i, j, b.Bandwidth))
	}
	b.band[i*(b.Bandwidth+1)+(i-j)] = v
}

// AddAt adds v to element (i,j); the assembly primitive.
func (b *Banded) AddAt(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	if i-j > b.Bandwidth {
		panic(fmt.Errorf("linalg: Banded.AddAt(%d,%d) outside bandwidth %d", i, j, b.Bandwidth))
	}
	b.band[i*(b.Bandwidth+1)+(i-j)] += v
}

// Clone returns an independent copy.
func (b *Banded) Clone() *Banded {
	out := NewBanded(b.N, b.Bandwidth)
	copy(out.band, b.band)
	return out
}

// MulVec computes out = B*x, allocating out when nil.
func (b *Banded) MulVec(x, out Vector, st *Stats) Vector {
	if len(x) != b.N {
		panic(fmt.Errorf("%w: Banded.MulVec order %d by %d", ErrDimension, b.N, len(x)))
	}
	if out == nil {
		out = NewVector(b.N)
	} else {
		out.Fill(0)
	}
	var flops int64
	for i := 0; i < b.N; i++ {
		lo := i - b.Bandwidth
		if lo < 0 {
			lo = 0
		}
		// Diagonal and sub-diagonal part, applying symmetry for the
		// super-diagonal contribution.
		for j := lo; j < i; j++ {
			v := b.band[i*(b.Bandwidth+1)+(i-j)]
			if v == 0 {
				continue
			}
			out[i] += v * x[j]
			out[j] += v * x[i]
			flops += 4
		}
		out[i] += b.band[i*(b.Bandwidth+1)] * x[i]
		flops += 2
	}
	st.addFlops(flops)
	return out
}

// ToDense expands the banded matrix to dense form (tests only; O(n²)).
func (b *Banded) ToDense() *Dense {
	d := NewDense(b.N, b.N)
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			d.Set(i, j, b.At(i, j))
		}
	}
	return d
}

// CholeskyFactor computes the banded Cholesky factor L with B = L*Lᵀ,
// returned in the same banded layout.  It fails if B is not positive
// definite.  Flop counts are recorded in st.
func (b *Banded) CholeskyFactor(st *Stats) (*Banded, error) {
	l := b.Clone()
	if err := l.CholeskyFactorInPlace(st); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskyFactorInPlace overwrites the receiver with its Cholesky
// factor — the allocation-free form DirectPlan refactors through; the
// arithmetic is identical to CholeskyFactor.
func (b *Banded) CholeskyFactorInPlace(st *Stats) error {
	l := b
	w := l.Bandwidth
	var flops int64
	for j := 0; j < l.N; j++ {
		// Diagonal.
		s := l.At(j, j)
		lo := j - w
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < j; k++ {
			v := l.At(j, k)
			s -= v * v
			flops += 2
		}
		if s <= 0 {
			return fmt.Errorf("linalg: matrix not positive definite at row %d (pivot %g)", j, s)
		}
		d := math.Sqrt(s)
		flops++
		l.Set(j, j, d)
		// Column below the diagonal, within the band.
		hi := j + w
		if hi >= l.N {
			hi = l.N - 1
		}
		for i := j + 1; i <= hi; i++ {
			s := l.At(i, j)
			klo := i - w
			if klo < lo {
				klo = lo
			}
			if klo < 0 {
				klo = 0
			}
			for k := klo; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
				flops += 2
			}
			l.Set(i, j, s/d)
			flops++
		}
	}
	st.addFlops(flops)
	return nil
}

// CholeskySolve solves B*x = rhs given the factor L from CholeskyFactor,
// by forward then backward substitution.
func (l *Banded) CholeskySolve(rhs Vector, st *Stats) Vector {
	return l.CholeskySolveInto(rhs, nil, st)
}

// CholeskySolveInto is CholeskySolve writing into out (allocated when
// nil).  out may alias rhs, solving in place — the repeated-solve paths
// (condensation's one solve per boundary dof) reuse one buffer.
func (l *Banded) CholeskySolveInto(rhs, out Vector, st *Stats) Vector {
	if len(rhs) != l.N {
		panic(fmt.Errorf("%w: CholeskySolve order %d with rhs %d", ErrDimension, l.N, len(rhs)))
	}
	w := l.Bandwidth
	y := out
	if y == nil {
		y = NewVector(l.N)
	}
	if len(y) != l.N {
		panic(fmt.Errorf("%w: CholeskySolveInto order %d into %d", ErrDimension, l.N, len(y)))
	}
	if l.N > 0 && &y[0] != &rhs[0] {
		copy(y, rhs)
	}
	var flops int64
	// Forward: L*y = rhs.
	for i := 0; i < l.N; i++ {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		s := y[i]
		for k := lo; k < i; k++ {
			s -= l.At(i, k) * y[k]
			flops += 2
		}
		y[i] = s / l.At(i, i)
		flops++
	}
	// Backward: Lᵀ*x = y.
	for i := l.N - 1; i >= 0; i-- {
		hi := i + w
		if hi >= l.N {
			hi = l.N - 1
		}
		s := y[i]
		for k := i + 1; k <= hi; k++ {
			s -= l.At(k, i) * y[k]
			flops += 2
		}
		y[i] = s / l.At(i, i)
		flops++
	}
	st.addFlops(flops)
	return y
}

// CholeskySolveMatrix solves B·X = C column by column given the factor L
// from CholeskyFactor, reusing one column buffer across all right-hand
// sides.  Substructure condensation solves each interior block against
// one right-hand side per boundary dof.
func (l *Banded) CholeskySolveMatrix(c *Dense, st *Stats) *Dense {
	if c.Rows != l.N {
		panic(fmt.Errorf("%w: CholeskySolveMatrix order %d with %d rows", ErrDimension, l.N, c.Rows))
	}
	out := NewDense(l.N, c.Cols)
	col := NewVector(l.N)
	for j := 0; j < c.Cols; j++ {
		for i := 0; i < l.N; i++ {
			col[i] = c.At(i, j)
		}
		l.CholeskySolveInto(col, col, st)
		for i := 0; i < l.N; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out
}

// SolveCholesky factors and solves in one call.
func (b *Banded) SolveCholesky(rhs Vector, st *Stats) (Vector, error) {
	l, err := b.CholeskyFactor(st)
	if err != nil {
		return nil, err
	}
	return l.CholeskySolve(rhs, st), nil
}
