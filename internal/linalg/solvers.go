package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// IterOpts configures the iterative solvers.
type IterOpts struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖ at which to stop.
	Tol float64
	// MaxIter bounds the iteration count.
	MaxIter int
	// Omega is the SOR relaxation factor (ignored by CG/Jacobi).
	Omega float64
	// OnIteration, when non-nil, is invoked after each iteration with
	// the iteration index and current residual norm.  The experiment
	// harness uses it to trace convergence histories.
	OnIteration func(iter int, resid float64)
}

// DefaultIterOpts returns the options used throughout the experiments:
// 1e-8 relative tolerance, an n-proportional iteration cap and the
// classical ω=1.5 for SOR.
func DefaultIterOpts(n int) IterOpts {
	max := 10 * n
	if max < 200 {
		max = 200
	}
	return IterOpts{Tol: 1e-8, MaxIter: max, Omega: 1.5}
}

// Operator is anything that can apply itself to a vector: the iterative
// solvers work on CSR, Banded or Dense operands alike.
type Operator interface {
	MulVec(x, out Vector, st *Stats) Vector
}

// CG solves A*x = b for symmetric positive definite A by the conjugate
// gradient method, the "solution of a particular system of simultaneous
// equations" workload at the bottom of the paper's parallelism hierarchy.
// It returns the solution and the iteration count.
func CG(a Operator, b Vector, opts IterOpts, st *Stats) (Vector, int, error) {
	n := len(b)
	x := NewVector(n)
	r := b.Clone()
	p := r.Clone()
	ap := NewVector(n)

	bnorm := Norm2(b, st)
	if bnorm == 0 {
		return x, 0, nil
	}
	rr := Dot(r, r, st)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		a.MulVec(p, ap, st)
		pap := Dot(p, ap, st)
		if pap <= 0 {
			return nil, iter, fmt.Errorf("linalg: CG breakdown, pᵀAp = %g (matrix not SPD?)", pap)
		}
		alpha := rr / pap
		Axpy(alpha, p, x, st)
		Axpy(-alpha, ap, r, st)
		rrNew := Dot(r, r, st)
		resid := math.Sqrt(rrNew) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if st != nil {
			st.Iterations++
		}
		if resid <= opts.Tol {
			return x, iter, nil
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		st.addFlops(int64(2 * n))
		rr = rrNew
	}
	return x, opts.MaxIter, fmt.Errorf("%w: CG after %d iterations", ErrNoConvergence, opts.MaxIter)
}

// Jacobi solves A*x = b by Jacobi iteration.  A must have non-zero
// diagonal; convergence requires A (after constraint application) to be
// diagonally dominant enough, which the FEM systems here are for modest
// meshes.  Jacobi is the most naturally parallel method — every component
// update is independent — which is why the FEM-1/FEM-2 literature leaned
// on it.
func Jacobi(a *CSR, b Vector, opts IterOpts, st *Stats) (Vector, int, error) {
	n := a.N
	if len(b) != n {
		panic(fmt.Errorf("%w: Jacobi order %d with rhs %d", ErrDimension, n, len(b)))
	}
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, 0, fmt.Errorf("linalg: Jacobi zero diagonal at %d", i)
		}
	}
	x := NewVector(n)
	xNew := NewVector(n)
	bnorm := Norm2(b, st)
	if bnorm == 0 {
		return x, 0, nil
	}
	r := NewVector(n)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// xNew_i = (b_i - sum_{j≠i} a_ij x_j) / a_ii
		var flops int64
		for i := 0; i < n; i++ {
			s := b[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j != i {
					s -= a.Val[k] * x[j]
				}
			}
			xNew[i] = s / d[i]
			flops += int64(2*a.RowNNZ(i) + 1)
		}
		st.addFlops(flops)
		x, xNew = xNew, x
		// Residual check.
		a.MulVec(x, r, st)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		st.addFlops(int64(n))
		resid := Norm2(r, st) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if st != nil {
			st.Iterations++
		}
		if resid <= opts.Tol {
			return x, iter, nil
		}
	}
	return x, opts.MaxIter, fmt.Errorf("%w: Jacobi after %d iterations", ErrNoConvergence, opts.MaxIter)
}

// SOR solves A*x = b by successive over-relaxation with factor opts.Omega
// (ω=1 gives Gauss-Seidel).  Adams' contemporaneous ICASE work analysed
// multi-colour SOR for the Finite Element Machine; the sequential kernel
// here is the building block, and the NAVM layer runs it red/black in
// parallel.
func SOR(a *CSR, b Vector, opts IterOpts, st *Stats) (Vector, int, error) {
	n := a.N
	if len(b) != n {
		panic(fmt.Errorf("%w: SOR order %d with rhs %d", ErrDimension, n, len(b)))
	}
	w := opts.Omega
	if w <= 0 || w >= 2 {
		return nil, 0, fmt.Errorf("linalg: SOR relaxation factor %g outside (0,2)", w)
	}
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, 0, fmt.Errorf("linalg: SOR zero diagonal at %d", i)
		}
	}
	x := NewVector(n)
	bnorm := Norm2(b, st)
	if bnorm == 0 {
		return x, 0, nil
	}
	r := NewVector(n)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		var flops int64
		for i := 0; i < n; i++ {
			s := b[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j != i {
					s -= a.Val[k] * x[j]
				}
			}
			x[i] = (1-w)*x[i] + w*s/d[i]
			flops += int64(2*a.RowNNZ(i) + 4)
		}
		st.addFlops(flops)
		a.MulVec(x, r, st)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		st.addFlops(int64(n))
		resid := Norm2(r, st) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if st != nil {
			st.Iterations++
		}
		if resid <= opts.Tol {
			return x, iter, nil
		}
	}
	return x, opts.MaxIter, fmt.Errorf("%w: SOR after %d iterations", ErrNoConvergence, opts.MaxIter)
}

// Residual computes ‖b - A*x‖₂ for verification.
func Residual(a Operator, x, b Vector, st *Stats) float64 {
	r := a.MulVec(x, nil, st)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	st.addFlops(int64(len(r)))
	return Norm2(r, st)
}
