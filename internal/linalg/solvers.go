package linalg

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/errs"
)

// ErrNoConvergence is the sentinel an iterative solver's error wraps when
// it exhausts its iteration budget before reaching the requested
// tolerance.  The concrete error is a *ConvergenceError carrying the
// final residual and iteration count.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// ConvergenceError reports an exhausted iteration budget.  It wraps
// ErrNoConvergence (errors.Is matches) while carrying the state the
// solver stopped in, so callers can decide whether the partial answer is
// usable.
type ConvergenceError struct {
	// Backend names the solver that gave up.
	Backend string
	// Iterations is the budget that was exhausted.
	Iterations int
	// Residual is the relative residual ‖r‖/‖b‖ at the final iteration.
	Residual float64
}

// Error formats the failure with its final state.
func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("%v: %s after %d iterations, residual %.3g",
		ErrNoConvergence, e.Backend, e.Iterations, e.Residual)
}

// Unwrap links the typed error to the ErrNoConvergence sentinel.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// IterOpts configures the iterative solvers.
type IterOpts struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖ at which to stop.
	Tol float64
	// MaxIter bounds the iteration count.
	MaxIter int
	// Omega is the SOR/SSOR relaxation factor (ignored by CG/Jacobi).
	Omega float64
	// Precond names the preconditioner an iterative backend should build
	// and apply ("" or "none" for unpreconditioned; see Preconds).  Only
	// the CG backend uses it; direct backends reject it.
	Precond string
	// OnIteration, when non-nil, is invoked after each iteration with
	// the iteration index and current residual norm.  The experiment
	// harness uses it to trace convergence histories.
	OnIteration func(iter int, resid float64)
}

// MaxIterCeiling bounds every iteration budget: DefaultIterOpts and the
// per-backend defaults clamp to it, so a huge system cannot turn a
// mistyped solve into an unbounded loop.
const MaxIterCeiling = 200_000

// clampIter applies the floor-200 / MaxIterCeiling bounds to an
// n-proportional iteration budget.
func clampIter(m int) int {
	if m < 200 {
		m = 200
	}
	if m > MaxIterCeiling {
		m = MaxIterCeiling
	}
	return m
}

// DefaultIterOpts returns the options used throughout the experiments:
// 1e-8 relative tolerance, an n-proportional iteration cap (bounded by
// MaxIterCeiling) and the classical ω=1.5 for SOR.
func DefaultIterOpts(n int) IterOpts {
	return IterOpts{Tol: 1e-8, MaxIter: clampIter(10 * n), Omega: 1.5}
}

// cancelCheckInterval is how many iterations pass between context polls
// inside the solver loops: frequent enough that a cancelled solve stops
// promptly, rare enough to stay off the per-iteration critical path.
const cancelCheckInterval = 16

// CheckCancel polls ctx on iteration 1 and every cancelCheckInterval
// iterations after it, converting a cancellation into the shared
// errs.ErrCancelled taxonomy (the context's own error stays in the chain
// for errors.Is).  The NAVM distributed solvers share it so sequential
// and parallel solves cancel identically.
func CheckCancel(ctx context.Context, iter int) error {
	if ctx == nil || iter%cancelCheckInterval != 1 {
		return nil
	}
	return errs.Cancelled(ctx)
}

// Operator is anything that can apply itself to a vector: the iterative
// solvers work on CSR, Banded or Dense operands alike.
type Operator interface {
	MulVec(x, out Vector, st *Stats) Vector
}

// IterWork holds the scratch vectors of the iterative kernels — the
// system diagonal, iterates, residual, and direction buffers — so
// repeated solves of same-order systems reuse storage instead of
// reallocating it.  The engine backends draw these from a pool; a nil
// *IterWork is valid and simply allocates fresh buffers.  The kernels
// refresh the cached diagonal from the matrix on every invocation
// (DiagonalInto, one row walk), so a workspace never goes stale when a
// reused assembly rewrites the matrix values in place.
type IterWork struct {
	diag, x, x2, r, z, p, ap Vector
}

// grow returns a zeroed length-n vector, reusing v's storage when it is
// large enough.
func grow(v Vector, n int) Vector {
	if cap(v) < n {
		return NewVector(n)
	}
	v = v[:n]
	for i := range v {
		v[i] = 0
	}
	return v
}

// cg is the (optionally preconditioned) conjugate gradient kernel for
// symmetric positive definite A — the "solution of a particular system
// of simultaneous equations" workload at the bottom of the paper's
// parallelism hierarchy.  With a nil preconditioner the iteration is the
// classical CG recurrence; with one, z = M⁻¹r replaces r in the
// direction updates.  It returns the solution, the iteration count, and
// the final relative residual.
func cg(ctx context.Context, a Operator, b Vector, m Preconditioner, opts IterOpts, st *Stats, ws *IterWork) (Vector, int, float64, error) {
	if ws == nil {
		ws = &IterWork{}
	}
	n := len(b)
	x := NewVector(n) // returned; never drawn from the workspace
	ws.r = grow(ws.r, n)
	r := ws.r
	copy(r, b)
	z := r
	if m != nil {
		ws.z = grow(ws.z, n)
		z = ws.z
		m.Apply(r, z, st)
	}
	ws.p = grow(ws.p, n)
	p := ws.p
	copy(p, z)
	ws.ap = grow(ws.ap, n)
	ap := ws.ap

	bnorm := Norm2(b, st)
	if bnorm == 0 {
		return x, 0, 0, nil
	}
	rz := Dot(r, z, st)
	resid := math.Inf(1)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := CheckCancel(ctx, iter); err != nil {
			return x, iter - 1, resid, err
		}
		a.MulVec(p, ap, st)
		pap := Dot(p, ap, st)
		if pap <= 0 {
			return nil, iter, resid, fmt.Errorf("linalg: CG breakdown, pᵀAp = %g (matrix not SPD?)", pap)
		}
		alpha := rz / pap
		Axpy(alpha, p, x, st)
		Axpy(-alpha, ap, r, st)
		var rzNew float64
		if m == nil {
			rzNew = Dot(r, r, st)
			resid = math.Sqrt(rzNew) / bnorm
		} else {
			m.Apply(r, z, st)
			rzNew = Dot(r, z, st)
			resid = math.Sqrt(Dot(r, r, st)) / bnorm
		}
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if st != nil {
			st.Iterations++
		}
		if resid <= opts.Tol {
			return x, iter, resid, nil
		}
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		st.addFlops(int64(2 * n))
		rz = rzNew
	}
	return x, opts.MaxIter, resid, &ConvergenceError{Backend: cgName(m), Iterations: opts.MaxIter, Residual: resid}
}

// cgName labels the CG variant for errors and Info.
func cgName(m Preconditioner) string {
	if m == nil {
		return BackendCG
	}
	return BackendCG + "+" + m.Name()
}

// jacobi is the Jacobi iteration kernel.  A must have non-zero diagonal;
// convergence requires A (after constraint application) to be diagonally
// dominant enough, which the FEM systems here are for modest meshes.
// Jacobi is the most naturally parallel method — every component update
// is independent — which is why the FEM-1/FEM-2 literature leaned on it.
func jacobi(ctx context.Context, a *CSR, b Vector, opts IterOpts, st *Stats, ws *IterWork) (Vector, int, float64, error) {
	n := a.N
	if len(b) != n {
		panic(fmt.Errorf("%w: Jacobi order %d with rhs %d", ErrDimension, n, len(b)))
	}
	if ws == nil {
		ws = &IterWork{}
	}
	ws.diag = grow(ws.diag, n)
	d := a.DiagonalInto(ws.diag)
	for i, v := range d {
		if v == 0 {
			return nil, 0, 0, fmt.Errorf("linalg: Jacobi zero diagonal at %d", i)
		}
	}
	// The iterate ping-pongs between two workspace buffers, so the
	// returned solution is detached with a single Clone at each exit.
	ws.x = grow(ws.x, n)
	x := ws.x
	ws.x2 = grow(ws.x2, n)
	xNew := ws.x2
	bnorm := Norm2(b, st)
	if bnorm == 0 {
		return x.Clone(), 0, 0, nil
	}
	ws.r = grow(ws.r, n)
	r := ws.r
	resid := math.Inf(1)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := CheckCancel(ctx, iter); err != nil {
			return x.Clone(), iter - 1, resid, err
		}
		// xNew_i = (b_i - sum_{j≠i} a_ij x_j) / a_ii
		var flops int64
		for i := 0; i < n; i++ {
			s := b[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j != i {
					s -= a.Val[k] * x[j]
				}
			}
			xNew[i] = s / d[i]
			flops += int64(2*a.RowNNZ(i) + 1)
		}
		st.addFlops(flops)
		x, xNew = xNew, x
		// Residual check.
		a.MulVec(x, r, st)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		st.addFlops(int64(n))
		resid = Norm2(r, st) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if st != nil {
			st.Iterations++
		}
		if resid <= opts.Tol {
			return x.Clone(), iter, resid, nil
		}
	}
	return x.Clone(), opts.MaxIter, resid, &ConvergenceError{Backend: BackendJacobi, Iterations: opts.MaxIter, Residual: resid}
}

// sor is the successive over-relaxation kernel with factor opts.Omega
// (ω=1 gives Gauss-Seidel).  Adams' contemporaneous ICASE work analysed
// multi-colour SOR for the Finite Element Machine; the sequential kernel
// here is the building block, and the NAVM layer runs it red/black in
// parallel.
func sor(ctx context.Context, a *CSR, b Vector, opts IterOpts, st *Stats, ws *IterWork) (Vector, int, float64, error) {
	n := a.N
	if len(b) != n {
		panic(fmt.Errorf("%w: SOR order %d with rhs %d", ErrDimension, n, len(b)))
	}
	w := opts.Omega
	if w <= 0 || w >= 2 {
		return nil, 0, 0, fmt.Errorf("linalg: SOR relaxation factor %g outside (0,2)", w)
	}
	if ws == nil {
		ws = &IterWork{}
	}
	ws.diag = grow(ws.diag, n)
	d := a.DiagonalInto(ws.diag)
	for i, v := range d {
		if v == 0 {
			return nil, 0, 0, fmt.Errorf("linalg: SOR zero diagonal at %d", i)
		}
	}
	ws.x = grow(ws.x, n)
	x := ws.x
	bnorm := Norm2(b, st)
	if bnorm == 0 {
		return x.Clone(), 0, 0, nil
	}
	ws.r = grow(ws.r, n)
	r := ws.r
	resid := math.Inf(1)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := CheckCancel(ctx, iter); err != nil {
			return x.Clone(), iter - 1, resid, err
		}
		var flops int64
		for i := 0; i < n; i++ {
			s := b[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j != i {
					s -= a.Val[k] * x[j]
				}
			}
			x[i] = (1-w)*x[i] + w*s/d[i]
			flops += int64(2*a.RowNNZ(i) + 4)
		}
		st.addFlops(flops)
		a.MulVec(x, r, st)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		st.addFlops(int64(n))
		resid = Norm2(r, st) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if st != nil {
			st.Iterations++
		}
		if resid <= opts.Tol {
			return x.Clone(), iter, resid, nil
		}
	}
	return x.Clone(), opts.MaxIter, resid, &ConvergenceError{Backend: BackendSOR, Iterations: opts.MaxIter, Residual: resid}
}

// Residual computes ‖b - A*x‖₂ for verification.
func Residual(a Operator, x, b Vector, st *Stats) float64 {
	r := a.MulVec(x, nil, st)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	st.addFlops(int64(len(r)))
	return Norm2(r, st)
}
