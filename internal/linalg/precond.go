package linalg

import (
	"fmt"
	"sort"

	"repro/internal/errs"
)

// Preconditioner approximates A⁻¹ cheaply: Apply computes z = M⁻¹r for a
// preconditioning matrix M chosen so that M⁻¹A is better conditioned than
// A.  The CG backend wraps any Preconditioner built from the system
// matrix; both implementations here are symmetric positive definite, as
// preconditioned CG requires.
type Preconditioner interface {
	// Name is the registry name ("jacobi", "ssor").
	Name() string
	// Apply computes z = M⁻¹r.  r and z must have the operator's order
	// and may not alias.
	Apply(r, z Vector, st *Stats)
}

// The preconditioner registry names.
const (
	// PrecondJacobi is diagonal scaling: M = D.
	PrecondJacobi = "jacobi"
	// PrecondSSOR is the symmetric SOR preconditioner:
	// M = (D/ω + L)·(ω/(2-ω))·D⁻¹·(D/ω + Lᵀ).
	PrecondSSOR = "ssor"
)

// precondFactories maps names to constructors.  Registration is static:
// a preconditioner needs the assembled matrix, so the registry stores
// factories rather than instances.
var precondFactories = map[string]func(a *CSR, omega float64) (Preconditioner, error){
	PrecondJacobi: func(a *CSR, _ float64) (Preconditioner, error) { return NewJacobiPrecond(a) },
	PrecondSSOR:   func(a *CSR, omega float64) (Preconditioner, error) { return NewSSORPrecond(a, omega) },
}

// Preconds returns the registered preconditioner names, sorted.
func Preconds() []string {
	out := make([]string, 0, len(precondFactories))
	for name := range precondFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasPrecond reports whether name is a registered preconditioner ("" and
// "none" select no preconditioning and are always valid).
func HasPrecond(name string) bool {
	if name == "" || name == "none" {
		return true
	}
	_, ok := precondFactories[name]
	return ok
}

// NewPreconditioner builds the named preconditioner over a.  The empty
// name and "none" return nil (no preconditioning); unknown names are a
// usage error listing the registry.
func NewPreconditioner(name string, a *CSR, omega float64) (Preconditioner, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	f, ok := precondFactories[name]
	if !ok {
		return nil, errs.Usage("unknown preconditioner %q (have %v)", name, Preconds())
	}
	return f(a, omega)
}

// JacobiPrecond is diagonal scaling, M = D: the cheapest preconditioner,
// one divide per unknown per application.  On FEM stiffness matrices it
// mostly equilibrates element-size and material-stiffness variation.
type JacobiPrecond struct {
	invDiag Vector
}

// NewJacobiPrecond builds the diagonal preconditioner of a.
func NewJacobiPrecond(a *CSR) (*JacobiPrecond, error) {
	d := a.Diagonal()
	inv := NewVector(len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("linalg: jacobi preconditioner zero diagonal at %d", i)
		}
		inv[i] = 1 / v
	}
	return &JacobiPrecond{invDiag: inv}, nil
}

// Name returns the registry name.
func (*JacobiPrecond) Name() string { return PrecondJacobi }

// Apply computes z = D⁻¹ r.
func (p *JacobiPrecond) Apply(r, z Vector, st *Stats) {
	for i := range r {
		z[i] = r[i] * p.invDiag[i]
	}
	st.addFlops(int64(len(r)))
}

// SSORPrecond is the symmetric SOR preconditioner
// M = (D/ω + L)·(ω/(2-ω))·D⁻¹·(D/ω + Lᵀ), applied as one forward and one
// backward triangular sweep over the matrix — twice the work of a SpMV
// per application, repaid by a substantially reduced CG iteration count
// on stiff plates.
type SSORPrecond struct {
	a     *CSR
	diag  Vector
	omega float64
}

// NewSSORPrecond builds the SSOR preconditioner of a with relaxation
// factor omega in (0,2); omega == 0 selects the default 1.5.
func NewSSORPrecond(a *CSR, omega float64) (*SSORPrecond, error) {
	if omega == 0 {
		omega = 1.5
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("linalg: SSOR relaxation factor %g outside (0,2)", omega)
	}
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("linalg: SSOR preconditioner zero diagonal at %d", i)
		}
	}
	return &SSORPrecond{a: a, diag: d, omega: omega}, nil
}

// Name returns the registry name.
func (*SSORPrecond) Name() string { return PrecondSSOR }

// Apply computes z = M⁻¹r by a forward sweep with (D/ω + L), a diagonal
// scaling, and a backward sweep with (D/ω + Lᵀ).  CSR rows keep their
// columns sorted, so each sweep splits a row at the diagonal in one pass.
func (p *SSORPrecond) Apply(r, z Vector, st *Stats) {
	a, d, w := p.a, p.diag, p.omega
	n := a.N
	// Forward: (D/ω + L) t = r, t stored in z.
	var flops int64
	for i := 0; i < n; i++ {
		s := r[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j >= i {
				break
			}
			s -= a.Val[k] * z[j]
			flops += 2
		}
		z[i] = s * w / d[i]
		flops += 2
	}
	// Scale: u = (2-ω)/ω · D t.
	for i := 0; i < n; i++ {
		z[i] *= (2 - w) / w * d[i]
		flops += 3
	}
	// Backward: (D/ω + Lᵀ) z = u.  Lᵀ is the strict upper triangle of
	// the symmetric A.
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := a.RowPtr[i+1] - 1; k >= a.RowPtr[i]; k-- {
			j := a.ColIdx[k]
			if j <= i {
				break
			}
			s -= a.Val[k] * z[j]
			flops += 2
		}
		z[i] = s * w / d[i]
		flops += 2
	}
	st.addFlops(flops)
}
