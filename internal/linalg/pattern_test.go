package linalg

import (
	"math/rand"
	"sort"
	"testing"
)

// referencePattern builds the expected (row-major, deduplicated, sorted)
// entry list with a comparison sort, for checking the counting sort.
func referencePattern(n int, rows, cols []int) (rowPtr, colIdx []int) {
	type rc struct{ r, c int }
	seen := map[rc]bool{}
	var es []rc
	for k := range rows {
		e := rc{rows[k], cols[k]}
		if !seen[e] {
			seen[e] = true
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].r != es[j].r {
			return es[i].r < es[j].r
		}
		return es[i].c < es[j].c
	})
	rowPtr = make([]int, n+1)
	for _, e := range es {
		colIdx = append(colIdx, e.c)
		rowPtr[e.r+1]++
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return rowPtr, colIdx
}

func TestPatternMatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		m := rng.Intn(6 * n)
		rows := make([]int, m)
		cols := make([]int, m)
		for k := 0; k < m; k++ {
			rows[k], cols[k] = rng.Intn(n), rng.Intn(n)
		}
		p, scatter, err := NewPattern(n, rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		wantPtr, wantIdx := referencePattern(n, rows, cols)
		if len(p.ColIdx) != len(wantIdx) {
			t.Fatalf("trial %d: NNZ %d, want %d", trial, len(p.ColIdx), len(wantIdx))
		}
		for i := range wantPtr {
			if p.RowPtr[i] != wantPtr[i] {
				t.Fatalf("trial %d: RowPtr[%d] = %d, want %d", trial, i, p.RowPtr[i], wantPtr[i])
			}
		}
		for i := range wantIdx {
			if p.ColIdx[i] != wantIdx[i] {
				t.Fatalf("trial %d: ColIdx[%d] = %d, want %d", trial, i, p.ColIdx[i], wantIdx[i])
			}
		}
		// The scatter map must send every input coordinate to the slot
		// holding exactly its (row, col).
		for k := 0; k < m; k++ {
			s := scatter[k]
			if p.ColIdx[s] != cols[k] {
				t.Fatalf("trial %d: scatter[%d] slot has col %d, want %d", trial, k, p.ColIdx[s], cols[k])
			}
			r := sort.SearchInts(p.RowPtr, s+1) - 1
			if r != rows[k] {
				t.Fatalf("trial %d: scatter[%d] slot in row %d, want %d", trial, k, r, rows[k])
			}
		}
	}
}

func TestPatternRejectsBadInput(t *testing.T) {
	if _, _, err := NewPattern(2, []int{0}, []int{0, 1}); err == nil {
		t.Error("mismatched coordinate lengths accepted")
	}
	if _, _, err := NewPattern(2, []int{2}, []int{0}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, _, err := NewPattern(2, []int{0}, []int{-1}); err == nil {
		t.Error("negative column accepted")
	}
}

func TestPatternNewCSRSharesStructure(t *testing.T) {
	p, scatter, err := NewPattern(3, []int{0, 1, 2, 0}, []int{0, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicate collapsed)", p.NNZ())
	}
	if scatter[0] != scatter[3] {
		t.Errorf("duplicate coordinates got distinct slots %d, %d", scatter[0], scatter[3])
	}
	a, b := p.NewCSR(), p.NewCSR()
	if &a.RowPtr[0] != &b.RowPtr[0] || &a.ColIdx[0] != &b.ColIdx[0] {
		t.Error("CSR instances do not share the pattern's structure")
	}
	a.Val[0] = 5
	if b.Val[0] != 0 {
		t.Error("CSR instances share values")
	}
	if p.RowNNZ(0) != 1 {
		t.Errorf("RowNNZ(0) = %d", p.RowNNZ(0))
	}
}

func TestDiagonalIntoMatchesDiagonal(t *testing.T) {
	m := poisson2D(4)
	want := m.Diagonal()
	got := NewVector(m.N)
	got.Fill(99)
	m.DiagonalInto(got)
	if MaxAbsDiff(got, want) != 0 {
		t.Error("DiagonalInto differs from Diagonal")
	}
	// A matrix with a structurally absent diagonal entry reads zero.
	z, err := NewCSRFromTriplets(2, []Triplet{{0, 1, 1}, {1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	d := z.DiagonalInto(nil)
	if d[0] != 0 || d[1] != 0 {
		t.Errorf("missing diagonal read as %v", d)
	}
}
