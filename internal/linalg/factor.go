// The factor-once layer of the direct solvers: a DirectPlan separates
// the symbolic work of a banded/envelope Cholesky solve — ordering,
// profile discovery, storage allocation — from the numeric work of
// factoring and back-substituting, exactly as Pattern does for
// assembly.  The paper's production workload is many solves of one
// topology (load steps, experiment table rows, queues of jobs on one
// model), so the expensive state is computed once per topology, numeric
// refactorisation is in-place and allocation-free, and a warm repeat
// solve costs one triangular solve instead of a factorisation.
package linalg

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/errs"
	"repro/internal/obs"
)

// Factorization is a reusable direct factorisation of a sparse SPD
// system: solve any number of right-hand sides against the current
// factor, and re-factor in place when the matrix values change.
type Factorization interface {
	// N returns the system order.
	N() int
	// Refactor re-factors from a's values in place.  a must have the
	// sparsity pattern the factorisation was planned for.
	Refactor(a *CSR, st *Stats) error
	// SolveInto solves A·x = rhs into out (allocated when nil; may
	// alias rhs), returning out.
	SolveInto(rhs, out Vector, st *Stats) (Vector, error)
	// SolveMatrixInto solves A·X = C column by column into out
	// (allocated when nil), returning out.
	SolveMatrixInto(c, out *Dense, st *Stats) (*Dense, error)
}

// Ordering selects the row/column ordering a DirectPlan factors under.
type Ordering int

const (
	// OrderNatural keeps the mesh numbering.
	OrderNatural Ordering = iota
	// OrderRCM renumbers by reverse Cuthill–McKee to shrink the profile.
	OrderRCM
)

// StorageKind selects the factor storage of a DirectPlan.
type StorageKind int

const (
	// StorageBand stores a uniform band: every row pays the worst row's
	// bandwidth.
	StorageBand StorageKind = iota
	// StorageEnvelope stores the per-row skyline profile.
	StorageEnvelope
)

// PlanOpts selects a DirectPlan's ordering and storage.  The zero value
// is the natural-order banded baseline.
type PlanOpts struct {
	Ordering Ordering
	Storage  StorageKind
}

// DirectPlan is the symbolic state of a direct solve, computed once per
// sparsity pattern: the permutation, the band or envelope profile, the
// preallocated factor storage, a scatter map from CSR values into that
// storage, and the permute scratch.  Refactor and SolveInto are the
// numeric phase: both are allocation-free in steady state, and a warm
// SolveInto against an unchanged factor is bit-identical to the solve
// performed right after the factorisation.  A plan's methods are not
// safe for concurrent use (FactorCache adds the locking).
type DirectPlan struct {
	n    int
	nnz  int
	opts PlanOpts
	// rowPtr and colIdx are the sparsity pattern the plan was built
	// from (shared with the source CSR, immutable); Refactor checks
	// incoming matrices against them — equal order and nnz are not
	// enough, a different pattern would scatter through the wrong map.
	rowPtr, colIdx []int
	// perm[new] = old and inv[old] = new; nil for the natural order.
	perm, inv []int
	// scatter[k] is the flat index in the storage value array that CSR
	// value k lands on, -1 for strictly upper-triangle entries.
	scatter []int32
	band    *Banded
	env     *Envelope
	// px is the permute scratch; cols is the SolveMatrixInto column
	// scratch, grown on first use.
	px       Vector
	cols     Vector
	factored bool
}

var _ Factorization = (*DirectPlan)(nil)

// NewDirectPlan runs the symbolic phase over a's sparsity pattern:
// ordering, profile, storage, and scatter map.  No values are read —
// call Refactor before the first solve.
func NewDirectPlan(a *CSR, opts PlanOpts) (*DirectPlan, error) {
	if a.N < 0 {
		return nil, fmt.Errorf("%w: NewDirectPlan order %d", ErrDimension, a.N)
	}
	p := &DirectPlan{
		n: a.N, nnz: a.NNZ(), opts: opts,
		rowPtr: a.RowPtr, colIdx: a.ColIdx,
		px: NewVector(a.N),
	}
	if opts.Ordering == OrderRCM {
		p.perm = RCM(a)
		p.inv = make([]int, a.N)
		for newI, oldI := range p.perm {
			p.inv[oldI] = newI
		}
	}
	newIdx := func(i int) int {
		if p.inv == nil {
			return i
		}
		return p.inv[i]
	}
	switch opts.Storage {
	case StorageBand:
		w := 0
		for i := 0; i < a.N; i++ {
			pi := newIdx(i)
			for _, j := range a.RowColumns(i) {
				if d := pi - newIdx(j); d > w {
					w = d
				} else if -d > w {
					w = -d
				}
			}
		}
		p.band = NewBanded(a.N, w)
	case StorageEnvelope:
		first := make([]int, a.N)
		for i := range first {
			first[i] = i
		}
		for i := 0; i < a.N; i++ {
			pi := newIdx(i)
			for _, j := range a.RowColumns(i) {
				pj := newIdx(j)
				if pj <= pi && pj < first[pi] {
					first[pi] = pj
				}
			}
		}
		p.env = NewEnvelope(first)
	default:
		return nil, errs.Usage("unknown factor storage %d", opts.Storage)
	}
	// Scatter map: lower-triangle CSR values to flat storage indices.
	p.scatter = make([]int32, p.nnz)
	for i := 0; i < a.N; i++ {
		pi := newIdx(i)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			pj := newIdx(a.ColIdx[k])
			if pj > pi {
				p.scatter[k] = -1
				continue
			}
			if p.band != nil {
				p.scatter[k] = int32(pi*(p.band.Bandwidth+1) + (pi - pj))
			} else {
				p.scatter[k] = int32(p.env.ptr[pi] + pj - p.env.first[pi])
			}
		}
	}
	return p, nil
}

// N returns the system order.
func (p *DirectPlan) N() int { return p.n }

// Opts returns the plan's ordering and storage selection.
func (p *DirectPlan) Opts() PlanOpts { return p.opts }

// ProfileNNZ returns the stored lower-triangle entry count of the
// factor storage — n·(bandwidth+1) for a band, the skyline profile for
// an envelope — the storage the factorisation pays for.
func (p *DirectPlan) ProfileNNZ() int {
	if p.band != nil {
		return p.band.N * (p.band.Bandwidth + 1)
	}
	return p.env.NNZ()
}

// Bandwidth returns the half-bandwidth of the permuted system.
func (p *DirectPlan) Bandwidth() int {
	if p.band != nil {
		return p.band.Bandwidth
	}
	w := 0
	for i, f := range p.env.first {
		if i-f > w {
			w = i - f
		}
	}
	return w
}

// values returns the flat storage value array.
func (p *DirectPlan) values() []float64 {
	if p.band != nil {
		return p.band.band
	}
	return p.env.env
}

// MatchesPattern reports whether a has exactly the sparsity pattern the
// plan was built from.  Patterns built from one linalg.Pattern share
// backing arrays, so the common case is two pointer comparisons; the
// fallback compares element-wise.
func (p *DirectPlan) MatchesPattern(a *CSR) bool {
	if a.N != p.n || a.NNZ() != p.nnz {
		return false
	}
	if sameInts(a.RowPtr, p.rowPtr) && sameInts(a.ColIdx, p.colIdx) {
		return true
	}
	for i, v := range p.rowPtr {
		if a.RowPtr[i] != v {
			return false
		}
	}
	for i, v := range p.colIdx {
		if a.ColIdx[i] != v {
			return false
		}
	}
	return true
}

// sameInts reports whether two equal-length slices share storage.
func sameInts(a, b []int) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Refactor scatters a's values into the plan's storage and factors in
// place — the numeric phase, allocation-free in steady state.  a must
// match the planned pattern exactly; a matrix with the same order and
// nnz but a different pattern is rejected rather than mis-scattered.
// On a factorisation failure (matrix not positive definite) the plan is
// left unfactored.
func (p *DirectPlan) Refactor(a *CSR, st *Stats) error {
	if !p.MatchesPattern(a) {
		return fmt.Errorf("%w: Refactor order %d/%d nnz against plan %d/%d (or mismatched sparsity pattern)",
			ErrDimension, a.N, a.NNZ(), p.n, p.nnz)
	}
	p.factored = false
	vals := p.values()
	for i := range vals {
		vals[i] = 0
	}
	for k, t := range p.scatter {
		if t >= 0 {
			vals[t] = a.Val[k]
		}
	}
	var err error
	if p.band != nil {
		err = p.band.CholeskyFactorInPlace(st)
	} else {
		err = p.env.CholeskyFactorInPlace(st)
	}
	if err != nil {
		return err
	}
	p.factored = true
	return nil
}

// ErrNotFactored reports a solve against a plan whose Refactor has not
// (successfully) run.
var ErrNotFactored = fmt.Errorf("linalg: plan not factored (call Refactor first)")

// SolveInto solves against the current factor into out (allocated when
// nil; may alias rhs).  With the plan's scratch warm it allocates
// nothing, and its result is bit-identical to the solve performed right
// after Refactor — the differential guarantee the factor caches rely
// on.
func (p *DirectPlan) SolveInto(rhs, out Vector, st *Stats) (Vector, error) {
	if !p.factored {
		return nil, ErrNotFactored
	}
	if len(rhs) != p.n {
		return nil, fmt.Errorf("%w: SolveInto order %d with rhs %d", ErrDimension, p.n, len(rhs))
	}
	if out == nil {
		out = NewVector(p.n)
	}
	if len(out) != p.n {
		return nil, fmt.Errorf("%w: SolveInto order %d into %d", ErrDimension, p.n, len(out))
	}
	if p.perm == nil {
		if p.band != nil {
			p.band.CholeskySolveInto(rhs, out, st)
		} else {
			p.env.CholeskySolveInto(rhs, out, st)
		}
		return out, nil
	}
	for i, oldI := range p.perm {
		p.px[i] = rhs[oldI]
	}
	if p.band != nil {
		p.band.CholeskySolveInto(p.px, p.px, st)
	} else {
		p.env.CholeskySolveInto(p.px, p.px, st)
	}
	for i, oldI := range p.perm {
		out[oldI] = p.px[i]
	}
	return out, nil
}

// SolveMatrixInto solves A·X = C column by column into out (allocated
// when nil), reusing one column scratch across right-hand sides —
// condensation-style multi-RHS solves against a retained factor.
func (p *DirectPlan) SolveMatrixInto(c, out *Dense, st *Stats) (*Dense, error) {
	if !p.factored {
		return nil, ErrNotFactored
	}
	if c.Rows != p.n {
		return nil, fmt.Errorf("%w: SolveMatrixInto order %d with %d rows", ErrDimension, p.n, c.Rows)
	}
	if out == nil {
		out = NewDense(p.n, c.Cols)
	}
	if out.Rows != p.n || out.Cols != c.Cols {
		return nil, fmt.Errorf("%w: SolveMatrixInto %dx%d into %dx%d",
			ErrDimension, p.n, c.Cols, out.Rows, out.Cols)
	}
	if p.cols == nil {
		p.cols = NewVector(p.n)
	}
	col := p.cols
	for j := 0; j < c.Cols; j++ {
		for i := 0; i < p.n; i++ {
			col[i] = c.At(i, j)
		}
		if _, err := p.SolveInto(col, col, st); err != nil {
			return nil, err
		}
		for i := 0; i < p.n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}

// PlanOptsFor maps a direct backend's registry name onto its plan
// configuration; ok is false for iterative backends (and unknown
// names), which have nothing to cache.
func PlanOptsFor(backend string) (PlanOpts, bool) {
	switch backend {
	case "", BackendCholesky:
		return PlanOpts{}, true
	case BackendCholeskyRCM:
		return PlanOpts{Ordering: OrderRCM}, true
	case BackendCholeskyEnv:
		return PlanOpts{Ordering: OrderRCM, Storage: StorageEnvelope}, true
	default:
		return PlanOpts{}, false
	}
}

// FactorCache retains one DirectPlan per direct backend for a model's
// system, so repeated solves of an unchanged matrix reuse the factor
// and solves after a value change refactor in place instead of
// replanning.  A cached hit requires the incoming values to be
// bit-identical to the values the factor was computed from — the cache
// never trades correctness for reuse, so callers that mutate a model
// behind its back still get exact answers (at refactor cost).  All
// methods are safe for concurrent use; solves on one cache serialize,
// which is the per-model serialization the job layer already imposes.
type FactorCache struct {
	mu sync.Mutex
	// gen counts refactorisations — the cache's generation, bumped every
	// time a solve could not reuse the current factor.
	gen     uint64
	entries map[string]*factorEntry

	// Shared observability counters (Instrument): warm solves, plan
	// misses, and refactorisations.  Nil no-op sinks by default, so an
	// uninstrumented cache pays one nil check per solve.
	hits, misses, refactors *obs.Counter
}

// Instrument routes the cache's hit/miss/refactor counts into shared
// counters — the scheduler points every per-model cache at the system
// registry's factor.* family.  Any argument may be nil.
func (fc *FactorCache) Instrument(hits, misses, refactors *obs.Counter) {
	fc.mu.Lock()
	fc.hits, fc.misses, fc.refactors = hits, misses, refactors
	fc.mu.Unlock()
}

// factorEntry is one backend's cached plan plus the exact values the
// current factor was computed from.
type factorEntry struct {
	plan *DirectPlan
	vals []float64
}

// Generation returns the number of factorisations the cache has
// performed — tests assert a changed model bumps it and an unchanged
// one does not.
func (fc *FactorCache) Generation() uint64 {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.gen
}

// Invalidate drops every cached factor; the next solve per backend
// replans and refactors.
func (fc *FactorCache) Invalidate() {
	fc.mu.Lock()
	fc.entries = nil
	fc.mu.Unlock()
}

// SolveCached solves A·x = b through backend's cached plan, factoring
// only when it must: a missing or pattern-mismatched entry replans, a
// value change refactors in place, and unchanged values ride the warm
// factor (refactored reports which happened).  Warm results are
// bit-identical to the solve performed when the factor was computed.
// st receives the factor flops only when a factorisation ran, so flop
// accounting shows the factor-once win.
func (fc *FactorCache) SolveCached(backend string, a *CSR, b Vector, st *Stats) (x Vector, refactored bool, err error) {
	po, ok := PlanOptsFor(backend)
	if !ok {
		return nil, false, errs.Usage("backend %q has no direct factorisation to cache", backend)
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.entries == nil {
		fc.entries = map[string]*factorEntry{}
	}
	e := fc.entries[backend]
	if e == nil || !e.plan.MatchesPattern(a) {
		fc.misses.Inc()
		plan, perr := NewDirectPlan(a, po)
		if perr != nil {
			return nil, false, perr
		}
		e = &factorEntry{plan: plan}
		fc.entries[backend] = e
	}
	if !e.plan.factored || !valuesEqual(e.vals, a.Val) {
		fc.refactors.Inc()
		if err := e.plan.Refactor(a, st); err != nil {
			return nil, true, err
		}
		if len(e.vals) != len(a.Val) {
			e.vals = make([]float64, len(a.Val))
		}
		copy(e.vals, a.Val)
		fc.gen++
		refactored = true
	} else {
		fc.hits.Inc()
	}
	x, err = e.plan.SolveInto(b, nil, st)
	return x, refactored, err
}

// valuesEqual reports bitwise equality of two value arrays (NaN-free by
// construction; a NaN-bearing matrix fails factorisation either way).
func valuesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// factorCtxKey keys the context-carried factor cache.
type factorCtxKey struct{}

// NewFactorCacheContext returns a context carrying fc; the fem solve
// path prefers a context-carried cache over the model's own, which is
// how the job scheduler makes N queued solves on one model share a
// single factorisation.
func NewFactorCacheContext(ctx context.Context, fc *FactorCache) context.Context {
	return context.WithValue(ctx, factorCtxKey{}, fc)
}

// FactorCacheFromContext returns the context-carried factor cache, if
// any.
func FactorCacheFromContext(ctx context.Context) (*FactorCache, bool) {
	fc, ok := ctx.Value(factorCtxKey{}).(*FactorCache)
	return fc, ok
}
