package linalg

import (
	"fmt"
	"math"
)

// Envelope is a symmetric positive-definite matrix in lower envelope
// (skyline) storage: row i keeps the contiguous run of columns
// first[i]..i, where first[i] is the row's first structural non-zero.
// Uniform banded storage charges every row for the worst row's
// bandwidth; the envelope charges each row for its own profile, which
// is what makes the direct baseline competitive on irregular meshes
// where a handful of wide rows would otherwise inflate the whole band.
// Cholesky fill is confined to the envelope (a row's first non-zero
// never moves left during factorisation), so the factor lives in the
// same storage the matrix does.
type Envelope struct {
	N int
	// first[i] is the first stored column of row i (first[i] <= i).
	first []int
	// ptr[i] is the offset of row i's run in env; the run is
	// env[ptr[i] : ptr[i+1]], ordered by column, diagonal last.
	ptr []int
	env []float64
}

// NewEnvelope returns a zero matrix of order len(first) with the given
// row profile.  first[i] must lie in [0, i].
func NewEnvelope(first []int) *Envelope {
	n := len(first)
	e := &Envelope{N: n, first: append([]int(nil), first...), ptr: make([]int, n+1)}
	for i, f := range e.first {
		if f < 0 || f > i {
			panic(fmt.Errorf("%w: envelope row %d starts at %d", ErrDimension, i, f))
		}
		e.ptr[i+1] = e.ptr[i] + (i - f + 1)
	}
	e.env = make([]float64, e.ptr[n])
	return e
}

// NNZ returns the number of stored entries (the envelope profile size,
// lower triangle including the diagonal).
func (e *Envelope) NNZ() int { return len(e.env) }

// First returns the first stored column of row i.
func (e *Envelope) First(i int) int { return e.first[i] }

// At returns element (i,j), exploiting symmetry; outside the envelope
// it is 0.
func (e *Envelope) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	if j < e.first[i] {
		return 0
	}
	return e.env[e.ptr[i]+j-e.first[i]]
}

// Set assigns element (i,j) (and by symmetry (j,i)).  Setting outside
// the envelope panics: the profile is fixed at construction.
func (e *Envelope) Set(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	if j < e.first[i] {
		panic(fmt.Errorf("linalg: Envelope.Set(%d,%d) outside profile (row starts at %d)", i, j, e.first[i]))
	}
	e.env[e.ptr[i]+j-e.first[i]] = v
}

// Fill zeroes every stored entry, keeping the profile.
func (e *Envelope) Fill(x float64) {
	for i := range e.env {
		e.env[i] = x
	}
}

// CholeskyFactorInPlace overwrites the stored values with the Cholesky
// factor L (the matrix equals L·Lᵀ).  It fails if the matrix is not
// positive definite.  Flop counts are recorded in st.  The inner sums
// run over exactly the columns both rows store, ascending; the terms
// skipped relative to uniform banded Cholesky are products with exact
// zeros, so the factor agrees with the banded factor bitwise (the
// solves differ in summation order, so solutions agree to rounding).
func (e *Envelope) CholeskyFactorInPlace(st *Stats) error {
	var flops int64
	for i := 0; i < e.N; i++ {
		fi := e.first[i]
		base := e.ptr[i]
		for j := fi; j < i; j++ {
			s := e.env[base+j-fi]
			fj := e.first[j]
			klo := fi
			if fj > klo {
				klo = fj
			}
			rj := e.ptr[j] - fj
			ri := base - fi
			for k := klo; k < j; k++ {
				s -= e.env[ri+k] * e.env[rj+k]
				flops += 2
			}
			e.env[base+j-fi] = s / e.env[e.ptr[j+1]-1]
			flops++
		}
		// Diagonal pivot.
		s := e.env[e.ptr[i+1]-1]
		for k := base; k < e.ptr[i+1]-1; k++ {
			v := e.env[k]
			s -= v * v
			flops += 2
		}
		if s <= 0 {
			st.addFlops(flops)
			return fmt.Errorf("linalg: matrix not positive definite at row %d (pivot %g)", i, s)
		}
		e.env[e.ptr[i+1]-1] = math.Sqrt(s)
		flops++
	}
	st.addFlops(flops)
	return nil
}

// CholeskySolveInto solves L·Lᵀ·x = rhs given the factor from
// CholeskyFactorInPlace, writing into out (allocated when nil; may
// alias rhs to solve in place).
func (e *Envelope) CholeskySolveInto(rhs, out Vector, st *Stats) Vector {
	if len(rhs) != e.N {
		panic(fmt.Errorf("%w: Envelope.CholeskySolveInto order %d with rhs %d", ErrDimension, e.N, len(rhs)))
	}
	y := out
	if y == nil {
		y = NewVector(e.N)
	}
	if len(y) != e.N {
		panic(fmt.Errorf("%w: Envelope.CholeskySolveInto order %d into %d", ErrDimension, e.N, len(y)))
	}
	if e.N > 0 && &y[0] != &rhs[0] {
		copy(y, rhs)
	}
	var flops int64
	// Forward: L·y = rhs, row-oriented.
	for i := 0; i < e.N; i++ {
		fi := e.first[i]
		base := e.ptr[i] - fi
		s := y[i]
		for k := fi; k < i; k++ {
			s -= e.env[base+k] * y[k]
			flops += 2
		}
		y[i] = s / e.env[e.ptr[i+1]-1]
		flops++
	}
	// Backward: Lᵀ·x = y, column-oriented over the row-stored factor.
	for i := e.N - 1; i >= 0; i-- {
		fi := e.first[i]
		base := e.ptr[i] - fi
		x := y[i] / e.env[e.ptr[i+1]-1]
		flops++
		y[i] = x
		for k := fi; k < i; k++ {
			y[k] -= e.env[base+k] * x
			flops += 2
		}
	}
	st.addFlops(flops)
	return y
}
