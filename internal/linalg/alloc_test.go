package linalg

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestKernelIterationsAllocationFree pins down the workspace contract of
// the iterative kernels: with a warm IterWork, the allocation count of a
// solve must not grow with its iteration count — everything a kernel
// allocates (the returned solution, a convergence error) is
// per-invocation.  The tolerance Tol=0 is unreachable, so MaxIter sets
// the iteration count exactly.
func TestKernelIterationsAllocationFree(t *testing.T) {
	m := poisson2D(12)
	b := NewVector(m.N)
	for i := range b {
		b[i] = 1
	}
	jac, err := NewJacobiPrecond(m)
	if err != nil {
		t.Fatal(err)
	}
	ssor, err := NewSSORPrecond(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(name string, f func(opts IterOpts, ws *IterWork) error) {
		t.Run(name, func(t *testing.T) {
			ws := &IterWork{}
			allocs := func(iters int) float64 {
				opts := IterOpts{Tol: 1e-300, MaxIter: iters, Omega: 1.5}
				return testing.AllocsPerRun(10, func() {
					if err := f(opts, ws); err != nil && !errors.Is(err, ErrNoConvergence) {
						t.Fatal(err)
					}
				})
			}
			few, many := allocs(2), allocs(26)
			if many != few {
				t.Errorf("iterations allocate: 2 iters -> %.1f allocs/op, 26 iters -> %.1f allocs/op", few, many)
			}
		})
	}
	ctx := context.Background()
	run("cg", func(opts IterOpts, ws *IterWork) error {
		_, _, _, err := cg(ctx, m, b, nil, opts, nil, ws)
		return err
	})
	run("cg+jacobi", func(opts IterOpts, ws *IterWork) error {
		_, _, _, err := cg(ctx, m, b, jac, opts, nil, ws)
		return err
	})
	run("cg+ssor", func(opts IterOpts, ws *IterWork) error {
		_, _, _, err := cg(ctx, m, b, ssor, opts, nil, ws)
		return err
	})
	run("jacobi", func(opts IterOpts, ws *IterWork) error {
		_, _, _, err := jacobi(ctx, m, b, opts, nil, ws)
		return err
	})
	run("sor", func(opts IterOpts, ws *IterWork) error {
		_, _, _, err := sor(ctx, m, b, opts, nil, ws)
		return err
	})
}

// TestEngineBackendsReuseWorkspaces checks the registry path end to end:
// a warm engine solve allocates a small per-invocation constant (the
// solution, Info bookkeeping, a pooled-workspace header at worst), far
// below one allocation per iteration — the regression this guards is a
// kernel quietly reallocating its scratch vectors or diagonal each call.
func TestEngineBackendsReuseWorkspaces(t *testing.T) {
	m := poisson2D(12)
	b := NewVector(m.N)
	for i := range b {
		b[i] = 1
	}
	const iters = 40
	for _, backend := range []string{BackendCG, BackendJacobi, BackendSOR} {
		t.Run(backend, func(t *testing.T) {
			s, err := Backend(backend)
			if err != nil {
				t.Fatal(err)
			}
			opts := IterOpts{Tol: 1e-300, MaxIter: iters}
			avg := testing.AllocsPerRun(10, func() {
				if _, _, err := s.Solve(context.Background(), m, b, opts); err != nil && !errors.Is(err, ErrNoConvergence) {
					t.Fatal(err)
				}
			})
			// Well under one allocation per iteration: the scratch
			// vectors are reused, not rebuilt.
			if avg >= iters {
				t.Errorf("engine %s solve: %.1f allocs/op for %d iterations", backend, avg, iters)
			}
		})
	}
}

// TestIterWorkGrow covers the buffer-reuse helper directly.
func TestIterWorkGrow(t *testing.T) {
	v := grow(nil, 4)
	if len(v) != 4 {
		t.Fatalf("grow(nil, 4) len %d", len(v))
	}
	v[0] = 7
	w := grow(v, 3)
	if &w[0] != &v[0] {
		t.Error("grow reallocated despite sufficient capacity")
	}
	if w[0] != 0 {
		t.Error("grow did not zero reused storage")
	}
	u := grow(v, 100)
	if len(u) != 100 {
		t.Errorf("grow(_, 100) len %d", len(u))
	}
	for i, x := range u {
		if x != 0 {
			t.Fatalf("grown vector not zero at %d: %v", i, fmt.Sprint(x))
		}
	}
}
