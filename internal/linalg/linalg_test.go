package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// poisson1D builds the order-n tridiagonal (2,-1) SPD system as triplets.
func poisson1D(n int) []Triplet {
	var ts []Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{i, i, 2})
		if i > 0 {
			ts = append(ts, Triplet{i, i - 1, -1})
		}
		if i < n-1 {
			ts = append(ts, Triplet{i, i + 1, -1})
		}
	}
	return ts
}

// poisson2D builds the 5-point Laplacian on an n×n interior grid.
func poisson2D(n int) *CSR {
	var ts []Triplet
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ts = append(ts, Triplet{id(i, j), id(i, j), 4})
			if i > 0 {
				ts = append(ts, Triplet{id(i, j), id(i-1, j), -1})
			}
			if i < n-1 {
				ts = append(ts, Triplet{id(i, j), id(i+1, j), -1})
			}
			if j > 0 {
				ts = append(ts, Triplet{id(i, j), id(i, j-1), -1})
			}
			if j < n-1 {
				ts = append(ts, Triplet{id(i, j), id(i, j+1), -1})
			}
		}
	}
	m, err := NewCSRFromTriplets(n*n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestDotAxpyScaleNorm(t *testing.T) {
	st := &Stats{}
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := Dot(a, b, st); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if st.Flops != 6 {
		t.Errorf("Dot flops = %d, want 6", st.Flops)
	}
	y := b.Clone()
	Axpy(2, a, y, st)
	want := Vector{6, 9, 12}
	if MaxAbsDiff(y, want) != 0 {
		t.Errorf("Axpy = %v, want %v", y, want)
	}
	Scale(0.5, y, st)
	if MaxAbsDiff(y, Vector{3, 4.5, 6}) != 0 {
		t.Errorf("Scale = %v", y)
	}
	if got := Norm2(Vector{3, 4}, st); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := NormInf(Vector{-7, 3}); got != 7 {
		t.Errorf("NormInf = %g, want 7", got)
	}
}

func TestAddSub(t *testing.T) {
	a := Vector{1, 2}
	b := Vector{3, 5}
	if s := Add(a, b, nil, nil); MaxAbsDiff(s, Vector{4, 7}) != 0 {
		t.Errorf("Add = %v", s)
	}
	if d := Sub(b, a, nil, nil); MaxAbsDiff(d, Vector{2, 3}) != 0 {
		t.Errorf("Sub = %v", d)
	}
	out := NewVector(2)
	Add(a, b, out, nil)
	if MaxAbsDiff(out, Vector{4, 7}) != 0 {
		t.Errorf("Add into out = %v", out)
	}
}

func TestDotDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths did not panic")
		}
	}()
	Dot(Vector{1}, Vector{1, 2}, nil)
}

func TestVectorCloneIndependent(t *testing.T) {
	a := Vector{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestStatsNilAndMerge(t *testing.T) {
	var s *Stats
	s.addFlops(10) // must not panic
	s.Merge(Stats{Flops: 5})
	st := &Stats{Flops: 1, Iterations: 2}
	st.Merge(Stats{Flops: 10, Iterations: 3})
	if st.Flops != 11 || st.Iterations != 5 {
		t.Errorf("Merge = %+v", *st)
	}
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.AddAt(1, 2, 2)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %g, want 7", m.At(1, 2))
	}
	r := m.Row(1)
	if r[2] != 7 {
		t.Errorf("Row view = %v", r)
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestDenseMulVecAndMul(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	st := &Stats{}
	y := m.MulVec(Vector{1, 1}, nil, st)
	if MaxAbsDiff(y, Vector{3, 7}) != 0 {
		t.Errorf("MulVec = %v", y)
	}
	if st.Flops != 8 {
		t.Errorf("MulVec flops = %d, want 8", st.Flops)
	}
	p := m.Mul(DenseFromRows([][]float64{{0, 1}, {1, 0}}), nil)
	if p.At(0, 0) != 2 || p.At(0, 1) != 1 || p.At(1, 0) != 4 || p.At(1, 1) != 3 {
		t.Errorf("Mul result wrong: %+v", p)
	}
}

func TestDenseTransposeSymmetric(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.Transpose()
	if mt.Rows != 3 || mt.Cols != 2 || mt.At(2, 1) != 6 {
		t.Errorf("Transpose wrong: %+v", mt)
	}
	s := DenseFromRows([][]float64{{2, -1}, {-1, 2}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	a := DenseFromRows([][]float64{{2, -1}, {1, 2}})
	if a.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if m.IsSymmetric(0) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestDenseSolveGauss(t *testing.T) {
	m := DenseFromRows([][]float64{
		{2, 1, 0},
		{1, 3, 1},
		{0, 1, 4},
	})
	want := Vector{1, -2, 3}
	b := m.MulVec(want, nil, nil)
	x, err := m.SolveGauss(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d > 1e-12 {
		t.Errorf("SolveGauss error %g", d)
	}
}

func TestDenseSolveGaussPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	m := DenseFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := m.SolveGauss(Vector{3, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, Vector{5, 3}); d > 1e-14 {
		t.Errorf("pivot solve = %v", x)
	}
}

func TestDenseSolveGaussSingular(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := m.SolveGauss(Vector{1, 2}, nil); err == nil {
		t.Error("singular solve did not fail")
	}
}

func TestBandedAtSetSymmetry(t *testing.T) {
	b := NewBanded(4, 1)
	b.Set(1, 0, -1)
	b.Set(1, 1, 2)
	if b.At(0, 1) != -1 {
		t.Errorf("symmetric At = %g, want -1", b.At(0, 1))
	}
	if b.At(0, 3) != 0 {
		t.Errorf("outside band At = %g, want 0", b.At(0, 3))
	}
	b.AddAt(1, 1, 3)
	if b.At(1, 1) != 5 {
		t.Errorf("AddAt = %g, want 5", b.At(1, 1))
	}
}

func TestBandedSetOutsideBandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set outside band did not panic")
		}
	}()
	NewBanded(5, 1).Set(4, 0, 1)
}

func TestBandedBandwidthClamped(t *testing.T) {
	b := NewBanded(3, 10)
	if b.Bandwidth != 2 {
		t.Errorf("Bandwidth = %d, want clamped 2", b.Bandwidth)
	}
}

func TestBandedMulVecMatchesDense(t *testing.T) {
	n := 8
	b := NewBanded(n, 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		b.Set(i, i, 4+rng.Float64())
		for j := i - 2; j < i; j++ {
			if j >= 0 {
				b.Set(i, j, rng.Float64()-0.5)
			}
		}
	}
	x := NewVector(n)
	for i := range x {
		x[i] = rng.Float64()
	}
	got := b.MulVec(x, nil, nil)
	want := b.ToDense().MulVec(x, nil, nil)
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("banded MulVec differs from dense by %g", d)
	}
}

func TestBandedCholeskySolves1DPoisson(t *testing.T) {
	n := 20
	m, err := NewCSRFromTriplets(n, poisson1D(n))
	if err != nil {
		t.Fatal(err)
	}
	b := m.ToBanded()
	want := NewVector(n)
	for i := range want {
		want[i] = float64(i%5) - 2
	}
	rhs := b.MulVec(want, nil, nil)
	st := &Stats{}
	x, err := b.SolveCholesky(rhs, st)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d > 1e-10 {
		t.Errorf("Cholesky error %g", d)
	}
	if st.Flops == 0 {
		t.Error("Cholesky recorded no flops")
	}
}

func TestBandedCholeskyNotPositiveDefinite(t *testing.T) {
	b := NewBanded(2, 1)
	b.Set(0, 0, 1)
	b.Set(1, 0, 5)
	b.Set(1, 1, 1) // pivot 1 - 25 < 0
	if _, err := b.CholeskyFactor(nil); err == nil {
		t.Error("indefinite matrix factored without error")
	}
}

func TestCSRFromTripletsSumsDuplicates(t *testing.T) {
	m, err := NewCSRFromTriplets(2, []Triplet{
		{0, 0, 1}, {0, 0, 2}, {1, 1, 3}, {0, 1, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3 {
		t.Errorf("duplicate sum = %g, want 3", m.At(0, 0))
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestCSRFromTripletsKeepsExplicitZero(t *testing.T) {
	// Entries whose values cancel stay in the pattern: the sparsity
	// structure depends only on the coordinates, so a reused Pattern and
	// a from-scratch build can never disagree on NNZ.
	m, err := NewCSRFromTriplets(2, []Triplet{{0, 0, 1}, {0, 1, 1}, {0, 1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 (cancelled entry kept as explicit zero)", m.NNZ())
	}
	if m.At(0, 1) != 0 {
		t.Errorf("cancelled At = %g", m.At(0, 1))
	}
}

func TestCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSRFromTriplets(2, []Triplet{{2, 0, 1}}); err == nil {
		t.Error("out-of-range triplet accepted")
	}
	if _, err := NewCSRFromTriplets(2, []Triplet{{0, -1, 1}}); err == nil {
		t.Error("negative column accepted")
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	m := poisson2D(5)
	rng := rand.New(rand.NewSource(2))
	x := NewVector(m.N)
	for i := range x {
		x[i] = rng.Float64()
	}
	got := m.MulVec(x, nil, nil)
	want := m.ToDense().MulVec(x, nil, nil)
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("CSR MulVec differs from dense by %g", d)
	}
}

func TestCSRMulVecRowsPartitionEqualsWhole(t *testing.T) {
	m := poisson2D(4)
	x := NewVector(m.N)
	for i := range x {
		x[i] = float64(i + 1)
	}
	whole := m.MulVec(x, nil, nil)
	part := NewVector(m.N)
	mid := m.N / 2
	m.MulVecRows(x, part, 0, mid, nil)
	m.MulVecRows(x, part, mid, m.N, nil)
	if d := MaxAbsDiff(whole, part); d != 0 {
		t.Errorf("row partition differs from whole by %g", d)
	}
}

func TestCSRDiagonalSymmetryBandwidth(t *testing.T) {
	m := poisson2D(3)
	d := m.Diagonal()
	for i, v := range d {
		if v != 4 {
			t.Errorf("Diagonal[%d] = %g, want 4", i, v)
		}
	}
	if !m.IsSymmetric(0) {
		t.Error("Poisson matrix reported asymmetric")
	}
	if bw := m.Bandwidth(); bw != 3 {
		t.Errorf("Bandwidth = %d, want 3", bw)
	}
	if cols := m.RowColumns(0); len(cols) != 3 {
		t.Errorf("RowColumns(0) = %v", cols)
	}
}

func TestCSRToBandedRoundTrip(t *testing.T) {
	m := poisson2D(4)
	b := m.ToBanded()
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if b.At(i, j) != m.At(i, j) {
				t.Fatalf("ToBanded mismatch at (%d,%d): %g vs %g", i, j, b.At(i, j), m.At(i, j))
			}
		}
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestQuickDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := Vector(raw[:n]), Vector(raw[n:2*n])
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		d1 := Dot(a, b, nil)
		d2 := Dot(b, a, nil)
		return d1 == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for random SPD tridiagonal systems, Cholesky solve agrees with
// Gaussian elimination on the dense expansion.
func TestQuickCholeskyMatchesGauss(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%14 + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBanded(n, 1)
		for i := 0; i < n; i++ {
			b.Set(i, i, 3+rng.Float64())
			if i > 0 {
				b.Set(i, i-1, rng.Float64()-0.5)
			}
		}
		rhs := NewVector(n)
		for i := range rhs {
			rhs[i] = rng.Float64()*2 - 1
		}
		xc, err := b.SolveCholesky(rhs, nil)
		if err != nil {
			return false
		}
		xg, err := b.ToDense().SolveGauss(rhs, nil)
		if err != nil {
			return false
		}
		return MaxAbsDiff(xc, xg) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: CSR built from shuffled triplets equals CSR from sorted ones.
func TestQuickCSRTripletOrderIrrelevant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		ts := poisson1D(n)
		shuffled := make([]Triplet, len(ts))
		copy(shuffled, ts)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		m1, err1 := NewCSRFromTriplets(n, ts)
		m2, err2 := NewCSRFromTriplets(n, shuffled)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m1.At(i, j) != m2.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
