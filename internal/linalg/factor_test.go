package linalg

import (
	"context"
	"math"
	"testing"
)

// shuffled returns the poisson fixture under a structured interleave —
// the bad numbering an ad-hoc mesh generator produces, where per-row
// profiles vary and the envelope should beat the uniform band.
func shuffled(t *testing.T, m *CSR) *CSR {
	t.Helper()
	n := m.N
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			perm[i] = i / 2
		} else {
			perm[i] = (n+1)/2 + i/2
		}
	}
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func rhsFor(m *CSR) Vector {
	b := NewVector(m.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	return b
}

// TestDirectPlanMatchesBaselines pins the plan paths to the historical
// pipelines bit for bit: natural banded against ToBanded+SolveCholesky,
// and RCM banded against the explicit Permute/ToBanded/Unpermute
// pipeline the pre-plan SolveCholeskyRCM ran.
func TestDirectPlanMatchesBaselines(t *testing.T) {
	m := poisson2D(9)
	b := rhsFor(m)

	t.Run("natural-band", func(t *testing.T) {
		stRef := &Stats{}
		ref, err := m.ToBanded().SolveCholesky(b, stRef)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewDirectPlan(m, PlanOpts{})
		if err != nil {
			t.Fatal(err)
		}
		st := &Stats{}
		if err := plan.Refactor(m, st); err != nil {
			t.Fatal(err)
		}
		x, err := plan.SolveInto(b, nil, st)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if x[i] != ref[i] {
				t.Fatalf("plan solution differs at %d: %v vs %v", i, x[i], ref[i])
			}
		}
		if st.Flops != stRef.Flops {
			t.Errorf("plan flops %d, baseline %d", st.Flops, stRef.Flops)
		}
	})

	t.Run("rcm-band", func(t *testing.T) {
		// The historical pipeline, spelled out.
		perm := RCM(m)
		pm, err := m.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		px, err := pm.ToBanded().SolveCholesky(PermuteVector(b, perm), nil)
		if err != nil {
			t.Fatal(err)
		}
		ref := UnpermuteVector(px, perm)
		x, err := SolveCholeskyRCM(m, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if x[i] != ref[i] {
				t.Fatalf("plan RCM solution differs at %d: %v vs %v", i, x[i], ref[i])
			}
		}
	})
}

// TestEnvelopeAgreesWithBand checks the skyline path against the banded
// path on regular and badly numbered systems, and that the envelope
// profile never exceeds (and on the shuffled system beats) the band.
func TestEnvelopeAgreesWithBand(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *CSR
	}{
		{"poisson", poisson2D(9)},
		{"poisson-shuffled", shuffled(t, poisson2D(9))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := rhsFor(tc.m)
			band, err := NewDirectPlan(tc.m, PlanOpts{Ordering: OrderRCM})
			if err != nil {
				t.Fatal(err)
			}
			env, err := NewDirectPlan(tc.m, PlanOpts{Ordering: OrderRCM, Storage: StorageEnvelope})
			if err != nil {
				t.Fatal(err)
			}
			if err := band.Refactor(tc.m, nil); err != nil {
				t.Fatal(err)
			}
			if err := env.Refactor(tc.m, nil); err != nil {
				t.Fatal(err)
			}
			if env.ProfileNNZ() > band.ProfileNNZ() {
				t.Errorf("envelope nnz %d exceeds band nnz %d", env.ProfileNNZ(), band.ProfileNNZ())
			}
			xb, err := band.SolveInto(b, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			xe, err := env.SolveInto(b, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := MaxAbsDiff(xb, xe); d > 1e-10 {
				t.Errorf("envelope vs band solutions differ by %g", d)
			}
			// The factors themselves agree bitwise (same sums; skipped
			// terms are exact zeros).
			for i := 0; i < tc.m.N; i++ {
				for j := env.env.First(i); j <= i; j++ {
					if bv, ev := band.band.At(i, j), env.env.At(i, j); bv != ev {
						t.Fatalf("factor differs at (%d,%d): band %v env %v", i, j, bv, ev)
					}
				}
			}
		})
	}
}

// TestDirectPlanWarmBitIdentical is the differential guarantee the
// factor caches rely on: a warm repeat solve, and a solve after an
// in-place Refactor from unchanged values, are bit-identical to the
// cold solve.
func TestDirectPlanWarmBitIdentical(t *testing.T) {
	m := poisson2D(10)
	b := rhsFor(m)
	for _, po := range []PlanOpts{
		{},
		{Ordering: OrderRCM},
		{Ordering: OrderRCM, Storage: StorageEnvelope},
	} {
		plan, err := NewDirectPlan(m, po)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Refactor(m, nil); err != nil {
			t.Fatal(err)
		}
		cold, err := plan.SolveInto(b, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		warm := NewVector(m.N)
		if _, err := plan.SolveInto(b, warm, nil); err != nil {
			t.Fatal(err)
		}
		if err := plan.Refactor(m, nil); err != nil {
			t.Fatal(err)
		}
		refac, err := plan.SolveInto(b, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cold {
			if warm[i] != cold[i] || refac[i] != cold[i] {
				t.Fatalf("opts %+v: warm/refactor solve differs at %d", po, i)
			}
		}
	}
}

// TestDirectPlanRefactorTracksValues checks a Refactor after a value
// change matches a from-scratch solve of the new matrix bit for bit.
func TestDirectPlanRefactorTracksValues(t *testing.T) {
	m := poisson2D(8)
	b := rhsFor(m)
	plan, err := NewDirectPlan(m, PlanOpts{Ordering: OrderRCM})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Refactor(m, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.SolveInto(b, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Same pattern, new values.
	m2 := &CSR{N: m.N, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: append([]float64(nil), m.Val...)}
	for i := range m2.Val {
		m2.Val[i] *= 2.5
	}
	if err := plan.Refactor(m2, nil); err != nil {
		t.Fatal(err)
	}
	got, err := plan.SolveInto(b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveCholeskyRCM(m2, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("refactored solve differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestDirectPlanWarmAllocationFree pins the steady-state contract: with
// the plan warm, Refactor plus SolveInto into a caller buffer allocates
// nothing, for both storage kinds — the regression behind the old
// pipeline's 631 allocs per cholesky-rcm solve.
func TestDirectPlanWarmAllocationFree(t *testing.T) {
	m := poisson2D(10)
	b := rhsFor(m)
	for _, tc := range []struct {
		name string
		po   PlanOpts
	}{
		{"band-rcm", PlanOpts{Ordering: OrderRCM}},
		{"env-rcm", PlanOpts{Ordering: OrderRCM, Storage: StorageEnvelope}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := NewDirectPlan(m, tc.po)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Refactor(m, nil); err != nil {
				t.Fatal(err)
			}
			out := NewVector(m.N)
			st := &Stats{}
			if avg := testing.AllocsPerRun(20, func() {
				if _, err := plan.SolveInto(b, out, st); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("warm SolveInto: %.1f allocs/op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(20, func() {
				if err := plan.Refactor(m, st); err != nil {
					t.Fatal(err)
				}
				if _, err := plan.SolveInto(b, out, st); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("warm Refactor+SolveInto: %.1f allocs/op, want 0", avg)
			}
		})
	}
}

// TestDirectPlanSolveMatrix checks the multi-RHS path against repeated
// single solves.
func TestDirectPlanSolveMatrix(t *testing.T) {
	m := poisson2D(6)
	plan, err := NewDirectPlan(m, PlanOpts{Ordering: OrderRCM})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Refactor(m, nil); err != nil {
		t.Fatal(err)
	}
	const cols = 3
	c := NewDense(m.N, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < m.N; i++ {
			c.Set(i, j, float64((i+j)%5)-2)
		}
	}
	x, err := plan.SolveMatrixInto(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < cols; j++ {
		col := NewVector(m.N)
		for i := 0; i < m.N; i++ {
			col[i] = c.At(i, j)
		}
		want, err := plan.SolveInto(col, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.N; i++ {
			if x.At(i, j) != want[i] {
				t.Fatalf("matrix solve col %d differs at %d", j, i)
			}
		}
	}
}

// TestDirectPlanErrors covers the state and dimension guards.
func TestDirectPlanErrors(t *testing.T) {
	m := poisson2D(5)
	plan, err := NewDirectPlan(m, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.SolveInto(NewVector(m.N), nil, nil); err == nil {
		t.Error("SolveInto before Refactor succeeded")
	}
	other := poisson2D(6)
	if err := plan.Refactor(other, nil); err == nil {
		t.Error("Refactor with mismatched pattern succeeded")
	}
	if err := plan.Refactor(m, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.SolveInto(NewVector(3), nil, nil); err == nil {
		t.Error("SolveInto with short rhs succeeded")
	}
}

// TestFactorCacheSolveCached covers the cache protocol: cold plan build,
// warm reuse on identical values, in-place refactor on changed values,
// generation accounting, and Invalidate.
func TestFactorCacheSolveCached(t *testing.T) {
	m := poisson2D(8)
	b := rhsFor(m)
	fc := &FactorCache{}
	x1, refac, err := fc.SolveCached(BackendCholeskyRCM, m, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !refac {
		t.Error("first solve did not refactor")
	}
	if g := fc.Generation(); g != 1 {
		t.Errorf("generation after cold solve = %d, want 1", g)
	}
	x2, refac, err := fc.SolveCached(BackendCholeskyRCM, m, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if refac {
		t.Error("repeat solve refactored despite unchanged values")
	}
	if g := fc.Generation(); g != 1 {
		t.Errorf("generation after warm solve = %d, want 1", g)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("warm cached solve differs at %d", i)
		}
	}
	// Changed values: must refactor and match a cold solve of the new
	// system exactly.
	m.Val[0] *= 3
	want, err := SolveCholeskyRCM(m, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	x3, refac, err := fc.SolveCached(BackendCholeskyRCM, m, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !refac {
		t.Error("solve after value change did not refactor")
	}
	if g := fc.Generation(); g != 2 {
		t.Errorf("generation after value change = %d, want 2", g)
	}
	for i := range want {
		if x3[i] != want[i] {
			t.Fatalf("cached solve after value change differs at %d", i)
		}
	}
	// Invalidate forces a refactor even with unchanged values.
	fc.Invalidate()
	if _, refac, err = fc.SolveCached(BackendCholeskyRCM, m, b, nil); err != nil {
		t.Fatal(err)
	} else if !refac {
		t.Error("solve after Invalidate did not refactor")
	}
	// Iterative backends have nothing to cache.
	if _, _, err := fc.SolveCached(BackendCG, m, b, nil); err == nil {
		t.Error("SolveCached accepted an iterative backend")
	}
}

// TestCholeskyEnvBackend checks the new registry backend end to end:
// selectable by name, agrees with the banded baseline, rejects
// preconditioners, and honours cancellation.
func TestCholeskyEnvBackend(t *testing.T) {
	m := poisson2D(8)
	b := rhsFor(m)
	s, err := Backend(BackendCholeskyEnv)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.ToBanded().SolveCholesky(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, info, err := s.Solve(context.Background(), m, b, IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, ref); d > 1e-10 {
		t.Errorf("cholesky-env differs from cholesky by %g", d)
	}
	if !info.Direct || !info.Refactored || info.Backend != BackendCholeskyEnv {
		t.Errorf("info = %+v", info)
	}
	if info.Residual > 1e-10 || math.IsNaN(info.Residual) {
		t.Errorf("residual = %g", info.Residual)
	}
	if _, _, err := s.Solve(context.Background(), m, b, IterOpts{Precond: "jacobi"}); err == nil {
		t.Error("cholesky-env accepted a preconditioner")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Solve(ctx, m, b, IterOpts{}); err == nil {
		t.Error("cholesky-env ignored a cancelled context")
	}
}

// TestSolveCholeskyRCMColdAllocs guards the satellite: the one-shot RCM
// pipeline no longer materialises a permuted CSR from triplets, so its
// cold allocation count is a small constant (the old pipeline paid 631
// allocs on the bench plate).
func TestSolveCholeskyRCMColdAllocs(t *testing.T) {
	m := poisson2D(10)
	b := rhsFor(m)
	avg := testing.AllocsPerRun(10, func() {
		if _, err := SolveCholeskyRCM(m, b, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 40 {
		t.Errorf("cold SolveCholeskyRCM: %.0f allocs/op, want a small constant (<= 40)", avg)
	}
}

// TestFactorCacheRejectsPatternImpostor pins the review finding: two
// SPD systems with identical order and nnz but different sparsity
// patterns must not share a plan — the scatter map belongs to the
// pattern, and reusing it would silently mis-place values.
func TestFactorCacheRejectsPatternImpostor(t *testing.T) {
	mk := func(i, j int) *CSR {
		ts := []Triplet{{0, 0, 4}, {1, 1, 4}, {2, 2, 4}, {Row: i, Col: j, Val: 1}, {Row: j, Col: i, Val: 1}}
		m, err := NewCSRFromTriplets(3, ts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a1, a2 := mk(0, 1), mk(1, 2)
	if a1.NNZ() != a2.NNZ() {
		t.Fatalf("fixtures differ in nnz: %d vs %d", a1.NNZ(), a2.NNZ())
	}
	b := Vector{1, 2, 3}
	fc := &FactorCache{}
	if _, _, err := fc.SolveCached(BackendCholesky, a1, b, nil); err != nil {
		t.Fatal(err)
	}
	x, refac, err := fc.SolveCached(BackendCholesky, a2, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !refac {
		t.Error("pattern change did not rebuild the plan")
	}
	want, err := a2.ToBanded().SolveCholesky(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d != 0 {
		t.Errorf("impostor-pattern solve off by %g", d)
	}
	// The plan itself refuses a mismatched pattern outright.
	plan, err := NewDirectPlan(a1, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Refactor(a2, nil); err == nil {
		t.Error("Refactor accepted a matrix with a different pattern")
	}
}
