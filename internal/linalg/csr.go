package linalg

import (
	"fmt"
	"sort"
)

// Triplet is one (row, col, value) contribution to a sparse matrix under
// assembly.  Finite element assembly produces duplicate (row, col) entries
// that sum.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix, the structure-preserving storage
// for the irregular meshes the FEM-2 hardware requirements call
// "irregular communication patterns".  Row i's entries occupy
// ColIdx[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], columns
// sorted ascending within each row.
type CSR struct {
	N      int // square order
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// NewCSRFromTriplets builds an n×n CSR matrix from assembly triplets,
// summing duplicates.  Row/col indices must lie in [0,n).
//
// Every (row, col) coordinate present in ts is stored, even when its
// values sum to exactly zero: the sparsity pattern is a function of the
// coordinates alone, so a Pattern reused across numeric re-assemblies
// always agrees with a from-scratch build.  Duplicates sum in input
// order, making the result bit-identical to a direct scatter-add.
func NewCSRFromTriplets(n int, ts []Triplet) (*CSR, error) {
	rows := make([]int, len(ts))
	cols := make([]int, len(ts))
	for k, t := range ts {
		rows[k], cols[k] = t.Row, t.Col
	}
	pat, scatter, err := NewPattern(n, rows, cols)
	if err != nil {
		return nil, err
	}
	m := pat.NewCSR()
	for k, t := range ts {
		m.Val[scatter[k]] += t.Val
	}
	return m, nil
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns element (i,j) by binary search within row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.ColIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.Val[lo+k]
	}
	return 0
}

// RowNNZ returns the number of non-zeros in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// MulVec computes out = M*x, allocating out when nil.  This is the SpMV
// kernel at the heart of the iterative FEM solvers.
func (m *CSR) MulVec(x, out Vector, st *Stats) Vector {
	if len(x) != m.N {
		panic(fmt.Errorf("%w: CSR.MulVec order %d by %d", ErrDimension, m.N, len(x)))
	}
	if out == nil {
		out = NewVector(m.N)
	}
	for i := 0; i < m.N; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		out[i] = s
	}
	st.addFlops(int64(2 * m.NNZ()))
	return out
}

// MulVecRows computes out[i] = (M*x)[i] for i in [rowLo,rowHi) only.  The
// parallel NAVM solvers partition rows across tasks and call this kernel on
// each partition; x is the task's window onto the full iterate.
func (m *CSR) MulVecRows(x, out Vector, rowLo, rowHi int, st *Stats) {
	if len(x) != m.N || len(out) != m.N {
		panic(fmt.Errorf("%w: CSR.MulVecRows", ErrDimension))
	}
	if rowLo < 0 || rowHi > m.N || rowLo > rowHi {
		panic(fmt.Errorf("linalg: MulVecRows range [%d,%d) outside order %d", rowLo, rowHi, m.N))
	}
	var nnz int
	for i := rowLo; i < rowHi; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		out[i] = s
		nnz += m.RowPtr[i+1] - m.RowPtr[i]
	}
	st.addFlops(int64(2 * nnz))
}

// Diagonal returns the main diagonal as a vector (Jacobi preconditioning
// and the Jacobi solver itself need it).
func (m *CSR) Diagonal() Vector { return m.DiagonalInto(nil) }

// DiagonalInto stores the main diagonal into d, allocating only when d is
// nil.  It walks each row once (columns are sorted, so the scan stops at
// the diagonal) instead of binary-searching per element; the iterative
// solver workspaces use it to refresh their cached diagonal without
// allocating.
func (m *CSR) DiagonalInto(d Vector) Vector {
	if d == nil {
		d = NewVector(m.N)
	}
	if len(d) != m.N {
		panic(fmt.Errorf("%w: CSR.DiagonalInto order %d into %d", ErrDimension, m.N, len(d)))
	}
	for i := 0; i < m.N; i++ {
		d[i] = 0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j > i {
				break
			}
			if j == i {
				d[i] = m.Val[k]
				break
			}
		}
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			d := m.Val[k] - m.At(j, i)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// Bandwidth returns the maximum |i-j| over stored non-zeros.
func (m *CSR) Bandwidth() int {
	var w int
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d := i - m.ColIdx[k]
			if d < 0 {
				d = -d
			}
			if d > w {
				w = d
			}
		}
	}
	return w
}

// ToBanded converts to symmetric banded storage using the matrix's own
// bandwidth, for handing to the sequential Cholesky baseline.
func (m *CSR) ToBanded() *Banded {
	b := NewBanded(m.N, m.Bandwidth())
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j <= i {
				b.Set(i, j, m.Val[k])
			}
		}
	}
	return b
}

// ToDense expands to dense form (tests only).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.N, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// RowColumns returns the column indices of row i (shared storage; callers
// must not modify).  The NAVM layer uses this to discover which remote
// windows a row's update touches — the "irregular communication pattern".
func (m *CSR) RowColumns(i int) []int {
	return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]
}
