package linalg

import (
	"fmt"
	"sort"
)

// Triplet is one (row, col, value) contribution to a sparse matrix under
// assembly.  Finite element assembly produces duplicate (row, col) entries
// that sum.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix, the structure-preserving storage
// for the irregular meshes the FEM-2 hardware requirements call
// "irregular communication patterns".  Row i's entries occupy
// ColIdx[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], columns
// sorted ascending within each row.
type CSR struct {
	N      int // square order
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// NewCSRFromTriplets builds an n×n CSR matrix from assembly triplets,
// summing duplicates.  Row/col indices must lie in [0,n).
func NewCSRFromTriplets(n int, ts []Triplet) (*CSR, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			return nil, fmt.Errorf("linalg: triplet (%d,%d) outside order %d", t.Row, t.Col, n)
		}
	}
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.ColIdx = append(m.ColIdx, sorted[i].Col)
			m.Val = append(m.Val, v)
			m.RowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns element (i,j) by binary search within row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.ColIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.Val[lo+k]
	}
	return 0
}

// RowNNZ returns the number of non-zeros in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// MulVec computes out = M*x, allocating out when nil.  This is the SpMV
// kernel at the heart of the iterative FEM solvers.
func (m *CSR) MulVec(x, out Vector, st *Stats) Vector {
	if len(x) != m.N {
		panic(fmt.Errorf("%w: CSR.MulVec order %d by %d", ErrDimension, m.N, len(x)))
	}
	if out == nil {
		out = NewVector(m.N)
	}
	for i := 0; i < m.N; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		out[i] = s
	}
	st.addFlops(int64(2 * m.NNZ()))
	return out
}

// MulVecRows computes out[i] = (M*x)[i] for i in [rowLo,rowHi) only.  The
// parallel NAVM solvers partition rows across tasks and call this kernel on
// each partition; x is the task's window onto the full iterate.
func (m *CSR) MulVecRows(x, out Vector, rowLo, rowHi int, st *Stats) {
	if len(x) != m.N || len(out) != m.N {
		panic(fmt.Errorf("%w: CSR.MulVecRows", ErrDimension))
	}
	if rowLo < 0 || rowHi > m.N || rowLo > rowHi {
		panic(fmt.Errorf("linalg: MulVecRows range [%d,%d) outside order %d", rowLo, rowHi, m.N))
	}
	var nnz int
	for i := rowLo; i < rowHi; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		out[i] = s
		nnz += m.RowPtr[i+1] - m.RowPtr[i]
	}
	st.addFlops(int64(2 * nnz))
}

// Diagonal returns the main diagonal as a vector (Jacobi preconditioning
// and the Jacobi solver itself need it).
func (m *CSR) Diagonal() Vector {
	d := NewVector(m.N)
	for i := 0; i < m.N; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			d := m.Val[k] - m.At(j, i)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// Bandwidth returns the maximum |i-j| over stored non-zeros.
func (m *CSR) Bandwidth() int {
	var w int
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d := i - m.ColIdx[k]
			if d < 0 {
				d = -d
			}
			if d > w {
				w = d
			}
		}
	}
	return w
}

// ToBanded converts to symmetric banded storage using the matrix's own
// bandwidth, for handing to the sequential Cholesky baseline.
func (m *CSR) ToBanded() *Banded {
	b := NewBanded(m.N, m.Bandwidth())
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j <= i {
				b.Set(i, j, m.Val[k])
			}
		}
	}
	return b
}

// ToDense expands to dense form (tests only).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.N, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// RowColumns returns the column indices of row i (shared storage; callers
// must not modify).  The NAVM layer uses this to discover which remote
// windows a row's update touches — the "irregular communication pattern".
func (m *CSR) RowColumns(i int) []int {
	return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]
}
