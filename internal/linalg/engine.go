// The solver engine API: every way of solving K·x = b — direct or
// iterative, preconditioned or not — is a Solver registered under a
// backend name, solved through one context-aware entry point, and
// reported through one Info.  The fem layer, the REPL's solve verb, and
// the experiment harness all route through this registry, so a new
// backend registered here is immediately selectable by name everywhere
// and appears in the paper's comparison tables without further wiring —
// the point of evaluating alternative solution strategies under one
// harness.

package linalg

import (
	"context"
	"sort"
	"sync"

	"repro/internal/errs"
)

// Info is the unified accounting of one completed (or abandoned) solve:
// which engine ran, how hard it worked, and how good the answer is.
type Info struct {
	// Backend is the registry name of the solver that ran.
	Backend string
	// Precond is the preconditioner name, "" when none applied.
	Precond string
	// Iterations counts solver iterations; 0 for direct solves.
	Iterations int
	// Residual is the relative residual ‖b-Ax‖/‖b‖ of the returned
	// solution (measured after the fact for direct solves).
	Residual float64
	// Flops counts the floating point work of the solve.
	Flops int64
	// Direct reports whether the backend factorises rather than
	// iterates.
	Direct bool
	// Refactored reports whether a direct solve computed a fresh
	// factorisation (always true for the stateless registry backends);
	// false when a factor cache served the solve from a warm factor.
	// Meaningless for iterative backends.
	Refactored bool
}

// Solver is one solution engine for symmetric positive definite sparse
// systems.  Solve honours ctx (long solves return errs.ErrCancelled once
// the context is done), applies opts where meaningful (direct backends
// ignore tolerances and reject preconditioners), and always reports Info
// — on success, on cancellation, and on convergence failure alike.
type Solver interface {
	// Name is the backend's registry name.
	Name() string
	// Solve computes x with A·x = b.
	Solve(ctx context.Context, a *CSR, b Vector, opts IterOpts) (Vector, Info, error)
}

// The built-in backend names.
const (
	// BackendCholesky is sequential banded Cholesky in the mesh's
	// natural numbering — the 1980s production baseline.
	BackendCholesky = "cholesky"
	// BackendCholeskyRCM is banded Cholesky after reverse Cuthill–McKee
	// bandwidth reduction — the full 1980s direct-solve pipeline.
	BackendCholeskyRCM = "cholesky-rcm"
	// BackendCholeskyEnv is envelope (skyline) Cholesky after RCM: each
	// row pays for its own profile instead of the worst row's bandwidth,
	// so irregular meshes stop subsidising their widest row.
	BackendCholeskyEnv = "cholesky-env"
	// BackendCG is (optionally preconditioned) conjugate gradients.
	BackendCG = "cg"
	// BackendJacobi is Jacobi iteration.
	BackendJacobi = "jacobi"
	// BackendSOR is successive over-relaxation.
	BackendSOR = "sor"
)

var (
	backendMu  sync.RWMutex
	backendReg = map[string]Solver{}
)

// RegisterSolver installs a backend in the registry under its Name.  It
// panics on a duplicate name: backend names are API surface (REPL syntax,
// experiment table rows), so a silent replacement would be a bug.
func RegisterSolver(s Solver) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendReg[s.Name()]; dup {
		panic("linalg: duplicate solver backend " + s.Name())
	}
	backendReg[s.Name()] = s
}

// Backend looks up a registered solver by name; the empty name selects
// the Cholesky baseline.  Unknown names are a usage error listing the
// registry.
func Backend(name string) (Solver, error) {
	if name == "" {
		name = BackendCholesky
	}
	backendMu.RLock()
	s, ok := backendReg[name]
	backendMu.RUnlock()
	if !ok {
		return nil, errs.Usage("unknown solver backend %q (have %v)", name, Backends())
	}
	return s, nil
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(backendReg))
	for name := range backendReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasBackend reports whether name is a registered backend ("" selects
// the default and is always valid).
func HasBackend(name string) bool {
	if name == "" {
		return true
	}
	backendMu.RLock()
	defer backendMu.RUnlock()
	_, ok := backendReg[name]
	return ok
}

func init() {
	RegisterSolver(choleskySolver{name: BackendCholesky})
	RegisterSolver(choleskySolver{name: BackendCholeskyRCM, opts: PlanOpts{Ordering: OrderRCM}})
	RegisterSolver(choleskySolver{name: BackendCholeskyEnv, opts: PlanOpts{Ordering: OrderRCM, Storage: StorageEnvelope}})
	RegisterSolver(cgSolver{})
	RegisterSolver(jacobiSolver{})
	RegisterSolver(sorSolver{})
}

// iterWorkPool recycles iterative-kernel workspaces across Solve calls.
// The registry's backends are stateless shared singletons, so the scratch
// vectors live here instead: a steady-state solve allocates only its
// returned solution, and concurrent solves each draw their own workspace.
var iterWorkPool = sync.Pool{New: func() any { return new(IterWork) }}

// RejectDirectPrecond is the direct solvers' guard: a preconditioner
// only means something to an iterative method.  The fem layer's cached
// direct path shares it so both routes reject with one message.
func RejectDirectPrecond(backend, precond string) error {
	if precond != "" && precond != "none" {
		return errs.Usage("backend %q is direct and takes no preconditioner (%q requested)",
			backend, precond)
	}
	return nil
}

// rejectPrecond adapts RejectDirectPrecond to IterOpts.
func rejectPrecond(backend string, opts IterOpts) error {
	return RejectDirectPrecond(backend, opts.Precond)
}

// DirectSolveInfo measures the residual of a direct solve and assembles
// its Info.  The verification SpMV is measured with a throwaway Stats
// so Info.Flops reports the factorisation work alone — keeping the
// experiment tables' direct-solve cost figures comparable with the
// pre-registry measurements.  The fem layer's cached path builds its
// Info through the same helper so cold and warm solves report alike.
func DirectSolveInfo(backend string, a *CSR, x, b Vector, st *Stats) Info {
	verify := &Stats{}
	resid := Residual(a, x, b, verify)
	if bnorm := Norm2(b, verify); bnorm > 0 {
		resid /= bnorm
	}
	return Info{Backend: backend, Residual: resid, Flops: st.Flops, Direct: true}
}

// choleskySolver is the direct backend family: banded or envelope
// storage, natural or RCM ordering, selected by its PlanOpts.  Each
// Solve is a one-shot DirectPlan — the registry backends are stateless;
// the factor caches above this layer are what make solves warm.
type choleskySolver struct {
	name string
	opts PlanOpts
}

// Name returns the registry name.
func (s choleskySolver) Name() string { return s.name }

// Solve factorises and back-substitutes.  A direct solve is one
// indivisible step, so ctx is honoured only before the factorisation.
func (s choleskySolver) Solve(ctx context.Context, a *CSR, b Vector, opts IterOpts) (Vector, Info, error) {
	if err := rejectPrecond(s.name, opts); err != nil {
		return nil, Info{Backend: s.name, Direct: true}, err
	}
	if err := CheckCancel(ctx, 1); err != nil {
		return nil, Info{Backend: s.name, Direct: true}, err
	}
	st := &Stats{}
	plan, err := NewDirectPlan(a, s.opts)
	if err != nil {
		return nil, Info{Backend: s.name, Direct: true}, err
	}
	if err := plan.Refactor(a, st); err != nil {
		return nil, Info{Backend: s.name, Flops: st.Flops, Direct: true, Refactored: true}, err
	}
	x, err := plan.SolveInto(b, nil, st)
	if err != nil {
		return nil, Info{Backend: s.name, Flops: st.Flops, Direct: true, Refactored: true}, err
	}
	info := DirectSolveInfo(s.name, a, x, b, st)
	info.Refactored = true
	return x, info, nil
}

// IterDefaults fills the zero-value fields of opts for an iterative
// method of order n: the shared 1e-8 tolerance, an iterFactor·n
// iteration budget (floored at 200 and clamped to MaxIterCeiling), and
// ω=1.5.  Explicitly set fields pass through unchanged — including an
// out-of-range Omega, which the SOR kernels reject.  The sequential
// backends and the NAVM distributed solvers share it, so both paths of
// one method always default to the same budget.
func IterDefaults(opts IterOpts, n, iterFactor int) IterOpts {
	if opts.Tol <= 0 {
		opts.Tol = 1e-8
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = clampIter(iterFactor * n)
	}
	if opts.Omega == 0 {
		opts.Omega = 1.5
	}
	return opts
}

// cgSolver is the conjugate gradient backend; opts.Precond selects a
// preconditioner from the preconditioner registry.
type cgSolver struct{}

// Name returns the registry name.
func (cgSolver) Name() string { return BackendCG }

// Solve runs (preconditioned) CG.
func (cgSolver) Solve(ctx context.Context, a *CSR, b Vector, opts IterOpts) (Vector, Info, error) {
	opts = IterDefaults(opts, a.N, 10)
	m, err := NewPreconditioner(opts.Precond, a, opts.Omega)
	if err != nil {
		return nil, Info{Backend: BackendCG}, err
	}
	info := Info{Backend: BackendCG}
	if m != nil {
		info.Precond = m.Name()
	}
	st := &Stats{}
	ws := iterWorkPool.Get().(*IterWork)
	defer iterWorkPool.Put(ws)
	x, iters, resid, err := cg(ctx, a, b, m, opts, st, ws)
	info.Iterations = iters
	info.Residual = resid
	info.Flops = st.Flops
	return x, info, err
}

// jacobiSolver is the Jacobi iteration backend.
type jacobiSolver struct{}

// Name returns the registry name.
func (jacobiSolver) Name() string { return BackendJacobi }

// Solve runs Jacobi iteration (budget 200·n: the method converges slowly
// but every update is independent).
func (jacobiSolver) Solve(ctx context.Context, a *CSR, b Vector, opts IterOpts) (Vector, Info, error) {
	if err := rejectPrecond(BackendJacobi, opts); err != nil {
		return nil, Info{Backend: BackendJacobi}, err
	}
	opts = IterDefaults(opts, a.N, 200)
	st := &Stats{}
	ws := iterWorkPool.Get().(*IterWork)
	defer iterWorkPool.Put(ws)
	x, iters, resid, err := jacobi(ctx, a, b, opts, st, ws)
	return x, Info{Backend: BackendJacobi, Iterations: iters, Residual: resid, Flops: st.Flops}, err
}

// sorSolver is the successive over-relaxation backend.
type sorSolver struct{}

// Name returns the registry name.
func (sorSolver) Name() string { return BackendSOR }

// Solve runs SOR with opts.Omega (budget 100·n).
func (sorSolver) Solve(ctx context.Context, a *CSR, b Vector, opts IterOpts) (Vector, Info, error) {
	if err := rejectPrecond(BackendSOR, opts); err != nil {
		return nil, Info{Backend: BackendSOR}, err
	}
	opts = IterDefaults(opts, a.N, 100)
	st := &Stats{}
	ws := iterWorkPool.Get().(*IterWork)
	defer iterWorkPool.Put(ws)
	x, iters, resid, err := sor(ctx, a, b, opts, st, ws)
	return x, Info{Backend: BackendSOR, Iterations: iters, Residual: resid, Flops: st.Flops}, err
}
