package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// badlyNumbered builds a 1D chain whose natural numbering interleaves the
// two halves, giving bandwidth ~n/2; RCM should recover bandwidth 2.
func badlyNumbered(n int) *CSR {
	// Chain in "shuffled" order: node order 0, n/2, 1, n/2+1, ...
	order := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			order[i] = i / 2
		} else {
			order[i] = n/2 + i/2
		}
	}
	pos := make([]int, n)
	for idx, node := range order {
		pos[node] = idx
	}
	var ts []Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{pos[i], pos[i], 4})
		if i > 0 {
			ts = append(ts, Triplet{pos[i], pos[i-1], -1}, Triplet{pos[i-1], pos[i], -1})
		}
	}
	m, err := NewCSRFromTriplets(n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestRCMIsAPermutation(t *testing.T) {
	m := badlyNumbered(20)
	perm := RCM(m)
	if len(perm) != m.N {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, m.N)
	for _, p := range perm {
		if p < 0 || p >= m.N || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	m := badlyNumbered(40)
	before := m.Bandwidth()
	pm, err := m.Permute(RCM(m))
	if err != nil {
		t.Fatal(err)
	}
	after := pm.Bandwidth()
	if after >= before {
		t.Errorf("RCM bandwidth %d not below original %d", after, before)
	}
	// A chain has optimal bandwidth 1; RCM on a path graph achieves it.
	if after > 2 {
		t.Errorf("RCM bandwidth %d on a chain, want <= 2", after)
	}
}

func TestRCMHandlesDisconnectedComponents(t *testing.T) {
	// Two decoupled chains.
	var ts []Triplet
	for i := 0; i < 6; i++ {
		ts = append(ts, Triplet{i, i, 2})
	}
	ts = append(ts, Triplet{0, 1, -1}, Triplet{1, 0, -1})
	ts = append(ts, Triplet{3, 4, -1}, Triplet{4, 3, -1})
	m, err := NewCSRFromTriplets(6, ts)
	if err != nil {
		t.Fatal(err)
	}
	perm := RCM(m)
	seen := make([]bool, 6)
	for _, p := range perm {
		seen[p] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("node %d missing from RCM ordering", i)
		}
	}
}

func TestPermuteRejectsBadPermutations(t *testing.T) {
	m := badlyNumbered(4)
	if _, err := m.Permute([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := m.Permute([]int{0, 0, 1, 2}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if _, err := m.Permute([]int{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestPermuteVectorRoundTrip(t *testing.T) {
	v := Vector{10, 20, 30, 40}
	perm := []int{2, 0, 3, 1}
	p := PermuteVector(v, perm)
	if p[0] != 30 || p[1] != 10 || p[2] != 40 || p[3] != 20 {
		t.Errorf("PermuteVector = %v", p)
	}
	back := UnpermuteVector(p, perm)
	if MaxAbsDiff(v, back) != 0 {
		t.Errorf("round trip = %v", back)
	}
}

func TestSolveCholeskyRCMMatchesUnpermuted(t *testing.T) {
	m := badlyNumbered(30)
	want := NewVector(m.N)
	rng := rand.New(rand.NewSource(5))
	for i := range want {
		want[i] = rng.Float64()*2 - 1
	}
	b := m.MulVec(want, nil, nil)
	st := &Stats{}
	x, err := SolveCholeskyRCM(m, b, st)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, want); d > 1e-9 {
		t.Errorf("RCM solve error %g", d)
	}
	// The reordered factorization does strictly less work than the
	// natural-order one on this badly numbered chain.
	stNat := &Stats{}
	if _, err := m.ToBanded().SolveCholesky(b, stNat); err != nil {
		t.Fatal(err)
	}
	if st.Flops >= stNat.Flops {
		t.Errorf("RCM flops %d not below natural-order flops %d", st.Flops, stNat.Flops)
	}
}

// Property: for random symmetric structures, Permute(RCM) preserves the
// spectrum's action — solving the permuted system and unpermuting equals
// solving the original (via CG, which is ordering-insensitive).
func TestQuickRCMPreservesSolution(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%15 + 3
		rng := rand.New(rand.NewSource(seed))
		ts := poisson1D(n)
		for e := 0; e < n/2; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				ts = append(ts, Triplet{i, j, -0.1}, Triplet{j, i, -0.1})
				ts = append(ts, Triplet{i, i, 0.2}, Triplet{j, j, 0.2}) // keep SPD
			}
		}
		m, err := NewCSRFromTriplets(n, ts)
		if err != nil {
			return false
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		xRef, _, err := seqCG(m, b, DefaultIterOpts(n), nil)
		if err != nil {
			return false
		}
		x, err := SolveCholeskyRCM(m, b, nil)
		if err != nil {
			return false
		}
		return MaxAbsDiff(x, xRef) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
