// Package linalg provides the dense, banded, and sparse linear algebra
// kernels underlying the FEM-2 reproduction.
//
// The numerical analyst's virtual machine in the paper exposes "linear
// algebra operations: inner product, vector operations, etc."; the hardware
// requirements list "fast linear algebra operations (to extract the
// low-level parallelism available in these operations)".  This package is
// the sequential substrate for those operations: the NAVM layer wraps these
// kernels with tasks and windows to obtain the parallel versions, and the
// sequential solvers here serve as the baselines the experiments compare
// against.
//
// All operations count floating point work through the optional *Stats so
// experiments can report processing requirements exactly.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when operand dimensions are incompatible.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Stats accumulates floating-point operation counts for the kernels.  A nil
// *Stats is a valid no-op sink.  Stats is not safe for concurrent use; the
// parallel layers keep one per worker and merge.
type Stats struct {
	// Flops counts floating point operations (one add, mul, div, or sqrt
	// each).
	Flops int64
	// Iterations counts solver iterations, where applicable.
	Iterations int
}

func (s *Stats) addFlops(n int64) {
	if s != nil {
		s.Flops += n
	}
}

// Merge adds other's counts into s.
func (s *Stats) Merge(other Stats) {
	if s == nil {
		return
	}
	s.Flops += other.Flops
	s.Iterations += other.Iterations
}

// Vector is a dense vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Dot returns the inner product of a and b, the central NAVM linear
// algebra operation.  It panics via ErrDimension check if lengths differ.
func Dot(a, b Vector, st *Stats) float64 {
	if len(a) != len(b) {
		panic(fmt.Errorf("%w: Dot %d vs %d", ErrDimension, len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	st.addFlops(int64(2 * len(a)))
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y Vector, st *Stats) {
	if len(x) != len(y) {
		panic(fmt.Errorf("%w: Axpy %d vs %d", ErrDimension, len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
	st.addFlops(int64(2 * len(x)))
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v Vector, st *Stats) {
	for i := range v {
		v[i] *= alpha
	}
	st.addFlops(int64(len(v)))
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vector, st *Stats) float64 {
	s := Dot(v, v, st)
	st.addFlops(1)
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element of v.
func NormInf(v Vector) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sub computes out = a - b, allocating out when nil.
func Sub(a, b, out Vector, st *Stats) Vector {
	if len(a) != len(b) {
		panic(fmt.Errorf("%w: Sub %d vs %d", ErrDimension, len(a), len(b)))
	}
	if out == nil {
		out = NewVector(len(a))
	}
	for i := range a {
		out[i] = a[i] - b[i]
	}
	st.addFlops(int64(len(a)))
	return out
}

// Add computes out = a + b, allocating out when nil.
func Add(a, b, out Vector, st *Stats) Vector {
	if len(a) != len(b) {
		panic(fmt.Errorf("%w: Add %d vs %d", ErrDimension, len(a), len(b)))
	}
	if out == nil {
		out = NewVector(len(a))
	}
	for i := range a {
		out[i] = a[i] + b[i]
	}
	st.addFlops(int64(len(a)))
	return out
}

// MaxAbsDiff returns max_i |a_i - b_i|, useful for solution comparisons in
// tests and experiments.
func MaxAbsDiff(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Errorf("%w: MaxAbsDiff %d vs %d", ErrDimension, len(a), len(b)))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
