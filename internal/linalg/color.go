package linalg

import "fmt"

// Coloring is a partition of a matrix's rows into colors such that no two
// rows of one color are coupled by a non-zero off-diagonal entry.  Within
// a color, Gauss-Seidel/SOR updates are independent and can run fully in
// parallel — the multi-colour SOR scheme Adams analysed for the Finite
// Element Machine (and FEM-2's companion work, ref. [8] of the paper).
type Coloring struct {
	// ColorOf[i] is row i's color in [0, NumColors).
	ColorOf []int
	// NumColors is the number of colors used.
	NumColors int
	// Rows[c] lists the rows of color c, ascending.
	Rows [][]int
}

// GreedyColoring colors the adjacency structure of a (structurally
// symmetric) sparse matrix with the first-fit greedy heuristic in natural
// row order.  Regular grid stencils get their classic colorings (2 for
// the 5-point stencil — red/black); irregular meshes get small color
// counts bounded by max degree + 1.
func GreedyColoring(a *CSR) *Coloring {
	c := &Coloring{ColorOf: make([]int, a.N)}
	for i := range c.ColorOf {
		c.ColorOf[i] = -1
	}
	// forbidden[k] == i marks color k as used by a neighbour of row i.
	forbidden := make([]int, 0)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i {
				continue
			}
			if cj := c.ColorOf[j]; cj >= 0 {
				for len(forbidden) <= cj {
					forbidden = append(forbidden, -1)
				}
				forbidden[cj] = i
			}
		}
		color := 0
		for color < len(forbidden) && forbidden[color] == i {
			color++
		}
		c.ColorOf[i] = color
		if color+1 > c.NumColors {
			c.NumColors = color + 1
		}
	}
	c.Rows = make([][]int, c.NumColors)
	for i, col := range c.ColorOf {
		c.Rows[col] = append(c.Rows[col], i)
	}
	return c
}

// Validate checks the coloring invariant: no off-diagonal non-zero joins
// two rows of one color.
func (c *Coloring) Validate(a *CSR) error {
	if len(c.ColorOf) != a.N {
		return fmt.Errorf("%w: coloring of %d rows for order %d", ErrDimension, len(c.ColorOf), a.N)
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j != i && c.ColorOf[i] == c.ColorOf[j] {
				return fmt.Errorf("linalg: rows %d and %d coupled but share color %d", i, j, c.ColorOf[i])
			}
		}
	}
	return nil
}

// MultiColorSOR solves A*x = b by SOR with the update order given by the
// coloring: all rows of color 0, then color 1, and so on.  Every row
// within a color is independent, so each color sweep parallelises
// perfectly — the property the FEM machines were built to exploit.  The
// sequential implementation here is the reference; navm runs the colors
// in parallel with the same arithmetic.
func MultiColorSOR(a *CSR, b Vector, c *Coloring, opts IterOpts, st *Stats) (Vector, int, error) {
	n := a.N
	if len(b) != n {
		panic(fmt.Errorf("%w: MultiColorSOR order %d with rhs %d", ErrDimension, n, len(b)))
	}
	if err := c.Validate(a); err != nil {
		return nil, 0, err
	}
	w := opts.Omega
	if w <= 0 || w >= 2 {
		return nil, 0, fmt.Errorf("linalg: SOR relaxation factor %g outside (0,2)", w)
	}
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, 0, fmt.Errorf("linalg: MultiColorSOR zero diagonal at %d", i)
		}
	}
	x := NewVector(n)
	bnorm := Norm2(b, st)
	if bnorm == 0 {
		return x, 0, nil
	}
	r := NewVector(n)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		var flops int64
		for _, rows := range c.Rows {
			for _, i := range rows {
				s := b[i]
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					j := a.ColIdx[k]
					if j != i {
						s -= a.Val[k] * x[j]
					}
				}
				x[i] = (1-w)*x[i] + w*s/d[i]
				flops += int64(2*a.RowNNZ(i) + 4)
			}
		}
		st.addFlops(flops)
		a.MulVec(x, r, st)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		st.addFlops(int64(n))
		resid := Norm2(r, st) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if st != nil {
			st.Iterations++
		}
		if resid <= opts.Tol {
			return x, iter, nil
		}
	}
	return x, opts.MaxIter, fmt.Errorf("%w: multi-colour SOR after %d iterations", ErrNoConvergence, opts.MaxIter)
}
