package linalg

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/errs"
)

// engineFixture builds the shared SPD fixture every backend must solve
// to the same answer: a 2D Poisson matrix with a known solution.
func engineFixture(t *testing.T, n int) (*CSR, Vector, Vector) {
	t.Helper()
	m := poisson2D(n)
	want := NewVector(m.N)
	for i := range want {
		want[i] = float64(i%7) - 3
	}
	b := m.MulVec(want, nil, nil)
	return m, b, want
}

func TestBackendsListsEveryBuiltin(t *testing.T) {
	got := Backends()
	for _, name := range []string{BackendCholesky, BackendCholeskyRCM, BackendCG, BackendJacobi, BackendSOR} {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Errorf("Backends() = %v missing %q", got, name)
		}
		if !HasBackend(name) {
			t.Errorf("HasBackend(%q) = false", name)
		}
	}
}

func TestBackendUnknownName(t *testing.T) {
	_, err := Backend("gauss")
	if !errors.Is(err, errs.ErrUsage) {
		t.Fatalf("unknown backend error = %v, want ErrUsage", err)
	}
	if !strings.Contains(err.Error(), BackendCholesky) {
		t.Errorf("unknown-backend error %q does not list the registry", err)
	}
	if HasBackend("gauss") {
		t.Error("HasBackend accepted an unknown name")
	}
}

func TestBackendEmptyNameIsCholesky(t *testing.T) {
	s, err := Backend("")
	if err != nil || s.Name() != BackendCholesky {
		t.Fatalf("Backend(\"\") = %v, %v", s, err)
	}
}

// TestEveryBackendSolvesSharedFixture is the registry acceptance test:
// every backend — and CG under every preconditioner — produces the same
// answer on the shared SPD fixture, and its Info is coherent.
func TestEveryBackendSolvesSharedFixture(t *testing.T) {
	m, b, want := engineFixture(t, 6)
	type engine struct{ backend, precond string }
	var cases []engine
	for _, name := range Backends() {
		cases = append(cases, engine{name, ""})
	}
	for _, p := range Preconds() {
		cases = append(cases, engine{BackendCG, p})
	}
	ctx := context.Background()
	for _, c := range cases {
		s, err := Backend(c.backend)
		if err != nil {
			t.Fatal(err)
		}
		opts := IterOpts{Tol: 1e-10, MaxIter: 50000, Precond: c.precond}
		x, info, err := s.Solve(ctx, m, b, opts)
		if err != nil {
			t.Errorf("%s+%s: %v", c.backend, c.precond, err)
			continue
		}
		if d := MaxAbsDiff(x, want); d > 1e-6 {
			t.Errorf("%s+%s error %g", c.backend, c.precond, d)
		}
		if info.Backend != c.backend {
			t.Errorf("info.Backend = %q, want %q", info.Backend, c.backend)
		}
		if info.Precond != c.precond {
			t.Errorf("%s: info.Precond = %q, want %q", c.backend, info.Precond, c.precond)
		}
		if info.Flops == 0 {
			t.Errorf("%s+%s: no flops accounted", c.backend, c.precond)
		}
		if info.Direct != (info.Iterations == 0) {
			t.Errorf("%s+%s: info = %+v (direct/iterations mismatch)", c.backend, c.precond, info)
		}
		if info.Residual > 1e-6 {
			t.Errorf("%s+%s: residual %g", c.backend, c.precond, info.Residual)
		}
	}
}

func TestDirectBackendRejectsPrecond(t *testing.T) {
	m, b, _ := engineFixture(t, 3)
	for _, name := range []string{BackendCholesky, BackendCholeskyRCM} {
		s, err := Backend(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Solve(context.Background(), m, b, IterOpts{Precond: PrecondJacobi}); !errors.Is(err, errs.ErrUsage) {
			t.Errorf("%s accepted a preconditioner: %v", name, err)
		}
	}
}

func TestCGUnknownPrecond(t *testing.T) {
	m, b, _ := engineFixture(t, 3)
	s, _ := Backend(BackendCG)
	if _, _, err := s.Solve(context.Background(), m, b, IterOpts{Precond: "ilu"}); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("unknown preconditioner error = %v, want ErrUsage", err)
	}
	if HasPrecond("ilu") {
		t.Error("HasPrecond accepted an unknown name")
	}
	if !HasPrecond("") || !HasPrecond("none") || !HasPrecond(PrecondSSOR) {
		t.Error("HasPrecond rejects valid names")
	}
}

// TestSSORPrecondReducesCGIterations checks the preconditioner earns its
// keep: on the Poisson fixture SSOR-preconditioned CG takes strictly
// fewer iterations than plain CG.
func TestSSORPrecondReducesCGIterations(t *testing.T) {
	m, b, _ := engineFixture(t, 12)
	s, _ := Backend(BackendCG)
	_, plain, err := s.Solve(context.Background(), m, b, IterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_, pre, err := s.Solve(context.Background(), m, b, IterOpts{Precond: PrecondSSOR})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Iterations >= plain.Iterations {
		t.Errorf("ssor-preconditioned CG took %d iterations vs %d plain",
			pre.Iterations, plain.Iterations)
	}
}

// TestIterativeBackendsHonourCancel is the ctx-cancellation regression
// test: a context cancelled mid-iteration stops the loop and returns an
// error wrapping errs.ErrCancelled (and the context's own error).
func TestIterativeBackendsHonourCancel(t *testing.T) {
	m, b, _ := engineFixture(t, 12)
	for _, name := range []string{BackendCG, BackendJacobi, BackendSOR} {
		s, err := Backend(name)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		fired := 0
		opts := IterOpts{
			Tol: 1e-14, MaxIter: 50000,
			OnIteration: func(iter int, _ float64) {
				fired = iter
				if iter == 1 {
					cancel() // mid-solve: the loop is already running
				}
			},
		}
		_, _, err = s.Solve(ctx, m, b, opts)
		if !errors.Is(err, errs.ErrCancelled) {
			t.Errorf("%s: cancelled solve returned %v, want ErrCancelled", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: context's own error missing from chain: %v", name, err)
		}
		// The loop noticed within one cancellation-check interval.
		if fired == 0 || fired > 2*cancelCheckInterval {
			t.Errorf("%s: solve ran %d iterations after cancellation", name, fired)
		}
	}
}

func TestDirectBackendsHonourPreCancelledCtx(t *testing.T) {
	m, b, _ := engineFixture(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{BackendCholesky, BackendCholeskyRCM} {
		s, _ := Backend(name)
		if _, _, err := s.Solve(ctx, m, b, IterOpts{}); !errors.Is(err, errs.ErrCancelled) {
			t.Errorf("%s: pre-cancelled ctx returned %v", name, err)
		}
	}
}

func TestConvergenceErrorCarriesFinalState(t *testing.T) {
	m, b, _ := engineFixture(t, 8)
	s, _ := Backend(BackendCG)
	_, info, err := s.Solve(context.Background(), m, b, IterOpts{Tol: 1e-14, MaxIter: 3})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("budget exhaustion returned %v, want ErrNoConvergence", err)
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *ConvergenceError", err)
	}
	if ce.Iterations != 3 || ce.Residual <= 0 || ce.Backend != BackendCG {
		t.Errorf("ConvergenceError = %+v", ce)
	}
	if info.Iterations != 3 || info.Residual != ce.Residual {
		t.Errorf("info %+v disagrees with error %+v", info, ce)
	}
}

func TestDefaultIterOptsBounds(t *testing.T) {
	if got := DefaultIterOpts(5).MaxIter; got != 200 {
		t.Errorf("small-n budget = %d, want the 200 floor", got)
	}
	if got := DefaultIterOpts(1_000_000).MaxIter; got != MaxIterCeiling {
		t.Errorf("huge-n budget = %d, want the %d ceiling", got, MaxIterCeiling)
	}
	if got := DefaultIterOpts(100).MaxIter; got != 1000 {
		t.Errorf("mid-n budget = %d, want 10n", got)
	}
}

func TestRegisterSolverRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterSolver(cgSolver{})
}
