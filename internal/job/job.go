// Package job is the asynchronous job service of the FEM-2 front end:
// the concurrency story the paper's interactive multi-workstation
// machine implies.  Many engineers share one model database over one
// simulated multiprocessor, so the top-layer API must let many sessions
// submit, monitor, and cancel long-running work concurrently instead of
// blocking each caller's goroutine for the length of a solve.
//
// A Scheduler owns a bounded worker pool.  Submit enqueues a heavy
// command (a solve) as a job and returns its JobID immediately; cheap
// commands run inline on the caller's goroutine but still leave a job
// record, so the submit→status→wait surface is uniform.  Per-model
// locking serializes jobs that touch the same model name while jobs on
// different models proceed in parallel across the pool.  Cancellation
// rides the context plumbing every solver kernel already polls: Cancel
// (or cancelling the context passed to Submit) cancels a queued job
// outright and interrupts a running one mid-solve.
//
// The package sits between command (the typed AST and results it stores)
// and auvm (whose Session satisfies Executor); it deliberately imports
// neither auvm nor core, so the session and system layers can build on
// it without a cycle.
package job

import (
	"fmt"

	"repro/internal/command"
	"repro/internal/errs"
)

// JobID identifies one submitted job.  IDs are assigned by the scheduler
// in submission order, starting at 1.
type JobID int64

// String renders the id as the command language displays and accepts it.
func (id JobID) String() string { return fmt.Sprintf("job-%d", int64(id)) }

// State is a job's lifecycle state.
type State int

// The job lifecycle: Queued → Running → one of the terminal states.
// Cheap commands run inline and are first observable in a terminal
// state; a queued job cancelled before a worker picks it up goes
// straight to Cancelled.
const (
	// Queued means the job is waiting for a worker (or for its model's
	// lock).
	Queued State = iota
	// Running means a worker is executing the job.
	Running
	// Done means the job finished and its Result is stored.
	Done
	// Failed means the job's command returned a non-cancellation error.
	Failed
	// Cancelled means the job was stopped — before it started, or
	// mid-run through its context.
	Cancelled
)

// String renders the canonical state name shared with the command layer.
func (s State) String() string {
	switch s {
	case Queued:
		return string(command.JobQueued)
	case Running:
		return string(command.JobRunning)
	case Done:
		return string(command.JobDone)
	case Failed:
		return string(command.JobFailed)
	case Cancelled:
		return string(command.JobCancelled)
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// ParseState maps a canonical state name back to its State.
func ParseState(name string) (State, error) {
	for _, s := range []State{Queued, Running, Done, Failed, Cancelled} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, errs.Usage("unknown job state %q", name)
}

// Heavy reports whether a command routes through the worker pool: the
// long-running AUVM verbs — today the solves, the policy seam for
// anything else (bulk assembly, experiment sweeps) that should never
// block a front-end goroutine.  Cheap verbs run inline under the same
// job bookkeeping.
func Heavy(cmd command.Command) bool {
	switch command.Value(cmd).(type) {
	case command.Solve:
		return true
	default:
		return false
	}
}

// ModelOf returns the model name a command reads or writes — the
// scheduler's serialization key.  Jobs whose commands touch the same
// model name run one at a time; commands that touch no model ("" key,
// e.g. list or help) never serialize against anything.
func ModelOf(cmd command.Command) string {
	switch c := command.Value(cmd).(type) {
	case command.Define:
		return c.Name
	case command.GenerateGrid:
		return c.Name
	case command.GenerateTruss:
		return c.Name
	case command.GenerateBar:
		return c.Name
	case command.AddNode:
		return c.Model
	case command.AddBar:
		return c.Model
	case command.AddCST:
		return c.Model
	case command.FixNode:
		return c.Model
	case command.FixDOF:
		return c.Model
	case command.DefineLoadSet:
		return c.Model
	case command.AddLoad:
		return c.Model
	case command.EndLoad:
		return c.Model
	case command.Solve:
		return c.Model
	case command.Stresses:
		return c.Model
	case command.Display:
		return c.Model
	case command.Store:
		return c.Model
	case command.Retrieve:
		return c.Name
	case command.Delete:
		return c.Name
	default:
		return ""
	}
}

// Snapshot is an immutable view of one job, safe to hold after the job
// moves on.
type Snapshot struct {
	// ID identifies the job; Owner is the submitting user.
	ID    JobID
	Owner string
	// Cmd is the job's command.
	Cmd command.Command
	// Model is the serialization key, "" when the command touches no
	// model.
	Model string
	// State is the lifecycle state at snapshot time.
	State State
	// Result and Err are the stored outcome of a terminal job: the
	// command's typed result, and its error for failed or cancelled
	// jobs.
	Result command.Result
	Err    error
	// Ops, Flops, and Cycles attribute work to this job alone: AUVM
	// operations charged while it ran, solver floating point operations,
	// and simulated machine cycles (parallel solves only).
	Ops, Flops, Cycles int64
	// Attempt is the auto-resubmission generation: 0 for a job submitted
	// by a user, n for the n'th bounded resubmission of a job recovered
	// as lost to restart (see ResubmitLost).
	Attempt int
}

// Filter selects jobs for List.  Zero fields match everything.
type Filter struct {
	// Owner, when non-empty, matches jobs submitted by that user.
	Owner string
	// Model, when non-empty, matches jobs whose serialization key is
	// that model name.
	Model string
	// States, when non-empty, matches jobs in any of the given states.
	States []State
}

// match reports whether a snapshot passes the filter.
func (f Filter) match(s Snapshot) bool {
	if f.Owner != "" && s.Owner != f.Owner {
		return false
	}
	if f.Model != "" && s.Model != f.Model {
		return false
	}
	if len(f.States) > 0 {
		ok := false
		for _, st := range f.States {
			if s.State == st {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
