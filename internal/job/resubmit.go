package job

import (
	"context"
	"sort"
	"time"
)

// ResubmitPolicy bounds the automatic resubmission of jobs recovered as
// "lost to restart".  Opt-in: the zero value (MaxAttempts 0) resubmits
// nothing, which is the pre-policy behaviour.
type ResubmitPolicy struct {
	// MaxAttempts bounds a job lineage's auto-resubmissions: a lost job
	// whose record already carries attempt >= MaxAttempts stays failed.
	// With MaxAttempts 2, a job lost at one crash is requeued once
	// (attempt 1); if that run is lost at a second crash it is requeued
	// once more (attempt 2); a third loss is final.
	MaxAttempts int
	// Backoff spaces the resubmissions: attempt n waits Backoff·2ⁿ⁻¹
	// before requeueing, so a crash-looping daemon does not hammer the
	// same doomed work.  Zero resubmits immediately.
	Backoff time.Duration
}

// ResubmitLost requeues jobs that recovery marked "lost to restart",
// bounded by policy.  resolve maps a lost job's owner back onto an
// executor (core.System uses its session registry).  Each lost record
// is marked resubmitted in the journal before its replacement is
// submitted, so a crash-restart loop never requeues one record twice;
// the replacement runs as a fresh job at attempt n+1 with the same
// owner and command.
//
// The call blocks through the backoff sleeps — the daemon runs it on a
// goroutine — and stops early when ctx dies, returning the ids it
// managed to requeue.  A submission refusal (quota, closed) skips that
// job and carries on.
func (s *Scheduler) ResubmitLost(ctx context.Context, resolve func(owner string) Executor, p ResubmitPolicy) ([]JobID, error) {
	if p.MaxAttempts <= 0 || resolve == nil {
		return nil, nil
	}
	s.mu.Lock()
	var lost []*job
	for _, j := range s.jobs {
		if j.lost && !j.resubmitted && j.attempt < p.MaxAttempts {
			lost = append(lost, j)
		}
	}
	sort.Slice(lost, func(i, k int) bool { return lost[i].id < lost[k].id })
	// Mark before requeueing: if we crash mid-backoff the record stays
	// resubmitted and is simply not retried again — at-most-once
	// resubmission per record, never a duplicate.
	for _, j := range lost {
		j.resubmitted = true
		s.persistLocked(j)
	}
	s.mu.Unlock()

	var ids []JobID
	for _, j := range lost {
		delay := p.Backoff << j.attempt
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return ids, ctx.Err()
			case <-t.C:
			}
		}
		id, err := s.submit(ctx, j.owner, resolve(j.owner), j.cmd, j.attempt+1)
		if err != nil {
			s.mu.Lock()
			s.logfLocked("job: resubmit of lost %s refused: %v", j.id, err)
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.logfLocked("job: lost %s resubmitted as %s (attempt %d/%d)", j.id, id, j.attempt+1, p.MaxAttempts)
		s.mu.Unlock()
		ids = append(ids, id)
	}
	return ids, nil
}
