package job

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/command"
	"repro/internal/errs"
)

// execFunc adapts a function to Executor.
type execFunc func(ctx context.Context, cmd command.Command) (command.Result, error)

func (f execFunc) Do(ctx context.Context, cmd command.Command) (command.Result, error) {
	return f(ctx, cmd)
}

// solveOn is the canonical heavy command on a model.
func solveOn(model string) command.Command { return command.Solve{Model: model, Set: "l"} }

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Scheduler, id JobID, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := s.Status(id)
	t.Fatalf("job %s never reached %v (stuck at %v)", id, want, snap.State)
}

func TestSubmitWaitDone(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	want := &command.SolveResult{Model: "a", Set: "l", Backend: "cholesky"}
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return want, nil
	})
	id, err := s.Submit(context.Background(), "eng", ex, solveOn("a"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first id = %v, want job-1", id)
	}
	res, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res != command.Result(want) {
		t.Errorf("Wait result = %v, want the stored one", res)
	}
	snap, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Done || snap.Owner != "eng" || snap.Model != "a" {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestCheapCommandRunsInline(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	var gid int64
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		atomic.StoreInt64(&gid, 1)
		return &command.ListResult{What: command.ListDB}, nil
	})
	id, err := s.Submit(context.Background(), "eng", ex, command.List{What: command.ListDB})
	if err != nil {
		t.Fatal(err)
	}
	// Inline: terminal before Submit returns, no worker involved.
	if atomic.LoadInt64(&gid) != 1 {
		t.Error("cheap command did not run before Submit returned")
	}
	snap, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Done {
		t.Errorf("inline job state = %v, want done", snap.State)
	}
}

func TestFailureState(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	boom := errors.New("boom")
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return nil, boom
	})
	id, err := s.Submit(context.Background(), "eng", ex, solveOn("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), id); !errors.Is(err, boom) {
		t.Errorf("Wait error = %v, want boom", err)
	}
	snap, _ := s.Status(id)
	if snap.State != Failed {
		t.Errorf("state = %v, want failed", snap.State)
	}
}

func TestCancelRunning(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	started := make(chan struct{})
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, errs.Cancelled(ctx)
	})
	id, err := s.Submit(context.Background(), "eng", ex, solveOn("a"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if st, err := s.Cancel(id); err != nil || st != Running {
		t.Errorf("Cancel(running) = %v, %v", st, err)
	}
	if _, err := s.Wait(context.Background(), id); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("Wait after cancel = %v, want ErrCancelled", err)
	}
	snap, _ := s.Status(id)
	if snap.State != Cancelled {
		t.Errorf("state = %v, want cancelled", snap.State)
	}
}

func TestCancelQueued(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return &command.SolveResult{}, nil
	})
	// Fill the single worker, then queue a second job and cancel it.
	first, err := s.Submit(context.Background(), "eng", ex, solveOn("a"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	second, err := s.Submit(context.Background(), "eng", ex, solveOn("b"))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := s.Cancel(second); err != nil || st != Cancelled {
		t.Fatalf("Cancel(queued) = %v, %v", st, err)
	}
	if _, err := s.Wait(context.Background(), second); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("Wait(cancelled-queued) = %v, want ErrCancelled", err)
	}
	close(release)
	if _, err := s.Wait(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	// Cancel of a finished job reports its terminal state.
	if st, err := s.Cancel(first); err != nil || st != Done {
		t.Errorf("Cancel(done) = %v, %v", st, err)
	}
}

func TestSubmitCtxCancelsJob(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	started := make(chan struct{})
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, errs.Cancelled(ctx)
	})
	ctx, cancel := context.WithCancel(context.Background())
	id, err := s.Submit(ctx, "eng", ex, solveOn("a"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel() // cancellation rides the submit context
	if _, err := s.Wait(context.Background(), id); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("Wait = %v, want ErrCancelled", err)
	}
}

// TestPerModelSerialization proves the scheduler's locking story: jobs
// on one model never overlap, while jobs on different models do.
func TestPerModelSerialization(t *testing.T) {
	s := NewScheduler(4, nil)
	defer s.Close()

	var mu sync.Mutex
	cur := map[string]int{}
	overlapped := false
	aRunning := make(chan struct{}, 1)
	bRunning := make(chan struct{}, 1)

	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		model := ModelOf(cmd)
		mu.Lock()
		cur[model]++
		if cur[model] > 1 {
			overlapped = true
		}
		mu.Unlock()
		// Rendezvous across models: a and b must both be live at once.
		switch model {
		case "a":
			select {
			case aRunning <- struct{}{}:
			default:
			}
			<-bRunning
		case "b":
			select {
			case bRunning <- struct{}{}:
			default:
			}
			<-aRunning
		}
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		cur[model]--
		mu.Unlock()
		return &command.SolveResult{}, nil
	})

	var ids []JobID
	for _, m := range []string{"a", "b", "a", "b"} {
		id, err := s.Submit(context.Background(), "eng", ex, solveOn(m))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if overlapped {
		t.Error("two jobs on one model ran concurrently")
	}
}

func TestWorkerPoolBound(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	release := make(chan struct{})
	var running int32
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		atomic.AddInt32(&running, 1)
		<-release
		atomic.AddInt32(&running, -1)
		return &command.SolveResult{}, nil
	})
	var ids []JobID
	for i := 0; i < 4; i++ {
		id, err := s.Submit(context.Background(), "eng", ex, solveOn(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// With 4 runnable distinct-model jobs and 2 workers, exactly 2 run.
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt32(&running) != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // give a third job the chance to (wrongly) start
	if n := atomic.LoadInt32(&running); n != 2 {
		t.Errorf("running = %d, want exactly the 2-worker bound", n)
	}
	close(release)
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestListFilter(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	ok := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return &command.SolveResult{}, nil
	})
	bad := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return nil, errors.New("boom")
	})
	a, _ := s.Submit(context.Background(), "alice", ok, solveOn("a"))
	b, _ := s.Submit(context.Background(), "bob", bad, solveOn("b"))
	for _, id := range []JobID{a, b} {
		s.Wait(context.Background(), id)
	}
	if got := s.List(Filter{}); len(got) != 2 || got[0].ID != a || got[1].ID != b {
		t.Errorf("List(all) = %+v", got)
	}
	if got := s.List(Filter{Owner: "alice"}); len(got) != 1 || got[0].ID != a {
		t.Errorf("List(alice) = %+v", got)
	}
	if got := s.List(Filter{States: []State{Failed}}); len(got) != 1 || got[0].ID != b {
		t.Errorf("List(failed) = %+v", got)
	}
	if got := s.List(Filter{Model: "b"}); len(got) != 1 || got[0].ID != b {
		t.Errorf("List(model b) = %+v", got)
	}
}

func TestCancelOwner(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &command.SolveResult{}, nil
		case <-ctx.Done():
			return nil, errs.Cancelled(ctx)
		}
	})
	r, _ := s.Submit(context.Background(), "alice", ex, solveOn("a"))
	<-started
	q, _ := s.Submit(context.Background(), "alice", ex, solveOn("b"))
	other, _ := s.Submit(context.Background(), "bob", ex, solveOn("c"))
	if n := s.CancelOwner("alice"); n != 2 {
		t.Errorf("CancelOwner = %d, want 2", n)
	}
	for _, id := range []JobID{r, q} {
		if _, err := s.Wait(context.Background(), id); !errors.Is(err, errs.ErrCancelled) {
			t.Errorf("alice job %v after CancelOwner: %v", id, err)
		}
	}
	close(release)
	if _, err := s.Wait(context.Background(), other); err != nil {
		t.Errorf("bob's job was cancelled too: %v", err)
	}
}

func TestWaitHonoursContext(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	release := make(chan struct{})
	defer close(release)
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		<-release
		return &command.SolveResult{}, nil
	})
	id, _ := s.Submit(context.Background(), "eng", ex, solveOn("a"))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Wait(ctx, id); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("Wait under dead ctx = %v, want ErrCancelled", err)
	}
}

func TestJobControlVerbsRejected(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return nil, nil
	})
	for _, cmd := range []command.Command{
		command.Submit{Cmd: command.List{What: command.ListDB}},
		command.Status{ID: 1}, command.Wait{ID: 1},
		command.Cancel{ID: 1}, command.Jobs{}, command.Quit{},
	} {
		if _, err := s.Submit(context.Background(), "eng", ex, cmd); !errors.Is(err, errs.ErrUsage) {
			t.Errorf("Submit(%T) = %v, want ErrUsage", cmd, err)
		}
	}
}

func TestCloseCancelsAndRejects(t *testing.T) {
	s := NewScheduler(1, nil)
	release := make(chan struct{})
	started := make(chan struct{})
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		close(started)
		select {
		case <-release:
			return &command.SolveResult{}, nil
		case <-ctx.Done():
			return nil, errs.Cancelled(ctx)
		}
	})
	r, _ := s.Submit(context.Background(), "eng", ex, solveOn("a"))
	<-started
	q, _ := s.Submit(context.Background(), "eng", ex, solveOn("b"))
	s.Close()
	for _, id := range []JobID{r, q} {
		snap, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != Cancelled {
			t.Errorf("job %v after Close: %v", id, snap.State)
		}
	}
	if _, err := s.Submit(context.Background(), "eng", ex, solveOn("c")); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
	close(release)
}

func TestStatusUnknownJob(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	if _, err := s.Status(99); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("Status(99) = %v, want ErrNotFound", err)
	}
	if _, err := s.Wait(context.Background(), 99); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("Wait(99) = %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel(99); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("Cancel(99) = %v, want ErrNotFound", err)
	}
}

func TestStateRoundTrip(t *testing.T) {
	for _, st := range []State{Queued, Running, Done, Failed, Cancelled} {
		got, err := ParseState(st.String())
		if err != nil || got != st {
			t.Errorf("ParseState(%q) = %v, %v", st, got, err)
		}
	}
	if _, err := ParseState("limbo"); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("ParseState(limbo) = %v, want ErrUsage", err)
	}
	if !Done.Terminal() || Running.Terminal() || Queued.Terminal() {
		t.Error("Terminal misclassifies states")
	}
}

func TestModelOfAndHeavy(t *testing.T) {
	cases := []struct {
		cmd   command.Command
		model string
		heavy bool
	}{
		{command.Solve{Model: "m", Set: "l"}, "m", true},
		{&command.Solve{Model: "m", Set: "l"}, "m", true}, // pointer spelling
		{command.GenerateGrid{Name: "g"}, "g", false},
		{command.Store{Model: "s"}, "s", false},
		{command.Retrieve{Name: "r"}, "r", false},
		{command.Stresses{Model: "m"}, "m", false},
		{command.List{What: command.ListDB}, "", false},
		{command.Help{}, "", false},
	}
	for _, c := range cases {
		if got := ModelOf(c.cmd); got != c.model {
			t.Errorf("ModelOf(%T) = %q, want %q", c.cmd, got, c.model)
		}
		if got := Heavy(c.cmd); got != c.heavy {
			t.Errorf("Heavy(%T) = %v, want %v", c.cmd, got, c.heavy)
		}
	}
}

// TestInlineSubmitHonoursCtxBehindModelLock: a cheap inline submit
// queued behind a running solve on the same model gives up when its
// context dies instead of blocking the submitter for the solve's
// duration.
func TestInlineSubmitHonoursCtxBehindModelLock(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		close(started)
		<-release
		return &command.SolveResult{}, nil
	})
	if _, err := s.Submit(context.Background(), "eng", ex, solveOn("a")); err != nil {
		t.Fatal(err)
	}
	<-started // the solve holds model "a"

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	cheap := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		t.Error("inline command ran despite its dead context")
		return nil, nil
	})
	donec := make(chan JobID, 1)
	go func() {
		id, err := s.Submit(ctx, "eng", cheap, command.Store{Model: "a"})
		if err != nil {
			t.Error(err)
		}
		donec <- id
	}()
	select {
	case id := <-donec:
		snap, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != Cancelled {
			t.Errorf("inline job state = %v, want cancelled", snap.State)
		}
		if _, err := s.Wait(context.Background(), id); !errors.Is(err, errs.ErrCancelled) {
			t.Errorf("Wait = %v, want ErrCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inline Submit still blocked long after its ctx expired")
	}
}

// TestRetentionEvictsOldTerminalJobs: the scheduler's job history is
// bounded; the oldest finished jobs fall off while live jobs survive.
func TestRetentionEvictsOldTerminalJobs(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	s.SetRetention(2)
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return &command.ListResult{}, nil
	})
	var last JobID
	for i := 0; i < 6; i++ {
		id, err := s.Submit(context.Background(), "eng", ex, command.List{What: command.ListDB})
		if err != nil {
			t.Fatal(err)
		}
		last = id
	}
	if got := s.List(Filter{}); len(got) > 3 {
		t.Errorf("retained %d job records, want <= retention bound (+ in-flight)", len(got))
	}
	// The newest job survives; the oldest was evicted to NotFound.
	if _, err := s.Status(last); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	if _, err := s.Status(1); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("oldest job retained: %v", err)
	}
}

// TestCacheableSolve pins which commands get a per-model factor cache
// attached: only sequential direct-backend solves without a
// preconditioner — everything else would just crowd the bounded cache
// map with entries it never reads.
func TestCacheableSolve(t *testing.T) {
	for _, tc := range []struct {
		cmd  command.Command
		want bool
	}{
		{command.Solve{Model: "m", Set: "s"}, true},
		{command.Solve{Model: "m", Set: "s", Method: command.MethodCholeskyRCM}, true},
		{command.Solve{Model: "m", Set: "s", Method: command.MethodCholeskyEnv}, true},
		{command.Solve{Model: "m", Set: "s", Method: command.MethodCG}, false},
		{command.Solve{Model: "m", Set: "s", Parallel: 4}, false},
		{command.Solve{Model: "m", Set: "s", Substructures: 4}, false},
		{command.Solve{Model: "m", Set: "s", Precond: command.PrecondJacobi}, false},
		{command.Display{What: command.DisplayModel, Model: "m"}, false},
	} {
		if got := CacheableSolve(tc.cmd); got != tc.want {
			t.Errorf("CacheableSolve(%v) = %v, want %v", tc.cmd, got, tc.want)
		}
	}
}
