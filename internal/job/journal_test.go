package job

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/command"
	"repro/internal/store"
)

// attachMem wires a fresh in-memory journal into a new scheduler.
func attachMem(t *testing.T, workers int) (*Scheduler, store.Store) {
	t.Helper()
	s := NewScheduler(workers, nil)
	st := store.NewMemStore()
	if _, err := s.AttachJournal(st); err != nil {
		t.Fatal(err)
	}
	return s, st
}

// runN runs n successful solve jobs on distinct models and waits for
// each, so the scheduler holds n terminal records.
func runN(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return &command.SolveResult{Model: cmd.(command.Solve).Model, Set: "l"}, nil
	})
	for i := 0; i < n; i++ {
		id, err := s.Submit(context.Background(), "eng", ex, solveOn(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalRecoversHistory pins the restart story: a new scheduler
// attached to the old scheduler's store serves the full terminal
// history — states, results, and the resumed id counter.
func TestJournalRecoversHistory(t *testing.T) {
	s, st := attachMem(t, 2)
	runN(t, s, 3)
	failing := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return nil, errors.New("boom")
	})
	fid, err := s.Submit(context.Background(), "eng", failing, solveOn("bad"))
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(context.Background(), fid)
	s.Close()

	s2 := NewScheduler(2, nil)
	defer s2.Close()
	n, err := s2.AttachJournal(st)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("recovered %d records, want 4", n)
	}
	snap, err := s2.Status(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Done || snap.Owner != "eng" || snap.Model != "m0" {
		t.Errorf("recovered job-1 = %+v", snap)
	}
	res, err := s2.Wait(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sr, ok := res.(*command.SolveResult); !ok || sr.Model != "m0" {
		t.Errorf("recovered result = %#v", res)
	}
	if snap, _ := s2.Status(fid); snap.State != Failed {
		t.Errorf("recovered failed job state = %v", snap.State)
	}
	if _, err := s2.Wait(context.Background(), fid); err == nil || err.Error() != "boom" {
		t.Errorf("recovered failure = %v, want boom", err)
	}
	// The id counter resumes past the recovered history.
	id, err := s2.Submit(context.Background(), "eng",
		execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
			return &command.SolveResult{}, nil
		}), solveOn("next"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Errorf("post-recovery id = %v, want job-5", id)
	}
}

// TestJournalLostToRestart pins crash recovery: records still queued or
// running in the store (the previous process died mid-job) come back
// Failed with the deterministic lost-to-restart cause — rewritten in
// the store itself, not just in memory.
func TestJournalLostToRestart(t *testing.T) {
	st := store.NewMemStore()
	cmdRaw, err := command.MarshalCommand(command.Solve{Model: "wing", Set: "tip"})
	if err != nil {
		t.Fatal(err)
	}
	for id, state := range map[int64]string{7: "queued", 9: "running"} {
		raw, err := json.Marshal(journalRecord{
			ID: id, Owner: "eng", Model: "wing", Cmd: cmdRaw, State: state})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(store.JobKey(id), raw); err != nil {
			t.Fatal(err)
		}
	}

	s := NewScheduler(1, nil)
	defer s.Close()
	if _, err := s.AttachJournal(st); err != nil {
		t.Fatal(err)
	}
	for _, id := range []JobID{7, 9} {
		snap, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != Failed {
			t.Errorf("job-%d state = %v, want failed", id, snap.State)
		}
		want := fmt.Sprintf("job-%d lost to restart", id)
		if snap.Err == nil || snap.Err.Error() != want {
			t.Errorf("job-%d err = %v, want %q", id, snap.Err, want)
		}
	}
	// The rewrite is durable: the store's own record is terminal now.
	raw, err := st.Get(store.JobKey(7))
	if err != nil {
		t.Fatal(err)
	}
	var rec journalRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != "failed" || !strings.Contains(rec.Err, "lost to restart") {
		t.Errorf("stored record after recovery = %+v", rec)
	}
}

// TestJournalOutlivesEviction pins the retention fix: a terminal record
// evicted from memory is flushed to the journal first, and Status /
// Wait / Cancel keep answering for it through the journal fallback.
func TestJournalOutlivesEviction(t *testing.T) {
	s, st := attachMem(t, 1)
	defer s.Close()
	s.SetRetention(2)
	runN(t, s, 5)

	// Only the newest two survive in memory...
	if got := len(s.List(Filter{})); got != 2 {
		t.Fatalf("in-memory records = %d, want 2", got)
	}
	// ...but every id still answers.
	for id := JobID(1); id <= 5; id++ {
		snap, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(job-%d) after eviction: %v", id, err)
		}
		if snap.State != Done {
			t.Errorf("job-%d state = %v, want done", id, snap.State)
		}
		if res, err := s.Wait(context.Background(), id); err != nil || res == nil {
			t.Errorf("Wait(job-%d) after eviction = %v, %v", id, res, err)
		}
		if state, err := s.Cancel(id); err != nil || state != Done {
			t.Errorf("Cancel(job-%d) after eviction = %v, %v", id, state, err)
		}
	}
	// And the store holds all five records.
	n := 0
	st.Seek(store.PrefixJob, func(k string, v []byte) bool { n++; return true })
	if n != 5 {
		t.Errorf("journal records = %d, want 5", n)
	}
}

// TestJournalRetentionLoad pins recovery under retention: only the
// newest records load into memory, older ids answer via the fallback.
func TestJournalRetentionLoad(t *testing.T) {
	s, st := attachMem(t, 1)
	runN(t, s, 5)
	s.Close()

	s2 := NewScheduler(1, nil)
	defer s2.Close()
	s2.SetRetention(2)
	if _, err := s2.AttachJournal(st); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.List(Filter{})); got != 2 {
		t.Errorf("in-memory records after recovery = %d, want 2", got)
	}
	if snap, err := s2.Status(1); err != nil || snap.State != Done {
		t.Errorf("evicted-at-recovery job-1 = %+v, %v", snap, err)
	}
}

// TestJournalCorruptRecordFails pins the failure mode: a journal record
// that does not decode fails AttachJournal loudly instead of silently
// dropping history.
func TestJournalCorruptRecordFails(t *testing.T) {
	st := store.NewMemStore()
	if err := st.Put(store.JobKey(1), []byte("not json")); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(1, nil)
	defer s.Close()
	if _, err := s.AttachJournal(st); err == nil {
		t.Fatal("AttachJournal accepted a corrupt record")
	}
}
