package job

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/command"
	"repro/internal/store"
)

// The job journal persists job records through the system's store under
// "j:<id>" keys (see docs/storage.md), so a daemon restart recovers the
// complete terminal job history.  Records are written at submit
// (queued) and overwritten at the terminal transition with the result;
// a record still non-terminal when a process is killed is, by
// definition, a job the crash destroyed — recovery rewrites it as
// Failed with a deterministic "lost to restart" cause.
//
// The journal also outlives retention eviction: evictLocked re-persists
// a record before dropping it from memory, and Status/Wait/Cancel fall
// back to the journal for ids the in-memory map no longer holds.

// journalRecord is the JSON encoding of one job record.  Cmd and Result
// reuse the wire envelopes (command.MarshalCommand/MarshalResult), so
// the journal schema evolves with the protocol instead of forking it.
type journalRecord struct {
	ID     int64           `json:"id"`
	Owner  string          `json:"owner"`
	Model  string          `json:"model,omitempty"`
	Cmd    json.RawMessage `json:"cmd"`
	State  string          `json:"state"`
	Err    string          `json:"err,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Ops    int64           `json:"ops,omitempty"`
	Flops  int64           `json:"flops,omitempty"`
	Cycles int64           `json:"cycles,omitempty"`
	// Attempt is the auto-resubmission generation (see ResubmitLost);
	// Resubmitted marks a lost record whose work has already been
	// requeued as a fresh job, so recovery never requeues it again.
	Attempt     int  `json:"attempt,omitempty"`
	Resubmitted bool `json:"resubmitted,omitempty"`
	// Epoch is the cluster lease epoch the writing daemon held (see
	// internal/cluster); 0 outside a cluster.  A takeover's journal
	// replay can tell which leadership stint wrote each record.
	Epoch int64 `json:"epoch,omitempty"`
}

// lostErr is the deterministic failure text recovery writes on a job
// the crash destroyed; ResubmitLost recognizes candidates by it.
func lostErr(id int64) string { return fmt.Sprintf("job-%d lost to restart", id) }

// AttachJournal connects the scheduler to a store and recovers the job
// history it holds: terminal records come back verbatim, jobs that were
// queued or running when the previous process died are rewritten as
// Failed with a "lost to restart" cause, and the id counter resumes
// past the highest recovered id.  The most recent records (up to the
// retention bound) are loaded into memory so the jobs verb lists them;
// everything stays readable through the journal fallback regardless.
// It returns the number of records recovered.  Call it once, before
// the scheduler sees traffic.
func (s *Scheduler) AttachJournal(st store.Store) (int, error) {
	s.SetJournal(st)
	return s.loadJournal(st)
}

// SetJournal attaches the store handle without the recovery scan.  The
// clustered constructor uses it: a follower answers job lookups from
// the journal read-only (journalLookup), while recovery — which
// rewrites records — waits for promotion (RecoverJournal).
func (s *Scheduler) SetJournal(st store.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = st
}

// RecoverJournal is the cluster-takeover replay: a freshly promoted
// leader re-reads the journal its dead predecessor wrote (the store
// was sealed and refreshed first) and rebuilds the in-memory job map
// from it — non-terminal records become deterministic "lost to
// restart" failures, the id counter resumes past the highest id, and
// the jobs verb lists the same history the old leader would have.
// Terminal in-memory records from an earlier stint are dropped in
// favour of the journal's view; jobs still executing locally (a
// demoted-then-repromoted leader) are kept and shielded from the
// replay.
func (s *Scheduler) RecoverJournal() (int, error) {
	s.mu.Lock()
	st := s.journal
	kept := map[JobID]*job{}
	var order []JobID
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok && !j.state.Terminal() {
			kept[id] = j
			order = append(order, id)
		}
	}
	s.jobs, s.order = kept, order
	s.mu.Unlock()
	if st == nil {
		return 0, nil
	}
	return s.loadJournal(st)
}

// loadJournal is the shared recovery scan behind AttachJournal and
// RecoverJournal.  Records whose id is currently live in memory are
// skipped entirely — they are this process's own running jobs, not the
// dead writer's leftovers.
func (s *Scheduler) loadJournal(st store.Store) (int, error) {
	s.mu.Lock()
	liveIDs := map[int64]bool{}
	for id, j := range s.jobs {
		if !j.state.Terminal() {
			liveIDs[int64(id)] = true
		}
	}
	s.mu.Unlock()

	var recs []journalRecord
	var decodeErr error
	st.Seek(store.PrefixJob, func(k string, v []byte) bool {
		var rec journalRecord
		if err := json.Unmarshal(v, &rec); err != nil {
			decodeErr = fmt.Errorf("job: corrupt journal record %q: %w", k, err)
			return false
		}
		if !liveIDs[rec.ID] {
			recs = append(recs, rec)
		}
		return true
	})
	if decodeErr != nil {
		return 0, decodeErr
	}

	// Rewrite crash-interrupted records first, so the store and the
	// in-memory view agree even if we crash again mid-recovery.
	var fixups []store.Op
	for i := range recs {
		st, err := ParseState(recs[i].State)
		if err != nil || !st.Terminal() {
			recs[i].State = Failed.String()
			recs[i].Err = lostErr(recs[i].ID)
			recs[i].Result = nil
			raw, err := json.Marshal(recs[i])
			if err != nil {
				return 0, fmt.Errorf("job: re-encode journal record: %w", err)
			}
			fixups = append(fixups, store.Put(store.JobKey(recs[i].ID), raw))
		}
	}
	if len(fixups) > 0 {
		if err := st.Batch(fixups); err != nil {
			return 0, fmt.Errorf("job: rewriting crashed jobs: %w", err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Load the most recent records into memory, oldest first so order
	// and eviction behave exactly as if the jobs had run here.
	sort.Slice(recs, func(i, k int) bool { return recs[i].ID < recs[k].ID })
	first := 0
	if s.retain > 0 && len(recs) > s.retain {
		first = len(recs) - s.retain
	}
	for _, rec := range recs[first:] {
		j, err := jobFromRecord(rec)
		if err != nil {
			return 0, err
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	if len(recs) > 0 {
		if max := recs[len(recs)-1].ID; max > s.next {
			s.next = max
		}
	}
	return len(recs), nil
}

// recordLocked builds the journal encoding of a job's current state,
// stamped with the cluster epoch when an epoch source is wired.
func (s *Scheduler) recordLocked(j *job) ([]byte, error) {
	cmdRaw, err := command.MarshalCommand(j.cmd)
	if err != nil {
		return nil, err
	}
	rec := journalRecord{
		ID: int64(j.id), Owner: j.owner, Model: j.model, Cmd: cmdRaw,
		State: j.state.String(),
		Ops:   j.ops, Flops: j.flops, Cycles: j.cycles,
		Attempt: j.attempt, Resubmitted: j.resubmitted,
	}
	if s.epoch != nil {
		rec.Epoch = s.epoch()
	}
	if j.err != nil {
		rec.Err = j.err.Error()
	}
	if j.res != nil {
		if raw, err := command.MarshalResult(j.res); err == nil {
			rec.Result = raw
		}
	}
	return json.Marshal(rec)
}

// persistLocked writes a job's current record through the journal.
// Best effort by design: a journal write failure must not fail the job
// it records (the job itself already ran) and must never take down the
// scheduler — the failure is counted, logged, and the job carries on;
// the record simply stays at its previous state and recovery treats it
// accordingly.  No-op when no journal is attached.
func (s *Scheduler) persistLocked(j *job) {
	if s.journal == nil {
		return
	}
	raw, err := s.recordLocked(j)
	if err != nil {
		s.journalWriteFailedLocked(j, err)
		return
	}
	if err := s.journal.Put(store.JobKey(int64(j.id)), raw); err != nil {
		s.journalWriteFailedLocked(j, err)
	}
}

// journalWriteFailedLocked is the log-mark-continue half of the journal
// contract.  The log rate-limits itself: a degraded store fails every
// write, and one line per job beats one line per write.
func (s *Scheduler) journalWriteFailedLocked(j *job, err error) {
	s.journalErrs++
	s.mJournalErrs.Inc()
	if s.journalErrs <= 3 || s.journalErrs%100 == 0 {
		s.logfLocked("job: journal write for %s failed (%d so far, continuing): %v", j.id, s.journalErrs, err)
	}
}

// jobFromRecord rebuilds an in-memory terminal job from its journal
// record.
func jobFromRecord(rec journalRecord) (*job, error) {
	st, err := ParseState(rec.State)
	if err != nil {
		return nil, fmt.Errorf("job: journal record %d: %w", rec.ID, err)
	}
	cmd, err := command.UnmarshalCommand(rec.Cmd)
	if err != nil {
		return nil, fmt.Errorf("job: journal record %d: %w", rec.ID, err)
	}
	j := &job{
		id: JobID(rec.ID), owner: rec.Owner, model: rec.Model, cmd: cmd,
		cancel: func() {}, state: st,
		ops: rec.Ops, flops: rec.Flops, cycles: rec.Cycles,
		attempt: rec.Attempt, resubmitted: rec.Resubmitted,
		lost: st == Failed && rec.Err == lostErr(rec.ID),
		done: make(chan struct{}),
	}
	close(j.done) // recovered records are terminal by construction
	if rec.Err != "" {
		j.err = errors.New(rec.Err)
	}
	if len(rec.Result) > 0 {
		if res, err := command.UnmarshalResult(rec.Result); err == nil {
			j.res = res
		}
	}
	return j, nil
}

// journalLookup reads one job straight from the journal — the fallback
// for ids retention has evicted from memory.  Callers must not hold
// s.mu (the store read can hit disk).
func (s *Scheduler) journalLookup(id JobID) (*job, bool) {
	s.mu.Lock()
	st := s.journal
	s.mu.Unlock()
	if st == nil {
		return nil, false
	}
	raw, err := st.Get(store.JobKey(int64(id)))
	if err != nil {
		return nil, false
	}
	var rec journalRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, false
	}
	j, err := jobFromRecord(rec)
	if err != nil {
		return nil, false
	}
	return j, true
}
