package job

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/errs"
)

// This file is the multi-tenant service surface of the scheduler: the
// per-owner admission control a network front end points at sessions,
// the job-event subscription it turns into server-pushed
// notifications, and the drain primitive its graceful shutdown waits
// on.  All of it is owner-keyed bookkeeping over the same mutex the
// scheduler already holds at every lifecycle transition, so the hooks
// cost nothing when unused.

// ErrQuota is returned by Submit when the per-owner admission control
// rejects a submission (QuotaReject policy, owner at the in-flight
// bound).
var ErrQuota = errors.New("job: quota exceeded")

// QuotaPolicy selects what Submit does when an owner is at the
// in-flight bound.
type QuotaPolicy int

const (
	// QuotaReject fails the submission immediately with ErrQuota — the
	// saturated tenant is told to back off.
	QuotaReject QuotaPolicy = iota
	// QuotaQueue blocks the submitting goroutine until one of the
	// owner's live jobs finishes (or the submit context dies) — the
	// saturated tenant is slowed down instead of refused.
	QuotaQueue
)

// String renders the canonical policy name.
func (p QuotaPolicy) String() string {
	switch p {
	case QuotaReject:
		return "reject"
	case QuotaQueue:
		return "queue"
	default:
		return fmt.Sprintf("QuotaPolicy(%d)", int(p))
	}
}

// ParseQuotaPolicy maps a canonical policy name back to its
// QuotaPolicy.
func ParseQuotaPolicy(name string) (QuotaPolicy, error) {
	switch name {
	case "reject":
		return QuotaReject, nil
	case "queue":
		return QuotaQueue, nil
	default:
		return 0, errs.Usage("unknown quota policy %q (want reject or queue)", name)
	}
}

// SetQuota bounds each owner's live (queued or running) jobs at max,
// with policy deciding between rejecting and blocking at the bound.
// max <= 0 disables admission control (the default).  Raising or
// disabling the quota releases submitters blocked under QuotaQueue.
func (s *Scheduler) SetQuota(max int, policy QuotaPolicy) {
	s.mu.Lock()
	s.quota, s.policy = max, policy
	s.cond.Broadcast()
	s.mu.Unlock()
}

// admitLocked gates one submission by owner: closed scheduler, then the
// per-owner quota.  Under QuotaQueue it waits on the scheduler's cond —
// releasing the mutex — until a slot frees, the quota changes, the
// scheduler closes, or ctx dies, and re-checks from the top.
func (s *Scheduler) admitLocked(ctx context.Context, owner string) error {
	if s.closed {
		return ErrClosed
	}
	if s.quota <= 0 || s.live[owner] < s.quota {
		return nil
	}
	if s.policy == QuotaReject {
		return fmt.Errorf("%w: %s has %d jobs in flight (max %d)",
			ErrQuota, owner, s.live[owner], s.quota)
	}
	// The cond has no ctx case of its own; wake the wait loop when the
	// submit context dies so a blocked tenant is never stuck behind work
	// it no longer wants to wait for.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	for !s.closed && s.quota > 0 && s.live[owner] >= s.quota {
		if err := errs.Cancelled(ctx); err != nil {
			return err
		}
		s.cond.Wait()
	}
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Subscribe registers fn to receive a Snapshot at every job lifecycle
// transition — queued, running, and the terminal states — across all
// owners; the caller filters.  It returns the unsubscribe function.
// fn is invoked with the scheduler's mutex held, so it must be fast
// and must not call back into the scheduler: hand the snapshot to a
// channel or queue and return.
func (s *Scheduler) Subscribe(fn func(Snapshot)) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs == nil {
		s.subs = map[int]func(Snapshot){}
	}
	s.subNext++
	id := s.subNext
	s.subs[id] = fn
	return func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

// publishLocked fans the job's current snapshot out to every
// subscriber.  Called under the mutex at each state transition, so
// subscribers observe transitions in true order.
func (s *Scheduler) publishLocked(j *job) {
	if len(s.subs) == 0 {
		return
	}
	snap := s.snapshotLocked(j)
	for _, fn := range s.subs {
		fn(snap)
	}
}

// finishLocked settles the owner-keyed bookkeeping of a job that just
// reached a terminal state: release the owner's quota slot, wake
// quota-blocked submitters and Drain, and publish the transition.
// Called exactly once per job, from execute or cancelQueuedLocked.
func (s *Scheduler) finishLocked(j *job) {
	if n := s.live[j.owner]; n > 1 {
		s.live[j.owner] = n - 1
	} else {
		delete(s.live, j.owner)
	}
	s.liveTotal--
	s.cond.Broadcast()
	s.persistLocked(j) // overwrite the queued record with the outcome
	s.publishLocked(j)
}

// Live returns the number of live (queued or running) jobs across all
// owners.
func (s *Scheduler) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveTotal
}

// Drain blocks until every live job reaches a terminal state or ctx
// dies, whichever is first — the graceful-shutdown wait.  Drain does
// not stop new submissions; the caller decides what "no new work"
// means (a server stops accepting, then drains, then Closes).
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.liveTotal == 0 {
		return nil
	}
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	for s.liveTotal > 0 {
		if err := errs.Cancelled(ctx); err != nil {
			return err
		}
		s.cond.Wait()
	}
	return nil
}
