package job

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/command"
	"repro/internal/errs"
)

// blockingExec returns an executor that parks every job until release
// closes, signalling each start on started.
func blockingExec(started chan struct{}, release chan struct{}) execFunc {
	return func(ctx context.Context, cmd command.Command) (command.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return &command.SolveResult{}, nil
		case <-ctx.Done():
			return nil, errs.Cancelled(ctx)
		}
	}
}

func TestQuotaRejectPolicy(t *testing.T) {
	s := NewScheduler(4, nil)
	defer s.Close()
	s.SetQuota(2, QuotaReject)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	defer close(release)
	ex := blockingExec(started, release)

	var ids []JobID
	for i := 0; i < 2; i++ {
		id, err := s.Submit(context.Background(), "alice", ex, solveOn(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Third submission by the saturated owner is rejected outright...
	if _, err := s.Submit(context.Background(), "alice", ex, solveOn("m2")); !errors.Is(err, ErrQuota) {
		t.Errorf("Submit over quota = %v, want ErrQuota", err)
	}
	// ...while another tenant is unaffected.
	if _, err := s.Submit(context.Background(), "bob", ex, solveOn("m3")); err != nil {
		t.Errorf("other tenant hit alice's quota: %v", err)
	}
	// A freed slot readmits the owner.
	if st, err := s.Cancel(ids[0]); err != nil || st.Terminal() && st != Cancelled {
		t.Fatalf("Cancel = %v, %v", st, err)
	}
	waitState(t, s, ids[0], Cancelled)
	if _, err := s.Submit(context.Background(), "alice", ex, solveOn("m4")); err != nil {
		t.Errorf("Submit after slot freed = %v", err)
	}
}

func TestQuotaQueuePolicyBlocks(t *testing.T) {
	s := NewScheduler(4, nil)
	defer s.Close()
	s.SetQuota(1, QuotaQueue)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	ex := blockingExec(started, release)

	first, err := s.Submit(context.Background(), "alice", ex, solveOn("a"))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// The second submission blocks at the bound rather than failing.
	submitted := make(chan JobID, 1)
	go func() {
		id, err := s.Submit(context.Background(), "alice", ex, solveOn("b"))
		if err != nil {
			t.Error(err)
		}
		submitted <- id
	}()
	select {
	case <-submitted:
		t.Fatal("quota-queued Submit returned while the owner was saturated")
	case <-time.After(20 * time.Millisecond):
	}

	close(release) // first job finishes, slot frees, blocked submit admits
	select {
	case id := <-submitted:
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Errorf("queued-then-admitted job: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit never unblocked after a slot freed")
	}
	if _, err := s.Wait(context.Background(), first); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaQueueHonoursContext(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	s.SetQuota(1, QuotaQueue)
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	defer close(release)
	ex := blockingExec(started, release)

	if _, err := s.Submit(context.Background(), "alice", ex, solveOn("a")); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, "alice", ex, solveOn("b"))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errs.ErrCancelled) {
			t.Errorf("Submit under dead ctx = %v, want ErrCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("quota-blocked Submit ignored its dying context")
	}
}

// TestSubscribeEventOrder proves the notification stream delivers the
// queued → running → done trail, in order, and that unsubscribing
// stops it.
func TestSubscribeEventOrder(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()

	var mu sync.Mutex
	events := map[JobID][]State{}
	unsub := s.Subscribe(func(snap Snapshot) {
		mu.Lock()
		events[snap.ID] = append(events[snap.ID], snap.State)
		mu.Unlock()
	})

	ex := execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
		return &command.SolveResult{}, nil
	})
	id, err := s.Submit(context.Background(), "alice", ex, solveOn("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, Done)

	mu.Lock()
	got := append([]State(nil), events[id]...)
	mu.Unlock()
	want := []State{Queued, Running, Done}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}

	unsub()
	id2, _ := s.Submit(context.Background(), "alice", ex, solveOn("b"))
	s.Wait(context.Background(), id2)
	mu.Lock()
	defer mu.Unlock()
	if len(events[id2]) != 0 {
		t.Errorf("received %v after unsubscribe", events[id2])
	}
}

// TestSubscribeSeesCancelledQueuedJob: a job cancelled before it runs
// still produces a terminal notification.
func TestSubscribeSeesCancelledQueuedJob(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	var mu sync.Mutex
	var states []State
	s.Subscribe(func(snap Snapshot) {
		mu.Lock()
		states = append(states, snap.State)
		mu.Unlock()
	})

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	ex := blockingExec(started, release)
	if _, err := s.Submit(context.Background(), "alice", ex, solveOn("a")); err != nil {
		t.Fatal(err)
	}
	<-started
	q, err := s.Submit(context.Background(), "alice", ex, solveOn("a")) // same model: must queue
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	states = nil // keep only the cancelled job's trail from here
	mu.Unlock()
	if _, err := s.Cancel(q); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) != 1 || states[0] != Cancelled {
		t.Errorf("cancelled-queued trail = %v, want [cancelled]", states)
	}
}

func TestDrainWaitsForLiveJobs(t *testing.T) {
	s := NewScheduler(2, nil)
	defer s.Close()
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	ex := blockingExec(started, release)

	if _, err := s.Submit(context.Background(), "alice", ex, solveOn("a")); err != nil {
		t.Fatal(err)
	}
	<-started
	if n := s.Live(); n != 1 {
		t.Errorf("Live = %d, want 1", n)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	select {
	case <-drained:
		t.Fatal("Drain returned while a job was live")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Errorf("Drain = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned after the last job finished")
	}
	if n := s.Live(); n != 0 {
		t.Errorf("Live after drain = %d, want 0", n)
	}
	// Empty scheduler drains immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("Drain(empty) = %v", err)
	}
}

func TestDrainHonoursContext(t *testing.T) {
	s := NewScheduler(1, nil)
	defer s.Close()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	ex := blockingExec(started, release)
	if _, err := s.Submit(context.Background(), "alice", ex, solveOn("a")); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("Drain under dead ctx = %v, want ErrCancelled", err)
	}
}

func TestQuotaPolicyRoundTrip(t *testing.T) {
	for _, p := range []QuotaPolicy{QuotaReject, QuotaQueue} {
		got, err := ParseQuotaPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseQuotaPolicy(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := ParseQuotaPolicy("maybe"); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("ParseQuotaPolicy(maybe) = %v, want ErrUsage", err)
	}
}
