package job

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/command"
	"repro/internal/fault"
	"repro/internal/store"
)

// lostRecord writes a crash-shaped (non-terminal) journal record, as a
// process killed mid-job leaves behind.
func lostRecord(t *testing.T, st store.Store, id int64, state string, attempt int) {
	t.Helper()
	cmdRaw, err := command.MarshalCommand(command.Solve{Model: "wing", Set: "tip"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(journalRecord{
		ID: id, Owner: "eng", Model: "wing", Cmd: cmdRaw,
		State: state, Attempt: attempt})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(store.JobKey(id), raw); err != nil {
		t.Fatal(err)
	}
}

// TestJournalWriteFailureDoesNotStopScheduler pins the tentpole's jobs
// contract: a store that fails every write must not fail the jobs it
// records — the scheduler counts and logs the misses and the jobs
// themselves still run to Done.
func TestJournalWriteFailureDoesNotStopScheduler(t *testing.T) {
	in := fault.NewInjector(1, fault.Rule{Op: fault.OpPut, Fault: fault.Fault{Err: fault.ErrIO}})
	st := fault.NewStore(store.NewMemStore(), in)
	s := NewScheduler(2, nil)
	defer s.Close()
	if _, err := s.AttachJournal(st); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	s.SetLogf(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	in.Arm()

	runN(t, s, 3)
	for id := JobID(1); id <= 3; id++ {
		snap, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != Done {
			t.Errorf("job-%d under journal faults = %v, want done", id, snap.State)
		}
	}
	if got := s.JournalErrors(); got < 6 { // submit + terminal write per job
		t.Errorf("JournalErrors() = %d, want >= 6", got)
	}
	mu.Lock()
	defer mu.Unlock()
	// Rate-limited: first three misses log, the fourth through 99th are
	// silent.
	if len(lines) != 3 {
		t.Errorf("logged %d lines, want 3 (rate-limited): %q", len(lines), lines)
	}
	for _, l := range lines {
		if !strings.Contains(l, "journal write") || !strings.Contains(l, "continuing") {
			t.Errorf("log line %q does not describe a tolerated journal miss", l)
		}
	}
}

// TestResubmitLost pins the opt-in recovery loop: lost records under the
// attempt bound are requeued exactly once each (marked in the journal
// before the requeue), run as fresh jobs at attempt n+1, and records at
// the bound stay failed.
func TestResubmitLost(t *testing.T) {
	st := store.NewMemStore()
	lostRecord(t, st, 3, "running", 0)
	lostRecord(t, st, 5, "queued", 0)
	lostRecord(t, st, 8, "running", 2) // already at the bound

	s := NewScheduler(2, nil)
	defer s.Close()
	if _, err := s.AttachJournal(st); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	owners := make(map[string]int)
	resolve := func(owner string) Executor {
		return execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
			mu.Lock()
			owners[owner]++
			mu.Unlock()
			return &command.SolveResult{Model: cmd.(command.Solve).Model, Set: "l"}, nil
		})
	}

	ids, err := s.ResubmitLost(context.Background(), resolve, ResubmitPolicy{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("resubmitted %v, want two jobs (3 and 5; 8 is at the bound)", ids)
	}
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Errorf("resubmitted %s failed: %v", id, err)
		}
		snap, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != Done || snap.Attempt != 1 || snap.Owner != "eng" {
			t.Errorf("resubmitted %s = %+v, want done at attempt 1 for eng", id, snap)
		}
	}
	mu.Lock()
	if owners["eng"] != 2 {
		t.Errorf("executor ran %d times for eng, want 2", owners["eng"])
	}
	mu.Unlock()
	// The originals stay failed and are durably marked resubmitted.
	for _, id := range []int64{3, 5} {
		raw, err := st.Get(store.JobKey(id))
		if err != nil {
			t.Fatal(err)
		}
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.State != "failed" || !rec.Resubmitted {
			t.Errorf("original record %d = %+v, want failed+resubmitted", id, rec)
		}
	}
	if snap, _ := s.Status(8); snap.State != Failed {
		t.Errorf("at-bound job-8 = %v, want left failed", snap.State)
	}
	// At-most-once: a second pass finds nothing to requeue.
	again, err := s.ResubmitLost(context.Background(), resolve, ResubmitPolicy{MaxAttempts: 2})
	if err != nil || len(again) != 0 {
		t.Errorf("second ResubmitLost = %v, %v, want none", again, err)
	}
}

// TestResubmitLostSurvivesRestart pins the crash-loop story: after the
// resubmitted-mark is persisted, a fresh scheduler recovering the same
// store does not requeue the record again.
func TestResubmitLostSurvivesRestart(t *testing.T) {
	st := store.NewMemStore()
	lostRecord(t, st, 2, "running", 0)

	resolve := func(owner string) Executor {
		return execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
			return &command.SolveResult{}, nil
		})
	}
	s := NewScheduler(1, nil)
	if _, err := s.AttachJournal(st); err != nil {
		t.Fatal(err)
	}
	ids, err := s.ResubmitLost(context.Background(), resolve, ResubmitPolicy{MaxAttempts: 3})
	if err != nil || len(ids) != 1 {
		t.Fatalf("ResubmitLost = %v, %v, want one id", ids, err)
	}
	if _, err := s.Wait(context.Background(), ids[0]); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := NewScheduler(1, nil)
	defer s2.Close()
	if _, err := s2.AttachJournal(st); err != nil {
		t.Fatal(err)
	}
	again, err := s2.ResubmitLost(context.Background(), resolve, ResubmitPolicy{MaxAttempts: 3})
	if err != nil || len(again) != 0 {
		t.Errorf("post-restart ResubmitLost = %v, %v, want none (already resubmitted)", again, err)
	}
}

// TestResubmitLostBackoffHonoursContext pins that the backoff sleeps
// abort with the context instead of blocking shutdown.
func TestResubmitLostBackoffHonoursContext(t *testing.T) {
	st := store.NewMemStore()
	lostRecord(t, st, 1, "running", 0)
	s := NewScheduler(1, nil)
	defer s.Close()
	if _, err := s.AttachJournal(st); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resolve := func(owner string) Executor {
		return execFunc(func(ctx context.Context, cmd command.Command) (command.Result, error) {
			return &command.SolveResult{}, nil
		})
	}
	start := time.Now()
	ids, err := s.ResubmitLost(ctx, resolve, ResubmitPolicy{MaxAttempts: 1, Backoff: time.Hour})
	if err == nil || len(ids) != 0 {
		t.Errorf("cancelled ResubmitLost = %v, %v, want ctx error and no ids", ids, err)
	}
	if time.Since(start) > time.Second {
		t.Error("ResubmitLost blocked through the backoff despite a dead context")
	}
}
