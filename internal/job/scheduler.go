package job

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"time"

	"repro/internal/command"
	"repro/internal/errs"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/store"
)

// ErrClosed is returned by Submit after the scheduler shuts down.
var ErrClosed = errors.New("job: scheduler closed")

// Executor runs one typed command — auvm.Session satisfies it, and the
// scheduler never needs to know about sessions beyond this.  A job's Do
// is invoked on a worker goroutine (inline on the submitter's goroutine
// for cheap commands); the context it receives is the job's own
// cancellable context, carrying a per-job metrics collector.
type Executor interface {
	Do(ctx context.Context, cmd command.Command) (command.Result, error)
}

// job is one unit of work.  Lifecycle fields are guarded by the
// scheduler's mutex; the immutable identity fields are set at submit
// time and never written again.
type job struct {
	id     JobID
	owner  string
	model  string
	cmd    command.Command
	ex     Executor
	ctx    context.Context
	cancel context.CancelFunc

	// attempt is the auto-resubmission generation (0 = user-submitted),
	// immutable after submit like the identity fields above.
	attempt int

	// Guarded by Scheduler.mu.
	state              State
	res                command.Result
	err                error
	ops, flops, cycles int64
	// lost marks a record recovered as "lost to restart"; resubmitted
	// marks a lost record ResubmitLost has already requeued, so a
	// crash-restart loop never requeues the same record twice.
	lost, resubmitted bool
	// done is closed exactly once, when the job reaches a terminal
	// state.
	done chan struct{}
}

// Scheduler is the multi-tenant job service: a bounded worker pool over
// a queue of submitted commands, with per-model serialization and full
// job bookkeeping.  All methods are safe for concurrent use by any
// number of sessions.
type Scheduler struct {
	workers int
	shared  *metrics.Collector

	mu      sync.Mutex
	cond    *sync.Cond
	started bool
	closed  bool
	next    int64
	jobs    map[JobID]*job
	// order remembers submission order for retention eviction.
	order []JobID
	// retain bounds the job records kept: when the map outgrows it, the
	// oldest terminal jobs are evicted (live jobs never are).
	retain int
	queue  []*job
	// busy holds the model names currently locked by a running job; a
	// queued job whose key is busy is skipped until the key frees.
	busy map[string]bool
	// live counts each owner's queued-or-running jobs; liveTotal is
	// their sum.  quota bounds live per owner when positive, with policy
	// choosing reject-vs-queue at the bound (see tenant.go).
	live      map[string]int
	liveTotal int
	quota     int
	policy    QuotaPolicy
	// subs are the job-event subscribers, keyed by registration id.
	subs    map[int]func(Snapshot)
	subNext int
	// caches carries one direct-solve factor cache per model name —
	// the companion of the per-model lock: the lock serializes solves on
	// one model, the cache makes every solve after the first warm,
	// whichever session submitted it.  cacheOrder remembers creation
	// order for eviction past maxModelCaches.
	caches     map[string]*linalg.FactorCache
	cacheOrder []string
	// journal, when non-nil, persists job records through the system's
	// store (see journal.go): queued at submit, terminal at finish, and
	// flushed before retention eviction.
	journal store.Store
	// journalErrs counts journal writes that failed.  A journal failure
	// never takes down the scheduler — the write is logged through logf
	// and the job carries on — but the count surfaces the rot.
	journalErrs int64
	// epoch, when non-nil, reports the cluster lease epoch this daemon
	// holds (see internal/cluster); journal records are stamped with it
	// so a takeover can tell which leadership stint wrote what.
	epoch func() int64
	logf  func(format string, args ...any)
	wg    sync.WaitGroup

	// obs is the live-metrics registry (SetObs); the resolved metrics
	// below are nil no-op sinks until it is installed, so a bare
	// scheduler observes for free.  Counters are resolved once here and
	// observed lock-free on the hot path.
	obs              *obs.Registry
	mSubmitted       *obs.Counter
	mDone            *obs.Counter
	mFailed          *obs.Counter
	mCancelled       *obs.Counter
	mQuotaRejected   *obs.Counter
	mJournalErrs     *obs.Counter
	mFactorEvictions *obs.Counter
	gQueueDepth      *obs.Gauge
	gRunning         *obs.Gauge
	gWorkers         *obs.Gauge
}

// maxModelCaches bounds the per-model factor caches a scheduler keeps;
// past it, the oldest cache whose model is not busy is dropped (a
// dropped cache only costs the next solve a refactor).
const maxModelCaches = 64

// DefaultRetainedJobs bounds the job history a scheduler keeps by
// default — enough for any interactive or test workload while keeping a
// long-lived multi-tenant service's memory flat.
const DefaultRetainedJobs = 4096

// NewScheduler returns a scheduler whose pool is bounded at workers
// goroutines (<= 0 selects GOMAXPROCS).  Worker goroutines start lazily
// on the first heavy submission, so a scheduler that only ever sees
// synchronous traffic costs nothing.  shared, which may be nil, receives
// a forwarded copy of every job's metrics (see metrics.Tee).
func NewScheduler(workers int, shared *metrics.Collector) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		workers: workers,
		shared:  shared,
		retain:  DefaultRetainedJobs,
		jobs:    map[JobID]*job{},
		busy:    map[string]bool{},
		live:    map[string]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers returns the pool bound.
func (s *Scheduler) Workers() int { return s.workers }

// SetEpochSource wires the cluster lease epoch into journal records.
// f is called under the scheduler lock at each journal write, so it
// must be cheap and non-blocking (cluster.Coordinator.Epoch is both).
// Nil reverts to unstamped records.
func (s *Scheduler) SetEpochSource(f func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = f
}

// SetObs routes the scheduler's live metrics through reg (see
// internal/obs and docs/observability.md for the catalog).  Metric
// pointers are resolved once here; nil reg leaves them as no-op sinks.
// Call before traffic — typically right after NewScheduler.
func (s *Scheduler) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = reg
	s.mSubmitted = reg.Counter(obs.JobSubmitted)
	s.mDone = reg.Counter(obs.JobDone)
	s.mFailed = reg.Counter(obs.JobFailed)
	s.mCancelled = reg.Counter(obs.JobCancelled)
	s.mQuotaRejected = reg.Counter(obs.JobQuotaRejected)
	s.mJournalErrs = reg.Counter(obs.JobJournalErrors)
	s.mFactorEvictions = reg.Counter(obs.FactorEvictions)
	s.gQueueDepth = reg.Gauge(obs.JobQueueDepth)
	s.gRunning = reg.Gauge(obs.JobRunning)
	s.gWorkers = reg.Gauge(obs.JobWorkers)
	s.gWorkers.Set(int64(s.workers))
	for _, fc := range s.caches {
		fc.Instrument(reg.Counter(obs.FactorHits), reg.Counter(obs.FactorMisses), reg.Counter(obs.FactorRefactors))
	}
}

// syncQueueGaugeLocked publishes the current heavy-queue length.  Jobs
// cancelled while queued stay in the slice until a worker pops past
// them, so the gauge can briefly overcount by the cancelled stragglers.
func (s *Scheduler) syncQueueGaugeLocked() {
	s.gQueueDepth.Set(int64(len(s.queue)))
}

// SetLogf installs the scheduler's diagnostic log sink (the daemon's
// logger).  Only journal failures and resubmission activity log; nil
// silences them.
func (s *Scheduler) SetLogf(f func(format string, args ...any)) {
	s.mu.Lock()
	s.logf = f
	s.mu.Unlock()
}

// logfLocked logs through the installed sink, if any.
func (s *Scheduler) logfLocked(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// JournalErrors reports how many journal writes have failed since the
// scheduler started — the scheduler survives every one of them, so the
// count is the only trace short of the log.
func (s *Scheduler) JournalErrors() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalErrs
}

// SetRetention rebounds the retained job history (<= 0 keeps everything
// — unbounded, test use only).  Ids evicted by retention answer
// ErrNotFound from Status/Wait/Cancel.
func (s *Scheduler) SetRetention(n int) {
	s.mu.Lock()
	s.retain = n
	s.evictLocked()
	s.mu.Unlock()
}

// evictLocked drops the oldest terminal job records until the map is
// back within the retention bound.  Live (queued/running) jobs are
// never evicted, so under a burst the map can exceed the bound by the
// number of in-flight jobs.
func (s *Scheduler) evictLocked() {
	if s.retain <= 0 || len(s.jobs) <= s.retain {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.retain && j.state.Terminal() {
			// Flush the record to the journal before dropping it from
			// memory, so history survives eviction (and restart): Status
			// and Wait keep answering for evicted ids via the journal.
			s.persistLocked(j)
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// notFound builds the taxonomy error for an unknown job id.
func notFound(id JobID) error {
	return fmt.Errorf("job: no %s: %w", id, errs.ErrNotFound)
}

// Submit registers cmd as a job owned by owner and executed by ex.
// Heavy commands (see Heavy) are enqueued for the worker pool and Submit
// returns their JobID immediately; cheap commands run inline on the
// caller's goroutine — synchronously, but under the same job record, so
// Status and Wait work uniformly.  An inline command that touches a
// model a running job holds waits its turn, but never past its context:
// once ctx is done the job finalizes Cancelled and Submit returns.  The
// job runs under a context derived from ctx: cancelling ctx, like
// Cancel, cancels the job.  Job-control commands cannot themselves run
// as jobs.  When a per-owner quota is set (SetQuota), an owner at the
// in-flight bound is rejected with ErrQuota or blocked until a slot
// frees, by policy.
func (s *Scheduler) Submit(ctx context.Context, owner string, ex Executor, cmd command.Command) (JobID, error) {
	return s.submit(ctx, owner, ex, cmd, 0)
}

// submit is Submit with the resubmission generation threaded through —
// ResubmitLost requeues lost jobs at attempt n+1.
func (s *Scheduler) submit(ctx context.Context, owner string, ex Executor, cmd command.Command, attempt int) (JobID, error) {
	if cmd == nil || ex == nil {
		return 0, errs.Usage("submit needs a command and an executor")
	}
	cmd = command.Value(cmd)
	switch cmd.(type) {
	case command.Submit, command.Status, command.Wait, command.Cancel, command.Jobs, command.Quit:
		return 0, errs.Usage("%q cannot run as a job", cmd)
	}
	if err := errs.Cancelled(ctx); err != nil {
		return 0, err
	}

	jctx, cancel := context.WithCancel(ctx)
	j := &job{
		owner: owner, model: ModelOf(cmd), cmd: cmd, ex: ex,
		ctx: jctx, cancel: cancel, attempt: attempt,
		state: Queued, done: make(chan struct{}),
	}

	s.mu.Lock()
	if err := s.admitLocked(ctx, owner); err != nil {
		if errors.Is(err, ErrQuota) {
			s.mQuotaRejected.Inc()
		}
		s.mu.Unlock()
		cancel()
		return 0, err
	}
	s.mSubmitted.Inc()
	s.next++
	j.id = JobID(s.next)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.live[owner]++
	s.liveTotal++
	s.evictLocked()
	s.persistLocked(j) // journal the submission; terminal write overtakes it
	s.publishLocked(j)
	if Heavy(cmd) {
		s.startWorkersLocked()
		s.queue = append(s.queue, j)
		s.syncQueueGaugeLocked()
		s.cond.Broadcast()
		s.mu.Unlock()
		return j.id, nil
	}
	s.mu.Unlock()
	s.runInline(j)
	return j.id, nil
}

// startWorkersLocked launches the pool on first use.
func (s *Scheduler) startWorkersLocked() {
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// worker is one pool goroutine: pop a runnable job, execute it, release
// its model, repeat until the scheduler closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			if j = s.popLocked(); j != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		if j == nil {
			s.mu.Unlock()
			return
		}
		j.state = Running
		s.gRunning.Add(1)
		if j.model != "" {
			s.busy[j.model] = true
		}
		s.publishLocked(j)
		s.mu.Unlock()

		s.execute(j)

		s.mu.Lock()
		if j.model != "" {
			delete(s.busy, j.model)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// popLocked removes and returns the first queued job whose model is not
// busy, dropping jobs cancelled while they waited.
func (s *Scheduler) popLocked() *job {
	defer s.syncQueueGaugeLocked()
	for i := 0; i < len(s.queue); i++ {
		j := s.queue[i]
		if j.state != Queued {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			i--
			continue
		}
		if j.model == "" || !s.busy[j.model] {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return j
		}
	}
	return nil
}

// runInline executes a cheap job on the caller's goroutine.  It still
// honours the model lock — an inline model edit queues behind a running
// solve on the same model rather than racing it — and a cancel (or the
// job context's own deadline) delivered while waiting wins: the job
// finalizes Cancelled instead of blocking the submitter past its ctx.
func (s *Scheduler) runInline(j *job) {
	s.mu.Lock()
	if j.model != "" && s.busy[j.model] {
		// The cond has no ctx case of its own; wake the wait loop when
		// the job's context dies so the submitter is never stuck behind
		// a long solve it no longer wants to wait for.
		stop := context.AfterFunc(j.ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
		for s.busy[j.model] && j.state == Queued && j.ctx.Err() == nil {
			s.cond.Wait()
		}
	}
	if j.state != Queued { // cancelled (or closed) while waiting
		s.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil { // submit ctx died while waiting for the model
		s.cancelQueuedLocked(j)
		s.mu.Unlock()
		return
	}
	j.state = Running
	s.gRunning.Add(1)
	if j.model != "" {
		s.busy[j.model] = true
	}
	s.publishLocked(j)
	s.mu.Unlock()

	s.execute(j)

	s.mu.Lock()
	if j.model != "" {
		delete(s.busy, j.model)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// FactorCache returns the scheduler's shared direct-solve factor cache
// for one model name, creating it on first use.  Every heavy job on
// that model runs under a context carrying this cache, so N queued
// solves on one model factor once and the rest ride the warm factor —
// across sessions, since the key is the model name, not the workspace
// copy.
func (s *Scheduler) FactorCache(model string) *linalg.FactorCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.caches == nil {
		s.caches = map[string]*linalg.FactorCache{}
	}
	fc, ok := s.caches[model]
	if !ok {
		if len(s.caches) >= maxModelCaches {
			for i, name := range s.cacheOrder {
				if !s.busy[name] {
					delete(s.caches, name)
					s.cacheOrder = append(s.cacheOrder[:i], s.cacheOrder[i+1:]...)
					s.mFactorEvictions.Inc()
					break
				}
			}
		}
		fc = &linalg.FactorCache{}
		if s.obs != nil {
			fc.Instrument(s.obs.Counter(obs.FactorHits), s.obs.Counter(obs.FactorMisses), s.obs.Counter(obs.FactorRefactors))
		}
		s.caches[model] = fc
		s.cacheOrder = append(s.cacheOrder, model)
	}
	return fc
}

// CacheableSolve reports whether cmd is a solve the per-model factor
// cache can serve: a sequential direct-backend solve with no
// preconditioner.  Iterative, parallel, and substructured solves have
// no factor to retain, so attaching a cache for them would only create
// empty entries that crowd warm ones out of the bounded cache map.
func CacheableSolve(cmd command.Command) bool {
	sc, ok := command.Value(cmd).(command.Solve)
	if !ok || sc.Parallel > 0 || sc.Substructures > 0 {
		return false
	}
	if sc.Precond != "" && sc.Precond != "none" {
		return false
	}
	_, direct := linalg.PlanOptsFor(string(sc.Method))
	return direct
}

// execute runs the job's command and stores its terminal state.  The
// executor sees a context carrying a per-job Tee collector, so AUVM
// operation counts land on the job and on the shared system collector
// alike; solver flops and machine cycles come back on the typed result.
// Cacheable direct solves additionally carry the model's shared factor
// cache.
func (s *Scheduler) execute(j *job) {
	mc := metrics.Tee(s.shared)
	ctx := metrics.NewContext(j.ctx, mc)
	if j.model != "" && CacheableSolve(j.cmd) {
		ctx = linalg.NewFactorCacheContext(ctx, s.FactorCache(j.model))
	}
	start := time.Now()
	res, err := j.ex.Do(ctx, j.cmd)
	elapsed := time.Since(start)
	j.cancel()

	state := Done
	if err != nil {
		state = Failed
		if errors.Is(err, errs.ErrCancelled) {
			state = Cancelled
		}
	}
	s.obs.Histogram(obs.JobLatencyPrefix + command.Verb(j.cmd)).Observe(elapsed)
	s.gRunning.Add(-1)
	switch state {
	case Done:
		s.mDone.Inc()
	case Failed:
		s.mFailed.Inc()
	case Cancelled:
		s.mCancelled.Inc()
	}
	s.mu.Lock()
	j.state = state
	j.res, j.err = res, err
	j.ops = mc.Get(metrics.LevelAUVM, metrics.CtrOps)
	if sr, ok := res.(*command.SolveResult); ok {
		j.flops = sr.Flops
		j.cycles = sr.Makespan
	}
	close(j.done)
	s.finishLocked(j)
	s.mu.Unlock()
}

// Status returns a snapshot of one job.  Ids retention has evicted
// from memory are answered from the journal when one is attached.
func (s *Scheduler) Status(id JobID) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if ok {
		snap := s.snapshotLocked(j)
		s.mu.Unlock()
		return snap, nil
	}
	s.mu.Unlock()
	if j, ok := s.journalLookup(id); ok {
		return s.snapshotLocked(j), nil
	}
	return Snapshot{}, notFound(id)
}

// snapshotLocked copies a job's current state.
func (s *Scheduler) snapshotLocked(j *job) Snapshot {
	return Snapshot{
		ID: j.id, Owner: j.owner, Cmd: j.cmd, Model: j.model,
		State: j.state, Result: j.res, Err: j.err,
		Ops: j.ops, Flops: j.flops, Cycles: j.cycles,
		Attempt: j.attempt,
	}
}

// Wait blocks until the job reaches a terminal state (or ctx is done)
// and returns the stored result and error — for a Done job, exactly what
// the synchronous command would have returned; for a cancelled job, an
// error wrapping errs.ErrCancelled.
func (s *Scheduler) Wait(ctx context.Context, id JobID) (command.Result, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		// An evicted terminal job is already finished: answer its stored
		// outcome from the journal immediately.
		if j, ok := s.journalLookup(id); ok {
			return j.res, j.err
		}
		return nil, notFound(id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, errs.Cancelled(ctx)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.res, j.err
}

// Cancel stops a job: a queued job is cancelled outright; a running job
// has its context cancelled, which the solver kernels poll, so it
// reaches Cancelled shortly (or Done if completion won the race).  The
// returned state is the job's state after the attempt — Cancelled,
// Running for an in-flight stop, or the terminal state of a job that had
// already finished.
func (s *Scheduler) Cancel(id JobID) (State, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		// An evicted job is terminal; cancelling it reports its state.
		if j, ok := s.journalLookup(id); ok {
			return j.state, nil
		}
		return 0, notFound(id)
	}
	switch j.state {
	case Queued:
		s.cancelQueuedLocked(j)
		s.mu.Unlock()
		return Cancelled, nil
	case Running:
		s.mu.Unlock()
		j.cancel()
		return Running, nil
	default:
		st := j.state
		s.mu.Unlock()
		return st, nil
	}
}

// cancelQueuedLocked finalizes a job that never ran.
func (s *Scheduler) cancelQueuedLocked(j *job) {
	j.state = Cancelled
	s.mCancelled.Inc()
	j.err = fmt.Errorf("%w: %s cancelled before it started", errs.ErrCancelled, j.id)
	close(j.done)
	j.cancel()
	s.finishLocked(j)
}

// CancelOwner cancels every live (queued or running) job of one user and
// returns how many it touched — session teardown's bulk cancel.
func (s *Scheduler) CancelOwner(owner string) int {
	s.mu.Lock()
	var running []*job
	n := 0
	for _, j := range s.jobs {
		if j.owner != owner {
			continue
		}
		switch j.state {
		case Queued:
			s.cancelQueuedLocked(j)
			n++
		case Running:
			running = append(running, j)
			n++
		}
	}
	s.mu.Unlock()
	for _, j := range running {
		j.cancel()
	}
	return n
}

// List returns snapshots of the jobs matching f, ascending id.
func (s *Scheduler) List(f Filter) []Snapshot {
	s.mu.Lock()
	out := make([]Snapshot, 0, len(s.jobs))
	for _, j := range s.jobs {
		if snap := s.snapshotLocked(j); f.match(snap) {
			out = append(out, snap)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Close shuts the scheduler down: queued jobs are cancelled, running
// jobs have their contexts cancelled, workers drain and exit, and
// further Submits return ErrClosed.  Close blocks until the pool is
// gone; it is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var running []*job
	for _, j := range s.jobs {
		switch j.state {
		case Queued:
			s.cancelQueuedLocked(j)
		case Running:
			running = append(running, j)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range running {
		j.cancel()
	}
	s.wg.Wait()
}
