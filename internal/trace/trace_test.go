package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestRecordAssignsSequence(t *testing.T) {
	tr := New()
	a := tr.Record(Event{Kind: "a"})
	b := tr.Record(Event{Kind: "b"})
	if a.Seq != 0 || b.Seq != 1 {
		t.Errorf("sequence numbers = %d, %d; want 0, 1", a.Seq, b.Seq)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Record(Event{Kind: "x"})
	tr.Recordf(metrics.LevelNAVM, "y", 0, 1, 2, "detail %d", 3)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil Trace should be a no-op sink")
	}
}

func TestCapDropsButCounts(t *testing.T) {
	tr := NewCapped(2)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Kind: "e"})
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
	// Sequence numbers keep advancing past the cap.
	e := tr.Record(Event{Kind: "e"})
	if e.Seq != 5 {
		t.Errorf("Seq = %d, want 5", e.Seq)
	}
}

func TestRecordfDetail(t *testing.T) {
	tr := New()
	tr.Recordf(metrics.LevelSPVM, "send", 1, 2, 8, "msg type %s", "initiate")
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("Len = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Level != metrics.LevelSPVM || e.Kind != "send" || e.Src != 1 || e.Dst != 2 || e.Words != 8 {
		t.Errorf("unexpected event %v", e)
	}
	if e.Detail != "msg type initiate" {
		t.Errorf("Detail = %q", e.Detail)
	}
}

func TestEventsIsCopy(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: "k"})
	evs := tr.Events()
	evs[0].Kind = "mutated"
	if tr.Events()[0].Kind != "k" {
		t.Error("Events() exposed internal storage")
	}
}

func TestFilterAndCountByKind(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: "send"})
	tr.Record(Event{Kind: "send"})
	tr.Record(Event{Kind: "recv"})
	sends := tr.Filter(func(e Event) bool { return e.Kind == "send" })
	if len(sends) != 2 {
		t.Errorf("Filter returned %d events, want 2", len(sends))
	}
	counts := tr.CountByKind()
	if counts["send"] != 2 || counts["recv"] != 1 {
		t.Errorf("CountByKind = %v", counts)
	}
}

func TestCommunicationMatrix(t *testing.T) {
	tr := New()
	tr.Record(Event{Kind: "send", Src: 0, Dst: 2})
	tr.Record(Event{Kind: "send", Src: 0, Dst: 2})
	tr.Record(Event{Kind: "send", Src: 2, Dst: 0})
	tr.Record(Event{Kind: "other", Src: 5, Dst: 6})
	ids, m := tr.CommunicationMatrix("send")
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("ids = %v, want [0 2]", ids)
	}
	if m[0][1] != 2 {
		t.Errorf("m[0][1] = %d, want 2", m[0][1])
	}
	if m[1][0] != 1 {
		t.Errorf("m[1][0] = %d, want 1", m[1][0])
	}
	if m[0][0] != 0 || m[1][1] != 0 {
		t.Errorf("diagonal should be zero: %v", m)
	}
}

func TestConcurrentRecordKeepsAllEvents(t *testing.T) {
	tr := New()
	const n = 32
	const per = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tr.Record(Event{Kind: "e"})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != n*per {
		t.Errorf("Len = %d, want %d", tr.Len(), n*per)
	}
	// All sequence numbers must be distinct.
	seen := make(map[int64]bool, n*per)
	for _, e := range tr.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestSummaryRendersCountsAndDrops(t *testing.T) {
	tr := NewCapped(1)
	tr.Record(Event{Kind: "send"})
	tr.Record(Event{Kind: "send"})
	s := tr.Summary()
	if !strings.Contains(s, "send") {
		t.Errorf("Summary missing kind:\n%s", s)
	}
	if !strings.Contains(s, "dropped") {
		t.Errorf("Summary missing drop note:\n%s", s)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 3, Clock: 10, Level: metrics.LevelARCH, Kind: "send", Src: 1, Dst: 2, Words: 4, Detail: "d"}
	s := e.String()
	for _, want := range []string{"#3", "t=10", "ARCH", "send", "1->2", "w=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
}
