// Package trace records ordered event traces across the FEM-2 virtual
// machine levels.
//
// The FEM-2 design method calls for simulations that expose the
// *communication patterns* of typical applications, not just aggregate
// counts.  A Trace captures a time-ordered sequence of events (task
// initiations, message sends, window accesses, PE assignments ...) tagged
// with the VM level that produced them, so experiments can reconstruct and
// summarise the pattern of activity.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// Event is one record in a trace.
type Event struct {
	// Seq is the global sequence number, assigned on Record.
	Seq int64
	// Clock is the simulated time at which the event occurred (hardware
	// cycles for ARCH events, 0 if the producer has no clock).
	Clock int64
	// Level is the virtual machine level that produced the event.
	Level metrics.Level
	// Kind classifies the event, e.g. "send", "initiate", "window.read".
	Kind string
	// Src and Dst identify the endpoints of the event where meaningful
	// (task ids, PE ids, cluster ids); -1 means not applicable.
	Src, Dst int
	// Words is the data volume associated with the event, in words.
	Words int
	// Detail is optional free-form context.
	Detail string
}

// String renders the event compactly for logs and test failures.
func (e Event) String() string {
	return fmt.Sprintf("#%d t=%d %s %s %d->%d w=%d %s",
		e.Seq, e.Clock, e.Level, e.Kind, e.Src, e.Dst, e.Words, e.Detail)
}

// Trace is an append-only, concurrency-safe event log.  A nil *Trace is a
// valid no-op sink.
type Trace struct {
	mu     sync.Mutex
	events []Event
	next   int64
	// cap limits memory use; 0 means unlimited.  When the cap is hit new
	// events are counted but not stored.
	cap     int
	dropped int64
}

// New returns an empty Trace with unlimited capacity.
func New() *Trace { return &Trace{} }

// NewCapped returns a Trace that stores at most cap events; later events
// are counted in Dropped() but not retained.
func NewCapped(cap int) *Trace { return &Trace{cap: cap} }

// Record appends an event, assigning its sequence number, and returns it.
func (t *Trace) Record(e Event) Event {
	if t == nil {
		return e
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = t.next
	t.next++
	if t.cap > 0 && len(t.events) >= t.cap {
		t.dropped++
		return e
	}
	t.events = append(t.events, e)
	return e
}

// Recordf is a convenience wrapper building an Event in place.
func (t *Trace) Recordf(l metrics.Level, kind string, src, dst, words int, format string, args ...any) {
	if t == nil {
		return
	}
	t.Record(Event{
		Level:  l,
		Kind:   kind,
		Src:    src,
		Dst:    dst,
		Words:  words,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded due to the cap.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the retained events in record order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Filter returns the retained events for which keep returns true.
func (t *Trace) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range t.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// CountByKind returns how many retained events exist per Kind.
func (t *Trace) CountByKind() map[string]int {
	out := map[string]int{}
	for _, e := range t.Events() {
		out[e.Kind]++
	}
	return out
}

// CommunicationMatrix builds the src×dst message-count matrix for events of
// the given kind, mapping endpoint ids to dense indices.  It returns the
// sorted endpoint ids and the matrix m where m[i][j] counts events from
// ids[i] to ids[j].  This is the "communication pattern" summary the FEM-2
// simulations were designed to produce.
func (t *Trace) CommunicationMatrix(kind string) (ids []int, m [][]int) {
	evs := t.Filter(func(e Event) bool { return e.Kind == kind })
	set := map[int]bool{}
	for _, e := range evs {
		set[e.Src] = true
		set[e.Dst] = true
	}
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	m = make([][]int, len(ids))
	for i := range m {
		m[i] = make([]int, len(ids))
	}
	for _, e := range evs {
		m[idx[e.Src]][idx[e.Dst]]++
	}
	return ids, m
}

// Summary renders a per-kind event count table.
func (t *Trace) Summary() string {
	counts := t.CountByKind()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s\n", "event kind", "count")
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-24s %10d\n", k, counts[k])
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d events dropped)\n", d)
	}
	return b.String()
}
