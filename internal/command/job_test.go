package command

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/errs"
)

// TestParseJobVerbs covers the job-control verbs the scheduler speaks.
func TestParseJobVerbs(t *testing.T) {
	cases := []struct {
		line string
		want Command
	}{
		{"submit solve g l", Submit{Cmd: Solve{Model: "g", Set: "l"}}},
		{"submit solve g l method cg parallel 4",
			Submit{Cmd: Solve{Model: "g", Set: "l", Method: MethodCG, Parallel: 4}}},
		{"submit generate grid g 4 3 4 3", Submit{Cmd: GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4, H: 3}}},
		{"status 3", Status{ID: 3}},
		{"status job-3", Status{ID: 3}},
		{"wait 7", Wait{ID: 7}},
		{"wait job-7", Wait{ID: 7}},
		{"cancel 2", Cancel{ID: 2}},
		{"cancel job-2", Cancel{ID: 2}},
		{"jobs", Jobs{}},
		{"jobs user alice", Jobs{Owner: "alice"}},
		{"jobs state running", Jobs{State: JobRunning}},
		{"jobs user alice state done", Jobs{Owner: "alice", State: JobDone}},
	}
	for _, c := range cases {
		got, err := Parse(c.line)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.line, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.line, got, c.want)
		}
	}
}

// TestJobVerbRoundTrip: Parse(cmd.String()) reproduces the command.
func TestJobVerbRoundTrip(t *testing.T) {
	cmds := []Command{
		Submit{Cmd: Solve{Model: "m", Set: "ls", Method: MethodCG, Parallel: 2}},
		Submit{Cmd: GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4, H: 3, ClampLeft: true}},
		Status{ID: 3},
		Wait{ID: 12},
		Cancel{ID: 5},
		Jobs{},
		Jobs{Owner: "alice"},
		Jobs{State: JobFailed},
		Jobs{Owner: "bob", State: JobCancelled},
	}
	for _, cmd := range cmds {
		line := cmd.String()
		got, err := Parse(line)
		if err != nil {
			t.Errorf("Parse(%v.String() = %q): %v", cmd, line, err)
			continue
		}
		if !reflect.DeepEqual(got, cmd) {
			t.Errorf("round trip via %q: got %#v, want %#v", line, got, cmd)
		}
	}
}

// TestParseJobUsageErrors rejects malformed and forbidden job lines.
func TestParseJobUsageErrors(t *testing.T) {
	for _, line := range []string{
		"submit",
		"submit # just a comment",
		"submit quit",
		"submit submit solve g l",
		"submit wait 1",
		"submit status 1",
		"submit cancel 1",
		"submit jobs",
		"status",
		"status one",
		"status job-0",
		"status -3",
		"wait",
		"cancel 1 2",
		"jobs wat",
		"jobs state limbo",
		"jobs user",
	} {
		if _, err := Parse(line); !errors.Is(err, errs.ErrUsage) {
			t.Errorf("Parse(%q) = %v, want ErrUsage", line, err)
		}
	}
	// A syntax error inside the submitted command surfaces too.
	if _, err := Parse("submit solve"); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("submit with bad inner command: %v", err)
	}
}

// TestJobResultRenderings spot-checks the REPL display lines.
func TestJobResultRenderings(t *testing.T) {
	cases := []struct {
		res  Result
		want string
	}{
		{SubmitResult{ID: 3, State: JobQueued, Cmd: "solve g l"},
			"submitted job-3 (queued): solve g l"},
		{SubmitResult{ID: 4, State: JobDone, Cmd: "list db"},
			"submitted job-4 (done): list db"},
		{JobStatusResult{ID: 3, Owner: "alice", State: JobRunning, Cmd: "solve g l"},
			`job-3 running (owner "alice"): solve g l`},
		{JobStatusResult{ID: 3, Owner: "alice", State: JobDone, Cmd: "solve g l",
			Flops: 1000, Cycles: 500},
			`job-3 done (owner "alice"): solve g l [1000 flops, 500 cycles]`},
		{JobStatusResult{ID: 9, Owner: "bob", State: JobFailed, Cmd: "solve g l",
			Error: "no load set"},
			`job-9 failed (owner "bob"): solve g l — no load set`},
		{CancelResult{ID: 2, State: JobCancelled}, "cancelled job-2"},
		{CancelResult{ID: 2, State: JobRunning}, "cancel requested for running job-2"},
		{CancelResult{ID: 2, State: JobDone}, "job-2 already done"},
		{JobsResult{}, "no jobs"},
		{JobsResult{Rows: []JobRow{
			{ID: 1, Owner: "alice", State: JobDone, Cmd: "solve g l"},
			{ID: 2, Owner: "bob", State: JobQueued, Cmd: "solve h l"},
		}},
			"jobs (2):\n  job-1    done      alice      solve g l\n  job-2    queued    bob        solve h l"},
	}
	for _, c := range cases {
		if got := c.res.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.res, got, c.want)
		}
	}
}

// TestValue covers the pointer-deref helper every interpreter layer
// shares.
func TestValue(t *testing.T) {
	v := Solve{Model: "m", Set: "l"}
	if got := Value(&v); !reflect.DeepEqual(got, v) {
		t.Errorf("Value(&Solve) = %#v", got)
	}
	if got := Value(v); !reflect.DeepEqual(got, v) {
		t.Errorf("Value(Solve) = %#v", got)
	}
	var nilPtr *Solve
	if got := Value(nilPtr); got != Command(nilPtr) {
		t.Errorf("Value(nil *Solve) = %#v", got)
	}
}
