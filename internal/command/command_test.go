package command

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestParseEveryVerb drives the parser through every verb and option
// combination of the command language.
func TestParseEveryVerb(t *testing.T) {
	cases := []struct {
		line string
		want Command
	}{
		{"help", Help{}},
		{"ping", Ping{}},
		{"version", Version{}},
		{"stats", Stats{}},
		{"STATS", Stats{}},
		{"quit", Quit{}},
		{"exit", Quit{}},
		{"QUIT", Quit{}}, // verbs are case-insensitive
		{"define structure wing", Define{Name: "wing"}},
		{"material 200000 0.3 10 2000", SetMaterial{E: 200000, Nu: 0.3, T: 10, A: 2000}},
		{"generate grid g 4 3 4.5 3.5", GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4.5, H: 3.5}},
		{"generate grid g 4 3 4 3 clamp-left", GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4, H: 3, ClampLeft: true}},
		{"generate grid g 4 3 4 3 clamp-left jitter 0.1 7",
			GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4, H: 3, ClampLeft: true, Jitter: 0.1, Seed: 7}},
		{"generate truss tr 4 100 80", GenerateTruss{Name: "tr", Bays: 4, BayLen: 100, Height: 80}},
		{"generate bar b 10 100", GenerateBar{Name: "b", Segments: 10, Length: 100}},
		{"node m 1 2.5", AddNode{Model: "m", X: 1, Y: 2.5}},
		{"element bar m 0 1", AddBar{Model: "m", N1: 0, N2: 1}},
		{"element cst m 0 1 2", AddCST{Model: "m", N1: 0, N2: 1, N3: 2}},
		{"fix node m 0", FixNode{Model: "m", Node: 0}},
		{"fix dof m 3", FixDOF{Model: "m", DOF: 3}},
		{"loadset m ls", DefineLoadSet{Model: "m", Set: "ls"}},
		{"load m ls 3 -50.5", AddLoad{Model: "m", Set: "ls", DOF: 3, Value: -50.5}},
		{"load m ls endload 0 -1000", EndLoad{Model: "m", Set: "ls", FX: 0, FY: -1000}},
		{"solve m ls", Solve{Model: "m", Set: "ls"}},
		{"solve m ls method cg", Solve{Model: "m", Set: "ls", Method: MethodCG}},
		{"solve m ls method cholesky", Solve{Model: "m", Set: "ls", Method: MethodCholesky}},
		{"solve m ls method sor", Solve{Model: "m", Set: "ls", Method: MethodSOR}},
		{"solve m ls method jacobi", Solve{Model: "m", Set: "ls", Method: MethodJacobi}},
		{"solve m ls method cholesky-rcm", Solve{Model: "m", Set: "ls", Method: MethodCholeskyRCM}},
		{"solve m ls method cholesky-env", Solve{Model: "m", Set: "ls", Method: MethodCholeskyEnv}},
		{"solve m ls method cg precond jacobi", Solve{Model: "m", Set: "ls", Method: MethodCG, Precond: PrecondJacobi}},
		{"solve m ls method cg precond ssor parallel 8",
			Solve{Model: "m", Set: "ls", Method: MethodCG, Precond: PrecondSSOR, Parallel: 8}},
		{"solve m ls parallel 8", Solve{Model: "m", Set: "ls", Parallel: 8}},
		{"solve m ls substructures 4", Solve{Model: "m", Set: "ls", Substructures: 4}},
		{"solve m ls method sor parallel 2 substructures 3",
			Solve{Model: "m", Set: "ls", Method: MethodSOR, Parallel: 2, Substructures: 3}},
		{"stresses m", Stresses{Model: "m"}},
		{"display model m", Display{What: DisplayModel, Model: "m"}},
		{"display displacements m", Display{What: DisplayDisplacements, Model: "m"}},
		{"display stresses m", Display{What: DisplayStresses, Model: "m"}},
		{"store m", Store{Model: "m"}},
		{"retrieve m", Retrieve{Name: "m"}},
		{"delete m", Delete{Name: "m"}},
		{"list db", List{What: ListDB}},
		{"list workspace", List{What: ListWorkspace}},
	}
	for _, c := range cases {
		got, err := Parse(c.line)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.line, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.line, got, c.want)
		}
	}
}

// TestParseBlankAndComment checks the no-op lines parse to (nil, nil).
func TestParseBlankAndComment(t *testing.T) {
	for _, line := range []string{"", "   ", "\t", "# a comment", "#comment"} {
		cmd, err := Parse(line)
		if cmd != nil || err != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", line, cmd, err)
		}
	}
}

// TestParseUsageErrors drives every usage-error branch of the parser;
// each must reject the line with an error wrapping ErrUsage.
func TestParseUsageErrors(t *testing.T) {
	bad := []string{
		"frobnicate",                           // unknown verb
		"ping now",                             // extra arg
		"version 2",                            // extra arg
		"define wing",                          // missing keyword
		"define structure",                     // missing name
		"define structure a b",                 // extra arg
		"material 1 2 3",                       // missing arg
		"material x 2 3 4",                     // non-numeric
		"generate",                             // no kind
		"generate grid g",                      // missing dims
		"generate grid g a b c d",              // non-numeric dims
		"generate grid g 1 1 1 1 wat",          // unknown option
		"generate grid g 1 1 1 1 jitter 0.1",   // jitter missing seed
		"generate grid g 1 1 1 1 jitter x 1",   // bad fraction
		"generate grid g 1 1 1 1 jitter 0.1 x", // bad seed
		"generate truss t 1 2",                 // missing arg
		"generate truss t a b c",               // non-numeric
		"generate bar b 1",                     // missing arg
		"generate bar b a b",                   // non-numeric
		"generate sphere s 1",                  // unknown kind
		"node m 1",                             // missing coord
		"node m a b",                           // non-numeric
		"element",                              // no args
		"element bar m 1",                      // wrong node count
		"element bar m a b",                    // non-numeric nodes
		"element cst m 1 2",                    // wrong node count
		"element wedge m 1 2",                  // unknown element
		"fix node m",                           // missing index
		"fix wat m 1",                          // unknown target
		"fix node m x",                         // non-numeric index
		"loadset m",                            // missing name
		"load m",                               // too few args
		"load m ls x 1",                        // non-numeric dof
		"load m ls endload x 1",                // non-numeric force
		"solve m",                              // missing set
		"solve m ls method",                    // dangling option
		"solve m ls method gauss",              // unknown method
		"solve m ls parallel",                  // dangling option
		"solve m ls parallel 0",                // non-positive workers
		"solve m ls parallel x",                // non-numeric workers
		"solve m ls substructures 0",           // non-positive count
		"solve m ls wat",                       // unknown option
		"stresses",                             // missing model
		"display model",                        // missing model
		"display wat m",                        // unknown display
		"store",                                // missing model
		"retrieve",                             // missing name
		"delete",                               // missing name
		"list",                                 // missing target
		"list wat",                             // unknown target
	}
	for _, line := range bad {
		cmd, err := Parse(line)
		if err == nil {
			t.Errorf("Parse(%q) accepted as %#v", line, cmd)
			continue
		}
		if !errors.Is(err, ErrUsage) {
			t.Errorf("Parse(%q) error %v does not wrap ErrUsage", line, err)
		}
		if cmd != nil {
			t.Errorf("Parse(%q) returned a command alongside the error", line)
		}
	}
}

// TestRoundTrip checks Parse(cmd.String()) reproduces the command for
// every verb: the canonical rendering and the parser are inverses.
func TestRoundTrip(t *testing.T) {
	cmds := []Command{
		Help{},
		Ping{},
		Version{},
		Quit{},
		Define{Name: "wing"},
		SetMaterial{E: 200000, Nu: 0.3, T: 10, A: 2000},
		GenerateGrid{Name: "g", NX: 16, NY: 8, W: 16.5, H: 8.25},
		GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4, H: 3, ClampLeft: true},
		GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4, H: 3, ClampLeft: true, Jitter: 0.125, Seed: 42},
		GenerateTruss{Name: "tr", Bays: 4, BayLen: 100, Height: 80},
		GenerateBar{Name: "b", Segments: 10, Length: 100},
		AddNode{Model: "m", X: 1.5, Y: -2.25},
		AddBar{Model: "m", N1: 0, N2: 1},
		AddCST{Model: "m", N1: 0, N2: 1, N3: 2},
		FixNode{Model: "m", Node: 0},
		FixDOF{Model: "m", DOF: 3},
		DefineLoadSet{Model: "m", Set: "ls"},
		AddLoad{Model: "m", Set: "ls", DOF: 3, Value: -50.5},
		EndLoad{Model: "m", Set: "ls", FX: 0, FY: -1000},
		Solve{Model: "m", Set: "ls"},
		Solve{Model: "m", Set: "ls", Method: MethodCG},
		Solve{Model: "m", Set: "ls", Method: MethodCholeskyRCM},
		Solve{Model: "m", Set: "ls", Method: MethodCholeskyEnv},
		Solve{Model: "m", Set: "ls", Method: MethodCG, Precond: PrecondJacobi},
		Solve{Model: "m", Set: "ls", Method: MethodCG, Precond: PrecondSSOR, Parallel: 2},
		Solve{Model: "m", Set: "ls", Parallel: 8},
		Solve{Model: "m", Set: "ls", Substructures: 4},
		Solve{Model: "m", Set: "ls", Method: MethodSOR, Parallel: 2, Substructures: 3},
		Stresses{Model: "m"},
		Display{What: DisplayModel, Model: "m"},
		Display{What: DisplayDisplacements, Model: "m"},
		Display{What: DisplayStresses, Model: "m"},
		Store{Model: "m"},
		Retrieve{Name: "m"},
		Delete{Name: "m"},
		List{What: ListDB},
		List{What: ListWorkspace},
	}
	for _, cmd := range cmds {
		line := cmd.String()
		got, err := Parse(line)
		if err != nil {
			t.Errorf("Parse(%v.String() = %q): %v", cmd, line, err)
			continue
		}
		if !reflect.DeepEqual(got, cmd) {
			t.Errorf("round trip via %q: got %#v, want %#v", line, got, cmd)
		}
	}
}

// TestResultRenderings spot-checks the result String forms the REPL
// displays, including the variants that branch on result fields.
func TestResultRenderings(t *testing.T) {
	cases := []struct {
		res  Result
		want string
	}{
		{PingResult{}, "pong"},
		{VersionResult{Server: "fem2", Release: "0.6.0", Protocol: 1},
			"fem2 0.6.0 (protocol 1)"},
		{VersionResult{Server: "fem2", Release: "0.7.0", Protocol: 2, Storage: "file"},
			"fem2 0.7.0 (protocol 2, storage file)"},
		{SnapshotResult{Path: "ws.snap", Models: 2, Bytes: 4096},
			`snapshot "ws.snap": 2 models, 4096 bytes`},
		{RestoreResult{Path: "ws.snap", Models: 2},
			`restored 2 models from "ws.snap"`},
		{QuitResult{}, "bye"},
		{DefineResult{Name: "wing"}, `defined structure "wing"`},
		{GenerateResult{Kind: "grid", Name: "g", Nodes: 25, Elements: 32},
			`generated grid "g": 25 nodes, 32 elements`},
		{GenerateResult{Kind: "truss", Name: "tr", Nodes: 10, Elements: 17},
			`generated truss "tr": 10 nodes, 17 members`},
		{GenerateResult{Kind: "bar", Name: "b", Nodes: 11, Elements: 10},
			`generated bar "b": 10 segments`},
		{ElementResult{Kind: "bar", Model: "m", Nodes: []int{0, 1}},
			`bar 0-1 added to "m"`},
		{ElementResult{Kind: "cst", Model: "m", Nodes: []int{0, 1, 2}},
			`cst 0-1-2 added to "m"`},
		{FixResult{What: "dof", Index: 3}, "dof 3 fixed"},
		{SolveResult{Model: "m", Set: "ls", Backend: "cholesky", MaxDisp: 0.5, MaxDOF: 7},
			`solved "m"/"ls" (cholesky): max |u| = 0.5 at dof 7`},
		{SolveResult{Model: "m", Set: "ls", Backend: "cg", Precond: "jacobi", Iterations: 42,
			Residual: 5e-09, MaxDisp: 0.5, MaxDOF: 7},
			`solved "m"/"ls" (cg+jacobi): 42 iterations, residual 5e-09; max |u| = 0.5 at dof 7`},
		{SolveResult{Model: "m", Set: "ls", Backend: "cg", Parallel: 4, Iterations: 10, HaloWords: 100,
			Makespan: 1000, MaxDisp: 0.5, MaxDOF: 7},
			`solved "m"/"ls" in parallel on 4 workers (cg): 10 iterations, 100 halo words, makespan 1000 cycles; max |u| = 0.5 at dof 7`},
		{ListResult{What: ListDB, Names: []string{"a", "b"}, Bytes: 128},
			"data base (2 models, 128 bytes): a b"},
		{ListResult{What: ListWorkspace, Names: []string{"a"}, Words: 64},
			"workspace (1 models, 64 words): a"},
		{ModelInfoResult{Name: "m", Nodes: 3, DOFs: 6, Fixed: 2,
			ElementCounts: map[string]int{"cst": 1, "bar": 2}},
			`model "m": 3 nodes, 6 dofs (2 fixed), elements: 1 cst, 2 bar`},
	}
	for _, c := range cases {
		if got := c.res.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.res, got, c.want)
		}
	}
	if !strings.Contains((HelpResult{}).String(), "solve <model> <set>") {
		t.Error("help text missing solve usage")
	}
}
