package command

import (
	"strconv"
	"strings"

	"repro/internal/errs"
	"repro/internal/linalg"
)

// ErrUsage aliases the shared errs.ErrUsage sentinel: every syntax error
// Parse returns wraps it, so errors.Is(err, command.ErrUsage) classifies
// malformed command lines.
var ErrUsage = errs.ErrUsage

// usage is the shared syntax-error constructor.
var usage = errs.Usage

// Parse lexes and parses one command line into its typed Command.  A
// blank line or a # comment parses to (nil, nil).  Syntax errors wrap
// ErrUsage; all name/object resolution is deferred to the interpreter.
func Parse(line string) (Command, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil, nil
	}
	verb := strings.ToLower(fields[0])
	args := fields[1:]
	switch verb {
	case "help":
		return Help{}, nil
	case "ping":
		if len(args) != 0 {
			return nil, usage("ping")
		}
		return Ping{}, nil
	case "stats":
		if len(args) != 0 {
			return nil, usage("stats")
		}
		return Stats{}, nil
	case "version":
		if len(args) != 0 {
			return nil, usage("version")
		}
		return Version{}, nil
	case "quit", "exit":
		return Quit{}, nil
	case "define":
		if len(args) != 2 || args[0] != "structure" {
			return nil, usage("define structure <name>")
		}
		return Define{Name: args[1]}, nil
	case "material":
		if len(args) != 4 {
			return nil, usage("material <E> <nu> <thickness> <area>")
		}
		vals, err := floats(args)
		if err != nil {
			return nil, err
		}
		return SetMaterial{E: vals[0], Nu: vals[1], T: vals[2], A: vals[3]}, nil
	case "generate":
		return parseGenerate(args)
	case "node":
		if len(args) != 3 {
			return nil, usage("node <model> <x> <y>")
		}
		x, err1 := strconv.ParseFloat(args[1], 64)
		y, err2 := strconv.ParseFloat(args[2], 64)
		if err1 != nil || err2 != nil {
			return nil, usage("node coordinates must be numeric")
		}
		return AddNode{Model: args[0], X: x, Y: y}, nil
	case "element":
		return parseElement(args)
	case "fix":
		if len(args) != 3 {
			return nil, usage("fix node|dof <model> <index>")
		}
		idx, err := strconv.Atoi(args[2])
		if err != nil {
			return nil, usage("fix index %q", args[2])
		}
		switch args[0] {
		case "node":
			return FixNode{Model: args[1], Node: idx}, nil
		case "dof":
			return FixDOF{Model: args[1], DOF: idx}, nil
		default:
			return nil, usage("fix node|dof")
		}
	case "loadset":
		if len(args) != 2 {
			return nil, usage("loadset <model> <name>")
		}
		return DefineLoadSet{Model: args[0], Set: args[1]}, nil
	case "load":
		return parseLoad(args)
	case "solve":
		return parseSolve(args)
	case "stresses":
		if len(args) != 1 {
			return nil, usage("stresses <model>")
		}
		return Stresses{Model: args[0]}, nil
	case "display":
		if len(args) != 2 {
			return nil, usage("display model|displacements|stresses <model>")
		}
		switch DisplayKind(args[0]) {
		case DisplayModel, DisplayDisplacements, DisplayStresses:
			return Display{What: DisplayKind(args[0]), Model: args[1]}, nil
		default:
			return nil, usage("display model|displacements|stresses")
		}
	case "store":
		if len(args) != 1 {
			return nil, usage("store <model>")
		}
		return Store{Model: args[0]}, nil
	case "retrieve":
		if len(args) != 1 {
			return nil, usage("retrieve <name>")
		}
		return Retrieve{Name: args[0]}, nil
	case "delete":
		if len(args) != 1 {
			return nil, usage("delete <name>")
		}
		return Delete{Name: args[0]}, nil
	case "list":
		if len(args) != 1 {
			return nil, usage("list db|workspace")
		}
		switch ListKind(args[0]) {
		case ListDB, ListWorkspace:
			return List{What: ListKind(args[0])}, nil
		default:
			return nil, usage("list db|workspace")
		}
	case "snapshot":
		if len(args) != 1 {
			return nil, usage("snapshot <file>")
		}
		return Snapshot{Path: args[0]}, nil
	case "restore":
		if len(args) != 1 {
			return nil, usage("restore <file>")
		}
		return Restore{Path: args[0]}, nil
	case "submit":
		return parseSubmit(args)
	case "status":
		id, err := jobID(args, "status <job>")
		if err != nil {
			return nil, err
		}
		return Status{ID: id}, nil
	case "wait":
		id, err := jobID(args, "wait <job>")
		if err != nil {
			return nil, err
		}
		return Wait{ID: id}, nil
	case "cancel":
		id, err := jobID(args, "cancel <job>")
		if err != nil {
			return nil, err
		}
		return Cancel{ID: id}, nil
	case "jobs":
		return parseJobs(args)
	default:
		return nil, usage("unknown command %q (try help)", verb)
	}
}

// parseGenerate parses the three generate sub-verbs.
func parseGenerate(args []string) (Command, error) {
	if len(args) < 2 {
		return nil, usage("generate grid|truss|bar <name> ...")
	}
	kind, name := args[0], args[1]
	rest := args[2:]
	switch kind {
	case "grid":
		if len(rest) < 4 {
			return nil, usage("generate grid <name> <nx> <ny> <w> <h> [clamp-left] [jitter <frac> <seed>]")
		}
		nx, err1 := strconv.Atoi(rest[0])
		ny, err2 := strconv.Atoi(rest[1])
		w, err3 := strconv.ParseFloat(rest[2], 64)
		h, err4 := strconv.ParseFloat(rest[3], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, usage("generate grid: numeric arguments required")
		}
		c := GenerateGrid{Name: name, NX: nx, NY: ny, W: w, H: h}
		for i := 4; i < len(rest); i++ {
			switch rest[i] {
			case "clamp-left":
				c.ClampLeft = true
			case "jitter":
				if i+2 >= len(rest) {
					return nil, usage("jitter <frac> <seed>")
				}
				f, err := strconv.ParseFloat(rest[i+1], 64)
				if err != nil {
					return nil, usage("jitter fraction %q", rest[i+1])
				}
				seed, err := strconv.ParseInt(rest[i+2], 10, 64)
				if err != nil {
					return nil, usage("jitter seed %q", rest[i+2])
				}
				c.Jitter, c.Seed = f, seed
				i += 2
			default:
				return nil, usage("unknown grid option %q", rest[i])
			}
		}
		return c, nil
	case "truss":
		if len(rest) != 3 {
			return nil, usage("generate truss <name> <bays> <baylen> <height>")
		}
		bays, err1 := strconv.Atoi(rest[0])
		bl, err2 := strconv.ParseFloat(rest[1], 64)
		ht, err3 := strconv.ParseFloat(rest[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, usage("generate truss: numeric arguments required")
		}
		return GenerateTruss{Name: name, Bays: bays, BayLen: bl, Height: ht}, nil
	case "bar":
		if len(rest) != 2 {
			return nil, usage("generate bar <name> <segments> <length>")
		}
		n, err1 := strconv.Atoi(rest[0])
		l, err2 := strconv.ParseFloat(rest[1], 64)
		if err1 != nil || err2 != nil {
			return nil, usage("generate bar: numeric arguments required")
		}
		return GenerateBar{Name: name, Segments: n, Length: l}, nil
	default:
		return nil, usage("generate grid|truss|bar")
	}
}

// parseElement parses the two element sub-verbs.
func parseElement(args []string) (Command, error) {
	if len(args) < 3 {
		return nil, usage("element bar|cst <model> <nodes...>")
	}
	switch args[0] {
	case "bar":
		if len(args) != 4 {
			return nil, usage("element bar <model> <n1> <n2>")
		}
		ns, err := ints(args[2:])
		if err != nil {
			return nil, err
		}
		return AddBar{Model: args[1], N1: ns[0], N2: ns[1]}, nil
	case "cst":
		if len(args) != 5 {
			return nil, usage("element cst <model> <n1> <n2> <n3>")
		}
		ns, err := ints(args[2:])
		if err != nil {
			return nil, err
		}
		return AddCST{Model: args[1], N1: ns[0], N2: ns[1], N3: ns[2]}, nil
	default:
		return nil, usage("element bar|cst")
	}
}

// parseLoad parses both load forms: a single dof load and the grid edge
// load.
func parseLoad(args []string) (Command, error) {
	if len(args) == 5 && args[2] == "endload" {
		fx, err1 := strconv.ParseFloat(args[3], 64)
		fy, err2 := strconv.ParseFloat(args[4], 64)
		if err1 != nil || err2 != nil {
			return nil, usage("endload forces must be numeric")
		}
		return EndLoad{Model: args[0], Set: args[1], FX: fx, FY: fy}, nil
	}
	if len(args) != 4 {
		return nil, usage("load <model> <set> <dof> <value>")
	}
	dof, err1 := strconv.Atoi(args[2])
	val, err2 := strconv.ParseFloat(args[3], 64)
	if err1 != nil || err2 != nil {
		return nil, usage("load dof/value must be numeric")
	}
	return AddLoad{Model: args[0], Set: args[1], DOF: dof, Value: val}, nil
}

// parseSolve parses the solve verb and its option list.  Backend and
// preconditioner names are validated against the live linalg registries,
// so a newly registered engine needs no parser change.
func parseSolve(args []string) (Command, error) {
	if len(args) < 2 {
		return nil, usage("solve <model> <set> [method <backend>] [precond <p>] [parallel <p>] [substructures <k>]")
	}
	c := Solve{Model: args[0], Set: args[1]}
	for i := 2; i < len(args); i++ {
		switch args[i] {
		case "method":
			if i+1 >= len(args) {
				return nil, usage("method %s", strings.Join(linalg.Backends(), "|"))
			}
			if !linalg.HasBackend(args[i+1]) {
				return nil, usage("unknown method %q (have %s)", args[i+1], strings.Join(linalg.Backends(), "|"))
			}
			c.Method = Method(args[i+1])
			i++
		case "precond":
			if i+1 >= len(args) {
				return nil, usage("precond %s", strings.Join(linalg.Preconds(), "|"))
			}
			if !linalg.HasPrecond(args[i+1]) {
				return nil, usage("unknown preconditioner %q (have %s)", args[i+1], strings.Join(linalg.Preconds(), "|"))
			}
			c.Precond = Precond(args[i+1])
			i++
		case "parallel":
			if i+1 >= len(args) {
				return nil, usage("parallel <p>")
			}
			p, err := strconv.Atoi(args[i+1])
			if err != nil || p < 1 {
				return nil, usage("parallel worker count %q", args[i+1])
			}
			c.Parallel = p
			i++
		case "substructures":
			if i+1 >= len(args) {
				return nil, usage("substructures <k>")
			}
			k, err := strconv.Atoi(args[i+1])
			if err != nil || k < 1 {
				return nil, usage("substructure count %q", args[i+1])
			}
			c.Substructures = k
			i++
		default:
			return nil, usage("unknown solve option %q", args[i])
		}
	}
	return c, nil
}

// parseSubmit parses the submit verb: the rest of the line is itself a
// command line, parsed recursively.  Job-control verbs (and quit) cannot
// run as jobs, so nesting is rejected here.
func parseSubmit(args []string) (Command, error) {
	if len(args) == 0 {
		return nil, usage("submit <command>")
	}
	inner, err := Parse(strings.Join(args, " "))
	if err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, usage("submit <command>")
	}
	switch inner.(type) {
	case Submit, Status, Wait, Cancel, Jobs, Quit:
		return nil, usage("%q cannot run as a job", strings.Fields(inner.String())[0])
	}
	return Submit{Cmd: inner}, nil
}

// parseJobs parses the jobs verb and its filter options.
func parseJobs(args []string) (Command, error) {
	c := Jobs{}
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "user":
			if i+1 >= len(args) {
				return nil, usage("jobs user <name>")
			}
			c.Owner = args[i+1]
			i++
		case "state":
			if i+1 >= len(args) {
				return nil, usage("jobs state %s", joinStates())
			}
			if !validState(JobState(args[i+1])) {
				return nil, usage("unknown job state %q (have %s)", args[i+1], joinStates())
			}
			c.State = JobState(args[i+1])
			i++
		default:
			return nil, usage("unknown jobs option %q", args[i])
		}
	}
	return c, nil
}

// validState reports whether s names a job lifecycle state.
func validState(s JobState) bool {
	for _, k := range JobStates() {
		if s == k {
			return true
		}
	}
	return false
}

// joinStates renders the state names for usage messages.
func joinStates() string {
	names := make([]string, 0, len(JobStates()))
	for _, k := range JobStates() {
		names = append(names, string(k))
	}
	return strings.Join(names, "|")
}

// jobID parses the single argument of a job-control verb: a job id,
// with or without the "job-" prefix its results render.
func jobID(args []string, use string) (int64, error) {
	if len(args) != 1 {
		return 0, usage("%s", use)
	}
	id, err := strconv.ParseInt(strings.TrimPrefix(args[0], "job-"), 10, 64)
	if err != nil || id < 1 {
		return 0, usage("job id %q", args[0])
	}
	return id, nil
}

// floats parses every field as a float64.
func floats(ss []string) ([]float64, error) {
	out := make([]float64, len(ss))
	for i, s := range ss {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, usage("numeric argument expected, got %q", s)
		}
		out[i] = v
	}
	return out, nil
}

// ints parses every field as an int.
func ints(ss []string) ([]int, error) {
	out := make([]int, len(ss))
	for i, s := range ss {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, usage("integer argument expected, got %q", s)
		}
		out[i] = v
	}
	return out, nil
}
