package command

import (
	"bytes"
	"encoding/json"
	"reflect"
)

// The typed command AST is also the wire schema: a Command or Result
// crosses a connection as a JSON envelope tagging the verb (or result
// kind) plus the struct's own fields.  MarshalCommand/UnmarshalCommand
// and MarshalResult/UnmarshalResult are the codec; both directions are
// strict (unknown fields and unknown kinds are errors), and a decoded
// value round-trips to the identical struct, so a network client's
// Result.String() rendering is byte-identical to local execution.

// Release is the FEM-2 software release the version verb reports.
const Release = "0.9.0"

// ProtocolVersion is the wire protocol revision.  A client and server
// must agree on it exactly; the version verb and the connection
// handshake both carry it.  Revision 2 added the snapshot/restore
// verbs, the Storage field on version replies, and the storage field
// of the Welcome envelope.  Revision 3 added the "degraded" error code
// and the health (Degraded) fields on ping/version replies and the
// Welcome envelope.  Revision 4 added the stats verb and the optional
// uptime_s fields on ping/version replies and the Welcome envelope;
// the uptime fields are JSON-only (never rendered), so every healthy
// rev-3 rendering is byte-identical under rev 4.  Revision 5 added the
// "not-leader" error code (with its leader field) and the optional
// role/leader fields on the Welcome envelope; all are JSON-only and
// omitted outside a cluster, so every single-daemon rev-4 exchange is
// byte-identical under rev 5.
const ProtocolVersion = 5

// cmdEnvelope is the wire form of one Command.  Submit nests its wrapped
// command as another envelope under "cmd"; every other verb carries its
// struct fields under "body".
type cmdEnvelope struct {
	Verb string          `json:"verb"`
	Body json.RawMessage `json:"body,omitempty"`
	Cmd  json.RawMessage `json:"cmd,omitempty"`
}

// resEnvelope is the wire form of one Result.
type resEnvelope struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body,omitempty"`
}

// commandVerbs maps wire verb names onto command struct types.  Submit
// is absent: its nested command field is an interface, so the codec
// handles it explicitly.
var commandVerbs = map[string]reflect.Type{
	"help":           reflect.TypeOf(Help{}),
	"ping":           reflect.TypeOf(Ping{}),
	"version":        reflect.TypeOf(Version{}),
	"quit":           reflect.TypeOf(Quit{}),
	"define":         reflect.TypeOf(Define{}),
	"material":       reflect.TypeOf(SetMaterial{}),
	"generate-grid":  reflect.TypeOf(GenerateGrid{}),
	"generate-truss": reflect.TypeOf(GenerateTruss{}),
	"generate-bar":   reflect.TypeOf(GenerateBar{}),
	"node":           reflect.TypeOf(AddNode{}),
	"element-bar":    reflect.TypeOf(AddBar{}),
	"element-cst":    reflect.TypeOf(AddCST{}),
	"fix-node":       reflect.TypeOf(FixNode{}),
	"fix-dof":        reflect.TypeOf(FixDOF{}),
	"loadset":        reflect.TypeOf(DefineLoadSet{}),
	"load":           reflect.TypeOf(AddLoad{}),
	"endload":        reflect.TypeOf(EndLoad{}),
	"solve":          reflect.TypeOf(Solve{}),
	"stresses":       reflect.TypeOf(Stresses{}),
	"display":        reflect.TypeOf(Display{}),
	"store":          reflect.TypeOf(Store{}),
	"retrieve":       reflect.TypeOf(Retrieve{}),
	"delete":         reflect.TypeOf(Delete{}),
	"list":           reflect.TypeOf(List{}),
	"snapshot":       reflect.TypeOf(Snapshot{}),
	"restore":        reflect.TypeOf(Restore{}),
	"status":         reflect.TypeOf(Status{}),
	"wait":           reflect.TypeOf(Wait{}),
	"cancel":         reflect.TypeOf(Cancel{}),
	"jobs":           reflect.TypeOf(Jobs{}),
	"stats":          reflect.TypeOf(Stats{}),
}

// resultKinds maps wire result kinds onto result struct types.
var resultKinds = map[string]reflect.Type{
	"help":           reflect.TypeOf(HelpResult{}),
	"ping":           reflect.TypeOf(PingResult{}),
	"version":        reflect.TypeOf(VersionResult{}),
	"quit":           reflect.TypeOf(QuitResult{}),
	"define":         reflect.TypeOf(DefineResult{}),
	"material":       reflect.TypeOf(MaterialResult{}),
	"generate":       reflect.TypeOf(GenerateResult{}),
	"node":           reflect.TypeOf(NodeResult{}),
	"element":        reflect.TypeOf(ElementResult{}),
	"fix":            reflect.TypeOf(FixResult{}),
	"loadset":        reflect.TypeOf(LoadSetResult{}),
	"load":           reflect.TypeOf(LoadResult{}),
	"endload":        reflect.TypeOf(EndLoadResult{}),
	"solve":          reflect.TypeOf(SolveResult{}),
	"stresses":       reflect.TypeOf(StressesResult{}),
	"model-info":     reflect.TypeOf(ModelInfoResult{}),
	"displacements":  reflect.TypeOf(DisplacementsResult{}),
	"stress-summary": reflect.TypeOf(StressSummaryResult{}),
	"store":          reflect.TypeOf(StoreResult{}),
	"retrieve":       reflect.TypeOf(RetrieveResult{}),
	"delete":         reflect.TypeOf(DeleteResult{}),
	"list":           reflect.TypeOf(ListResult{}),
	"snapshot":       reflect.TypeOf(SnapshotResult{}),
	"restore":        reflect.TypeOf(RestoreResult{}),
	"submit":         reflect.TypeOf(SubmitResult{}),
	"job-status":     reflect.TypeOf(JobStatusResult{}),
	"jobs":           reflect.TypeOf(JobsResult{}),
	"cancel":         reflect.TypeOf(CancelResult{}),
	"stats":          reflect.TypeOf(StatsResult{}),
}

// verbOfCommand and kindOfResult are the marshal-direction inverses.
var (
	verbOfCommand = invert(commandVerbs)
	kindOfResult  = invert(resultKinds)
)

func invert(m map[string]reflect.Type) map[reflect.Type]string {
	out := make(map[reflect.Type]string, len(m))
	for k, t := range m {
		out[t] = k
	}
	return out
}

// Verb returns a command's wire verb name ("solve", "ping", …; "submit"
// for Submit, "?" for a type the codec does not know).  Per-verb metric
// families (job.latency.*, server.request.*) key on it, so the metric
// vocabulary and the wire vocabulary are the same vocabulary.
func Verb(cmd Command) string {
	if cmd == nil {
		return "?"
	}
	cmd = Value(cmd)
	if _, ok := cmd.(Submit); ok {
		return "submit"
	}
	if verb, ok := verbOfCommand[reflect.TypeOf(cmd)]; ok {
		return verb
	}
	return "?"
}

// MarshalCommand encodes a command as its wire envelope.  Pointer
// commands are dereferenced first, exactly as Do dispatches them.
func MarshalCommand(cmd Command) ([]byte, error) {
	if cmd == nil {
		return nil, usage("wire: nil command")
	}
	cmd = Value(cmd)
	if sub, ok := cmd.(Submit); ok {
		inner, err := MarshalCommand(sub.Cmd)
		if err != nil {
			return nil, err
		}
		return json.Marshal(cmdEnvelope{Verb: "submit", Cmd: inner})
	}
	verb, ok := verbOfCommand[reflect.TypeOf(cmd)]
	if !ok {
		return nil, usage("wire: unknown command type %T", cmd)
	}
	body, err := json.Marshal(cmd)
	if err != nil {
		return nil, err
	}
	return json.Marshal(cmdEnvelope{Verb: verb, Body: body})
}

// UnmarshalCommand decodes a wire envelope back into its typed Command.
// Unknown verbs and unknown fields are usage errors; the submittability
// restriction the parser enforces (no job-control or quit inside
// submit) is enforced here too, so a hand-built frame cannot smuggle an
// unsubmittable command into the scheduler.
func UnmarshalCommand(data []byte) (Command, error) {
	var env cmdEnvelope
	if err := strictUnmarshal(data, &env); err != nil {
		return nil, usage("wire: bad command envelope: %v", err)
	}
	if env.Verb == "submit" {
		inner, err := UnmarshalCommand(env.Cmd)
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case Submit, Status, Wait, Cancel, Jobs, Quit:
			return nil, usage("%q cannot run as a job", env.Verb)
		}
		return Submit{Cmd: inner}, nil
	}
	typ, ok := commandVerbs[env.Verb]
	if !ok {
		return nil, usage("wire: unknown verb %q", env.Verb)
	}
	ptr := reflect.New(typ)
	if len(env.Body) > 0 {
		if err := strictUnmarshal(env.Body, ptr.Interface()); err != nil {
			return nil, usage("wire: bad %q body: %v", env.Verb, err)
		}
	}
	return ptr.Elem().Interface().(Command), nil
}

// MarshalResult encodes a result as its wire envelope.  The interpreter
// returns results as pointers; both spellings encode identically.
func MarshalResult(r Result) ([]byte, error) {
	if r == nil {
		return nil, usage("wire: nil result")
	}
	v := reflect.ValueOf(r)
	if v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return nil, usage("wire: nil result")
		}
		v = v.Elem()
	}
	kind, ok := kindOfResult[v.Type()]
	if !ok {
		return nil, usage("wire: unknown result type %T", r)
	}
	body, err := json.Marshal(v.Interface())
	if err != nil {
		return nil, err
	}
	return json.Marshal(resEnvelope{Kind: kind, Body: body})
}

// UnmarshalResult decodes a wire envelope back into its typed Result,
// in the pointer form the interpreter returns.
func UnmarshalResult(data []byte) (Result, error) {
	var env resEnvelope
	if err := strictUnmarshal(data, &env); err != nil {
		return nil, usage("wire: bad result envelope: %v", err)
	}
	typ, ok := resultKinds[env.Kind]
	if !ok {
		return nil, usage("wire: unknown result kind %q", env.Kind)
	}
	ptr := reflect.New(typ)
	if len(env.Body) > 0 {
		if err := strictUnmarshal(env.Body, ptr.Interface()); err != nil {
			return nil, usage("wire: bad %q body: %v", env.Kind, err)
		}
	}
	return ptr.Interface().(Result), nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, so schema skew
// between client and server surfaces as an error instead of silently
// dropping data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
