// Package command is the typed command layer of the FEM-2 application
// user's virtual machine.  It defines a Command AST with one struct per
// verb of the workstation language, a Parse lexer/parser from a command
// line to the AST, and typed Result values whose String renderings are
// exactly the REPL's display output.
//
// The interactive shell is a thin adapter over this layer: a REPL line
// is Parsed into a Command, interpreted by auvm.Session.Do, and the
// typed Result rendered back to text.  Programmatic callers — the
// experiment runners, multi-user servers, future RPC front ends — skip
// the text round trip entirely and work with the structs:
//
//	res, err := sess.Do(ctx, command.Solve{Model: "wing", Set: "cruise", Parallel: 8})
//	sr := res.(*command.SolveResult) // typed fields, no output parsing
//
// Every Command renders back to its canonical command line via String,
// and Parse(cmd.String()) reproduces the command, so the two styles are
// interchangeable.  Names are single whitespace-free tokens (the lexer
// splits on whitespace).
package command

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Command is one typed AUVM request: a verb plus its arguments, built
// either by Parse from a command line or directly as a struct literal.
// String renders the canonical command-line form.
type Command interface {
	fmt.Stringer
	// isCommand restricts the interface to this package's verb structs.
	isCommand()
}

// Method selects a solver backend by registry name (see
// linalg.Backends).  The zero value selects the interpreter's default
// (banded Cholesky).  The parser validates names against the live
// registry, so a newly registered backend is immediately speakable.
type Method string

// The built-in solver backends of the solve verb.
const (
	MethodCholesky    Method = "cholesky"
	MethodCholeskyRCM Method = "cholesky-rcm"
	MethodCholeskyEnv Method = "cholesky-env"
	MethodCG          Method = "cg"
	MethodSOR         Method = "sor"
	MethodJacobi      Method = "jacobi"
)

// Precond selects a preconditioner by registry name for iterative
// backends (see linalg.Preconds).  The zero value applies none.
type Precond string

// The built-in preconditioners of the solve verb.
const (
	PrecondJacobi Precond = "jacobi"
	PrecondSSOR   Precond = "ssor"
)

// Help requests the command-language summary.
type Help struct{}

// Ping is the round-trip health check: the interpreter answers "pong"
// immediately, touching no state.  Network clients and CI probes use it
// to confirm a live session end to end.
type Ping struct{}

// Version reports the software release and wire protocol revision the
// serving side speaks.
type Version struct{}

// Stats returns a point-in-time snapshot of the serving system's live
// metrics — job throughput, queue depth, cache hit rates, per-verb
// latency histograms (see internal/obs).  Read-only and answerable
// while draining or degraded, like ping.
type Stats struct{}

// Quit ends the session; the interpreter answers with ErrQuit.
type Quit struct{}

// Define creates an empty structure model in the workspace.
type Define struct {
	// Name is the new model's name.
	Name string
}

// SetMaterial sets the session's current material, applied by subsequent
// generate and element commands.
type SetMaterial struct {
	// E is Young's modulus, Nu Poisson's ratio, T the plane-stress
	// thickness, and A the bar cross-section area.
	E, Nu, T, A float64
}

// GenerateGrid generates a rectangular plane-stress grid of CST
// elements.
type GenerateGrid struct {
	// Name is the model name.
	Name string
	// NX, NY count grid cells; W, H are the overall dimensions.
	NX, NY int
	W, H   float64
	// ClampLeft fixes the left edge.
	ClampLeft bool
	// Jitter perturbs interior nodes by the given fraction of the cell
	// size under Seed; zero means a regular grid.
	Jitter float64
	Seed   int64
}

// GenerateTruss generates a triangulated cantilever truss of bar
// elements.
type GenerateTruss struct {
	// Name is the model name.
	Name string
	// Bays counts truss bays; BayLen and Height size each bay.
	Bays           int
	BayLen, Height float64
}

// GenerateBar generates a uniaxial bar chain.
type GenerateBar struct {
	// Name is the model name.
	Name string
	// Segments counts bar segments over the total Length.
	Segments int
	Length   float64
}

// AddNode appends a node to a model.
type AddNode struct {
	// Model names the workspace model; X, Y are the coordinates.
	Model string
	X, Y  float64
}

// AddBar appends a two-node bar element to a model.
type AddBar struct {
	// Model names the workspace model; N1, N2 are node indices.
	Model  string
	N1, N2 int
}

// AddCST appends a three-node constant-strain-triangle element to a
// model.
type AddCST struct {
	// Model names the workspace model; N1, N2, N3 are node indices.
	Model      string
	N1, N2, N3 int
}

// FixNode fixes both degrees of freedom of a node.
type FixNode struct {
	// Model names the workspace model; Node is the node index.
	Model string
	Node  int
}

// FixDOF fixes a single degree of freedom.
type FixDOF struct {
	// Model names the workspace model; DOF is the dof index.
	Model string
	DOF   int
}

// DefineLoadSet creates an empty named load set on a model.
type DefineLoadSet struct {
	// Model names the workspace model; Set the new load set.
	Model, Set string
}

// AddLoad appends one nodal load to a load set (creating the set if
// needed).
type AddLoad struct {
	// Model and Set name the target load set; DOF and Value give the
	// applied load.
	Model, Set string
	DOF        int
	Value      float64
}

// EndLoad spreads a force over the right edge of a generated grid model.
type EndLoad struct {
	// Model and Set name the target load set; FX, FY are the total edge
	// force components.
	Model, Set string
	FX, FY     float64
}

// Solve solves a model/load-set pair for displacements.  Exactly one
// strategy applies: Substructures > 0 condenses that many substructures
// in parallel; otherwise Parallel > 0 runs distributed CG on that many
// simulated workers; otherwise the sequential Method runs (zero value =
// Cholesky).
type Solve struct {
	// Model and Set name the system to solve.
	Model, Set string
	// Method selects the solver backend ("" = cholesky).
	Method Method
	// Precond selects the preconditioner for iterative backends ("" =
	// none).
	Precond Precond
	// Parallel, when positive, solves with the backend's distributed
	// variant on that many simulated workers.
	Parallel int
	// Substructures, when positive, partitions the model into that many
	// vertical bands and condenses them in parallel.
	Substructures int
}

// Stresses recovers element stresses from a model's latest solution.
type Stresses struct {
	// Model names the solved workspace model.
	Model string
}

// DisplayKind selects what the display verb shows.
type DisplayKind string

// The display targets.
const (
	DisplayModel         DisplayKind = "model"
	DisplayDisplacements DisplayKind = "displacements"
	DisplayStresses      DisplayKind = "stresses"
)

// Display summarises a model, its displacements, or its stresses.
type Display struct {
	// What selects the summary; Model names the workspace model.
	What  DisplayKind
	Model string
}

// Store serializes a workspace model and its load sets into the shared
// database.
type Store struct {
	// Model names the workspace model.
	Model string
}

// Retrieve copies a model and its load sets from the shared database
// into the workspace.
type Retrieve struct {
	// Name is the stored model's name.
	Name string
}

// Delete removes a model from the shared database.
type Delete struct {
	// Name is the stored model's name.
	Name string
}

// ListKind selects what the list verb enumerates.
type ListKind string

// The list targets.
const (
	ListDB        ListKind = "db"
	ListWorkspace ListKind = "workspace"
)

// List enumerates the shared database or the session workspace.
type List struct {
	// What selects the store to enumerate.
	What ListKind
}

// Snapshot writes the session's entire workspace — every model with
// its load sets, latest solution and stresses, plus the interpreter
// state — to a file the restore verb can load into a fresh session.
// The file is written on the serving side (the daemon's filesystem
// when issued over the wire).
type Snapshot struct {
	// Path is the snapshot file to write.
	Path string
}

// Restore loads a snapshot file into the session's workspace,
// overwriting models of the same name.
type Restore struct {
	// Path is the snapshot file to read.
	Path string
}

// JobState names a job lifecycle state in the command language.  These
// are the canonical names: the jobs verb's state filter accepts them,
// job results render them, and internal/job maps its State enum onto
// them, so the command layer and the scheduler always agree.
type JobState string

// The job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// JobStates returns every job state name, lifecycle order.
func JobStates() []JobState {
	return []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled}
}

// Submit runs another command as an asynchronous job: the interpreter
// answers immediately with a job id while the wrapped command executes
// on the system's scheduler.  Job-control verbs and quit cannot
// themselves be submitted.
type Submit struct {
	// Cmd is the wrapped command to run asynchronously.
	Cmd Command
}

// Status reports one job's state and accounting.
type Status struct {
	// ID is the job id.
	ID int64
}

// Wait blocks until a job finishes and yields the wrapped command's own
// result — so submit…wait displays exactly what the synchronous command
// would have.
type Wait struct {
	// ID is the job id.
	ID int64
}

// Cancel stops a queued or running job.
type Cancel struct {
	// ID is the job id.
	ID int64
}

// Jobs enumerates the scheduler's jobs, optionally filtered by owner
// and state.
type Jobs struct {
	// Owner, when non-empty, restricts the listing to one user.
	Owner string
	// State, when non-empty, restricts the listing to one lifecycle
	// state.
	State JobState
}

func (Help) isCommand()          {}
func (Ping) isCommand()          {}
func (Version) isCommand()       {}
func (Quit) isCommand()          {}
func (Define) isCommand()        {}
func (SetMaterial) isCommand()   {}
func (GenerateGrid) isCommand()  {}
func (GenerateTruss) isCommand() {}
func (GenerateBar) isCommand()   {}
func (AddNode) isCommand()       {}
func (AddBar) isCommand()        {}
func (AddCST) isCommand()        {}
func (FixNode) isCommand()       {}
func (FixDOF) isCommand()        {}
func (DefineLoadSet) isCommand() {}
func (AddLoad) isCommand()       {}
func (EndLoad) isCommand()       {}
func (Solve) isCommand()         {}
func (Stresses) isCommand()      {}
func (Display) isCommand()       {}
func (Store) isCommand()         {}
func (Retrieve) isCommand()      {}
func (Delete) isCommand()        {}
func (List) isCommand()          {}
func (Snapshot) isCommand()      {}
func (Restore) isCommand()       {}
func (Submit) isCommand()        {}
func (Status) isCommand()        {}
func (Wait) isCommand()          {}
func (Cancel) isCommand()        {}
func (Jobs) isCommand()          {}
func (Stats) isCommand()         {}

// Value returns the value form of cmd: a pointer command is dereferenced
// so the value and pointer spellings dispatch identically everywhere a
// command is interpreted (callers naturally write &fem2.SolveCommand{…}
// since every result comes back as a pointer).
func Value(cmd Command) Command {
	if v := reflect.ValueOf(cmd); v.Kind() == reflect.Pointer && !v.IsNil() {
		if c, ok := v.Elem().Interface().(Command); ok {
			return c
		}
	}
	return cmd
}

// g renders a float in the shortest form that round-trips through Parse.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the canonical command line.
func (Help) String() string { return "help" }

// String renders the canonical command line.
func (Ping) String() string { return "ping" }

// String renders the canonical command line.
func (Version) String() string { return "version" }

// String renders the canonical command line.
func (Stats) String() string { return "stats" }

// String renders the canonical command line.
func (Quit) String() string { return "quit" }

// String renders the canonical command line.
func (c Define) String() string { return "define structure " + c.Name }

// String renders the canonical command line.
func (c SetMaterial) String() string {
	return fmt.Sprintf("material %s %s %s %s", g(c.E), g(c.Nu), g(c.T), g(c.A))
}

// String renders the canonical command line.
func (c GenerateGrid) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "generate grid %s %d %d %s %s", c.Name, c.NX, c.NY, g(c.W), g(c.H))
	if c.ClampLeft {
		b.WriteString(" clamp-left")
	}
	if c.Jitter != 0 || c.Seed != 0 {
		fmt.Fprintf(&b, " jitter %s %d", g(c.Jitter), c.Seed)
	}
	return b.String()
}

// String renders the canonical command line.
func (c GenerateTruss) String() string {
	return fmt.Sprintf("generate truss %s %d %s %s", c.Name, c.Bays, g(c.BayLen), g(c.Height))
}

// String renders the canonical command line.
func (c GenerateBar) String() string {
	return fmt.Sprintf("generate bar %s %d %s", c.Name, c.Segments, g(c.Length))
}

// String renders the canonical command line.
func (c AddNode) String() string {
	return fmt.Sprintf("node %s %s %s", c.Model, g(c.X), g(c.Y))
}

// String renders the canonical command line.
func (c AddBar) String() string {
	return fmt.Sprintf("element bar %s %d %d", c.Model, c.N1, c.N2)
}

// String renders the canonical command line.
func (c AddCST) String() string {
	return fmt.Sprintf("element cst %s %d %d %d", c.Model, c.N1, c.N2, c.N3)
}

// String renders the canonical command line.
func (c FixNode) String() string { return fmt.Sprintf("fix node %s %d", c.Model, c.Node) }

// String renders the canonical command line.
func (c FixDOF) String() string { return fmt.Sprintf("fix dof %s %d", c.Model, c.DOF) }

// String renders the canonical command line.
func (c DefineLoadSet) String() string { return fmt.Sprintf("loadset %s %s", c.Model, c.Set) }

// String renders the canonical command line.
func (c AddLoad) String() string {
	return fmt.Sprintf("load %s %s %d %s", c.Model, c.Set, c.DOF, g(c.Value))
}

// String renders the canonical command line.
func (c EndLoad) String() string {
	return fmt.Sprintf("load %s %s endload %s %s", c.Model, c.Set, g(c.FX), g(c.FY))
}

// String renders the canonical command line.
func (c Solve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "solve %s %s", c.Model, c.Set)
	if c.Method != "" {
		fmt.Fprintf(&b, " method %s", c.Method)
	}
	if c.Precond != "" {
		fmt.Fprintf(&b, " precond %s", c.Precond)
	}
	if c.Parallel > 0 {
		fmt.Fprintf(&b, " parallel %d", c.Parallel)
	}
	if c.Substructures > 0 {
		fmt.Fprintf(&b, " substructures %d", c.Substructures)
	}
	return b.String()
}

// String renders the canonical command line.
func (c Stresses) String() string { return "stresses " + c.Model }

// String renders the canonical command line.
func (c Display) String() string { return fmt.Sprintf("display %s %s", c.What, c.Model) }

// String renders the canonical command line.
func (c Store) String() string { return "store " + c.Model }

// String renders the canonical command line.
func (c Retrieve) String() string { return "retrieve " + c.Name }

// String renders the canonical command line.
func (c Delete) String() string { return "delete " + c.Name }

// String renders the canonical command line.
func (c List) String() string { return fmt.Sprintf("list %s", c.What) }

// String renders the canonical command line.
func (c Snapshot) String() string { return "snapshot " + c.Path }

// String renders the canonical command line.
func (c Restore) String() string { return "restore " + c.Path }

// String renders the canonical command line.
func (c Submit) String() string { return "submit " + c.Cmd.String() }

// String renders the canonical command line.
func (c Status) String() string { return fmt.Sprintf("status job-%d", c.ID) }

// String renders the canonical command line.
func (c Wait) String() string { return fmt.Sprintf("wait job-%d", c.ID) }

// String renders the canonical command line.
func (c Cancel) String() string { return fmt.Sprintf("cancel job-%d", c.ID) }

// String renders the canonical command line.
func (c Jobs) String() string {
	var b strings.Builder
	b.WriteString("jobs")
	if c.Owner != "" {
		fmt.Fprintf(&b, " user %s", c.Owner)
	}
	if c.State != "" {
		fmt.Fprintf(&b, " state %s", c.State)
	}
	return b.String()
}
