package command

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one typed AUVM reply.  String renders the exact display line
// the REPL shows, so the interactive shell is result.String() and
// nothing more; programmatic callers read the struct fields instead.
type Result interface {
	fmt.Stringer
	// isResult restricts the interface to this package's result structs.
	isResult()
}

// HelpText is the command-language summary the help verb displays.
const HelpText = `FEM-2 workstation commands:
  define structure <name>
  material <E> <nu> <thickness> <area>
  generate grid <name> <nx> <ny> <w> <h> [clamp-left] [jitter <frac> <seed>]
  generate truss <name> <bays> <baylen> <height>
  generate bar <name> <segments> <length>
  node <model> <x> <y>
  element bar <model> <n1> <n2>
  element cst <model> <n1> <n2> <n3>
  fix node <model> <n> | fix dof <model> <d>
  loadset <model> <name>
  load <model> <set> <dof> <value>
  load <model> <set> endload <fx> <fy>   (grid models)
  solve <model> <set> [method cholesky|cholesky-rcm|cholesky-env|cg|sor|jacobi] [precond jacobi|ssor] [parallel <p>] [substructures <k>]
  stresses <model>
  display model|displacements|stresses <model>
  store <model> | retrieve <name> | delete <name>
  list db | list workspace
  snapshot <file> | restore <file>       (save/load the whole workspace)
  submit <command>                       (run asynchronously, returns a job id)
  status <job> | wait <job> | cancel <job>
  jobs [user <name>] [state queued|running|done|failed|cancelled]
  ping | version | stats
  help | quit`

// HelpResult is the reply to Help.
type HelpResult struct{}

// PingResult is the reply to Ping.
type PingResult struct {
	// Degraded reports that the system's store has gone read-only (see
	// store.Guard); false on a healthy system, so pre-degradation
	// renderings are unchanged.
	Degraded bool
	// UptimeSeconds is whole seconds since the serving system started
	// (rev 4).  Machine-readable only: String never renders it, so the
	// "pong" line stays byte-identical to rev 3; zero is omitted on the
	// wire.
	UptimeSeconds int64 `json:"uptime_s,omitempty"`
}

// VersionResult is the reply to Version.
type VersionResult struct {
	// Server names the serving program ("fem2" for a local session, the
	// daemon echoes the same — the command surface is identical).
	Server string
	// Release is the software release.
	Release string
	// Protocol is the wire protocol revision (see ProtocolVersion).
	Protocol int
	// Storage is the active storage backend ("mem", "file"); "" on
	// replies from releases that predate durable storage.
	Storage string
	// Degraded reports read-only degraded mode, as on PingResult.
	Degraded bool
	// UptimeSeconds is whole seconds since the serving system started
	// (rev 4); JSON-only and never rendered, as on PingResult.
	UptimeSeconds int64 `json:"uptime_s,omitempty"`
}

// QuitResult is the reply to Quit (delivered alongside ErrQuit).
type QuitResult struct{}

// DefineResult is the reply to Define.
type DefineResult struct {
	// Name is the new model's name.
	Name string
}

// MaterialResult is the reply to SetMaterial: the material now in
// effect.
type MaterialResult struct {
	// E, Nu, T, A echo the session's current material.
	E, Nu, T, A float64
}

// GenerateResult is the reply to the generate verbs.
type GenerateResult struct {
	// Kind is "grid", "truss", or "bar"; Name is the model name.
	Kind, Name string
	// Nodes and Elements count the generated mesh (Elements counts
	// members for a truss and segments for a bar).
	Nodes, Elements int
}

// NodeResult is the reply to AddNode.
type NodeResult struct {
	// ID is the new node's index; X, Y its coordinates.
	ID   int
	X, Y float64
}

// ElementResult is the reply to AddBar and AddCST.
type ElementResult struct {
	// Kind is "bar" or "cst"; Model the owning model; Nodes the element
	// connectivity.
	Kind, Model string
	Nodes       []int
}

// FixResult is the reply to FixNode and FixDOF.
type FixResult struct {
	// What is "node" or "dof"; Index the fixed index.
	What  string
	Index int
}

// LoadSetResult is the reply to DefineLoadSet.
type LoadSetResult struct {
	// Model and Set name the created load set.
	Model, Set string
}

// LoadResult is the reply to AddLoad.
type LoadResult struct {
	// DOF and Value echo the applied load; Entries counts the set's
	// loads after the append.
	DOF     int
	Value   float64
	Entries int
}

// EndLoadResult is the reply to EndLoad.
type EndLoadResult struct {
	// Set names the load set; Entries counts the edge nodes loaded.
	Set     string
	Entries int
}

// SolveResult is the reply to Solve.
type SolveResult struct {
	// Model and Set name the solved system.
	Model, Set string
	// Backend is the solver engine's registry name.  For a
	// substructured solve it echoes the requested backend while the
	// condensation path performs its own direct solves — matching the
	// REPL's historical display.
	Backend string
	// Precond is the preconditioner applied, "" when none.
	Precond string
	// Parallel is the worker count of a parallel solve, 0 otherwise.
	Parallel int
	// Substructures is the band count of a substructured solve, 0
	// otherwise.
	Substructures int
	// Iterations counts solver iterations, 0 for direct solves.
	Iterations int
	// Residual is the relative residual of the reduced system (0 where
	// not measured, e.g. substructured solves).
	Residual float64
	// HaloWords and Makespan are the simulated-machine statistics of a
	// parallel solve.
	HaloWords int64
	Makespan  int64
	// Flops counts the solve's floating point work (assembly plus
	// solver) — the per-job attribution the job service reports.
	Flops int64
	// Refactored reports whether a direct solve computed a fresh
	// factorisation; false when the per-model factor cache served a warm
	// factor, so the solve cost one triangular solve.  Iterative,
	// parallel, and substructured solves always report true.
	Refactored bool
	// MaxDisp is the largest displacement magnitude, at dof MaxDOF.
	MaxDisp float64
	MaxDOF  int
}

// Engine renders the backend+precond pair ("cg+jacobi", "cholesky").
func (r SolveResult) Engine() string {
	if r.Precond != "" {
		return r.Backend + "+" + r.Precond
	}
	return r.Backend
}

// StressesResult is the reply to Stresses.
type StressesResult struct {
	// Model names the model; Elements counts its elements.
	Model    string
	Elements int
	// MaxVonMises is the worst element stress, in element MaxElem.
	MaxVonMises float64
	MaxElem     int
}

// ModelInfoResult is the reply to Display{What: DisplayModel}.
type ModelInfoResult struct {
	// Name is the model name.
	Name string
	// Nodes, DOFs, and Fixed count the mesh.
	Nodes, DOFs, Fixed int
	// ElementCounts maps element kind to count.
	ElementCounts map[string]int
}

// DisplacementsResult is the reply to Display{What: DisplayDisplacements}.
type DisplacementsResult struct {
	// Model names the solved model.
	Model string
	// MaxDisp is the largest displacement magnitude, at dof MaxDOF;
	// Norm is the displacement vector's infinity norm.
	MaxDisp float64
	MaxDOF  int
	Norm    float64
}

// StressSummaryResult is the reply to Display{What: DisplayStresses}.
type StressSummaryResult struct {
	// Model names the stressed model; Elements counts its elements.
	Model    string
	Elements int
	// MaxVonMises is the worst element stress, in element MaxElem.
	MaxVonMises float64
	MaxElem     int
}

// StoreResult is the reply to Store.
type StoreResult struct {
	// Name is the stored model; LoadSets counts the sets stored with it.
	Name     string
	LoadSets int
}

// RetrieveResult is the reply to Retrieve.
type RetrieveResult struct {
	// Name is the retrieved model; LoadSets counts the sets retrieved
	// with it.
	Name     string
	LoadSets int
}

// DeleteResult is the reply to Delete.
type DeleteResult struct {
	// Name is the deleted model's name.
	Name string
}

// ListResult is the reply to List.
type ListResult struct {
	// What is the enumerated store.
	What ListKind
	// Names are the model names, sorted.
	Names []string
	// Bytes is the database's serialized size (ListDB only).
	Bytes int64
	// Words is the workspace's word footprint (ListWorkspace only).
	Words int64
}

// SnapshotResult is the reply to Snapshot.
type SnapshotResult struct {
	// Path is the snapshot file written (on the serving side).
	Path string
	// Models counts the workspace models captured.
	Models int
	// Bytes is the snapshot file's size.
	Bytes int64
}

// RestoreResult is the reply to Restore.
type RestoreResult struct {
	// Path is the snapshot file read (on the serving side).
	Path string
	// Models counts the models loaded into the workspace.
	Models int
}

// SubmitResult is the reply to Submit.
type SubmitResult struct {
	// ID is the new job's id.
	ID int64
	// State is the job's state at reply time: "queued" for heavy
	// commands handed to the worker pool, a terminal state for cheap
	// commands the scheduler ran inline.
	State JobState
	// Cmd is the submitted command's canonical line.
	Cmd string
}

// JobStatusResult is the reply to Status.
type JobStatusResult struct {
	// ID is the job id; Owner the submitting user.
	ID    int64
	Owner string
	// State is the job's lifecycle state.
	State JobState
	// Cmd is the job's command, canonical line.
	Cmd string
	// Error is the failure message of a failed job, "" otherwise.
	Error string
	// Ops, Flops, and Cycles are the job's own accounting: AUVM
	// operations charged while it ran, solver flops, and simulated
	// machine cycles (parallel solves only).
	Ops, Flops, Cycles int64
}

// JobRow is one line of a JobsResult.
type JobRow struct {
	// ID is the job id; Owner the submitting user.
	ID    int64
	Owner string
	// State is the job's lifecycle state.
	State JobState
	// Cmd is the job's command, canonical line.
	Cmd string
}

// JobsResult is the reply to Jobs.
type JobsResult struct {
	// Rows are the matching jobs, ascending id.
	Rows []JobRow
}

// CancelResult is the reply to Cancel.
type CancelResult struct {
	// ID is the job id.
	ID int64
	// State is the job's state after the cancel attempt: "cancelled"
	// when the job was stopped before running, "running" when the stop
	// signal was delivered to a live job, or the terminal state of a job
	// that had already finished.
	State JobState
}

// StatEntry is one named counter or gauge value in a StatsResult.
type StatEntry struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// StatBucket is one non-empty latency-histogram bucket: Count
// observations with 2^(Pow-1) <= v < 2^Pow nanoseconds (Pow 0 is
// exactly zero).
type StatBucket struct {
	Pow   int   `json:"pow"`
	Count int64 `json:"count"`
}

// StatHistogram is one latency histogram in a StatsResult.
type StatHistogram struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	Buckets []StatBucket `json:"buckets,omitempty"`
}

// StatsResult is the reply to Stats: the serving system's live-metrics
// snapshot (see internal/obs).  Sections are sorted by metric name, so
// the rendering of a given snapshot is stable and a decoded result
// renders byte-identically to the serving side's.
type StatsResult struct {
	// UptimeSeconds is whole seconds since the serving system started.
	UptimeSeconds int64 `json:"uptime_s"`
	// Counters, Gauges, and Histograms list every registered metric,
	// ascending by name; empty sections are omitted.
	Counters   []StatEntry     `json:"counters,omitempty"`
	Gauges     []StatEntry     `json:"gauges,omitempty"`
	Histograms []StatHistogram `json:"histograms,omitempty"`
}

func (HelpResult) isResult()          {}
func (PingResult) isResult()          {}
func (VersionResult) isResult()       {}
func (QuitResult) isResult()          {}
func (DefineResult) isResult()        {}
func (MaterialResult) isResult()      {}
func (GenerateResult) isResult()      {}
func (NodeResult) isResult()          {}
func (ElementResult) isResult()       {}
func (FixResult) isResult()           {}
func (LoadSetResult) isResult()       {}
func (LoadResult) isResult()          {}
func (EndLoadResult) isResult()       {}
func (SolveResult) isResult()         {}
func (StressesResult) isResult()      {}
func (ModelInfoResult) isResult()     {}
func (DisplacementsResult) isResult() {}
func (StressSummaryResult) isResult() {}
func (StoreResult) isResult()         {}
func (RetrieveResult) isResult()      {}
func (DeleteResult) isResult()        {}
func (ListResult) isResult()          {}
func (SnapshotResult) isResult()      {}
func (RestoreResult) isResult()       {}
func (SubmitResult) isResult()        {}
func (JobStatusResult) isResult()     {}
func (JobsResult) isResult()          {}
func (CancelResult) isResult()        {}
func (StatsResult) isResult()         {}

// String renders the REPL display line: one header, then one line per
// metric, sections in counter/gauge/histogram order.  Histogram lines
// show count, mean, and the populated power-of-two buckets.
func (r StatsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stats (uptime %ds)", r.UptimeSeconds)
	for _, c := range r.Counters {
		fmt.Fprintf(&b, "\n  counter %s = %d", c.Name, c.Value)
	}
	for _, g := range r.Gauges {
		fmt.Fprintf(&b, "\n  gauge %s = %d", g.Name, g.Value)
	}
	for _, h := range r.Histograms {
		mean := int64(0)
		if h.Count > 0 {
			mean = h.SumNS / h.Count
		}
		fmt.Fprintf(&b, "\n  hist %s: n=%d mean=%dns", h.Name, h.Count, mean)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, " 2^%d:%d", bk.Pow, bk.Count)
		}
	}
	return b.String()
}

// String renders the REPL display line.
func (HelpResult) String() string { return HelpText }

// String renders the REPL display line.
func (r PingResult) String() string {
	if r.Degraded {
		return "pong (degraded)"
	}
	return "pong"
}

// String renders the REPL display line.
func (r VersionResult) String() string {
	health := ""
	if r.Degraded {
		health = ", degraded"
	}
	if r.Storage == "" {
		return fmt.Sprintf("%s %s (protocol %d%s)", r.Server, r.Release, r.Protocol, health)
	}
	return fmt.Sprintf("%s %s (protocol %d, storage %s%s)", r.Server, r.Release, r.Protocol, r.Storage, health)
}

// String renders the REPL display line.
func (QuitResult) String() string { return "bye" }

// String renders the REPL display line.
func (r DefineResult) String() string { return fmt.Sprintf("defined structure %q", r.Name) }

// String renders the REPL display line.
func (r MaterialResult) String() string {
	return fmt.Sprintf("material E=%g nu=%g t=%g A=%g", r.E, r.Nu, r.T, r.A)
}

// String renders the REPL display line.
func (r GenerateResult) String() string {
	switch r.Kind {
	case "truss":
		return fmt.Sprintf("generated truss %q: %d nodes, %d members", r.Name, r.Nodes, r.Elements)
	case "bar":
		return fmt.Sprintf("generated bar %q: %d segments", r.Name, r.Elements)
	default:
		return fmt.Sprintf("generated grid %q: %d nodes, %d elements", r.Name, r.Nodes, r.Elements)
	}
}

// String renders the REPL display line.
func (r NodeResult) String() string {
	return fmt.Sprintf("node %d at (%g, %g)", r.ID, r.X, r.Y)
}

// String renders the REPL display line.
func (r ElementResult) String() string {
	ns := make([]string, len(r.Nodes))
	for i, n := range r.Nodes {
		ns[i] = fmt.Sprint(n)
	}
	return fmt.Sprintf("%s %s added to %q", r.Kind, strings.Join(ns, "-"), r.Model)
}

// String renders the REPL display line.
func (r FixResult) String() string { return fmt.Sprintf("%s %d fixed", r.What, r.Index) }

// String renders the REPL display line.
func (r LoadSetResult) String() string {
	return fmt.Sprintf("load set %q on %q", r.Set, r.Model)
}

// String renders the REPL display line.
func (r LoadResult) String() string {
	return fmt.Sprintf("load %g on dof %d (%d entries)", r.Value, r.DOF, r.Entries)
}

// String renders the REPL display line.
func (r EndLoadResult) String() string {
	return fmt.Sprintf("end load %q: %d entries", r.Set, r.Entries)
}

// String renders the REPL display line.
func (r SolveResult) String() string {
	if r.Parallel > 0 {
		return fmt.Sprintf("solved %q/%q in parallel on %d workers (%s): %d iterations, %d halo words, makespan %d cycles; max |u| = %g at dof %d",
			r.Model, r.Set, r.Parallel, r.Engine(), r.Iterations, r.HaloWords, r.Makespan, r.MaxDisp, r.MaxDOF)
	}
	if r.Iterations > 0 {
		return fmt.Sprintf("solved %q/%q (%s): %d iterations, residual %.3g; max |u| = %g at dof %d",
			r.Model, r.Set, r.Engine(), r.Iterations, r.Residual, r.MaxDisp, r.MaxDOF)
	}
	return fmt.Sprintf("solved %q/%q (%s): max |u| = %g at dof %d",
		r.Model, r.Set, r.Engine(), r.MaxDisp, r.MaxDOF)
}

// String renders the REPL display line.
func (r StressesResult) String() string {
	return fmt.Sprintf("stresses for %q: %d elements, max von Mises %g in element %d",
		r.Model, r.Elements, r.MaxVonMises, r.MaxElem)
}

// String renders the REPL display line.
func (r ModelInfoResult) String() string {
	ks := make([]string, 0, len(r.ElementCounts))
	for k, c := range r.ElementCounts {
		ks = append(ks, fmt.Sprintf("%d %s", c, k))
	}
	sort.Strings(ks)
	return fmt.Sprintf("model %q: %d nodes, %d dofs (%d fixed), elements: %s",
		r.Name, r.Nodes, r.DOFs, r.Fixed, strings.Join(ks, ", "))
}

// String renders the REPL display line.
func (r DisplacementsResult) String() string {
	return fmt.Sprintf("displacements of %q: |u|∞ = %g (dof %d), norm %g",
		r.Model, r.MaxDisp, r.MaxDOF, r.Norm)
}

// String renders the REPL display line.
func (r StressSummaryResult) String() string {
	return fmt.Sprintf("stresses of %q: max von Mises %g in element %d of %d",
		r.Model, r.MaxVonMises, r.MaxElem, r.Elements)
}

// String renders the REPL display line.
func (r StoreResult) String() string {
	return fmt.Sprintf("stored %q (%d load sets) in data base", r.Name, r.LoadSets)
}

// String renders the REPL display line.
func (r RetrieveResult) String() string {
	return fmt.Sprintf("retrieved %q (%d load sets) into workspace", r.Name, r.LoadSets)
}

// String renders the REPL display line.
func (r DeleteResult) String() string {
	return fmt.Sprintf("deleted %q from data base", r.Name)
}

// String renders the REPL display line.
func (r SnapshotResult) String() string {
	return fmt.Sprintf("snapshot %q: %d models, %d bytes", r.Path, r.Models, r.Bytes)
}

// String renders the REPL display line.
func (r RestoreResult) String() string {
	return fmt.Sprintf("restored %d models from %q", r.Models, r.Path)
}

// String renders the REPL display line.
func (r SubmitResult) String() string {
	return fmt.Sprintf("submitted job-%d (%s): %s", r.ID, r.State, r.Cmd)
}

// String renders the REPL display line.
func (r JobStatusResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job-%d %s (owner %q): %s", r.ID, r.State, r.Owner, r.Cmd)
	if r.Error != "" {
		fmt.Fprintf(&b, " — %s", r.Error)
	}
	if r.Flops > 0 || r.Cycles > 0 {
		fmt.Fprintf(&b, " [%d flops, %d cycles]", r.Flops, r.Cycles)
	}
	return b.String()
}

// String renders the REPL display line.
func (r JobsResult) String() string {
	if len(r.Rows) == 0 {
		return "no jobs"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "jobs (%d):", len(r.Rows))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "\n  job-%-4d %-9s %-10s %s", row.ID, row.State, row.Owner, row.Cmd)
	}
	return b.String()
}

// String renders the REPL display line.
func (r CancelResult) String() string {
	switch r.State {
	case JobCancelled:
		return fmt.Sprintf("cancelled job-%d", r.ID)
	case JobRunning:
		return fmt.Sprintf("cancel requested for running job-%d", r.ID)
	default:
		return fmt.Sprintf("job-%d already %s", r.ID, r.State)
	}
}

// String renders the REPL display line.
func (r ListResult) String() string {
	if r.What == ListWorkspace {
		return fmt.Sprintf("workspace (%d models, %d words): %s",
			len(r.Names), r.Words, strings.Join(r.Names, " "))
	}
	return fmt.Sprintf("data base (%d models, %d bytes): %s",
		len(r.Names), r.Bytes, strings.Join(r.Names, " "))
}
