package command

import (
	"errors"
	"reflect"
	"testing"
)

// wireCommandSamples is one populated sample per command verb — every
// field non-zero so the round trip exercises full encode/decode.
var wireCommandSamples = []Command{
	Help{},
	Ping{},
	Version{},
	Quit{},
	Define{Name: "wing"},
	SetMaterial{E: 200000, Nu: 0.3, T: 10, A: 2000},
	GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4.5, H: 3.5, ClampLeft: true, Jitter: 0.1, Seed: 7},
	GenerateTruss{Name: "tr", Bays: 4, BayLen: 100, Height: 80},
	GenerateBar{Name: "b", Segments: 10, Length: 100},
	AddNode{Model: "m", X: 1, Y: 2.5},
	AddBar{Model: "m", N1: 0, N2: 1},
	AddCST{Model: "m", N1: 0, N2: 1, N3: 2},
	FixNode{Model: "m", Node: 3},
	FixDOF{Model: "m", DOF: 5},
	DefineLoadSet{Model: "m", Set: "ls"},
	AddLoad{Model: "m", Set: "ls", DOF: 3, Value: -50.5},
	EndLoad{Model: "m", Set: "ls", FX: 10, FY: -1000},
	Solve{Model: "m", Set: "ls", Method: MethodCG, Precond: PrecondJacobi},
	Solve{Model: "m", Set: "ls", Substructures: 4},
	Stresses{Model: "m"},
	Display{What: DisplayDisplacements, Model: "m"},
	Store{Model: "m"},
	Retrieve{Name: "m"},
	Delete{Name: "m"},
	List{What: ListWorkspace},
	Snapshot{Path: "ws.snap"},
	Restore{Path: "ws.snap"},
	Submit{Cmd: Solve{Model: "m", Set: "ls", Parallel: 8}},
	Status{ID: 7},
	Wait{ID: 7},
	Cancel{ID: 7},
	Jobs{Owner: "engineer", State: JobRunning},
	Stats{},
}

// wireResultSamples is one populated sample per result kind.
var wireResultSamples = []Result{
	&HelpResult{},
	&PingResult{},
	&VersionResult{Server: "fem2", Release: Release, Protocol: ProtocolVersion},
	&QuitResult{},
	&DefineResult{Name: "wing"},
	&MaterialResult{E: 200000, Nu: 0.3, T: 10, A: 2000},
	&GenerateResult{Kind: "grid", Name: "g", Nodes: 20, Elements: 24},
	&NodeResult{ID: 3, X: 1, Y: 2.5},
	&ElementResult{Kind: "cst", Model: "m", Nodes: []int{0, 1, 2}},
	&FixResult{What: "node", Index: 3},
	&LoadSetResult{Model: "m", Set: "ls"},
	&LoadResult{DOF: 3, Value: -50.5, Entries: 2},
	&EndLoadResult{Set: "ls", Entries: 5},
	&SolveResult{Model: "m", Set: "ls", Backend: "cg", Precond: "jacobi",
		Iterations: 42, Residual: 1e-9, Flops: 12345, Refactored: true,
		MaxDisp: 0.125, MaxDOF: 17},
	&StressesResult{Model: "m", Elements: 24, MaxVonMises: 99.5, MaxElem: 7},
	&ModelInfoResult{Name: "m", Nodes: 20, DOFs: 40, Fixed: 8,
		ElementCounts: map[string]int{"cst": 24}},
	&DisplacementsResult{Model: "m", MaxDisp: 0.125, MaxDOF: 17, Norm: 0.125},
	&StressSummaryResult{Model: "m", Elements: 24, MaxVonMises: 99.5, MaxElem: 7},
	&StoreResult{Name: "m", LoadSets: 2},
	&RetrieveResult{Name: "m", LoadSets: 2},
	&DeleteResult{Name: "m"},
	&ListResult{What: ListDB, Names: []string{"a", "b"}, Bytes: 512},
	&SnapshotResult{Path: "ws.snap", Models: 2, Bytes: 4096},
	&RestoreResult{Path: "ws.snap", Models: 2},
	&SubmitResult{ID: 7, State: JobQueued, Cmd: "solve m ls"},
	&JobStatusResult{ID: 7, Owner: "engineer", State: JobFailed,
		Cmd: "solve m ls", Error: "boom", Ops: 1, Flops: 2, Cycles: 3},
	&JobsResult{Rows: []JobRow{{ID: 7, Owner: "engineer", State: JobDone, Cmd: "solve m ls"}}},
	&CancelResult{ID: 7, State: JobCancelled},
	&StatsResult{
		UptimeSeconds: 12,
		Counters:      []StatEntry{{Name: "job.done", Value: 42}, {Name: "job.submitted", Value: 43}},
		Gauges:        []StatEntry{{Name: "job.queue_depth", Value: 2}},
		Histograms: []StatHistogram{{
			Name: "job.latency.solve", Count: 3, SumNS: 150000,
			Buckets: []StatBucket{{Pow: 15, Count: 1}, {Pow: 16, Count: 2}},
		}},
	},
}

// TestWireCommandRoundTrip encodes and decodes every command sample and
// requires the identical struct back.
func TestWireCommandRoundTrip(t *testing.T) {
	for _, cmd := range wireCommandSamples {
		data, err := MarshalCommand(cmd)
		if err != nil {
			t.Fatalf("marshal %s: %v", cmd, err)
		}
		got, err := UnmarshalCommand(data)
		if err != nil {
			t.Fatalf("unmarshal %s (%s): %v", cmd, data, err)
		}
		if !reflect.DeepEqual(got, cmd) {
			t.Errorf("round trip %s: got %#v, want %#v", cmd, got, cmd)
		}
	}
}

// TestWireCommandCoversEveryVerb pins the codec registry to the AST: a
// new verb must appear in the wire tables (and in the samples above).
func TestWireCommandCoversEveryVerb(t *testing.T) {
	seen := map[reflect.Type]bool{}
	for _, cmd := range wireCommandSamples {
		seen[reflect.TypeOf(cmd)] = true
	}
	for verb, typ := range commandVerbs {
		if !seen[typ] {
			t.Errorf("verb %q (%v) has no round-trip sample", verb, typ)
		}
	}
	if !seen[reflect.TypeOf(Submit{})] {
		t.Error("submit has no round-trip sample")
	}
}

// TestWireResultRoundTrip encodes and decodes every result sample and
// requires the identical struct — and therefore the byte-identical
// String rendering — back.
func TestWireResultRoundTrip(t *testing.T) {
	seen := map[reflect.Type]bool{}
	for _, res := range wireResultSamples {
		seen[reflect.TypeOf(res).Elem()] = true
		data, err := MarshalResult(res)
		if err != nil {
			t.Fatalf("marshal %T: %v", res, err)
		}
		got, err := UnmarshalResult(data)
		if err != nil {
			t.Fatalf("unmarshal %T (%s): %v", res, data, err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Errorf("round trip %T: got %#v, want %#v", res, got, res)
		}
		if got.String() != res.String() {
			t.Errorf("rendering diverged: %q vs %q", got.String(), res.String())
		}
	}
	for kind, typ := range resultKinds {
		if !seen[typ] {
			t.Errorf("result kind %q (%v) has no round-trip sample", kind, typ)
		}
	}
}

// TestWireCommandErrors pins the codec's failure modes to the usage
// taxonomy.
func TestWireCommandErrors(t *testing.T) {
	cases := []string{
		`{"verb":"warp"}`,                         // unknown verb
		`{"verb":"solve","body":{"Nope":1}}`,      // unknown field
		`{"verb":"submit","cmd":{"verb":"quit"}}`, // unsubmittable nested verb
		`{"verb":"submit","cmd":{"verb":"wait","body":{"ID":1}}}`,
		`not json`,
	}
	for _, data := range cases {
		if _, err := UnmarshalCommand([]byte(data)); !errors.Is(err, ErrUsage) {
			t.Errorf("UnmarshalCommand(%s) = %v, want ErrUsage", data, err)
		}
	}
	if _, err := UnmarshalResult([]byte(`{"kind":"warp"}`)); !errors.Is(err, ErrUsage) {
		t.Errorf("UnmarshalResult unknown kind = %v, want ErrUsage", err)
	}
	if _, err := MarshalCommand(nil); !errors.Is(err, ErrUsage) {
		t.Errorf("MarshalCommand(nil) = %v, want ErrUsage", err)
	}
}
