package obs

// The canonical metric catalog.  Every instrumented package resolves
// its metrics by these names, the stats verb and the emitter expose
// them verbatim, and docs/observability.md documents each one — a
// single vocabulary from hot path to dashboard.
//
// Dynamic families (per-verb latency) are built with the prefix
// constants: "job.latency.solve", "server.request.ping", …
const (
	// Job service (internal/job).
	JobSubmitted     = "job.submitted"      // counter: jobs admitted (inline + pooled)
	JobDone          = "job.done"           // counter: jobs finished successfully
	JobFailed        = "job.failed"         // counter: jobs finished in error
	JobCancelled     = "job.cancelled"      // counter: jobs cancelled (queued or mid-run)
	JobQuotaRejected = "job.quota_rejected" // counter: submissions refused by per-owner quota
	JobJournalErrors = "job.journal_errors" // counter: journal writes that failed (scheduler carried on)
	JobQueueDepth    = "job.queue_depth"    // gauge: heavy jobs waiting for a worker or a model lock
	JobRunning       = "job.running"        // gauge: jobs executing right now (worker utilization numerator)
	JobWorkers       = "job.workers"        // gauge: worker pool bound (utilization denominator)
	JobLatencyPrefix = "job.latency."       // histogram family: execution time per verb

	// Per-solver-backend solve cost (internal/auvm doSolve): one
	// histogram per backend actually used, e.g. job.latency.solve.cg
	// vs job.latency.solve.cholesky-env.  Covers sync solves and
	// scheduled jobs alike — both funnel through the same session path.
	JobLatencySolvePrefix = "job.latency.solve." // histogram family: solve wall time per backend

	// Durable store (internal/store).
	StoreCacheHits       = "store.cache_hits"       // counter: CachedStore Gets served from memory
	StoreCacheMisses     = "store.cache_misses"     // counter: CachedStore Gets that hit the backend
	StoreGuardTrips      = "store.guard_trips"      // counter: times the guard entered degraded mode
	StoreDegraded        = "store.degraded"         // gauge: 1 while the store is read-only, else 0
	StoreDegradedSeconds = "store.degraded_seconds" // counter: whole seconds spent degraded (completed episodes)
	StoreGetLatency      = "store.get"              // histogram: Get latency, cache hits included
	StorePutLatency      = "store.put"              // histogram: Put latency (write-through, rides Batch)
	StoreBatchLatency    = "store.batch"            // histogram: Batch latency, backend write included

	// Network front end (internal/server).
	ServerConnections   = "server.connections"    // gauge: open client connections
	ServerFramesIn      = "server.frames_in"      // counter: request frames decoded
	ServerFramesOut     = "server.frames_out"     // counter: response/notification frames written
	ServerQuotaRejected = "server.quota_rejected" // counter: requests answered with the quota code
	ServerRequestPrefix = "server.request."       // histogram family: decode-to-reply latency per verb

	// Direct-solve factor cache (internal/linalg + scheduler eviction).
	FactorHits      = "factor.hits"      // counter: solves served by a warm factor
	FactorMisses    = "factor.misses"    // counter: solves that had to plan (cold or pattern change)
	FactorRefactors = "factor.refactors" // counter: numeric refactorisations (misses included)
	FactorEvictions = "factor.evictions" // counter: per-model caches dropped by the scheduler bound

	// Network client (internal/client).
	ClientReconnects = "client.reconnects" // counter: dead connections replaced
	ClientRetries    = "client.retries"    // counter: request attempts beyond the first
	ClientFailovers  = "client.failovers"  // counter: endpoint switches (redirects + dead-endpoint rotation)

	// Cluster coordination (internal/cluster).
	ClusterLeader       = "cluster.leader"        // gauge: 1 while this daemon holds the lease, else 0
	ClusterEpoch        = "cluster.epoch"         // gauge: current lease epoch as seen by this daemon
	ClusterFailovers    = "cluster.failovers"     // counter: takeovers this daemon performed (lease acquired after expiry)
	ClusterFencedWrites = "cluster.fenced_writes" // counter: writes rejected because this daemon's epoch went stale
	ClusterRenewLatency = "cluster.lease_renew"   // histogram: lease renewal round-trip against the store
)
