package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the power-of-two binning: bucket
// i holds 2^(i-1) <= v < 2^i, bucket 0 holds zero, and values past the
// last boundary clamp into the final bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v   time.Duration
		pow int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{1025, 11},
		{time.Microsecond, 10},             // 1000 ns
		{time.Millisecond, 20},             // 1e6 ns
		{time.Second, 30},                  // 1e9 ns
		{30 * time.Minute, NumBuckets - 1}, // past the range: clamps
	}
	for _, tc := range cases {
		h := &Histogram{}
		h.Observe(tc.v)
		s := h.snap("x")
		if len(s.Buckets) != 1 || s.Buckets[0].Pow != tc.pow || s.Buckets[0].Count != 1 {
			t.Errorf("Observe(%d ns) → buckets %v, want one count in pow %d", int64(tc.v), s.Buckets, tc.pow)
		}
		if s.Count != 1 || s.SumNS != int64(tc.v) {
			t.Errorf("Observe(%d ns) → count %d sum %d", int64(tc.v), s.Count, s.SumNS)
		}
	}
}

// TestHistogramMerge checks same-pow buckets add and distinct pows
// union in sorted order.
func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	a.Observe(3)    // pow 2
	a.Observe(100)  // pow 7
	b.Observe(2)    // pow 2
	b.Observe(5000) // pow 13

	m := a.snap("a").Merge(b.snap("b"))
	want := HistogramSnap{
		Name: "a", Count: 4, SumNS: 3 + 100 + 2 + 5000,
		Buckets: []BucketSnap{{Pow: 2, Count: 2}, {Pow: 7, Count: 1}, {Pow: 13, Count: 1}},
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("merge = %+v, want %+v", m, want)
	}
	// Merge is value-level: the inputs are unchanged.
	if a.snap("a").Count != 2 || b.snap("b").Count != 2 {
		t.Error("merge mutated an input snapshot source")
	}
}

// TestSnapshotDeterministic takes two snapshots of one registry with
// no traffic in between and requires them deeply equal — the property
// that makes the stats verb's rendering stable.
func TestSnapshotDeterministic(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(7)
	r.Counter("a.count").Inc()
	r.Gauge("z.level").Set(3)
	r.Histogram("m.lat").Observe(250 * time.Microsecond)
	r.Histogram("m.lat").Observe(3 * time.Millisecond)

	s1 := r.Snapshot()
	s2 := r.Snapshot()
	// Uptime advances with the wall clock even with no traffic; equality
	// is over the metrics.
	s1.UptimeSeconds, s2.UptimeSeconds = 0, 0
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("quiet snapshots differ:\n%+v\n%+v", s1, s2)
	}
	// Sorted by name regardless of registration order.
	if s1.Counters[0].Name != "a.count" || s1.Counters[1].Name != "b.count" {
		t.Errorf("counters not sorted: %+v", s1.Counters)
	}
	if got := s1.Counter("b.count"); got != 7 {
		t.Errorf("Counter(b.count) = %d, want 7", got)
	}
	if got := s1.Gauge("z.level"); got != 3 {
		t.Errorf("Gauge(z.level) = %d, want 3", got)
	}
	if h, ok := s1.Histogram("m.lat"); !ok || h.Count != 2 {
		t.Errorf("Histogram(m.lat) = %+v ok=%v", h, ok)
	}
	if got := s1.Counter("never.registered"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
}

// TestNilSafety: every type is a valid no-op sink at nil, so
// instrumented packages never branch on observability being wired.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Gauge("x").Set(2)
	r.Gauge("x").Add(-1)
	r.Histogram("x").Observe(time.Second)
	if r.Counter("x").Load() != 0 || r.Gauge("x").Load() != 0 || r.Histogram("x").Count() != 0 {
		t.Error("nil metrics reported non-zero")
	}
	if got := r.Snapshot(); !reflect.DeepEqual(got, Snapshot{}) {
		t.Errorf("nil registry snapshot = %+v", got)
	}
	if r.UptimeSeconds() != 0 {
		t.Error("nil registry uptime non-zero")
	}
}

// TestConcurrentObserve hammers one registry from many goroutines and
// checks totals — run under -race this is the thread-safety proof.
func TestConcurrentObserve(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Load(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	h, _ := r.Snapshot().Histogram("h")
	if h.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*per)
	}
}

// TestEmitterFakeClock drives the emitter from a hand-fed tick channel
// and a fixed clock: one line per tick, each line valid JSON with the
// expected fields, and a clean stop.
func TestEmitterFakeClock(t *testing.T) {
	r := New()
	r.Counter(JobDone).Add(10)
	r.Counter(FactorHits).Add(3)
	r.Counter(FactorMisses).Add(1)
	r.Gauge(JobQueueDepth).Set(2)
	r.Histogram(JobLatencyPrefix + "solve").Observe(2 * time.Millisecond)

	var buf bytes.Buffer
	ticks := make(chan time.Time)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	e := NewEmitter(r, EmitterOpts{
		W:     &buf,
		Now:   func() time.Time { return base },
		Ticks: ticks,
	})
	e.Start()

	const n = 5
	for i := 1; i <= n; i++ {
		r.Counter(JobDone).Add(20)
		ticks <- base.Add(time.Duration(i) * time.Second)
		// The unbuffered channel means the emitter took the tick; wait
		// for the line so Lines() is settled.
		waitLines(t, e, int64(i))
	}
	e.Stop()

	if got := e.Lines(); got != n {
		t.Fatalf("Lines() = %d, want %d", got, n)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var line struct {
			TS         string           `json:"ts"`
			JobsPerSec float64          `json:"jobs_per_sec"`
			FactorHit  float64          `json:"factor_hit_rate"`
			Counters   map[string]int64 `json:"counters"`
			Gauges     map[string]int64 `json:"gauges"`
			Hist       map[string]struct {
				Count int64 `json:"count"`
			} `json:"hist"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if line.TS == "" {
			t.Fatalf("line %d missing ts", lines)
		}
		// 20 completions per 1s tick.
		if line.JobsPerSec != 20 {
			t.Errorf("line %d jobs_per_sec = %v, want 20", lines, line.JobsPerSec)
		}
		if line.FactorHit != 0.75 {
			t.Errorf("line %d factor_hit_rate = %v, want 0.75", lines, line.FactorHit)
		}
		if line.Gauges[JobQueueDepth] != 2 {
			t.Errorf("line %d queue depth = %d", lines, line.Gauges[JobQueueDepth])
		}
		if line.Hist[JobLatencyPrefix+"solve"].Count != 1 {
			t.Errorf("line %d solve latency count = %d", lines, line.Hist[JobLatencyPrefix+"solve"].Count)
		}
	}
	if lines != n {
		t.Fatalf("wrote %d lines, want %d", lines, n)
	}

	// No line after Stop, and Stop is idempotent.
	e.Stop()
	if buf.Len() != 0 && e.Lines() != n {
		t.Error("emitter wrote after Stop")
	}
}

func waitLines(t *testing.T, e *Emitter, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for e.Lines() < want {
		if time.Now().After(deadline) {
			t.Fatalf("emitter stuck at %d lines, want %d", e.Lines(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEmitterRealTicker smoke-tests the wall-clock path the binaries
// use: a short interval produces at least one line.
func TestEmitterRealTicker(t *testing.T) {
	r := New()
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	e := NewEmitter(r, EmitterOpts{Interval: 5 * time.Millisecond, W: w})
	e.Start()
	waitLines(t, e, 2)
	e.Stop()
	mu.Lock()
	defer mu.Unlock()
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("invalid JSON line: %v", err)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
