// Package obs is the live-metrics substrate of the FEM-2 service: a
// registry of named atomic counters, gauges, and fixed-bucket latency
// histograms, a point-in-time Snapshot with deterministic ordering, and
// an interval emitter (emit.go) that writes one JSON line per tick in
// the perf-stat -I / pmu2metrics style.
//
// The paper's machine was evaluated by measuring what the hardware
// actually did; this package is the running service's equivalent.  The
// design constraints, in order:
//
//   - Zero-alloc on the hot path.  Counter.Add, Gauge.Set, and
//     Histogram.Observe are single atomic operations on preallocated
//     storage — safe inside the scheduler's submit path and the
//     store's write path without adding lock pressure.
//   - Nil-safe everywhere.  A nil *Counter, *Gauge, *Histogram, or
//     *Registry is a valid no-op sink, so instrumented packages never
//     branch on "is observability on" — they just observe.
//   - Mergeable.  Histogram buckets are powers of two, so snapshots
//     from many sources (or many ticks) merge bucket-by-bucket without
//     rebinning.
//
// Metric names are flat dotted strings; the canonical catalog lives in
// names.go and docs/observability.md.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.  The zero value is
// ready to use; a nil pointer is a valid no-op sink.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is the caller's bug; the registry never
// checks, keeping the hot path one instruction).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level — queue depth, open connections,
// degraded yes/no.  The zero value is ready; nil is a no-op sink.
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the fixed histogram size: bucket i counts observations
// v (in nanoseconds) with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 holds v == 0).  39 doublings reach ~9 minutes, past any
// latency this service can produce without a context deadline firing
// first; larger values clamp into the last bucket.
const NumBuckets = 40

// bucketOf maps one observation onto its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// Histogram is a fixed power-of-two-bucket latency histogram.  Observe
// is three atomic adds on preallocated storage: no locks, no
// allocation, safe under any concurrency.  The zero value is ready;
// nil is a no-op sink.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snap copies the histogram's current state.  Concurrent Observes may
// land between the atomic reads — a snapshot is a consistent-enough
// point-in-time view, not a linearization point.
func (h *Histogram) snap(name string) HistogramSnap {
	s := HistogramSnap{Name: name, Count: h.count.Load(), SumNS: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketSnap{Pow: i, Count: n})
		}
	}
	return s
}

// MetricSnap is one named counter or gauge value in a Snapshot.
type MetricSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: Count observations
// with 2^(Pow-1) <= value < 2^Pow nanoseconds (Pow 0 is exactly zero).
type BucketSnap struct {
	Pow   int   `json:"pow"`
	Count int64 `json:"count"`
}

// HistogramSnap is one histogram's state at snapshot time.
type HistogramSnap struct {
	Name    string       `json:"name,omitempty"`
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Merge combines two snapshots of power-of-two histograms — same-pow
// buckets add, which is the whole point of fixed buckets.  The receiver
// is unchanged; the merged snapshot keeps the receiver's name.
func (h HistogramSnap) Merge(o HistogramSnap) HistogramSnap {
	out := HistogramSnap{Name: h.Name, Count: h.Count + o.Count, SumNS: h.SumNS + o.SumNS}
	counts := map[int]int64{}
	for _, b := range h.Buckets {
		counts[b.Pow] += b.Count
	}
	for _, b := range o.Buckets {
		counts[b.Pow] += b.Count
	}
	pows := make([]int, 0, len(counts))
	for p := range counts {
		pows = append(pows, p)
	}
	sort.Ints(pows)
	for _, p := range pows {
		out.Buckets = append(out.Buckets, BucketSnap{Pow: p, Count: counts[p]})
	}
	return out
}

// Mean returns the mean observation, zero when empty.
func (h HistogramSnap) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNS / h.Count)
}

// Snapshot is a point-in-time copy of a registry: every registered
// metric, sorted by name, so two snapshots of identical state are
// deeply equal and every rendering derived from one is deterministic.
type Snapshot struct {
	// UptimeSeconds is whole seconds since the registry was created —
	// the process start for a system registry.
	UptimeSeconds int64 `json:"uptime_s"`
	// Counters, Gauges, and Histograms are the registered metrics,
	// ascending by name.  Empty sections are nil, so a quiet registry's
	// snapshot is the zero value plus uptime.
	Counters   []MetricSnap    `json:"counters,omitempty"`
	Gauges     []MetricSnap    `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Counter returns the named counter's value, zero when absent.
func (s Snapshot) Counter(name string) int64 { return findMetric(s.Counters, name) }

// Gauge returns the named gauge's value, zero when absent.
func (s Snapshot) Gauge(name string) int64 { return findMetric(s.Gauges, name) }

// Histogram returns the named histogram's snapshot and whether it was
// registered.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i], true
	}
	return HistogramSnap{}, false
}

func findMetric(ms []MetricSnap, name string) int64 {
	i := sort.Search(len(ms), func(i int) bool { return ms[i].Name >= name })
	if i < len(ms) && ms[i].Name == name {
		return ms[i].Value
	}
	return 0
}

// Registry is a get-or-create namespace of metrics.  Counter, Gauge,
// and Histogram hand out stable pointers — instrumented code resolves
// each metric once and then observes lock-free.  A nil *Registry hands
// out nil metrics, which are valid no-op sinks, so observability-free
// construction paths (unit tests building a bare scheduler) cost
// nothing and branch nowhere.
type Registry struct {
	start time.Time

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry whose uptime starts now.
func New() *Registry {
	return &Registry{
		start:      time.Now(),
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Start returns the registry's creation time; zero for a nil registry.
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// UptimeSeconds returns whole seconds since the registry was created.
func (r *Registry) UptimeSeconds() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.start) / time.Second)
}

// Snapshot copies every registered metric, sorted by name.  Safe for
// concurrent use with any number of observers; a nil registry snapshots
// to the zero value.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	hnames := sortedKeys(r.histograms)
	cs := make([]*Counter, len(cnames))
	for i, n := range cnames {
		cs[i] = r.counters[n]
	}
	gs := make([]*Gauge, len(gnames))
	for i, n := range gnames {
		gs[i] = r.gauges[n]
	}
	hs := make([]*Histogram, len(hnames))
	for i, n := range hnames {
		hs[i] = r.histograms[n]
	}
	r.mu.Unlock()

	snap := Snapshot{UptimeSeconds: r.UptimeSeconds()}
	for i, n := range cnames {
		snap.Counters = append(snap.Counters, MetricSnap{Name: n, Value: cs[i].Load()})
	}
	for i, n := range gnames {
		snap.Gauges = append(snap.Gauges, MetricSnap{Name: n, Value: gs[i].Load()})
	}
	for i, n := range hnames {
		snap.Histograms = append(snap.Histograms, hs[i].snap(n))
	}
	return snap
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
