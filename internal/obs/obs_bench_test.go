package obs

import (
	"testing"
	"time"
)

// The hot-path contract: observing a metric allocates nothing.  CI runs
// these with -benchmem; the committed overhead numbers in
// docs/observability.md come from BenchmarkObsOverhead at the repo root,
// which measures the instrumented scheduler and factor cache end to end.

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := New().Gauge("bench.gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Counter("count." + n).Inc()
		r.Histogram("lat." + n).Observe(time.Millisecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

// TestHotPathZeroAlloc pins the zero-alloc claim as a test so it fails
// loudly in plain `go test`, not only when someone reads bench output.
func TestHotPathZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("z.c")
	g := r.Gauge("z.g")
	h := r.Histogram("z.h")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(7)
		h.Observe(time.Microsecond)
	}); n != 0 {
		t.Errorf("hot path allocates %.1f per op, want 0", n)
	}
}
