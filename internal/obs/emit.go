package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EmitterOpts parameterizes an Emitter.
type EmitterOpts struct {
	// Interval is the tick cadence — the -metrics flag's value.
	// Ignored when Ticks is set.
	Interval time.Duration
	// W receives one JSON line per tick.  Each line is a single Write
	// call, so concurrent emitters appending to one O_APPEND file do
	// not interleave mid-line.
	W io.Writer
	// Now replaces time.Now for tests; nil means time.Now.
	Now func() time.Time
	// Ticks replaces the interval ticker for tests: the emitter emits
	// one line per received tick and never starts a timer.  Nil means a
	// real time.Ticker at Interval.
	Ticks <-chan time.Time
}

// Emitter periodically writes one machine-readable metrics line —
// counters, gauges, histograms, and the derived headline rates — in
// the perf-stat -I / pmu2metrics style: a process that should be
// watched is a process that prints what it is doing, on an interval,
// in a format a pipeline can diff.
//
//	{"ts":"…","uptime_s":12,"jobs_per_sec":5240.1,…,"counters":{…},…}
//
// Write failures are ignored: the emitter is diagnostics, and a full
// disk must never take the service down with it.
type Emitter struct {
	reg  *Registry
	opts EmitterOpts

	mu      sync.Mutex
	started bool
	stopped bool
	stop    chan struct{}
	done    chan struct{}

	lines atomic.Int64

	// prevDone and prevTime carry the previous tick's job.done count
	// and timestamp, the numerator and denominator of jobs_per_sec.
	// Only the run goroutine touches them.
	prevDone int64
	prevTime time.Time
}

// NewEmitter builds an emitter over a registry.  Call Start to begin
// ticking and Stop to flush out; both are idempotent enough for defer.
func NewEmitter(reg *Registry, opts EmitterOpts) *Emitter {
	return &Emitter{
		reg: reg, opts: opts,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

func (e *Emitter) now() time.Time {
	if e.opts.Now != nil {
		return e.opts.Now()
	}
	return time.Now()
}

// Start launches the emit loop in its own goroutine.
func (e *Emitter) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started || e.stopped {
		return
	}
	e.started = true
	// Seed the rate baseline before the goroutine exists, so jobs
	// completed after Start returns are always counted in a tick.
	e.prevTime = e.now()
	e.prevDone = e.reg.Counter(JobDone).Load()
	go e.run()
}

// Stop ends the loop and waits for it to exit; no line is written
// after Stop returns.  Safe to call without Start, and more than once.
func (e *Emitter) Stop() {
	e.mu.Lock()
	if e.stopped {
		started := e.started
		e.mu.Unlock()
		if started {
			<-e.done
		}
		return
	}
	e.stopped = true
	started := e.started
	close(e.stop)
	e.mu.Unlock()
	if started {
		<-e.done
	}
}

// Lines reports how many metric lines have been written — the fake
// clock tests count ticks through it.
func (e *Emitter) Lines() int64 { return e.lines.Load() }

func (e *Emitter) run() {
	defer close(e.done)
	ticks := e.opts.Ticks
	if ticks == nil {
		t := time.NewTicker(e.opts.Interval)
		defer t.Stop()
		ticks = t.C
	}
	for {
		select {
		case <-e.stop:
			return
		case tk := <-ticks:
			e.emit(tk)
		}
	}
}

// emitLine is the wire shape of one tick.  Maps marshal with sorted
// keys, so lines are deterministic for identical state.
type emitLine struct {
	TS            string `json:"ts"`
	UptimeSeconds int64  `json:"uptime_s"`
	// JobsPerSec is the job completion rate over the last tick; the
	// hit rates are cumulative since start.
	JobsPerSec        float64                  `json:"jobs_per_sec"`
	FactorHitRate     float64                  `json:"factor_hit_rate"`
	StoreCacheHitRate float64                  `json:"store_cache_hit_rate"`
	Counters          map[string]int64         `json:"counters,omitempty"`
	Gauges            map[string]int64         `json:"gauges,omitempty"`
	Histograms        map[string]HistogramSnap `json:"hist,omitempty"`
}

// emit writes one line.  at is the tick time (zero with a fake ticker
// that sends zero values — the clock hook fills in).
func (e *Emitter) emit(at time.Time) {
	if at.IsZero() {
		at = e.now()
	}
	snap := e.reg.Snapshot()

	line := emitLine{
		TS:                at.UTC().Format(time.RFC3339Nano),
		UptimeSeconds:     snap.UptimeSeconds,
		FactorHitRate:     rate(snap.Counter(FactorHits), snap.Counter(FactorMisses)),
		StoreCacheHitRate: rate(snap.Counter(StoreCacheHits), snap.Counter(StoreCacheMisses)),
	}
	done := snap.Counter(JobDone)
	if dt := at.Sub(e.prevTime).Seconds(); dt > 0 && done >= e.prevDone {
		line.JobsPerSec = float64(done-e.prevDone) / dt
	}
	e.prevDone, e.prevTime = done, at

	if len(snap.Counters) > 0 {
		line.Counters = make(map[string]int64, len(snap.Counters))
		for _, m := range snap.Counters {
			line.Counters[m.Name] = m.Value
		}
	}
	if len(snap.Gauges) > 0 {
		line.Gauges = make(map[string]int64, len(snap.Gauges))
		for _, m := range snap.Gauges {
			line.Gauges[m.Name] = m.Value
		}
	}
	if len(snap.Histograms) > 0 {
		line.Histograms = make(map[string]HistogramSnap, len(snap.Histograms))
		for _, h := range snap.Histograms {
			name := h.Name
			h.Name = "" // the map key carries it
			line.Histograms[name] = h
		}
	}

	data, err := json.Marshal(line)
	if err != nil {
		return
	}
	data = append(data, '\n')
	if _, err := e.opts.W.Write(data); err != nil {
		return
	}
	e.lines.Add(1)
}

// rate returns hits/(hits+misses), zero when there were none.
func rate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
