package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/command"
	"repro/internal/errs"
	"repro/internal/job"
)

// TestSessionRegistryRace is the -race stress test for the session
// registry: N goroutines churning M sessions on one shared database —
// create, enumerate, execute, and close concurrently.  Before the
// registry grew its mutex, concurrent Session() calls raced on the map.
func TestSessionRegistryRace(t *testing.T) {
	sys, err := NewSystem(arch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const goroutines, users, rounds = 16, 4, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				u := fmt.Sprintf("user%d", (g+k)%users)
				s := sys.Session(u)
				if s.User != u {
					t.Errorf("Session(%q).User = %q", u, s.User)
					return
				}
				sys.Users()
				sys.Sessions()
				if k%10 == 9 {
					sys.CloseSession(u)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSessionIdentityUnderConcurrency: simultaneous Session calls for
// one user all get the same session.
func TestSessionIdentityUnderConcurrency(t *testing.T) {
	sys, err := NewSystem(arch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const goroutines = 32
	var wg sync.WaitGroup
	sessions := make([]interface{}, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sessions[g] = sys.Session("shared")
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if sessions[g] != sessions[0] {
			t.Fatalf("goroutine %d got a different session", g)
		}
	}
}

func TestSessionsAndCloseSession(t *testing.T) {
	sys, err := NewSystem(arch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	b := sys.Session("bob")
	sys.Session("alice")
	ss := sys.Sessions()
	if len(ss) != 2 || ss[0].User != "alice" || ss[1].User != "bob" {
		t.Fatalf("Sessions = %v", ss)
	}
	if !sys.CloseSession("alice") {
		t.Error("CloseSession(alice) = false")
	}
	if sys.CloseSession("alice") {
		t.Error("CloseSession twice = true")
	}
	if got := sys.Users(); len(got) != 1 || got[0] != "bob" {
		t.Errorf("Users after close = %v", got)
	}
	// A reopened session is fresh, not the old one.
	if sys.Session("alice") == nil || len(sys.Users()) != 2 {
		t.Error("reopen failed")
	}
	_ = b
}

// TestCloseSessionCancelsJobs: closing a session cancels the user's
// live jobs but leaves other users' jobs alone.
func TestCloseSessionCancelsJobs(t *testing.T) {
	sys, err := NewSystemWithWorkers(arch.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	alice := sys.Session("alice")
	for _, line := range []string{
		"generate grid big 40 40 40 40 clamp-left",
		"load big l endload 0 -1000",
	} {
		if _, err := alice.Execute(line); err != nil {
			t.Fatal(err)
		}
	}
	// A slow iterative solve alice will never see finish.
	id, err := alice.SubmitAsync(ctx, command.Solve{Model: "big", Set: "l", Method: command.MethodJacobi})
	if err != nil {
		t.Fatal(err)
	}
	sys.CloseSession("alice")
	if _, err := sys.Jobs.Wait(ctx, id); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("alice's job after CloseSession: %v, want ErrCancelled", err)
	}
	snap, err := sys.Jobs.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != job.Cancelled {
		t.Errorf("state = %v, want cancelled", snap.State)
	}
}

// TestSystemJobsWiring: every session shares the system scheduler, and
// the command language drives it end to end.
func TestSystemJobsWiring(t *testing.T) {
	sys, err := NewSystemWithWorkers(arch.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session("eng")
	if s.Jobs != sys.Jobs {
		t.Fatal("session not wired to the system scheduler")
	}
	for _, line := range []string{
		"generate grid g 6 4 6 4 clamp-left",
		"load g l endload 0 -100",
	} {
		if _, err := s.Execute(line); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Execute("submit solve g l")
	if err != nil {
		t.Fatal(err)
	}
	if want := "submitted job-1 (queued): solve g l"; out != want {
		t.Errorf("submit output %q, want %q", out, want)
	}
	waitOut, err := s.Execute("wait job-1")
	if err != nil {
		t.Fatal(err)
	}
	// wait renders the underlying solve result line.
	if want := `solved "g"/"l"`; !strings.HasPrefix(waitOut, want) {
		t.Errorf("wait output %q", waitOut)
	}
	jobsOut, err := s.Execute("jobs user eng state done")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(jobsOut, "jobs (1):") {
		t.Errorf("jobs output %q", jobsOut)
	}
}
