// Package core implements the FEM-2 design method itself — the paper's
// primary contribution.  The method has three distinguishing aspects:
//
//  1. a top-down rather than bottom-up design process,
//  2. the design considers the entire system structure in terms of layers
//     of virtual machines, and
//  3. each layer of virtual machine is defined formally during the design
//     process.
//
// Accordingly, this package provides: LayerSpec, the formal description of
// one virtual machine layer (its data objects, operations, sequence
// control, data control, and storage management, with H-graph grammars as
// the formal definitions); System, the complete four-layer stack wired
// together; and DesignIterator, the method's evaluate-adjust loop that
// simulates a candidate configuration against a workload and iterates the
// hardware parameters until the requirements derived from the upper
// layers are met ("the entire design process may be iterated ... until
// the proper match of hardware and software organizations is found").
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/auvm"
	"repro/internal/cluster"
	"repro/internal/errs"
	"repro/internal/hgraph"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/navm"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
)

// LayerSpec is the design-time description of one virtual machine layer,
// structured exactly as the paper presents each layer: five component
// categories plus the formal H-graph grammars defining its data objects.
type LayerSpec struct {
	// Level names the layer.
	Level metrics.Level
	// Audience is the class of user the layer serves.
	Audience string
	// DataObjects, Operations, SequenceControl, DataControl,
	// StorageManagement are the five virtual machine component
	// categories from the paper.
	DataObjects       []string
	Operations        []string
	SequenceControl   []string
	DataControl       []string
	StorageManagement []string
	// Grammars names the formal H-graph grammars (keys of
	// hgraph.AllLevelGrammars) that define this layer's data objects.
	Grammars []string
}

// Validate checks the layer spec is complete and its formal grammars
// exist and are well-formed.
func (l *LayerSpec) Validate() error {
	for name, cat := range map[string][]string{
		"data objects": l.DataObjects, "operations": l.Operations,
		"sequence control": l.SequenceControl, "data control": l.DataControl,
		"storage management": l.StorageManagement,
	} {
		if len(cat) == 0 {
			return fmt.Errorf("core: layer %s has no %s", l.Level, name)
		}
	}
	all := hgraph.AllLevelGrammars()
	for _, g := range l.Grammars {
		gr, ok := all[g]
		if !ok {
			return fmt.Errorf("core: layer %s names unknown grammar %q", l.Level, g)
		}
		if errs := gr.WellFormed(); len(errs) > 0 {
			return fmt.Errorf("core: layer %s grammar %q ill-formed: %v", l.Level, g, errs[0])
		}
	}
	return nil
}

// String renders the spec in the paper's outline style.
func (l *LayerSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", l.Level, l.Audience)
	section := func(title string, items []string) {
		fmt.Fprintf(&b, "  %s:\n", title)
		for _, it := range items {
			fmt.Fprintf(&b, "    %s\n", it)
		}
	}
	section("Data objects", l.DataObjects)
	section("Operations", l.Operations)
	section("Sequence control", l.SequenceControl)
	section("Data control", l.DataControl)
	section("Storage management", l.StorageManagement)
	if len(l.Grammars) > 0 {
		fmt.Fprintf(&b, "  Formal grammars: %s\n", strings.Join(l.Grammars, ", "))
	}
	return b.String()
}

// FEM2Layers returns the four layer specifications of the FEM-2 design,
// transcribed from the paper, top layer first.
func FEM2Layers() []*LayerSpec {
	return []*LayerSpec{
		{
			Level:    metrics.LevelAUVM,
			Audience: "structural engineer at an interactive workstation",
			DataObjects: []string{
				"structure/substructure model", "grid description",
				"node/element description", "load set",
				"displacements of nodes", "stresses on elements",
			},
			Operations: []string{
				"define structure model", "generate grid", "define elements",
				"solve structure model/load set for displacements",
				"calculate stresses", "data base operations (store/retrieve)",
			},
			SequenceControl: []string{"direct interpretation of user commands"},
			DataControl:     []string{"workspace (user local data)", "data base (long-term storage; shared data)"},
			StorageManagement: []string{
				"dynamic storage allocation for models, results, workspaces",
				"data movement between data base and workspace",
			},
			Grammars: []string{"auvm-model"},
		},
		{
			Level:    metrics.LevelNAVM,
			Audience: "numerical analyst programming the parallel linear algebra",
			DataObjects: []string{
				"windows on arrays (row, column, block descriptors)",
			},
			Operations: []string{
				"tasks (programmer-defined parallel procedures)",
				"window operations: create window, access/assign data visible in a window",
				"broadcast data to a set of tasks",
				"linear algebra operations: inner product, vector operations",
			},
			SequenceControl: []string{
				"forall loops", "pardo ... end",
				"task control: initiate, pause, resume, terminate",
				"remote procedure call located by window",
			},
			DataControl: []string{
				"all data owned by a single task",
				"data accessible non-locally only via windows",
				"windows transmitted as parameters, partitioned, stored",
				"tasks communicate through windows",
			},
			StorageManagement: []string{
				"dynamic creation of data objects by a task",
				"data lifetime = lifetime of owner task",
				"dynamic creation of multiple task replications",
				"local data retained over pause/resume",
			},
			Grammars: []string{"navm-window", "navm-task"},
		},
		{
			Level:    metrics.LevelSPVM,
			Audience: "system programmer implementing the NAVM",
			DataObjects: []string{
				"code blocks/constants blocks",
				"task/procedure activation records",
				"window descriptors", "storage representations",
				"the seven task messages (initiate, pause, resume, terminate, remote call, remote return, load code)",
			},
			Operations: []string{
				"sequential operations", "library linear algebra routines",
				"format and send message", "decode and execute message",
			},
			SequenceControl: []string{"usual sequential control structures"},
			DataControl:     []string{"usual sequential language structures"},
			StorageManagement: []string{
				"general heap with variable size blocks",
			},
			Grammars: []string{"spvm-message", "spvm-activation"},
		},
		{
			Level:    metrics.LevelARCH,
			Audience: "hardware organisation",
			DataObjects: []string{
				"clusters of processing elements around a shared memory",
				"common communication network", "cluster input queues",
			},
			Operations: []string{
				"kernel PE fields incoming messages and assigns available PEs",
				"network transfer", "shared memory access",
			},
			SequenceControl: []string{"message-driven dispatch"},
			DataControl:     []string{"messages processed by any available PE"},
			StorageManagement: []string{
				"shared memory dynamic allocation", "reconfiguration around faults",
			},
			Grammars: nil,
		},
	}
}

// System is a complete FEM-2 instance: the simulated hardware, the
// per-cluster SPVM kernels, the NAVM runtime, the shared AUVM database,
// the job scheduler, and any number of user sessions — all sharing one
// metrics collector and trace so experiments see every level at once.
//
// System is a concurrent multi-tenant front end: the session registry is
// mutex-guarded, every session is wired to the shared job scheduler, and
// any number of goroutines may create sessions and submit work at once.
type System struct {
	Machine  *arch.Machine
	Runtime  *navm.Runtime
	Database *auvm.Database
	Metrics  *metrics.Collector
	Trace    *trace.Trace
	// Jobs is the system's asynchronous job service: a bounded worker
	// pool with per-model serialization, shared by every session.
	Jobs *job.Scheduler
	// Store is the durable KV layer under the database and the job
	// journal: a write-through cache over the configured backend.  With
	// the file backend, models, solution history, and job records
	// survive a restart.
	Store *store.CachedStore
	// Health is the degradation guard between the cache and the backend:
	// when backend writes keep failing it turns the store read-only
	// instead of letting errors cascade, and its background probe
	// re-arms writes once the backend recovers.  See store.Guard.
	Health *store.Guard
	// Cluster, when non-nil, is the lease coordinator of a multi-daemon
	// deployment (NewSystemClustered): it decides whether this daemon
	// may serve writes, and the server redirects mutating verbs to its
	// LeaderAddr otherwise.  Nil on a standalone system.
	Cluster *cluster.Coordinator
	// Obs is the system's live-metrics registry: every layer routes its
	// counters, gauges, and latency histograms through it, the stats
	// verb snapshots it, and the -metrics emitter ticks from it.
	Obs *obs.Registry

	storeCfg store.Config
	mu       sync.RWMutex
	sessions map[string]*auvm.Session
}

// NewSystem builds the full stack over a hardware configuration, with
// the job scheduler's worker pool bounded at GOMAXPROCS.
func NewSystem(cfg arch.Config) (*System, error) {
	return NewSystemWithWorkers(cfg, 0)
}

// NewSystemWithWorkers builds the full stack with the job scheduler's
// worker pool bounded at workers goroutines (<= 0 selects GOMAXPROCS).
// Workers start lazily on the first asynchronous submission.  Storage
// is the in-memory backend; use NewSystemWithStore for a durable one.
func NewSystemWithWorkers(cfg arch.Config, workers int) (*System, error) {
	return NewSystemWithStore(cfg, workers, store.Config{Backend: store.BackendMem})
}

// NewSystemWithStore builds the full stack over a configured storage
// backend: the store is opened (replaying and compacting a file-backed
// log as needed), its format version checked, the model database
// recovered from it, and the job journal attached — so with the file
// backend a restarted system serves every previously-stored model and
// the complete terminal job history, with jobs that were in flight at
// the crash deterministically failed.
func NewSystemWithStore(cfg arch.Config, workers int, sc store.Config) (*System, error) {
	return NewSystemWithStoreGuard(cfg, workers, sc, store.GuardOpts{})
}

// NewSystemWithStoreGuard is NewSystemWithStore with the degradation
// policy exposed: the guard's failure threshold, probe cadence, and
// state-change hook (the daemon logs from it).
func NewSystemWithStoreGuard(cfg arch.Config, workers int, sc store.Config, g store.GuardOpts) (*System, error) {
	m, err := arch.New(cfg)
	if err != nil {
		return nil, err
	}
	backing, err := store.Open(sc)
	if err != nil {
		return nil, err
	}
	// Layering, bottom up: backend → degradation guard → write-through
	// cache.  The guard under the cache means a degraded write is
	// refused before the cache sees it, so cache and backend never
	// diverge; reads keep flowing through both.
	guard := store.NewGuard(backing, g)
	st := store.NewCached(guard, 0)
	if err := store.EnsureFormat(st); err != nil {
		st.Close()
		return nil, err
	}
	s := &System{
		Machine:  m,
		Runtime:  navm.NewRuntime(m),
		Database: auvm.NewDatabaseOn(st, sc.BackendName()),
		Metrics:  metrics.NewCollector(),
		Trace:    trace.NewCapped(1 << 16),
		Store:    st,
		Health:   guard,
		Obs:      obs.New(),
		storeCfg: sc,
		sessions: map[string]*auvm.Session{},
	}
	st.SetObs(s.Obs)
	guard.SetObs(s.Obs)
	s.Jobs = job.NewScheduler(workers, s.Metrics)
	s.Jobs.SetObs(s.Obs)
	if _, err := s.Jobs.AttachJournal(st); err != nil {
		s.Jobs.Close()
		st.Close()
		return nil, err
	}
	s.Runtime.AttachInstrumentation(s.Metrics, s.Trace)
	return s, nil
}

// ClusterOpts configures lease-based multi-daemon coordination for
// NewSystemClustered (see internal/cluster and docs/cluster.md).
type ClusterOpts struct {
	// Owner names this daemon in the lease record (diagnostics only).
	Owner string
	// Advertise is the address written into the lease — where followers
	// redirect clients' mutating commands.  Required.
	Advertise string
	// TTL is the lease lifetime (zero selects cluster.DefaultTTL);
	// RenewEvery and PollEvery default to TTL/3.
	TTL        time.Duration
	RenewEvery time.Duration
	PollEvery  time.Duration
	// OnPromote, when non-nil, runs after the system finished takeover
	// recovery (store sealed, database reloaded, journal replayed) —
	// the daemon logs and optionally resubmits lost jobs from it.
	OnPromote func(epoch int64)
	// OnDemote, when non-nil, runs when this daemon loses the lease.
	OnDemote func(reason string)
	// Logf logs coordination transitions; nil discards.
	Logf func(format string, args ...any)
}

// NewSystemClustered builds the full stack as one member of a
// multi-daemon cluster sharing sc's store.  The layering grows one
// stage over the standalone stack: backend → degradation guard →
// epoch fence → write-through cache.  The fence sits under the cache
// so a write refused on a follower (or fenced on a stale leader)
// never pollutes the cache; the coordinator's own lease traffic goes
// through the guard, below the fence, because lease writes are how
// epochs change.
//
// Unlike the standalone constructors, the job journal is attached
// without a recovery scan: recovery rewrites records, which only the
// leader may do, so it runs in the promotion sequence instead.  The
// coordinator is started before returning — a daemon pointed at an
// unowned store is leader when this returns.
func NewSystemClustered(cfg arch.Config, workers int, sc store.Config, g store.GuardOpts, co ClusterOpts) (*System, error) {
	if co.Advertise == "" {
		return nil, fmt.Errorf("core: cluster mode requires an advertise address")
	}
	if sc.Backend == store.BackendFile {
		sc.Shared = true // N daemons append to one log; see store.FileOpts
	}
	m, err := arch.New(cfg)
	if err != nil {
		return nil, err
	}
	backing, err := store.Open(sc)
	if err != nil {
		return nil, err
	}
	guard := store.NewGuard(backing, g)
	reg := obs.New()
	// s is closed over by the coordinator hooks below; they only fire
	// after coord.Start(), by which point it is fully built.
	var s *System
	coord := cluster.New(cluster.Config{
		Store:      guard,
		Owner:      co.Owner,
		Advertise:  co.Advertise,
		TTL:        co.TTL,
		RenewEvery: co.RenewEvery,
		PollEvery:  co.PollEvery,
		Refresh:    func() error { return s.Store.Refresh() },
		OnPromote:  func(epoch int64) error { return s.promote(epoch, co.OnPromote) },
		OnDemote:   co.OnDemote,
		Obs:        reg,
		Logf:       co.Logf,
	})
	fenced := cluster.NewFenced(guard, coord, reg)
	st := store.NewCached(fenced, 0)
	// Format check through the guard: on a follower the fenced handle
	// refuses the first-ever format write, and the key predates any
	// lease by definition.
	if err := store.EnsureFormat(guard); err != nil {
		st.Close()
		return nil, err
	}
	s = &System{
		Machine:  m,
		Runtime:  navm.NewRuntime(m),
		Database: auvm.NewDatabaseOn(st, sc.BackendName()),
		Metrics:  metrics.NewCollector(),
		Trace:    trace.NewCapped(1 << 16),
		Store:    st,
		Health:   guard,
		Cluster:  coord,
		Obs:      reg,
		storeCfg: sc,
		sessions: map[string]*auvm.Session{},
	}
	st.SetObs(reg)
	guard.SetObs(reg)
	s.Jobs = job.NewScheduler(workers, s.Metrics)
	s.Jobs.SetObs(reg)
	s.Jobs.SetJournal(st)
	s.Jobs.SetEpochSource(coord.Epoch)
	s.Runtime.AttachInstrumentation(s.Metrics, s.Trace)
	coord.Start()
	return s, nil
}

// promote is the takeover sequence, run on the coordinator goroutine
// with the lease won but IsLeader still false, so the server keeps
// refusing writes until recovery finished.  Seal truncates the dead
// leader's torn tail and folds in everything it committed; Reload
// re-derives the solution counters it may have advanced; and
// RecoverJournal rebuilds the job history, failing whatever was in
// flight when it died.
func (s *System) promote(epoch int64, hook func(int64)) error {
	if err := s.Store.Seal(); err != nil {
		return fmt.Errorf("sealing store: %w", err)
	}
	s.Database.Reload()
	if _, err := s.Jobs.RecoverJournal(); err != nil {
		return fmt.Errorf("replaying job journal: %w", err)
	}
	if hook != nil {
		hook(epoch)
	}
	return nil
}

// ClusterRole reports "leader" or "follower" in clustered mode, ""
// on a standalone system.  The wire Welcome envelope carries it.
func (s *System) ClusterRole() string {
	if s.Cluster == nil {
		return ""
	}
	return s.Cluster.Role()
}

// ClusterLeader reports the cluster leader's advertised address as
// this daemon knows it; "" standalone or before any leader was seen.
func (s *System) ClusterLeader() string {
	if s.Cluster == nil {
		return ""
	}
	return s.Cluster.LeaderAddr()
}

// StorageBackend reports the configured storage backend name ("mem",
// "file") — surfaced by the version verb and the wire Welcome
// envelope.
func (s *System) StorageBackend() string { return s.storeCfg.BackendName() }

// Degraded reports whether the store has degraded to read-only mode.
// ping/version surface it, and the server refuses mutating verbs with
// the "degraded" wire code while it holds.
func (s *System) Degraded() bool { return s.Health != nil && s.Health.Degraded() }

// StatsSnapshot returns a point-in-time copy of the system's live
// metrics — exactly what the stats verb answers.
func (s *System) StatsSnapshot() obs.Snapshot { return s.Obs.Snapshot() }

// Session returns the named user session, creating it on first use —
// FEM-2's multi-user access.  Safe for concurrent use: simultaneous
// calls for one user all receive the same session.
func (s *System) Session(user string) *auvm.Session {
	s.mu.RLock()
	sess, ok := s.sessions[user]
	s.mu.RUnlock()
	if ok {
		return sess
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[user]; ok { // lost the creation race
		return sess
	}
	sess = auvm.NewSession(user, s.Database)
	sess.RT = s.Runtime
	sess.Metrics = s.Metrics
	sess.Jobs = s.Jobs
	sess.Health = s.Degraded
	sess.Obs = s.Obs
	s.sessions[user] = sess
	return sess
}

// Users returns the active session names, sorted.
func (s *System) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sessions))
	for u := range s.sessions {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Sessions returns the active sessions, sorted by user name.
func (s *System) Sessions() []*auvm.Session {
	s.mu.RLock()
	out := make([]*auvm.Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// CloseSession removes a user's session from the registry, cancelling
// the user's queued and running jobs, and reports whether the session
// existed.  The user's stored models stay in the shared database; a
// later Session(user) starts fresh.  The cancel happens under the
// registry lock, so a same-named session recreated immediately after
// cannot have its fresh jobs swept up by this close.
func (s *System) CloseSession(user string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[user]; !ok {
		return false
	}
	delete(s.sessions, user)
	s.Jobs.CancelOwner(user)
	return true
}

// ResubmitLost requeues jobs the last crash destroyed ("lost to
// restart"), bounded by policy, executing each under its original
// owner's session.  Opt-in via the daemon's -resubmit-lost flag; see
// job.ResubmitPolicy for the bounds and backoff.
func (s *System) ResubmitLost(ctx context.Context, p job.ResubmitPolicy) ([]job.JobID, error) {
	return s.Jobs.ResubmitLost(ctx, func(owner string) job.Executor { return s.Session(owner) }, p)
}

// Drain waits for every live job to reach a terminal state, or for ctx
// to die — the graceful half of shutdown.  Drain does not stop new
// submissions; a serving front end stops accepting first, then drains,
// then Closes (which cancels whatever a timed-out drain left behind).
func (s *System) Drain(ctx context.Context) error { return s.Jobs.Drain(ctx) }

// Close shuts the system down: queued jobs are cancelled, running jobs
// are interrupted, the worker pool drains, and the store closes (every
// acknowledged write is already on disk — the store needs no flush).
// Idempotent.  In clustered mode the coordinator stops first,
// releasing the lease in place so a healthy peer takes over without
// waiting out the TTL.
func (s *System) Close() {
	if s.Cluster != nil {
		s.Cluster.Stop()
	}
	s.Jobs.Close()
	if s.Store != nil {
		s.Store.Close()
	}
}

// ValidateDesign checks every layer specification against its formal
// grammars — the design method's "firm up" step.
func (s *System) ValidateDesign() error {
	for _, l := range FEM2Layers() {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Requirements is one simulated evaluation of a candidate configuration:
// the processing, storage, and communication requirements the paper's
// simulations were designed to measure, plus the resulting makespan.
type Requirements struct {
	Config       arch.Config
	Makespan     int64
	Flops        int64
	Messages     int64
	MessageWords int64
	StorageWords int64
	Utilization  float64
}

// Workload is a candidate workload the design iterator evaluates: it runs
// a representative computation on a fresh System and returns an error if
// the workload itself failed.
type Workload func(sys *System) error

// Evaluate builds a fresh system with cfg, runs the workload, and
// collects the requirements.
func Evaluate(cfg arch.Config, w Workload) (*Requirements, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := w(sys); err != nil {
		return nil, err
	}
	var storage int64
	for _, c := range sys.Machine.Clusters() {
		storage += c.Memory.HighWater()
	}
	for _, k := range sys.Runtime.Kernels() {
		storage += k.Heap.HighWater()
	}
	return &Requirements{
		Config:       cfg,
		Makespan:     sys.Machine.Makespan(),
		Flops:        sys.Metrics.Get(metrics.LevelNAVM, metrics.CtrFlops),
		Messages:     sys.Machine.Network().TotalMessages(),
		MessageWords: sys.Machine.Network().TotalWords(),
		StorageWords: storage,
		Utilization:  sys.Machine.Utilization(),
	}, nil
}

// Objective scores a Requirements; lower is better.  The design iterator
// minimises it.
type Objective func(*Requirements) float64

// MakespanObjective minimises completion time.
func MakespanObjective(r *Requirements) float64 { return float64(r.Makespan) }

// ErrNoViableConfig is returned when no candidate configuration completes
// the workload.
var ErrNoViableConfig = errors.New("core: no candidate configuration completed the workload")

// IterationRecord documents one design iteration, per the method's
// requirement that the process be recorded and repeatable.
type IterationRecord struct {
	Iteration int
	Req       *Requirements
	Score     float64
	Best      bool
}

// DesignIterator runs the FEM-2 design method's iterate step: evaluate
// each candidate hardware configuration against the workload the upper
// layers impose, and keep the configuration with the best objective.
type DesignIterator struct {
	// Candidates is the hardware design space to sweep.
	Candidates []arch.Config
	// Workload is the representative upper-layer computation.
	Workload Workload
	// Objective scores each evaluation; defaults to MakespanObjective.
	Objective Objective
}

// Run evaluates every candidate and returns the winning requirements plus
// the full iteration history.
func (d *DesignIterator) Run() (*Requirements, []IterationRecord, error) {
	return d.RunContext(context.Background())
}

// RunContext is Run under a context: the sweep stops between candidates
// once ctx is done, returning an error wrapping errs.ErrCancelled
// together with the partial history.
func (d *DesignIterator) RunContext(ctx context.Context) (*Requirements, []IterationRecord, error) {
	if len(d.Candidates) == 0 {
		return nil, nil, fmt.Errorf("%w: core: design iterator has no candidates", errs.ErrUsage)
	}
	obj := d.Objective
	if obj == nil {
		obj = MakespanObjective
	}
	var best *Requirements
	bestScore := 0.0
	var history []IterationRecord
	for i, cfg := range d.Candidates {
		if err := ctx.Err(); err != nil {
			return nil, history, fmt.Errorf("%w: %w", errs.ErrCancelled, err)
		}
		req, err := Evaluate(cfg, d.Workload)
		if err != nil {
			// An infeasible configuration is part of the design
			// record, not a fatal error.
			history = append(history, IterationRecord{Iteration: i, Req: &Requirements{Config: cfg}, Score: -1})
			continue
		}
		score := obj(req)
		rec := IterationRecord{Iteration: i, Req: req, Score: score}
		if best == nil || score < bestScore {
			best, bestScore = req, score
			rec.Best = true
		}
		history = append(history, rec)
	}
	if best == nil {
		return nil, history, ErrNoViableConfig
	}
	return best, history, nil
}
