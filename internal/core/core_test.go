package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/fem"
	"repro/internal/metrics"
)

func TestFEM2LayersCompleteAndValid(t *testing.T) {
	layers := FEM2Layers()
	if len(layers) != 4 {
		t.Fatalf("layers = %d, want 4", len(layers))
	}
	wantOrder := []metrics.Level{metrics.LevelAUVM, metrics.LevelNAVM, metrics.LevelSPVM, metrics.LevelARCH}
	for i, l := range layers {
		if l.Level != wantOrder[i] {
			t.Errorf("layer %d is %v, want %v", i, l.Level, wantOrder[i])
		}
		if err := l.Validate(); err != nil {
			t.Errorf("layer %v invalid: %v", l.Level, err)
		}
	}
	// The SPVM layer must document the seven messages.
	spvm := layers[2]
	found := false
	for _, d := range spvm.DataObjects {
		if strings.Contains(d, "seven") {
			found = true
		}
	}
	if !found {
		t.Error("SPVM layer does not document the seven message types")
	}
}

func TestLayerSpecValidateCatchesGaps(t *testing.T) {
	l := &LayerSpec{Level: metrics.LevelAUVM, Audience: "x"}
	if err := l.Validate(); err == nil {
		t.Error("empty layer validated")
	}
	full := FEM2Layers()[0]
	bad := *full
	bad.Grammars = []string{"no-such-grammar"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown grammar accepted")
	}
}

func TestLayerSpecString(t *testing.T) {
	s := FEM2Layers()[1].String()
	for _, want := range []string{"NAVM", "Data objects", "windows", "forall", "Formal grammars"} {
		if !strings.Contains(s, want) {
			t.Errorf("layer string missing %q", want)
		}
	}
}

func TestNewSystemWiring(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.Clusters = 2
	cfg.PEsPerCluster = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine == nil || sys.Runtime == nil || sys.Database == nil {
		t.Fatal("system missing components")
	}
	if err := sys.ValidateDesign(); err != nil {
		t.Fatal(err)
	}
	// One kernel per cluster.
	if len(sys.Runtime.Kernels()) != 2 {
		t.Errorf("kernels = %d", len(sys.Runtime.Kernels()))
	}
	// Sessions are created on demand, cached, share the DB.
	a := sys.Session("alice")
	if sys.Session("alice") != a {
		t.Error("session not cached")
	}
	b := sys.Session("bob")
	if a == b {
		t.Error("distinct users share a session")
	}
	if got := sys.Users(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Errorf("Users = %v", got)
	}
	if a.DB != b.DB {
		t.Error("users do not share the database")
	}
	if a.RT != sys.Runtime {
		t.Error("session not wired to runtime")
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	if _, err := NewSystem(arch.Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// solveWorkload is a representative upper-layer computation: a plate
// model solved in parallel through the AUVM command language.
func solveWorkload(nx, ny, p int) Workload {
	return func(sys *System) error {
		s := sys.Session("eng")
		cmds := []string{
			"generate grid plate " +
				itoa(nx) + " " + itoa(ny) + " " + itoa(nx) + " " + itoa(ny) + " clamp-left",
			"load plate tip endload 0 -1000",
			"solve plate tip parallel " + itoa(p),
		}
		for _, c := range cmds {
			if _, err := s.Execute(c); err != nil {
				return err
			}
		}
		return nil
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestEvaluateCollectsRequirements(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.Clusters = 2
	cfg.PEsPerCluster = 4
	req, err := Evaluate(cfg, solveWorkload(6, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if req.Makespan == 0 {
		t.Error("no makespan")
	}
	if req.Flops == 0 {
		t.Error("no flops")
	}
	if req.Messages == 0 {
		t.Error("no messages")
	}
	if req.Utilization <= 0 || req.Utilization > 1 {
		t.Errorf("utilization = %g", req.Utilization)
	}
}

func TestEvaluatePropagatesWorkloadError(t *testing.T) {
	cfg := arch.DefaultConfig()
	boom := errors.New("boom")
	if _, err := Evaluate(cfg, func(sys *System) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("workload error lost: %v", err)
	}
}

func TestDesignIteratorPicksFasterConfig(t *testing.T) {
	small := arch.DefaultConfig()
	small.Clusters = 1
	small.PEsPerCluster = 2
	big := arch.DefaultConfig()
	big.Clusters = 4
	big.PEsPerCluster = 6
	it := &DesignIterator{
		Candidates: []arch.Config{small, big},
		Workload:   solveWorkload(8, 6, 8),
	}
	best, history, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("history = %d records", len(history))
	}
	if best.Config.Clusters != 4 {
		t.Errorf("iterator picked %d clusters; the larger machine should win on makespan (history: %+v)",
			best.Config.Clusters, history)
	}
	// Exactly one record can carry Best at each improvement; the last
	// Best record must match the returned config.
	var lastBest *IterationRecord
	for i := range history {
		if history[i].Best {
			lastBest = &history[i]
		}
	}
	if lastBest == nil || lastBest.Req.Config.Clusters != best.Config.Clusters {
		t.Error("history Best flag inconsistent with result")
	}
}

func TestDesignIteratorRecordsInfeasible(t *testing.T) {
	// A candidate whose shared memory cannot hold the model fails but
	// stays in the record.
	tiny := arch.DefaultConfig()
	tiny.SharedMemoryWords = 8
	ok := arch.DefaultConfig()
	it := &DesignIterator{
		Candidates: []arch.Config{tiny, ok},
		Workload: func(sys *System) error {
			root, err := sys.Runtime.NewRootTask()
			if err != nil {
				return err
			}
			_, err = root.NewArray("big", 64, 64)
			return err
		},
	}
	best, history, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if best.Config.SharedMemoryWords != ok.SharedMemoryWords {
		t.Error("iterator picked the infeasible config")
	}
	if history[0].Score != -1 {
		t.Error("infeasible candidate not marked")
	}
}

func TestDesignIteratorNoCandidates(t *testing.T) {
	it := &DesignIterator{Workload: func(*System) error { return nil }}
	if _, _, err := it.Run(); err == nil {
		t.Error("empty candidate list accepted")
	}
}

func TestDesignIteratorAllInfeasible(t *testing.T) {
	cfg := arch.DefaultConfig()
	it := &DesignIterator{
		Candidates: []arch.Config{cfg},
		Workload:   func(*System) error { return errors.New("always fails") },
	}
	if _, _, err := it.Run(); !errors.Is(err, ErrNoViableConfig) {
		t.Errorf("want ErrNoViableConfig, got %v", err)
	}
}

func TestEndToEndAllFourLayers(t *testing.T) {
	// Integration: an AUVM command drives NAVM tasks, which send SPVM
	// messages, which the ARCH simulation costs — counters must appear
	// at every level.
	cfg := arch.DefaultConfig()
	cfg.Clusters = 2
	cfg.PEsPerCluster = 4
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Session("eng")
	for _, c := range []string{
		"generate grid plate 6 4 6 4 clamp-left",
		"load plate tip endload 0 -1000",
		"solve plate tip parallel 4",
		"stresses plate",
	} {
		if _, err := s.Execute(c); err != nil {
			t.Fatalf("%q: %v", c, err)
		}
	}
	if got := sys.Metrics.Get(metrics.LevelAUVM, metrics.CtrOps); got != 4 {
		t.Errorf("AUVM ops = %d", got)
	}
	if sys.Metrics.Get(metrics.LevelNAVM, metrics.CtrFlops) == 0 {
		t.Error("no NAVM flops")
	}
	if sys.Metrics.Get(metrics.LevelARCH, metrics.CtrCycles) == 0 {
		t.Error("no ARCH cycles")
	}
	if sys.Machine.Makespan() == 0 {
		t.Error("no simulated time")
	}
	// The solution is physically sensible: the plate tip moved down.
	sol := s.WS.Solution("plate")
	if sol == nil {
		t.Fatal("no solution")
	}
	tip := sol.U[fem.DOF(fem.GridNodeID(4, 6, 2), 1)]
	if tip >= 0 {
		t.Errorf("plate tip moved up: %g", tip)
	}
}
