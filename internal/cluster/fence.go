package cluster

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/store"
)

// Fenced is the write barrier between a daemon and the shared store:
// reads pass through, writes require a live lease and are rewritten
// into conditional batches asserting store.KeyEpoch still holds this
// daemon's epoch.  It sits between the guard and the cache in core's
// layering, so a rejected write never pollutes the cache.
type Fenced struct {
	inner store.Store
	coord *Coordinator

	mFenced *obs.Counter
}

// NewFenced wraps inner with coord's fence.
func NewFenced(inner store.Store, coord *Coordinator, reg *obs.Registry) *Fenced {
	return &Fenced{inner: inner, coord: coord, mFenced: reg.Counter(obs.ClusterFencedWrites)}
}

// Get passes through: followers serve reads.
func (f *Fenced) Get(key string) ([]byte, error) { return f.inner.Get(key) }

// Seek passes through like Get.
func (f *Fenced) Seek(prefix string, fn func(key string, value []byte) bool) error {
	return f.inner.Seek(prefix, fn)
}

func (f *Fenced) Put(key string, value []byte) error {
	return f.write([]store.Op{store.Put(key, value)})
}

func (f *Fenced) Delete(key string) error {
	return f.write([]store.Op{store.Del(key)})
}

func (f *Fenced) Batch(ops []store.Op) error { return f.write(ops) }

// write stamps the epoch fence onto one batch.  Not leader → refuse
// before touching the store; epoch superseded → ErrFenced and an
// immediate self-demotion (somebody took over while we still thought
// we led — the exact stale-leader scenario the fence exists for).
func (f *Fenced) write(ops []store.Op) error {
	epoch, ok := f.coord.Serving()
	if !ok {
		return ErrNotLeader
	}
	err := store.BatchIf(f.inner, store.KeyEpoch, epochBytes(epoch), ops)
	if errors.Is(err, store.ErrConflict) {
		f.mFenced.Inc()
		f.coord.fence()
		return fmt.Errorf("%w (epoch %d superseded)", ErrFenced, epoch)
	}
	return err
}

// BatchIf forwards a caller-supplied condition in place of the epoch
// fence (still leader-gated).  Nothing above the fence uses it today —
// the coordinator's own lease CAS deliberately bypasses this wrapper.
func (f *Fenced) BatchIf(key string, want []byte, ops []store.Op) error {
	if _, ok := f.coord.Serving(); !ok {
		return ErrNotLeader
	}
	return store.BatchIf(f.inner, key, want, ops)
}

// Refresh passes through so followers can tail the leader's writes.
func (f *Fenced) Refresh() error { return store.Refresh(f.inner) }

// Seal passes through for the takeover sequence.
func (f *Fenced) Seal() error { return store.Seal(f.inner) }

// Close closes the backend chain.
func (f *Fenced) Close() error { return f.inner.Close() }
