package cluster_test

import (
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/store"
)

// fakeClock is the injectable time source for the lease-edge tests:
// nothing moves unless the test advances it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// coordOver builds a hand-driven Coordinator (Start never called, so
// TryAcquire/Renew run only when the test says).
func coordOver(st store.Store, owner, addr string, ttl time.Duration, clock *fakeClock, reg *obs.Registry) *cluster.Coordinator {
	cfg := cluster.Config{Store: st, Owner: owner, Advertise: addr, TTL: ttl, Obs: reg}
	if clock != nil {
		cfg.Clock = clock.Now
	}
	return cluster.New(cfg)
}

func storedEpoch(t *testing.T, st store.Store) int64 {
	t.Helper()
	raw, err := st.Get(store.KeyEpoch)
	if err != nil {
		t.Fatalf("read %s: %v", store.KeyEpoch, err)
	}
	n, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		t.Fatalf("parse %s = %q: %v", store.KeyEpoch, raw, err)
	}
	return n
}

func TestAcquireFreshLease(t *testing.T) {
	st := store.NewMemStore()
	defer st.Close()
	c := coordOver(st, "a", "a:1", time.Second, nil, nil)
	ok, err := c.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("TryAcquire = %v, %v, want true, nil", ok, err)
	}
	if !c.IsLeader() || c.Epoch() != 1 || c.Role() != "leader" {
		t.Fatalf("leader=%v epoch=%d role=%s after fresh acquire", c.IsLeader(), c.Epoch(), c.Role())
	}
	if c.LeaderAddr() != "a:1" {
		t.Fatalf("LeaderAddr = %q, want a:1", c.LeaderAddr())
	}
	if e := storedEpoch(t, st); e != 1 {
		t.Fatalf("stored epoch = %d, want 1", e)
	}
	// A second daemon sees a live lease: stays follower, learns the
	// leader's address for redirects.
	f := coordOver(st, "b", "b:1", time.Second, nil, nil)
	ok, err = f.TryAcquire()
	if err != nil || ok {
		t.Fatalf("follower TryAcquire = %v, %v, want false, nil", ok, err)
	}
	if f.Role() != "follower" || f.LeaderAddr() != "a:1" || f.Epoch() != 1 {
		t.Fatalf("follower role=%s leaderAddr=%q epoch=%d", f.Role(), f.LeaderAddr(), f.Epoch())
	}
}

// Stop releases the lease in place, so a graceful handover does not
// wait out the TTL — and the successor counts it as a failover (it
// took over a held lease).
func TestStopReleasesLeaseForImmediateTakeover(t *testing.T) {
	st := store.NewMemStore()
	defer st.Close()
	a := coordOver(st, "a", "a:1", time.Hour, nil, nil)
	if ok, _ := a.TryAcquire(); !ok {
		t.Fatal("a did not acquire")
	}
	a.Stop()
	if a.IsLeader() {
		t.Fatal("a still leader after Stop")
	}

	reg := obs.New()
	b := coordOver(st, "b", "b:1", time.Hour, nil, reg)
	ok, err := b.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("b TryAcquire after release = %v, %v, want true, nil", ok, err)
	}
	if b.Epoch() != 2 {
		t.Fatalf("b epoch = %d, want 2", b.Epoch())
	}
	if got := reg.Counter(obs.ClusterFailovers).Load(); got != 1 {
		t.Fatalf("failover counter = %d, want 1 (takeover of a held lease)", got)
	}
	if e := storedEpoch(t, st); e != 2 {
		t.Fatalf("stored epoch = %d, want 2 after takeover", e)
	}
}

// Satellite edge 1: renewal exactly at TTL.  At the boundary the lease
// counts as expired — IsLeader goes false, writes stop — but renewal
// does not consult the clock: the CAS on the last-written bytes
// decides.  A leader paused right up to the boundary either renews
// cleanly (nobody took over) or learns it was deposed; never both.
func TestRenewalExactlyAtTTLBoundary(t *testing.T) {
	st := store.NewMemStore()
	defer st.Close()
	clock := newFakeClock()
	a := coordOver(st, "a", "a:1", time.Second, clock, nil)
	if ok, _ := a.TryAcquire(); !ok {
		t.Fatal("a did not acquire")
	}

	clock.Advance(time.Second) // exactly TTL
	if a.IsLeader() {
		t.Fatal("IsLeader true exactly at TTL; boundary must count as expired")
	}
	// Nobody took over: the CAS still matches, renewal recovers the
	// leadership without a new election.
	if err := a.Renew(); err != nil {
		t.Fatalf("Renew at boundary with lease intact: %v", err)
	}
	if !a.IsLeader() || a.Epoch() != 1 {
		t.Fatalf("leader=%v epoch=%d after boundary renewal, want true, 1", a.IsLeader(), a.Epoch())
	}

	// Same boundary again, but this time a follower (same clock) grabs
	// the expired lease first: the late renewal must conflict and
	// demote, leaving exactly one leader.
	clock.Advance(time.Second)
	b := coordOver(st, "b", "b:1", time.Second, clock, nil)
	if ok, err := b.TryAcquire(); err != nil || !ok {
		t.Fatalf("b acquire at boundary = %v, %v, want true, nil", ok, err)
	}
	err := a.Renew()
	if !errors.Is(err, cluster.ErrNotLeader) {
		t.Fatalf("a.Renew after takeover = %v, want ErrNotLeader", err)
	}
	if a.IsLeader() || !b.IsLeader() {
		t.Fatalf("leaders after boundary race: a=%v b=%v, want false/true", a.IsLeader(), b.IsLeader())
	}
	if b.Epoch() != 2 || storedEpoch(t, st) != 2 {
		t.Fatalf("epoch after takeover = %d (stored %d), want 2", b.Epoch(), storedEpoch(t, st))
	}
}

// Satellite edge 2: two followers race for an expired lease.  One
// contender's CAS is slowed by seeded fault latency so both read the
// lease as takeable; the conditional batch, not luck, must let exactly
// one through.
func TestTwoFollowerAcquisitionRace(t *testing.T) {
	mem := store.NewMemStore()
	defer mem.Close()
	// a's conditional writes stall 50ms: it reads the empty lease, then
	// loses the CAS to b, which started later but isn't delayed.
	in := fault.NewInjector(7, fault.Rule{Op: fault.OpBatchIf, Fault: fault.Fault{Delay: 50 * time.Millisecond}})
	slow := fault.NewStore(mem, in)
	a := coordOver(slow, "a", "a:1", time.Hour, nil, nil)
	b := coordOver(mem, "b", "b:1", time.Hour, nil, nil)

	type res struct {
		ok  bool
		err error
	}
	aDone := make(chan res, 1)
	go func() {
		ok, err := a.TryAcquire()
		aDone <- res{ok, err}
	}()
	time.Sleep(10 * time.Millisecond) // a is inside its delayed CAS
	bOK, bErr := b.TryAcquire()
	aRes := <-aDone

	if bErr != nil || aRes.err != nil {
		t.Fatalf("errors from the race: a=%v b=%v", aRes.err, bErr)
	}
	if !bOK || aRes.ok {
		t.Fatalf("race outcome a=%v b=%v, want only b (a's CAS was stalled)", aRes.ok, bOK)
	}
	if aRes.ok == bOK {
		t.Fatal("both contenders won the lease")
	}
	if in.Calls(fault.OpBatchIf) == 0 {
		t.Fatal("a never reached its conditional write; the race did not happen")
	}
	if a.IsLeader() || !b.IsLeader() {
		t.Fatalf("leaders after race: a=%v b=%v", a.IsLeader(), b.IsLeader())
	}
	if storedEpoch(t, mem) != 1 {
		t.Fatalf("stored epoch = %d, want 1 (single acquisition)", storedEpoch(t, mem))
	}
	// The loser retries on its next poll and correctly observes b.
	if ok, err := a.TryAcquire(); err != nil || ok {
		t.Fatalf("loser's next attempt = %v, %v, want false, nil", ok, err)
	}
	if a.LeaderAddr() != "b:1" {
		t.Fatalf("loser's LeaderAddr = %q, want b:1", a.LeaderAddr())
	}
}

// Satellite edge 3: a fenced stale leader.  a's clock stands still, so
// it believes its lease is live; b's clock has run past the TTL and it
// takes over, bumping the epoch.  a's next fenced write must be
// rejected by the epoch condition and demote a on the spot — the write
// never reaches the store.
func TestFencedStaleLeaderWriteRejected(t *testing.T) {
	st := store.NewMemStore()
	defer st.Close()
	aClock, bClock := newFakeClock(), newFakeClock()
	reg := obs.New()
	a := coordOver(st, "a", "a:1", time.Second, aClock, nil)
	fenced := cluster.NewFenced(st, a, reg)
	if ok, _ := a.TryAcquire(); !ok {
		t.Fatal("a did not acquire")
	}
	if err := fenced.Put("data:x", []byte("pre")); err != nil {
		t.Fatalf("leader's fenced write: %v", err)
	}

	bClock.Advance(2 * time.Second) // past a's expiry, by b's reading
	b := coordOver(st, "b", "b:1", time.Second, bClock, nil)
	if ok, err := b.TryAcquire(); err != nil || !ok {
		t.Fatalf("b takeover = %v, %v, want true, nil", ok, err)
	}

	// a's clock never moved: it still thinks it holds a live lease.
	if !a.IsLeader() {
		t.Fatal("test premise broken: a no longer believes it leads")
	}
	err := fenced.Put("data:x", []byte("stale"))
	if !errors.Is(err, cluster.ErrFenced) {
		t.Fatalf("stale write = %v, want ErrFenced", err)
	}
	if !errors.Is(err, cluster.ErrNotLeader) {
		t.Fatal("ErrFenced must satisfy errors.Is(err, ErrNotLeader)")
	}
	if a.IsLeader() {
		t.Fatal("a still leader after being fenced")
	}
	if got := reg.Counter(obs.ClusterFencedWrites).Load(); got != 1 {
		t.Fatalf("fenced-writes counter = %d, want 1", got)
	}
	if v, _ := st.Get("data:x"); string(v) != "pre" {
		t.Fatalf("data:x = %q; the fenced write reached the store", v)
	}
	// Demoted, the next write refuses before touching the store at all.
	if err := fenced.Put("data:y", nil); !errors.Is(err, cluster.ErrNotLeader) {
		t.Fatalf("write after demotion = %v, want ErrNotLeader", err)
	}
}

// Followers refuse fenced writes outright (no store round-trip), and a
// renewed leader keeps its epoch — renewal is not an election.
func TestFencedRefusesOnFollowerAndRenewKeepsEpoch(t *testing.T) {
	st := store.NewMemStore()
	defer st.Close()
	a := coordOver(st, "a", "a:1", time.Hour, nil, nil)
	f := coordOver(st, "f", "f:1", time.Hour, nil, nil)
	fencedF := cluster.NewFenced(st, f, nil)
	if ok, _ := a.TryAcquire(); !ok {
		t.Fatal("a did not acquire")
	}
	if ok, _ := f.TryAcquire(); ok {
		t.Fatal("f acquired over a live lease")
	}
	if err := fencedF.Put("k", nil); !errors.Is(err, cluster.ErrNotLeader) {
		t.Fatalf("follower fenced write = %v, want ErrNotLeader", err)
	}
	for i := 0; i < 3; i++ {
		if err := a.Renew(); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if a.Epoch() != 1 || storedEpoch(t, st) != 1 {
		t.Fatalf("epoch after renewals = %d (stored %d), want 1", a.Epoch(), storedEpoch(t, st))
	}
}
