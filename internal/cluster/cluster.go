// Package cluster is the lease-based single-writer coordination layer
// that lets N fem2d daemons serve one shared store with automatic
// failover (docs/cluster.md).
//
// The protocol is deliberately small: the store itself is the only
// coordination medium.  One record under store.KeyLease names the
// current leader, its advertised address, a monotonically increasing
// epoch, and an expiry instant; a companion record under
// store.KeyEpoch holds just the epoch.  All lease transitions are
// compare-and-batch (store.Conditional) on the raw bytes of the lease
// record, so two contenders racing for an expired lease cannot both
// win — the store's one lock (and, for a shared file, the file lock)
// arbitrates.
//
// The epoch is the fencing token.  Every data write a leader performs
// goes through Fenced, which turns it into a BatchIf conditioned on
// store.KeyEpoch still holding the leader's epoch.  A takeover bumps
// the epoch in the same atomic batch that rewrites the lease, so a
// deposed leader's late write — scheduled before it learned it lost —
// fails with ErrConflict instead of corrupting the new leader's state.
// KeyEpoch changes only at takeover (renewals rewrite only KeyLease),
// so the leader's own renewal loop never races its write path.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// ErrNotLeader is returned by Fenced writes on a daemon that does not
// currently hold the lease.  The server maps it to the wire code
// "not-leader" with the leader's advertised address attached.
var ErrNotLeader = errors.New("cluster: not the leader")

// ErrFenced is returned when a write was rejected by the epoch check:
// this daemon held the lease once, but a takeover superseded its
// epoch.  It satisfies errors.Is(err, ErrNotLeader) so the layers
// above need only one test.
var ErrFenced = fmt.Errorf("%w: fenced by a newer epoch", ErrNotLeader)

// Record is the lease as stored under store.KeyLease, JSON-encoded.
// Epoch only ever increases; Expires is compared against the local
// clock, so the scheme assumes clocks skew less than the TTL (the
// usual lease caveat, stated in docs/cluster.md).
type Record struct {
	Epoch   int64  `json:"epoch"`
	Owner   string `json:"owner"`
	Addr    string `json:"addr"`
	Expires int64  `json:"expires_unix_nano"`
}

// expired reports whether the lease is takeable at instant now.  The
// boundary counts as expired: a lease with TTL t protects writes for
// strictly less than t, which keeps "renew exactly at TTL" and
// "acquire exactly at TTL" from both succeeding on the same reading.
func (r Record) expired(now time.Time) bool { return now.UnixNano() >= r.Expires }

// epochBytes is the KeyEpoch encoding: decimal ASCII.
func epochBytes(e int64) []byte { return []byte(strconv.FormatInt(e, 10)) }

// Defaults for Config's zero values.
const (
	DefaultTTL = 2 * time.Second
)

// Config parameterizes a Coordinator.
type Config struct {
	// Store is the handle lease I/O goes through.  It must support
	// store.Conditional and sit *below* the Fenced wrapper (lease
	// writes are how epochs change; fencing them would deadlock the
	// protocol).  In core's layering this is the degradation guard.
	Store store.Store
	// Owner names this daemon in the lease record (diagnostics only).
	Owner string
	// Advertise is the address written into the lease — what followers
	// hand to redirected clients.  Required.
	Advertise string
	// TTL is the lease lifetime; a leader that cannot renew within it
	// stops serving writes and a follower may take over.  Zero means
	// DefaultTTL.
	TTL time.Duration
	// RenewEvery is the leader's renewal cadence; zero means TTL/3.
	RenewEvery time.Duration
	// PollEvery is the follower's lease-watch cadence; zero means TTL/3.
	PollEvery time.Duration
	// Refresh, when non-nil, is called before each follower poll so the
	// whole store stack (cache included) folds in what the leader
	// committed.  Core wires it to the top-level cached store.
	Refresh func() error
	// OnPromote runs on the coordinator goroutine after the lease is
	// won but before IsLeader turns true — the takeover window where
	// core seals the log, replays the journal, and rebuilds state.  An
	// error is logged, not fatal: a journal hiccup must not brick the
	// only willing leader.
	OnPromote func(epoch int64) error
	// OnDemote runs after IsLeader turned false, with a reason.
	OnDemote func(reason string)
	// Obs routes the leader gauge, epoch gauge, failover counter, and
	// renewal latency histogram; nil means no-op sinks.
	Obs *obs.Registry
	// Clock is the time source, injectable for the lease-edge tests.
	// Nil means time.Now.
	Clock func() time.Time
	// Logf logs coordination transitions; nil discards.
	Logf func(format string, args ...any)
}

// Coordinator runs the lease protocol for one daemon: as follower it
// watches the lease and tries to acquire once expired; as leader it
// renews on a cadence and self-demotes the instant it cannot prove
// ownership (a renewal conflict, or the TTL passing unrenewed).
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	leader  bool
	epoch   int64  // our epoch while leader; last observed otherwise
	expires int64  // our lease expiry (unix nanos) while leader
	lastRaw []byte // exact bytes of the lease record we last wrote
	obsAddr string // advertised address of the current leader, as observed
	closed  bool

	stop chan struct{}
	done chan struct{}

	gLeader    *obs.Gauge
	gEpoch     *obs.Gauge
	mFailovers *obs.Counter
	hRenew     *obs.Histogram
}

// New builds a Coordinator; call Start to run the protocol loop, or
// drive TryAcquire/Renew by hand (the edge-case tests do).
func New(cfg Config) *Coordinator {
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.RenewEvery <= 0 {
		cfg.RenewEvery = cfg.TTL / 3
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = cfg.TTL / 3
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Coordinator{
		cfg:        cfg,
		gLeader:    cfg.Obs.Gauge(obs.ClusterLeader),
		gEpoch:     cfg.Obs.Gauge(obs.ClusterEpoch),
		mFailovers: cfg.Obs.Counter(obs.ClusterFailovers),
		hRenew:     cfg.Obs.Histogram(obs.ClusterRenewLatency),
	}
}

// Start launches the protocol loop.  The first acquisition attempt
// happens synchronously, so a daemon started against an unowned store
// is leader before Start returns.
func (c *Coordinator) Start() {
	if _, err := c.TryAcquire(); err != nil {
		c.cfg.Logf("cluster: initial acquire: %v", err)
	}
	c.mu.Lock()
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	go c.run(stop, done)
}

func (c *Coordinator) run(stop, done chan struct{}) {
	defer close(done)
	for {
		var wait time.Duration
		if c.IsLeader() {
			wait = c.cfg.RenewEvery
		} else {
			wait = c.cfg.PollEvery
		}
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
		if c.IsLeader() || c.leading() {
			if err := c.Renew(); err != nil && !errors.Is(err, ErrNotLeader) {
				c.cfg.Logf("cluster: renew: %v", err)
			}
		} else {
			if _, err := c.TryAcquire(); err != nil {
				c.cfg.Logf("cluster: acquire: %v", err)
			}
		}
	}
}

// leading reports the raw leader flag, ignoring expiry — the renew
// loop must keep renewing through a momentary expiry flicker (the CAS
// on the lease bytes, not the clock, decides whether renewal is
// legitimate).
func (c *Coordinator) leading() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leader
}

// Stop halts the loop and, when leader, releases the lease in place
// (rewrites it already-expired) so a graceful restart hands over
// without waiting out the TTL.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	stop, done := c.stop, c.done
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	c.mu.Lock()
	wasLeader, last, epoch := c.leader, c.lastRaw, c.epoch
	c.mu.Unlock()
	if wasLeader && last != nil {
		rec := Record{Epoch: epoch, Owner: c.cfg.Owner, Addr: c.cfg.Advertise,
			Expires: c.cfg.Clock().UnixNano()}
		if raw, err := json.Marshal(rec); err == nil {
			// Best effort: a conflict just means somebody already took over.
			_ = store.BatchIf(c.cfg.Store, store.KeyLease, last, []store.Op{store.Put(store.KeyLease, raw)})
		}
		c.demote("stopped")
	}
}

// Abandon halts the protocol loop without releasing the lease — the
// in-process stand-in for a crashed leader.  The lease is left to
// expire on its own, so a follower's takeover after Abandon exercises
// the same path as one after kill -9.  The failover benchmark and
// chaos tests are the callers.
func (c *Coordinator) Abandon() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	stop, done := c.stop, c.done
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// IsLeader reports whether this daemon may serve writes right now:
// it holds the lease and the lease has not expired by the local
// clock.  The expiry check is what makes lease loss an *immediate*
// self-demotion — a leader cut off from the store stops answering
// writes the instant its last renewal ages out, before any follower
// could have taken over.
func (c *Coordinator) IsLeader() bool {
	_, ok := c.Serving()
	return ok
}

// Serving returns the epoch to fence writes with, and whether this
// daemon currently holds a live lease.
func (c *Coordinator) Serving() (epoch int64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.leader {
		return c.epoch, false
	}
	if c.cfg.Clock().UnixNano() >= c.expires {
		return c.epoch, false
	}
	return c.epoch, true
}

// Epoch returns the current epoch as this daemon knows it.
func (c *Coordinator) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// LeaderAddr returns the advertised address of the current leader as
// last observed — our own when leading, the lease record's otherwise.
// Empty when no live leader has been seen.
func (c *Coordinator) LeaderAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader {
		return c.cfg.Advertise
	}
	return c.obsAddr
}

// Role renders the daemon's cluster role for version/Welcome.
func (c *Coordinator) Role() string {
	if c.IsLeader() {
		return "leader"
	}
	return "follower"
}

// TryAcquire makes one acquisition attempt: refresh, read the lease,
// and — if absent or expired — CAS in a fresh record with the next
// epoch.  Returns whether this daemon is leader afterwards.  Losing
// the race to another contender is a clean false, not an error.
func (c *Coordinator) TryAcquire() (bool, error) {
	if c.leading() {
		return true, nil
	}
	if c.cfg.Refresh != nil {
		if err := c.cfg.Refresh(); err != nil {
			return false, err
		}
	} else if err := store.Refresh(c.cfg.Store); err != nil {
		return false, err
	}
	now := c.cfg.Clock()
	raw, err := c.cfg.Store.Get(store.KeyLease)
	var cur Record
	held := false
	switch {
	case err == nil:
		if uerr := json.Unmarshal(raw, &cur); uerr != nil {
			return false, fmt.Errorf("cluster: corrupt lease record: %w", uerr)
		}
		held = true
	case errors.Is(err, store.ErrNotFound):
		raw = nil
	default:
		return false, err
	}
	if held && !cur.expired(now) {
		// Live leader elsewhere: remember where to redirect clients.
		c.mu.Lock()
		c.epoch = cur.Epoch
		c.obsAddr = cur.Addr
		c.mu.Unlock()
		c.gEpoch.Set(cur.Epoch)
		return false, nil
	}
	next := Record{
		Epoch:   cur.Epoch + 1,
		Owner:   c.cfg.Owner,
		Addr:    c.cfg.Advertise,
		Expires: now.Add(c.cfg.TTL).UnixNano(),
	}
	nraw, err := json.Marshal(next)
	if err != nil {
		return false, err
	}
	err = store.BatchIf(c.cfg.Store, store.KeyLease, raw, []store.Op{
		store.Put(store.KeyLease, nraw),
		store.Put(store.KeyEpoch, epochBytes(next.Epoch)),
	})
	if errors.Is(err, store.ErrConflict) {
		return false, nil // another contender won; stay follower
	}
	if err != nil {
		return false, err
	}
	if held {
		// Took over from a dead leader — this is the failover the
		// benchmark times.
		c.mFailovers.Inc()
		c.cfg.Logf("cluster: took over lease from %s (epoch %d -> %d)", cur.Owner, cur.Epoch, next.Epoch)
	} else {
		c.cfg.Logf("cluster: acquired fresh lease (epoch %d)", next.Epoch)
	}
	if c.cfg.OnPromote != nil {
		// Promotion work (seal, journal replay) runs with the lease won
		// but writes still refused: IsLeader stays false until below.
		if perr := c.cfg.OnPromote(next.Epoch); perr != nil {
			c.cfg.Logf("cluster: promotion recovery: %v", perr)
		}
	}
	c.mu.Lock()
	c.leader = true
	c.epoch = next.Epoch
	c.expires = next.Expires
	c.lastRaw = nraw
	c.obsAddr = c.cfg.Advertise
	c.mu.Unlock()
	c.gLeader.Set(1)
	c.gEpoch.Set(next.Epoch)
	return true, nil
}

// Renew extends the lease by one TTL.  The compare is on the exact
// bytes of our last lease write: if anything else touched the record —
// a takeover — renewal conflicts and we demote instead.  Renewal does
// not consult the clock: at exactly TTL the CAS still decides, so a
// leader that paused right up to the boundary either renews cleanly
// (nobody took over) or learns it was deposed, never both.
func (c *Coordinator) Renew() error {
	c.mu.Lock()
	if !c.leader {
		c.mu.Unlock()
		return ErrNotLeader
	}
	last, epoch := c.lastRaw, c.epoch
	c.mu.Unlock()
	now := c.cfg.Clock()
	next := Record{
		Epoch:   epoch,
		Owner:   c.cfg.Owner,
		Addr:    c.cfg.Advertise,
		Expires: now.Add(c.cfg.TTL).UnixNano(),
	}
	nraw, err := json.Marshal(next)
	if err != nil {
		return err
	}
	start := time.Now()
	err = store.BatchIf(c.cfg.Store, store.KeyLease, last, []store.Op{store.Put(store.KeyLease, nraw)})
	c.hRenew.Observe(time.Since(start))
	if errors.Is(err, store.ErrConflict) {
		c.demote("lease taken over")
		return fmt.Errorf("%w: lease taken over during renewal", ErrNotLeader)
	}
	if err != nil {
		// Store trouble.  Keep the old expiry: if renewals keep failing,
		// Serving goes false at TTL and writes stop by themselves.
		return err
	}
	c.mu.Lock()
	c.lastRaw = nraw
	c.expires = next.Expires
	c.mu.Unlock()
	return nil
}

// demote flips to follower and tells core.
func (c *Coordinator) demote(reason string) {
	c.mu.Lock()
	if !c.leader {
		c.mu.Unlock()
		return
	}
	c.leader = false
	c.lastRaw = nil
	c.mu.Unlock()
	c.gLeader.Set(0)
	c.cfg.Logf("cluster: demoted: %s", reason)
	if c.cfg.OnDemote != nil {
		c.cfg.OnDemote(reason)
	}
}

// Fence is the takeover-side notification: a Fenced write discovered
// our epoch is stale.  Demote immediately.
func (c *Coordinator) fence() { c.demote("fenced by newer epoch") }
