// Package spvm implements the FEM-2 system programmer's virtual machine:
// the run-time representation of tasks, their scheduling, the
// communication between them, and the storage representation of data, used
// to implement the numerical analyst's virtual machine one level up.
//
// The paper enumerates the SPVM data objects — code blocks/constant
// blocks, task/procedure activation records, window descriptors, storage
// representations — and exactly seven message types from tasks:
//
//	initiate K replications of a task of type T
//	pause and notify parent task
//	resume a child task
//	terminate and notify parent
//	remote procedure call
//	remote procedure return
//	load code/constants
//
// plus the kernel operations "format and send message" and "decode and
// execute message", and a general heap with variable size blocks for
// storage management.  All of those are implemented here.
package spvm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/hgraph"
)

// MsgType enumerates the seven SPVM message types.
type MsgType uint8

// The seven message types, in the paper's order.
const (
	MsgInitiate MsgType = iota + 1
	MsgPause
	MsgResume
	MsgTerminate
	MsgRemoteCall
	MsgRemoteReturn
	MsgLoadCode
)

// String returns the paper's name for the message type.
func (t MsgType) String() string {
	switch t {
	case MsgInitiate:
		return "initiate"
	case MsgPause:
		return "pause"
	case MsgResume:
		return "resume"
	case MsgTerminate:
		return "terminate"
	case MsgRemoteCall:
		return "remote-call"
	case MsgRemoteReturn:
		return "remote-return"
	case MsgLoadCode:
		return "load-code"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// TaskID identifies a task machine-wide.
type TaskID int64

// NoTask is the nil TaskID (e.g. the parent of the root task).
const NoTask TaskID = -1

// Message is one SPVM message.  Field use depends on Type:
//
//	Initiate:     TaskType, Replications, Parent, Params
//	Pause:        Task, Parent
//	Resume:       Child
//	Terminate:    Task, Parent
//	RemoteCall:   Procedure, Caller, Window (optional), Params
//	RemoteReturn: Caller, Params (the results)
//	LoadCode:     CodeName, CodeWords
type Message struct {
	Type         MsgType
	TaskType     string
	Procedure    string
	CodeName     string
	Replications int64
	CodeWords    int64
	LocalWords   int64
	Task         TaskID
	Parent       TaskID
	Child        TaskID
	Caller       TaskID
	Window       *WindowDesc
	Params       []float64
}

// WindowDesc is the SPVM storage representation of a NAVM window on an
// array: which array, which owner task, and the row/column extent.  Kind
// is one of "row", "col", "block".
type WindowDesc struct {
	Array string
	Kind  string
	Owner TaskID
	Row0  int64
	Rows  int64
	Col0  int64
	Cols  int64
}

// Words returns the message size in words (8-byte units) for communication
// accounting: the encoded byte length rounded up.
func (m *Message) Words() int64 {
	b, err := m.Encode()
	if err != nil {
		return 0
	}
	return int64((len(b) + 7) / 8)
}

// magic guards decoding against stray bytes.
const magic = 0xFE02

var (
	// ErrBadMessage is returned when decoding fails structurally.
	ErrBadMessage = errors.New("spvm: malformed message")
)

func writeString(buf *bytes.Buffer, s string) {
	binary.Write(buf, binary.LittleEndian, uint32(len(s)))
	buf.WriteString(s)
}

func readString(buf *bytes.Reader) (string, error) {
	var n uint32
	if err := binary.Read(buf, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrBadMessage, err)
	}
	if int(n) > buf.Len() {
		return "", fmt.Errorf("%w: string length %d exceeds remaining %d", ErrBadMessage, n, buf.Len())
	}
	b := make([]byte, n)
	if _, err := buf.Read(b); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrBadMessage, err)
	}
	return string(b), nil
}

// Encode serializes the message to the SPVM wire format ("format and send
// message").
func (m *Message) Encode() ([]byte, error) {
	if m.Type < MsgInitiate || m.Type > MsgLoadCode {
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, m.Type)
	}
	buf := &bytes.Buffer{}
	binary.Write(buf, binary.LittleEndian, uint16(magic))
	buf.WriteByte(byte(m.Type))
	switch m.Type {
	case MsgInitiate:
		writeString(buf, m.TaskType)
		binary.Write(buf, binary.LittleEndian, m.Replications)
		binary.Write(buf, binary.LittleEndian, int64(m.Parent))
		writeParams(buf, m.Params)
	case MsgPause:
		binary.Write(buf, binary.LittleEndian, int64(m.Task))
		binary.Write(buf, binary.LittleEndian, int64(m.Parent))
	case MsgResume:
		binary.Write(buf, binary.LittleEndian, int64(m.Child))
	case MsgTerminate:
		binary.Write(buf, binary.LittleEndian, int64(m.Task))
		binary.Write(buf, binary.LittleEndian, int64(m.Parent))
	case MsgRemoteCall:
		writeString(buf, m.Procedure)
		binary.Write(buf, binary.LittleEndian, int64(m.Caller))
		if m.Window != nil {
			buf.WriteByte(1)
			writeString(buf, m.Window.Array)
			writeString(buf, m.Window.Kind)
			binary.Write(buf, binary.LittleEndian, int64(m.Window.Owner))
			binary.Write(buf, binary.LittleEndian, m.Window.Row0)
			binary.Write(buf, binary.LittleEndian, m.Window.Rows)
			binary.Write(buf, binary.LittleEndian, m.Window.Col0)
			binary.Write(buf, binary.LittleEndian, m.Window.Cols)
		} else {
			buf.WriteByte(0)
		}
		writeParams(buf, m.Params)
	case MsgRemoteReturn:
		binary.Write(buf, binary.LittleEndian, int64(m.Caller))
		writeParams(buf, m.Params)
	case MsgLoadCode:
		writeString(buf, m.CodeName)
		binary.Write(buf, binary.LittleEndian, m.CodeWords)
		binary.Write(buf, binary.LittleEndian, m.LocalWords)
	}
	return buf.Bytes(), nil
}

func writeParams(buf *bytes.Buffer, ps []float64) {
	binary.Write(buf, binary.LittleEndian, uint32(len(ps)))
	for _, p := range ps {
		binary.Write(buf, binary.LittleEndian, math.Float64bits(p))
	}
}

func readParams(buf *bytes.Reader) ([]float64, error) {
	var n uint32
	if err := binary.Read(buf, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: param count: %v", ErrBadMessage, err)
	}
	if int(n)*8 > buf.Len() {
		return nil, fmt.Errorf("%w: %d params exceed remaining %d bytes", ErrBadMessage, n, buf.Len())
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	for i := range out {
		var u uint64
		if err := binary.Read(buf, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("%w: param %d: %v", ErrBadMessage, i, err)
		}
		out[i] = math.Float64frombits(u)
	}
	return out, nil
}

// Decode parses the SPVM wire format back into a Message ("decode and
// execute message" — the decode half).
func Decode(b []byte) (*Message, error) {
	buf := bytes.NewReader(b)
	var mg uint16
	if err := binary.Read(buf, binary.LittleEndian, &mg); err != nil || mg != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	tb, err := buf.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing type", ErrBadMessage)
	}
	m := &Message{Type: MsgType(tb)}
	readI64 := func(dst *int64) error {
		return binary.Read(buf, binary.LittleEndian, dst)
	}
	readTask := func(dst *TaskID) error {
		var v int64
		if err := readI64(&v); err != nil {
			return err
		}
		*dst = TaskID(v)
		return nil
	}
	switch m.Type {
	case MsgInitiate:
		if m.TaskType, err = readString(buf); err != nil {
			return nil, err
		}
		if err = readI64(&m.Replications); err != nil {
			return nil, fmt.Errorf("%w: replications", ErrBadMessage)
		}
		if err = readTask(&m.Parent); err != nil {
			return nil, fmt.Errorf("%w: parent", ErrBadMessage)
		}
		if m.Params, err = readParams(buf); err != nil {
			return nil, err
		}
	case MsgPause:
		if err = readTask(&m.Task); err != nil {
			return nil, fmt.Errorf("%w: task", ErrBadMessage)
		}
		if err = readTask(&m.Parent); err != nil {
			return nil, fmt.Errorf("%w: parent", ErrBadMessage)
		}
	case MsgResume:
		if err = readTask(&m.Child); err != nil {
			return nil, fmt.Errorf("%w: child", ErrBadMessage)
		}
	case MsgTerminate:
		if err = readTask(&m.Task); err != nil {
			return nil, fmt.Errorf("%w: task", ErrBadMessage)
		}
		if err = readTask(&m.Parent); err != nil {
			return nil, fmt.Errorf("%w: parent", ErrBadMessage)
		}
	case MsgRemoteCall:
		if m.Procedure, err = readString(buf); err != nil {
			return nil, err
		}
		if err = readTask(&m.Caller); err != nil {
			return nil, fmt.Errorf("%w: caller", ErrBadMessage)
		}
		flag, err := buf.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: window flag", ErrBadMessage)
		}
		if flag == 1 {
			w := &WindowDesc{}
			if w.Array, err = readString(buf); err != nil {
				return nil, err
			}
			if w.Kind, err = readString(buf); err != nil {
				return nil, err
			}
			if err = readTask(&w.Owner); err != nil {
				return nil, fmt.Errorf("%w: window owner", ErrBadMessage)
			}
			for _, dst := range []*int64{&w.Row0, &w.Rows, &w.Col0, &w.Cols} {
				if err = readI64(dst); err != nil {
					return nil, fmt.Errorf("%w: window extent", ErrBadMessage)
				}
			}
			m.Window = w
		}
		if m.Params, err = readParams(buf); err != nil {
			return nil, err
		}
	case MsgRemoteReturn:
		if err = readTask(&m.Caller); err != nil {
			return nil, fmt.Errorf("%w: caller", ErrBadMessage)
		}
		if m.Params, err = readParams(buf); err != nil {
			return nil, err
		}
	case MsgLoadCode:
		if m.CodeName, err = readString(buf); err != nil {
			return nil, err
		}
		if err = readI64(&m.CodeWords); err != nil {
			return nil, fmt.Errorf("%w: code words", ErrBadMessage)
		}
		if err = readI64(&m.LocalWords); err != nil {
			return nil, fmt.Errorf("%w: local words", ErrBadMessage)
		}
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, tb)
	}
	if buf.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, buf.Len())
	}
	return m, nil
}

// ToHGraph builds the formal H-graph model of the message, in the language
// of hgraph.SPVMMessageGrammar.  Tests validate every live message against
// the grammar, closing the loop between the formal specification and the
// implementation.
func (m *Message) ToHGraph() *hgraph.Graph {
	g := hgraph.NewGraph("message")
	root := g.Add("message")
	root.Arc("type", g.AddAtom("t", hgraph.Str(m.Type.String())))
	addParams := func() {
		params := g.Add("params")
		for i, p := range m.Params {
			params.Arc(fmt.Sprintf("%d", i), g.AddAtom(fmt.Sprintf("p%d", i), hgraph.Float(p)))
		}
		root.Arc("params", params)
	}
	switch m.Type {
	case MsgInitiate:
		root.Arc("task-type", g.AddAtom("tt", hgraph.Str(m.TaskType)))
		root.Arc("replications", g.AddAtom("k", hgraph.Int(m.Replications)))
		root.Arc("parent", g.AddAtom("p", hgraph.Int(int64(m.Parent))))
		addParams()
	case MsgPause:
		root.Arc("task", g.AddAtom("id", hgraph.Int(int64(m.Task))))
		root.Arc("parent", g.AddAtom("p", hgraph.Int(int64(m.Parent))))
	case MsgResume:
		root.Arc("child", g.AddAtom("c", hgraph.Int(int64(m.Child))))
	case MsgTerminate:
		root.Arc("task", g.AddAtom("id", hgraph.Int(int64(m.Task))))
		root.Arc("parent", g.AddAtom("p", hgraph.Int(int64(m.Parent))))
	case MsgRemoteCall:
		root.Arc("procedure", g.AddAtom("pr", hgraph.Str(m.Procedure)))
		root.Arc("caller", g.AddAtom("c", hgraph.Int(int64(m.Caller))))
		if m.Window != nil {
			w := g.Add("window")
			w.Arc("array", g.AddAtom("a", hgraph.Str(m.Window.Array)))
			w.Arc("kind", g.AddAtom("k", hgraph.Str(m.Window.Kind)))
			w.Arc("owner", g.AddAtom("o", hgraph.Int(int64(m.Window.Owner))))
			w.Arc("row0", g.AddAtom("r0", hgraph.Int(m.Window.Row0)))
			w.Arc("rows", g.AddAtom("r", hgraph.Int(m.Window.Rows)))
			w.Arc("col0", g.AddAtom("c0", hgraph.Int(m.Window.Col0)))
			w.Arc("cols", g.AddAtom("cs", hgraph.Int(m.Window.Cols)))
			root.Arc("window", w)
		}
		root.Arc("args", func() *hgraph.Node {
			args := g.Add("args")
			for i, p := range m.Params {
				args.Arc(fmt.Sprintf("%d", i), g.AddAtom(fmt.Sprintf("a%d", i), hgraph.Float(p)))
			}
			return args
		}())
	case MsgRemoteReturn:
		root.Arc("caller", g.AddAtom("c", hgraph.Int(int64(m.Caller))))
		results := g.Add("results")
		for i, p := range m.Params {
			results.Arc(fmt.Sprintf("%d", i), g.AddAtom(fmt.Sprintf("r%d", i), hgraph.Float(p)))
		}
		root.Arc("results", results)
	case MsgLoadCode:
		root.Arc("block", g.AddAtom("b", hgraph.Str(m.CodeName)))
		root.Arc("words", g.AddAtom("w", hgraph.Int(m.CodeWords)))
		root.Arc("local-words", g.AddAtom("lw", hgraph.Int(m.LocalWords)))
	}
	return g
}

// String renders the message for logs.
func (m *Message) String() string {
	switch m.Type {
	case MsgInitiate:
		return fmt.Sprintf("initiate %d×%q parent=%d params=%d", m.Replications, m.TaskType, m.Parent, len(m.Params))
	case MsgPause:
		return fmt.Sprintf("pause task=%d parent=%d", m.Task, m.Parent)
	case MsgResume:
		return fmt.Sprintf("resume child=%d", m.Child)
	case MsgTerminate:
		return fmt.Sprintf("terminate task=%d parent=%d", m.Task, m.Parent)
	case MsgRemoteCall:
		return fmt.Sprintf("remote-call %q caller=%d args=%d", m.Procedure, m.Caller, len(m.Params))
	case MsgRemoteReturn:
		return fmt.Sprintf("remote-return caller=%d results=%d", m.Caller, len(m.Params))
	case MsgLoadCode:
		return fmt.Sprintf("load-code %q words=%d", m.CodeName, m.CodeWords)
	default:
		return fmt.Sprintf("message type %d", m.Type)
	}
}
