package spvm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrNoSuchTask is returned for control messages naming unknown tasks.
var ErrNoSuchTask = errors.New("spvm: no such task")

// ErrNoSuchCode is returned when an initiate or remote call names a code
// block the kernel has not loaded.
var ErrNoSuchCode = errors.New("spvm: no such code block")

// ErrBadTransition is returned for life-cycle violations (resuming a task
// that is not paused, terminating twice, ...).
var ErrBadTransition = errors.New("spvm: invalid task state transition")

// IDSource hands out machine-unique task IDs to all kernels.
type IDSource struct{ next int64 }

// NewIDSource returns a source starting at 1 (0 is reserved for root
// drivers, NoTask is -1).
func NewIDSource() *IDSource { return &IDSource{next: 0} }

// Next returns a fresh TaskID.
func (s *IDSource) Next() TaskID { return TaskID(atomic.AddInt64(&s.next, 1)) }

// Kernel is the operating system kernel run by one PE in each cluster: it
// fields incoming messages, decodes and executes them, and maintains the
// cluster's task table, code store, ready queue, and heap.
type Kernel struct {
	// ClusterID is the cluster this kernel serves.
	ClusterID int
	// Codes holds loaded code/constants blocks.
	Codes *CodeStore
	// Heap is the cluster's variable-size-block storage manager.
	Heap *Heap
	// Ready is the cluster's ready queue.
	Ready *ReadyQueue

	ids     *IDSource
	Metrics *metrics.Collector
	Trace   *trace.Trace

	mu       sync.Mutex
	tasks    map[TaskID]*ActivationRecord
	decoded  int64
	handled  map[MsgType]int64
	rejected int64
}

// NewKernel builds a kernel for a cluster with the given heap size.
func NewKernel(clusterID int, heapWords int64, ids *IDSource) *Kernel {
	return &Kernel{
		ClusterID: clusterID,
		Codes:     NewCodeStore(),
		Heap:      NewHeap(heapWords),
		Ready:     NewReadyQueue(),
		ids:       ids,
		tasks:     map[TaskID]*ActivationRecord{},
		handled:   map[MsgType]int64{},
	}
}

// Task returns the activation record for id, or nil.
func (k *Kernel) Task(id TaskID) *ActivationRecord {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.tasks[id]
}

// TaskIDs returns the IDs of all live (non-terminated) tasks, sorted.
func (k *Kernel) TaskIDs() []TaskID {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]TaskID, 0, len(k.tasks))
	for id, rec := range k.tasks {
		if rec.State != TaskTerminated {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Decoded returns how many messages the kernel has decoded.
func (k *Kernel) Decoded() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.decoded
}

// Handled returns the per-type count of successfully executed messages.
func (k *Kernel) Handled(t MsgType) int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.handled[t]
}

// Rejected returns how many messages failed to execute.
func (k *Kernel) Rejected() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.rejected
}

// HandleEncoded decodes a wire-format message and executes it — the full
// "decode and execute message" kernel operation.
func (k *Kernel) HandleEncoded(b []byte) ([]TaskID, error) {
	m, err := Decode(b)
	if err != nil {
		k.mu.Lock()
		k.rejected++
		k.mu.Unlock()
		return nil, err
	}
	return k.Handle(m)
}

// Handle executes one message.  For initiate and remote-call messages it
// returns the IDs of the tasks created.  Errors leave kernel state
// unchanged except for the rejection counter.
func (k *Kernel) Handle(m *Message) (created []TaskID, err error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.decoded++
	defer func() {
		if err != nil {
			k.rejected++
		} else {
			k.handled[m.Type]++
		}
	}()
	k.Metrics.Add(metrics.LevelSPVM, metrics.CtrOps, 1)
	k.Trace.Recordf(metrics.LevelSPVM, "kernel."+m.Type.String(), int(m.Parent), k.ClusterID, int(m.Words()), "%s", m)

	switch m.Type {
	case MsgInitiate:
		if m.Replications < 1 {
			return nil, fmt.Errorf("spvm: initiate with %d replications", m.Replications)
		}
		code := k.Codes.Find(m.TaskType)
		if code == nil {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchCode, m.TaskType)
		}
		// "find code for task, allocate an activation record, copy
		// parameters from the message queue into the activation
		// record, enter task in ready queue" — once per replication.
		for i := int64(0); i < m.Replications; i++ {
			words := code.LocalWords + int64(len(m.Params))
			addr, aerr := k.Heap.Alloc(words)
			if aerr != nil {
				// Roll back the records created so far.
				for _, id := range created {
					rec := k.tasks[id]
					k.Heap.Free(rec.LocalAddr)
					delete(k.tasks, id)
					k.Ready.Remove(id)
				}
				return nil, fmt.Errorf("spvm: initiate replication %d: %w", i, aerr)
			}
			params := make([]float64, len(m.Params))
			copy(params, m.Params)
			id := k.ids.Next()
			rec := &ActivationRecord{
				Task: id, Parent: m.Parent, CodeBlock: code.Name,
				Params: params, LocalAddr: addr, LocalWords: words,
				State: TaskReady,
			}
			k.tasks[id] = rec
			k.Ready.Push(id)
			created = append(created, id)
			k.Metrics.Add(metrics.LevelSPVM, metrics.CtrTasksInitiated, 1)
			k.Metrics.Add(metrics.LevelSPVM, metrics.CtrWordsAlloc, words)
		}
		return created, nil

	case MsgPause:
		rec := k.tasks[m.Task]
		if rec == nil {
			return nil, fmt.Errorf("%w: pause %d", ErrNoSuchTask, m.Task)
		}
		if rec.State != TaskRunning && rec.State != TaskReady {
			return nil, fmt.Errorf("%w: pause from %s", ErrBadTransition, rec.State)
		}
		if rec.State == TaskReady {
			k.Ready.Remove(m.Task)
		}
		rec.State = TaskPaused
		return nil, nil

	case MsgResume:
		rec := k.tasks[m.Child]
		if rec == nil {
			return nil, fmt.Errorf("%w: resume %d", ErrNoSuchTask, m.Child)
		}
		if rec.State != TaskPaused {
			return nil, fmt.Errorf("%w: resume from %s", ErrBadTransition, rec.State)
		}
		// "Local data of a task retained over pause/resume": the
		// activation record and its heap block are untouched.
		rec.State = TaskReady
		k.Ready.Push(m.Child)
		return nil, nil

	case MsgTerminate:
		rec := k.tasks[m.Task]
		if rec == nil {
			return nil, fmt.Errorf("%w: terminate %d", ErrNoSuchTask, m.Task)
		}
		if rec.State == TaskTerminated {
			return nil, fmt.Errorf("%w: double terminate", ErrBadTransition)
		}
		if rec.State == TaskReady {
			k.Ready.Remove(m.Task)
		}
		if rec.LocalAddr >= 0 {
			if err := k.Heap.Free(rec.LocalAddr); err != nil {
				return nil, err
			}
			k.Metrics.Add(metrics.LevelSPVM, metrics.CtrWordsFreed, rec.LocalWords)
		}
		rec.State = TaskTerminated
		delete(k.tasks, m.Task)
		return nil, nil

	case MsgRemoteCall:
		code := k.Codes.Find(m.Procedure)
		if code == nil {
			return nil, fmt.Errorf("%w: procedure %q", ErrNoSuchCode, m.Procedure)
		}
		words := code.LocalWords + int64(len(m.Params))
		addr, aerr := k.Heap.Alloc(words)
		if aerr != nil {
			return nil, aerr
		}
		params := make([]float64, len(m.Params))
		copy(params, m.Params)
		id := k.ids.Next()
		rec := &ActivationRecord{
			Task: id, Parent: m.Caller, CodeBlock: code.Name,
			Params: params, LocalAddr: addr, LocalWords: words,
			State: TaskReady,
		}
		k.tasks[id] = rec
		k.Ready.Push(id)
		k.Metrics.Add(metrics.LevelSPVM, metrics.CtrWordsAlloc, words)
		return []TaskID{id}, nil

	case MsgRemoteReturn:
		rec := k.tasks[m.Caller]
		if rec == nil {
			return nil, fmt.Errorf("%w: remote return to %d", ErrNoSuchTask, m.Caller)
		}
		rec.Results = append(rec.Results, m.Params...)
		if rec.State == TaskPaused {
			rec.State = TaskReady
			k.Ready.Push(m.Caller)
		}
		return nil, nil

	case MsgLoadCode:
		if m.CodeWords < 0 || m.LocalWords < 0 {
			return nil, fmt.Errorf("spvm: load-code with negative sizes")
		}
		k.Codes.Load(&CodeBlock{Name: m.CodeName, Words: m.CodeWords, LocalWords: m.LocalWords})
		k.Metrics.Add(metrics.LevelSPVM, metrics.CtrWordsAlloc, m.CodeWords)
		return nil, nil

	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadMessage, m.Type)
	}
}

// StartNext pops the ready queue and marks the task running, returning its
// activation record; ok is false when the queue is empty.  The NAVM
// runtime calls this when a PE becomes available.
func (k *Kernel) StartNext() (*ActivationRecord, bool) {
	id, ok := k.Ready.Pop()
	if !ok {
		return nil, false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	rec := k.tasks[id]
	if rec == nil || rec.State != TaskReady {
		return nil, false
	}
	rec.State = TaskRunning
	return rec, true
}

// RegisterRoot installs an externally-managed task (an AUVM/NAVM driver
// that was not created through an initiate message) so that control
// messages can reference it.  The root owns no kernel heap storage.
func (k *Kernel) RegisterRoot(id TaskID) *ActivationRecord {
	k.mu.Lock()
	defer k.mu.Unlock()
	rec := &ActivationRecord{Task: id, Parent: NoTask, CodeBlock: "<root>", State: TaskRunning, LocalAddr: -1}
	k.tasks[id] = rec
	return rec
}
