package spvm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickKernelLifecycleInvariants drives a kernel with long random
// sequences of valid operations and checks the global invariants after
// every step:
//
//   - the heap's block table stays consistent (CheckInvariants),
//   - heap words allocated == sum of live activation records' LocalWords,
//   - every ready task is live and in the Ready state,
//   - terminated tasks never reappear.
func TestQuickKernelLifecycleInvariants(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(0, 1<<14, NewIDSource())
		k.Codes.Load(&CodeBlock{Name: "w", Words: 64, LocalWords: 16})
		var live []TaskID
		state := map[TaskID]TaskState{}

		check := func() bool {
			if k.Heap.CheckInvariants() != nil {
				return false
			}
			var want int64
			for _, id := range live {
				rec := k.Task(id)
				if rec == nil {
					return false
				}
				want += rec.LocalWords
				if state[id] != rec.State {
					return false
				}
			}
			return k.Heap.Allocated() == want
		}

		for _, op := range opsRaw {
			switch op % 5 {
			case 0: // initiate 1-3 replications
				n := int64(op%3) + 1
				ids, err := k.Handle(&Message{Type: MsgInitiate, TaskType: "w", Replications: n,
					Params: make([]float64, op%4)})
				if err != nil {
					return false
				}
				for _, id := range ids {
					live = append(live, id)
					state[id] = TaskReady
				}
			case 1: // start a ready task
				if rec, ok := k.StartNext(); ok {
					state[rec.Task] = TaskRunning
				}
			case 2: // pause a running/ready task
				if len(live) == 0 {
					continue
				}
				id := live[rng.Intn(len(live))]
				if state[id] == TaskRunning || state[id] == TaskReady {
					if _, err := k.Handle(&Message{Type: MsgPause, Task: id}); err != nil {
						return false
					}
					state[id] = TaskPaused
				}
			case 3: // resume a paused task
				if len(live) == 0 {
					continue
				}
				id := live[rng.Intn(len(live))]
				if state[id] == TaskPaused {
					if _, err := k.Handle(&Message{Type: MsgResume, Child: id}); err != nil {
						return false
					}
					state[id] = TaskReady
				}
			case 4: // terminate a task
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				id := live[i]
				if _, err := k.Handle(&Message{Type: MsgTerminate, Task: id}); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				delete(state, id)
				if k.Task(id) != nil {
					return false
				}
			}
			if !check() {
				return false
			}
		}
		// Drain: terminate everything, heap must return to empty.
		for _, id := range live {
			if _, err := k.Handle(&Message{Type: MsgTerminate, Task: id}); err != nil {
				return false
			}
		}
		return k.Heap.Allocated() == 0 && k.Heap.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodedLifecycle round-trips every control message through the
// wire format before handling, exercising the full format-send-decode-
// execute path under random sequences.
func TestQuickEncodedLifecycle(t *testing.T) {
	f := func(opsRaw []uint8) bool {
		k := NewKernel(0, 1<<14, NewIDSource())
		k.Codes.Load(&CodeBlock{Name: "w", LocalWords: 8})
		var live []TaskID
		for _, op := range opsRaw {
			var m *Message
			switch op % 3 {
			case 0:
				m = &Message{Type: MsgInitiate, TaskType: "w", Replications: 1}
			case 1:
				if len(live) == 0 {
					continue
				}
				m = &Message{Type: MsgPause, Task: live[int(op)%len(live)]}
			case 2:
				if len(live) == 0 {
					continue
				}
				i := int(op) % len(live)
				m = &Message{Type: MsgTerminate, Task: live[i]}
			}
			enc, err := m.Encode()
			if err != nil {
				return false
			}
			ids, err := k.HandleEncoded(enc)
			switch m.Type {
			case MsgInitiate:
				if err != nil {
					return false
				}
				live = append(live, ids...)
			case MsgPause:
				// May fail if already paused — that is a valid
				// rejection, not corruption.
			case MsgTerminate:
				if err == nil {
					for i, id := range live {
						if id == m.Task {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
			if k.Heap.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
