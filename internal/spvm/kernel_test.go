package spvm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func newTestKernel() *Kernel {
	k := NewKernel(0, 1<<16, NewIDSource())
	k.Metrics = metrics.NewCollector()
	k.Codes.Load(&CodeBlock{Name: "worker", Words: 256, LocalWords: 32})
	return k
}

func TestInitiateCreatesReplications(t *testing.T) {
	k := newTestKernel()
	ids, err := k.Handle(&Message{Type: MsgInitiate, TaskType: "worker", Replications: 4, Parent: 0, Params: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("created %d tasks, want 4", len(ids))
	}
	if k.Ready.Len() != 4 {
		t.Errorf("ready queue has %d, want 4", k.Ready.Len())
	}
	for _, id := range ids {
		rec := k.Task(id)
		if rec == nil {
			t.Fatalf("no record for %d", id)
		}
		if rec.State != TaskReady || rec.CodeBlock != "worker" || rec.Parent != 0 {
			t.Errorf("record %+v", rec)
		}
		if len(rec.Params) != 2 || rec.Params[0] != 1 {
			t.Errorf("params not copied: %v", rec.Params)
		}
		if rec.LocalWords != 34 { // 32 local + 2 params
			t.Errorf("LocalWords = %d, want 34", rec.LocalWords)
		}
	}
	if got := k.Metrics.Get(metrics.LevelSPVM, metrics.CtrTasksInitiated); got != 4 {
		t.Errorf("tasks_initiated = %d", got)
	}
	if got := k.Heap.Allocated(); got != 4*34 {
		t.Errorf("heap allocated = %d, want %d", got, 4*34)
	}
}

func TestInitiateParamsAreCopies(t *testing.T) {
	k := newTestKernel()
	params := []float64{7}
	ids, err := k.Handle(&Message{Type: MsgInitiate, TaskType: "worker", Replications: 1, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	params[0] = 99
	if k.Task(ids[0]).Params[0] != 7 {
		t.Error("activation record shares the message's parameter storage")
	}
}

func TestInitiateUnknownCode(t *testing.T) {
	k := newTestKernel()
	_, err := k.Handle(&Message{Type: MsgInitiate, TaskType: "nope", Replications: 1})
	if !errors.Is(err, ErrNoSuchCode) {
		t.Errorf("want ErrNoSuchCode, got %v", err)
	}
	if k.Rejected() != 1 {
		t.Errorf("Rejected = %d", k.Rejected())
	}
}

func TestInitiateZeroReplications(t *testing.T) {
	k := newTestKernel()
	if _, err := k.Handle(&Message{Type: MsgInitiate, TaskType: "worker", Replications: 0}); err == nil {
		t.Error("zero replications accepted")
	}
}

func TestInitiateHeapExhaustionRollsBack(t *testing.T) {
	k := NewKernel(0, 100, NewIDSource())
	k.Codes.Load(&CodeBlock{Name: "big", LocalWords: 40})
	_, err := k.Handle(&Message{Type: MsgInitiate, TaskType: "big", Replications: 3})
	if !errors.Is(err, ErrHeapFull) {
		t.Fatalf("want ErrHeapFull, got %v", err)
	}
	if k.Heap.Allocated() != 0 {
		t.Errorf("rollback left %d words allocated", k.Heap.Allocated())
	}
	if k.Ready.Len() != 0 {
		t.Errorf("rollback left %d ready tasks", k.Ready.Len())
	}
	if len(k.TaskIDs()) != 0 {
		t.Errorf("rollback left task records: %v", k.TaskIDs())
	}
}

func TestPauseResumeLifecycle(t *testing.T) {
	k := newTestKernel()
	ids, _ := k.Handle(&Message{Type: MsgInitiate, TaskType: "worker", Replications: 1, Parent: 0})
	id := ids[0]

	// Start it (ready -> running).
	rec, ok := k.StartNext()
	if !ok || rec.Task != id {
		t.Fatalf("StartNext = %v, %v", rec, ok)
	}
	if rec.State != TaskRunning {
		t.Errorf("state = %v", rec.State)
	}

	// Pause and notify parent.
	if _, err := k.Handle(&Message{Type: MsgPause, Task: id, Parent: 0}); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).State != TaskPaused {
		t.Errorf("state after pause = %v", k.Task(id).State)
	}
	// Local data must survive pause ("retained over pause/resume").
	if k.Heap.Allocated() == 0 {
		t.Error("pause released the activation record")
	}

	// Double pause is invalid.
	if _, err := k.Handle(&Message{Type: MsgPause, Task: id, Parent: 0}); !errors.Is(err, ErrBadTransition) {
		t.Errorf("double pause: %v", err)
	}

	// Resume re-enters the ready queue.
	if _, err := k.Handle(&Message{Type: MsgResume, Child: id}); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).State != TaskReady || k.Ready.Len() != 1 {
		t.Error("resume did not re-queue task")
	}
	// Resume of a non-paused task is invalid.
	if _, err := k.Handle(&Message{Type: MsgResume, Child: id}); !errors.Is(err, ErrBadTransition) {
		t.Errorf("resume of ready task: %v", err)
	}
}

func TestPauseOfReadyTaskLeavesQueue(t *testing.T) {
	k := newTestKernel()
	ids, _ := k.Handle(&Message{Type: MsgInitiate, TaskType: "worker", Replications: 1})
	if _, err := k.Handle(&Message{Type: MsgPause, Task: ids[0]}); err != nil {
		t.Fatal(err)
	}
	if k.Ready.Len() != 0 {
		t.Error("paused task still in ready queue")
	}
	if _, ok := k.StartNext(); ok {
		t.Error("StartNext returned a paused task")
	}
}

func TestTerminateFreesStorage(t *testing.T) {
	k := newTestKernel()
	ids, _ := k.Handle(&Message{Type: MsgInitiate, TaskType: "worker", Replications: 2})
	before := k.Heap.Allocated()
	if _, err := k.Handle(&Message{Type: MsgTerminate, Task: ids[0], Parent: 0}); err != nil {
		t.Fatal(err)
	}
	if k.Heap.Allocated() >= before {
		t.Error("terminate did not free the activation record")
	}
	if k.Task(ids[0]) != nil {
		t.Error("terminated task still in table")
	}
	// Double terminate reports unknown task (record was removed).
	if _, err := k.Handle(&Message{Type: MsgTerminate, Task: ids[0]}); !errors.Is(err, ErrNoSuchTask) {
		t.Errorf("double terminate: %v", err)
	}
	// The other task survives.
	if k.Task(ids[1]) == nil {
		t.Error("sibling task lost")
	}
}

func TestControlMessagesOnUnknownTask(t *testing.T) {
	k := newTestKernel()
	for _, m := range []*Message{
		{Type: MsgPause, Task: 77},
		{Type: MsgResume, Child: 77},
		{Type: MsgTerminate, Task: 77},
		{Type: MsgRemoteReturn, Caller: 77},
	} {
		if _, err := k.Handle(m); !errors.Is(err, ErrNoSuchTask) {
			t.Errorf("%s on unknown task: %v", m.Type, err)
		}
	}
}

func TestRemoteCallCreatesActivation(t *testing.T) {
	k := newTestKernel()
	k.Codes.Load(&CodeBlock{Name: "dot", Words: 64, LocalWords: 8})
	root := k.RegisterRoot(0)
	if root.State != TaskRunning {
		t.Fatalf("root state = %v", root.State)
	}
	ids, err := k.Handle(&Message{Type: MsgRemoteCall, Procedure: "dot", Caller: 0, Params: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("remote call created %d tasks", len(ids))
	}
	rec := k.Task(ids[0])
	if rec.Parent != 0 || rec.CodeBlock != "dot" {
		t.Errorf("callee record %+v", rec)
	}
	// Return results to the caller.
	if _, err := k.Handle(&Message{Type: MsgRemoteReturn, Caller: 0, Params: []float64{3.5}}); err != nil {
		t.Fatal(err)
	}
	if got := k.Task(TaskID(0)).Results; len(got) != 1 || got[0] != 3.5 {
		t.Errorf("caller results = %v", got)
	}
}

func TestRemoteCallUnknownProcedure(t *testing.T) {
	k := newTestKernel()
	if _, err := k.Handle(&Message{Type: MsgRemoteCall, Procedure: "nope", Caller: 0}); !errors.Is(err, ErrNoSuchCode) {
		t.Errorf("want ErrNoSuchCode, got %v", err)
	}
}

func TestRemoteReturnWakesPausedCaller(t *testing.T) {
	k := newTestKernel()
	ids, _ := k.Handle(&Message{Type: MsgInitiate, TaskType: "worker", Replications: 1})
	id := ids[0]
	k.StartNext()
	k.Handle(&Message{Type: MsgPause, Task: id})
	if _, err := k.Handle(&Message{Type: MsgRemoteReturn, Caller: id, Params: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).State != TaskReady {
		t.Errorf("paused caller not woken: %v", k.Task(id).State)
	}
}

func TestLoadCodeRegistersBlock(t *testing.T) {
	k := newTestKernel()
	if _, err := k.Handle(&Message{Type: MsgLoadCode, CodeName: "solve", CodeWords: 1024, LocalWords: 64}); err != nil {
		t.Fatal(err)
	}
	cb := k.Codes.Find("solve")
	if cb == nil || cb.Words != 1024 || cb.LocalWords != 64 {
		t.Errorf("loaded block %+v", cb)
	}
	if _, err := k.Handle(&Message{Type: MsgLoadCode, CodeName: "bad", CodeWords: -1}); err == nil {
		t.Error("negative code size accepted")
	}
}

func TestHandleEncodedFullPath(t *testing.T) {
	k := newTestKernel()
	b, _ := (&Message{Type: MsgInitiate, TaskType: "worker", Replications: 2}).Encode()
	ids, err := k.HandleEncoded(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("created %d", len(ids))
	}
	if _, err := k.HandleEncoded([]byte{1, 2, 3}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("garbage accepted: %v", err)
	}
	if k.Rejected() != 1 {
		t.Errorf("Rejected = %d", k.Rejected())
	}
	if k.Decoded() != 1 {
		t.Errorf("Decoded = %d", k.Decoded())
	}
	if k.Handled(MsgInitiate) != 1 {
		t.Errorf("Handled(initiate) = %d", k.Handled(MsgInitiate))
	}
}

func TestTaskIDsSortedAndLive(t *testing.T) {
	k := newTestKernel()
	ids, _ := k.Handle(&Message{Type: MsgInitiate, TaskType: "worker", Replications: 3})
	k.Handle(&Message{Type: MsgTerminate, Task: ids[1]})
	live := k.TaskIDs()
	if len(live) != 2 {
		t.Fatalf("live = %v", live)
	}
	if live[0] > live[1] {
		t.Error("TaskIDs not sorted")
	}
}

func TestStartNextEmptyQueue(t *testing.T) {
	k := newTestKernel()
	if _, ok := k.StartNext(); ok {
		t.Error("StartNext on empty kernel succeeded")
	}
}

func TestIDSourceUniqueAcrossKernelsConcurrently(t *testing.T) {
	ids := NewIDSource()
	k1 := NewKernel(0, 1<<16, ids)
	k2 := NewKernel(1, 1<<16, ids)
	for _, k := range []*Kernel{k1, k2} {
		k.Codes.Load(&CodeBlock{Name: "w", LocalWords: 1})
	}
	var wg sync.WaitGroup
	results := make([][]TaskID, 2)
	for i, k := range []*Kernel{k1, k2} {
		wg.Add(1)
		go func(i int, k *Kernel) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				got, err := k.Handle(&Message{Type: MsgInitiate, TaskType: "w", Replications: 1})
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = append(results[i], got...)
			}
		}(i, k)
	}
	wg.Wait()
	seen := map[TaskID]bool{}
	for _, r := range results {
		for _, id := range r {
			if seen[id] {
				t.Fatalf("duplicate task id %d across kernels", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("total ids = %d", len(seen))
	}
}

func TestRootTerminateWithoutHeapStorage(t *testing.T) {
	k := newTestKernel()
	k.RegisterRoot(0)
	if _, err := k.Handle(&Message{Type: MsgTerminate, Task: 0}); err != nil {
		t.Fatalf("root terminate failed: %v", err)
	}
}
