package spvm

import (
	"errors"
	"fmt"
	"sync"
)

// ErrHeapFull is returned when no free block can satisfy an allocation.
var ErrHeapFull = errors.New("spvm: heap exhausted")

// ErrBadFree is returned for frees of unknown or already-freed addresses.
var ErrBadFree = errors.New("spvm: bad free")

// Heap is the SPVM storage manager: "general heap with variable size
// blocks".  It is a first-fit free-list allocator over a word-addressed
// arena, with block splitting on allocation and coalescing of adjacent
// free blocks on free — the classical design a 1983 systems programmer
// would write.  Addresses are word offsets into the arena.
type Heap struct {
	mu   sync.Mutex
	size int64
	// blocks is kept sorted by offset and partitions the arena exactly.
	blocks []heapBlock
	// byAddr indexes allocated blocks for O(1) free validation.
	byAddr map[int64]int64 // addr -> words

	allocated int64
	highWater int64
	fails     int64
	allocOps  int64
	freeOps   int64
}

type heapBlock struct {
	off, size int64
	free      bool
}

// NewHeap creates a heap managing size words.
func NewHeap(size int64) *Heap {
	if size <= 0 {
		panic(fmt.Sprintf("spvm: heap size %d", size))
	}
	return &Heap{
		size:   size,
		blocks: []heapBlock{{off: 0, size: size, free: true}},
		byAddr: map[int64]int64{},
	}
}

// Alloc reserves words of storage and returns its address (word offset).
func (h *Heap) Alloc(words int64) (int64, error) {
	if words <= 0 {
		return 0, fmt.Errorf("spvm: allocation of %d words", words)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.allocOps++
	for i := range h.blocks {
		b := &h.blocks[i]
		if !b.free || b.size < words {
			continue
		}
		addr := b.off
		if b.size == words {
			b.free = false
		} else {
			// Split: allocated prefix, free suffix.
			rest := heapBlock{off: b.off + words, size: b.size - words, free: true}
			b.size = words
			b.free = false
			h.blocks = append(h.blocks, heapBlock{})
			copy(h.blocks[i+2:], h.blocks[i+1:])
			h.blocks[i+1] = rest
		}
		h.byAddr[addr] = words
		h.allocated += words
		if h.allocated > h.highWater {
			h.highWater = h.allocated
		}
		return addr, nil
	}
	h.fails++
	return 0, fmt.Errorf("%w: %d words requested, %d free (largest block %d)",
		ErrHeapFull, words, h.size-h.allocated, h.largestFreeLocked())
}

// Free releases the allocation at addr, coalescing with free neighbours.
func (h *Heap) Free(addr int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	words, ok := h.byAddr[addr]
	if !ok {
		return fmt.Errorf("%w: address %d not allocated", ErrBadFree, addr)
	}
	delete(h.byAddr, addr)
	h.freeOps++
	h.allocated -= words
	idx := -1
	for i := range h.blocks {
		if h.blocks[i].off == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: block table corrupt at %d", ErrBadFree, addr)
	}
	h.blocks[idx].free = true
	// Coalesce with the following block.
	if idx+1 < len(h.blocks) && h.blocks[idx+1].free {
		h.blocks[idx].size += h.blocks[idx+1].size
		h.blocks = append(h.blocks[:idx+1], h.blocks[idx+2:]...)
	}
	// Coalesce with the preceding block.
	if idx > 0 && h.blocks[idx-1].free {
		h.blocks[idx-1].size += h.blocks[idx].size
		h.blocks = append(h.blocks[:idx], h.blocks[idx+1:]...)
	}
	return nil
}

// Size returns the arena size in words.
func (h *Heap) Size() int64 { return h.size }

// Allocated returns the words currently allocated.
func (h *Heap) Allocated() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocated
}

// HighWater returns the maximum words ever simultaneously allocated — the
// storage requirement figure the experiments report.
func (h *Heap) HighWater() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.highWater
}

// FailedAllocs returns how many allocations could not be satisfied.
func (h *Heap) FailedAllocs() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fails
}

// Ops returns the total allocation and free operation counts.
func (h *Heap) Ops() (allocs, frees int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocOps, h.freeOps
}

// LargestFree returns the size of the largest free block.
func (h *Heap) LargestFree() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.largestFreeLocked()
}

func (h *Heap) largestFreeLocked() int64 {
	var mx int64
	for _, b := range h.blocks {
		if b.free && b.size > mx {
			mx = b.size
		}
	}
	return mx
}

// Fragmentation returns 1 - largestFree/totalFree, the standard external
// fragmentation measure (0 when free space is one block or the heap is
// full).
func (h *Heap) Fragmentation() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	free := h.size - h.allocated
	if free == 0 {
		return 0
	}
	return 1 - float64(h.largestFreeLocked())/float64(free)
}

// BlockCount returns the number of blocks in the arena partition
// (diagnostics and invariant tests).
func (h *Heap) BlockCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.blocks)
}

// CheckInvariants verifies the internal consistency of the block table:
// the blocks partition [0,size) exactly, no two adjacent blocks are both
// free (full coalescing), and the allocated total matches the address
// index.  Property tests call it after random workloads.
func (h *Heap) CheckInvariants() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var off, alloc int64
	for i, b := range h.blocks {
		if b.off != off {
			return fmt.Errorf("spvm: heap block %d at %d, expected %d", i, b.off, off)
		}
		if b.size <= 0 {
			return fmt.Errorf("spvm: heap block %d has size %d", i, b.size)
		}
		if i > 0 && b.free && h.blocks[i-1].free {
			return fmt.Errorf("spvm: adjacent free blocks at %d", b.off)
		}
		if !b.free {
			alloc += b.size
			if h.byAddr[b.off] != b.size {
				return fmt.Errorf("spvm: index mismatch at %d: %d vs %d", b.off, h.byAddr[b.off], b.size)
			}
		}
		off += b.size
	}
	if off != h.size {
		return fmt.Errorf("spvm: blocks cover %d of %d words", off, h.size)
	}
	if alloc != h.allocated {
		return fmt.Errorf("spvm: allocated mismatch %d vs %d", alloc, h.allocated)
	}
	return nil
}
