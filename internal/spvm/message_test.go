package spvm

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hgraph"
)

// sampleMessages returns one well-formed instance of each of the seven
// message types.
func sampleMessages() []*Message {
	return []*Message{
		{Type: MsgInitiate, TaskType: "cg-worker", Replications: 8, Parent: 1, Params: []float64{64, 1e-8}},
		{Type: MsgPause, Task: 5, Parent: 1},
		{Type: MsgResume, Child: 5},
		{Type: MsgTerminate, Task: 5, Parent: 1},
		{Type: MsgRemoteCall, Procedure: "dot", Caller: 2,
			Window: &WindowDesc{Array: "x", Kind: "row", Owner: 3, Row0: 0, Rows: 1, Col0: 0, Cols: 64},
			Params: []float64{1, 2, 3}},
		{Type: MsgRemoteReturn, Caller: 2, Params: []float64{42.5}},
		{Type: MsgLoadCode, CodeName: "cg-worker", CodeWords: 512, LocalWords: 128},
	}
}

func TestMsgTypeStrings(t *testing.T) {
	want := map[MsgType]string{
		MsgInitiate: "initiate", MsgPause: "pause", MsgResume: "resume",
		MsgTerminate: "terminate", MsgRemoteCall: "remote-call",
		MsgRemoteReturn: "remote-return", MsgLoadCode: "load-code",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("MsgType %d String = %q, want %q", ty, ty.String(), s)
		}
	}
	if !strings.Contains(MsgType(99).String(), "99") {
		t.Error("unknown MsgType string")
	}
}

func TestEncodeDecodeRoundTripAllTypes(t *testing.T) {
	for _, m := range sampleMessages() {
		b, err := m.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s round trip:\n in: %+v\nout: %+v", m.Type, m, got)
		}
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := (&Message{Type: 0}).Encode(); !errors.Is(err, ErrBadMessage) {
		t.Error("type 0 encoded")
	}
	if _, err := (&Message{Type: 99}).Encode(); !errors.Is(err, ErrBadMessage) {
		t.Error("type 99 encoded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},
		{0xFF, 0xFF, 0x01},            // bad magic
		{0x02, 0xFE, 0x63},            // unknown type 0x63
		{0x02, 0xFE},                  // missing type
		{0x02, 0xFE, byte(MsgResume)}, // truncated payload
		{0x02, 0xFE, byte(MsgInitiate), 0xFF, 0xFF, 0xFF, 0xFF}, // huge string len
	}
	for i, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrBadMessage) {
			t.Errorf("garbage %d decoded without ErrBadMessage: %v", i, err)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b, _ := (&Message{Type: MsgResume, Child: 1}).Encode()
	b = append(b, 0x00)
	if _, err := Decode(b); !errors.Is(err, ErrBadMessage) {
		t.Error("trailing bytes accepted")
	}
}

func TestWindowlessRemoteCallRoundTrip(t *testing.T) {
	m := &Message{Type: MsgRemoteCall, Procedure: "norm", Caller: 9}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != nil {
		t.Error("windowless call decoded with window")
	}
}

func TestWordsPositiveAndTracksPayload(t *testing.T) {
	small := &Message{Type: MsgResume, Child: 1}
	big := &Message{Type: MsgRemoteReturn, Caller: 1, Params: make([]float64, 100)}
	if small.Words() <= 0 {
		t.Error("Words() not positive")
	}
	if big.Words() <= small.Words() {
		t.Errorf("100-param message (%d words) not larger than resume (%d words)",
			big.Words(), small.Words())
	}
}

func TestEveryMessageValidatesAgainstFormalGrammar(t *testing.T) {
	g := hgraph.SPVMMessageGrammar()
	for _, m := range sampleMessages() {
		if errs := g.Validate(m.ToHGraph()); len(errs) > 0 {
			t.Errorf("%s: live message violates formal grammar: %v", m.Type, errs)
		}
	}
}

func TestMessageStringsDescriptive(t *testing.T) {
	for _, m := range sampleMessages() {
		s := m.String()
		if !strings.Contains(s, m.Type.String()) {
			t.Errorf("String() = %q missing type name %q", s, m.Type.String())
		}
	}
	if !strings.Contains((&Message{Type: 42}).String(), "42") {
		t.Error("unknown type String")
	}
}

// Property: encode/decode is the identity on randomly parameterised
// messages of every type.
func TestQuickRoundTrip(t *testing.T) {
	f := func(tyRaw uint8, s1, s2 string, a, b, c int64, params []float64) bool {
		ty := MsgType(tyRaw%7) + 1
		for i, p := range params {
			if math.IsNaN(p) {
				params[i] = 0 // NaN != NaN breaks DeepEqual, not the codec
			}
		}
		if len(params) == 0 {
			params = nil // the codec decodes an empty list as nil
		}
		m := &Message{Type: ty}
		switch ty {
		case MsgInitiate:
			m.TaskType, m.Replications, m.Parent, m.Params = s1, a, TaskID(b), params
		case MsgPause:
			m.Task, m.Parent = TaskID(a), TaskID(b)
		case MsgResume:
			m.Child = TaskID(a)
		case MsgTerminate:
			m.Task, m.Parent = TaskID(a), TaskID(b)
		case MsgRemoteCall:
			m.Procedure, m.Caller, m.Params = s1, TaskID(a), params
			if c%2 == 0 {
				m.Window = &WindowDesc{Array: s2, Kind: "block", Owner: TaskID(c), Row0: a, Rows: b, Col0: c, Cols: a}
			}
		case MsgRemoteReturn:
			m.Caller, m.Params = TaskID(a), params
		case MsgLoadCode:
			m.CodeName, m.CodeWords, m.LocalWords = s1, a, b
		}
		enc, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics; it either round-trips
// from a valid encoding or returns ErrBadMessage.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		m, err := Decode(b)
		if err != nil {
			return errors.Is(err, ErrBadMessage)
		}
		return m != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
