package spvm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeapAllocFreeBasic(t *testing.T) {
	h := NewHeap(100)
	a, err := h.Alloc(30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(70)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two allocations share an address")
	}
	if h.Allocated() != 100 || h.HighWater() != 100 {
		t.Errorf("Allocated=%d HighWater=%d", h.Allocated(), h.HighWater())
	}
	if _, err := h.Alloc(1); !errors.Is(err, ErrHeapFull) {
		t.Errorf("full heap alloc: %v", err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if h.Allocated() != 70 {
		t.Errorf("Allocated after free = %d", h.Allocated())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapRejectsBadRequests(t *testing.T) {
	h := NewHeap(10)
	if _, err := h.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
	if _, err := h.Alloc(-5); err == nil {
		t.Error("negative alloc accepted")
	}
	if err := h.Free(3); !errors.Is(err, ErrBadFree) {
		t.Error("free of unallocated address accepted")
	}
	a, _ := h.Alloc(5)
	h.Free(a)
	if err := h.Free(a); !errors.Is(err, ErrBadFree) {
		t.Error("double free accepted")
	}
}

func TestNewHeapPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHeap(0) did not panic")
		}
	}()
	NewHeap(0)
}

func TestHeapSplitAndCoalesce(t *testing.T) {
	h := NewHeap(100)
	a, _ := h.Alloc(20)
	b, _ := h.Alloc(20)
	c, _ := h.Alloc(20)
	if h.BlockCount() != 4 { // three allocated + one free tail
		t.Errorf("BlockCount = %d, want 4", h.BlockCount())
	}
	// Free the middle one: no coalesce possible.
	h.Free(b)
	if h.LargestFree() != 40 {
		t.Errorf("LargestFree = %d, want 40 (tail)", h.LargestFree())
	}
	if h.Fragmentation() == 0 {
		t.Error("fragmented heap reports 0 fragmentation")
	}
	// Free a: coalesces with b's hole → 40-word hole.
	h.Free(a)
	// Free c: everything coalesces into one 100-word block.
	h.Free(c)
	if h.BlockCount() != 1 {
		t.Errorf("BlockCount after full free = %d, want 1", h.BlockCount())
	}
	if h.LargestFree() != 100 || h.Fragmentation() != 0 {
		t.Errorf("LargestFree=%d Fragmentation=%g", h.LargestFree(), h.Fragmentation())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapFragmentationBlocksLargeAlloc(t *testing.T) {
	h := NewHeap(100)
	var addrs []int64
	for i := 0; i < 10; i++ {
		a, err := h.Alloc(10)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	// Free alternating blocks: 50 words free but largest hole is 10.
	for i := 0; i < 10; i += 2 {
		h.Free(addrs[i])
	}
	if _, err := h.Alloc(20); !errors.Is(err, ErrHeapFull) {
		t.Error("allocation larger than any hole succeeded")
	}
	if h.FailedAllocs() != 1 {
		t.Errorf("FailedAllocs = %d", h.FailedAllocs())
	}
	if f := h.Fragmentation(); f != 0.8 {
		t.Errorf("Fragmentation = %g, want 0.8", f)
	}
	// A 10-word allocation still fits in a hole (first-fit reuse).
	if _, err := h.Alloc(10); err != nil {
		t.Errorf("hole reuse failed: %v", err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOpsCounters(t *testing.T) {
	h := NewHeap(100)
	a, _ := h.Alloc(10)
	h.Alloc(10)
	h.Free(a)
	allocs, frees := h.Ops()
	if allocs != 2 || frees != 1 {
		t.Errorf("Ops = %d, %d", allocs, frees)
	}
	if h.Size() != 100 {
		t.Errorf("Size = %d", h.Size())
	}
}

// Property: after any random alloc/free workload the heap invariants hold
// and all memory is recovered once everything is freed.
func TestQuickHeapInvariants(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap(1 << 12)
		var live []int64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				if a, err := h.Alloc(int64(op%200) + 1); err == nil {
					live = append(live, a)
				}
			} else {
				i := rng.Intn(len(live))
				if err := h.Free(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if h.CheckInvariants() != nil {
				return false
			}
		}
		for _, a := range live {
			if err := h.Free(a); err != nil {
				return false
			}
		}
		return h.Allocated() == 0 && h.BlockCount() == 1 && h.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadyQueueFIFOAndRemove(t *testing.T) {
	q := NewReadyQueue()
	if _, ok := q.Pop(); ok {
		t.Error("empty queue popped")
	}
	q.Push(1)
	q.Push(2)
	q.Push(3)
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
	if !q.Remove(2) {
		t.Error("Remove failed")
	}
	if q.Remove(2) {
		t.Error("Remove of absent id succeeded")
	}
	a, _ := q.Pop()
	b, _ := q.Pop()
	if a != 1 || b != 3 {
		t.Errorf("Pop order = %d, %d", a, b)
	}
}

func TestCodeStore(t *testing.T) {
	s := NewCodeStore()
	s.Load(&CodeBlock{Name: "b", Words: 100, LocalWords: 10})
	s.Load(&CodeBlock{Name: "a", Words: 50, LocalWords: 5})
	if s.Find("missing") != nil {
		t.Error("Find of missing block non-nil")
	}
	if got := s.Find("a"); got == nil || got.Words != 50 {
		t.Error("Find failed")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if s.TotalWords() != 150 {
		t.Errorf("TotalWords = %d", s.TotalWords())
	}
	// Reload replaces.
	s.Load(&CodeBlock{Name: "a", Words: 70})
	if s.TotalWords() != 170 {
		t.Errorf("TotalWords after reload = %d", s.TotalWords())
	}
}

func TestTaskStateString(t *testing.T) {
	for st, want := range map[TaskState]string{
		TaskReady: "ready", TaskRunning: "running",
		TaskPaused: "paused", TaskTerminated: "terminated",
	} {
		if st.String() != want {
			t.Errorf("TaskState %d = %q, want %q", st, st.String(), want)
		}
	}
}
