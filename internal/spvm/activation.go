package spvm

import (
	"fmt"
	"sort"
	"sync"
)

// CodeBlock is an SPVM code/constants block, registered with a kernel via
// a load-code message.  Words is the block's size for storage accounting;
// LocalWords is the local-data size an activation of this code requires.
type CodeBlock struct {
	Name       string
	Words      int64
	LocalWords int64
}

// TaskState is the SPVM view of a task's life cycle, driven by the
// initiate / pause / resume / terminate messages.
type TaskState int

// Task states.
const (
	TaskReady TaskState = iota
	TaskRunning
	TaskPaused
	TaskTerminated
)

// String names the state using the grammar's vocabulary.
func (s TaskState) String() string {
	switch s {
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskPaused:
		return "paused"
	case TaskTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// ActivationRecord is the run-time representation of one task: its code
// block, parameters copied from the initiating message, heap-allocated
// local storage, and life-cycle state.  "Local data of a task retained
// over pause/resume" — the record persists until terminate.
type ActivationRecord struct {
	Task      TaskID
	Parent    TaskID
	CodeBlock string
	// Params are copied out of the initiate message's queue entry.
	Params []float64
	// LocalAddr/LocalWords locate the task's local data in the kernel
	// heap.
	LocalAddr  int64
	LocalWords int64
	State      TaskState
	// Results holds remote-return payloads delivered to this task.
	Results []float64
}

// CodeStore holds the code blocks a kernel has loaded.
type CodeStore struct {
	mu sync.Mutex
	m  map[string]*CodeBlock
}

// NewCodeStore returns an empty store.
func NewCodeStore() *CodeStore {
	return &CodeStore{m: map[string]*CodeBlock{}}
}

// Load registers a code block (idempotent; later loads replace).
func (s *CodeStore) Load(b *CodeBlock) {
	s.mu.Lock()
	s.m[b.Name] = b
	s.mu.Unlock()
}

// Find returns the named code block, or nil ("find code for task").
func (s *CodeStore) Find(name string) *CodeBlock {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Names returns the sorted loaded block names.
func (s *CodeStore) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalWords returns the storage held by loaded code blocks.
func (s *CodeStore) TotalWords() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, b := range s.m {
		t += b.Words
	}
	return t
}

// ReadyQueue is the kernel's FIFO of tasks awaiting a PE ("enter task in
// ready queue").
type ReadyQueue struct {
	mu sync.Mutex
	q  []TaskID
}

// NewReadyQueue returns an empty queue.
func NewReadyQueue() *ReadyQueue { return &ReadyQueue{} }

// Push appends a task.
func (r *ReadyQueue) Push(id TaskID) {
	r.mu.Lock()
	r.q = append(r.q, id)
	r.mu.Unlock()
}

// Pop removes and returns the oldest task; ok is false when empty.
func (r *ReadyQueue) Pop() (TaskID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.q) == 0 {
		return NoTask, false
	}
	id := r.q[0]
	r.q = r.q[1:]
	return id, true
}

// Len returns the queue length.
func (r *ReadyQueue) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.q)
}

// Remove deletes the first occurrence of id, reporting whether it was
// present (used when a paused task is cancelled).
func (r *ReadyQueue) Remove(id TaskID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, t := range r.q {
		if t == id {
			r.q = append(r.q[:i], r.q[i+1:]...)
			return true
		}
	}
	return false
}
