// Package server serves a FEM-2 system over the wire: a TCP front end
// that exposes the full typed command surface — the synchronous verbs,
// the asynchronous submit/status/wait/cancel/jobs job service, and
// server-pushed job-state notifications — to any number of concurrent
// network clients.
//
// Each connection is one tenant: the server registers a unique
// per-connection session (user@conn-N) in the shared core.System, so
// connections get isolated workspaces over the shared database and
// scheduler, a disconnect cancels exactly that connection's jobs, and
// the scheduler's per-owner quota meters each connection independently.
//
// Shutdown is graceful: Shutdown stops the listener, rejects mutating
// commands with the draining code while job-control and health verbs
// still answer, waits for live jobs to finish (cancelling leftovers if
// the drain context dies first), flushes each connection's outbound
// queue — terminal notifications included — and closes.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auvm"
	"repro/internal/cluster"
	"repro/internal/command"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// ErrServerClosed is returned by Serve after Shutdown stops the
// listener — the clean-exit signal, mirroring net/http.
var ErrServerClosed = errors.New("server: closed")

// Config parameterises one server.
type Config struct {
	// MaxJobsPerSession bounds each connection's live jobs; <= 0
	// disables admission control.
	MaxJobsPerSession int
	// QuotaPolicy picks reject-vs-queue when a connection saturates its
	// bound.
	QuotaPolicy job.QuotaPolicy
	// DefaultUser names sessions of connections that skip the Hello
	// handshake; defaults to "anon".
	DefaultUser string
	// RequestTimeout bounds each command's execution server-side; a
	// request past it answers with the cancelled code.  <= 0 disables.
	// wait and submit are exempt: blocking until a job finishes is
	// wait's contract, and a submitted job inherits the submitting
	// request's context — a deadline here would cancel the queued job
	// the moment the submit answered.  Job lifetime is bounded by
	// disconnect and cancel, not by the request that enqueued it.
	RequestTimeout time.Duration
	// Logf, when non-nil, receives one line per connection lifecycle
	// event.
	Logf func(format string, args ...any)
}

// Server serves one core.System over TCP.
type Server struct {
	sys *core.System
	cfg Config

	draining atomic.Bool

	// Front-end metrics, resolved once from the system registry; nil
	// no-op sinks when the system has none (see internal/obs).
	obs            *obs.Registry
	gConnections   *obs.Gauge
	mFramesIn      *obs.Counter
	mFramesOut     *obs.Counter
	mQuotaRejected *obs.Counter

	mu      sync.Mutex
	ln      net.Listener
	conns   map[*conn]struct{}
	connSeq int64
	wg      sync.WaitGroup
}

// New builds a server over a system, installing the per-tenant quota on
// the system's scheduler.
func New(sys *core.System, cfg Config) *Server {
	if cfg.DefaultUser == "" {
		cfg.DefaultUser = "anon"
	}
	sys.Jobs.SetQuota(cfg.MaxJobsPerSession, cfg.QuotaPolicy)
	s := &Server{sys: sys, cfg: cfg, conns: map[*conn]struct{}{}}
	s.obs = sys.Obs
	s.gConnections = s.obs.Gauge(obs.ServerConnections)
	s.mFramesIn = s.obs.Counter(obs.ServerFramesIn)
	s.mFramesOut = s.obs.Counter(obs.ServerFramesOut)
	s.mQuotaRejected = s.obs.Counter(obs.ServerQuotaRejected)
	return s
}

// logf writes one log line when configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Listen binds addr and starts serving on it in a new goroutine,
// returning the bound address (useful with ":0").  Serve's eventual
// error is discarded; use Serve directly to observe it.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Shutdown (ErrServerClosed) or a
// listener failure.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.connSeq++
		c := newConn(s, nc, s.connSeq)
		s.conns[c] = struct{}{}
		s.gConnections.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go c.serve()
	}
}

// removeConn drops a finished connection from the registry.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.gConnections.Add(-1)
	s.mu.Unlock()
	s.wg.Done()
}

// Shutdown drains the server gracefully: stop accepting, reject
// mutating commands (job control, reads, and health verbs still
// answer), wait for live jobs to reach terminal states — or until ctx
// dies, after which the remaining jobs are cancelled through their
// contexts — then flush every connection's outbound queue and close.
// It returns the drain error: nil when every job finished, the ctx's
// cancellation otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	// Cancel-or-finish: Drain waits for in-flight work; if ctx dies
	// first, Close (below) sweeps what is left through the existing job
	// context plumbing.
	err := s.sys.Drain(ctx)

	// Stop the connections.  Terminal job notifications were enqueued at
	// publish time, so each conn's teardown flushes them before the
	// socket closes.
	s.mu.Lock()
	for c := range s.conns {
		c.cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()

	s.sys.Close()
	return err
}

// conn is one client connection: a reader goroutine dispatching
// requests (each on its own goroutine, so a blocking wait never stalls
// the link), a writer goroutine serializing responses and
// notifications, and one private session in the shared system.
type conn struct {
	srv *Server
	nc  net.Conn
	id  int64

	ctx    context.Context
	cancel context.CancelFunc

	// out is the outbound queue the writer drains; notifications are
	// enqueued best-effort (dropped when the queue is full — status
	// remains authoritative), responses block until queued.
	out chan *wire.Response

	// reqs tracks in-flight request goroutines so teardown can close out
	// only after every sender is gone.
	reqs sync.WaitGroup

	mu       sync.Mutex
	sessName string
	sess     *auvm.Session
	unsub    func()
	hello    bool
}

// outboundQueue bounds the per-connection response/notification queue.
const outboundQueue = 256

func newConn(s *Server, nc net.Conn, id int64) *conn {
	ctx, cancel := context.WithCancel(context.Background())
	return &conn{
		srv: s, nc: nc, id: id,
		ctx: ctx, cancel: cancel,
		out: make(chan *wire.Response, outboundQueue),
	}
}

// serve runs the connection to completion.
func (c *conn) serve() {
	defer c.srv.removeConn(c)
	c.srv.logf("conn-%d: open from %s", c.id, c.nc.RemoteAddr())

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(c.nc)
		for resp := range c.out {
			if err := wire.EncodeResponse(bw, resp); err != nil {
				c.cancel()
				return
			}
			c.srv.mFramesOut.Inc()
			// Flush per frame only when the queue is empty, so a burst of
			// notifications coalesces into one write.
			if len(c.out) == 0 {
				if err := bw.Flush(); err != nil {
					c.cancel()
					return
				}
			}
		}
		bw.Flush()
	}()

	// Unblock the blocking read when the connection context dies (server
	// shutdown, write failure, quit) — the reader owns teardown.
	stop := context.AfterFunc(c.ctx, func() {
		c.nc.SetReadDeadline(time.Now())
	})

	br := bufio.NewReader(c.nc)
	for {
		req, err := wire.DecodeRequest(br)
		if err != nil {
			break
		}
		c.srv.mFramesIn.Inc()
		if req.Hello != nil {
			c.handleHello(req)
			continue
		}
		if req.ID == 0 {
			c.send(&wire.Response{Error: &wire.Error{
				Code: wire.CodeProto, Message: "request id 0 is reserved for notifications"}})
			continue
		}
		c.reqs.Add(1)
		go func(req *wire.Request) {
			defer c.reqs.Done()
			c.handleCommand(req)
		}(req)
	}

	// Teardown, in dependency order: stop new sends (request goroutines
	// finish, subscription detaches), then close the queue so the writer
	// flushes what is left, then close the socket and the session —
	// cancelling this connection's jobs, the mid-solve disconnect story.
	stop()
	c.cancel()
	c.reqs.Wait()
	c.mu.Lock()
	unsub, sessName := c.unsub, c.sessName
	c.mu.Unlock()
	if unsub != nil {
		unsub()
	}
	close(c.out)
	c.nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
	<-writerDone
	c.nc.Close()
	if sessName != "" {
		c.srv.sys.CloseSession(sessName)
	}
	c.srv.logf("conn-%d: closed (session %s)", c.id, sessName)
}

// send queues one response, blocking until the writer takes it or the
// connection dies.
func (c *conn) send(resp *wire.Response) bool {
	select {
	case c.out <- resp:
		return true
	case <-c.ctx.Done():
		return false
	}
}

// notify queues one notification best-effort: a full queue drops it
// rather than blocking the scheduler (the callback runs under the
// scheduler's mutex), and status/wait remain the authoritative record.
func (c *conn) notify(resp *wire.Response) {
	select {
	case c.out <- resp:
	default:
	}
}

// session returns the connection's session, creating it on first use
// under the handshake user (or the server default).  The session name
// is unique per connection, so each connection is its own tenant.
func (c *conn) session(user string) *auvm.Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess != nil {
		return c.sess
	}
	if user == "" {
		user = c.srv.cfg.DefaultUser
	}
	c.sessName = fmt.Sprintf("%s@conn-%d", user, c.id)
	c.sess = c.srv.sys.Session(c.sessName)
	owner := c.sessName
	c.unsub = c.srv.sys.Jobs.Subscribe(func(snap job.Snapshot) {
		if snap.Owner != owner {
			return
		}
		c.notify(&wire.Response{Event: jobEvent(snap)})
	})
	return c.sess
}

// jobEvent converts a scheduler snapshot into its wire notification.
func jobEvent(snap job.Snapshot) *wire.JobEvent {
	ev := &wire.JobEvent{
		Job: int64(snap.ID), State: snap.State.String(), Cmd: snap.Cmd.String(),
	}
	if snap.Err != nil && snap.State.Terminal() {
		ev.Error = snap.Err.Error()
	}
	return ev
}

// handleHello answers the handshake.
func (c *conn) handleHello(req *wire.Request) {
	c.mu.Lock()
	already := c.hello || c.sess != nil
	c.hello = true
	c.mu.Unlock()
	if already {
		c.send(&wire.Response{ID: req.ID, Error: &wire.Error{
			Code: wire.CodeProto, Message: "hello must be the first and only handshake"}})
		return
	}
	if req.Hello.Proto != command.ProtocolVersion {
		c.send(&wire.Response{ID: req.ID, Error: &wire.Error{
			Code: wire.CodeProto,
			Message: fmt.Sprintf("protocol mismatch: client %d, server %d",
				req.Hello.Proto, command.ProtocolVersion)}})
		return
	}
	c.session(req.Hello.User)
	c.mu.Lock()
	sessName := c.sessName
	c.mu.Unlock()
	c.send(&wire.Response{ID: req.ID, Welcome: &wire.Welcome{
		Server: "fem2d", Release: command.Release,
		Proto: command.ProtocolVersion, Session: sessName,
		Storage:       c.srv.sys.StorageBackend(),
		Degraded:      c.srv.sys.Degraded(),
		UptimeSeconds: c.srv.sys.Obs.UptimeSeconds(),
		Role:          c.srv.sys.ClusterRole(),
		Leader:        c.srv.sys.ClusterLeader(),
	}})
}

// handleCommand decodes, gates, executes, and answers one command
// request.
func (c *conn) handleCommand(req *wire.Request) {
	cmd, err := command.UnmarshalCommand(req.Command)
	if err != nil {
		c.send(&wire.Response{ID: req.ID, Error: wireError(err)})
		return
	}
	if c.srv.draining.Load() && mutatesUnderDrain(cmd) {
		c.send(&wire.Response{ID: req.ID, Error: &wire.Error{
			Code:    wire.CodeDraining,
			Message: fmt.Sprintf("server is draining; %q not accepted", command.Value(cmd))}})
		return
	}
	if c.srv.sys.Degraded() && refusedWhenDegraded(cmd) {
		c.send(&wire.Response{ID: req.ID, Error: &wire.Error{
			Code:    wire.CodeDegraded,
			Message: fmt.Sprintf("store degraded (read-only); %q not accepted", command.Value(cmd))}})
		return
	}
	if cl := c.srv.sys.Cluster; cl != nil && !cl.IsLeader() && refusedOnFollower(cmd) {
		// Refused before execution, so the client may retry any verb on
		// the leader — see wire.CodeNotLeader.
		c.send(&wire.Response{ID: req.ID, Error: &wire.Error{
			Code:    wire.CodeNotLeader,
			Leader:  cl.LeaderAddr(),
			Message: fmt.Sprintf("not the cluster leader; %q not accepted here", command.Value(cmd))}})
		return
	}
	ctx := c.ctx
	if t := c.srv.cfg.RequestTimeout; t > 0 && !timeoutExempt(cmd) {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	sess := c.session("")
	start := time.Now()
	res, err := sess.Do(ctx, cmd)
	c.srv.obs.Histogram(obs.ServerRequestPrefix + command.Verb(cmd)).Observe(time.Since(start))
	if errors.Is(err, job.ErrQuota) {
		c.srv.mQuotaRejected.Inc()
	}

	resp := &wire.Response{ID: req.ID}
	if res != nil {
		if data, merr := command.MarshalResult(res); merr == nil {
			resp.Result = data
		} else {
			err = merr
		}
	}
	if err != nil {
		resp.Error = wireError(err)
	}
	if !c.send(resp) {
		return
	}
	if errors.Is(err, auvm.ErrQuit) {
		// quit ends the connection after its reply is flushed.
		c.cancel()
	}
}

// mutatesUnderDrain reports whether a command is refused while the
// server drains.  Job control, reads, and health verbs keep answering
// so clients can collect results; everything that would create or
// change state is refused.  Snapshot is a read (it serializes the
// workspace to a server-side file) and stays allowed — the natural
// last act before a shutdown — while restore mutates and is refused.
func mutatesUnderDrain(cmd command.Command) bool {
	switch command.Value(cmd).(type) {
	case command.Help, command.Ping, command.Version, command.Stats,
		command.Quit, command.Status, command.Wait, command.Cancel,
		command.Jobs, command.List, command.Display, command.Snapshot:
		return false
	default:
		return true
	}
}

// timeoutExempt reports the verbs RequestTimeout must not bound: wait
// blocks by contract, and submit's context outlives the request as the
// queued job's context — a deadline would cancel the job right after
// the submit answered.
func timeoutExempt(cmd command.Command) bool {
	switch command.Value(cmd).(type) {
	case command.Wait, command.Submit:
		return true
	}
	return false
}

// refusedWhenDegraded reports whether a command is refused while the
// store is degraded to read-only.  The set is the drain set minus
// retrieve: drain refuses retrieve because it mutates the workspace
// being flushed, but under degradation the workspace is fine and
// retrieve only *reads* the store — a degraded daemon's whole point is
// that reads keep serving.
func refusedWhenDegraded(cmd command.Command) bool {
	if _, ok := command.Value(cmd).(command.Retrieve); ok {
		return false
	}
	return mutatesUnderDrain(cmd)
}

// refusedOnFollower reports whether a command is refused on a cluster
// follower.  The set is the degraded set plus cancel: under
// degradation cancel still works (job state is in memory), but on a
// follower every job lives on the leader, so job mutation belongs
// there too.  Reads — status, wait, jobs, retrieve, list, display —
// keep serving, which is the point of running followers at all.
func refusedOnFollower(cmd command.Command) bool {
	if _, ok := command.Value(cmd).(command.Cancel); ok {
		return true
	}
	return refusedWhenDegraded(cmd)
}

// wireError maps a server-side error onto its wire code, carrying the
// error text verbatim so the client renders the identical line.
func wireError(err error) *wire.Error {
	code := wire.CodeInternal
	switch {
	case errors.Is(err, auvm.ErrQuit):
		code = wire.CodeQuit
	case errors.Is(err, job.ErrQuota):
		code = wire.CodeQuota
	case errors.Is(err, job.ErrClosed):
		code = wire.CodeClosed
	case errors.Is(err, store.ErrDegraded):
		code = wire.CodeDegraded
	case errors.Is(err, cluster.ErrNotLeader):
		code = wire.CodeNotLeader
	case errors.Is(err, errs.ErrUsage):
		code = wire.CodeUsage
	case errors.Is(err, errs.ErrNotFound):
		code = wire.CodeNotFound
	case errors.Is(err, errs.ErrCancelled):
		code = wire.CodeCancelled
	}
	return &wire.Error{Code: code, Message: err.Error()}
}
