package fault

import (
	"fmt"

	"repro/internal/store"
)

// Store op names, as seen by Injector rules.
const (
	OpGet     = "get"
	OpPut     = "put"
	OpDelete  = "delete"
	OpSeek    = "seek"
	OpBatch   = "batch"
	OpBatchIf = "batchif"
)

// Store decorates a store.Store with an Injector.  Every operation
// first consults the schedule: a matched fault delays and/or fails the
// call before (or, for a torn batch, partway through) the underlying
// store sees it.  With the injector disarmed the wrapper is a
// transparent pass-through — the store conformance suite runs green
// over it, which internal/fault's own tests pin.
type Store struct {
	inner store.Store
	in    *Injector
}

// NewStore wraps inner with the injector's weather.
func NewStore(inner store.Store, in *Injector) *Store {
	return &Store{inner: inner, in: in}
}

// WrapStore adapts NewStore to the store.Config.Wrap hook signature.
func WrapStore(in *Injector) func(store.Store) store.Store {
	return func(inner store.Store) store.Store { return NewStore(inner, in) }
}

// Inner returns the wrapped store.
func (s *Store) Inner() store.Store { return s.inner }

func (s *Store) Get(key string) ([]byte, error) {
	if f := s.in.check(OpGet); f != nil && f.Err != nil {
		return nil, fmt.Errorf("get %q: %w", key, f.Err)
	}
	return s.inner.Get(key)
}

func (s *Store) Put(key string, value []byte) error {
	if f := s.in.check(OpPut); f != nil && f.Err != nil {
		return fmt.Errorf("put %q: %w", key, f.Err)
	}
	return s.inner.Put(key, value)
}

func (s *Store) Delete(key string) error {
	if f := s.in.check(OpDelete); f != nil && f.Err != nil {
		return fmt.Errorf("delete %q: %w", key, f.Err)
	}
	return s.inner.Delete(key)
}

func (s *Store) Seek(prefix string, fn func(key string, value []byte) bool) error {
	if f := s.in.check(OpSeek); f != nil && f.Err != nil {
		return fmt.Errorf("seek %q: %w", prefix, f.Err)
	}
	return s.inner.Seek(prefix, fn)
}

// Batch injects the one failure a real atomic backend cannot produce
// but a cheap one can: a torn batch.  A fault with Partial > 0 applies
// the first Partial ops individually before failing, leaving the store
// in the exact half-written state the Batch contract forbids — which is
// what recovery tests want to provoke.
func (s *Store) Batch(ops []Op) error {
	if f := s.in.check(OpBatch); f != nil && f.Err != nil {
		if f.Partial > 0 {
			n := f.Partial
			if n > len(ops) {
				n = len(ops)
			}
			for _, op := range ops[:n] {
				var err error
				if op.Delete {
					err = s.inner.Delete(op.Key)
				} else {
					err = s.inner.Put(op.Key, op.Value)
				}
				if err != nil {
					return fmt.Errorf("batch (torn): %w", err)
				}
			}
		}
		return fmt.Errorf("batch of %d ops: %w", len(ops), f.Err)
	}
	return s.inner.Batch(ops)
}

// BatchIf forwards the conditional batch under its own op name, so
// chaos schedules can stall or fail lease traffic (which rides
// BatchIf) without touching the data path.  Latency-only rules
// (Fault.Err nil) delay inside check and then pass through — that is
// how the lease-race tests hold one contender at the door while the
// other acquires.
func (s *Store) BatchIf(key string, want []byte, ops []Op) error {
	if f := s.in.check(OpBatchIf); f != nil && f.Err != nil {
		return fmt.Errorf("batchif %q: %w", key, f.Err)
	}
	return store.BatchIf(s.inner, key, want, ops)
}

// Refresh forwards to the inner store's Refresh when it has one.
func (s *Store) Refresh() error { return store.Refresh(s.inner) }

// Seal forwards to the inner store's Seal when it has one.
func (s *Store) Seal() error { return store.Seal(s.inner) }

func (s *Store) Close() error { return s.inner.Close() }

// Op aliases store.Op so rule-building test code can stay inside one
// import.
type Op = store.Op
