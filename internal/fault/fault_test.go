package fault_test

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

func TestInjectorCountedSchedule(t *testing.T) {
	// After 2, every 3rd, at most 2 times: calls 5 (= After+Every) and 8
	// fault, nothing else ever does.
	in := fault.NewInjector(7, fault.Rule{
		Op: fault.OpPut, After: 2, Every: 3, Count: 2,
		Fault: fault.Fault{Err: fault.ErrIO},
	})
	s := fault.NewStore(store.NewMemStore(), in)
	defer s.Close()
	var failed []int
	for i := 1; i <= 12; i++ {
		if err := s.Put("k", nil); err != nil {
			if !errors.Is(err, fault.ErrIO) {
				t.Fatalf("call %d: err = %v, want ErrIO", i, err)
			}
			failed = append(failed, i)
		}
	}
	if len(failed) != 2 || failed[0] != 5 || failed[1] != 8 {
		t.Fatalf("faulted calls = %v, want [5 8]", failed)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", in.Injected())
	}
}

func TestInjectorProbabilityIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		in := fault.NewInjector(seed, fault.Rule{Op: fault.OpGet, Prob: 0.3, Fault: fault.Fault{Err: fault.ErrIO}})
		s := fault.NewStore(store.NewMemStore(), in)
		defer s.Close()
		s.Inner().Put("k", []byte("v"))
		var failed []int
		for i := 1; i <= 50; i++ {
			if _, err := s.Get("k"); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("prob 0.3 over 50 calls faulted %d times; schedule degenerate", len(a))
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	if c := run(43); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced the identical fault schedule")
		}
	}
}

func TestInjectorDisarmSuspendsScheduleAndCounters(t *testing.T) {
	in := fault.NewInjector(1, fault.Rule{Op: fault.OpPut, After: 1, Fault: fault.Fault{Err: fault.ErrIO}})
	s := fault.NewStore(store.NewMemStore(), in)
	defer s.Close()
	if err := s.Put("k", nil); err != nil {
		t.Fatalf("call 1 (After: 1) should pass: %v", err)
	}
	in.Disarm()
	for i := 0; i < 10; i++ {
		if err := s.Put("k", nil); err != nil {
			t.Fatalf("disarmed Put faulted: %v", err)
		}
	}
	if in.Calls(fault.OpPut) != 1 {
		t.Fatalf("disarmed calls advanced the counter: %d", in.Calls(fault.OpPut))
	}
	in.Arm()
	if err := s.Put("k", nil); !errors.Is(err, fault.ErrIO) {
		t.Fatalf("re-armed call 2 = %v, want ErrIO", err)
	}
}

func TestStoreTornBatch(t *testing.T) {
	in := fault.NewInjector(1, fault.Rule{
		Op: fault.OpBatch, Count: 1,
		Fault: fault.Fault{Err: fault.ErrIO, Partial: 2},
	})
	s := fault.NewStore(store.NewMemStore(), in)
	defer s.Close()
	err := s.Batch([]store.Op{
		store.Put("a", []byte("1")),
		store.Put("b", []byte("2")),
		store.Put("c", []byte("3")),
	})
	if !errors.Is(err, fault.ErrIO) {
		t.Fatalf("torn batch err = %v, want ErrIO", err)
	}
	// Exactly the first two ops landed: the half-written state the
	// Batch contract forbids, on purpose.
	if v, err := s.Get("a"); err != nil || string(v) != "1" {
		t.Fatalf("a = %q, %v; torn prefix should have landed", v, err)
	}
	if v, err := s.Get("b"); err != nil || string(v) != "2" {
		t.Fatalf("b = %q, %v; torn prefix should have landed", v, err)
	}
	if _, err := s.Get("c"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("c = %v, want ErrNotFound past the tear", err)
	}
}

func TestStoreLatencyOnlyFault(t *testing.T) {
	in := fault.NewInjector(1, fault.Rule{
		Op: fault.OpGet, Count: 1,
		Fault: fault.Fault{Delay: 30 * time.Millisecond},
	})
	s := fault.NewStore(store.NewMemStore(), in)
	defer s.Close()
	s.Inner().Put("k", []byte("v"))
	start := time.Now()
	v, err := s.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("delayed Get = %q, %v", v, err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("Get returned in %v, want >= 30ms stall", d)
	}
}

// pipePair builds a real TCP pair so closes propagate like production.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestConnWriteDropClosesBothEnds(t *testing.T) {
	cl, srv := pipePair(t)
	in := fault.NewInjector(1, fault.Rule{Op: fault.OpWrite, After: 1, Count: 1, Fault: fault.Fault{Err: fault.ErrIO}})
	fc := fault.NewConn(cl, in)

	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(srv, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("server read = %q, %v", buf, err)
	}
	if _, err := fc.Write([]byte("gone!")); !errors.Is(err, fault.ErrIO) {
		t.Fatalf("write 2 = %v, want ErrIO", err)
	}
	// The drop closed the socket: the peer sees EOF, not the bytes.
	srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := srv.Read(buf); err == nil {
		t.Fatalf("server read %d bytes after drop, want EOF", n)
	}
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write on dropped conn succeeded")
	}
}

func TestConnMidFrameCut(t *testing.T) {
	cl, srv := pipePair(t)
	in := fault.NewInjector(1, fault.Rule{Op: fault.OpWrite, Count: 1, Fault: fault.Fault{Err: fault.ErrIO, Partial: 3}})
	fc := fault.NewConn(cl, in)

	n, err := fc.Write([]byte("abcdefgh"))
	if !errors.Is(err, fault.ErrIO) {
		t.Fatalf("cut write err = %v, want ErrIO", err)
	}
	if n != 3 {
		t.Fatalf("cut write reported %d bytes, want 3", n)
	}
	// The peer receives exactly the torn prefix, then EOF.
	srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(srv)
	if string(got) != "abc" {
		t.Fatalf("peer saw %q, want torn prefix \"abc\"", got)
	}
}

func TestDialerPerConnectionWeather(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	dial := fault.Dialer(func(n int) *fault.Injector {
		if n == 1 {
			return fault.NewInjector(1, fault.Rule{Op: fault.OpWrite, Fault: fault.Fault{Err: fault.ErrIO}})
		}
		return nil // second connection is clean
	})
	c1, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	if _, err := c1.Write([]byte("x")); !errors.Is(err, fault.ErrIO) {
		t.Fatalf("conn 1 write = %v, want ErrIO", err)
	}
	c2, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("x")); err != nil {
		t.Fatalf("conn 2 write = %v, want clean", err)
	}
}
