package fault

import (
	"fmt"
	"net"
	"sync"
)

// Conn op names, as seen by Injector rules.
const (
	OpRead  = "read"
	OpWrite = "write"
)

// Conn decorates a net.Conn with an Injector.  A faulted read or write
// closes the underlying connection and reports the injected error, so
// both ends observe the drop — the same blast radius as a yanked cable.
// A write fault with Partial > 0 flushes that many bytes first: the
// peer receives a torn frame, which is the mid-frame cut a framing
// layer must survive.  Delay-only faults just stall.
//
// Exactly one wire.EncodeRequest lands as one Write here (the client
// flushes a whole frame at a time), so a rule like {Op: "write",
// After: 12, Count: 1} kills a connection on precisely its 13th
// outbound frame — deterministic chaos for the reconnect path.
type Conn struct {
	net.Conn
	in *Injector
}

// NewConn wraps nc with the injector's weather.
func NewConn(nc net.Conn, in *Injector) *Conn {
	return &Conn{Conn: nc, in: in}
}

func (c *Conn) Read(p []byte) (int, error) {
	if f := c.in.check(OpRead); f != nil && f.Err != nil {
		c.Conn.Close()
		return 0, fmt.Errorf("conn read: %w", f.Err)
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if f := c.in.check(OpWrite); f != nil && f.Err != nil {
		n := 0
		if f.Partial > 0 {
			cut := f.Partial
			if cut > len(p) {
				cut = len(p)
			}
			n, _ = c.Conn.Write(p[:cut])
		}
		c.Conn.Close()
		return n, fmt.Errorf("conn write: %w", f.Err)
	}
	return c.Conn.Write(p)
}

// Dialer builds a dial function that wraps each successive connection
// with its own injector: perConn is called with the 1-based connection
// number and returns the injector for that connection (nil = clean).
// Plugged into client.Options.Dialer, it scripts per-connection
// weather — "kill conn 1 on frame 13, cut conn 2 mid-frame 9, leave
// conn 3 alone" — while the client under test believes it is dialing
// plain TCP.
func Dialer(perConn func(n int) *Injector) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	conns := 0
	return func(addr string) (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns++
		n := conns
		mu.Unlock()
		if in := perConn(n); in != nil {
			return NewConn(nc, in), nil
		}
		return nc, nil
	}
}
