// Package fault is the chaos toolbox: seeded, deterministic fault
// injection for the two I/O boundaries FEM-2 crosses — the store (disk)
// and the wire (TCP).  A test builds an Injector from a seed and a rule
// set, wraps a store.Store or net.Conn with it, and the wrapped object
// misbehaves on an exact, reproducible schedule: an ErrIO on the third
// Put, a dropped connection on the twelfth write, a 5ms stall on every
// Get, a batch torn halfway through.
//
// Determinism is the point.  Rules either fire on a counted schedule
// (After/Every/Count against a per-op call counter) or with a
// probability drawn from the injector's own seeded PRNG — never from
// global randomness — so a failing chaos run replays exactly from its
// seed.  Injectors also arm and disarm at runtime, which is how a chaos
// test clears the weather and asserts recovery.
//
// The package knows nothing of the layers above: internal/store and
// internal/client import it only from tests; the wrappers implement the
// plain store.Store and net.Conn interfaces, so they slot in anywhere a
// real backend or connection does.
package fault

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrIO is the injected I/O failure.  Wrapped errors carry op context
// but always satisfy errors.Is(err, ErrIO), so tests distinguish an
// injected fault from a real one.
var ErrIO = errors.New("fault: injected I/O error")

// Fault is what a matched rule does to the operation.
type Fault struct {
	// Err, when non-nil, fails the operation with this error (wrapped so
	// errors.Is still sees it).  Nil with a Delay makes a latency-only
	// fault.
	Err error
	// Delay stalls the operation before it runs (and before Err fires).
	Delay time.Duration
	// Partial, for batch and write operations, lets a prefix of the work
	// land before the failure: a store Batch applies the first Partial
	// ops, a conn write flushes the first Partial bytes.  It is the torn
	// write / mid-frame cut knob and is meaningless without Err.
	Partial int
}

// Rule decides when a Fault fires.  Zero-value scheduling fields mean
// "from the first call, every call, forever"; Prob switches the rule
// from counted scheduling to seeded coin flips.
type Rule struct {
	// Op names the operation the rule watches ("get", "put", "delete",
	// "seek", "batch" on stores; "read", "write" on conns).  Empty
	// matches every op.
	Op string
	// After skips the first After matching calls.
	After int
	// Every fires on every Every'th call past After (1 = every call,
	// which is the zero-value behaviour; 3 = calls After+3, After+6, …).
	Every int
	// Count caps how many times the rule fires; 0 is unlimited.
	Count int
	// Prob, when > 0, ignores the counted schedule and fires with this
	// probability per call, drawn from the injector's seeded PRNG.
	Prob float64
	// Fault is what happens when the rule fires.
	Fault Fault
}

// Injector owns the rules, the per-op call counters, and the seeded
// PRNG.  It is safe for concurrent use; a single mutex keeps the
// counters and PRNG coherent, which is fine at fault-injection rates.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []Rule
	fired    []int          // per-rule fire count, parallel to rules
	calls    map[string]int // per-op call count (counts only armed calls)
	armed    bool
	injected int
}

// NewInjector builds an armed injector from a seed and a rule set.
func NewInjector(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: rules,
		fired: make([]int, len(rules)),
		calls: map[string]int{},
		armed: true,
	}
}

// Arm starts (or resumes) injecting.  Counters keep their values across
// disarm/arm cycles.
func (in *Injector) Arm() {
	in.mu.Lock()
	in.armed = true
	in.mu.Unlock()
}

// Disarm stops injecting: every wrapped operation behaves exactly like
// the underlying one until Arm.  This is how a chaos test ends the
// storm and asserts recovery.
func (in *Injector) Disarm() {
	in.mu.Lock()
	in.armed = false
	in.mu.Unlock()
}

// Injected reports how many faults have fired so far — a test asserting
// "the run actually hit weather" checks it is non-zero.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Calls reports how many armed calls of op the injector has seen.
func (in *Injector) Calls(op string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[op]
}

// check consults the rules for op.  It returns the first matching
// rule's Fault, or nil for a clean pass.  The per-op counter advances
// only while armed, so a disarmed stretch does not consume schedule.
func (in *Injector) check(op string) *Fault {
	in.mu.Lock()
	if !in.armed {
		in.mu.Unlock()
		return nil
	}
	in.calls[op]++
	n := in.calls[op]
	for i := range in.rules {
		r := &in.rules[i]
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		fire := false
		if r.Prob > 0 {
			fire = in.rng.Float64() < r.Prob
		} else {
			past := n - r.After
			if past > 0 {
				every := r.Every
				if every <= 0 {
					every = 1
				}
				fire = past%every == 0
			}
		}
		if !fire {
			continue
		}
		in.fired[i]++
		in.injected++
		f := r.Fault
		in.mu.Unlock()
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		return &f
	}
	in.mu.Unlock()
	return nil
}
