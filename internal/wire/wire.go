// Package wire is the FEM-2 network protocol: the framing and message
// envelopes a fem2d daemon and its clients exchange over TCP.
//
// Every message is one frame: a 4-byte big-endian payload length
// followed by that many bytes of JSON.  The JSON payload is a Request
// (client → server) or a Response (server → client).  A Request is
// either the connection handshake (Hello) or one typed command from the
// command AST, encoded by command.MarshalCommand; its ID is a
// client-chosen correlation number echoed on the matching Response, so
// requests may be pipelined and answered out of order.  A Response with
// ID 0 and a non-nil Event is a server-pushed job-state notification —
// the wait-without-blocking channel.
//
// The package is pure schema: it imports only the command layer and
// knows nothing of sessions, scheduling, or sockets beyond io.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's payload.  A frame whose declared length
// exceeds it fails ReadFrame with ErrFrameTooBig: no command or result
// in the language comes anywhere near it, so an oversized declaration
// is a corrupt or hostile peer, not a big model.
const MaxFrame = 4 << 20

// ErrFrameTooBig reports a frame whose declared payload exceeds
// MaxFrame.
var ErrFrameTooBig = errors.New("wire: frame exceeds maximum size")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.  io.EOF before any header
// byte is a clean end of stream; a truncated header or payload is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes declared", ErrFrameTooBig, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// Request is one client → server message.
type Request struct {
	// ID correlates the response; clients choose it (monotonic is
	// conventional).  ID 0 is reserved for notifications and must not be
	// used by requests.
	ID uint64 `json:"id"`
	// Hello, when non-nil, is the connection handshake; Command must be
	// empty then.
	Hello *Hello `json:"hello,omitempty"`
	// Command is one typed command in its command.MarshalCommand
	// envelope.
	Command json.RawMessage `json:"command,omitempty"`
}

// Hello opens a connection: it names the user and pins the protocol
// revision.  The handshake is optional — a server answers bare commands
// under a connection-local default user — but a client that sends it
// must send it first.
type Hello struct {
	// User is the tenant name; the server derives the per-connection
	// session name from it.
	User string `json:"user"`
	// Proto is the client's command.ProtocolVersion; the server rejects
	// a mismatch.
	Proto int `json:"proto"`
}

// Welcome answers Hello.
type Welcome struct {
	// Server names the serving program; Release its software release.
	Server  string `json:"server"`
	Release string `json:"release"`
	// Proto is the server's protocol revision.
	Proto int `json:"proto"`
	// Session is the per-connection session name the server registered —
	// the owner of every job this connection submits.
	Session string `json:"session"`
	// Storage names the server's storage backend ("mem", "file"), so a
	// client knows at connect time whether its models outlive the daemon.
	Storage string `json:"storage,omitempty"`
	// Degraded reports that the server's store is in read-only degraded
	// mode at connect time (see the degraded error code); healthy
	// servers omit it.
	Degraded bool `json:"degraded,omitempty"`
	// UptimeSeconds is whole seconds since the serving system started
	// (rev 4); just-started servers omit it, which also keeps the
	// envelope byte-identical to rev 3 in that state.
	UptimeSeconds int64 `json:"uptime_s,omitempty"`
	// Role is the daemon's cluster role ("leader" or "follower", rev 5);
	// non-clustered daemons omit it, keeping the envelope byte-identical
	// to rev 4 outside a cluster.
	Role string `json:"role,omitempty"`
	// Leader is the cluster leader's advertised address as this daemon
	// knows it (rev 5) — on a follower, where mutating verbs should go.
	// Omitted outside a cluster or when no leader is known.
	Leader string `json:"leader,omitempty"`
}

// Response is one server → client message: the answer to a request
// (ID echoes the request), or a notification (ID 0, Event non-nil).
type Response struct {
	ID uint64 `json:"id,omitempty"`
	// Welcome answers a Hello request.
	Welcome *Welcome `json:"welcome,omitempty"`
	// Result is the command's typed result in its command.MarshalResult
	// envelope, absent when the command produced none.
	Result json.RawMessage `json:"result,omitempty"`
	// Error reports the command's failure; Result may accompany it
	// (quit answers both).
	Error *Error `json:"error,omitempty"`
	// Event is a server-pushed job-state notification.
	Event *JobEvent `json:"event,omitempty"`
}

// Error is a wire-encoded failure: a taxonomy code the client maps back
// onto the shared error sentinels, plus the server-side error text —
// which the client surfaces verbatim, so remote error lines render
// byte-identically to local ones.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Leader carries the cluster leader's advertised address on
	// CodeNotLeader responses (rev 5), so a redirected client knows
	// where to reconnect without a discovery round.
	Leader string `json:"leader,omitempty"`
}

// The wire error codes.  Each corresponds to one sentinel of the shared
// taxonomy (or a protocol-level failure); the client reconstitutes
// errors.Is behaviour from them.
const (
	// CodeUsage maps errs.ErrUsage: a malformed or ineligible request.
	CodeUsage = "usage"
	// CodeNotFound maps errs.ErrNotFound.
	CodeNotFound = "not-found"
	// CodeCancelled maps errs.ErrCancelled.
	CodeCancelled = "cancelled"
	// CodeQuota maps job.ErrQuota: the per-session admission control
	// rejected the submission.
	CodeQuota = "quota"
	// CodeClosed maps job.ErrClosed: the scheduler has shut down.
	CodeClosed = "closed"
	// CodeDraining reports a command rejected because the server is
	// draining; job-control reads and ping/version still answer.
	CodeDraining = "draining"
	// CodeDegraded maps store.ErrDegraded: the server's store stopped
	// accepting writes, the daemon is serving read-only, and mutating
	// commands are refused until the background probe re-arms writes.
	CodeDegraded = "degraded"
	// CodeNotLeader reports a mutating command sent to a cluster
	// follower (rev 5): the daemon serves reads, but writes belong to
	// the leaseholder.  Error.Leader names the leader's advertised
	// address when known; clients redirect there and retry.  The
	// refusal happens before the command executes, so retrying it on
	// the leader is safe for every verb, idempotent or not.
	CodeNotLeader = "not-leader"
	// CodeQuit accompanies the quit verb's result; the server closes the
	// connection after flushing it.
	CodeQuit = "quit"
	// CodeProto reports a protocol violation: a bad frame, a handshake
	// mismatch, an undecodable envelope.
	CodeProto = "proto"
	// CodeInternal reports a server-side failure matching no sentinel.
	CodeInternal = "internal"
)

// JobEvent is one job lifecycle transition, pushed to the connection
// whose session owns the job: submit a solve, keep reading, and the
// queued → running → done trail arrives without a blocking wait.
type JobEvent struct {
	// Job is the job id; State the lifecycle state just entered.
	Job   int64  `json:"job"`
	State string `json:"state"`
	// Cmd is the job's command, canonical line.
	Cmd string `json:"cmd,omitempty"`
	// Error is the failure text of a failed or cancelled job.
	Error string `json:"error,omitempty"`
}

// String renders the notification line the -notify REPL prints.
func (e *JobEvent) String() string {
	if e.Error != "" {
		return fmt.Sprintf("[job-%d %s: %s — %s]", e.Job, e.State, e.Cmd, e.Error)
	}
	return fmt.Sprintf("[job-%d %s: %s]", e.Job, e.State, e.Cmd)
}

// EncodeRequest marshals and frames a request.
func EncodeRequest(w io.Writer, req *Request) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// EncodeResponse marshals and frames a response.
func EncodeResponse(w io.Writer, resp *Response) error {
	payload, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// DecodeRequest reads one frame and unmarshals it as a Request.
func DecodeRequest(r io.Reader) (*Request, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	req := new(Request)
	if err := json.Unmarshal(payload, req); err != nil {
		return nil, fmt.Errorf("wire: bad request: %w", err)
	}
	return req, nil
}

// DecodeResponse reads one frame and unmarshals it as a Response.
func DecodeResponse(r io.Reader) (*Response, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	resp := new(Response)
	if err := json.Unmarshal(payload, resp); err != nil {
		return nil, fmt.Errorf("wire: bad response: %w", err)
	}
	return resp, nil
}
