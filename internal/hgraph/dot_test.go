package hgraph

import (
	"strings"
	"testing"
)

func TestToDOTRendersNodesArcsAndSubgraphs(t *testing.T) {
	g := NewGraph("outer")
	root := g.Add("root")
	leaf := g.AddAtom("count", Int(3))
	root.Arc("k", leaf)
	inner := NewGraph("inner")
	inner.Add("deep")
	root.SetSub(inner)

	dot := ToDOT(g)
	for _, want := range []string{
		"digraph hgraph", "root", "count", "3",
		"label=\"k\"", "subgraph cluster_", "inner", "deep", "style=dashed",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestToDOTNilAndEmpty(t *testing.T) {
	if dot := ToDOT(nil); !strings.Contains(dot, "digraph") {
		t.Error("nil graph DOT malformed")
	}
	if dot := ToDOT(NewGraph("e")); !strings.Contains(dot, "}") {
		t.Error("empty graph DOT malformed")
	}
}

func TestToDOTEscapesQuotedAtoms(t *testing.T) {
	g := NewGraph("q")
	g.AddAtom("s", Str(`say "hi"`))
	dot := ToDOT(g)
	if strings.Contains(dot, `""hi""`) {
		t.Errorf("unescaped quotes in DOT:\n%s", dot)
	}
}

func TestToDOTMessageModel(t *testing.T) {
	// The DOT export of a grammar-valid message model stays usable.
	m := buildInitiateMessage(4)
	dot := ToDOT(m)
	for _, want := range []string{"initiate", "replications", "params"} {
		if !strings.Contains(dot, want) {
			t.Errorf("message DOT missing %q", want)
		}
	}
}
