package hgraph

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// counterGrammar: <counter> ::= {value: INT}
func counterGrammar() *Grammar {
	g := NewGrammar("counter", "counter")
	g.Define("counter", StructType{Closed: true, Fields: []Field{
		{Sel: "value", Type: AtomType{AtomInt}},
	}})
	return g
}

func counterGraph(v int64) *Graph {
	g := NewGraph("counter")
	root := g.Add("counter")
	root.Arc("value", g.AddAtom("v", Int(v)))
	return g
}

func counterValue(g *Graph) int64 {
	return g.Path("value").Atom.I
}

// incTransform adds 1 to the counter and satisfies the grammar both ways.
func incTransform() *Transform {
	cg := counterGrammar()
	return &Transform{
		Name: "inc",
		In:   cg,
		Out:  cg,
		Doc:  "increment the counter value",
		Body: func(in *Graph, ip *Interp) (*Graph, error) {
			n := in.Path("value")
			n.SetAtom(Int(n.Atom.I + 1))
			return in, nil
		},
	}
}

func TestInvokeAppliesTransform(t *testing.T) {
	reg := NewRegistry("test")
	reg.Register(incTransform())
	ip := NewInterp(reg)
	in := counterGraph(41)
	out, err := ip.Invoke("inc", in)
	if err != nil {
		t.Fatal(err)
	}
	if counterValue(out) != 42 {
		t.Errorf("inc result = %d, want 42", counterValue(out))
	}
	// The input graph is untouched (the body received a clone).
	if counterValue(in) != 41 {
		t.Errorf("transform mutated its input: %d", counterValue(in))
	}
}

func TestInvokeUnknownTransform(t *testing.T) {
	ip := NewInterp(NewRegistry("empty"))
	_, err := ip.Invoke("nope", counterGraph(0))
	if !errors.Is(err, ErrUnknownTransform) {
		t.Errorf("want ErrUnknownTransform, got %v", err)
	}
}

func TestPreconditionEnforced(t *testing.T) {
	reg := NewRegistry("test")
	reg.Register(incTransform())
	ip := NewInterp(reg)
	bad := NewGraph("bad")
	bad.Add("no-value-arc")
	_, err := ip.Invoke("inc", bad)
	if !errors.Is(err, ErrPrecondition) {
		t.Errorf("want ErrPrecondition, got %v", err)
	}
}

func TestPostconditionEnforced(t *testing.T) {
	cg := counterGrammar()
	reg := NewRegistry("test")
	reg.Register(&Transform{
		Name: "break",
		In:   cg,
		Out:  cg,
		Body: func(in *Graph, ip *Interp) (*Graph, error) {
			in.Entry().RemoveArc("value") // violates output grammar
			return in, nil
		},
	})
	ip := NewInterp(reg)
	_, err := ip.Invoke("break", counterGraph(1))
	if !errors.Is(err, ErrPostcondition) {
		t.Errorf("want ErrPostcondition, got %v", err)
	}
	// With CheckPost disabled the same transform passes.
	ip2 := NewInterp(reg)
	ip2.CheckPost = false
	if _, err := ip2.Invoke("break", counterGraph(1)); err != nil {
		t.Errorf("CheckPost=false still failed: %v", err)
	}
}

func TestTransformsInvokeEachOther(t *testing.T) {
	cg := counterGrammar()
	reg := NewRegistry("test")
	reg.Register(incTransform())
	reg.Register(&Transform{
		Name: "inc-twice",
		In:   cg,
		Out:  cg,
		Body: func(in *Graph, ip *Interp) (*Graph, error) {
			once, err := ip.Invoke("inc", in)
			if err != nil {
				return nil, err
			}
			return ip.Invoke("inc", once)
		},
	})
	ip := NewInterp(reg)
	out, err := ip.Invoke("inc-twice", counterGraph(0))
	if err != nil {
		t.Fatal(err)
	}
	if counterValue(out) != 2 {
		t.Errorf("inc-twice = %d, want 2", counterValue(out))
	}
	calls := ip.Calls()
	if len(calls) != 3 {
		t.Fatalf("call records = %d, want 3", len(calls))
	}
	if calls[0].Name != "inc-twice" || calls[0].Depth != 0 {
		t.Errorf("first call = %+v", calls[0])
	}
	if calls[1].Name != "inc" || calls[1].Depth != 1 {
		t.Errorf("second call = %+v", calls[1])
	}
	tree := ip.CallTree()
	if !strings.Contains(tree, "inc-twice\n  inc\n  inc\n") {
		t.Errorf("CallTree = %q", tree)
	}
}

func TestRecursionDepthBounded(t *testing.T) {
	reg := NewRegistry("test")
	reg.Register(&Transform{
		Name: "loop",
		Body: func(in *Graph, ip *Interp) (*Graph, error) {
			return ip.Invoke("loop", in)
		},
	})
	ip := NewInterp(reg)
	ip.MaxDepth = 10
	_, err := ip.Invoke("loop", counterGraph(0))
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Errorf("unbounded recursion not caught: %v", err)
	}
}

func TestBodyErrorWrapped(t *testing.T) {
	reg := NewRegistry("test")
	boom := errors.New("boom")
	reg.Register(&Transform{
		Name: "fail",
		Body: func(in *Graph, ip *Interp) (*Graph, error) { return nil, boom },
	})
	ip := NewInterp(reg)
	_, err := ip.Invoke("fail", counterGraph(0))
	if !errors.Is(err, boom) {
		t.Errorf("body error not wrapped: %v", err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	reg := NewRegistry("r")
	reg.Register(&Transform{Name: "zeta"})
	reg.Register(&Transform{Name: "alpha"})
	names := reg.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
	if reg.Lookup("alpha") == nil || reg.Lookup("missing") != nil {
		t.Error("Lookup misbehaved")
	}
}

func ExampleInterp_Invoke() {
	reg := NewRegistry("demo")
	reg.Register(incTransform())
	ip := NewInterp(reg)
	out, _ := ip.Invoke("inc", counterGraph(9))
	fmt.Println(counterValue(out))
	// Output: 10
}
