// Package hgraph implements H-graph semantics, the formal specification
// method the FEM-2 design uses to define each layer of virtual machine.
//
// Following Pratt's H-graph semantics (ICASE/UVa report 83-2, cited as [7]
// in the paper):
//
//   - data objects are modeled as hierarchies of directed graphs
//     (H-graphs) in which the nodes represent abstract storage locations
//     and the arcs represent access paths;
//   - data types are modeled using formal "H-graph grammars", a type of
//     BNF grammar in which the "language" defined is a set of H-graphs
//     representing a class of data objects;
//   - operations are modeled as "H-graph transforms", functions defining
//     transformations on the H-graph models of data objects, which may
//     invoke each other in the usual manner of subprogram calling
//     hierarchies.
//
// The reproduction uses this package two ways: the spec.go file carries the
// formal definitions of the FEM-2 virtual machine levels (message formats,
// task states, window descriptors, model objects), and the runtime layers
// validate their live data structures against those grammars in tests.
package hgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a primitive value stored in a node: one of int64, float64,
// string, or bool.  An Atom distinguishes leaf storage locations from
// locations whose value is a nested graph.
type Atom struct {
	Kind AtomKind
	I    int64
	F    float64
	S    string
	B    bool
}

// AtomKind enumerates the primitive kinds.
type AtomKind int

// Primitive kinds of atoms.
const (
	AtomInt AtomKind = iota
	AtomFloat
	AtomString
	AtomBool
)

// String renders the atom as a literal.
func (a Atom) String() string {
	switch a.Kind {
	case AtomInt:
		return fmt.Sprintf("%d", a.I)
	case AtomFloat:
		return fmt.Sprintf("%g", a.F)
	case AtomString:
		return fmt.Sprintf("%q", a.S)
	case AtomBool:
		return fmt.Sprintf("%t", a.B)
	default:
		return fmt.Sprintf("atom(%d)", int(a.Kind))
	}
}

// Int returns an integer atom.
func Int(v int64) Atom { return Atom{Kind: AtomInt, I: v} }

// Float returns a floating point atom.
func Float(v float64) Atom { return Atom{Kind: AtomFloat, F: v} }

// Str returns a string atom.
func Str(v string) Atom { return Atom{Kind: AtomString, S: v} }

// Bool returns a boolean atom.
func Bool(v bool) Atom { return Atom{Kind: AtomBool, B: v} }

// Node is an abstract storage location.  Its value is either an Atom
// (leaf) or a nested *Graph (hierarchy), or empty.  Arcs to other nodes
// are labeled with selectors and represent access paths.
type Node struct {
	// Label is a diagnostic name; it has no semantic weight.
	Label string
	// Atom holds the leaf value when HasAtom is true.
	Atom    Atom
	HasAtom bool
	// Sub holds a nested graph when non-nil (the "hierarchy" in
	// H-graph).  A node may not have both an atom and a subgraph.
	Sub *Graph
	// arcs maps selector → target node.
	arcs map[string]*Node
}

// NewNode returns an empty node with the given diagnostic label.
func NewNode(label string) *Node { return &Node{Label: label} }

// NewAtomNode returns a leaf node holding the atom.
func NewAtomNode(label string, a Atom) *Node {
	return &Node{Label: label, Atom: a, HasAtom: true}
}

// SetAtom stores a leaf value in the node, clearing any subgraph.
func (n *Node) SetAtom(a Atom) {
	n.Atom, n.HasAtom, n.Sub = a, true, nil
}

// SetSub stores a nested graph in the node, clearing any atom.
func (n *Node) SetSub(g *Graph) {
	n.Sub, n.HasAtom = g, false
}

// Arc creates (or replaces) the access path named sel from n to target.
func (n *Node) Arc(sel string, target *Node) *Node {
	if n.arcs == nil {
		n.arcs = make(map[string]*Node)
	}
	n.arcs[sel] = target
	return n
}

// Follow returns the node reached by the access path sel, or nil.
func (n *Node) Follow(sel string) *Node {
	return n.arcs[sel]
}

// Selectors returns the sorted selectors of the arcs leaving n.
func (n *Node) Selectors() []string {
	out := make([]string, 0, len(n.arcs))
	for s := range n.arcs {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// RemoveArc deletes the access path named sel, reporting whether it
// existed.
func (n *Node) RemoveArc(sel string) bool {
	if _, ok := n.arcs[sel]; !ok {
		return false
	}
	delete(n.arcs, sel)
	return true
}

// Graph is a directed graph of nodes with one distinguished entry node.
// The entry plays the role of BNF's start symbol when a grammar describes
// the graph.
type Graph struct {
	// Name is a diagnostic label for the graph.
	Name  string
	entry *Node
	nodes []*Node
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// AddNode inserts a node into the graph and returns it.  The first node
// added becomes the entry unless SetEntry overrides it.
func (g *Graph) AddNode(n *Node) *Node {
	g.nodes = append(g.nodes, n)
	if g.entry == nil {
		g.entry = n
	}
	return n
}

// Add is shorthand for AddNode(NewNode(label)).
func (g *Graph) Add(label string) *Node { return g.AddNode(NewNode(label)) }

// AddAtom is shorthand for AddNode(NewAtomNode(label, a)).
func (g *Graph) AddAtom(label string, a Atom) *Node {
	return g.AddNode(NewAtomNode(label, a))
}

// SetEntry designates n as the entry node; n must already be in the graph.
func (g *Graph) SetEntry(n *Node) {
	for _, m := range g.nodes {
		if m == n {
			g.entry = n
			return
		}
	}
	panic(fmt.Sprintf("hgraph: SetEntry node %q not in graph %q", n.Label, g.Name))
}

// Entry returns the distinguished entry node (nil for an empty graph).
func (g *Graph) Entry() *Node { return g.entry }

// Nodes returns the graph's nodes in insertion order (shared storage).
func (g *Graph) Nodes() []*Node { return g.nodes }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Walk visits every node reachable from the entry (following arcs and
// descending into subgraphs), in deterministic order, calling visit once
// per node.  Cycles are handled.
func (g *Graph) Walk(visit func(depth int, sel string, n *Node)) {
	if g == nil || g.entry == nil {
		return
	}
	seen := map[*Node]bool{}
	var rec func(depth int, sel string, n *Node)
	rec = func(depth int, sel string, n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		visit(depth, sel, n)
		for _, s := range n.Selectors() {
			rec(depth+1, s, n.Follow(s))
		}
		if n.Sub != nil {
			rec(depth+1, "↓", n.Sub.entry)
		}
	}
	rec(0, "", g.entry)
}

// String renders the graph as an indented access-path listing, giving a
// readable form of the formal model.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q:\n", g.Name)
	g.Walk(func(depth int, sel string, n *Node) {
		b.WriteString(strings.Repeat("  ", depth+1))
		if sel != "" {
			fmt.Fprintf(&b, "%s -> ", sel)
		}
		b.WriteString(n.Label)
		if n.HasAtom {
			fmt.Fprintf(&b, " = %s", n.Atom)
		}
		if n.Sub != nil {
			fmt.Fprintf(&b, " [subgraph %q]", n.Sub.Name)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// Clone returns a deep copy of the graph: fresh nodes, arcs, and nested
// subgraphs.  Transforms operate on clones so formal pre-states survive
// for comparison.
func (g *Graph) Clone() *Graph {
	if g == nil {
		return nil
	}
	mapping := map[*Node]*Node{}
	out := NewGraph(g.Name)
	var cloneNode func(n *Node) *Node
	cloneNode = func(n *Node) *Node {
		if n == nil {
			return nil
		}
		if c, ok := mapping[n]; ok {
			return c
		}
		c := &Node{Label: n.Label, Atom: n.Atom, HasAtom: n.HasAtom}
		mapping[n] = c
		if n.Sub != nil {
			c.Sub = n.Sub.Clone()
		}
		for _, s := range n.Selectors() {
			c.Arc(s, cloneNode(n.Follow(s)))
		}
		return c
	}
	for _, n := range g.nodes {
		out.nodes = append(out.nodes, cloneNode(n))
	}
	if g.entry != nil {
		out.entry = mapping[g.entry]
	}
	return out
}

// Path follows a dotted access path ("header.type") from the entry node
// and returns the node reached, or nil if any step is missing.
func (g *Graph) Path(path string) *Node {
	n := g.entry
	if path == "" {
		return n
	}
	for _, sel := range strings.Split(path, ".") {
		if n == nil {
			return nil
		}
		n = n.Follow(sel)
	}
	return n
}
