package hgraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrPrecondition is returned when a transform's input graph violates its
// input grammar.
var ErrPrecondition = errors.New("hgraph: transform precondition violated")

// ErrPostcondition is returned when a transform's output graph violates
// its output grammar — i.e. the implementation does not meet its formal
// specification.
var ErrPostcondition = errors.New("hgraph: transform postcondition violated")

// ErrUnknownTransform is returned when invoking a name with no definition.
var ErrUnknownTransform = errors.New("hgraph: unknown transform")

// TransformFunc is the body of an H-graph transform.  It receives a deep
// clone of the input graph (so the formal pre-state is preserved) and the
// enclosing interpreter, through which it may invoke other transforms in
// the usual manner of subprogram calling hierarchies.
type TransformFunc func(in *Graph, ip *Interp) (*Graph, error)

// Transform is a named, formally specified operation on H-graphs: a
// function from graphs in the language of In to graphs in the language of
// Out.
type Transform struct {
	// Name identifies the transform in the registry.
	Name string
	// In, when non-nil, is the grammar the input graph must satisfy
	// (the formal precondition).
	In *Grammar
	// Out, when non-nil, is the grammar the result must satisfy (the
	// formal postcondition).
	Out *Grammar
	// Body performs the transformation.
	Body TransformFunc
	// Doc describes the operation in the formal model.
	Doc string
}

// Registry holds the transforms of one virtual machine's formal
// definition.
type Registry struct {
	name string
	m    map[string]*Transform
}

// NewRegistry returns an empty registry named for a VM level.
func NewRegistry(name string) *Registry {
	return &Registry{name: name, m: map[string]*Transform{}}
}

// Register adds a transform, replacing any previous definition of the same
// name.
func (r *Registry) Register(t *Transform) *Registry {
	r.m[t.Name] = t
	return r
}

// Lookup returns the named transform, or nil.
func (r *Registry) Lookup(name string) *Transform { return r.m[name] }

// Names returns the sorted transform names.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CallRecord is one entry in an interpreter's call trace.
type CallRecord struct {
	Depth int
	Name  string
}

// Interp applies transforms, enforcing their grammar pre/postconditions
// and recording the subprogram calling hierarchy.  It models the "overall
// flow of control in a model of a virtual machine".
type Interp struct {
	reg *Registry
	// MaxDepth bounds transform recursion; 0 means the default of 256.
	MaxDepth int
	depth    int
	calls    []CallRecord
	// CheckPost disables postcondition checking when false is useful
	// only for measuring checking overhead; defaults to true.
	CheckPost bool
}

// NewInterp returns an interpreter over the registry.
func NewInterp(reg *Registry) *Interp {
	return &Interp{reg: reg, CheckPost: true}
}

// Calls returns the recorded call hierarchy in invocation order.
func (ip *Interp) Calls() []CallRecord {
	out := make([]CallRecord, len(ip.calls))
	copy(out, ip.calls)
	return out
}

// CallTree renders the recorded hierarchy with indentation.
func (ip *Interp) CallTree() string {
	var b strings.Builder
	for _, c := range ip.calls {
		b.WriteString(strings.Repeat("  ", c.Depth))
		b.WriteString(c.Name)
		b.WriteByte('\n')
	}
	return b.String()
}

// Invoke applies the named transform to graph in, checking the formal
// precondition, running the body on a clone, and checking the formal
// postcondition on the result.
func (ip *Interp) Invoke(name string, in *Graph) (*Graph, error) {
	t := ip.reg.Lookup(name)
	if t == nil {
		return nil, fmt.Errorf("%w: %q in registry %q", ErrUnknownTransform, name, ip.reg.name)
	}
	maxDepth := ip.MaxDepth
	if maxDepth == 0 {
		maxDepth = 256
	}
	if ip.depth >= maxDepth {
		return nil, fmt.Errorf("hgraph: transform recursion exceeds %d at %q", maxDepth, name)
	}
	ip.calls = append(ip.calls, CallRecord{Depth: ip.depth, Name: name})

	if t.In != nil {
		if errs := t.In.Validate(in); len(errs) > 0 {
			return nil, fmt.Errorf("%w: %q: %v", ErrPrecondition, name, errs[0])
		}
	}
	ip.depth++
	out, err := t.Body(in.Clone(), ip)
	ip.depth--
	if err != nil {
		return nil, fmt.Errorf("hgraph: transform %q: %w", name, err)
	}
	if t.Out != nil && ip.CheckPost {
		if errs := t.Out.Validate(out); len(errs) > 0 {
			return nil, fmt.Errorf("%w: %q: %v", ErrPostcondition, name, errs[0])
		}
	}
	return out, nil
}
