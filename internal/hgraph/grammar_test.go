package hgraph

import (
	"fmt"
	"strings"
	"testing"
)

// buildInitiateMessage constructs a well-formed H-graph model of an SPVM
// "initiate" message.
func buildInitiateMessage(reps int64) *Graph {
	g := NewGraph("msg")
	root := g.Add("message")
	root.Arc("type", g.AddAtom("t", Str("initiate")))
	root.Arc("task-type", g.AddAtom("tt", Str("cg-worker")))
	root.Arc("replications", g.AddAtom("k", Int(reps)))
	root.Arc("parent", g.AddAtom("p", Int(0)))
	params := g.Add("params")
	params.Arc("0", g.AddAtom("p0", Int(64)))
	params.Arc("1", g.AddAtom("p1", Float(1e-8)))
	root.Arc("params", params)
	return g
}

func buildPauseMessage() *Graph {
	g := NewGraph("msg")
	root := g.Add("message")
	root.Arc("type", g.AddAtom("t", Str("pause")))
	root.Arc("task", g.AddAtom("id", Int(3)))
	root.Arc("parent", g.AddAtom("p", Int(1)))
	return g
}

func TestSPVMGrammarWellFormed(t *testing.T) {
	if errs := SPVMMessageGrammar().WellFormed(); len(errs) > 0 {
		t.Fatalf("SPVM grammar ill-formed: %v", errs)
	}
}

func TestAllLevelGrammarsWellFormed(t *testing.T) {
	for name, g := range AllLevelGrammars() {
		if errs := g.WellFormed(); len(errs) > 0 {
			t.Errorf("grammar %q ill-formed: %v", name, errs)
		}
	}
}

func TestValidInitiateMessageAccepted(t *testing.T) {
	g := SPVMMessageGrammar()
	if errs := g.Validate(buildInitiateMessage(8)); len(errs) > 0 {
		t.Errorf("valid initiate rejected: %v", errs)
	}
}

func TestValidPauseMessageAccepted(t *testing.T) {
	g := SPVMMessageGrammar()
	if errs := g.Validate(buildPauseMessage()); len(errs) > 0 {
		t.Errorf("valid pause rejected: %v", errs)
	}
}

func TestAllSevenMessageTypesHaveProductions(t *testing.T) {
	g := SPVMMessageGrammar()
	for _, name := range []string{"initiate", "pause", "resume", "terminate",
		"remote-call", "remote-return", "load-code"} {
		if g.Production(name) == nil {
			t.Errorf("missing production for paper message type %q", name)
		}
	}
}

func TestMissingFieldRejected(t *testing.T) {
	m := buildInitiateMessage(8)
	m.Entry().RemoveArc("replications")
	if errs := SPVMMessageGrammar().Validate(m); len(errs) == 0 {
		t.Error("initiate without replications accepted")
	}
}

func TestWrongAtomKindRejected(t *testing.T) {
	m := buildInitiateMessage(8)
	// replications must be INT, make it a string
	m.Entry().Arc("replications", m.AddAtom("bad", Str("eight")))
	if errs := SPVMMessageGrammar().Validate(m); len(errs) == 0 {
		t.Error("initiate with string replications accepted")
	}
}

func TestUnknownMessageTypeRejected(t *testing.T) {
	m := buildPauseMessage()
	m.Entry().Arc("type", m.AddAtom("t", Str("abort"))) // not one of the 7
	errs := SPVMMessageGrammar().Validate(m)
	if len(errs) == 0 {
		t.Error("unknown message type accepted")
	}
}

func TestClosedStructRejectsExtraArc(t *testing.T) {
	m := buildPauseMessage()
	m.Entry().Arc("extra", m.AddAtom("x", Int(1)))
	if errs := SPVMMessageGrammar().Validate(m); len(errs) == 0 {
		t.Error("closed struct accepted extra arc")
	}
}

func TestListTypeGapRejected(t *testing.T) {
	m := buildInitiateMessage(1)
	params := m.Entry().Follow("params")
	params.RemoveArc("0") // leaves index 1 without index 0 — a gap
	if errs := SPVMMessageGrammar().Validate(m); len(errs) == 0 {
		t.Error("gapped list accepted")
	}
}

func TestListMinLen(t *testing.T) {
	g := NewGrammar("l", "s")
	g.Define("s", ListType{Elem: AtomType{AtomInt}, MinLen: 2})
	gr := NewGraph("x")
	root := gr.Add("root")
	root.Arc("0", gr.AddAtom("a", Int(1)))
	if errs := g.Validate(gr); len(errs) == 0 {
		t.Error("list below MinLen accepted")
	}
	root.Arc("1", gr.AddAtom("b", Int(2)))
	if errs := g.Validate(gr); len(errs) > 0 {
		t.Errorf("list at MinLen rejected: %v", errs)
	}
}

func TestWindowGrammarAcceptsAllKinds(t *testing.T) {
	g := WindowGrammar()
	for _, kind := range []string{"row", "col", "block"} {
		gr := NewGraph("w")
		root := gr.Add("window")
		root.Arc("array", gr.AddAtom("a", Str("K")))
		root.Arc("kind", gr.AddAtom("k", Str(kind)))
		root.Arc("owner", gr.AddAtom("o", Int(2)))
		root.Arc("row0", gr.AddAtom("r0", Int(0)))
		root.Arc("rows", gr.AddAtom("r", Int(4)))
		root.Arc("col0", gr.AddAtom("c0", Int(0)))
		root.Arc("cols", gr.AddAtom("c", Int(4)))
		if errs := g.Validate(gr); len(errs) > 0 {
			t.Errorf("window kind %q rejected: %v", kind, errs)
		}
	}
}

func TestWindowGrammarRejectsBadKind(t *testing.T) {
	g := WindowGrammar()
	gr := NewGraph("w")
	root := gr.Add("window")
	root.Arc("array", gr.AddAtom("a", Str("K")))
	root.Arc("kind", gr.AddAtom("k", Str("diagonal")))
	root.Arc("owner", gr.AddAtom("o", Int(2)))
	root.Arc("row0", gr.AddAtom("r0", Int(0)))
	root.Arc("rows", gr.AddAtom("r", Int(4)))
	root.Arc("col0", gr.AddAtom("c0", Int(0)))
	root.Arc("cols", gr.AddAtom("c", Int(4)))
	if errs := g.Validate(gr); len(errs) == 0 {
		t.Error("window kind \"diagonal\" accepted")
	}
}

func TestTaskStateGrammar(t *testing.T) {
	g := TaskStateGrammar()
	mk := func(state string) *Graph {
		gr := NewGraph("task")
		root := gr.Add("task")
		root.Arc("id", gr.AddAtom("id", Int(7)))
		root.Arc("type", gr.AddAtom("ty", Str("worker")))
		root.Arc("parent", gr.AddAtom("p", Int(0)))
		root.Arc("state", gr.AddAtom("s", Str(state)))
		return gr
	}
	for _, s := range []string{"ready", "running", "paused", "terminated"} {
		if errs := g.Validate(mk(s)); len(errs) > 0 {
			t.Errorf("task state %q rejected: %v", s, errs)
		}
	}
	if errs := g.Validate(mk("zombie")); len(errs) == 0 {
		t.Error("task state \"zombie\" accepted")
	}
}

func TestSubgraphTypeRequiresNestedGraph(t *testing.T) {
	g := TaskStateGrammar()
	gr := NewGraph("task")
	root := gr.Add("task")
	root.Arc("id", gr.AddAtom("id", Int(7)))
	root.Arc("type", gr.AddAtom("ty", Str("worker")))
	root.Arc("parent", gr.AddAtom("p", Int(0)))
	root.Arc("state", gr.AddAtom("s", Str("ready")))
	// locals present but not a subgraph:
	root.Arc("locals", gr.AddAtom("l", Int(0)))
	if errs := g.Validate(gr); len(errs) == 0 {
		t.Error("locals without nested graph accepted")
	}
	// Now make it a proper subgraph.
	locals := NewGraph("locals")
	locals.Add("objects")
	ln := NewNode("locals")
	ln.SetSub(locals)
	gr.AddNode(ln)
	root.Arc("locals", ln)
	if errs := g.Validate(gr); len(errs) > 0 {
		t.Errorf("proper locals rejected: %v", errs)
	}
}

func TestStructureModelGrammar(t *testing.T) {
	g := StructureModelGrammar()
	gr := NewGraph("model")
	root := gr.Add("model")
	root.Arc("name", gr.AddAtom("n", Str("wing-panel")))
	grid := NewGraph("grid")
	groot := grid.Add("grid")
	groot.Arc("nodes", grid.AddAtom("n", Int(25)))
	groot.Arc("dof-per-node", grid.AddAtom("d", Int(2)))
	gn := NewNode("grid")
	gn.SetSub(grid)
	gr.AddNode(gn)
	root.Arc("grid", gn)

	elems := gr.Add("elements")
	e0 := gr.Add("e0")
	e0.Arc("kind", gr.AddAtom("k", Str("cst")))
	ns := gr.Add("ns")
	ns.Arc("0", gr.AddAtom("n0", Int(0)))
	ns.Arc("1", gr.AddAtom("n1", Int(1)))
	ns.Arc("2", gr.AddAtom("n2", Int(5)))
	e0.Arc("nodes", ns)
	elems.Arc("0", e0)
	root.Arc("elements", elems)

	loads := gr.Add("loads")
	l0 := gr.Add("l0")
	l0.Arc("name", gr.AddAtom("ln", Str("tip-load")))
	entries := gr.Add("entries")
	ent := gr.Add("ent")
	ent.Arc("dof", gr.AddAtom("d", Int(48)))
	ent.Arc("value", gr.AddAtom("v", Float(-1000)))
	entries.Arc("0", ent)
	l0.Arc("entries", entries)
	loads.Arc("0", l0)
	root.Arc("loads", loads)

	if errs := g.Validate(gr); len(errs) > 0 {
		t.Errorf("valid model rejected: %v", errs)
	}
	// Element with only 1 node violates MinLen 2.
	ns.RemoveArc("1")
	ns.RemoveArc("2")
	if errs := g.Validate(gr); len(errs) == 0 {
		t.Error("element with 1 node accepted")
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	g := WindowGrammar()
	if errs := g.Validate(nil); len(errs) == 0 {
		t.Error("nil graph accepted")
	}
	if errs := g.Validate(NewGraph("empty")); len(errs) == 0 {
		t.Error("empty graph accepted")
	}
}

func TestUndefinedProductionReported(t *testing.T) {
	g := NewGrammar("g", "start")
	g.Define("start", Ref("nowhere"))
	if errs := g.WellFormed(); len(errs) == 0 {
		t.Error("dangling reference not reported by WellFormed")
	}
	gr := NewGraph("x")
	gr.Add("root")
	if errs := g.Validate(gr); len(errs) == 0 {
		t.Error("validation against dangling reference did not fail")
	}
}

func TestWellFormedMissingStart(t *testing.T) {
	g := NewGrammar("g", "start")
	if errs := g.WellFormed(); len(errs) == 0 {
		t.Error("missing start production not reported")
	}
}

func TestRecursiveGrammarAcceptsCyclicGraph(t *testing.T) {
	// <list-node> ::= {next?: <list-node>, val: INT} — a circular linked
	// list should validate without infinite recursion.
	g := NewGrammar("rec", "list-node")
	g.Define("list-node", StructType{Fields: []Field{
		{Sel: "val", Type: AtomType{AtomInt}},
		{Sel: "next", Type: Ref("list-node"), Optional: true},
	}})
	gr := NewGraph("ring")
	a := gr.Add("a")
	b := gr.Add("b")
	a.Arc("val", gr.AddAtom("av", Int(1)))
	b.Arc("val", gr.AddAtom("bv", Int(2)))
	a.Arc("next", b)
	b.Arc("next", a)
	if errs := g.Validate(gr); len(errs) > 0 {
		t.Errorf("cyclic list rejected: %v", errs)
	}
}

func TestEmptyUnionMatchesNothing(t *testing.T) {
	g := NewGrammar("g", "s")
	g.Define("s", UnionType{})
	gr := NewGraph("x")
	gr.Add("root")
	if errs := g.Validate(gr); len(errs) == 0 {
		t.Error("empty union accepted a node")
	}
}

func TestGrammarStringListsProductions(t *testing.T) {
	s := SPVMMessageGrammar().String()
	for _, want := range []string{"<message>", "<initiate>", "<load-code>", "::="} {
		if !strings.Contains(s, want) {
			t.Errorf("grammar String missing %q", want)
		}
	}
}

func TestTypeExprStrings(t *testing.T) {
	cases := []struct {
		e    TypeExpr
		want string
	}{
		{AtomType{AtomInt}, "INT"},
		{AtomType{AtomFloat}, "FLOAT"},
		{AtomType{AtomString}, "STRING"},
		{AtomType{AtomBool}, "BOOL"},
		{LitString{"x"}, `"x"`},
		{Ref("foo"), "<foo>"},
		{AnyType{}, "ANY"},
		{ListType{Elem: AtomType{AtomInt}}, "LIST(INT)"},
		{SubgraphType{"g"}, "GRAPH<g>"},
		{UnionType{Alts: []TypeExpr{LitString{"a"}, LitString{"b"}}}, `"a" | "b"`},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	st := StructType{Fields: []Field{{Sel: "a", Type: AtomType{AtomInt}}, {Sel: "b", Type: AnyType{}, Optional: true}}, Closed: true}
	if got := st.String(); got != "{a: INT, b?: ANY}" {
		t.Errorf("StructType.String() = %q", got)
	}
	open := StructType{Fields: []Field{{Sel: "a", Type: AtomType{AtomInt}}}}
	if got := open.String(); got != "{a: INT, ...}" {
		t.Errorf("open StructType.String() = %q", got)
	}
}

func TestValidateNodeDirectly(t *testing.T) {
	g := SPVMMessageGrammar()
	m := buildPauseMessage()
	if errs := g.ValidateNode(m.Entry(), "pause"); len(errs) > 0 {
		t.Errorf("ValidateNode pause failed: %v", errs)
	}
	if errs := g.ValidateNode(m.Entry(), "resume"); len(errs) == 0 {
		t.Error("pause node validated as resume")
	}
}

func TestValidateManyMessages(t *testing.T) {
	// Throughput-style correctness check over many instances — the same
	// loop E11 benchmarks.
	g := SPVMMessageGrammar()
	for i := 0; i < 200; i++ {
		m := buildInitiateMessage(int64(i))
		if errs := g.Validate(m); len(errs) > 0 {
			t.Fatalf("message %d rejected: %v", i, errs)
		}
	}
}

func ExampleGrammar_Validate() {
	g := WindowGrammar()
	gr := NewGraph("w")
	root := gr.Add("window")
	root.Arc("array", gr.AddAtom("a", Str("stiffness")))
	root.Arc("kind", gr.AddAtom("k", Str("row")))
	root.Arc("owner", gr.AddAtom("o", Int(3)))
	root.Arc("row0", gr.AddAtom("r0", Int(8)))
	root.Arc("rows", gr.AddAtom("r", Int(1)))
	root.Arc("col0", gr.AddAtom("c0", Int(0)))
	root.Arc("cols", gr.AddAtom("c", Int(64)))
	fmt.Println(len(g.Validate(gr)))
	// Output: 0
}
