package hgraph

import (
	"fmt"
	"strings"
)

// ToDOT renders the graph in Graphviz dot syntax, nested subgraphs as
// clusters — the visual form of the formal H-graph models, handy when
// reviewing a layer's specification.
func ToDOT(g *Graph) string {
	var b strings.Builder
	b.WriteString("digraph hgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	ids := map[*Node]string{}
	next := 0
	var emit func(g *Graph, indent string)
	name := func(n *Node) string {
		if id, ok := ids[n]; ok {
			return id
		}
		id := fmt.Sprintf("n%d", next)
		next++
		ids[n] = id
		return id
	}
	var emitNode func(n *Node, indent string)
	emitNode = func(n *Node, indent string) {
		id := name(n)
		label := n.Label
		if n.HasAtom {
			label += "\\n" + strings.ReplaceAll(n.Atom.String(), `"`, `\"`)
		}
		fmt.Fprintf(&b, "%s%s [label=\"%s\"];\n", indent, id, label)
		if n.Sub != nil {
			fmt.Fprintf(&b, "%ssubgraph cluster_%s {\n%s  label=\"%s\";\n", indent, id, indent, n.Sub.Name)
			emit(n.Sub, indent+"  ")
			fmt.Fprintf(&b, "%s}\n", indent)
			if n.Sub.Entry() != nil {
				fmt.Fprintf(&b, "%s%s -> %s [style=dashed, label=\"↓\"];\n", indent, id, name(n.Sub.Entry()))
			}
		}
	}
	emit = func(g *Graph, indent string) {
		for _, n := range g.Nodes() {
			emitNode(n, indent)
		}
		for _, n := range g.Nodes() {
			for _, sel := range n.Selectors() {
				fmt.Fprintf(&b, "%s%s -> %s [label=\"%s\"];\n", indent, name(n), name(n.Follow(sel)), sel)
			}
		}
	}
	if g != nil {
		emit(g, "  ")
	}
	b.WriteString("}\n")
	return b.String()
}
