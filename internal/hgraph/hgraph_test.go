package hgraph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAtomConstructorsAndString(t *testing.T) {
	cases := []struct {
		a    Atom
		want string
	}{
		{Int(42), "42"},
		{Float(1.5), "1.5"},
		{Str("hi"), `"hi"`},
		{Bool(true), "true"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("Atom.String() = %q, want %q", got, c.want)
		}
	}
}

func TestNodeArcFollow(t *testing.T) {
	a := NewNode("a")
	b := NewNode("b")
	a.Arc("next", b)
	if a.Follow("next") != b {
		t.Error("Follow did not return target")
	}
	if a.Follow("missing") != nil {
		t.Error("Follow of missing selector should be nil")
	}
	if got := a.Selectors(); len(got) != 1 || got[0] != "next" {
		t.Errorf("Selectors = %v", got)
	}
	if !a.RemoveArc("next") {
		t.Error("RemoveArc returned false for existing arc")
	}
	if a.RemoveArc("next") {
		t.Error("RemoveArc returned true for missing arc")
	}
}

func TestNodeAtomVsSubExclusive(t *testing.T) {
	n := NewNode("n")
	n.SetAtom(Int(1))
	if !n.HasAtom || n.Sub != nil {
		t.Error("SetAtom state wrong")
	}
	n.SetSub(NewGraph("g"))
	if n.HasAtom || n.Sub == nil {
		t.Error("SetSub must clear atom")
	}
	n.SetAtom(Int(2))
	if n.Sub != nil {
		t.Error("SetAtom must clear subgraph")
	}
}

func TestGraphEntryDefaultsToFirstNode(t *testing.T) {
	g := NewGraph("g")
	if g.Entry() != nil {
		t.Error("empty graph entry should be nil")
	}
	a := g.Add("a")
	g.Add("b")
	if g.Entry() != a {
		t.Error("entry should default to first node")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
}

func TestSetEntryRequiresMembership(t *testing.T) {
	g := NewGraph("g")
	g.Add("a")
	outsider := NewNode("x")
	defer func() {
		if recover() == nil {
			t.Error("SetEntry with foreign node did not panic")
		}
	}()
	g.SetEntry(outsider)
}

func TestWalkVisitsReachableOnceIncludingCycles(t *testing.T) {
	g := NewGraph("g")
	a := g.Add("a")
	b := g.Add("b")
	a.Arc("fwd", b)
	b.Arc("back", a) // cycle
	count := map[string]int{}
	g.Walk(func(depth int, sel string, n *Node) { count[n.Label]++ })
	if count["a"] != 1 || count["b"] != 1 {
		t.Errorf("Walk visit counts = %v", count)
	}
}

func TestWalkDescendsIntoSubgraphs(t *testing.T) {
	inner := NewGraph("inner")
	inner.Add("deep")
	g := NewGraph("outer")
	root := g.Add("root")
	root.SetSub(inner)
	var labels []string
	g.Walk(func(depth int, sel string, n *Node) { labels = append(labels, n.Label) })
	if len(labels) != 2 || labels[0] != "root" || labels[1] != "deep" {
		t.Errorf("Walk labels = %v", labels)
	}
}

func TestPathNavigation(t *testing.T) {
	g := NewGraph("g")
	root := g.Add("root")
	h := NewNode("header")
	ty := NewAtomNode("type", Str("initiate"))
	root.Arc("header", h)
	h.Arc("type", ty)
	if got := g.Path("header.type"); got != ty {
		t.Error("Path failed to reach node")
	}
	if g.Path("header.missing") != nil {
		t.Error("Path of missing selector should be nil")
	}
	if g.Path("") != root {
		t.Error("empty Path should return entry")
	}
	if g.Path("a.b.c.d") != nil {
		t.Error("deep missing path should be nil")
	}
}

func TestCloneIsDeepAndPreservesStructure(t *testing.T) {
	g := NewGraph("g")
	a := g.Add("a")
	b := g.AddAtom("b", Int(5))
	a.Arc("x", b)
	b.Arc("loop", a)
	inner := NewGraph("inner")
	inner.AddAtom("leaf", Str("v"))
	a.SetSub(inner)

	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), g.Len())
	}
	ca := c.Entry()
	if ca == a {
		t.Fatal("clone shares nodes")
	}
	cb := ca.Follow("x")
	if cb == nil || !cb.HasAtom || cb.Atom.I != 5 {
		t.Fatal("clone lost arc or atom")
	}
	if cb.Follow("loop") != ca {
		t.Error("clone broke cycle identity")
	}
	if ca.Sub == nil || ca.Sub == inner {
		t.Error("clone must deep-copy subgraphs")
	}
	// Mutating the clone must not affect the original.
	cb.SetAtom(Int(99))
	if b.Atom.I != 5 {
		t.Error("clone shares atom storage")
	}
}

func TestCloneNil(t *testing.T) {
	var g *Graph
	if g.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestGraphStringRendersAtomsAndSubgraphs(t *testing.T) {
	g := NewGraph("demo")
	root := g.Add("root")
	root.Arc("v", g.AddAtom("val", Float(2.5)))
	inner := NewGraph("inner")
	inner.Add("i")
	root.SetSub(inner)
	s := g.String()
	for _, want := range []string{"demo", "root", "val", "2.5", "inner"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

// Property: Clone is an isomorphism — walking original and clone yields
// the same (depth, selector, label, atom) sequence.
func TestQuickCloneIsomorphic(t *testing.T) {
	type step struct {
		Depth int
		Sel   string
		Label string
		Atom  string
	}
	record := func(g *Graph) []step {
		var out []step
		g.Walk(func(depth int, sel string, n *Node) {
			a := ""
			if n.HasAtom {
				a = n.Atom.String()
			}
			out = append(out, step{depth, sel, n.Label, a})
		})
		return out
	}
	f := func(labels []string, vals []int64) bool {
		g := NewGraph("q")
		var nodes []*Node
		for i, l := range labels {
			if i < len(vals) {
				nodes = append(nodes, g.AddAtom(l, Int(vals[i])))
			} else {
				nodes = append(nodes, g.Add(l))
			}
		}
		// Chain plus a back-arc to make cycles.
		for i := 1; i < len(nodes); i++ {
			nodes[i-1].Arc("n", nodes[i])
		}
		if len(nodes) > 2 {
			nodes[len(nodes)-1].Arc("back", nodes[0])
		}
		c := g.Clone()
		a, b := record(g), record(c)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
