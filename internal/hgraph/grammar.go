package hgraph

import (
	"fmt"
	"sort"
	"strings"
)

// TypeExpr is one alternative on the right-hand side of an H-graph grammar
// production.  A TypeExpr constrains the shape of a node: its atom kind,
// its outgoing arcs, its nested subgraph, or a choice among alternatives.
// This plays the role BNF right-hand sides play for strings — the
// "language" a grammar defines is a set of H-graphs.
type TypeExpr interface {
	// check validates node n against the expression within grammar g,
	// appending any violations to errs.  seen guards against cycles of
	// (node, production) pairs.
	check(g *Grammar, n *Node, path string, seen map[memoKey]bool, errs *[]error)
	// String renders the expression in grammar notation.
	String() string
}

type memoKey struct {
	n    *Node
	prod string
}

// AtomType requires the node to hold an atom of the given kind.
type AtomType struct{ Kind AtomKind }

// String renders the atom type name.
func (t AtomType) String() string {
	switch t.Kind {
	case AtomInt:
		return "INT"
	case AtomFloat:
		return "FLOAT"
	case AtomString:
		return "STRING"
	case AtomBool:
		return "BOOL"
	default:
		return fmt.Sprintf("ATOM(%d)", int(t.Kind))
	}
}

func (t AtomType) check(g *Grammar, n *Node, path string, seen map[memoKey]bool, errs *[]error) {
	if !n.HasAtom {
		*errs = append(*errs, fmt.Errorf("%s: expected %s atom, node %q has none", path, t, n.Label))
		return
	}
	if n.Atom.Kind != t.Kind {
		*errs = append(*errs, fmt.Errorf("%s: expected %s, node %q holds %s", path, t, n.Label, n.Atom))
	}
}

// LitString requires the node to hold exactly the given string atom; it is
// how grammars pin discriminator fields like a message's type tag.
type LitString struct{ Value string }

// String renders the literal.
func (t LitString) String() string { return fmt.Sprintf("%q", t.Value) }

func (t LitString) check(g *Grammar, n *Node, path string, seen map[memoKey]bool, errs *[]error) {
	if !n.HasAtom || n.Atom.Kind != AtomString {
		*errs = append(*errs, fmt.Errorf("%s: expected literal %q, node %q is not a string atom", path, t.Value, n.Label))
		return
	}
	if n.Atom.S != t.Value {
		*errs = append(*errs, fmt.Errorf("%s: expected literal %q, got %q", path, t.Value, n.Atom.S))
	}
}

// Field describes one required or optional arc of a StructType.
type Field struct {
	Sel      string
	Type     TypeExpr
	Optional bool
}

// StructType requires the node to have arcs for each listed field (unless
// optional), each target conforming to the field's type.  When Closed is
// true, arcs with selectors not listed are violations.
type StructType struct {
	Fields []Field
	Closed bool
}

// String renders the struct in record notation.
func (t StructType) String() string {
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		opt := ""
		if f.Optional {
			opt = "?"
		}
		parts[i] = fmt.Sprintf("%s%s: %s", f.Sel, opt, f.Type)
	}
	open := ""
	if !t.Closed {
		open = ", ..."
	}
	return "{" + strings.Join(parts, ", ") + open + "}"
}

func (t StructType) check(g *Grammar, n *Node, path string, seen map[memoKey]bool, errs *[]error) {
	listed := map[string]bool{}
	for _, f := range t.Fields {
		listed[f.Sel] = true
		target := n.Follow(f.Sel)
		if target == nil {
			if !f.Optional {
				*errs = append(*errs, fmt.Errorf("%s: missing required arc %q on node %q", path, f.Sel, n.Label))
			}
			continue
		}
		f.Type.check(g, target, path+"."+f.Sel, seen, errs)
	}
	if t.Closed {
		for _, s := range n.Selectors() {
			if !listed[s] {
				*errs = append(*errs, fmt.Errorf("%s: unexpected arc %q on node %q (closed struct)", path, s, n.Label))
			}
		}
	}
}

// ListType requires the node to carry arcs "0", "1", ..., "n-1" (a dense
// index sequence) each conforming to Elem.  Grammars use it for message
// parameter lists and element connectivity.
type ListType struct {
	Elem TypeExpr
	// MinLen is the minimum number of elements.
	MinLen int
}

// String renders the list type.
func (t ListType) String() string { return fmt.Sprintf("LIST(%s)", t.Elem) }

func (t ListType) check(g *Grammar, n *Node, path string, seen map[memoKey]bool, errs *[]error) {
	count := 0
	for {
		target := n.Follow(fmt.Sprintf("%d", count))
		if target == nil {
			break
		}
		t.Elem.check(g, target, fmt.Sprintf("%s[%d]", path, count), seen, errs)
		count++
	}
	if count < t.MinLen {
		*errs = append(*errs, fmt.Errorf("%s: list has %d elements, minimum %d", path, count, t.MinLen))
	}
	// Every arc must be a dense index.
	for _, s := range n.Selectors() {
		var idx int
		if _, err := fmt.Sscanf(s, "%d", &idx); err != nil || idx < 0 || idx >= count {
			*errs = append(*errs, fmt.Errorf("%s: non-index or gapped arc %q in list node %q", path, s, n.Label))
		}
	}
}

// SubgraphType requires the node's value to be a nested graph whose entry
// conforms to the named production — the "hierarchy" dimension of H-graphs.
type SubgraphType struct{ Prod string }

// String renders the subgraph reference.
func (t SubgraphType) String() string { return fmt.Sprintf("GRAPH<%s>", t.Prod) }

func (t SubgraphType) check(g *Grammar, n *Node, path string, seen map[memoKey]bool, errs *[]error) {
	if n.Sub == nil {
		*errs = append(*errs, fmt.Errorf("%s: expected nested graph on node %q", path, n.Label))
		return
	}
	if n.Sub.Entry() == nil {
		*errs = append(*errs, fmt.Errorf("%s: nested graph %q has no entry node", path, n.Sub.Name))
		return
	}
	Ref(t.Prod).check(g, n.Sub.Entry(), path+"↓", seen, errs)
}

// UnionType accepts a node conforming to any one alternative.
type UnionType struct{ Alts []TypeExpr }

// String renders the union with BNF-style bars.
func (t UnionType) String() string {
	parts := make([]string, len(t.Alts))
	for i, a := range t.Alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, " | ")
}

func (t UnionType) check(g *Grammar, n *Node, path string, seen map[memoKey]bool, errs *[]error) {
	var best []error
	for _, alt := range t.Alts {
		var sub []error
		// Each alternative gets a fresh memo scope so failures in one
		// don't poison another.
		alt.check(g, n, path, map[memoKey]bool{}, &sub)
		if len(sub) == 0 {
			return
		}
		if best == nil || len(sub) < len(best) {
			best = sub
		}
	}
	if len(t.Alts) == 0 {
		*errs = append(*errs, fmt.Errorf("%s: empty union matches nothing", path))
		return
	}
	*errs = append(*errs, fmt.Errorf("%s: no union alternative matched (closest: %v)", path, best[0]))
}

// RefType refers to another production by name, giving grammars the
// recursive power of BNF.
type RefType struct{ Prod string }

// Ref returns a reference to the named production.
func Ref(name string) RefType { return RefType{Prod: name} }

// String renders the nonterminal in angle brackets.
func (t RefType) String() string { return "<" + t.Prod + ">" }

func (t RefType) check(g *Grammar, n *Node, path string, seen map[memoKey]bool, errs *[]error) {
	rhs, ok := g.prods[t.Prod]
	if !ok {
		*errs = append(*errs, fmt.Errorf("%s: grammar %q has no production <%s>", path, g.Name, t.Prod))
		return
	}
	key := memoKey{n: n, prod: t.Prod}
	if seen[key] {
		return // already being checked on this path: cyclic structure accepted
	}
	seen[key] = true
	rhs.check(g, n, path, seen, errs)
}

// AnyType accepts every node; used where the grammar leaves a component
// unconstrained.
type AnyType struct{}

// String renders the wildcard.
func (AnyType) String() string { return "ANY" }

func (AnyType) check(*Grammar, *Node, string, map[memoKey]bool, *[]error) {}

// Grammar is a named set of productions, nonterminal → TypeExpr, with one
// start production.  It corresponds to the paper's "H-graph grammar, a type
// of BNF grammar in which the language defined is a set of H-graphs".
type Grammar struct {
	Name  string
	Start string
	prods map[string]TypeExpr
}

// NewGrammar creates a grammar with the given start nonterminal.
func NewGrammar(name, start string) *Grammar {
	return &Grammar{Name: name, Start: start, prods: map[string]TypeExpr{}}
}

// Define adds (or replaces) the production for the nonterminal.
func (g *Grammar) Define(nonterminal string, rhs TypeExpr) *Grammar {
	g.prods[nonterminal] = rhs
	return g
}

// Productions returns the sorted nonterminal names.
func (g *Grammar) Productions() []string {
	out := make([]string, 0, len(g.prods))
	for k := range g.prods {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Production returns the right-hand side for a nonterminal, or nil.
func (g *Grammar) Production(name string) TypeExpr { return g.prods[name] }

// WellFormed checks that the start production exists and that every
// RefType and SubgraphType target is defined, returning all dangling
// references.
func (g *Grammar) WellFormed() []error {
	var errs []error
	if _, ok := g.prods[g.Start]; !ok {
		errs = append(errs, fmt.Errorf("hgraph: grammar %q start production <%s> undefined", g.Name, g.Start))
	}
	var walk func(e TypeExpr)
	walk = func(e TypeExpr) {
		switch t := e.(type) {
		case RefType:
			if _, ok := g.prods[t.Prod]; !ok {
				errs = append(errs, fmt.Errorf("hgraph: grammar %q references undefined <%s>", g.Name, t.Prod))
			}
		case SubgraphType:
			if _, ok := g.prods[t.Prod]; !ok {
				errs = append(errs, fmt.Errorf("hgraph: grammar %q subgraph references undefined <%s>", g.Name, t.Prod))
			}
		case StructType:
			for _, f := range t.Fields {
				walk(f.Type)
			}
		case ListType:
			walk(t.Elem)
		case UnionType:
			for _, a := range t.Alts {
				walk(a)
			}
		}
	}
	for _, name := range g.Productions() {
		walk(g.prods[name])
	}
	return errs
}

// Validate checks graph gr against the grammar's start production,
// returning every violation found (empty means the graph is in the
// grammar's language).
func (g *Grammar) Validate(gr *Graph) []error {
	if gr == nil || gr.Entry() == nil {
		return []error{fmt.Errorf("hgraph: grammar %q: graph is empty", g.Name)}
	}
	var errs []error
	Ref(g.Start).check(g, gr.Entry(), gr.Name, map[memoKey]bool{}, &errs)
	return errs
}

// ValidateNode checks a single node against a named production.
func (g *Grammar) ValidateNode(n *Node, prod string) []error {
	var errs []error
	Ref(prod).check(g, n, n.Label, map[memoKey]bool{}, &errs)
	return errs
}

// String renders every production in BNF-like notation.
func (g *Grammar) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grammar %q (start <%s>)\n", g.Name, g.Start)
	for _, name := range g.Productions() {
		fmt.Fprintf(&b, "  <%s> ::= %s\n", name, g.prods[name])
	}
	return b.String()
}
