package hgraph

// This file carries the formal H-graph grammar definitions of the FEM-2
// virtual machine levels — the artifact the paper's design process
// produces ("H-graph semantics definitions of the various levels are being
// constructed").  The runtime packages build H-graph models of their live
// data structures and tests validate them against these grammars, so the
// formal specification actually constrains the implementation.

// SPVMMessageGrammar returns the grammar of the system programmer's VM
// message formats.  The paper lists exactly seven messages from tasks:
//
//	initiate K replications of a task of type T
//	pause and notify parent task
//	resume a child task
//	terminate and notify parent
//	remote procedure call
//	remote procedure return
//	load code/constants
func SPVMMessageGrammar() *Grammar {
	g := NewGrammar("spvm-message", "message")
	g.Define("message", UnionType{Alts: []TypeExpr{
		Ref("initiate"), Ref("pause"), Ref("resume"), Ref("terminate"),
		Ref("remote-call"), Ref("remote-return"), Ref("load-code"),
	}})
	g.Define("initiate", StructType{Closed: true, Fields: []Field{
		{Sel: "type", Type: LitString{"initiate"}},
		{Sel: "task-type", Type: AtomType{AtomString}},
		{Sel: "replications", Type: AtomType{AtomInt}},
		{Sel: "parent", Type: AtomType{AtomInt}},
		{Sel: "params", Type: ListType{Elem: AnyType{}}},
	}})
	g.Define("pause", StructType{Closed: true, Fields: []Field{
		{Sel: "type", Type: LitString{"pause"}},
		{Sel: "task", Type: AtomType{AtomInt}},
		{Sel: "parent", Type: AtomType{AtomInt}},
	}})
	g.Define("resume", StructType{Closed: true, Fields: []Field{
		{Sel: "type", Type: LitString{"resume"}},
		{Sel: "child", Type: AtomType{AtomInt}},
	}})
	g.Define("terminate", StructType{Closed: true, Fields: []Field{
		{Sel: "type", Type: LitString{"terminate"}},
		{Sel: "task", Type: AtomType{AtomInt}},
		{Sel: "parent", Type: AtomType{AtomInt}},
	}})
	g.Define("remote-call", StructType{Closed: true, Fields: []Field{
		{Sel: "type", Type: LitString{"remote-call"}},
		{Sel: "procedure", Type: AtomType{AtomString}},
		{Sel: "caller", Type: AtomType{AtomInt}},
		{Sel: "window", Type: Ref("window"), Optional: true},
		{Sel: "args", Type: ListType{Elem: AnyType{}}},
	}})
	g.Define("remote-return", StructType{Closed: true, Fields: []Field{
		{Sel: "type", Type: LitString{"remote-return"}},
		{Sel: "caller", Type: AtomType{AtomInt}},
		{Sel: "results", Type: ListType{Elem: AnyType{}}},
	}})
	g.Define("load-code", StructType{Closed: true, Fields: []Field{
		{Sel: "type", Type: LitString{"load-code"}},
		{Sel: "block", Type: AtomType{AtomString}},
		{Sel: "words", Type: AtomType{AtomInt}},
		{Sel: "local-words", Type: AtomType{AtomInt}},
	}})
	g.Define("window", windowStruct())
	return g
}

func windowStruct() TypeExpr {
	return StructType{Closed: true, Fields: []Field{
		{Sel: "array", Type: AtomType{AtomString}},
		{Sel: "kind", Type: UnionType{Alts: []TypeExpr{
			LitString{"row"}, LitString{"col"}, LitString{"block"},
		}}},
		{Sel: "owner", Type: AtomType{AtomInt}},
		{Sel: "row0", Type: AtomType{AtomInt}},
		{Sel: "rows", Type: AtomType{AtomInt}},
		{Sel: "col0", Type: AtomType{AtomInt}},
		{Sel: "cols", Type: AtomType{AtomInt}},
	}}
}

// WindowGrammar returns the grammar of NAVM window descriptors ("windows
// on arrays (e.g., row, column, block descriptors, for remote access to
// non-local data)").
func WindowGrammar() *Grammar {
	g := NewGrammar("navm-window", "window")
	g.Define("window", windowStruct())
	return g
}

// TaskStateGrammar returns the grammar of NAVM task states.  A task owns
// local data (a nested graph of named objects), has a parent, and is in
// one of the four life-cycle states implied by the paper's task control
// operations (initiate, pause, resume, terminate).
func TaskStateGrammar() *Grammar {
	g := NewGrammar("navm-task", "task")
	g.Define("task", StructType{Fields: []Field{
		{Sel: "id", Type: AtomType{AtomInt}},
		{Sel: "type", Type: AtomType{AtomString}},
		{Sel: "parent", Type: AtomType{AtomInt}},
		{Sel: "state", Type: UnionType{Alts: []TypeExpr{
			LitString{"ready"}, LitString{"running"},
			LitString{"paused"}, LitString{"terminated"},
		}}},
		{Sel: "locals", Type: SubgraphType{Prod: "locals"}, Optional: true},
	}})
	g.Define("locals", StructType{Fields: nil}) // any named set of objects
	return g
}

// ActivationRecordGrammar returns the grammar of SPVM task/procedure
// activation records (code block reference, local storage size, parameter
// list, saved state for pause/resume).
func ActivationRecordGrammar() *Grammar {
	g := NewGrammar("spvm-activation", "activation")
	g.Define("activation", StructType{Fields: []Field{
		{Sel: "task", Type: AtomType{AtomInt}},
		{Sel: "code-block", Type: AtomType{AtomString}},
		{Sel: "local-words", Type: AtomType{AtomInt}},
		{Sel: "params", Type: ListType{Elem: AnyType{}}},
		{Sel: "saved", Type: AtomType{AtomBool}},
	}})
	return g
}

// StructureModelGrammar returns the grammar of the application user's VM
// central data object: the structure/substructure model with its grid
// description, node/element descriptions, and load sets.
func StructureModelGrammar() *Grammar {
	g := NewGrammar("auvm-model", "model")
	g.Define("model", StructType{Fields: []Field{
		{Sel: "name", Type: AtomType{AtomString}},
		{Sel: "grid", Type: SubgraphType{Prod: "grid"}},
		{Sel: "elements", Type: ListType{Elem: Ref("element")}},
		{Sel: "loads", Type: ListType{Elem: Ref("loadset")}},
		{Sel: "substructures", Type: ListType{Elem: AtomType{AtomString}}, Optional: true},
	}})
	g.Define("grid", StructType{Fields: []Field{
		{Sel: "nodes", Type: AtomType{AtomInt}},
		{Sel: "dof-per-node", Type: AtomType{AtomInt}},
	}})
	g.Define("element", StructType{Fields: []Field{
		{Sel: "kind", Type: UnionType{Alts: []TypeExpr{
			LitString{"bar"}, LitString{"cst"}, LitString{"frame"},
		}}},
		{Sel: "nodes", Type: ListType{Elem: AtomType{AtomInt}, MinLen: 2}},
	}})
	g.Define("loadset", StructType{Fields: []Field{
		{Sel: "name", Type: AtomType{AtomString}},
		{Sel: "entries", Type: ListType{Elem: Ref("load-entry")}},
	}})
	g.Define("load-entry", StructType{Fields: []Field{
		{Sel: "dof", Type: AtomType{AtomInt}},
		{Sel: "value", Type: AtomType{AtomFloat}},
	}})
	return g
}

// AllLevelGrammars returns the formal grammar of every specified VM level,
// keyed by a stable name; cmd/hgraph and the E11 experiment iterate it.
func AllLevelGrammars() map[string]*Grammar {
	return map[string]*Grammar{
		"spvm-message":    SPVMMessageGrammar(),
		"navm-window":     WindowGrammar(),
		"navm-task":       TaskStateGrammar(),
		"spvm-activation": ActivationRecordGrammar(),
		"auvm-model":      StructureModelGrammar(),
	}
}
