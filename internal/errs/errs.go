// Package errs defines the FEM-2 reproduction's shared error taxonomy.
// Every layer (auvm, fem, core, the command parser) wraps these
// sentinels, so callers classify failures with errors.Is regardless of
// which virtual machine level produced them:
//
//	ErrNotFound  — a named object (model, load set, solution) does not
//	               exist where the operation looked for it,
//	ErrUsage     — the request is malformed or ineligible (bad verb,
//	               bad arguments, unknown option, an argument the
//	               target cannot accept),
//	ErrCancelled — the request's context was cancelled or its deadline
//	               expired before the operation completed.
package errs

import (
	"context"
	"errors"
	"fmt"
)

// ErrNotFound reports a lookup of a named object that does not exist.
var ErrNotFound = errors.New("not found")

// ErrUsage reports a malformed or ineligible request: unknown verb,
// wrong argument count or type, an unknown option, or an argument the
// target cannot accept.
var ErrUsage = errors.New("usage")

// ErrCancelled reports that a context was cancelled or timed out before
// the operation completed.
var ErrCancelled = errors.New("cancelled")

// Usage builds a request-specific error wrapping ErrUsage; the parser
// and the interpreters share it so usage errors format identically at
// every layer.
func Usage(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// Cancelled converts a context cancellation into the taxonomy: nil while
// ctx is live, an error wrapping both ErrCancelled and the context's own
// error once it is done.  Every layer's cancellation points share it so
// errors.Is(err, ErrCancelled) and errors.Is(err, context.Canceled) both
// classify the failure.
func Cancelled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	return nil
}
