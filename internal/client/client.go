// Package client is the network counterpart of internal/server: it
// speaks the wire protocol to a fem2d daemon and exposes the same
// typed Do(ctx, Command) (Result, error) surface as a local
// auvm.Session — decoded results are the identical structs, so their
// String renderings are byte-identical to local execution, and remote
// errors carry the server's error text verbatim plus a code that maps
// errors.Is back onto the shared sentinels.
//
// A Client is safe for concurrent use: requests are correlated by id,
// so goroutines may pipeline commands (a blocking wait does not stall
// a concurrent cancel).  Server-pushed job-state notifications arrive
// on Events.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/auvm"
	"repro/internal/command"
	"repro/internal/errs"
	"repro/internal/job"
	"repro/internal/wire"
)

// RemoteError is a server-reported failure.  Error() is the server's
// error text verbatim — the remote REPL line prints byte-identical to
// the local one — and Is maps the wire code back onto the shared error
// taxonomy, so errors.Is(err, fem2.ErrNotFound) classifies remote
// errors exactly like local ones.
type RemoteError struct {
	Code    string
	Message string
}

// Error returns the server-side error text.
func (e *RemoteError) Error() string { return e.Message }

// Is maps the wire code onto the sentinel taxonomy.
func (e *RemoteError) Is(target error) bool {
	switch e.Code {
	case wire.CodeUsage:
		return target == errs.ErrUsage
	case wire.CodeNotFound:
		return target == errs.ErrNotFound
	case wire.CodeCancelled:
		return target == errs.ErrCancelled
	case wire.CodeQuota:
		return target == job.ErrQuota
	case wire.CodeClosed:
		return target == job.ErrClosed
	case wire.CodeQuit:
		return target == auvm.ErrQuit
	default:
		return false
	}
}

// ErrClientClosed is returned by Do once the connection is gone; the
// underlying cause (a read error, Close) is wrapped alongside it.
var ErrClientClosed = errors.New("client: connection closed")

// Client is one connection to a fem2d daemon.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Response
	readErr error
	done    chan struct{}

	events  chan *wire.JobEvent
	welcome *wire.Welcome
}

// eventQueue bounds the notification buffer; a client that never reads
// Events drops the overflow rather than stalling the read loop.
const eventQueue = 256

// Dial connects to a fem2d daemon at addr and completes the handshake
// as user.
func Dial(addr, user string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc: nc, bw: bufio.NewWriter(nc),
		pending: map[uint64]chan *wire.Response{},
		done:    make(chan struct{}),
		events:  make(chan *wire.JobEvent, eventQueue),
	}
	go c.readLoop()
	resp, err := c.roundTrip(context.Background(), &wire.Request{
		Hello: &wire.Hello{User: user, Proto: command.ProtocolVersion}})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if resp.Error != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake refused: %s", resp.Error.Message)
	}
	if resp.Welcome == nil || resp.Welcome.Proto != command.ProtocolVersion {
		nc.Close()
		return nil, fmt.Errorf("client: bad handshake reply from %s", addr)
	}
	c.mu.Lock()
	c.welcome = resp.Welcome
	c.mu.Unlock()
	return c, nil
}

// Session returns the server-assigned session name — the owner of every
// job this connection submits.
func (c *Client) Session() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.welcome == nil {
		return ""
	}
	return c.welcome.Session
}

// Storage reports the server's storage backend name ("mem", "file")
// from the Welcome envelope — empty when the server predates it.
func (c *Client) Storage() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.welcome == nil {
		return ""
	}
	return c.welcome.Storage
}

// Events is the notification stream: one JobEvent per lifecycle
// transition of this connection's jobs.  The channel closes when the
// connection dies.  Events are best-effort (a full buffer drops);
// status and wait are the authoritative record.
func (c *Client) Events() <-chan *wire.JobEvent { return c.events }

// Close tears the connection down.  In-flight Do calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.fail(ErrClientClosed)
	return err
}

// readLoop dispatches inbound frames: notifications to events,
// responses to their waiting callers.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		resp, err := wire.DecodeResponse(br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %w", ErrClientClosed, err))
			return
		}
		if resp.ID == 0 {
			if resp.Event != nil {
				select {
				case c.events <- resp.Event:
				default:
				}
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// fail marks the connection dead and releases every waiter, once.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
		close(c.done)
		close(c.events)
		c.pending = nil
	}
	c.mu.Unlock()
}

// closedErr returns the recorded failure.
func (c *Client) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return ErrClientClosed
}

// roundTrip sends one request and waits for its response.
func (c *Client) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.EncodeRequest(c.bw, req)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", ErrClientClosed, err)
	}

	select {
	case resp := <-ch:
		return resp, nil
	case <-c.done:
		return nil, c.closedErr()
	case <-ctx.Done():
		c.mu.Lock()
		if c.pending != nil {
			delete(c.pending, req.ID)
		}
		c.mu.Unlock()
		return nil, errs.Cancelled(ctx)
	}
}

// Do executes one typed command on the server and returns its typed
// result — the same surface as auvm.Session.Do, over the wire.  The
// result struct round-trips the codec, so its String rendering is
// byte-identical to local execution; a server-side failure comes back
// as a *RemoteError.
func (c *Client) Do(ctx context.Context, cmd command.Command) (command.Result, error) {
	data, err := command.MarshalCommand(cmd)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{Command: data})
	if err != nil {
		return nil, err
	}
	var res command.Result
	if len(resp.Result) > 0 {
		if res, err = command.UnmarshalResult(resp.Result); err != nil {
			return nil, err
		}
	}
	if resp.Error != nil {
		return res, &RemoteError{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	return res, nil
}

// Execute interprets one command line remotely: parse locally (the
// identical parser, so usage errors match local ones), Do on the
// server, render the result — the network twin of
// auvm.Session.Execute.
func (c *Client) Execute(ctx context.Context, line string) (string, error) {
	cmd, err := command.Parse(line)
	if err != nil {
		return "", err
	}
	if cmd == nil { // blank line or comment
		return "", nil
	}
	res, err := c.Do(ctx, cmd)
	if res == nil {
		return "", err
	}
	return res.String(), err
}

// Run drives the remote session as a REPL, mirroring auvm.Session.Run
// line for line: output then `error: ...` lines, quit returns nil.
// When notify is true, job-state notifications print as they arrive,
// interleaved between command outputs.
func (c *Client) Run(ctx context.Context, r io.Reader, w io.Writer, notify bool) error {
	var wmu sync.Mutex
	if notify {
		go func() {
			for ev := range c.Events() {
				wmu.Lock()
				fmt.Fprintln(w, ev)
				wmu.Unlock()
			}
		}()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		out, err := c.Execute(ctx, sc.Text())
		wmu.Lock()
		if out != "" {
			fmt.Fprintln(w, out)
		}
		if errors.Is(err, auvm.ErrQuit) {
			wmu.Unlock()
			return nil
		}
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
		wmu.Unlock()
		if ctx.Err() != nil {
			return errs.Cancelled(ctx)
		}
	}
	return sc.Err()
}
