// Package client is the network counterpart of internal/server: it
// speaks the wire protocol to a fem2d daemon and exposes the same
// typed Do(ctx, Command) (Result, error) surface as a local
// auvm.Session — decoded results are the identical structs, so their
// String renderings are byte-identical to local execution, and remote
// errors carry the server's error text verbatim plus a code that maps
// errors.Is back onto the shared sentinels.
//
// A Client is safe for concurrent use: requests are correlated by id,
// so goroutines may pipeline commands (a blocking wait does not stall
// a concurrent cancel).  Server-pushed job-state notifications arrive
// on Events.
//
// # Reconnection
//
// With Options.MaxRetries > 0 the client rides out connection loss: a
// dead connection is replaced transparently (exponential backoff with
// seeded jitter between attempts), and requests that are safe to
// replay — the idempotent global verbs ping, version, status, jobs,
// wait — are retried on the fresh connection.  A request that may have
// mutated server state (a submit, a model edit) is never replayed once
// its frame has been sent; it fails back to the caller, who knows best
// whether to repeat it.  Dial failures are retried for every verb,
// because nothing was sent.  Note that a reconnect is a fresh server
// session: workspace state (models, the session name) does not carry
// over, which is exactly why only global verbs replay.
//
// With MaxRetries == 0 (the default, and Dial's behaviour) any
// connection failure is permanent, as before: in-flight and future
// calls fail with ErrClientClosed and the Events channel closes.
//
// # Clusters
//
// The address may name several endpoints, comma-separated
// ("a:9900,b:9900").  The client connects to the first that answers
// and rotates through the rest when a connection cannot be dialed, so
// a daemon dying moves the client to a surviving peer under the same
// replay rules as any reconnect.  A follower answering a mutating verb
// with the "not-leader" code redirects the client: the refusal happens
// before the command executes, so the client re-dials the advertised
// leader and retries the command — any command, idempotent or not —
// within the same MaxRetries budget (with retries disabled the
// not-leader error surfaces to the caller instead).  See
// docs/cluster.md.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/auvm"
	"repro/internal/cluster"
	"repro/internal/command"
	"repro/internal/errs"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// RemoteError is a server-reported failure.  Error() is the server's
// error text verbatim — the remote REPL line prints byte-identical to
// the local one — and Is maps the wire code back onto the shared error
// taxonomy, so errors.Is(err, fem2.ErrNotFound) classifies remote
// errors exactly like local ones.
type RemoteError struct {
	Code    string
	Message string
}

// Error returns the server-side error text.
func (e *RemoteError) Error() string { return e.Message }

// Is maps the wire code onto the sentinel taxonomy.
func (e *RemoteError) Is(target error) bool {
	switch e.Code {
	case wire.CodeUsage:
		return target == errs.ErrUsage
	case wire.CodeNotFound:
		return target == errs.ErrNotFound
	case wire.CodeCancelled:
		return target == errs.ErrCancelled
	case wire.CodeQuota:
		return target == job.ErrQuota
	case wire.CodeClosed:
		return target == job.ErrClosed
	case wire.CodeDegraded:
		return target == store.ErrDegraded
	case wire.CodeNotLeader:
		return target == cluster.ErrNotLeader
	case wire.CodeQuit:
		return target == auvm.ErrQuit
	default:
		return false
	}
}

// ErrClientClosed is returned by Do once the connection is gone for
// good; the underlying cause (a read error, Close) is wrapped
// alongside it.
var ErrClientClosed = errors.New("client: connection closed")

// ErrRetriesExhausted classifies a *RetryError: the reconnect budget
// ran out without a successful round trip.
var ErrRetriesExhausted = errors.New("client: retries exhausted")

// RetryError reports a request the client gave up on after burning its
// whole retry budget.  errors.Is(err, ErrRetriesExhausted) matches it;
// Unwrap exposes the last underlying failure.
type RetryError struct {
	// Attempts is the total number of tries, the first included.
	Attempts int
	// Last is the failure of the final attempt.
	Last error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("client: giving up after %d attempts: %v", e.Attempts, e.Last)
}

// Is matches ErrRetriesExhausted.
func (e *RetryError) Is(target error) bool { return target == ErrRetriesExhausted }

// Unwrap exposes the last attempt's failure.
func (e *RetryError) Unwrap() error { return e.Last }

// Options tunes a client's resilience.  The zero value reproduces the
// historical behaviour: no reconnects, no deadlines.
type Options struct {
	// MaxRetries is the reconnect budget per request: after the initial
	// attempt fails, up to MaxRetries more are made (redialing as
	// needed).  0 disables reconnection entirely — the first connection
	// failure closes the client for good.
	MaxRetries int
	// BaseBackoff spaces retries: attempt n waits about BaseBackoff·2ⁿ⁻¹
	// (half fixed, half seeded jitter), capped at MaxBackoff.  Defaults
	// to 50ms when retries are enabled.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth.  Defaults to 2s when retries
	// are enabled.
	MaxBackoff time.Duration
	// RequestTimeout bounds each attempt of each request client-side;
	// 0 means none.  wait is exempt — blocking on a job is its job.
	// A timed-out attempt is not retried (the deadline already cost the
	// caller the time a retry would spend again).
	RequestTimeout time.Duration
	// Seed feeds the jitter PRNG, so a chaos run's retry timing replays.
	Seed int64
	// Dialer replaces net.Dial("tcp", addr) — the hook fault.Dialer
	// plugs into.  Nil means plain TCP.
	Dialer func(addr string) (net.Conn, error)
	// Obs, when non-nil, receives the client's resilience metrics
	// (client.reconnects, client.retries) — a standalone registry for
	// the CLI's -metrics flag, or a shared one in larger deployments.
	Obs *obs.Registry
}

// eventQueue bounds the notification buffer; a client that never reads
// Events drops the overflow rather than stalling the read loop.
const eventQueue = 256

// Client is a connection to a fem2d daemon — with retries enabled, a
// lineage of connections behind one stable handle, possibly across
// several endpoints of one cluster.
type Client struct {
	user string
	opts Options

	mu sync.Mutex
	// addrs is the endpoint list; cur indexes the one the live link is
	// (or the next dial will be) on.  A not-leader redirect may append
	// an advertised address the caller did not list.
	addrs        []string
	cur          int
	ln           *link // live connection, nil between them
	welcome      *wire.Welcome
	closed       bool
	closeErr     error
	eventsClosed bool
	reconnects   int
	failovers    int
	everLinked   bool
	rng          *rand.Rand

	dialMu sync.Mutex // serializes reconnect attempts

	done   chan struct{} // closed on permanent close
	events chan *wire.JobEvent

	// Resilience metrics (Options.Obs); nil no-op sinks by default.
	mReconnects *obs.Counter
	mRetries    *obs.Counter
	mFailovers  *obs.Counter
}

// link is one TCP connection's worth of state: its own writer, its own
// pending-request map, its own failure.  A link failing releases only
// its own waiters; the Client above decides whether that failure is
// the end (MaxRetries 0) or just weather.
type link struct {
	cl *Client
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Response
	err     error
	done    chan struct{}
}

// Dial connects to a fem2d daemon at addr and completes the handshake
// as user, with the historical no-retry behaviour.
func Dial(addr, user string) (*Client, error) {
	return DialWithOptions(addr, user, Options{})
}

// DialWithOptions connects with explicit resilience settings.  The
// initial dial and handshake must succeed on some endpoint (a cluster
// that is entirely down at start is a configuration problem, not
// weather); the retry budget applies from then on.  addr may be a
// comma-separated endpoint list.
func DialWithOptions(addr, user string, o Options) (*Client, error) {
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if o.MaxRetries > 0 {
		if o.BaseBackoff <= 0 {
			o.BaseBackoff = 50 * time.Millisecond
		}
		if o.MaxBackoff <= 0 {
			o.MaxBackoff = 2 * time.Second
		}
	}
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: no endpoint in address %q", addr)
	}
	c := &Client{
		addrs: addrs, user: user, opts: o,
		rng:    rand.New(rand.NewSource(o.Seed)),
		done:   make(chan struct{}),
		events: make(chan *wire.JobEvent, eventQueue),

		mReconnects: o.Obs.Counter(obs.ClientReconnects),
		mRetries:    o.Obs.Counter(obs.ClientRetries),
		mFailovers:  o.Obs.Counter(obs.ClientFailovers),
	}
	ln, w, err := c.connect(context.Background())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.ln, c.welcome, c.everLinked = ln, w, true
	c.mu.Unlock()
	return c, nil
}

// connect dials and handshakes one fresh link.  The caller installs
// it.  The dial starts at the current endpoint and rotates through the
// rest until one answers; moving off the endpoint of an established
// lineage counts as a failover.
func (c *Client) connect(ctx context.Context) (*link, *wire.Welcome, error) {
	c.mu.Lock()
	addrs := append([]string(nil), c.addrs...)
	cur := c.cur
	c.mu.Unlock()
	var nc net.Conn
	var err error
	picked := -1
	for i := range addrs {
		idx := (cur + i) % len(addrs)
		if nc, err = c.opts.Dialer(addrs[idx]); err == nil {
			picked = idx
			break
		}
	}
	if picked < 0 {
		return nil, nil, err
	}
	c.mu.Lock()
	if picked != c.cur {
		c.cur = picked
		if c.everLinked {
			c.failovers++
			c.mFailovers.Inc()
		}
	}
	c.mu.Unlock()
	ln := &link{
		cl: c, nc: nc, bw: bufio.NewWriter(nc),
		pending: map[uint64]chan *wire.Response{},
		done:    make(chan struct{}),
	}
	go ln.readLoop()
	hctx := ctx
	if t := c.opts.RequestTimeout; t > 0 {
		var cancel context.CancelFunc
		hctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	resp, err := ln.roundTrip(hctx, &wire.Request{
		Hello: &wire.Hello{User: c.user, Proto: command.ProtocolVersion}})
	if err != nil {
		ln.fail(err)
		return nil, nil, fmt.Errorf("client: handshake: %w", err)
	}
	if resp.Error != nil {
		ln.fail(ErrClientClosed)
		return nil, nil, fmt.Errorf("client: handshake refused: %s", resp.Error.Message)
	}
	if resp.Welcome == nil || resp.Welcome.Proto != command.ProtocolVersion {
		ln.fail(ErrClientClosed)
		return nil, nil, fmt.Errorf("client: bad handshake reply from %s", addrs[picked])
	}
	return ln, resp.Welcome, nil
}

// live returns the current link, dialing a replacement when the old one
// is gone and retries are enabled.  dialMu makes concurrent callers
// share one reconnect instead of racing several.
func (c *Client) live(ctx context.Context) (*link, error) {
	c.mu.Lock()
	if c.closed {
		err := c.closeErr
		c.mu.Unlock()
		return nil, err
	}
	if c.ln != nil {
		ln := c.ln
		c.mu.Unlock()
		return ln, nil
	}
	c.mu.Unlock()

	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	c.mu.Lock()
	if c.closed {
		err := c.closeErr
		c.mu.Unlock()
		return nil, err
	}
	if c.ln != nil { // someone else reconnected while we waited
		ln := c.ln
		c.mu.Unlock()
		return ln, nil
	}
	c.mu.Unlock()

	ln, w, err := c.connect(ctx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed { // Close raced the reconnect; don't resurrect
		err := c.closeErr
		c.mu.Unlock()
		ln.fail(ErrClientClosed)
		return nil, err
	}
	c.ln, c.welcome = ln, w
	if c.everLinked {
		c.reconnects++
		c.mReconnects.Inc()
	}
	c.everLinked = true
	c.mu.Unlock()
	return ln, nil
}

// drop retires a failed link.  With retries disabled the first drop is
// the end of the client, exactly the historical semantics.
func (c *Client) drop(ln *link, err error) {
	ln.fail(err)
	c.mu.Lock()
	if c.ln == ln {
		c.ln = nil
	}
	permanent := c.opts.MaxRetries == 0 && !c.closed
	c.mu.Unlock()
	if permanent {
		c.permanentClose(fmt.Errorf("%w: %w", ErrClientClosed, err))
	}
}

// permanentClose shuts the client for good: future calls fail, the
// events channel closes.  The close happens under the mutex that also
// guards event sends, so it can never race a send from a read loop.
func (c *Client) permanentClose(err error) {
	c.mu.Lock()
	var ln *link
	if !c.closed {
		c.closed = true
		c.closeErr = err
		close(c.done)
		if !c.eventsClosed {
			c.eventsClosed = true
			close(c.events)
		}
		ln, c.ln = c.ln, nil
	}
	c.mu.Unlock()
	if ln != nil {
		ln.fail(err)
	}
}

// pushEvent forwards a server notification onto the events channel.
// The eventsClosed check and the send share c.mu with permanentClose,
// which is what makes the close race-free.
func (c *Client) pushEvent(ev *wire.JobEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eventsClosed {
		return
	}
	select {
	case c.events <- ev:
	default: // best-effort: a full buffer drops
	}
}

// Session returns the server-assigned session name from the most
// recent handshake — the owner of jobs submitted on the current
// connection.  A reconnect starts a fresh session with a fresh name.
func (c *Client) Session() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.welcome == nil {
		return ""
	}
	return c.welcome.Session
}

// Storage reports the server's storage backend name ("mem", "file")
// from the Welcome envelope — empty when the server predates it.
func (c *Client) Storage() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.welcome == nil {
		return ""
	}
	return c.welcome.Storage
}

// Degraded reports whether the server announced a degraded (read-only)
// store at the most recent handshake.  Live health is what ping is
// for; this is the at-connect snapshot.
func (c *Client) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.welcome != nil && c.welcome.Degraded
}

// Uptime returns the server's uptime in whole seconds as announced by
// the most recent handshake's Welcome envelope (rev 4); zero from
// servers that predate it or that just started.
func (c *Client) Uptime() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.welcome == nil {
		return 0
	}
	return c.welcome.UptimeSeconds
}

// Reconnects reports how many times the client has replaced a dead
// connection — a chaos test's proof that the weather actually hit.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Role reports the server's cluster role ("leader", "follower") from
// the most recent handshake; empty outside a cluster.
func (c *Client) Role() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.welcome == nil {
		return ""
	}
	return c.welcome.Role
}

// Leader reports the cluster leader's address as the most recent
// handshake announced it; empty outside a cluster.
func (c *Client) Leader() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.welcome == nil {
		return ""
	}
	return c.welcome.Leader
}

// Failovers reports how many times the client moved between endpoints
// — by dial rotation off a dead daemon or by not-leader redirect.
func (c *Client) Failovers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// Events is the notification stream: one JobEvent per lifecycle
// transition of the current connection's jobs.  The channel closes
// when the client closes for good (Close, or any connection failure
// when retries are disabled).  Events are best-effort (a full buffer
// drops); status and wait are the authoritative record.
func (c *Client) Events() <-chan *wire.JobEvent { return c.events }

// Close tears the client down.  In-flight Do calls fail with
// ErrClientClosed and the Events channel closes.
func (c *Client) Close() error {
	c.permanentClose(ErrClientClosed)
	return nil
}

// readLoop dispatches one link's inbound frames: notifications to the
// client's events channel, responses to their waiting callers.  A
// decode error retires the link.
func (ln *link) readLoop() {
	br := bufio.NewReader(ln.nc)
	for {
		resp, err := wire.DecodeResponse(br)
		if err != nil {
			ln.cl.drop(ln, fmt.Errorf("%w: %w", ErrClientClosed, err))
			return
		}
		if resp.ID == 0 {
			if resp.Event != nil {
				ln.cl.pushEvent(resp.Event)
			}
			continue
		}
		ln.mu.Lock()
		ch := ln.pending[resp.ID]
		delete(ln.pending, resp.ID)
		ln.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// fail marks the link dead and releases its waiters, once.
func (ln *link) fail(err error) {
	ln.mu.Lock()
	if ln.err == nil {
		ln.err = err
		close(ln.done)
		ln.pending = nil
	}
	ln.mu.Unlock()
	ln.nc.Close()
}

// failure returns the recorded link failure.
func (ln *link) failure() error {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.err != nil {
		return ln.err
	}
	return ErrClientClosed
}

// roundTrip sends one request on this link and waits for its response.
func (ln *link) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	ln.mu.Lock()
	if ln.err != nil {
		err := ln.err
		ln.mu.Unlock()
		return nil, err
	}
	ln.nextID++
	req.ID = ln.nextID
	ln.pending[req.ID] = ch
	ln.mu.Unlock()

	ln.wmu.Lock()
	err := wire.EncodeRequest(ln.bw, req)
	if err == nil {
		err = ln.bw.Flush()
	}
	ln.wmu.Unlock()
	if err != nil {
		ln.mu.Lock()
		if ln.pending != nil {
			delete(ln.pending, req.ID)
		}
		ln.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", ErrClientClosed, err)
	}

	select {
	case resp := <-ch:
		return resp, nil
	case <-ln.done:
		return nil, ln.failure()
	case <-ctx.Done():
		ln.mu.Lock()
		if ln.pending != nil {
			delete(ln.pending, req.ID)
		}
		ln.mu.Unlock()
		return nil, errs.Cancelled(ctx)
	}
}

// replayable reports the idempotent global verbs — safe to repeat on a
// fresh connection because they neither mutate nor depend on workspace
// state the old session held.
func replayable(cmd command.Command) bool {
	switch command.Value(cmd).(type) {
	case command.Ping, command.Version, command.Stats, command.Status, command.Jobs, command.Wait:
		return true
	}
	return false
}

// isWait exempts the blocking wait verb from per-request deadlines.
func isWait(cmd command.Command) bool {
	_, ok := command.Value(cmd).(command.Wait)
	return ok
}

// errRedirected marks a link retired because a follower pointed us at
// the leader — bookkeeping, not a transport failure.
var errRedirected = errors.New("client: redirected to cluster leader")

// roundTrip runs one request through the retry machinery: dial
// failures retry for any verb (nothing was sent), link failures after
// the send retry only when the verb is replayable, context
// cancellations and per-attempt deadlines never retry.  A not-leader
// refusal retries any verb — the server refuses before executing — by
// re-dialing toward the advertised leader.
func (c *Client) roundTrip(ctx context.Context, data json.RawMessage, idem, deadlineExempt bool) (*wire.Response, error) {
	attempts := 0
	for {
		ln, err := c.live(ctx)
		if err == nil {
			actx, cancel := ctx, context.CancelFunc(nil)
			if t := c.opts.RequestTimeout; t > 0 && !deadlineExempt {
				actx, cancel = context.WithTimeout(ctx, t)
			}
			var resp *wire.Response
			resp, err = ln.roundTrip(actx, &wire.Request{Command: data})
			if cancel != nil {
				cancel()
			}
			if err == nil {
				e := resp.Error
				if e == nil || e.Code != wire.CodeNotLeader || c.opts.MaxRetries == 0 {
					return resp, nil
				}
				// Follower refused before execution: chase the leader and
				// replay, whatever the verb.  With retries disabled the
				// caller got the not-leader RemoteError above instead.
				c.redirect(ln, e.Leader)
				err = fmt.Errorf("%w (%s)", errRedirected, e.Message)
			} else {
				if errors.Is(err, errs.ErrCancelled) {
					return nil, err // the caller's context or our deadline, not weather
				}
				c.drop(ln, err)
				c.mu.Lock()
				closed := c.closed
				closeErr := c.closeErr
				c.mu.Unlock()
				if closed { // retries disabled: first failure is final
					return nil, closeErr
				}
				if !idem {
					return nil, err // may have reached the server; never replay
				}
			}
		}
		attempts++
		c.mRetries.Inc()
		if attempts > c.opts.MaxRetries {
			if c.opts.MaxRetries == 0 {
				return nil, err
			}
			return nil, &RetryError{Attempts: attempts, Last: err}
		}
		if serr := c.backoff(ctx, attempts); serr != nil {
			return nil, serr
		}
	}
}

// redirect retires the link to a non-leader and aims the next dial at
// the advertised leader address, learning it if the caller's endpoint
// list did not include it.  Without a hint (no leader known yet —
// mid-takeover) the next endpoint in the rotation is tried instead.
func (c *Client) redirect(ln *link, leader string) {
	c.mu.Lock()
	if leader != "" {
		found := -1
		for i, a := range c.addrs {
			if a == leader {
				found = i
				break
			}
		}
		if found < 0 {
			c.addrs = append(c.addrs, leader)
			found = len(c.addrs) - 1
		}
		c.cur = found
	} else {
		c.cur = (c.cur + 1) % len(c.addrs)
	}
	c.failovers++
	c.mu.Unlock()
	c.mFailovers.Inc()
	c.drop(ln, errRedirected)
}

// backoff sleeps the exponential-with-jitter delay before retry n,
// aborting early on context death or client close.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.opts.BaseBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	if d <= 0 {
		return nil
	}
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return errs.Cancelled(ctx)
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.closeErr
	case <-t.C:
		return nil
	}
}

// Do executes one typed command on the server and returns its typed
// result — the same surface as auvm.Session.Do, over the wire.  The
// result struct round-trips the codec, so its String rendering is
// byte-identical to local execution; a server-side failure comes back
// as a *RemoteError.
func (c *Client) Do(ctx context.Context, cmd command.Command) (command.Result, error) {
	data, err := command.MarshalCommand(cmd)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, data, replayable(cmd), isWait(cmd))
	if err != nil {
		return nil, err
	}
	var res command.Result
	if len(resp.Result) > 0 {
		if res, err = command.UnmarshalResult(resp.Result); err != nil {
			return nil, err
		}
	}
	if resp.Error != nil {
		return res, &RemoteError{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	return res, nil
}

// Execute interprets one command line remotely: parse locally (the
// identical parser, so usage errors match local ones), Do on the
// server, render the result — the network twin of
// auvm.Session.Execute.
func (c *Client) Execute(ctx context.Context, line string) (string, error) {
	cmd, err := command.Parse(line)
	if err != nil {
		return "", err
	}
	if cmd == nil { // blank line or comment
		return "", nil
	}
	res, err := c.Do(ctx, cmd)
	if res == nil {
		return "", err
	}
	return res.String(), err
}

// Run drives the remote session as a REPL, mirroring auvm.Session.Run
// line for line: output then `error: ...` lines, quit returns nil.
// When notify is true, job-state notifications print as they arrive,
// interleaved between command outputs.
func (c *Client) Run(ctx context.Context, r io.Reader, w io.Writer, notify bool) error {
	var wmu sync.Mutex
	if notify {
		go func() {
			for ev := range c.Events() {
				wmu.Lock()
				fmt.Fprintln(w, ev)
				wmu.Unlock()
			}
		}()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		out, err := c.Execute(ctx, sc.Text())
		wmu.Lock()
		if out != "" {
			fmt.Fprintln(w, out)
		}
		if errors.Is(err, auvm.ErrQuit) {
			wmu.Unlock()
			return nil
		}
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
		wmu.Unlock()
		if ctx.Err() != nil {
			return errs.Cancelled(ctx)
		}
	}
	return sc.Err()
}
