// Regression and chaos-unit tests for the resilient client: the
// events-channel close race, reconnect-with-replay for idempotent
// verbs, the never-replay rule for mutating verbs, and the exhausted
// retry budget.  All of it runs under -race.
package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	fem2 "repro"
	"repro/internal/fault"
)

// startServer boots a default system on a loopback listener.
func startServer(t *testing.T) (*fem2.Server, string) {
	t.Helper()
	sys, err := fem2.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := fem2.NewServer(sys, fem2.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Shutdown(context.Background())
		sys.Close()
	})
	return srv, ln.Addr().String()
}

// eventuallyClosed fails unless ch closes within the deadline.
func eventuallyClosed(t *testing.T, ch <-chan *fem2.JobEvent) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("events channel never closed")
		}
	}
}

// TestEventsCloseOnClose pins the satellite-2 contract: Close closes
// the Events channel exactly once and later Do calls fail with
// ErrClientClosed — no send-on-closed-channel race, no goroutine leak.
func TestEventsCloseOnClose(t *testing.T) {
	_, addr := startServer(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		cl, err := fem2.Dial(addr, "eng")
		if err != nil {
			t.Fatal(err)
		}
		// Generate notification traffic racing the close: submits push
		// queued/running/done events through the read loop while Close
		// tears the channel down.
		ctx := context.Background()
		cl.Do(ctx, fem2.GenerateGrid{Name: "m", NX: 2, NY: 2, W: 2, H: 2, ClampLeft: true})
		cl.Do(ctx, fem2.EndLoad{Model: "m", Set: "l", FY: -1})
		cl.Do(ctx, fem2.SubmitCommand{Cmd: fem2.SolveCommand{Model: "m", Set: "l"}})
		cl.Close()
		eventuallyClosed(t, cl.Events())
		if _, err := cl.Do(ctx, fem2.PingCommand{}); !errors.Is(err, fem2.ErrClientClosed) {
			t.Fatalf("Do after Close = %v, want ErrClientClosed", err)
		}
	}
	// The read loops must wind down with their connections.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestEventsCloseOnServerDisconnect pins the other half: with retries
// disabled, a server-side disconnect closes Events and fails Do, the
// historical semantics.
func TestEventsCloseOnServerDisconnect(t *testing.T) {
	srv, addr := startServer(t)
	cl, err := fem2.Dial(addr, "eng")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Do(context.Background(), fem2.PingCommand{}); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown(context.Background())
	eventuallyClosed(t, cl.Events())
	if _, err := cl.Do(context.Background(), fem2.PingCommand{}); !errors.Is(err, fem2.ErrClientClosed) {
		t.Fatalf("Do after disconnect = %v, want ErrClientClosed", err)
	}
}

// TestReconnectReplaysIdempotent pins the tentpole's client story: a
// connection killed mid-stream is replaced transparently and the
// idempotent verb that was in flight replays on the fresh connection.
func TestReconnectReplaysIdempotent(t *testing.T) {
	_, addr := startServer(t)
	// Connection 1 dies on its 3rd outbound frame (hello, ping, ping —
	// the second ping's frame is cut mid-write); later connections are
	// clean.
	dialer := fault.Dialer(func(n int) *fault.Injector {
		if n == 1 {
			return fault.NewInjector(7, fault.Rule{
				Op: fault.OpWrite, After: 2, Count: 1,
				Fault: fault.Fault{Err: fault.ErrIO, Partial: 3}})
		}
		return nil
	})
	cl, err := fem2.DialWithOptions(addr, "eng", fem2.ClientOptions{
		MaxRetries: 3, BaseBackoff: time.Millisecond, Seed: 7, Dialer: dialer})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		res, err := cl.Do(context.Background(), fem2.PingCommand{})
		if err != nil {
			t.Fatalf("ping %d across the drop: %v", i, err)
		}
		if res.String() != "pong" {
			t.Fatalf("ping %d = %q", i, res)
		}
	}
	if cl.Reconnects() != 1 {
		t.Errorf("Reconnects() = %d, want 1", cl.Reconnects())
	}
	// Events stays open across the reconnect; only Close ends it.
	select {
	case _, ok := <-cl.Events():
		if !ok {
			t.Error("events closed by a survivable reconnect")
		}
	default:
	}
}

// TestMutatingVerbNeverReplays pins the safety rule: a mutating verb
// whose frame may have reached the server fails back to the caller
// instead of replaying, while the client itself stays usable.
func TestMutatingVerbNeverReplays(t *testing.T) {
	_, addr := startServer(t)
	// Connection 1 dies exactly on frame 2: the define command's frame.
	dialer := fault.Dialer(func(n int) *fault.Injector {
		if n == 1 {
			return fault.NewInjector(1, fault.Rule{
				Op: fault.OpWrite, After: 1, Count: 1,
				Fault: fault.Fault{Err: fault.ErrIO}})
		}
		return nil
	})
	cl, err := fem2.DialWithOptions(addr, "eng", fem2.ClientOptions{
		MaxRetries: 3, BaseBackoff: time.Millisecond, Dialer: dialer})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Do(context.Background(), fem2.Define{Name: "m"}); err == nil {
		t.Fatal("mutating verb on a cut connection reported success")
	} else if errors.Is(err, fem2.ErrRetriesExhausted) {
		t.Fatalf("mutating verb was retried to exhaustion: %v", err)
	}
	// The next call reconnects and works.
	if _, err := cl.Do(context.Background(), fem2.PingCommand{}); err != nil {
		t.Fatalf("ping after failed mutate: %v", err)
	}
	if cl.Reconnects() != 1 {
		t.Errorf("Reconnects() = %d, want 1", cl.Reconnects())
	}
}

// TestRetriesExhausted pins the typed give-up: when the daemon stays
// unreachable past the budget, Do fails with a *RetryError that
// errors.Is-matches ErrRetriesExhausted and wraps the last cause.
func TestRetriesExhausted(t *testing.T) {
	_, addr := startServer(t)
	dialFailed := errors.New("no route to daemon")
	dials := 0
	dialer := func(a string) (net.Conn, error) {
		dials++
		if dials == 1 {
			return fault.Dialer(func(n int) *fault.Injector {
				return fault.NewInjector(1, fault.Rule{
					Op: fault.OpWrite, After: 1, Count: 1,
					Fault: fault.Fault{Err: fault.ErrIO}})
			})(a)
		}
		return nil, dialFailed
	}
	cl, err := fem2.DialWithOptions(addr, "eng", fem2.ClientOptions{
		MaxRetries: 2, BaseBackoff: time.Millisecond, Dialer: dialer})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Do(context.Background(), fem2.PingCommand{})
	if !errors.Is(err, fem2.ErrRetriesExhausted) {
		t.Fatalf("Do against a dead daemon = %v, want ErrRetriesExhausted", err)
	}
	var re *fem2.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("error is not a *RetryError: %v", err)
	}
	if re.Attempts != 3 { // the initial try + 2 retries
		t.Errorf("RetryError.Attempts = %d, want 3", re.Attempts)
	}
	if !errors.Is(re.Last, dialFailed) {
		t.Errorf("RetryError.Last = %v, want the dial failure", re.Last)
	}
	if fmt.Sprint(err) == "" {
		t.Error("empty RetryError rendering")
	}
}
