package navm

import (
	"context"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ParallelMultiColorSOR solves the distributed system by multi-colour SOR
// on P simulated workers.  Rows of one color are mutually independent, so
// each color sweep runs fully parallel across the row blocks; a halo
// exchange and barrier separate consecutive colors.  This is the
// iteration Adams analysed for the Finite Element Machine: it converges
// like Gauss-Seidel/SOR (roughly twice as fast as Jacobi on grid
// problems) while exposing Jacobi-like parallelism within each color.
// The iteration loop polls ctx like ParallelCG does.
func (rt *Runtime) ParallelMultiColorSOR(ctx context.Context, d *DistSystem, c *linalg.Coloring, opts linalg.IterOpts) (linalg.Vector, SolveStats, error) {
	var stats SolveStats
	if err := c.Validate(d.A); err != nil {
		return nil, stats, err
	}
	// Same defaults as the sequential sor backend.
	opts = linalg.IterDefaults(opts, d.A.N, 100)
	w := opts.Omega
	if w <= 0 || w >= 2 {
		return nil, stats, fmt.Errorf("navm: SOR relaxation factor %g outside (0,2)", w)
	}
	pes, err := workerPEs(rt.machine, d.P)
	if err != nil {
		return nil, stats, err
	}
	defer rt.spawnSolverTasks(pes)()
	n := d.A.N
	diag := d.A.Diagonal()
	for i, v := range diag {
		if v == 0 {
			return nil, stats, fmt.Errorf("navm: SOR zero diagonal at %d", i)
		}
	}
	// Pre-split each worker's rows by color.
	rowsBy := make([][][]int, d.P)
	for p := 0; p < d.P; p++ {
		rowsBy[p] = make([][]int, c.NumColors)
		for r := d.Lo[p]; r < d.Hi[p]; r++ {
			col := c.ColorOf[r]
			rowsBy[p][col] = append(rowsBy[p][col], r)
		}
	}
	st := make([]linalg.Stats, d.P)
	x := linalg.NewVector(n)
	bnorm := math.Sqrt(dotBlocks(d, pes, st, d.B, d.B))
	if bnorm == 0 {
		return x, stats, nil
	}
	maxIter := opts.MaxIter
	r := linalg.NewVector(n)
	for iter := 1; iter <= maxIter; iter++ {
		if err := linalg.CheckCancel(ctx, iter); err != nil {
			finalizeStats(rt, &stats, st)
			return x, stats, err
		}
		for color := 0; color < c.NumColors; color++ {
			// Boundary values of the previous colors must be
			// visible before this sweep.
			stats.HaloWords += d.haloExchange(rt, pes)
			for p := 0; p < d.P; p++ {
				var flops int64
				for _, i := range rowsBy[p][color] {
					s := d.B[i]
					for k := d.A.RowPtr[i]; k < d.A.RowPtr[i+1]; k++ {
						j := d.A.ColIdx[k]
						if j != i {
							s -= d.A.Val[k] * x[j]
						}
					}
					x[i] = (1-w)*x[i] + w*s/diag[i]
					flops += int64(2*d.A.RowNNZ(i) + 4)
				}
				st[p].Flops += flops
				pes[p].Charge(flops * CyclesPerFlop)
			}
			barrier(rt, pes)
		}
		// Distributed residual check.
		for p := 0; p < d.P; p++ {
			before := st[p].Flops
			d.A.MulVecRows(x, r, d.Lo[p], d.Hi[p], &st[p])
			for i := d.Lo[p]; i < d.Hi[p]; i++ {
				r[i] = d.B[i] - r[i]
			}
			st[p].Flops += int64(d.Hi[p] - d.Lo[p])
			pes[p].Charge((st[p].Flops - before) * CyclesPerFlop)
		}
		resid := math.Sqrt(dotBlocks(d, pes, st, r, r)) / bnorm
		barrier(rt, pes)
		stats.Iterations = iter
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if resid <= opts.Tol {
			stats.ResidualNorm = resid
			break
		}
		if iter == maxIter {
			stats.ResidualNorm = resid
			finalizeStats(rt, &stats, st)
			return x, stats, &linalg.ConvergenceError{Backend: "parallel-multicolor-sor", Iterations: maxIter, Residual: resid}
		}
	}
	finalizeStats(rt, &stats, st)
	return x, stats, nil
}
