package navm

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/spvm"
)

// Array is a two-dimensional array owned by a single task, held in that
// task's cluster shared memory.  Per the NAVM data control rules, other
// tasks reach its contents only through windows; the owner may also access
// it directly.
type Array struct {
	// Name identifies the array in the runtime directory.
	Name string
	// Rows, Cols give the shape; a vector is Rows×1.
	Rows, Cols int
	// Owner is the owning task; its cluster holds the storage.
	Owner spvm.TaskID

	rt          *Runtime
	homeCluster int
	memHandle   int64
	data        []float64
	freed       bool
}

// NewArray creates a rows×cols array owned by tc, allocating its words in
// tc's cluster shared memory ("dynamic creation of data objects by a
// task").
func (tc *TaskCtx) NewArray(name string, rows, cols int) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("navm: array %q shape %dx%d", name, rows, cols)
	}
	rt := tc.rt
	cluster := rt.machine.Cluster(tc.pe.Cluster)
	words := int64(rows * cols)
	h, err := cluster.Memory.Alloc(words)
	if err != nil {
		return nil, fmt.Errorf("navm: array %q: %w", name, err)
	}
	a := &Array{
		Name: name, Rows: rows, Cols: cols, Owner: tc.ID,
		rt: rt, homeCluster: tc.pe.Cluster, memHandle: h,
		data: make([]float64, rows*cols),
	}
	rt.mu.Lock()
	if _, dup := rt.arrays[name]; dup {
		rt.mu.Unlock()
		cluster.Memory.Free(h)
		return nil, fmt.Errorf("navm: array %q already exists", name)
	}
	rt.arrays[name] = a
	rt.mu.Unlock()
	rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrWordsAlloc, words)
	rt.Trace.Recordf(metrics.LevelNAVM, "array.new", int(tc.ID), a.homeCluster, int(words), "%s %dx%d", name, rows, cols)
	return a, nil
}

// NewVectorArray creates an n×1 array.
func (tc *TaskCtx) NewVectorArray(name string, n int) (*Array, error) {
	return tc.NewArray(name, n, 1)
}

// Free releases the array's storage.  Only the owner may free ("data
// lifetime = lifetime of owner task").
func (a *Array) Free(tc *TaskCtx) error {
	if tc.ID != a.Owner {
		return fmt.Errorf("%w: %q owned by task %d, freed by %d", ErrNotOwner, a.Name, a.Owner, tc.ID)
	}
	if a.freed {
		return fmt.Errorf("navm: array %q already freed", a.Name)
	}
	a.freed = true
	cluster := a.rt.machine.Cluster(a.homeCluster)
	if err := cluster.Memory.Free(a.memHandle); err != nil {
		return err
	}
	a.rt.mu.Lock()
	delete(a.rt.arrays, a.Name)
	a.rt.mu.Unlock()
	a.rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrWordsFreed, int64(a.Rows*a.Cols))
	return nil
}

// HomeCluster returns the cluster holding the array.
func (a *Array) HomeCluster() int { return a.homeCluster }

// Words returns the storage size in words.
func (a *Array) Words() int64 { return int64(a.Rows * a.Cols) }

// Set writes element (i,j) directly.  Only the owner holds this right;
// other tasks must write through a window.
func (a *Array) Set(tc *TaskCtx, i, j int, v float64) error {
	if tc.ID != a.Owner {
		return fmt.Errorf("%w: direct Set on %q by task %d", ErrNotOwner, a.Name, tc.ID)
	}
	a.checkBounds(i, j)
	a.data[i*a.Cols+j] = v
	a.rt.machine.MemoryTouch(tc.pe.ID, 1)
	a.rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrLocalAccesses, 1)
	return nil
}

// At reads element (i,j) directly (owner only).
func (a *Array) At(tc *TaskCtx, i, j int) (float64, error) {
	if tc.ID != a.Owner {
		return 0, fmt.Errorf("%w: direct At on %q by task %d", ErrNotOwner, a.Name, tc.ID)
	}
	a.checkBounds(i, j)
	a.rt.machine.MemoryTouch(tc.pe.ID, 1)
	a.rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrLocalAccesses, 1)
	return a.data[i*a.Cols+j], nil
}

// FillRow bulk-writes row i (owner only), a common initialisation step.
func (a *Array) FillRow(tc *TaskCtx, i int, vals []float64) error {
	if tc.ID != a.Owner {
		return fmt.Errorf("%w: FillRow on %q by task %d", ErrNotOwner, a.Name, tc.ID)
	}
	if len(vals) != a.Cols {
		return fmt.Errorf("navm: FillRow %q: %d values for %d cols", a.Name, len(vals), a.Cols)
	}
	a.checkBounds(i, 0)
	copy(a.data[i*a.Cols:(i+1)*a.Cols], vals)
	a.rt.machine.MemoryTouch(tc.pe.ID, int64(a.Cols))
	a.rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrLocalAccesses, int64(a.Cols))
	return nil
}

func (a *Array) checkBounds(i, j int) {
	if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("navm: array %q index (%d,%d) outside %dx%d", a.Name, i, j, a.Rows, a.Cols))
	}
}

// Lookup returns the named array from the runtime directory, or nil.
func (rt *Runtime) Lookup(name string) *Array {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.arrays[name]
}
