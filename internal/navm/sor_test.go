package navm

import (
	"context"
	"testing"

	"repro/internal/linalg"
)

func TestParallelMultiColorSORMatchesSequential(t *testing.T) {
	a, b, want := testSystem(6)
	rt := newSolveRuntime(t, 2, 5)
	d, _ := Partition(a, b, 4)
	c := linalg.GreedyColoring(a)
	if c.NumColors != 2 {
		t.Fatalf("expected red/black, got %d colors", c.NumColors)
	}
	opts := linalg.DefaultIterOpts(a.N)
	opts.Tol = 1e-9
	opts.MaxIter = 50000
	x, stats, err := rt.ParallelMultiColorSOR(context.Background(), d, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if diff := linalg.MaxAbsDiff(x, want); diff > 1e-6 {
		t.Errorf("parallel multi-colour SOR error %g", diff)
	}
	if stats.Iterations == 0 || stats.Flops == 0 || stats.Makespan == 0 {
		t.Errorf("stats %+v", stats)
	}
	// The parallel arithmetic equals the sequential multi-colour SOR.
	xSeq, seqIters, err := linalg.MultiColorSOR(a, b, c, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := linalg.MaxAbsDiff(x, xSeq); diff > 1e-12 {
		t.Errorf("parallel differs from sequential ordering by %g", diff)
	}
	if stats.Iterations != seqIters {
		t.Errorf("parallel %d vs sequential %d iterations", stats.Iterations, seqIters)
	}
}

func TestParallelMultiColorSORBeatsJacobiIterations(t *testing.T) {
	a, b, _ := testSystem(6)
	opts := linalg.DefaultIterOpts(a.N)
	opts.Tol = 1e-8
	opts.MaxIter = 100000

	rt1 := newSolveRuntime(t, 2, 5)
	d1, _ := Partition(a, b, 4)
	_, jStats, err := rt1.ParallelJacobi(context.Background(), d1, opts)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := newSolveRuntime(t, 2, 5)
	d2, _ := Partition(a, b, 4)
	c := linalg.GreedyColoring(a)
	_, sStats, err := rt2.ParallelMultiColorSOR(context.Background(), d2, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sStats.Iterations >= jStats.Iterations {
		t.Errorf("multi-colour SOR (%d iters) should beat Jacobi (%d iters)",
			sStats.Iterations, jStats.Iterations)
	}
}

func TestParallelMultiColorSORErrors(t *testing.T) {
	a, b, _ := testSystem(4)
	rt := newSolveRuntime(t, 1, 3)
	d, _ := Partition(a, b, 2)
	c := linalg.GreedyColoring(a)

	opts := linalg.DefaultIterOpts(a.N)
	opts.Omega = -1
	if _, _, err := rt.ParallelMultiColorSOR(context.Background(), d, c, opts); err == nil {
		t.Error("bad omega accepted")
	}
	// Corrupt coloring rejected.
	bad := &linalg.Coloring{ColorOf: make([]int, a.N), NumColors: 1, Rows: [][]int{{}}}
	if _, _, err := rt.ParallelMultiColorSOR(context.Background(), d, bad, linalg.DefaultIterOpts(a.N)); err == nil {
		t.Error("invalid coloring accepted")
	}
	// Budget exhaustion.
	opts = linalg.DefaultIterOpts(a.N)
	opts.MaxIter = 1
	opts.Tol = 1e-15
	if _, _, err := rt.ParallelMultiColorSOR(context.Background(), d, c, opts); err == nil {
		t.Error("budget exhaustion not reported")
	}
	// Zero RHS short-circuits.
	d0, _ := Partition(a, linalg.NewVector(a.N), 2)
	if x, stats, err := rt.ParallelMultiColorSOR(context.Background(), d0, c, linalg.DefaultIterOpts(a.N)); err != nil || stats.Iterations != 0 || linalg.NormInf(x) != 0 {
		t.Error("zero rhs mishandled")
	}
}

func TestKernelCyclesShapes(t *testing.T) {
	a, b, _ := testSystem(8)
	run := func(p int) (spmv, dot, axpy int64) {
		rt := newSolveRuntime(t, 4, 6)
		d, _ := Partition(a, b, p)
		s, dt, ax, err := rt.KernelCycles(d)
		if err != nil {
			t.Fatal(err)
		}
		return s, dt, ax
	}
	s1, _, a1 := run(1)
	s16, _, a16 := run(16)
	if a16 >= a1 {
		t.Errorf("axpy did not scale: %d -> %d", a1, a16)
	}
	if s16 >= s1 {
		t.Errorf("spmv did not scale: %d -> %d", s1, s16)
	}
	// Axpy scales better than spmv (no halo, no barrier).
	if float64(a1)/float64(a16) <= float64(s1)/float64(s16) {
		t.Errorf("axpy speedup %g not above spmv speedup %g",
			float64(a1)/float64(a16), float64(s1)/float64(s16))
	}
}

func TestWorkerPEsLeastLoadedAndDisjoint(t *testing.T) {
	rt := newSolveRuntime(t, 4, 5) // 16 workers
	m := rt.Machine()
	a, b, _ := testSystem(6)
	d, _ := Partition(a, b, 4)
	// First solve occupies 4 workers.
	if _, _, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(a.N)); err != nil {
		t.Fatal(err)
	}
	busyBefore := map[int]int64{}
	for _, pe := range m.LiveWorkers() {
		busyBefore[pe.ID] = pe.BusyCycles()
	}
	// Second solve must land on previously idle workers.
	d2, _ := Partition(a, b, 4)
	if _, _, err := rt.ParallelCG(context.Background(), d2, linalg.DefaultIterOpts(a.N)); err != nil {
		t.Fatal(err)
	}
	newlyBusy := 0
	for _, pe := range m.LiveWorkers() {
		if busyBefore[pe.ID] == 0 && pe.BusyCycles() > 0 {
			newlyBusy++
		}
	}
	if newlyBusy < 4 {
		t.Errorf("second solve reused loaded PEs; only %d fresh PEs engaged", newlyBusy)
	}
}
