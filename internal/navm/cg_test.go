package navm

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// poisson2D builds the 5-point Laplacian on an n×n interior grid.
func poisson2D(n int) *linalg.CSR {
	var ts []linalg.Triplet
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ts = append(ts, linalg.Triplet{Row: id(i, j), Col: id(i, j), Val: 4})
			if i > 0 {
				ts = append(ts, linalg.Triplet{Row: id(i, j), Col: id(i-1, j), Val: -1})
			}
			if i < n-1 {
				ts = append(ts, linalg.Triplet{Row: id(i, j), Col: id(i+1, j), Val: -1})
			}
			if j > 0 {
				ts = append(ts, linalg.Triplet{Row: id(i, j), Col: id(i, j-1), Val: -1})
			}
			if j < n-1 {
				ts = append(ts, linalg.Triplet{Row: id(i, j), Col: id(i, j+1), Val: -1})
			}
		}
	}
	m, err := linalg.NewCSRFromTriplets(n*n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func newSolveRuntime(t *testing.T, clusters, pesPer int) *Runtime {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Clusters = clusters
	cfg.PEsPerCluster = pesPer
	rt := NewRuntime(arch.MustNew(cfg))
	rt.AttachInstrumentation(metrics.NewCollector(), trace.NewCapped(10000))
	return rt
}

func testSystem(n int) (*linalg.CSR, linalg.Vector, linalg.Vector) {
	a := poisson2D(n)
	rng := rand.New(rand.NewSource(42))
	want := linalg.NewVector(a.N)
	for i := range want {
		want[i] = rng.Float64()*2 - 1
	}
	b := a.MulVec(want, nil, nil)
	return a, b, want
}

func TestPartitionCoversAllRows(t *testing.T) {
	a, b, _ := testSystem(6)
	d, err := Partition(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, a.N)
	for p := 0; p < d.P; p++ {
		for r := d.Lo[p]; r < d.Hi[p]; r++ {
			if covered[r] {
				t.Fatalf("row %d in two blocks", r)
			}
			covered[r] = true
		}
	}
	for r, c := range covered {
		if !c {
			t.Fatalf("row %d uncovered", r)
		}
	}
}

func TestPartitionCommPlanSymmetricForSymmetricMatrix(t *testing.T) {
	a, b, _ := testSystem(8)
	d, err := Partition(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 5-point stencil with contiguous blocks: halo only between
	// neighbouring blocks, and symmetric sizes.
	for p := 0; p < d.P; p++ {
		if d.CommWords[p][p] != 0 {
			t.Errorf("self-communication at %d", p)
		}
		for q := 0; q < d.P; q++ {
			if d.CommWords[p][q] != d.CommWords[q][p] {
				t.Errorf("asymmetric plan [%d][%d]=%d vs %d", p, q, d.CommWords[p][q], d.CommWords[q][p])
			}
			if absInt(p-q) > 1 && d.CommWords[p][q] != 0 {
				t.Errorf("non-neighbour communication [%d][%d]=%d", p, q, d.CommWords[p][q])
			}
		}
	}
	// The halo of an 8×8 grid split into 4 row-blocks is one grid row
	// (8 points) per internal boundary side: 6 directed edges... check
	// total is 6*8.
	if got := d.TotalHaloWords(); got != 48 {
		t.Errorf("TotalHaloWords = %d, want 48", got)
	}
}

func TestPartitionErrors(t *testing.T) {
	a, b, _ := testSystem(3)
	if _, err := Partition(a, b[:2], 2); err == nil {
		t.Error("mismatched rhs accepted")
	}
	if _, err := Partition(a, b, 0); err == nil {
		t.Error("zero blocks accepted")
	}
	// More blocks than rows clamps.
	d, err := Partition(a, b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d.P != a.N {
		t.Errorf("P = %d, want clamped %d", d.P, a.N)
	}
}

func TestParallelCGMatchesSequential(t *testing.T) {
	a, b, want := testSystem(8)
	rt := newSolveRuntime(t, 4, 5)
	d, _ := Partition(a, b, 8)
	opts := linalg.DefaultIterOpts(a.N)
	x, stats, err := rt.ParallelCG(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if diff := linalg.MaxAbsDiff(x, want); diff > 1e-6 {
		t.Errorf("parallel CG error %g", diff)
	}
	// Same iterate count as the sequential algorithm (identical
	// arithmetic order within blocks is not guaranteed, but counts
	// should be close; allow ±2).
	seqSolver, err := linalg.Backend(linalg.BackendCG)
	if err != nil {
		t.Fatal(err)
	}
	_, seqInfo, err := seqSolver.Solve(context.Background(), a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	seqIters := seqInfo.Iterations
	if stats.Iterations < seqIters-2 || stats.Iterations > seqIters+2 {
		t.Errorf("parallel %d vs sequential %d iterations", stats.Iterations, seqIters)
	}
	if stats.Flops == 0 || stats.Makespan == 0 || stats.HaloWords == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ResidualNorm > opts.Tol {
		t.Errorf("residual %g above tol", stats.ResidualNorm)
	}
}

func TestParallelCGZeroRHS(t *testing.T) {
	a, _, _ := testSystem(4)
	rt := newSolveRuntime(t, 2, 4)
	d, _ := Partition(a, linalg.NewVector(a.N), 4)
	x, stats, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(a.N))
	if err != nil || stats.Iterations != 0 {
		t.Fatalf("zero rhs: %v, %+v", err, stats)
	}
	if linalg.NormInf(x) != 0 {
		t.Error("zero rhs gave nonzero solution")
	}
}

func TestParallelCGConvergenceBudget(t *testing.T) {
	a, b, _ := testSystem(8)
	rt := newSolveRuntime(t, 2, 4)
	d, _ := Partition(a, b, 4)
	opts := linalg.DefaultIterOpts(a.N)
	opts.MaxIter = 2
	opts.Tol = 1e-15
	if _, _, err := rt.ParallelCG(context.Background(), d, opts); err == nil {
		t.Error("budget exhaustion not reported")
	}
}

func TestParallelCGMoreWorkersReduceMakespan(t *testing.T) {
	// The speedup shape of E2: with communication costs bounded, more
	// clusters must cut the simulated completion time of a large solve.
	a, b, _ := testSystem(16)
	opts := linalg.DefaultIterOpts(a.N)

	run := func(clusters, workers int) int64 {
		rt := newSolveRuntime(t, clusters, 5)
		d, _ := Partition(a, b, workers)
		_, stats, err := rt.ParallelCG(context.Background(), d, opts)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	t1 := run(1, 1)
	t8 := run(4, 8)
	if t8 >= t1 {
		t.Errorf("8 workers (%d cycles) not faster than 1 (%d cycles)", t8, t1)
	}
	speedup := float64(t1) / float64(t8)
	if speedup < 2 {
		t.Errorf("speedup %0.2f with 8 workers is implausibly low", speedup)
	}
}

func TestParallelJacobiMatchesSequential(t *testing.T) {
	a, b, want := testSystem(5)
	rt := newSolveRuntime(t, 2, 5)
	d, _ := Partition(a, b, 4)
	opts := linalg.DefaultIterOpts(a.N)
	opts.MaxIter = 20000
	opts.Tol = 1e-9
	x, stats, err := rt.ParallelJacobi(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if diff := linalg.MaxAbsDiff(x, want); diff > 1e-6 {
		t.Errorf("parallel Jacobi error %g", diff)
	}
	if stats.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

func TestParallelJacobiZeroDiagonal(t *testing.T) {
	m, err := linalg.NewCSRFromTriplets(2, []linalg.Triplet{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rt := newSolveRuntime(t, 1, 3)
	d, _ := Partition(m, linalg.Vector{1, 1}, 2)
	if _, _, err := rt.ParallelJacobi(context.Background(), d, linalg.DefaultIterOpts(2)); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestParallelCGSurvivesFailedPEs(t *testing.T) {
	// E7's shape: fail PEs, re-solve on the degraded machine, still
	// converge to the right answer.
	a, b, want := testSystem(8)
	rt := newSolveRuntime(t, 4, 5)
	m := rt.Machine()
	// Fail half the workers in clusters 1 and 2.
	m.FailPE(m.Cluster(1).Workers[0].ID)
	m.FailPE(m.Cluster(2).Workers[0].ID)
	m.FailPE(m.Cluster(2).Workers[1].ID)
	d, _ := Partition(a, b, 8)
	x, stats, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(a.N))
	if err != nil {
		t.Fatal(err)
	}
	if diff := linalg.MaxAbsDiff(x, want); diff > 1e-6 {
		t.Errorf("degraded solve error %g", diff)
	}
	if stats.Makespan == 0 {
		t.Error("no makespan")
	}
}

func TestParallelCGAllWorkersFailed(t *testing.T) {
	a, b, _ := testSystem(4)
	rt := newSolveRuntime(t, 2, 3)
	for _, p := range rt.Machine().PEs() {
		if !p.Kernel {
			rt.Machine().FailPE(p.ID)
		}
	}
	d, _ := Partition(a, b, 4)
	if _, _, err := rt.ParallelCG(context.Background(), d, linalg.DefaultIterOpts(a.N)); err == nil {
		t.Error("solve on fully failed machine succeeded")
	}
}

func TestHaloCommunicationScalesWithPerimeterNotArea(t *testing.T) {
	// E1's shape: for an n×n grid on fixed P, halo words per iteration
	// grow ~O(n) while flops grow ~O(n²).
	haloFor := func(n int) (halo int64, nnz int) {
		a := poisson2D(n)
		b := linalg.NewVector(a.N)
		d, _ := Partition(a, b, 4)
		return d.TotalHaloWords(), a.NNZ()
	}
	h16, nnz16 := haloFor(16)
	h32, nnz32 := haloFor(32)
	haloGrowth := float64(h32) / float64(h16)
	flopGrowth := float64(nnz32) / float64(nnz16)
	if haloGrowth > 2.5 {
		t.Errorf("halo growth %0.2f, want ~2 (perimeter)", haloGrowth)
	}
	if flopGrowth < 3.5 {
		t.Errorf("work growth %0.2f, want ~4 (area)", flopGrowth)
	}
}

func TestParallelDotMatchesSequential(t *testing.T) {
	rt, root := newTestRuntime(t)
	n := 64
	x, _ := root.NewVectorArray("px", n)
	y, _ := root.NewVectorArray("py", n)
	var wantDot float64
	for i := 0; i < n; i++ {
		xi, yi := float64(i+1), float64(2*i-3)
		x.Set(root, i, 0, xi)
		y.Set(root, i, 0, yi)
		wantDot += xi * yi
	}
	got, err := root.ParallelDot(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-wantDot) > 1e-9*math.Abs(wantDot) {
		t.Errorf("ParallelDot = %g, want %g", got, wantDot)
	}
	// p clamped to n and to >=1.
	if _, err := root.ParallelDot(x, y, 0); err != nil {
		t.Errorf("p=0: %v", err)
	}
	if _, err := root.ParallelDot(x, y, 1000); err != nil {
		t.Errorf("p>n: %v", err)
	}
	_ = rt
}

func TestParallelDotShapeErrors(t *testing.T) {
	_, root := newTestRuntime(t)
	x, _ := root.NewVectorArray("sx", 4)
	m, _ := root.NewArray("sm", 4, 2)
	if _, err := root.ParallelDot(x, m, 2); err == nil {
		t.Error("matrix operand accepted")
	}
}

func TestParallelAxpyAndNorm(t *testing.T) {
	_, root := newTestRuntime(t)
	n := 32
	x, _ := root.NewVectorArray("ax", n)
	y, _ := root.NewVectorArray("ay", n)
	for i := 0; i < n; i++ {
		x.Set(root, i, 0, 1)
		y.Set(root, i, 0, float64(i))
	}
	if err := root.ParallelAxpy(2, x, y, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, _ := y.At(root, i, 0)
		if v != float64(i)+2 {
			t.Fatalf("y[%d] = %g", i, v)
		}
	}
	norm, err := root.ParallelNorm2(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-math.Sqrt(float64(n))) > 1e-12 {
		t.Errorf("norm = %g", norm)
	}
}

func TestRemoteCallExecutesAtDataLocation(t *testing.T) {
	rt, root := newTestRuntime(t)
	a, _ := root.NewArray("rdata", 8, 1)
	for i := 0; i < 8; i++ {
		a.Set(root, i, 0, float64(i+1))
	}
	w, _ := RowWindow(a, 0, 8)
	var calleeCluster int
	err := rt.RegisterProcedure("sum", 128, 16, func(callee *TaskCtx, w *Window, args []float64) ([]float64, error) {
		calleeCluster = callee.PE().Cluster
		v := w.Read(callee)
		var s float64
		for _, x := range v {
			s += x
		}
		callee.Charge(int64(len(v)))
		return []float64{s}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := root.RemoteCall("sum", w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 36 {
		t.Errorf("remote sum = %v", res)
	}
	if calleeCluster != a.HomeCluster() {
		t.Errorf("procedure ran on cluster %d, data lives on %d", calleeCluster, a.HomeCluster())
	}
	// Results were also delivered through the SPVM remote-return path.
	rec := rt.Kernel(root.pe.Cluster).Task(root.ID)
	if len(rec.Results) != 1 || rec.Results[0] != 36 {
		t.Errorf("kernel-level results = %v", rec.Results)
	}
}

func TestRemoteCallUnknownProcedure(t *testing.T) {
	_, root := newTestRuntime(t)
	a, _ := root.NewArray("rc", 2, 2)
	w, _ := NewWindow(a, 0, 1, 0, 1)
	if _, err := root.RemoteCall("ghost", w, nil); err == nil {
		t.Error("unknown procedure accepted")
	}
}

func TestRemoteCallBodyErrorPropagates(t *testing.T) {
	rt, root := newTestRuntime(t)
	a, _ := root.NewArray("re", 2, 2)
	w, _ := NewWindow(a, 0, 1, 0, 1)
	rt.RegisterProcedure("bad", 64, 8, func(callee *TaskCtx, w *Window, args []float64) ([]float64, error) {
		return nil, errTest
	})
	if _, err := root.RemoteCall("bad", w, nil); err == nil {
		t.Error("procedure error not propagated")
	}
}

var errTest = errorString("test error")

type errorString string

func (e errorString) Error() string { return string(e) }

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
