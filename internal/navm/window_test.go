package navm

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/hgraph"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/spvm"
)

func TestNewArrayAndOwnership(t *testing.T) {
	rt, root := newTestRuntime(t)
	a, err := root.NewArray("K", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Words() != 16 || a.HomeCluster() != root.pe.Cluster {
		t.Errorf("array %+v", a)
	}
	if rt.Lookup("K") != a {
		t.Error("directory lookup failed")
	}
	// Owner direct access works.
	if err := a.Set(root, 1, 2, 7.5); err != nil {
		t.Fatal(err)
	}
	v, err := a.At(root, 1, 2)
	if err != nil || v != 7.5 {
		t.Errorf("At = %g, %v", v, err)
	}
	// Shared memory accounted.
	if used := rt.Machine().Cluster(a.HomeCluster()).Memory.Used(); used != 16 {
		t.Errorf("cluster memory used = %d", used)
	}
	// Duplicate name rejected.
	if _, err := root.NewArray("K", 2, 2); err == nil {
		t.Error("duplicate array name accepted")
	}
	// Free releases memory.
	if err := a.Free(root); err != nil {
		t.Fatal(err)
	}
	if used := rt.Machine().Cluster(root.pe.Cluster).Memory.Used(); used != 0 {
		t.Errorf("memory after free = %d", used)
	}
	if err := a.Free(root); err == nil {
		t.Error("double free accepted")
	}
}

func TestArrayBadShapes(t *testing.T) {
	_, root := newTestRuntime(t)
	for _, shape := range [][2]int{{0, 4}, {4, 0}, {-1, 4}} {
		if _, err := root.NewArray("bad", shape[0], shape[1]); err == nil {
			t.Errorf("shape %v accepted", shape)
		}
	}
}

func TestNonOwnerDirectAccessDenied(t *testing.T) {
	rt, root := newTestRuntime(t)
	a, _ := root.NewArray("owned", 4, 4)
	errCh := make(chan error, 3)
	rt.RegisterTaskType("intruder", 32, 4, func(tc *TaskCtx, replica int) error {
		errCh <- a.Set(tc, 0, 0, 1)
		_, err := a.At(tc, 0, 0)
		errCh <- err
		errCh <- a.FillRow(tc, 0, make([]float64, 4))
		return nil
	})
	g, _ := root.Initiate("intruder", 1, nil)
	if err := g.Wait(root); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := <-errCh; !errors.Is(err, ErrNotOwner) {
			t.Errorf("non-owner access %d: %v", i, err)
		}
	}
}

func TestWindowReadWriteRoundTrip(t *testing.T) {
	_, root := newTestRuntime(t)
	a, _ := root.NewArray("m", 4, 5)
	for i := 0; i < 4; i++ {
		row := make([]float64, 5)
		for j := range row {
			row[j] = float64(10*i + j)
		}
		a.FillRow(root, i, row)
	}
	w, err := NewWindow(a, 1, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := w.Read(root)
	want := linalg.Vector{11, 12, 13, 21, 22, 23}
	if linalg.MaxAbsDiff(got, want) != 0 {
		t.Errorf("window read %v, want %v", got, want)
	}
	if err := w.Write(root, linalg.Vector{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.At(root, 2, 3); v != 6 {
		t.Errorf("after write a[2][3] = %g", v)
	}
	if err := w.Write(root, linalg.Vector{1}); err == nil {
		t.Error("size-mismatched write accepted")
	}
	if v, err := w.ReadAt(root, 0, 1); err != nil || v != 2 {
		t.Errorf("ReadAt = %g, %v", v, err)
	}
	if _, err := w.ReadAt(root, 5, 0); err == nil {
		t.Error("out-of-window ReadAt accepted")
	}
}

func TestWindowKindsAndValidation(t *testing.T) {
	_, root := newTestRuntime(t)
	a, _ := root.NewArray("v", 6, 4)
	if w, err := RowWindow(a, 2, 2); err != nil || w.Kind != WinRow || w.Cols != 4 {
		t.Errorf("RowWindow %+v, %v", w, err)
	}
	if w, err := ColWindow(a, 1, 2); err != nil || w.Kind != WinCol || w.Rows != 6 {
		t.Errorf("ColWindow %+v, %v", w, err)
	}
	bad := []struct{ r0, r, c0, c int }{
		{-1, 1, 0, 1}, {0, 0, 0, 1}, {0, 7, 0, 1}, {0, 1, 3, 2},
	}
	for _, b := range bad {
		if _, err := NewWindow(a, b.r0, b.r, b.c0, b.c); err == nil {
			t.Errorf("bad window %+v accepted", b)
		}
	}
}

func TestSubWindowComposition(t *testing.T) {
	_, root := newTestRuntime(t)
	a, _ := root.NewArray("s", 8, 8)
	w, _ := NewWindow(a, 2, 4, 2, 4)
	s, err := w.Sub(1, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Row0 != 3 || s.Col0 != 3 || s.Rows != 2 || s.Cols != 2 {
		t.Errorf("sub = %+v", s)
	}
	if _, err := w.Sub(3, 3, 0, 1); err == nil {
		t.Error("overflowing sub-window accepted")
	}
}

// Property: partitioning a window twice equals one direct sub-window.
func TestQuickSubWindowAssociative(t *testing.T) {
	_, root := newTestRuntime(t)
	a, _ := root.NewArray("q", 16, 16)
	w, _ := NewWindow(a, 0, 16, 0, 16)
	f := func(r1, c1, r2, c2 uint8) bool {
		or1, oc1 := int(r1%8), int(c1%8)
		or2, oc2 := int(r2%4), int(c2%4)
		s1, err := w.Sub(or1, 8, oc1, 8)
		if err != nil {
			return false
		}
		s2, err := s1.Sub(or2, 4, oc2, 4)
		if err != nil {
			return false
		}
		direct, err := w.Sub(or1+or2, 4, oc1+oc2, 4)
		if err != nil {
			return false
		}
		return s2.Row0 == direct.Row0 && s2.Col0 == direct.Col0 &&
			s2.Rows == direct.Rows && s2.Cols == direct.Cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWindowDescRoundTripAndGrammar(t *testing.T) {
	rt, root := newTestRuntime(t)
	a, _ := root.NewArray("g", 10, 10)
	w, _ := NewWindow(a, 2, 3, 4, 5)
	d := w.Desc()
	w2, err := rt.WindowFromDesc(d)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Row0 != w.Row0 || w2.Rows != w.Rows || w2.Col0 != w.Col0 || w2.Cols != w.Cols || w2.Arr != a {
		t.Errorf("desc round trip: %+v vs %+v", w2, w)
	}
	// The descriptor satisfies the formal window grammar via the SPVM
	// message embedding.
	msg := descMessage(d)
	if errs := hgraph.SPVMMessageGrammar().Validate(msg.ToHGraph()); len(errs) > 0 {
		t.Errorf("window descriptor violates grammar: %v", errs)
	}
	// Unknown array rejected.
	d2 := *d
	d2.Array = "ghost"
	if _, err := rt.WindowFromDesc(&d2); err == nil {
		t.Error("window onto unknown array accepted")
	}
}

func TestRemoteVsLocalWindowAccounting(t *testing.T) {
	rt, root := newTestRuntime(t)
	a, _ := root.NewArray("acct", 16, 1)
	w, _ := RowWindow(a, 0, 16)

	// Local read by the owner.
	w.Read(root)
	local := rt.Metrics.Get(metrics.LevelNAVM, metrics.CtrLocalAccesses)
	if local < 1 {
		t.Errorf("local_accesses = %d", local)
	}
	if got := rt.Metrics.Get(metrics.LevelNAVM, metrics.CtrRemoteAccesses); got != 0 {
		t.Errorf("remote_accesses before remote read = %d", got)
	}

	// Force a reader onto the other cluster.
	homeCluster := a.HomeCluster()
	var remoteReads int64
	rt.RegisterTaskType("reader", 32, 4, func(tc *TaskCtx, replica int) error {
		if tc.pe.Cluster != homeCluster {
			w.Read(tc)
			remoteReads++
		}
		return nil
	})
	// Spawn enough replications that at least one lands off-cluster.
	g, _ := root.Initiate("reader", 8, nil)
	if err := g.Wait(root); err != nil {
		t.Fatal(err)
	}
	if remoteReads == 0 {
		t.Fatal("no replication landed on a remote cluster")
	}
	if got := rt.Metrics.Get(metrics.LevelNAVM, metrics.CtrRemoteAccesses); got != remoteReads {
		t.Errorf("remote_accesses = %d, want %d", got, remoteReads)
	}
	// Remote reads crossed the simulated network.
	if rt.Machine().Network().TotalMessages() == 0 {
		t.Error("remote window reads generated no network traffic")
	}
}

// descMessage wraps a window descriptor in a remote-call message, the only
// message type carrying windows.
func descMessage(d *spvm.WindowDesc) *spvm.Message {
	return &spvm.Message{Type: spvm.MsgRemoteCall, Procedure: "p", Caller: 1, Window: d}
}
