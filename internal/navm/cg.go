package navm

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/spvm"
)

// DistSystem is a linear system A*x = b partitioned into contiguous row
// blocks over P logical workers, with a precomputed communication plan:
// commWords[p][q] counts the distinct columns in worker q's range that
// worker p's rows reference — the words p must fetch from q through a
// window before each matrix-vector product.  Irregular meshes give
// irregular plans, exactly the "irregular communication patterns" the
// FEM-2 hardware requirements anticipate.
type DistSystem struct {
	A *linalg.CSR
	B linalg.Vector
	P int
	// Lo[p], Hi[p] bound worker p's row range.
	Lo, Hi []int
	// CommWords[p][q] is the halo size p reads from q per SpMV.
	CommWords [][]int64
}

// Partition splits the system into p contiguous row blocks and builds the
// communication plan.
func Partition(a *linalg.CSR, b linalg.Vector, p int) (*DistSystem, error) {
	if a.N != len(b) {
		return nil, fmt.Errorf("navm: partition order %d with rhs %d", a.N, len(b))
	}
	if p < 1 {
		return nil, fmt.Errorf("navm: partition into %d blocks", p)
	}
	if p > a.N {
		p = a.N
	}
	d := &DistSystem{A: a, B: b, P: p, Lo: make([]int, p), Hi: make([]int, p)}
	ownerOf := make([]int, a.N)
	for i := 0; i < p; i++ {
		d.Lo[i], d.Hi[i] = blockRange(a.N, p, i)
		for r := d.Lo[i]; r < d.Hi[i]; r++ {
			ownerOf[r] = i
		}
	}
	d.CommWords = make([][]int64, p)
	for i := range d.CommWords {
		d.CommWords[i] = make([]int64, p)
	}
	for pi := 0; pi < p; pi++ {
		seen := map[int]bool{}
		for r := d.Lo[pi]; r < d.Hi[pi]; r++ {
			for _, c := range a.RowColumns(r) {
				q := ownerOf[c]
				if q != pi && !seen[c] {
					seen[c] = true
					d.CommWords[pi][q]++
				}
			}
		}
	}
	return d, nil
}

// TotalHaloWords returns the per-SpMV halo exchange volume summed over all
// worker pairs.
func (d *DistSystem) TotalHaloWords() int64 {
	var t int64
	for _, row := range d.CommWords {
		for _, w := range row {
			t += w
		}
	}
	return t
}

// SolveStats reports the simulated costs of a distributed solve.
type SolveStats struct {
	Iterations int
	// Flops is the total floating point work.
	Flops int64
	// HaloWords is the total halo words exchanged.
	HaloWords int64
	// Makespan is the simulated completion time in cycles.
	Makespan int64
	// ResidualNorm is the final relative residual.
	ResidualNorm float64
}

// workerPEs picks P live worker PEs for a solve: the least-loaded PEs
// (smallest clocks) first, interleaved across clusters on ties.  Picking
// by load lets independent solves on one machine overlap on disjoint PEs
// — the kernel assigns "available PEs".  An error means the machine is
// too degraded.
func workerPEs(m *arch.Machine, p int) ([]*arch.PE, error) {
	live := m.LiveWorkers()
	if len(live) == 0 {
		return nil, arch.ErrNoWorkers
	}
	per := m.Config().PEsPerCluster
	sorted := make([]*arch.PE, len(live))
	copy(sorted, live)
	sort.SliceStable(sorted, func(i, j int) bool {
		ci, cj := sorted[i].Clock(), sorted[j].Clock()
		if ci != cj {
			return ci < cj
		}
		// On equal load, interleave clusters: position within the
		// cluster first, then cluster id.
		pi, pj := sorted[i].ID%per, sorted[j].ID%per
		if pi != pj {
			return pi < pj
		}
		return sorted[i].Cluster < sorted[j].Cluster
	})
	out := make([]*arch.PE, 0, p)
	for len(out) < p {
		for _, w := range sorted {
			out = append(out, w)
			if len(out) == p {
				break
			}
		}
	}
	return out, nil
}

// haloExchange charges the per-iteration halo communication: worker p
// fetches CommWords[p][q] words from worker q's cluster through a block
// window (one message per non-empty pair).
func (d *DistSystem) haloExchange(rt *Runtime, pes []*arch.PE) int64 {
	var words int64
	for p := 0; p < d.P; p++ {
		for q := 0; q < d.P; q++ {
			w := d.CommWords[p][q]
			if w == 0 {
				continue
			}
			rt.machine.RemoteFetch(pes[p].ID, pes[q].Cluster, w)
			if pes[p].Cluster != pes[q].Cluster {
				rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrRemoteAccesses, 1)
				rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
				rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgWords, w)
			} else {
				rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrLocalAccesses, 1)
			}
			words += w
		}
	}
	return words
}

// spawnSolverTasks runs the SPVM side of a distributed solve: each
// cluster hosting workers receives one initiate message creating that
// cluster's solver task replications (activation records in the kernel
// heap, entries in the ready queue), and the returned cleanup sends the
// matching terminate-and-notify-parent messages.  The numerical phases
// are then costed directly on the PEs; this keeps the kernel-level task
// life cycle faithful without simulating every inner loop as messages.
func (rt *Runtime) spawnSolverTasks(pes []*arch.PE) func() {
	counts := map[int]int64{}
	var clusterOrder []int
	for _, pe := range pes {
		if counts[pe.Cluster] == 0 {
			clusterOrder = append(clusterOrder, pe.Cluster)
		}
		counts[pe.Cluster]++
	}
	type spawned struct {
		kern *spvm.Kernel
		ids  []spvm.TaskID
	}
	var all []spawned
	for _, c := range clusterOrder {
		kern := rt.kernels[c]
		ids, err := kern.Handle(&spvm.Message{
			Type: spvm.MsgInitiate, TaskType: solverType,
			Replications: counts[c], Parent: 0,
		})
		if err != nil {
			continue // heap pressure: the solve still runs, uninstrumented
		}
		for _, id := range ids {
			kern.Ready.Remove(id)
			if rec := kern.Task(id); rec != nil {
				rec.State = spvm.TaskRunning
			}
		}
		all = append(all, spawned{kern: kern, ids: ids})
	}
	return func() {
		for _, s := range all {
			for _, id := range s.ids {
				s.kern.Handle(&spvm.Message{Type: spvm.MsgTerminate, Task: id, Parent: 0})
			}
		}
	}
}

// SolveWorkers exposes the solver placement policy: the P least-loaded
// live worker PEs, interleaved across clusters on ties.  Substructure
// analysis and other layer-above schedulers use it to spread independent
// work the same way the distributed solvers do.
func (rt *Runtime) SolveWorkers(p int) ([]*arch.PE, error) {
	return workerPEs(rt.machine, p)
}

// finalizeStats folds the per-worker flop counts into the solve stats and
// stamps the simulated makespan; it runs on both success and
// budget-exhaustion paths so callers always see the true cost.
func finalizeStats(rt *Runtime, stats *SolveStats, st []linalg.Stats) {
	stats.Flops = 0
	for w := range st {
		stats.Flops += st[w].Flops
	}
	rt.Metrics.AddFlops(metrics.LevelNAVM, stats.Flops)
	stats.Makespan = rt.machine.Makespan()
}

// barrier synchronizes the worker PEs (the reduction/synchronisation point
// after each parallel phase).
func barrier(rt *Runtime, pes []*arch.PE) {
	ids := make([]int, len(pes))
	for i, p := range pes {
		ids[i] = p.ID
	}
	rt.machine.Barrier(ids)
}

// ParallelCG solves the distributed system by conjugate gradients on P
// simulated workers.  The numerics are exact (the returned solution
// matches the sequential solver to rounding); the processing, storage and
// communication costs accrue on the simulated machine: each worker's
// flops advance its own PE clock, each halo word crosses the network, and
// each inner product costs a barrier — reproducing the Adams–Voigt
// analysis of the finite element process on FEM-class hardware.  The
// iteration loop polls ctx, so a cancelled solve stops promptly with an
// error wrapping errs.ErrCancelled.
func (rt *Runtime) ParallelCG(ctx context.Context, d *DistSystem, opts linalg.IterOpts) (linalg.Vector, SolveStats, error) {
	var stats SolveStats
	pes, err := workerPEs(rt.machine, d.P)
	if err != nil {
		return nil, stats, err
	}
	defer rt.spawnSolverTasks(pes)()
	n := d.A.N
	// Same defaults as the sequential cg backend.
	opts = linalg.IterDefaults(opts, n, 10)
	st := make([]linalg.Stats, d.P) // per-worker flop counts

	x := linalg.NewVector(n)
	r := d.B.Clone()
	p := r.Clone()
	ap := linalg.NewVector(n)

	// Distributed storage: each worker owns its block of x, r, p, ap
	// (4 vectors) plus its matrix rows.
	for w := 0; w < d.P; w++ {
		rows := d.Hi[w] - d.Lo[w]
		var nnz int
		for i := d.Lo[w]; i < d.Hi[w]; i++ {
			nnz += d.A.RowNNZ(i)
		}
		rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrWordsAlloc, int64(4*rows+2*nnz))
	}

	bnorm := math.Sqrt(dotBlocks(d, pes, st, r, r))
	if bnorm == 0 {
		return x, stats, nil
	}
	barrier(rt, pes)
	rr := dotBlocks(d, pes, st, r, r)
	barrier(rt, pes)

	maxIter := opts.MaxIter
	for iter := 1; iter <= maxIter; iter++ {
		if err := linalg.CheckCancel(ctx, iter); err != nil {
			finalizeStats(rt, &stats, st)
			return x, stats, err
		}
		// Halo exchange then local SpMV rows, each worker's flops on
		// its own PE.
		stats.HaloWords += d.haloExchange(rt, pes)
		for w := 0; w < d.P; w++ {
			before := st[w].Flops
			d.A.MulVecRows(p, ap, d.Lo[w], d.Hi[w], &st[w])
			pes[w].Charge((st[w].Flops - before) * CyclesPerFlop)
		}
		barrier(rt, pes)

		pap := dotBlocks(d, pes, st, p, ap)
		barrier(rt, pes)
		if pap <= 0 {
			return nil, stats, fmt.Errorf("navm: CG breakdown, pᵀAp = %g", pap)
		}
		alpha := rr / pap
		axpyBlocks(d, pes, st, alpha, p, x)
		axpyBlocks(d, pes, st, -alpha, ap, r)
		rrNew := dotBlocks(d, pes, st, r, r)
		barrier(rt, pes)

		stats.Iterations = iter
		resid := math.Sqrt(rrNew) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if resid <= opts.Tol {
			stats.ResidualNorm = resid
			break
		}
		if iter == maxIter {
			stats.ResidualNorm = resid
			finalizeStats(rt, &stats, st)
			return x, stats, &linalg.ConvergenceError{Backend: "parallel-cg", Iterations: maxIter, Residual: resid}
		}
		beta := rrNew / rr
		for w := 0; w < d.P; w++ {
			for i := d.Lo[w]; i < d.Hi[w]; i++ {
				p[i] = r[i] + beta*p[i]
			}
			st[w].Flops += int64(2 * (d.Hi[w] - d.Lo[w]))
			rt.machine.Compute(pes[w].ID, int64(2*(d.Hi[w]-d.Lo[w]))*CyclesPerFlop)
		}
		barrier(rt, pes)
		rr = rrNew
	}
	finalizeStats(rt, &stats, st)
	return x, stats, nil
}

// dotBlocks computes a distributed inner product: each worker's partial
// runs on its own PE, then one word per worker flows to worker 0 for the
// reduction.
func dotBlocks(d *DistSystem, pes []*arch.PE, st []linalg.Stats, a, b linalg.Vector) float64 {
	var sum float64
	for w := 0; w < d.P; w++ {
		var s float64
		for i := d.Lo[w]; i < d.Hi[w]; i++ {
			s += a[i] * b[i]
		}
		flops := int64(2 * (d.Hi[w] - d.Lo[w]))
		st[w].Flops += flops
		pes[w].Charge(flops * CyclesPerFlop)
		sum += s
	}
	return sum
}

// axpyBlocks computes y += alpha*x blockwise on the workers' PEs.
func axpyBlocks(d *DistSystem, pes []*arch.PE, st []linalg.Stats, alpha float64, x, y linalg.Vector) {
	for w := 0; w < d.P; w++ {
		for i := d.Lo[w]; i < d.Hi[w]; i++ {
			y[i] += alpha * x[i]
		}
		flops := int64(2 * (d.Hi[w] - d.Lo[w]))
		st[w].Flops += flops
		pes[w].Charge(flops * CyclesPerFlop)
	}
}

// KernelCycles measures the simulated cost of the three NAVM linear
// algebra kernels on the distributed system's P workers: one
// halo-exchanged SpMV, one inner product (with its one-word-per-worker
// reduction and barrier), and one axpy (no synchronisation at all).  The
// axpy/dot contrast isolates the reduction cost that limits CG
// scalability.
func (rt *Runtime) KernelCycles(d *DistSystem) (spmv, dot, axpy int64, err error) {
	pes, err := workerPEs(rt.machine, d.P)
	if err != nil {
		return 0, 0, 0, err
	}
	n := d.A.N
	st := make([]linalg.Stats, d.P)
	x := linalg.NewVector(n)
	y := linalg.NewVector(n)
	x.Fill(1)
	y.Fill(2)
	out := linalg.NewVector(n)

	// Axpy: pure local work, no barrier.
	m0 := rt.machine.Makespan()
	axpyBlocks(d, pes, st, 2, x, y)
	axpy = rt.machine.Makespan() - m0

	// Dot: local partials, one word per worker to the reducer, barrier.
	m1 := rt.machine.Makespan()
	dotBlocks(d, pes, st, x, y)
	for w := 1; w < d.P; w++ {
		rt.machine.RemoteFetch(pes[0].ID, pes[w].Cluster, 1)
	}
	barrier(rt, pes)
	dot = rt.machine.Makespan() - m1

	// SpMV: halo exchange, local rows, barrier.
	m2 := rt.machine.Makespan()
	d.haloExchange(rt, pes)
	for w := 0; w < d.P; w++ {
		before := st[w].Flops
		d.A.MulVecRows(x, out, d.Lo[w], d.Hi[w], &st[w])
		pes[w].Charge((st[w].Flops - before) * CyclesPerFlop)
	}
	barrier(rt, pes)
	spmv = rt.machine.Makespan() - m2
	return spmv, dot, axpy, nil
}

// ParallelJacobi solves the distributed system by Jacobi iteration on P
// simulated workers — the maximally parallel method the original Finite
// Element Machine favoured.  Same cost model as ParallelCG, but the only
// synchronisation per iteration is the halo exchange and one barrier
// (no inner products except the convergence check).  The iteration loop
// polls ctx like ParallelCG does.
func (rt *Runtime) ParallelJacobi(ctx context.Context, d *DistSystem, opts linalg.IterOpts) (linalg.Vector, SolveStats, error) {
	var stats SolveStats
	pes, err := workerPEs(rt.machine, d.P)
	if err != nil {
		return nil, stats, err
	}
	defer rt.spawnSolverTasks(pes)()
	n := d.A.N
	// Same defaults as the sequential jacobi backend.
	opts = linalg.IterDefaults(opts, n, 200)
	st := make([]linalg.Stats, d.P)
	diag := d.A.Diagonal()
	for i, v := range diag {
		if v == 0 {
			return nil, stats, fmt.Errorf("navm: Jacobi zero diagonal at %d", i)
		}
	}
	x := linalg.NewVector(n)
	xNew := linalg.NewVector(n)
	bnorm := math.Sqrt(dotBlocks(d, pes, st, d.B, d.B))
	if bnorm == 0 {
		return x, stats, nil
	}
	maxIter := opts.MaxIter
	r := linalg.NewVector(n)
	for iter := 1; iter <= maxIter; iter++ {
		if err := linalg.CheckCancel(ctx, iter); err != nil {
			finalizeStats(rt, &stats, st)
			return x, stats, err
		}
		stats.HaloWords += d.haloExchange(rt, pes)
		for w := 0; w < d.P; w++ {
			var flops int64
			for i := d.Lo[w]; i < d.Hi[w]; i++ {
				s := d.B[i]
				for k := d.A.RowPtr[i]; k < d.A.RowPtr[i+1]; k++ {
					j := d.A.ColIdx[k]
					if j != i {
						s -= d.A.Val[k] * x[j]
					}
				}
				xNew[i] = s / diag[i]
				flops += int64(2*d.A.RowNNZ(i) + 1)
			}
			st[w].Flops += flops
			pes[w].Charge(flops * CyclesPerFlop)
		}
		barrier(rt, pes)
		x, xNew = xNew, x
		// Convergence check: distributed residual.
		for w := 0; w < d.P; w++ {
			before := st[w].Flops
			d.A.MulVecRows(x, r, d.Lo[w], d.Hi[w], &st[w])
			for i := d.Lo[w]; i < d.Hi[w]; i++ {
				r[i] = d.B[i] - r[i]
			}
			st[w].Flops += int64(d.Hi[w] - d.Lo[w])
			pes[w].Charge((st[w].Flops - before) * CyclesPerFlop)
		}
		resid := math.Sqrt(dotBlocks(d, pes, st, r, r)) / bnorm
		barrier(rt, pes)
		stats.Iterations = iter
		if opts.OnIteration != nil {
			opts.OnIteration(iter, resid)
		}
		if resid <= opts.Tol {
			stats.ResidualNorm = resid
			break
		}
		if iter == maxIter {
			stats.ResidualNorm = resid
			finalizeStats(rt, &stats, st)
			return x, stats, &linalg.ConvergenceError{Backend: "parallel-jacobi", Iterations: maxIter, Residual: resid}
		}
	}
	finalizeStats(rt, &stats, st)
	return x, stats, nil
}
