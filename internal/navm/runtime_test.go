package navm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/spvm"
	"repro/internal/trace"
)

func newTestRuntime(t *testing.T) (*Runtime, *TaskCtx) {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Clusters = 2
	cfg.PEsPerCluster = 4
	rt := NewRuntime(arch.MustNew(cfg))
	rt.AttachInstrumentation(metrics.NewCollector(), trace.New())
	root, err := rt.NewRootTask()
	if err != nil {
		t.Fatal(err)
	}
	return rt, root
}

func TestRootTaskRegistered(t *testing.T) {
	rt, root := newTestRuntime(t)
	if root.ID <= 0 {
		t.Errorf("root id = %d", root.ID)
	}
	if rt.Task(root.ID) != root {
		t.Error("root not in task table")
	}
	rec := rt.Kernel(root.pe.Cluster).Task(root.ID)
	if rec == nil || rec.State != spvm.TaskRunning {
		t.Errorf("kernel record %+v", rec)
	}
}

func TestInitiateRunsReplications(t *testing.T) {
	rt, root := newTestRuntime(t)
	var ran int64
	err := rt.RegisterTaskType("count", 128, 16, func(tc *TaskCtx, replica int) error {
		atomic.AddInt64(&ran, 1)
		tc.Charge(100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := root.Initiate("count", 6, []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(root); err != nil {
		t.Fatal(err)
	}
	if ran != 6 {
		t.Errorf("ran %d replications, want 6", ran)
	}
	if got := rt.Metrics.Get(metrics.LevelSPVM, metrics.CtrTasksInitiated); got != 6 {
		t.Errorf("tasks_initiated = %d", got)
	}
	// All children terminated: only root remains.
	if rt.LiveTasks() != 1 {
		t.Errorf("LiveTasks = %d", rt.LiveTasks())
	}
	// Flops were charged to simulated PEs.
	if rt.Machine().Makespan() == 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestInitiateUnknownType(t *testing.T) {
	_, root := newTestRuntime(t)
	if _, err := root.Initiate("nope", 1, nil); !errors.Is(err, ErrUnknownTaskType) {
		t.Errorf("want ErrUnknownTaskType, got %v", err)
	}
}

func TestTaskParamsAndReplicaIndex(t *testing.T) {
	rt, root := newTestRuntime(t)
	seen := make([]float64, 4)
	rt.RegisterTaskType("params", 64, 8, func(tc *TaskCtx, replica int) error {
		seen[replica] = tc.Param(0) + float64(replica)
		if tc.Param(99) != 0 {
			return fmt.Errorf("out-of-range param not zero")
		}
		if len(tc.Params()) != 1 {
			return fmt.Errorf("params len %d", len(tc.Params()))
		}
		return nil
	})
	g, _ := root.Initiate("params", 4, []float64{10})
	if err := g.Wait(root); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != 10+float64(i) {
			t.Errorf("replica %d saw %g", i, v)
		}
	}
}

func TestWaitPropagatesBodyError(t *testing.T) {
	rt, root := newTestRuntime(t)
	boom := errors.New("boom")
	rt.RegisterTaskType("fail", 64, 8, func(tc *TaskCtx, replica int) error {
		if replica == 2 {
			return boom
		}
		return nil
	})
	g, _ := root.Initiate("fail", 4, nil)
	if err := g.Wait(root); !errors.Is(err, boom) {
		t.Errorf("Wait = %v, want boom", err)
	}
}

func TestPauseResumeBetweenTasks(t *testing.T) {
	rt, root := newTestRuntime(t)
	var childID atomic.Int64
	resumedAt := make(chan struct{})
	rt.RegisterTaskType("pauser", 64, 8, func(tc *TaskCtx, replica int) error {
		childID.Store(int64(tc.ID))
		if err := tc.Pause(); err != nil {
			return err
		}
		close(resumedAt)
		return nil
	})
	g, err := root.Initiate("pauser", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the child is actually paused.
	deadline := time.After(5 * time.Second)
	for {
		id := spvm.TaskID(childID.Load())
		if id != 0 {
			if tcx := rt.Task(id); tcx != nil && tcx.Paused() {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatal("child never paused")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	id := spvm.TaskID(childID.Load())
	// The kernel also sees it paused.
	kern := rt.Task(id).kern
	if rec := kern.Task(id); rec.State != spvm.TaskPaused {
		t.Errorf("kernel state = %v", rec.State)
	}
	if err := root.Resume(id); err != nil {
		t.Fatal(err)
	}
	select {
	case <-resumedAt:
	case <-time.After(5 * time.Second):
		t.Fatal("child never resumed")
	}
	if err := g.Wait(root); err != nil {
		t.Fatal(err)
	}
}

func TestResumeUnknownTask(t *testing.T) {
	_, root := newTestRuntime(t)
	if err := root.Resume(spvm.TaskID(424242)); !errors.Is(err, spvm.ErrNoSuchTask) {
		t.Errorf("want ErrNoSuchTask, got %v", err)
	}
}

func TestForallRunsAllIterations(t *testing.T) {
	_, root := newTestRuntime(t)
	var sum int64
	err := root.Forall(10, func(tc *TaskCtx, i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Errorf("sum = %d, want 45", sum)
	}
}

func TestForallRejectsNonPositive(t *testing.T) {
	_, root := newTestRuntime(t)
	if err := root.Forall(0, func(tc *TaskCtx, i int) error { return nil }); err == nil {
		t.Error("Forall(0) accepted")
	}
}

func TestForallNested(t *testing.T) {
	_, root := newTestRuntime(t)
	var count int64
	err := root.Forall(3, func(outer *TaskCtx, i int) error {
		return outer.Forall(4, func(inner *TaskCtx, j int) error {
			atomic.AddInt64(&count, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Errorf("nested count = %d, want 12", count)
	}
}

func TestPardoRunsEachStatement(t *testing.T) {
	_, root := newTestRuntime(t)
	var a, b, c atomic.Int64
	err := root.Pardo(
		func(tc *TaskCtx) error { a.Store(1); return nil },
		func(tc *TaskCtx) error { b.Store(2); return nil },
		func(tc *TaskCtx) error { c.Store(3); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Error("pardo statements did not all run")
	}
	if err := root.Pardo(); err != nil {
		t.Errorf("empty Pardo: %v", err)
	}
}

func TestBroadcastReachesAllTargets(t *testing.T) {
	rt, root := newTestRuntime(t)
	const n = 5
	got := make([][]float64, n)
	started := make(chan *TaskCtx, n)
	proceed := make(chan struct{})
	rt.RegisterTaskType("recv", 64, 8, func(tc *TaskCtx, replica int) error {
		started <- tc
		<-proceed
		got[replica] = tc.Recv()
		return nil
	})
	g, err := root.Initiate("recv", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	var targets []*TaskCtx
	for i := 0; i < n; i++ {
		targets = append(targets, <-started)
	}
	payload := []float64{3.14, 2.71}
	if err := root.Broadcast(payload, targets); err != nil {
		t.Fatal(err)
	}
	close(proceed)
	if err := g.Wait(root); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if len(v) != 2 || v[0] != 3.14 || v[1] != 2.71 {
			t.Errorf("target %d got %v", i, v)
		}
	}
	// Broadcast payloads are independent copies.
	got[0][0] = 0
	if got[1][0] != 3.14 {
		t.Error("broadcast shares payload storage")
	}
}

func TestChargeAdvancesPEAndMetrics(t *testing.T) {
	rt, root := newTestRuntime(t)
	before := root.pe.Clock()
	root.Charge(50)
	if root.pe.Clock() != before+50*CyclesPerFlop {
		t.Errorf("PE clock = %d", root.pe.Clock())
	}
	if got := rt.Metrics.Get(metrics.LevelNAVM, metrics.CtrFlops); got != 50 {
		t.Errorf("NAVM flops = %d", got)
	}
	root.Charge(0)  // no-op
	root.Charge(-5) // no-op
	if got := rt.Metrics.Get(metrics.LevelNAVM, metrics.CtrFlops); got != 50 {
		t.Errorf("non-positive charge changed metrics: %d", got)
	}
}

func TestManyTaskInitiationsScale(t *testing.T) {
	rt, root := newTestRuntime(t)
	rt.RegisterTaskType("tiny", 16, 2, func(tc *TaskCtx, replica int) error { return nil })
	g, err := root.Initiate("tiny", 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(root); err != nil {
		t.Fatal(err)
	}
	if got := rt.Metrics.Get(metrics.LevelSPVM, metrics.CtrTasksInitiated); got != 500 {
		t.Errorf("tasks_initiated = %d", got)
	}
	// All activation records were freed on terminate.
	for _, k := range rt.Kernels() {
		if k.Heap.Allocated() != 0 {
			t.Errorf("cluster %d heap leaks %d words", k.ClusterID, k.Heap.Allocated())
		}
	}
}
