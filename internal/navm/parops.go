package navm

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/metrics"
	"repro/internal/spvm"
)

// forallType is the internal task type backing Forall and Pardo.  Its code
// block is loaded into every kernel at runtime construction.
const forallType = "__forall"

// forallCodeWords sizes the internal dispatch code block.
const forallCodeWords = 64

// solverType is the task type behind the distributed solver workers.
const solverType = "__solver"

// registerInternalTypes loads the built-in task types into every kernel.
func (rt *Runtime) registerInternalTypes() {
	rt.types[forallType] = func(tc *TaskCtx, replica int) error {
		rt.mu.Lock()
		body := rt.forallBodies[int64(tc.Param(0))]
		rt.mu.Unlock()
		if body == nil {
			return fmt.Errorf("navm: forall dispatch lost body %d", int64(tc.Param(0)))
		}
		return body(tc, replica)
	}
	for _, k := range rt.kernels {
		k.Handle(&spvm.Message{Type: spvm.MsgLoadCode, CodeName: forallType, CodeWords: forallCodeWords, LocalWords: 16})
		k.Handle(&spvm.Message{Type: spvm.MsgLoadCode, CodeName: solverType, CodeWords: 256, LocalWords: 32})
	}
}

// Forall runs body for every index 0..n-1 as parallel tasks — the NAVM
// "forall loop: do all iterations in parallel if possible".  It blocks
// until every iteration terminates and returns the first error.
func (tc *TaskCtx) Forall(n int, body TaskFunc) error {
	if n <= 0 {
		return fmt.Errorf("navm: forall over %d iterations", n)
	}
	rt := tc.rt
	rt.mu.Lock()
	key := rt.nextForall
	rt.nextForall++
	if rt.forallBodies == nil {
		rt.forallBodies = map[int64]TaskFunc{}
	}
	rt.forallBodies[key] = body
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		delete(rt.forallBodies, key)
		rt.mu.Unlock()
	}()
	g, err := tc.Initiate(forallType, n, []float64{float64(key)})
	if err != nil {
		return err
	}
	return g.Wait(tc)
}

// Pardo runs each statement in parallel — "pardo ... end: do all
// statements in parallel" — and blocks until all complete.
func (tc *TaskCtx) Pardo(stmts ...func(tc *TaskCtx) error) error {
	if len(stmts) == 0 {
		return nil
	}
	return tc.Forall(len(stmts), func(child *TaskCtx, i int) error {
		return stmts[i](child)
	})
}

// Broadcast sends data to a set of tasks ("broadcast data to a set of
// tasks").  The hardware cost is one network message per distinct
// destination cluster (the network multicasts at cluster granularity);
// each receiver finds the payload in its mailbox via Recv.
func (tc *TaskCtx) Broadcast(data []float64, targets []*TaskCtx) error {
	rt := tc.rt
	words := int64(len(data))
	sent := map[int]bool{}
	for _, dst := range targets {
		if dst.pe.Cluster != tc.pe.Cluster && !sent[dst.pe.Cluster] {
			arrival := rt.machine.Network().Transfer(tc.pe.Cluster, dst.pe.Cluster, words, tc.pe.Clock())
			sent[dst.pe.Cluster] = true
			rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
			rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgWords, words)
			_ = arrival
		}
	}
	for _, dst := range targets {
		payload := append([]float64(nil), data...)
		dst.mailboxPut(payload)
		// The receiver cannot proceed past Recv before the data
		// arrives.
		dst.pe.Sync(tc.pe.Clock())
	}
	rt.Trace.Recordf(metrics.LevelNAVM, "broadcast", int(tc.ID), len(targets), int(words), "%d clusters", len(sent))
	return nil
}

// mailboxPut appends a payload to the task's mailbox.
func (tc *TaskCtx) mailboxPut(data []float64) {
	tc.mu.Lock()
	if tc.mailbox == nil {
		tc.mailbox = make(chan []float64, 64)
	}
	mb := tc.mailbox
	tc.mu.Unlock()
	mb <- data
}

// Recv blocks until a broadcast payload arrives and returns it.
func (tc *TaskCtx) Recv() []float64 {
	tc.mu.Lock()
	if tc.mailbox == nil {
		tc.mailbox = make(chan []float64, 64)
	}
	mb := tc.mailbox
	tc.mu.Unlock()
	return <-mb
}

// ProcFunc is a remotely callable procedure: it runs on a PE in the
// cluster owning the window's data and returns result values.
type ProcFunc func(callee *TaskCtx, w *Window, args []float64) ([]float64, error)

// RegisterProcedure installs a remote procedure and loads its code into
// every kernel.
func (rt *Runtime) RegisterProcedure(name string, codeWords, localWords int64, fn ProcFunc) error {
	rt.mu.Lock()
	if rt.procs == nil {
		rt.procs = map[string]ProcFunc{}
	}
	rt.procs[name] = fn
	rt.mu.Unlock()
	msg := &spvm.Message{Type: spvm.MsgLoadCode, CodeName: name, CodeWords: codeWords, LocalWords: localWords}
	for _, k := range rt.kernels {
		if _, err := k.Handle(msg); err != nil {
			return err
		}
	}
	return nil
}

// RemoteCall performs the NAVM remote procedure call: the call executes
// in the cluster that holds the data visible in the window ("location
// determined by location of data visible in a window"), and the results
// return to the caller in a remote-return message.
func (tc *TaskCtx) RemoteCall(proc string, w *Window, args []float64) ([]float64, error) {
	rt := tc.rt
	rt.mu.Lock()
	fn := rt.procs[proc]
	rt.mu.Unlock()
	if fn == nil {
		return nil, fmt.Errorf("%w: procedure %q", ErrUnknownTaskType, proc)
	}
	dest := w.Arr.homeCluster
	kern := rt.kernels[dest]
	msg := &spvm.Message{
		Type: spvm.MsgRemoteCall, Procedure: proc, Caller: tc.ID,
		Window: w.Desc(), Params: args,
	}
	done, _, err := rt.machine.Send(tc.pe.ID, dest, msg.Words(), tc.pe.Clock(), rt.machine.Config().KernelDecodeCycles)
	if err != nil {
		return nil, err
	}
	ids, err := kern.Handle(msg)
	if err != nil {
		return nil, err
	}
	rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
	rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgWords, msg.Words())

	// Bind the callee to a PE in the data's cluster and run it.
	pe, err := rt.machine.PlaceWorkerInCluster(dest)
	if err != nil {
		return nil, err
	}
	pe.Sync(done)
	callee := &TaskCtx{
		ID: ids[0], Type: proc, Parent: tc.ID,
		rt: rt, pe: pe, kern: kern, params: args,
		resume: make(chan struct{}, 1), done: make(chan struct{}),
	}
	if rec := kern.Task(callee.ID); rec != nil {
		kern.Ready.Remove(callee.ID)
		rec.State = spvm.TaskRunning
	}
	results, err := fn(callee, w, args)
	if err != nil {
		kern.Handle(&spvm.Message{Type: spvm.MsgTerminate, Task: callee.ID, Parent: tc.ID})
		return nil, fmt.Errorf("navm: remote %q: %w", proc, err)
	}

	// Remote return: results travel back to the caller's cluster.
	ret := &spvm.Message{Type: spvm.MsgRemoteReturn, Caller: tc.ID, Params: results}
	arrival := rt.machine.Network().Transfer(dest, tc.pe.Cluster, ret.Words(), pe.Clock())
	tc.pe.Sync(arrival)
	if _, err := tc.kern.Handle(ret); err != nil {
		return nil, err
	}
	rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
	rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgWords, ret.Words())
	kern.Handle(&spvm.Message{Type: spvm.MsgTerminate, Task: callee.ID, Parent: tc.ID})
	rt.Trace.Recordf(metrics.LevelNAVM, "rpc", tc.pe.Cluster, dest, int(msg.Words()+ret.Words()), "%s", proc)
	return results, nil
}

// ParallelDot computes the inner product of two n×1 arrays with p
// parallel tasks, each reading its row-window of both vectors and writing
// a partial into the caller's partials array; the caller reduces.  This is
// the NAVM "inner product" linear algebra operation, whose
// synchronisation cost is the classic obstacle to CG scalability.
func (tc *TaskCtx) ParallelDot(x, y *Array, p int) (float64, error) {
	if x.Cols != 1 || y.Cols != 1 || x.Rows != y.Rows {
		return nil2f(fmt.Errorf("navm: ParallelDot needs equal-length vectors, got %dx%d · %dx%d", x.Rows, x.Cols, y.Rows, y.Cols))
	}
	n := x.Rows
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	partials := make([]float64, p)
	var mu sync.Mutex
	err := tc.Forall(p, func(child *TaskCtx, i int) error {
		lo, hi := blockRange(n, p, i)
		if lo >= hi {
			return nil
		}
		wx, err := RowWindow(x, lo, hi-lo)
		if err != nil {
			return err
		}
		wy, err := RowWindow(y, lo, hi-lo)
		if err != nil {
			return err
		}
		xv := wx.Read(child)
		yv := wy.Read(child)
		var s float64
		for k := range xv {
			s += xv[k] * yv[k]
		}
		child.Charge(int64(2 * len(xv)))
		mu.Lock()
		partials[i] = s
		mu.Unlock()
		// One word returns to the parent.
		child.rt.machine.Network().Transfer(child.pe.Cluster, tc.pe.Cluster, 1, child.pe.Clock())
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, s := range partials {
		sum += s
	}
	tc.Charge(int64(p))
	return sum, nil
}

// ParallelAxpy computes y += alpha*x over n×1 arrays with p parallel
// tasks, each updating its own row window.
func (tc *TaskCtx) ParallelAxpy(alpha float64, x, y *Array, p int) error {
	if x.Cols != 1 || y.Cols != 1 || x.Rows != y.Rows {
		return fmt.Errorf("navm: ParallelAxpy needs equal-length vectors")
	}
	n := x.Rows
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return tc.Forall(p, func(child *TaskCtx, i int) error {
		lo, hi := blockRange(n, p, i)
		if lo >= hi {
			return nil
		}
		wx, err := RowWindow(x, lo, hi-lo)
		if err != nil {
			return err
		}
		wy, err := RowWindow(y, lo, hi-lo)
		if err != nil {
			return err
		}
		xv := wx.Read(child)
		yv := wy.Read(child)
		for k := range yv {
			yv[k] += alpha * xv[k]
		}
		child.Charge(int64(2 * len(yv)))
		return wy.Write(child, yv)
	})
}

// ParallelNorm2 returns the Euclidean norm of an n×1 array using
// ParallelDot.
func (tc *TaskCtx) ParallelNorm2(x *Array, p int) (float64, error) {
	d, err := tc.ParallelDot(x, x, p)
	if err != nil {
		return 0, err
	}
	tc.Charge(1)
	return math.Sqrt(d), nil
}

// blockRange splits n items into p contiguous blocks and returns block
// i's [lo,hi) range; earlier blocks are one longer when p does not divide
// n.
func blockRange(n, p, i int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func nil2f(err error) (float64, error) { return 0, err }
