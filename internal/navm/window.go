package navm

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/spvm"
)

// WindowKind classifies a window descriptor, matching the paper's "row,
// column, block descriptors".
type WindowKind string

// Window kinds.
const (
	WinRow   WindowKind = "row"
	WinCol   WindowKind = "col"
	WinBlock WindowKind = "block"
)

// Window is a NAVM window on an array: a descriptor granting access to a
// rectangular region of another task's array.  Windows may be transmitted
// as parameters, further partitioned, and stored as values of variables;
// tasks communicate through windows.
type Window struct {
	// Arr is the target array.
	Arr *Array
	// Kind records how the window was created.
	Kind WindowKind
	// Row0, Rows, Col0, Cols delimit the visible region.
	Row0, Rows, Col0, Cols int
}

// NewWindow creates a block window onto a region of array a ("create
// window").  Any task may create a window on any array; access costs are
// charged at use.
func NewWindow(a *Array, row0, rows, col0, cols int) (*Window, error) {
	w := &Window{Arr: a, Kind: WinBlock, Row0: row0, Rows: rows, Col0: col0, Cols: cols}
	if err := w.validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// RowWindow creates a window on rows [row0, row0+rows) across all columns.
func RowWindow(a *Array, row0, rows int) (*Window, error) {
	w := &Window{Arr: a, Kind: WinRow, Row0: row0, Rows: rows, Col0: 0, Cols: a.Cols}
	if err := w.validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// ColWindow creates a window on columns [col0, col0+cols) across all rows.
func ColWindow(a *Array, col0, cols int) (*Window, error) {
	w := &Window{Arr: a, Kind: WinCol, Row0: 0, Rows: a.Rows, Col0: col0, Cols: cols}
	if err := w.validate(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Window) validate() error {
	a := w.Arr
	if a == nil {
		return fmt.Errorf("navm: window on nil array")
	}
	if w.Rows <= 0 || w.Cols <= 0 {
		return fmt.Errorf("navm: window %dx%d on %q is empty", w.Rows, w.Cols, a.Name)
	}
	if w.Row0 < 0 || w.Col0 < 0 || w.Row0+w.Rows > a.Rows || w.Col0+w.Cols > a.Cols {
		return fmt.Errorf("navm: window [%d:%d)x[%d:%d) outside array %q (%dx%d)",
			w.Row0, w.Row0+w.Rows, w.Col0, w.Col0+w.Cols, a.Name, a.Rows, a.Cols)
	}
	return nil
}

// Words returns the number of words visible through the window.
func (w *Window) Words() int64 { return int64(w.Rows * w.Cols) }

// Sub partitions the window further: a window relative to this window's
// coordinates ("windows may be ... further partitioned").
func (w *Window) Sub(row0, rows, col0, cols int) (*Window, error) {
	s := &Window{
		Arr: w.Arr, Kind: WinBlock,
		Row0: w.Row0 + row0, Rows: rows,
		Col0: w.Col0 + col0, Cols: cols,
	}
	if row0 < 0 || col0 < 0 || row0+rows > w.Rows || col0+cols > w.Cols {
		return nil, fmt.Errorf("navm: sub-window [%d:%d)x[%d:%d) outside window %dx%d",
			row0, row0+rows, col0, col0+cols, w.Rows, w.Cols)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// chargeAccess accounts one window access of the window's size by task tc:
// local accesses move through the cluster shared memory; non-local ones
// cross the network as one block message.
func (w *Window) chargeAccess(tc *TaskCtx) {
	rt := tc.rt
	words := w.Words()
	if tc.pe.Cluster == w.Arr.homeCluster {
		rt.machine.MemoryTouch(tc.pe.ID, words)
		rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrLocalAccesses, 1)
	} else {
		rt.machine.RemoteFetch(tc.pe.ID, w.Arr.homeCluster, words)
		rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrRemoteAccesses, 1)
		rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
		rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgWords, words)
	}
	rt.Trace.Recordf(metrics.LevelNAVM, "window.access", tc.pe.Cluster, w.Arr.homeCluster, int(words),
		"%s[%d:%d,%d:%d]", w.Arr.Name, w.Row0, w.Row0+w.Rows, w.Col0, w.Col0+w.Cols)
}

// Read copies the data visible in the window into a row-major vector
// ("access data visible in a window").
func (w *Window) Read(tc *TaskCtx) linalg.Vector {
	w.chargeAccess(tc)
	out := make(linalg.Vector, 0, w.Rows*w.Cols)
	a := w.Arr
	for i := w.Row0; i < w.Row0+w.Rows; i++ {
		out = append(out, a.data[i*a.Cols+w.Col0:i*a.Cols+w.Col0+w.Cols]...)
	}
	return out
}

// Write assigns the data visible in the window from a row-major vector
// ("assign data visible in a window").
func (w *Window) Write(tc *TaskCtx, vals linalg.Vector) error {
	if int64(len(vals)) != w.Words() {
		return fmt.Errorf("navm: window write of %d values into %d-word window", len(vals), w.Words())
	}
	w.chargeAccess(tc)
	a := w.Arr
	k := 0
	for i := w.Row0; i < w.Row0+w.Rows; i++ {
		copy(a.data[i*a.Cols+w.Col0:i*a.Cols+w.Col0+w.Cols], vals[k:k+w.Cols])
		k += w.Cols
	}
	return nil
}

// ReadAt reads the single element (i,j) relative to the window origin,
// charging a one-word access.
func (w *Window) ReadAt(tc *TaskCtx, i, j int) (float64, error) {
	if i < 0 || i >= w.Rows || j < 0 || j >= w.Cols {
		return 0, fmt.Errorf("navm: window ReadAt(%d,%d) outside %dx%d", i, j, w.Rows, w.Cols)
	}
	one := &Window{Arr: w.Arr, Kind: WinBlock, Row0: w.Row0 + i, Rows: 1, Col0: w.Col0 + j, Cols: 1}
	one.chargeAccess(tc)
	a := w.Arr
	return a.data[(w.Row0+i)*a.Cols+w.Col0+j], nil
}

// Desc converts the window to its SPVM storage representation for
// transmission inside remote-call messages.
func (w *Window) Desc() *spvm.WindowDesc {
	return &spvm.WindowDesc{
		Array: w.Arr.Name, Kind: string(w.Kind), Owner: w.Arr.Owner,
		Row0: int64(w.Row0), Rows: int64(w.Rows),
		Col0: int64(w.Col0), Cols: int64(w.Cols),
	}
}

// WindowFromDesc reconstructs a window from its SPVM descriptor, looking
// the array up in the runtime directory.
func (rt *Runtime) WindowFromDesc(d *spvm.WindowDesc) (*Window, error) {
	a := rt.Lookup(d.Array)
	if a == nil {
		return nil, fmt.Errorf("navm: window names unknown array %q", d.Array)
	}
	w := &Window{
		Arr: a, Kind: WindowKind(d.Kind),
		Row0: int(d.Row0), Rows: int(d.Rows),
		Col0: int(d.Col0), Cols: int(d.Cols),
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	return w, nil
}
