// Package navm implements the FEM-2 numerical analyst's virtual machine:
// the high-level parallel programming layer offering tasks
// (programmer-defined parallel procedures), windows on arrays for remote
// access to non-local data, broadcast, forall/pardo parallel control,
// remote procedure call located by window, and parallel linear algebra
// operations.
//
// The layer is implemented on the system programmer's VM (spvm): every
// task control operation formats and sends one of the seven SPVM messages,
// which a cluster kernel decodes and executes; tasks then run as
// goroutines bound to simulated PEs of the hardware layer (arch), so the
// numerical results are real while processing, storage, and communication
// costs accrue on the simulated machine exactly as the paper's
// evaluation-by-simulation calls for.
package navm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/spvm"
	"repro/internal/trace"
)

// CyclesPerFlop converts floating point work into simulated PE cycles
// (an early-1980s microprocessor spent on the order of ten cycles per
// floating point operation).
const CyclesPerFlop = 10

// ErrUnknownTaskType is returned when initiating a type that was never
// registered.
var ErrUnknownTaskType = errors.New("navm: unknown task type")

// ErrNotOwner is returned when a task violates the data control rule
// "all data owned by a single task" by writing another task's array
// without a window.
var ErrNotOwner = errors.New("navm: task does not own array")

// TaskFunc is the body of a programmer-defined parallel procedure.  The
// replica index runs 0..K-1 within one initiation.
type TaskFunc func(tc *TaskCtx, replica int) error

// Runtime is one NAVM instance bound to a simulated machine.  It owns the
// per-cluster SPVM kernels, the task registry, and the distributed array
// directory.
type Runtime struct {
	machine *arch.Machine
	kernels []*spvm.Kernel
	ids     *spvm.IDSource

	// Metrics and Trace receive NAVM-level accounting when non-nil.
	Metrics *metrics.Collector
	Trace   *trace.Trace

	mu           sync.Mutex
	types        map[string]TaskFunc
	tasks        map[spvm.TaskID]*TaskCtx
	arrays       map[string]*Array
	procs        map[string]ProcFunc
	forallBodies map[int64]TaskFunc
	nextForall   int64
}

// NewRuntime builds a runtime over the machine, creating one kernel per
// cluster with a heap sized to the cluster's shared memory.
func NewRuntime(m *arch.Machine) *Runtime {
	rt := &Runtime{
		machine: m,
		ids:     spvm.NewIDSource(),
		types:   map[string]TaskFunc{},
		tasks:   map[spvm.TaskID]*TaskCtx{},
		arrays:  map[string]*Array{},
	}
	for _, c := range m.Clusters() {
		k := spvm.NewKernel(c.ID, m.Config().SharedMemoryWords, rt.ids)
		rt.kernels = append(rt.kernels, k)
	}
	rt.registerInternalTypes()
	return rt
}

// AttachInstrumentation wires a collector and trace into the runtime, its
// kernels, and the machine.
func (rt *Runtime) AttachInstrumentation(c *metrics.Collector, tr *trace.Trace) {
	rt.Metrics = c
	rt.Trace = tr
	rt.machine.Metrics = c
	rt.machine.Trace = tr
	for _, k := range rt.kernels {
		k.Metrics = c
		k.Trace = tr
	}
}

// Machine returns the underlying simulated hardware.
func (rt *Runtime) Machine() *arch.Machine { return rt.machine }

// Kernel returns the SPVM kernel of cluster i.
func (rt *Runtime) Kernel(i int) *spvm.Kernel { return rt.kernels[i] }

// Kernels returns all cluster kernels.
func (rt *Runtime) Kernels() []*spvm.Kernel { return rt.kernels }

// RegisterTaskType installs a parallel procedure under a name and loads
// its code block into every cluster kernel (a load-code message per
// cluster), making the type initiable machine-wide.
func (rt *Runtime) RegisterTaskType(name string, codeWords, localWords int64, fn TaskFunc) error {
	rt.mu.Lock()
	rt.types[name] = fn
	rt.mu.Unlock()
	msg := &spvm.Message{Type: spvm.MsgLoadCode, CodeName: name, CodeWords: codeWords, LocalWords: localWords}
	for _, k := range rt.kernels {
		if _, err := k.Handle(msg); err != nil {
			return fmt.Errorf("navm: load code %q on cluster %d: %w", name, k.ClusterID, err)
		}
	}
	rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrOps, 1)
	return nil
}

// taskFunc looks up a registered type.
func (rt *Runtime) taskFunc(name string) TaskFunc {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.types[name]
}

// TaskCtx is the numerical analyst's handle on one running task: its
// identity, its PE binding, its parameters, and the VM operations.
type TaskCtx struct {
	// ID is the SPVM task id.
	ID spvm.TaskID
	// Type is the registered task type name ("<root>" for drivers).
	Type string
	// Parent is the initiating task.
	Parent spvm.TaskID
	// Replica is this task's index within its initiation group.
	Replica int

	rt     *Runtime
	pe     *arch.PE
	kern   *spvm.Kernel
	params []float64

	mu      sync.Mutex
	paused  bool
	resume  chan struct{}
	done    chan struct{}
	err     error
	results []float64
	mailbox chan []float64
}

// PE returns the processing element the task is bound to.
func (tc *TaskCtx) PE() *arch.PE { return tc.pe }

// Runtime returns the owning runtime.
func (tc *TaskCtx) Runtime() *Runtime { return tc.rt }

// Params returns the task's initiation parameters.
func (tc *TaskCtx) Params() []float64 { return tc.params }

// Param returns parameter i, or 0 when absent.
func (tc *TaskCtx) Param(i int) float64 {
	if i < 0 || i >= len(tc.params) {
		return 0
	}
	return tc.params[i]
}

// Charge accounts flops of numerical work: NAVM flop counters plus
// simulated cycles on the task's PE.
func (tc *TaskCtx) Charge(flops int64) {
	if flops <= 0 {
		return
	}
	tc.rt.Metrics.AddFlops(metrics.LevelNAVM, flops)
	tc.rt.machine.Compute(tc.pe.ID, flops*CyclesPerFlop)
}

// NewRootTask creates a driver task bound to a chosen worker PE.  Root
// tasks are registered with their cluster kernel but own no kernel heap
// storage; they model the AUVM-level program driving the computation.
func (rt *Runtime) NewRootTask() (*TaskCtx, error) {
	pe, err := rt.machine.PlaceWorker()
	if err != nil {
		return nil, err
	}
	id := rt.ids.Next()
	kern := rt.kernels[pe.Cluster]
	kern.RegisterRoot(id)
	tc := &TaskCtx{
		ID: id, Type: "<root>", Parent: spvm.NoTask,
		rt: rt, pe: pe, kern: kern,
		resume: make(chan struct{}, 1), done: make(chan struct{}),
	}
	rt.mu.Lock()
	rt.tasks[id] = tc
	rt.mu.Unlock()
	return tc, nil
}

// TaskGroup is a handle on a set of initiated task replications.
type TaskGroup struct {
	IDs   []spvm.TaskID
	ctxs  []*TaskCtx
	group *sync.WaitGroup
}

// Initiate performs the NAVM "initiate a task" operation: it formats an
// initiate-K-replications message, sends it through the machine to a
// destination cluster's kernel, and binds each created task to a placed
// worker PE where its registered body runs on its own goroutine.
func (tc *TaskCtx) Initiate(taskType string, k int, params []float64) (*TaskGroup, error) {
	rt := tc.rt
	fn := rt.taskFunc(taskType)
	if fn == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTaskType, taskType)
	}
	msg := &spvm.Message{
		Type: spvm.MsgInitiate, TaskType: taskType,
		Replications: int64(k), Parent: tc.ID, Params: params,
	}
	// Route the initiate message to the least-loaded cluster the
	// round-robin placement policy picks, as the hardware would.
	destPE, err := rt.machine.PlaceWorker()
	if err != nil {
		return nil, err
	}
	dest := destPE.Cluster
	if _, _, err := rt.machine.Send(tc.pe.ID, dest, msg.Words(), tc.pe.Clock(), rt.machine.Config().KernelDecodeCycles); err != nil {
		return nil, err
	}
	rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
	rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgWords, msg.Words())
	kern := rt.kernels[dest]
	ids, err := kern.Handle(msg)
	if err != nil {
		return nil, err
	}
	g := &TaskGroup{IDs: ids, group: &sync.WaitGroup{}}
	for i, id := range ids {
		pe, perr := rt.machine.PlaceWorker()
		if perr != nil {
			return nil, perr
		}
		child := &TaskCtx{
			ID: id, Type: taskType, Parent: tc.ID, Replica: i,
			rt: rt, pe: pe, kern: kern,
			params: append([]float64(nil), params...),
			resume: make(chan struct{}, 1), done: make(chan struct{}),
		}
		rt.mu.Lock()
		rt.tasks[id] = child
		rt.mu.Unlock()
		g.ctxs = append(g.ctxs, child)
		g.group.Add(1)
		rt.Trace.Recordf(metrics.LevelNAVM, "task.start", int(tc.ID), int(id), 0, "%s[%d] on PE %d", taskType, i, pe.ID)
		go func(child *TaskCtx, i int) {
			defer g.group.Done()
			defer close(child.done)
			// The kernel's ready->running transition.
			if rec := kern.Task(child.ID); rec != nil {
				kern.Ready.Remove(child.ID)
				rec.State = spvm.TaskRunning
			}
			child.err = fn(child, i)
			child.terminate()
		}(child, i)
	}
	return g, nil
}

// terminate sends the "terminate and notify parent" message for a
// finished task.
func (tc *TaskCtx) terminate() {
	msg := &spvm.Message{Type: spvm.MsgTerminate, Task: tc.ID, Parent: tc.Parent}
	tc.kern.Handle(msg)
	tc.rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
	tc.rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgWords, msg.Words())
	tc.rt.mu.Lock()
	delete(tc.rt.tasks, tc.ID)
	tc.rt.mu.Unlock()
	tc.rt.Trace.Recordf(metrics.LevelNAVM, "task.end", int(tc.ID), int(tc.Parent), 0, "%s", tc.Type)
}

// Wait blocks until every task in the group has terminated and returns
// the first error any body reported.  The waiting task's PE synchronizes
// to the completion time of the slowest child (a join is a barrier).
func (g *TaskGroup) Wait(tc *TaskCtx) error {
	g.group.Wait()
	var firstErr error
	peIDs := []int{tc.pe.ID}
	for _, c := range g.ctxs {
		if c.err != nil && firstErr == nil {
			firstErr = c.err
		}
		peIDs = append(peIDs, c.pe.ID)
	}
	tc.rt.machine.Barrier(peIDs)
	return firstErr
}

// Ctx returns the TaskCtx of the i'th replication (test and harness use).
func (g *TaskGroup) Ctx(i int) *TaskCtx { return g.ctxs[i] }

// Pause performs "pause and notify parent": the task enters the paused
// state and its goroutine blocks until some other task resumes it.  Local
// data is retained across the pause.
func (tc *TaskCtx) Pause() error {
	msg := &spvm.Message{Type: spvm.MsgPause, Task: tc.ID, Parent: tc.Parent}
	if _, err := tc.kern.Handle(msg); err != nil {
		return err
	}
	tc.rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
	tc.mu.Lock()
	tc.paused = true
	tc.mu.Unlock()
	<-tc.resume
	tc.mu.Lock()
	tc.paused = false
	tc.mu.Unlock()
	// Back on the ready queue -> running again.
	if rec := tc.kern.Task(tc.ID); rec != nil {
		tc.kern.Ready.Remove(tc.ID)
		rec.State = spvm.TaskRunning
	}
	return nil
}

// Paused reports whether the task is currently paused.
func (tc *TaskCtx) Paused() bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.paused
}

// Resume performs "resume a child task" on the named task.
func (tc *TaskCtx) Resume(child spvm.TaskID) error {
	tc.rt.mu.Lock()
	target := tc.rt.tasks[child]
	tc.rt.mu.Unlock()
	if target == nil {
		return fmt.Errorf("%w: resume %d", spvm.ErrNoSuchTask, child)
	}
	msg := &spvm.Message{Type: spvm.MsgResume, Child: child}
	if _, err := target.kern.Handle(msg); err != nil {
		return err
	}
	tc.rt.Metrics.Add(metrics.LevelNAVM, metrics.CtrMsgs, 1)
	// The resumed task observes the resumer's progress.
	target.pe.Sync(tc.pe.Clock())
	select {
	case target.resume <- struct{}{}:
	default:
	}
	return nil
}

// Task returns the live TaskCtx with the given id, or nil.
func (rt *Runtime) Task(id spvm.TaskID) *TaskCtx {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tasks[id]
}

// LiveTasks returns the number of live tasks.
func (rt *Runtime) LiveTasks() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.tasks)
}
