package auvm

import (
	"context"
	"errors"
	"testing"

	"repro/internal/command"
	"repro/internal/errs"
)

// TestMetricsLessSession is the regression test for sessions with no
// collector attached: every command class, including malformed lines,
// must work with s.Metrics == nil.
func TestMetricsLessSession(t *testing.T) {
	s := NewSession("bare", NewDatabase())
	if s.Metrics != nil {
		t.Fatal("NewSession attached a collector")
	}
	for _, line := range []string{
		"generate grid g 3 3 3 3 clamp-left",
		"load g l endload 0 -10",
		"solve g l",
		"stresses g",
		"store g",
		"list db",
		"list workspace",
	} {
		if _, err := s.Execute(line); err != nil {
			t.Fatalf("metrics-less %q: %v", line, err)
		}
	}
	// Malformed lines charge the (absent) collector too.
	if _, err := s.Execute("frobnicate"); !errors.Is(err, ErrUsage) {
		t.Errorf("metrics-less parse error: %v", err)
	}
}

// TestDoTypedCommands drives Do with struct-literal commands and reads
// the typed result fields — the programmatic path with no text round
// trip.
func TestDoTypedCommands(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()

	res, err := s.Do(ctx, command.GenerateGrid{Name: "g", NX: 4, NY: 3, W: 4, H: 3, ClampLeft: true})
	if err != nil {
		t.Fatal(err)
	}
	gr := res.(*command.GenerateResult)
	if gr.Nodes != 20 || gr.Elements != 24 {
		t.Errorf("generate result = %+v", gr)
	}

	if _, err := s.Do(ctx, command.EndLoad{Model: "g", Set: "tip", FY: -100}); err != nil {
		t.Fatal(err)
	}
	res, err = s.Do(ctx, command.Solve{Model: "g", Set: "tip", Method: command.MethodCG})
	if err != nil {
		t.Fatal(err)
	}
	sr := res.(*command.SolveResult)
	if sr.Backend != "cg" || sr.Iterations <= 0 || sr.Residual <= 0 || sr.MaxDisp <= 0 || sr.MaxDOF < 0 {
		t.Errorf("solve result = %+v", sr)
	}

	// Do's result String is exactly what Execute returns for the same
	// command line: the REPL is a thin adapter.
	s2 := newSession(t)
	for _, line := range []string{
		"generate grid g 4 3 4 3 clamp-left",
		"load g tip endload 0 -100",
	} {
		if _, err := s2.Execute(line); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s2.Execute("solve g tip method cg")
	if err != nil {
		t.Fatal(err)
	}
	if out != sr.String() {
		t.Errorf("Execute output %q != Do result rendering %q", out, sr.String())
	}
}

// TestDoCancelledContext checks Do refuses work once its context is
// done, with an error classified by both the shared taxonomy and the
// context package.
func TestDoCancelledContext(t *testing.T) {
	s := newSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Do(ctx, command.List{What: command.ListDB}); !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled Do: %v", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Do lost the context error: %v", err)
	}
	// A live context works.
	if _, err := s.Do(context.Background(), command.List{What: command.ListDB}); err != nil {
		t.Errorf("live Do: %v", err)
	}
}

// TestDoPointerCommand checks pointer-spelled commands dispatch the
// same as value commands.
func TestDoPointerCommand(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()
	if _, err := s.Do(ctx, &command.GenerateGrid{Name: "g", NX: 2, NY: 2, W: 2, H: 2, ClampLeft: true}); err != nil {
		t.Fatalf("pointer command: %v", err)
	}
	res, err := s.Do(ctx, &command.List{What: command.ListWorkspace})
	if err != nil {
		t.Fatalf("pointer list: %v", err)
	}
	if lr := res.(*command.ListResult); len(lr.Names) != 1 || lr.Names[0] != "g" {
		t.Errorf("pointer list result = %+v", lr)
	}
}

// TestDoQuit checks the quit protocol: QuitResult plus ErrQuit.
func TestDoQuit(t *testing.T) {
	s := newSession(t)
	res, err := s.Do(context.Background(), command.Quit{})
	if !errors.Is(err, ErrQuit) {
		t.Errorf("quit error = %v", err)
	}
	if res == nil || res.String() != "bye" {
		t.Errorf("quit result = %v", res)
	}
}

// TestErrorTaxonomy checks errors.Is classification across the layers:
// missing objects, malformed requests, for both entry points.
func TestErrorTaxonomy(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()

	if _, err := s.Do(ctx, command.Solve{Model: "ghost", Set: "l"}); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("solve on missing model: %v", err)
	}
	if _, err := s.Execute("retrieve ghost"); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("retrieve missing model: %v", err)
	}
	if _, err := s.Execute("display displacements ghost"); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("display without solution: %v", err)
	}
	if _, err := s.Execute("list wat"); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("bad list target: %v", err)
	}
	// A programmatically built command bypasses the parser; the
	// interpreter still classifies the bad method as a usage error.
	mustExec(t, s, "generate grid g 2 2 2 2 clamp-left")
	mustExec(t, s, "load g l endload 1 0")
	if _, err := s.Do(ctx, command.Solve{Model: "g", Set: "l", Method: "gauss"}); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("bad programmatic method: %v", err)
	}
	// Interpreter-level rejections of ineligible requests classify too.
	if _, err := s.Execute("material -1 0 1 1"); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("negative modulus: %v", err)
	}
	mustExec(t, s, "define structure hand")
	// A name collision is a state conflict, deliberately outside the
	// taxonomy: it must error without classifying as usage/not-found.
	if _, err := s.Execute("define structure hand"); err == nil ||
		errors.Is(err, errs.ErrUsage) || errors.Is(err, errs.ErrNotFound) {
		t.Errorf("duplicate define: %v", err)
	}
	if _, err := s.Execute("load hand ls endload 1 0"); !errors.Is(err, errs.ErrUsage) {
		t.Errorf("endload on non-grid: %v", err)
	}
}
