package auvm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/command"
	"repro/internal/errs"
	"repro/internal/job"
	"repro/internal/metrics"
)

// jobSession is a session wired to its own single-purpose scheduler,
// the way core.System wires one.
func jobSession(t *testing.T, workers int) *Session {
	t.Helper()
	s := newSession(t)
	s.Jobs = job.NewScheduler(workers, s.Metrics)
	t.Cleanup(s.Jobs.Close)
	return s
}

// TestExecuteContextCancellation: the string API has the same
// cancellation story as Do.
func TestExecuteContextCancellation(t *testing.T) {
	s := newSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ExecuteContext(ctx, "list db"); !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled ExecuteContext: %v", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ExecuteContext lost the context error: %v", err)
	}
	// Execute is the context.Background shim: identical output for the
	// same line.
	a, err := s.ExecuteContext(context.Background(), "generate grid g 3 3 3 3 clamp-left")
	if err != nil {
		t.Fatal(err)
	}
	s2 := newSession(t)
	b, err := s2.Execute("generate grid g 3 3 3 3 clamp-left")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ExecuteContext %q != Execute %q", a, b)
	}
}

// TestJobVerbsNeedScheduler: every job verb (and SubmitAsync) fails
// cleanly on a session with no front end attached.
func TestJobVerbsNeedScheduler(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()
	if _, err := s.SubmitAsync(ctx, command.List{What: command.ListDB}); err == nil {
		t.Error("SubmitAsync without scheduler succeeded")
	}
	for _, line := range []string{
		"submit solve g l", "status job-1", "wait job-1", "cancel job-1", "jobs",
	} {
		if _, err := s.Execute(line); err == nil {
			t.Errorf("%q without scheduler succeeded", line)
		}
	}
}

// TestSubmitWaitByteIdentical is the lifecycle satellite: submit→wait
// yields a result byte-identical to the synchronous Do of the same
// command.
func TestSubmitWaitByteIdentical(t *testing.T) {
	s := jobSession(t, 2)
	ctx := context.Background()
	mustExec(t, s, "generate grid g 6 4 6 4 clamp-left")
	mustExec(t, s, "load g tip endload 0 -100")

	syncRes, err := s.Do(ctx, command.Solve{Model: "g", Set: "tip", Method: command.MethodCG})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.SubmitAsync(ctx, command.Solve{Model: "g", Set: "tip", Method: command.MethodCG})
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := s.Jobs.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if asyncRes.String() != syncRes.String() {
		t.Errorf("async %q\n != sync %q", asyncRes.String(), syncRes.String())
	}
	// The same through the command language's submit/wait verbs.
	out := mustExec(t, s, "submit solve g tip method cg")
	if !strings.HasPrefix(out, "submitted job-") {
		t.Fatalf("submit output %q", out)
	}
	waitOut := mustExec(t, s, "wait "+strings.Fields(out)[1])
	if waitOut != syncRes.String() {
		t.Errorf("wait output %q != sync %q", waitOut, syncRes.String())
	}
}

// TestCancelMidSolveLeavesStateUnchanged is the other half of the
// lifecycle satellite: a cancel mid-solve surfaces ErrCancelled and
// leaves both the workspace solution and the shared database exactly as
// they were.
func TestCancelMidSolveLeavesStateUnchanged(t *testing.T) {
	s := jobSession(t, 1)
	ctx := context.Background()
	mustExec(t, s, "generate grid big 40 40 40 40 clamp-left")
	mustExec(t, s, "load big l endload 0 -1000")
	mustExec(t, s, "store big")
	dbBefore := s.DB.Bytes()

	// A slow iterative solve, cancelled as soon as it is running.
	id, err := s.SubmitAsync(ctx, command.Solve{Model: "big", Set: "l", Method: command.MethodJacobi})
	if err != nil {
		t.Fatal(err)
	}
	for {
		snap, err := s.Jobs.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != job.Queued {
			break
		}
	}
	if _, err := s.Jobs.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Jobs.Wait(ctx, id); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled solve: %v, want ErrCancelled", err)
	}
	if sol := s.WS.Solution("big"); sol != nil {
		t.Error("cancelled solve left a solution in the workspace")
	}
	if got := s.DB.Bytes(); got != dbBefore {
		t.Errorf("database changed across a cancelled solve: %d -> %d bytes", dbBefore, got)
	}
	if names := s.DB.Names(); len(names) != 1 || names[0] != "big" {
		t.Errorf("database names changed: %v", names)
	}
}

// TestPerJobAttribution: each job carries its own ops/flops accounting,
// and the shared collector still sees the totals.
func TestPerJobAttribution(t *testing.T) {
	s := jobSession(t, 2)
	ctx := context.Background()
	mustExec(t, s, "generate grid g 4 3 4 3 clamp-left")
	mustExec(t, s, "load g tip endload 0 -100")
	sharedBefore := s.Metrics.Get(metrics.LevelAUVM, metrics.CtrOps)

	id, err := s.SubmitAsync(ctx, command.Solve{Model: "g", Set: "tip"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Jobs.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Jobs.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ops != 1 {
		t.Errorf("job ops = %d, want 1 (its own solve command)", snap.Ops)
	}
	if snap.Flops <= 0 {
		t.Errorf("job flops = %d, want > 0", snap.Flops)
	}
	// The Tee forwarded the job's op to the shared collector.
	if got := s.Metrics.Get(metrics.LevelAUVM, metrics.CtrOps); got != sharedBefore+1 {
		t.Errorf("shared ops %d -> %d, want +1", sharedBefore, got)
	}
	// The status verb renders the attribution.
	out := mustExec(t, s, "status job-1")
	if !strings.Contains(out, "flops") {
		t.Errorf("status output lacks attribution: %q", out)
	}
}

// TestConcurrentCheapSubmitsOneSession is the regression test for the
// interpreter-local state race: cheap verbs run inline on submitter
// goroutines, so concurrent SubmitAsync calls on ONE shared session
// interpret commands concurrently — generate (writes the grid memo) and
// material (writes the current material) must not race.  go test -race
// guards it.
func TestConcurrentCheapSubmitsOneSession(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	s := jobSession(t, 4)
	ctx := context.Background()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for k := 0; k < 20; k++ {
				model := fmt.Sprintf("m-%d-%d", g, k)
				if _, err := s.SubmitAsync(ctx, command.GenerateGrid{
					Name: model, NX: 4, NY: 4, W: 4, H: 4, ClampLeft: true,
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.SubmitAsync(ctx, command.SetMaterial{
					E: 200000 + float64(g), Nu: 0.3, T: 10, A: 100,
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.SubmitAsync(ctx, command.EndLoad{
					Model: model, Set: "l", FY: -1,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// A worker goroutine re-entering Do concurrently with the session's
	// own command loop is the same shape — drive Do directly too.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for k := 0; k < 20; k++ {
				model := fmt.Sprintf("d-%d-%d", g, k)
				if _, err := s.Do(ctx, command.GenerateGrid{
					Name: model, NX: 4, NY: 4, W: 4, H: 4, ClampLeft: true,
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Do(ctx, command.EndLoad{Model: model, Set: "l", FY: -1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
}
