package auvm

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/errs"
	"repro/internal/fem"
	"repro/internal/store"
)

// ErrNotFound is returned when retrieving a model the database does not
// hold.  It aliases the shared errs.ErrNotFound sentinel so errors.Is
// classifies missing objects uniformly across layers.
var ErrNotFound = errs.ErrNotFound

// Database is the AUVM long-term shared store ("data base (long-term
// storage; shared data)").  Models are serialized on store and
// deserialized on retrieve, so the database holds values, not live
// pointers — retrieving gives each user's workspace an independent copy,
// exactly the "data movement between data base and workspace" the paper
// describes.  It is safe for concurrent multi-user access.
//
// Since the durable-storage PR the database is a thin layer over a
// store.Store: models live under "m:<name>" keys and per-model solve
// history under "s:<name>:<seq>" (see docs/storage.md), so with a file
// backend everything survives a daemon restart.
type Database struct {
	st      store.Store
	backend string
	mu      sync.Mutex // serializes compound ops (delete check, seq counters)
	seqs    map[string]int
}

// NewDatabase returns an empty in-memory database — the pre-durability
// behaviour, used by tests and embedded callers.
func NewDatabase() *Database {
	return NewDatabaseOn(store.NewMemStore(), store.BackendMem)
}

// NewDatabaseOn builds a database over an opened store.  backend is
// the configured backend name, reported by the version verb.  Solution
// sequence counters are recovered from the store, so appends continue
// where the previous process stopped.
func NewDatabaseOn(st store.Store, backend string) *Database {
	db := &Database{st: st, backend: backend, seqs: map[string]int{}}
	db.Reload()
	return db
}

// Reload re-derives the solution sequence counters from the store.  A
// cluster takeover calls it after sealing the shared store: the dead
// leader may have appended history this process has never counted, and
// continuing from stale counters would overwrite its records.
func (db *Database) Reload() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.seqs = map[string]int{}
	db.st.Seek(store.PrefixSolution, func(k string, _ []byte) bool {
		// s:<name>:<seq> — name may itself contain colons, so split at
		// the last one.
		var name string
		var seq int
		for i := len(k) - 1; i > len(store.PrefixSolution); i-- {
			if k[i] == ':' {
				name = k[len(store.PrefixSolution):i]
				fmt.Sscanf(k[i+1:], "%d", &seq)
				break
			}
		}
		if name != "" && seq >= db.seqs[name] {
			db.seqs[name] = seq
		}
		return true
	})
}

// Backend reports the configured storage backend name ("mem", "file").
func (db *Database) Backend() string { return db.backend }

// modelDTO is the serialized form of a model: gob needs exported,
// concrete fields.
type modelDTO struct {
	Name     string
	Nodes    []fem.NodeCoord
	Bars     []barDTO
	CSTs     []cstDTO
	Order    []byte // 0 = next bar, 1 = next cst, preserving element order
	Fixed    []int
	LoadSets []loadSetDTO
}

type barDTO struct {
	N1, N2 int
	Mat    fem.Material
}

type cstDTO struct {
	N1, N2, N3 int
	Mat        fem.Material
}

type loadSetDTO struct {
	Name    string
	Entries []fem.LoadEntry
}

// encodeModel flattens a model (plus its load sets) into the DTO.
func encodeModel(m *fem.Model, loads []*fem.LoadSet) (*modelDTO, error) {
	dto := &modelDTO{Name: m.Name, Nodes: append([]fem.NodeCoord(nil), m.Nodes...)}
	for _, e := range m.Elements {
		switch el := e.(type) {
		case *fem.Bar:
			dto.Bars = append(dto.Bars, barDTO{N1: el.N1, N2: el.N2, Mat: el.Mat})
			dto.Order = append(dto.Order, 0)
		case *fem.CST:
			dto.CSTs = append(dto.CSTs, cstDTO{N1: el.N1, N2: el.N2, N3: el.N3, Mat: el.Mat})
			dto.Order = append(dto.Order, 1)
		default:
			return nil, fmt.Errorf("auvm: cannot serialize element kind %q", e.Kind())
		}
	}
	for d := 0; d < m.NumDOF(); d++ {
		if m.Fixed(d) {
			dto.Fixed = append(dto.Fixed, d)
		}
	}
	for _, ls := range loads {
		dto.LoadSets = append(dto.LoadSets, loadSetDTO{Name: ls.Name, Entries: append([]fem.LoadEntry(nil), ls.Entries...)})
	}
	return dto, nil
}

// decodeModel rebuilds a model and its load sets from the DTO.
func decodeModel(dto *modelDTO) (*fem.Model, []*fem.LoadSet, error) {
	m := fem.NewModel(dto.Name)
	for _, n := range dto.Nodes {
		m.AddNode(n.X, n.Y)
	}
	bi, ci := 0, 0
	for _, which := range dto.Order {
		var e fem.Element
		switch which {
		case 0:
			b := dto.Bars[bi]
			bi++
			e = &fem.Bar{N1: b.N1, N2: b.N2, Mat: b.Mat}
		case 1:
			c := dto.CSTs[ci]
			ci++
			e = &fem.CST{N1: c.N1, N2: c.N2, N3: c.N3, Mat: c.Mat}
		default:
			return nil, nil, fmt.Errorf("auvm: corrupt element order byte %d", which)
		}
		if err := m.AddElement(e); err != nil {
			return nil, nil, err
		}
	}
	for _, d := range dto.Fixed {
		if err := m.FixDOF(d); err != nil {
			return nil, nil, err
		}
	}
	var loads []*fem.LoadSet
	for _, ls := range dto.LoadSets {
		loads = append(loads, &fem.LoadSet{Name: ls.Name, Entries: ls.Entries})
	}
	return m, loads, nil
}

// gobModel encodes a DTO to its stored bytes.  gob of a fixed concrete
// type is deterministic, so identical models store identical bytes.
func gobModel(dto *modelDTO) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, fmt.Errorf("auvm: encode model %q: %w", dto.Name, err)
	}
	return buf.Bytes(), nil
}

// Store serializes a model and its load sets into the database ("store
// model in DB").
func (db *Database) Store(m *fem.Model, loads []*fem.LoadSet) error {
	dto, err := encodeModel(m, loads)
	if err != nil {
		return err
	}
	raw, err := gobModel(dto)
	if err != nil {
		return err
	}
	return db.st.Put(store.ModelKey(m.Name), raw)
}

// Retrieve deserializes a model and its load sets out of the database
// ("retrieve").  The caller receives fresh copies.
func (db *Database) Retrieve(name string) (*fem.Model, []*fem.LoadSet, error) {
	raw, err := db.st.Get(store.ModelKey(name))
	if err != nil {
		return nil, nil, fmt.Errorf("auvm: model %q not in database: %w", name, err)
	}
	var dto modelDTO
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&dto); err != nil {
		return nil, nil, fmt.Errorf("auvm: decode model %q: %w", name, err)
	}
	return decodeModel(&dto)
}

// Delete removes a model and its solution history, reporting whether
// the model existed.
func (db *Database) Delete(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, err := db.st.Get(store.ModelKey(name)); err != nil {
		return false
	}
	ops := []store.Op{store.Del(store.ModelKey(name))}
	db.st.Seek(store.SolutionPrefix(name), func(k string, _ []byte) bool {
		ops = append(ops, store.Del(k))
		return true
	})
	delete(db.seqs, name)
	return db.st.Batch(ops) == nil
}

// Names returns the stored model names, sorted.
func (db *Database) Names() []string {
	out := []string{}
	db.st.Seek(store.PrefixModel, func(k string, _ []byte) bool {
		out = append(out, k[len(store.PrefixModel):])
		return true
	})
	return out
}

// Bytes returns the database's total serialized model size (storage
// accounting; history and job records are not charged to the user).
func (db *Database) Bytes() int64 {
	var t int64
	db.st.Seek(store.PrefixModel, func(_ string, v []byte) bool {
		t += int64(len(v))
		return true
	})
	return t
}

// SolutionRecord is one entry of a model's persisted solve history:
// the metadata of a completed solve, JSON-encoded under
// "s:<name>:<seq>".  It records what was solved and how it converged —
// enough to audit a model's analysis trail across restarts — without
// persisting the displacement vector itself (snapshot/restore carries
// full state).
type SolutionRecord struct {
	Seq        int     `json:"seq"`
	Model      string  `json:"model"`
	Set        string  `json:"set"`
	Backend    string  `json:"backend"`
	Precond    string  `json:"precond,omitempty"`
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	DOF        int     `json:"dof"`
	MaxDisp    float64 `json:"max_disp"`
}

// AppendSolution persists one solve-history record for a model,
// assigning the next sequence number.
func (db *Database) AppendSolution(rec SolutionRecord) error {
	db.mu.Lock()
	db.seqs[rec.Model]++
	rec.Seq = db.seqs[rec.Model]
	db.mu.Unlock()
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("auvm: encode solution record: %w", err)
	}
	return db.st.Put(store.SolutionKey(rec.Model, rec.Seq), raw)
}

// Solutions returns a model's persisted solve history in sequence
// order.
func (db *Database) Solutions(name string) ([]SolutionRecord, error) {
	var out []SolutionRecord
	var decodeErr error
	db.st.Seek(store.SolutionPrefix(name), func(k string, v []byte) bool {
		var rec SolutionRecord
		if err := json.Unmarshal(v, &rec); err != nil {
			decodeErr = fmt.Errorf("auvm: decode solution record %q: %w", k, err)
			return false
		}
		out = append(out, rec)
		return true
	})
	return out, decodeErr
}
