package auvm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"repro/internal/errs"
	"repro/internal/fem"
)

// ErrNotFound is returned when retrieving a model the database does not
// hold.  It aliases the shared errs.ErrNotFound sentinel so errors.Is
// classifies missing objects uniformly across layers.
var ErrNotFound = errs.ErrNotFound

// Database is the AUVM long-term shared store ("data base (long-term
// storage; shared data)").  Models are serialized on store and
// deserialized on retrieve, so the database holds values, not live
// pointers — retrieving gives each user's workspace an independent copy,
// exactly the "data movement between data base and workspace" the paper
// describes.  It is safe for concurrent multi-user access.
type Database struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{m: map[string][]byte{}} }

// modelDTO is the serialized form of a model: gob needs exported,
// concrete fields.
type modelDTO struct {
	Name     string
	Nodes    []fem.NodeCoord
	Bars     []barDTO
	CSTs     []cstDTO
	Order    []byte // 0 = next bar, 1 = next cst, preserving element order
	Fixed    []int
	LoadSets []loadSetDTO
}

type barDTO struct {
	N1, N2 int
	Mat    fem.Material
}

type cstDTO struct {
	N1, N2, N3 int
	Mat        fem.Material
}

type loadSetDTO struct {
	Name    string
	Entries []fem.LoadEntry
}

// encodeModel flattens a model (plus its load sets) into the DTO.
func encodeModel(m *fem.Model, loads []*fem.LoadSet) (*modelDTO, error) {
	dto := &modelDTO{Name: m.Name, Nodes: append([]fem.NodeCoord(nil), m.Nodes...)}
	for _, e := range m.Elements {
		switch el := e.(type) {
		case *fem.Bar:
			dto.Bars = append(dto.Bars, barDTO{N1: el.N1, N2: el.N2, Mat: el.Mat})
			dto.Order = append(dto.Order, 0)
		case *fem.CST:
			dto.CSTs = append(dto.CSTs, cstDTO{N1: el.N1, N2: el.N2, N3: el.N3, Mat: el.Mat})
			dto.Order = append(dto.Order, 1)
		default:
			return nil, fmt.Errorf("auvm: cannot serialize element kind %q", e.Kind())
		}
	}
	for d := 0; d < m.NumDOF(); d++ {
		if m.Fixed(d) {
			dto.Fixed = append(dto.Fixed, d)
		}
	}
	for _, ls := range loads {
		dto.LoadSets = append(dto.LoadSets, loadSetDTO{Name: ls.Name, Entries: append([]fem.LoadEntry(nil), ls.Entries...)})
	}
	return dto, nil
}

// decodeModel rebuilds a model and its load sets from the DTO.
func decodeModel(dto *modelDTO) (*fem.Model, []*fem.LoadSet, error) {
	m := fem.NewModel(dto.Name)
	for _, n := range dto.Nodes {
		m.AddNode(n.X, n.Y)
	}
	bi, ci := 0, 0
	for _, which := range dto.Order {
		var e fem.Element
		switch which {
		case 0:
			b := dto.Bars[bi]
			bi++
			e = &fem.Bar{N1: b.N1, N2: b.N2, Mat: b.Mat}
		case 1:
			c := dto.CSTs[ci]
			ci++
			e = &fem.CST{N1: c.N1, N2: c.N2, N3: c.N3, Mat: c.Mat}
		default:
			return nil, nil, fmt.Errorf("auvm: corrupt element order byte %d", which)
		}
		if err := m.AddElement(e); err != nil {
			return nil, nil, err
		}
	}
	for _, d := range dto.Fixed {
		if err := m.FixDOF(d); err != nil {
			return nil, nil, err
		}
	}
	var loads []*fem.LoadSet
	for _, ls := range dto.LoadSets {
		loads = append(loads, &fem.LoadSet{Name: ls.Name, Entries: ls.Entries})
	}
	return m, loads, nil
}

// Store serializes a model and its load sets into the database ("store
// model in DB").
func (db *Database) Store(m *fem.Model, loads []*fem.LoadSet) error {
	dto, err := encodeModel(m, loads)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return fmt.Errorf("auvm: encode model %q: %w", m.Name, err)
	}
	db.mu.Lock()
	db.m[m.Name] = buf.Bytes()
	db.mu.Unlock()
	return nil
}

// Retrieve deserializes a model and its load sets out of the database
// ("retrieve").  The caller receives fresh copies.
func (db *Database) Retrieve(name string) (*fem.Model, []*fem.LoadSet, error) {
	db.mu.RLock()
	raw, ok := db.m[name]
	db.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("auvm: model %q not in database: %w", name, ErrNotFound)
	}
	var dto modelDTO
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&dto); err != nil {
		return nil, nil, fmt.Errorf("auvm: decode model %q: %w", name, err)
	}
	return decodeModel(&dto)
}

// Delete removes a model, reporting whether it existed.
func (db *Database) Delete(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.m[name]; !ok {
		return false
	}
	delete(db.m, name)
	return true
}

// Names returns the stored model names, sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.m))
	for k := range db.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Bytes returns the database's total serialized size (storage
// accounting).
func (db *Database) Bytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var t int64
	for _, b := range db.m {
		t += int64(len(b))
	}
	return t
}
