package auvm

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/command"
	"repro/internal/errs"
	"repro/internal/fem"
	"repro/internal/job"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/navm"
	"repro/internal/obs"
)

// ErrQuit is returned by Do and Execute when the user issues the quit
// command; the REPL loop treats it as a clean shutdown.
var ErrQuit = errors.New("auvm: quit")

// ErrUsage aliases the shared errs.ErrUsage sentinel; every malformed
// command, whether rejected by the parser or by the interpreter, wraps
// it.
var ErrUsage = errs.ErrUsage

// ErrCancelled aliases the shared errs.ErrCancelled sentinel; Do wraps
// it (together with the context's own error) when its context is
// cancelled or past its deadline.
var ErrCancelled = errs.ErrCancelled

// Session is one interactive user of the FEM-2 workstation: a workspace
// of local data, a shared database, and (optionally) a NAVM runtime for
// parallel solution.  The session is an interpreter over the typed
// command AST — the AUVM sequence control, "direct interpretation of
// user commands" — with Do as the programmatic entry point and Execute
// as the command-line adapter over it.
//
// The session's own command loop is one goroutine, but a session with a
// job scheduler attached (Jobs non-nil) is a concurrent front end:
// SubmitAsync — and the submit verb — route heavy commands through the
// scheduler's worker pool, which re-enters Do on worker goroutines, and
// cheap commands run inline on each submitter's goroutine.  That is safe
// because every piece of session state a verb touches is mutex-guarded:
// the workspace, the database, and the interpreter-local state below
// (stateMu).  Direct Do calls concurrent with a job on the same model
// bypass the scheduler's per-model lock and are the caller's
// responsibility — route model-touching work through SubmitAsync when a
// solve may be in flight.
type Session struct {
	// User names the session for multi-user experiments.
	User string
	// WS is the session's workspace.
	WS *Workspace
	// DB is the shared long-term database.
	DB *Database
	// RT, when non-nil, enables Solve{Parallel: p}.
	RT *navm.Runtime
	// Metrics receives AUVM operation counts when non-nil.  A nil
	// collector is a valid no-op sink (Collector methods are
	// nil-receiver safe), so a metrics-less session interprets commands
	// without instrumentation.
	Metrics *metrics.Collector
	// Jobs, when non-nil, is the system's job scheduler: it enables
	// SubmitAsync and the submit/status/wait/cancel/jobs verbs.
	// Sessions created through core.System get it wired automatically.
	Jobs *job.Scheduler
	// Health, when non-nil, reports whether the system's store has
	// degraded to read-only; ping and version surface it.  Nil means
	// healthy (a standalone session has no degradation machinery).
	Health func() bool
	// Obs, when non-nil, is the system's live-metrics registry: the
	// stats verb snapshots it, and ping/version replies carry its
	// uptime.  A standalone session leaves it nil and stats answers an
	// empty snapshot.
	Obs *obs.Registry

	// stateMu guards the interpreter-local state below.  Cheap verbs
	// run inline on submitter goroutines, so two SubmitAsync calls on
	// one session may interpret commands concurrently.
	stateMu sync.Mutex
	// mat is the current material, applied by generate/element
	// commands.
	mat fem.Material
	// grids remembers grid generation parameters per model so EndLoad
	// can find the right edge.
	grids map[string]fem.RectGridOpts
}

// NewSession builds a session over a shared database.
func NewSession(user string, db *Database) *Session {
	return &Session{
		User: user, WS: NewWorkspace(), DB: db,
		mat: fem.Steel(), grids: map[string]fem.RectGridOpts{},
	}
}

// usage is the shared syntax-error constructor.
var usage = errs.Usage

// cancelled converts a context cancellation into the shared taxonomy,
// keeping the context's own error in the chain for errors.Is.
func cancelled(ctx context.Context) error { return errs.Cancelled(ctx) }

// degraded consults the Health hook; sessions without one are healthy.
func (s *Session) degraded() bool { return s.Health != nil && s.Health() }

// statsResult converts an obs snapshot into the typed stats reply.  The
// snapshot arrives sorted by metric name, and the conversion preserves
// order, so the result's rendering is deterministic — and a result
// decoded from the wire renders byte-identically to the serving side.
func statsResult(snap obs.Snapshot) *command.StatsResult {
	res := &command.StatsResult{UptimeSeconds: snap.UptimeSeconds}
	for _, c := range snap.Counters {
		res.Counters = append(res.Counters, command.StatEntry{Name: c.Name, Value: c.Value})
	}
	for _, g := range snap.Gauges {
		res.Gauges = append(res.Gauges, command.StatEntry{Name: g.Name, Value: g.Value})
	}
	for _, h := range snap.Histograms {
		sh := command.StatHistogram{Name: h.Name, Count: h.Count, SumNS: h.SumNS}
		for _, b := range h.Buckets {
			sh.Buckets = append(sh.Buckets, command.StatBucket{Pow: b.Pow, Count: b.Count})
		}
		res.Histograms = append(res.Histograms, sh)
	}
	return res
}

// collector resolves the metrics sink for one request: a context-carried
// override (the job scheduler's per-job Tee collector) when present, the
// session's shared collector otherwise.
func (s *Session) collector(ctx context.Context) *metrics.Collector {
	if c, ok := metrics.FromContext(ctx); ok {
		return c
	}
	return s.Metrics
}

// Execute interprets one command line and returns its display output.
// It is ExecuteContext under context.Background() — the no-deadline
// spelling for REPLs and scripts.
func (s *Session) Execute(line string) (string, error) {
	return s.ExecuteContext(context.Background(), line)
}

// ExecuteContext interprets one command line under a context and returns
// its display output.  It is a thin adapter over the typed API: parse
// the line, Do the command, render the result — so the string API has
// the same cancellation story as Do: once ctx is done the command
// returns an error wrapping ErrCancelled.
func (s *Session) ExecuteContext(ctx context.Context, line string) (string, error) {
	cmd, err := command.Parse(line)
	if err != nil {
		// A malformed line still counts as an AUVM operation, exactly
		// as the pre-AST interpreter charged it.
		s.collector(ctx).Add(metrics.LevelAUVM, metrics.CtrOps, 1)
		return "", err
	}
	if cmd == nil { // blank line or comment
		return "", nil
	}
	res, err := s.Do(ctx, cmd)
	if res == nil {
		return "", err
	}
	return res.String(), err
}

// SubmitAsync hands a command to the system's job scheduler and returns
// its job id immediately.  Heavy verbs (solves) run on the scheduler's
// worker pool, serialized per model; cheap verbs run inline before
// SubmitAsync returns, but still leave a job record, so the
// submit→status→wait surface is uniform.  The job runs under a context
// derived from ctx — cancelling ctx, or Jobs.Cancel, cancels it.
func (s *Session) SubmitAsync(ctx context.Context, cmd command.Command) (job.JobID, error) {
	if s.Jobs == nil {
		return 0, errNoScheduler
	}
	return s.Jobs.Submit(ctx, s.User, s, cmd)
}

// Do interprets one typed command and returns its typed result.  It
// checks ctx before starting and again before each long-running solve
// phase, returning an error wrapping ErrCancelled (and the context's own
// error) once ctx is done — so a server can impose per-request deadlines
// on one-goroutine-per-session traffic.  Quit returns QuitResult
// alongside ErrQuit.
func (s *Session) Do(ctx context.Context, cmd command.Command) (command.Result, error) {
	if cmd == nil {
		return nil, nil
	}
	// Pointer commands satisfy the interface too (value-receiver method
	// sets) — deref so both spellings dispatch.
	cmd = command.Value(cmd)
	// Charge the op before the cancellation check so request accounting
	// sees every command, shed or served — matching Execute, which
	// charges even malformed lines.  The collector is the per-job one
	// when this command runs as a job.
	s.collector(ctx).Add(metrics.LevelAUVM, metrics.CtrOps, 1)
	if err := cancelled(ctx); err != nil {
		return nil, err
	}
	switch c := cmd.(type) {
	case command.Help:
		return &command.HelpResult{}, nil
	case command.Ping:
		return &command.PingResult{Degraded: s.degraded(), UptimeSeconds: s.Obs.UptimeSeconds()}, nil
	case command.Version:
		res := &command.VersionResult{Server: "fem2", Release: command.Release,
			Protocol: command.ProtocolVersion, Degraded: s.degraded(),
			UptimeSeconds: s.Obs.UptimeSeconds()}
		if s.DB != nil {
			res.Storage = s.DB.Backend()
		}
		return res, nil
	case command.Stats:
		return statsResult(s.Obs.Snapshot()), nil
	case command.Quit:
		return &command.QuitResult{}, ErrQuit
	case command.Define:
		return s.doDefine(c)
	case command.SetMaterial:
		return s.doMaterial(c)
	case command.GenerateGrid:
		return s.doGenerateGrid(c)
	case command.GenerateTruss:
		return s.doGenerateTruss(c)
	case command.GenerateBar:
		return s.doGenerateBar(c)
	case command.AddNode:
		return s.doNode(c)
	case command.AddBar:
		return s.doAddBar(c)
	case command.AddCST:
		return s.doAddCST(c)
	case command.FixNode:
		return s.doFixNode(c)
	case command.FixDOF:
		return s.doFixDOF(c)
	case command.DefineLoadSet:
		return s.doLoadSet(c)
	case command.AddLoad:
		return s.doAddLoad(c)
	case command.EndLoad:
		return s.doEndLoad(c)
	case command.Solve:
		return s.doSolve(ctx, c)
	case command.Stresses:
		return s.doStresses(c)
	case command.Display:
		return s.doDisplay(c)
	case command.Store:
		return s.doStore(c)
	case command.Retrieve:
		return s.doRetrieve(c)
	case command.Delete:
		return s.doDelete(c)
	case command.List:
		return s.doList(c)
	case command.Snapshot:
		return s.doSnapshot(c)
	case command.Restore:
		return s.doRestore(c)
	case command.Submit:
		return s.doSubmit(ctx, c)
	case command.Status:
		return s.doJobStatus(c)
	case command.Wait:
		return s.doWait(ctx, c)
	case command.Cancel:
		return s.doCancel(c)
	case command.Jobs:
		return s.doJobs(c)
	default:
		return nil, usage("unknown command type %T", cmd)
	}
}

// errNoScheduler reports a job verb on a session without a front end.
var errNoScheduler = errors.New("auvm: session has no job scheduler attached (no front end)")

// stateName maps a scheduler state onto the command language's canonical
// name.
func stateName(st job.State) command.JobState { return command.JobState(st.String()) }

func (s *Session) doSubmit(ctx context.Context, c command.Submit) (command.Result, error) {
	id, err := s.SubmitAsync(ctx, c.Cmd)
	if err != nil {
		return nil, err
	}
	// Report the state as of submit time: a heavy command was queued
	// (re-reading it here would race the worker pool and make the reply
	// nondeterministic); a cheap command ran inline and is terminal.
	res := &command.SubmitResult{ID: int64(id), State: command.JobQueued,
		Cmd: command.Value(c.Cmd).String()}
	if !job.Heavy(c.Cmd) {
		if snap, err := s.Jobs.Status(id); err == nil {
			res.State = stateName(snap.State)
		}
	}
	return res, nil
}

func (s *Session) doJobStatus(c command.Status) (command.Result, error) {
	if s.Jobs == nil {
		return nil, errNoScheduler
	}
	snap, err := s.Jobs.Status(job.JobID(c.ID))
	if err != nil {
		return nil, err
	}
	res := &command.JobStatusResult{
		ID: int64(snap.ID), Owner: snap.Owner, State: stateName(snap.State),
		Cmd: snap.Cmd.String(),
		Ops: snap.Ops, Flops: snap.Flops, Cycles: snap.Cycles,
	}
	if snap.State == job.Failed && snap.Err != nil {
		res.Error = snap.Err.Error()
	}
	return res, nil
}

// doWait blocks until the job finishes and returns the job's own typed
// result and error — submit…wait displays exactly what the synchronous
// command would have.
func (s *Session) doWait(ctx context.Context, c command.Wait) (command.Result, error) {
	if s.Jobs == nil {
		return nil, errNoScheduler
	}
	return s.Jobs.Wait(ctx, job.JobID(c.ID))
}

func (s *Session) doCancel(c command.Cancel) (command.Result, error) {
	if s.Jobs == nil {
		return nil, errNoScheduler
	}
	st, err := s.Jobs.Cancel(job.JobID(c.ID))
	if err != nil {
		return nil, err
	}
	return &command.CancelResult{ID: c.ID, State: stateName(st)}, nil
}

func (s *Session) doJobs(c command.Jobs) (command.Result, error) {
	if s.Jobs == nil {
		return nil, errNoScheduler
	}
	f := job.Filter{Owner: c.Owner}
	if c.State != "" {
		st, err := job.ParseState(string(c.State))
		if err != nil {
			return nil, err
		}
		f.States = []job.State{st}
	}
	snaps := s.Jobs.List(f)
	res := &command.JobsResult{Rows: make([]command.JobRow, len(snaps))}
	for i, snap := range snaps {
		res.Rows[i] = command.JobRow{
			ID: int64(snap.ID), Owner: snap.Owner,
			State: stateName(snap.State), Cmd: snap.Cmd.String(),
		}
	}
	return res, nil
}

func (s *Session) doDefine(c command.Define) (command.Result, error) {
	if s.WS.Model(c.Name) != nil {
		// A name collision is a state conflict, not a usage or
		// not-found condition — deliberately outside the taxonomy.
		return nil, fmt.Errorf("auvm: model %q already in workspace", c.Name)
	}
	s.WS.PutModel(fem.NewModel(c.Name))
	return &command.DefineResult{Name: c.Name}, nil
}

func (s *Session) doMaterial(c command.SetMaterial) (command.Result, error) {
	if c.E <= 0 {
		return nil, usage("modulus must be positive")
	}
	s.stateMu.Lock()
	s.mat = fem.Material{E: c.E, Nu: c.Nu, T: c.T, A: c.A}
	s.stateMu.Unlock()
	return &command.MaterialResult{E: c.E, Nu: c.Nu, T: c.T, A: c.A}, nil
}

func (s *Session) doGenerateGrid(c command.GenerateGrid) (command.Result, error) {
	o := fem.RectGridOpts{
		NX: c.NX, NY: c.NY, W: c.W, H: c.H, Mat: s.material(),
		ClampLeft: c.ClampLeft, Jitter: c.Jitter, Seed: c.Seed,
	}
	m, err := fem.RectGrid(c.Name, o)
	if err != nil {
		return nil, err
	}
	s.WS.PutModel(m)
	s.gridOpts(c.Name, o)
	return &command.GenerateResult{Kind: "grid", Name: c.Name,
		Nodes: len(m.Nodes), Elements: len(m.Elements)}, nil
}

func (s *Session) doGenerateTruss(c command.GenerateTruss) (command.Result, error) {
	m, err := fem.CantileverTruss(c.Name, c.Bays, c.BayLen, c.Height, s.material())
	if err != nil {
		return nil, err
	}
	s.WS.PutModel(m)
	return &command.GenerateResult{Kind: "truss", Name: c.Name,
		Nodes: len(m.Nodes), Elements: len(m.Elements)}, nil
}

func (s *Session) doGenerateBar(c command.GenerateBar) (command.Result, error) {
	m, err := fem.UniaxialBar(c.Name, c.Segments, c.Length, s.material())
	if err != nil {
		return nil, err
	}
	s.WS.PutModel(m)
	return &command.GenerateResult{Kind: "bar", Name: c.Name,
		Nodes: len(m.Nodes), Elements: c.Segments}, nil
}

func (s *Session) gridOpts(name string, o fem.RectGridOpts) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.grids[name] = o
}

func (s *Session) lookupGridOpts(name string) (fem.RectGridOpts, bool) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	o, ok := s.grids[name]
	return o, ok
}

// material reads the session's current material under the state lock.
func (s *Session) material() fem.Material {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.mat
}

func (s *Session) model(name string) (*fem.Model, error) {
	m := s.WS.Model(name)
	if m == nil {
		return nil, fmt.Errorf("auvm: no model %q in workspace (retrieve it first?): %w",
			name, errs.ErrNotFound)
	}
	return m, nil
}

func (s *Session) doNode(c command.AddNode) (command.Result, error) {
	m, err := s.model(c.Model)
	if err != nil {
		return nil, err
	}
	id := m.AddNode(c.X, c.Y)
	return &command.NodeResult{ID: id, X: c.X, Y: c.Y}, nil
}

func (s *Session) doAddBar(c command.AddBar) (command.Result, error) {
	m, err := s.model(c.Model)
	if err != nil {
		return nil, err
	}
	if err := m.AddElement(&fem.Bar{N1: c.N1, N2: c.N2, Mat: s.material()}); err != nil {
		return nil, err
	}
	return &command.ElementResult{Kind: "bar", Model: m.Name, Nodes: []int{c.N1, c.N2}}, nil
}

func (s *Session) doAddCST(c command.AddCST) (command.Result, error) {
	m, err := s.model(c.Model)
	if err != nil {
		return nil, err
	}
	if err := m.AddElement(&fem.CST{N1: c.N1, N2: c.N2, N3: c.N3, Mat: s.material()}); err != nil {
		return nil, err
	}
	return &command.ElementResult{Kind: "cst", Model: m.Name, Nodes: []int{c.N1, c.N2, c.N3}}, nil
}

func (s *Session) doFixNode(c command.FixNode) (command.Result, error) {
	m, err := s.model(c.Model)
	if err != nil {
		return nil, err
	}
	if err := m.FixNode(c.Node); err != nil {
		return nil, err
	}
	return &command.FixResult{What: "node", Index: c.Node}, nil
}

func (s *Session) doFixDOF(c command.FixDOF) (command.Result, error) {
	m, err := s.model(c.Model)
	if err != nil {
		return nil, err
	}
	if err := m.FixDOF(c.DOF); err != nil {
		return nil, err
	}
	return &command.FixResult{What: "dof", Index: c.DOF}, nil
}

func (s *Session) doLoadSet(c command.DefineLoadSet) (command.Result, error) {
	if err := s.WS.PutLoadSet(c.Model, &fem.LoadSet{Name: c.Set}); err != nil {
		return nil, err
	}
	return &command.LoadSetResult{Model: c.Model, Set: c.Set}, nil
}

func (s *Session) doAddLoad(c command.AddLoad) (command.Result, error) {
	ls := s.WS.LoadSet(c.Model, c.Set)
	if ls == nil {
		ls = &fem.LoadSet{Name: c.Set}
		if err := s.WS.PutLoadSet(c.Model, ls); err != nil {
			return nil, err
		}
	}
	ls.Entries = append(ls.Entries, fem.LoadEntry{DOF: c.DOF, Value: c.Value})
	return &command.LoadResult{DOF: c.DOF, Value: c.Value, Entries: len(ls.Entries)}, nil
}

func (s *Session) doEndLoad(c command.EndLoad) (command.Result, error) {
	o, ok := s.lookupGridOpts(c.Model)
	if !ok {
		return nil, usage("endload requires a generated grid model")
	}
	ls := fem.EndLoad(c.Set, o, c.FX, c.FY)
	if err := s.WS.PutLoadSet(c.Model, ls); err != nil {
		return nil, err
	}
	return &command.EndLoadResult{Set: c.Set, Entries: len(ls.Entries)}, nil
}

func (s *Session) doSolve(ctx context.Context, c command.Solve) (command.Result, error) {
	m, err := s.model(c.Model)
	if err != nil {
		return nil, err
	}
	ls := s.WS.LoadSet(c.Model, c.Set)
	if ls == nil {
		return nil, fmt.Errorf("auvm: no load set %q on model %q: %w",
			c.Set, c.Model, errs.ErrNotFound)
	}
	// Cacheable direct solves ride the system's per-model-name factor
	// cache when a front end is attached, so a REPL user's repeated
	// solves, and jobs from any session on the same model, share one
	// factorisation.  A job context already carries the scheduler's
	// cache; the synchronous path attaches the same one here.
	if s.Jobs != nil && job.CacheableSolve(c) {
		if _, ok := linalg.FactorCacheFromContext(ctx); !ok {
			ctx = linalg.NewFactorCacheContext(ctx, s.Jobs.FactorCache(c.Model))
		}
	}
	// One context-aware solve path: the command maps onto SolveOpts and
	// fem.Solve routes to sequential, distributed, or substructured
	// execution through the solver registry.
	start := time.Now()
	sol, err := fem.Solve(ctx, m, ls, fem.SolveOpts{
		Backend:       string(c.Method),
		Precond:       string(c.Precond),
		Parallel:      c.Parallel,
		Substructured: c.Substructures,
		RT:            s.RT,
	})
	if err != nil {
		return nil, err
	}
	// Per-backend solve latency, keyed by the backend that actually ran
	// (sol.Backend resolves "auto"); sync and scheduled solves both pass
	// through here, so one histogram family covers both paths.
	s.Obs.Histogram(obs.JobLatencySolvePrefix + sol.Backend).Observe(time.Since(start))
	res := &command.SolveResult{
		Model: c.Model, Set: c.Set,
		Backend: sol.Backend, Precond: sol.Precond,
		Substructures: c.Substructures,
		Iterations:    sol.Iterations, Residual: sol.Residual,
		Flops: sol.Stats.Flops, Refactored: sol.Refactored,
	}
	// Par is set exactly when the distributed path ran (a substructured
	// request outranks parallel, so echo the worker count only then).
	if sol.Par != nil {
		res.Parallel = c.Parallel
		res.HaloWords = sol.Par.HaloWords
		res.Makespan = sol.Par.Makespan
	}
	s.WS.PutSolution(c.Model, sol)
	res.MaxDOF, res.MaxDisp = MaxDisplacement(sol)
	// Append the solve to the model's persisted history (best effort:
	// history is an audit trail, not part of the solve's contract, so a
	// store error does not fail a solve that already succeeded).
	if s.DB != nil {
		_ = s.DB.AppendSolution(SolutionRecord{
			Model: c.Model, Set: c.Set, Backend: sol.Backend, Precond: sol.Precond,
			Iterations: sol.Iterations, Residual: sol.Residual,
			DOF: res.MaxDOF, MaxDisp: res.MaxDisp,
		})
	}
	return res, nil
}

func (s *Session) doStresses(c command.Stresses) (command.Result, error) {
	m, err := s.model(c.Model)
	if err != nil {
		return nil, err
	}
	sol := s.WS.Solution(c.Model)
	if sol == nil {
		return nil, fmt.Errorf("auvm: model %q has no solution (solve first): %w",
			c.Model, errs.ErrNotFound)
	}
	st, err := fem.Stresses(m, sol)
	if err != nil {
		return nil, err
	}
	s.WS.PutStresses(c.Model, st)
	elem, vm := MaxVonMises(st)
	return &command.StressesResult{Model: c.Model, Elements: len(st),
		MaxVonMises: vm, MaxElem: elem}, nil
}

func (s *Session) doDisplay(c command.Display) (command.Result, error) {
	switch c.What {
	case command.DisplayModel:
		m, err := s.model(c.Model)
		if err != nil {
			return nil, err
		}
		kinds := map[string]int{}
		for _, e := range m.Elements {
			kinds[e.Kind()]++
		}
		return &command.ModelInfoResult{Name: c.Model, Nodes: len(m.Nodes),
			DOFs: m.NumDOF(), Fixed: m.NumFixed(), ElementCounts: kinds}, nil
	case command.DisplayDisplacements:
		sol := s.WS.Solution(c.Model)
		if sol == nil {
			return nil, fmt.Errorf("auvm: model %q has no solution: %w",
				c.Model, errs.ErrNotFound)
		}
		dof, v := MaxDisplacement(sol)
		return &command.DisplacementsResult{Model: c.Model, MaxDisp: v, MaxDOF: dof,
			Norm: displacementNorm(sol)}, nil
	case command.DisplayStresses:
		st := s.WS.Stresses(c.Model)
		if st == nil {
			return nil, fmt.Errorf("auvm: model %q has no stresses: %w",
				c.Model, errs.ErrNotFound)
		}
		elem, vm := MaxVonMises(st)
		return &command.StressSummaryResult{Model: c.Model, MaxVonMises: vm,
			MaxElem: elem, Elements: len(st)}, nil
	default:
		return nil, usage("display model|displacements|stresses")
	}
}

func (s *Session) doStore(c command.Store) (command.Result, error) {
	m, err := s.model(c.Model)
	if err != nil {
		return nil, err
	}
	var loads []*fem.LoadSet
	for _, n := range s.WS.LoadSetNames(c.Model) {
		loads = append(loads, s.WS.LoadSet(c.Model, n))
	}
	if err := s.DB.Store(m, loads); err != nil {
		return nil, err
	}
	return &command.StoreResult{Name: c.Model, LoadSets: len(loads)}, nil
}

func (s *Session) doRetrieve(c command.Retrieve) (command.Result, error) {
	m, loads, err := s.DB.Retrieve(c.Name)
	if err != nil {
		return nil, err
	}
	s.WS.PutModel(m)
	for _, ls := range loads {
		if err := s.WS.PutLoadSet(m.Name, ls); err != nil {
			return nil, err
		}
	}
	return &command.RetrieveResult{Name: c.Name, LoadSets: len(loads)}, nil
}

func (s *Session) doDelete(c command.Delete) (command.Result, error) {
	if !s.DB.Delete(c.Name) {
		return nil, fmt.Errorf("auvm: model %q not in database: %w", c.Name, ErrNotFound)
	}
	return &command.DeleteResult{Name: c.Name}, nil
}

func (s *Session) doList(c command.List) (command.Result, error) {
	switch c.What {
	case command.ListDB:
		return &command.ListResult{What: c.What, Names: s.DB.Names(), Bytes: s.DB.Bytes()}, nil
	case command.ListWorkspace:
		return &command.ListResult{What: c.What, Names: s.WS.ModelNames(), Words: s.WS.Words()}, nil
	default:
		return nil, usage("list db|workspace")
	}
}

// Run drives the session as a REPL: one command per line, output and
// errors written to w, until EOF or quit.  It is RunContext under
// context.Background().
func (s *Session) Run(r io.Reader, w io.Writer) error {
	return s.RunContext(context.Background(), r, w)
}

// RunContext drives the REPL under a context: every command executes
// under ctx, so cancelling it (a SIGINT, a server shutdown) interrupts
// an in-flight solve, and the loop itself stops — returning an error
// wrapping ErrCancelled — once ctx is done.
func (s *Session) RunContext(ctx context.Context, r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		out, err := s.ExecuteContext(ctx, sc.Text())
		if out != "" {
			fmt.Fprintln(w, out)
		}
		if errors.Is(err, ErrQuit) {
			return nil
		}
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
		if ctx.Err() != nil {
			return cancelled(ctx)
		}
	}
	return sc.Err()
}
