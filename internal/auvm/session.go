package auvm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fem"
	"repro/internal/metrics"
	"repro/internal/navm"
)

// ErrQuit is returned by Execute when the user issues the quit command;
// the REPL loop treats it as a clean shutdown.
var ErrQuit = errors.New("auvm: quit")

// ErrUsage is the base error for command syntax problems.
var ErrUsage = errors.New("auvm: usage")

// Session is one interactive user of the FEM-2 workstation: a workspace
// of local data, a shared database, and (optionally) a NAVM runtime for
// parallel solution.  The command interpreter is the AUVM sequence
// control: "direct interpretation of user commands".
type Session struct {
	// User names the session for multi-user experiments.
	User string
	// WS is the session's workspace.
	WS *Workspace
	// DB is the shared long-term database.
	DB *Database
	// RT, when non-nil, enables `solve ... parallel <p>`.
	RT *navm.Runtime
	// Metrics receives AUVM operation counts when non-nil.
	Metrics *metrics.Collector

	// mat is the current material, applied by generate/element
	// commands.
	mat fem.Material
	// grids remembers grid generation parameters per model so endload
	// can find the right edge.
	grids map[string]fem.RectGridOpts
}

// NewSession builds a session over a shared database.
func NewSession(user string, db *Database) *Session {
	return &Session{
		User: user, WS: NewWorkspace(), DB: db,
		mat: fem.Steel(), grids: map[string]fem.RectGridOpts{},
	}
}

// usage returns a command-specific usage error.
func usage(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// Execute interprets one command line and returns its display output.
func (s *Session) Execute(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return "", nil
	}
	s.Metrics.Add(metrics.LevelAUVM, metrics.CtrOps, 1)
	cmd := strings.ToLower(fields[0])
	args := fields[1:]
	switch cmd {
	case "help":
		return helpText, nil
	case "quit", "exit":
		return "bye", ErrQuit
	case "define":
		return s.cmdDefine(args)
	case "material":
		return s.cmdMaterial(args)
	case "generate":
		return s.cmdGenerate(args)
	case "node":
		return s.cmdNode(args)
	case "element":
		return s.cmdElement(args)
	case "fix":
		return s.cmdFix(args)
	case "loadset":
		return s.cmdLoadSet(args)
	case "load":
		return s.cmdLoad(args)
	case "solve":
		return s.cmdSolve(args)
	case "stresses":
		return s.cmdStresses(args)
	case "display":
		return s.cmdDisplay(args)
	case "store":
		return s.cmdStore(args)
	case "retrieve":
		return s.cmdRetrieve(args)
	case "delete":
		return s.cmdDelete(args)
	case "list":
		return s.cmdList(args)
	default:
		return "", usage("unknown command %q (try help)", cmd)
	}
}

const helpText = `FEM-2 workstation commands:
  define structure <name>
  material <E> <nu> <thickness> <area>
  generate grid <name> <nx> <ny> <w> <h> [clamp-left] [jitter <frac> <seed>]
  generate truss <name> <bays> <baylen> <height>
  generate bar <name> <segments> <length>
  node <model> <x> <y>
  element bar <model> <n1> <n2>
  element cst <model> <n1> <n2> <n3>
  fix node <model> <n> | fix dof <model> <d>
  loadset <model> <name>
  load <model> <set> <dof> <value>
  load <model> <set> endload <fx> <fy>   (grid models)
  solve <model> <set> [method cholesky|cg|sor|jacobi] [parallel <p>] [substructures <k>]
  stresses <model>
  display model|displacements|stresses <model>
  store <model> | retrieve <name> | delete <name>
  list db | list workspace
  help | quit`

func (s *Session) cmdDefine(args []string) (string, error) {
	if len(args) != 2 || args[0] != "structure" {
		return "", usage("define structure <name>")
	}
	name := args[1]
	if s.WS.Model(name) != nil {
		return "", fmt.Errorf("auvm: model %q already in workspace", name)
	}
	s.WS.PutModel(fem.NewModel(name))
	return fmt.Sprintf("defined structure %q", name), nil
}

func (s *Session) cmdMaterial(args []string) (string, error) {
	if len(args) != 4 {
		return "", usage("material <E> <nu> <thickness> <area>")
	}
	vals, err := floats(args)
	if err != nil {
		return "", err
	}
	if vals[0] <= 0 {
		return "", fmt.Errorf("auvm: modulus must be positive")
	}
	s.mat = fem.Material{E: vals[0], Nu: vals[1], T: vals[2], A: vals[3]}
	return fmt.Sprintf("material E=%g nu=%g t=%g A=%g", vals[0], vals[1], vals[2], vals[3]), nil
}

func (s *Session) cmdGenerate(args []string) (string, error) {
	if len(args) < 2 {
		return "", usage("generate grid|truss|bar <name> ...")
	}
	kind, name := args[0], args[1]
	rest := args[2:]
	switch kind {
	case "grid":
		if len(rest) < 4 {
			return "", usage("generate grid <name> <nx> <ny> <w> <h> [clamp-left] [jitter <frac> <seed>]")
		}
		nx, err1 := strconv.Atoi(rest[0])
		ny, err2 := strconv.Atoi(rest[1])
		w, err3 := strconv.ParseFloat(rest[2], 64)
		h, err4 := strconv.ParseFloat(rest[3], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return "", usage("generate grid: numeric arguments required")
		}
		o := fem.RectGridOpts{NX: nx, NY: ny, W: w, H: h, Mat: s.mat}
		for i := 4; i < len(rest); i++ {
			switch rest[i] {
			case "clamp-left":
				o.ClampLeft = true
			case "jitter":
				if i+2 >= len(rest) {
					return "", usage("jitter <frac> <seed>")
				}
				f, err := strconv.ParseFloat(rest[i+1], 64)
				if err != nil {
					return "", usage("jitter fraction %q", rest[i+1])
				}
				seed, err := strconv.ParseInt(rest[i+2], 10, 64)
				if err != nil {
					return "", usage("jitter seed %q", rest[i+2])
				}
				o.Jitter, o.Seed = f, seed
				i += 2
			default:
				return "", usage("unknown grid option %q", rest[i])
			}
		}
		m, err := fem.RectGrid(name, o)
		if err != nil {
			return "", err
		}
		s.WS.PutModel(m)
		s.gridOpts(name, o)
		return fmt.Sprintf("generated grid %q: %d nodes, %d elements", name, len(m.Nodes), len(m.Elements)), nil
	case "truss":
		if len(rest) != 3 {
			return "", usage("generate truss <name> <bays> <baylen> <height>")
		}
		bays, err1 := strconv.Atoi(rest[0])
		bl, err2 := strconv.ParseFloat(rest[1], 64)
		ht, err3 := strconv.ParseFloat(rest[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return "", usage("generate truss: numeric arguments required")
		}
		m, err := fem.CantileverTruss(name, bays, bl, ht, s.mat)
		if err != nil {
			return "", err
		}
		s.WS.PutModel(m)
		return fmt.Sprintf("generated truss %q: %d nodes, %d members", name, len(m.Nodes), len(m.Elements)), nil
	case "bar":
		if len(rest) != 2 {
			return "", usage("generate bar <name> <segments> <length>")
		}
		n, err1 := strconv.Atoi(rest[0])
		l, err2 := strconv.ParseFloat(rest[1], 64)
		if err1 != nil || err2 != nil {
			return "", usage("generate bar: numeric arguments required")
		}
		m, err := fem.UniaxialBar(name, n, l, s.mat)
		if err != nil {
			return "", err
		}
		s.WS.PutModel(m)
		return fmt.Sprintf("generated bar %q: %d segments", name, n), nil
	default:
		return "", usage("generate grid|truss|bar")
	}
}

func (s *Session) gridOpts(name string, o fem.RectGridOpts) {
	s.grids[name] = o
}

func (s *Session) lookupGridOpts(name string) (fem.RectGridOpts, bool) {
	o, ok := s.grids[name]
	return o, ok
}

func (s *Session) model(name string) (*fem.Model, error) {
	m := s.WS.Model(name)
	if m == nil {
		return nil, fmt.Errorf("auvm: no model %q in workspace (retrieve it first?)", name)
	}
	return m, nil
}

func (s *Session) cmdNode(args []string) (string, error) {
	if len(args) != 3 {
		return "", usage("node <model> <x> <y>")
	}
	m, err := s.model(args[0])
	if err != nil {
		return "", err
	}
	x, err1 := strconv.ParseFloat(args[1], 64)
	y, err2 := strconv.ParseFloat(args[2], 64)
	if err1 != nil || err2 != nil {
		return "", usage("node coordinates must be numeric")
	}
	id := m.AddNode(x, y)
	return fmt.Sprintf("node %d at (%g, %g)", id, x, y), nil
}

func (s *Session) cmdElement(args []string) (string, error) {
	if len(args) < 3 {
		return "", usage("element bar|cst <model> <nodes...>")
	}
	m, err := s.model(args[1])
	if err != nil {
		return "", err
	}
	switch args[0] {
	case "bar":
		if len(args) != 4 {
			return "", usage("element bar <model> <n1> <n2>")
		}
		ns, err := ints(args[2:])
		if err != nil {
			return "", err
		}
		if err := m.AddElement(&fem.Bar{N1: ns[0], N2: ns[1], Mat: s.mat}); err != nil {
			return "", err
		}
		return fmt.Sprintf("bar %d-%d added to %q", ns[0], ns[1], m.Name), nil
	case "cst":
		if len(args) != 5 {
			return "", usage("element cst <model> <n1> <n2> <n3>")
		}
		ns, err := ints(args[2:])
		if err != nil {
			return "", err
		}
		if err := m.AddElement(&fem.CST{N1: ns[0], N2: ns[1], N3: ns[2], Mat: s.mat}); err != nil {
			return "", err
		}
		return fmt.Sprintf("cst %d-%d-%d added to %q", ns[0], ns[1], ns[2], m.Name), nil
	default:
		return "", usage("element bar|cst")
	}
}

func (s *Session) cmdFix(args []string) (string, error) {
	if len(args) != 3 {
		return "", usage("fix node|dof <model> <index>")
	}
	m, err := s.model(args[1])
	if err != nil {
		return "", err
	}
	idx, err := strconv.Atoi(args[2])
	if err != nil {
		return "", usage("fix index %q", args[2])
	}
	switch args[0] {
	case "node":
		if err := m.FixNode(idx); err != nil {
			return "", err
		}
		return fmt.Sprintf("node %d fixed", idx), nil
	case "dof":
		if err := m.FixDOF(idx); err != nil {
			return "", err
		}
		return fmt.Sprintf("dof %d fixed", idx), nil
	default:
		return "", usage("fix node|dof")
	}
}

func (s *Session) cmdLoadSet(args []string) (string, error) {
	if len(args) != 2 {
		return "", usage("loadset <model> <name>")
	}
	if err := s.WS.PutLoadSet(args[0], &fem.LoadSet{Name: args[1]}); err != nil {
		return "", err
	}
	return fmt.Sprintf("load set %q on %q", args[1], args[0]), nil
}

func (s *Session) cmdLoad(args []string) (string, error) {
	if len(args) == 5 && args[2] == "endload" {
		// load <model> <set> endload <fx> <fy> — spread over a grid's
		// right edge.
		o, ok := s.lookupGridOpts(args[0])
		if !ok {
			return "", fmt.Errorf("auvm: endload requires a generated grid model")
		}
		fx, err1 := strconv.ParseFloat(args[3], 64)
		fy, err2 := strconv.ParseFloat(args[4], 64)
		if err1 != nil || err2 != nil {
			return "", usage("endload forces must be numeric")
		}
		ls := fem.EndLoad(args[1], o, fx, fy)
		if err := s.WS.PutLoadSet(args[0], ls); err != nil {
			return "", err
		}
		return fmt.Sprintf("end load %q: %d entries", args[1], len(ls.Entries)), nil
	}
	if len(args) != 4 {
		return "", usage("load <model> <set> <dof> <value>")
	}
	ls := s.WS.LoadSet(args[0], args[1])
	if ls == nil {
		ls = &fem.LoadSet{Name: args[1]}
		if err := s.WS.PutLoadSet(args[0], ls); err != nil {
			return "", err
		}
	}
	dof, err1 := strconv.Atoi(args[2])
	val, err2 := strconv.ParseFloat(args[3], 64)
	if err1 != nil || err2 != nil {
		return "", usage("load dof/value must be numeric")
	}
	ls.Entries = append(ls.Entries, fem.LoadEntry{DOF: dof, Value: val})
	return fmt.Sprintf("load %g on dof %d (%d entries)", val, dof, len(ls.Entries)), nil
}

func (s *Session) cmdSolve(args []string) (string, error) {
	if len(args) < 2 {
		return "", usage("solve <model> <set> [method <m>] [parallel <p>] [substructures <k>]")
	}
	m, err := s.model(args[0])
	if err != nil {
		return "", err
	}
	ls := s.WS.LoadSet(args[0], args[1])
	if ls == nil {
		return "", fmt.Errorf("auvm: no load set %q on model %q", args[1], args[0])
	}
	method := fem.MethodCholesky
	parallel := 0
	substructures := 0
	for i := 2; i < len(args); i++ {
		switch args[i] {
		case "method":
			if i+1 >= len(args) {
				return "", usage("method cholesky|cg|sor|jacobi")
			}
			switch args[i+1] {
			case "cholesky":
				method = fem.MethodCholesky
			case "cg":
				method = fem.MethodCG
			case "sor":
				method = fem.MethodSOR
			case "jacobi":
				method = fem.MethodJacobi
			default:
				return "", usage("unknown method %q", args[i+1])
			}
			i++
		case "parallel":
			if i+1 >= len(args) {
				return "", usage("parallel <p>")
			}
			p, err := strconv.Atoi(args[i+1])
			if err != nil || p < 1 {
				return "", usage("parallel worker count %q", args[i+1])
			}
			parallel = p
			i++
		case "substructures":
			if i+1 >= len(args) {
				return "", usage("substructures <k>")
			}
			k, err := strconv.Atoi(args[i+1])
			if err != nil || k < 1 {
				return "", usage("substructure count %q", args[i+1])
			}
			substructures = k
			i++
		default:
			return "", usage("unknown solve option %q", args[i])
		}
	}
	var sol *fem.Solution
	switch {
	case substructures > 0:
		sub, err := fem.PartitionByX(m, substructures)
		if err != nil {
			return "", err
		}
		sol, err = fem.SolveSubstructured(m, sub, ls, s.RT)
		if err != nil {
			return "", err
		}
	case parallel > 0:
		if s.RT == nil {
			return "", fmt.Errorf("auvm: this session has no parallel machine attached")
		}
		var stats navm.SolveStats
		sol, stats, err = fem.SolveParallel(s.RT, m, ls, parallel)
		if err != nil {
			return "", err
		}
		s.WS.PutSolution(args[0], sol)
		dof, v := MaxDisplacement(sol)
		return fmt.Sprintf("solved %q/%q in parallel on %d workers: %d iterations, %d halo words, makespan %d cycles; max |u| = %g at dof %d",
			args[0], args[1], parallel, stats.Iterations, stats.HaloWords, stats.Makespan, v, dof), nil
	default:
		sol, err = fem.Solve(m, ls, method)
		if err != nil {
			return "", err
		}
	}
	s.WS.PutSolution(args[0], sol)
	dof, v := MaxDisplacement(sol)
	return fmt.Sprintf("solved %q/%q (%s): max |u| = %g at dof %d", args[0], args[1], method, v, dof), nil
}

func (s *Session) cmdStresses(args []string) (string, error) {
	if len(args) != 1 {
		return "", usage("stresses <model>")
	}
	m, err := s.model(args[0])
	if err != nil {
		return "", err
	}
	sol := s.WS.Solution(args[0])
	if sol == nil {
		return "", fmt.Errorf("auvm: model %q has no solution (solve first)", args[0])
	}
	st, err := fem.Stresses(m, sol)
	if err != nil {
		return "", err
	}
	s.WS.PutStresses(args[0], st)
	elem, vm := MaxVonMises(st)
	return fmt.Sprintf("stresses for %q: %d elements, max von Mises %g in element %d", args[0], len(st), vm, elem), nil
}

func (s *Session) cmdDisplay(args []string) (string, error) {
	if len(args) != 2 {
		return "", usage("display model|displacements|stresses <model>")
	}
	name := args[1]
	switch args[0] {
	case "model":
		m, err := s.model(name)
		if err != nil {
			return "", err
		}
		kinds := map[string]int{}
		for _, e := range m.Elements {
			kinds[e.Kind()]++
		}
		var ks []string
		for k, c := range kinds {
			ks = append(ks, fmt.Sprintf("%d %s", c, k))
		}
		sort.Strings(ks)
		return fmt.Sprintf("model %q: %d nodes, %d dofs (%d fixed), elements: %s",
			name, len(m.Nodes), m.NumDOF(), m.NumFixed(), strings.Join(ks, ", ")), nil
	case "displacements":
		sol := s.WS.Solution(name)
		if sol == nil {
			return "", fmt.Errorf("auvm: model %q has no solution", name)
		}
		dof, v := MaxDisplacement(sol)
		return fmt.Sprintf("displacements of %q: |u|∞ = %g (dof %d), norm %g",
			name, v, dof, displacementNorm(sol)), nil
	case "stresses":
		st := s.WS.Stresses(name)
		if st == nil {
			return "", fmt.Errorf("auvm: model %q has no stresses", name)
		}
		elem, vm := MaxVonMises(st)
		return fmt.Sprintf("stresses of %q: max von Mises %g in element %d of %d",
			name, vm, elem, len(st)), nil
	default:
		return "", usage("display model|displacements|stresses")
	}
}

func (s *Session) cmdStore(args []string) (string, error) {
	if len(args) != 1 {
		return "", usage("store <model>")
	}
	m, err := s.model(args[0])
	if err != nil {
		return "", err
	}
	var loads []*fem.LoadSet
	for _, n := range s.WS.LoadSetNames(args[0]) {
		loads = append(loads, s.WS.LoadSet(args[0], n))
	}
	if err := s.DB.Store(m, loads); err != nil {
		return "", err
	}
	return fmt.Sprintf("stored %q (%d load sets) in data base", args[0], len(loads)), nil
}

func (s *Session) cmdRetrieve(args []string) (string, error) {
	if len(args) != 1 {
		return "", usage("retrieve <name>")
	}
	m, loads, err := s.DB.Retrieve(args[0])
	if err != nil {
		return "", err
	}
	s.WS.PutModel(m)
	for _, ls := range loads {
		if err := s.WS.PutLoadSet(m.Name, ls); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("retrieved %q (%d load sets) into workspace", args[0], len(loads)), nil
}

func (s *Session) cmdDelete(args []string) (string, error) {
	if len(args) != 1 {
		return "", usage("delete <name>")
	}
	if !s.DB.Delete(args[0]) {
		return "", fmt.Errorf("%w: %q", ErrNotFound, args[0])
	}
	return fmt.Sprintf("deleted %q from data base", args[0]), nil
}

func (s *Session) cmdList(args []string) (string, error) {
	if len(args) != 1 {
		return "", usage("list db|workspace")
	}
	switch args[0] {
	case "db":
		names := s.DB.Names()
		return fmt.Sprintf("data base (%d models, %d bytes): %s",
			len(names), s.DB.Bytes(), strings.Join(names, " ")), nil
	case "workspace":
		names := s.WS.ModelNames()
		return fmt.Sprintf("workspace (%d models, %d words): %s",
			len(names), s.WS.Words(), strings.Join(names, " ")), nil
	default:
		return "", usage("list db|workspace")
	}
}

// Run drives the session as a REPL: one command per line, output and
// errors written to w, until EOF or quit.
func (s *Session) Run(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		out, err := s.Execute(sc.Text())
		if out != "" {
			fmt.Fprintln(w, out)
		}
		if errors.Is(err, ErrQuit) {
			return nil
		}
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
	}
	return sc.Err()
}

func floats(ss []string) ([]float64, error) {
	out := make([]float64, len(ss))
	for i, s := range ss {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, usage("numeric argument expected, got %q", s)
		}
		out[i] = v
	}
	return out, nil
}

func ints(ss []string) ([]int, error) {
	out := make([]int, len(ss))
	for i, s := range ss {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, usage("integer argument expected, got %q", s)
		}
		out[i] = v
	}
	return out, nil
}
