package auvm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/command"
	"repro/internal/fem"
	"repro/internal/linalg"
)

// Snapshot/restore round-trips a session's workspace through a single
// file: every model with its load sets, latest solution and stresses,
// plus the interpreter state (current material, grid-generation
// parameters) that later verbs like endload depend on.  The format is
// a magic line followed by one gob-encoded snapshotDTO; restore into a
// fresh session reproduces byte-identical renderings for the same
// follow-up script, which the e2e suite pins locally and over the
// wire.

// snapshotMagic heads every snapshot file; the trailing digit is the
// snapshot format version.
const snapshotMagic = "FEM2SNAP1\n"

type snapshotDTO struct {
	Material fem.Material
	Grids    map[string]fem.RectGridOpts
	Models   []modelSnapshotDTO
}

type modelSnapshotDTO struct {
	Model    modelDTO
	Solution *solutionDTO
	Stresses [][]float64
}

// solutionDTO carries the result state of a solve: the displacement
// vector and the convergence metadata that renders in results.  Flop
// accounting and distributed-solve statistics are deliberately not
// preserved — they describe the machine that ran the solve, not the
// solution.
type solutionDTO struct {
	U          []float64
	Backend    string
	Precond    string
	Iterations int
	Residual   float64
	Refactored bool
}

// doSnapshot writes the session's workspace to a file.
func (s *Session) doSnapshot(c command.Snapshot) (command.Result, error) {
	dto := snapshotDTO{Material: s.material(), Grids: map[string]fem.RectGridOpts{}}
	s.stateMu.Lock()
	for name, o := range s.grids {
		dto.Grids[name] = o
	}
	s.stateMu.Unlock()
	for _, name := range s.WS.ModelNames() {
		m := s.WS.Model(name)
		var loads []*fem.LoadSet
		for _, ln := range s.WS.LoadSetNames(name) {
			loads = append(loads, s.WS.LoadSet(name, ln))
		}
		enc, err := encodeModel(m, loads)
		if err != nil {
			return nil, err
		}
		ms := modelSnapshotDTO{Model: *enc, Stresses: s.WS.Stresses(name)}
		if sol := s.WS.Solution(name); sol != nil {
			ms.Solution = &solutionDTO{
				U: append([]float64(nil), sol.U...), Backend: sol.Backend,
				Precond: sol.Precond, Iterations: sol.Iterations,
				Residual: sol.Residual, Refactored: sol.Refactored,
			}
		}
		dto.Models = append(dto.Models, ms)
	}
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	if err := gob.NewEncoder(&buf).Encode(&dto); err != nil {
		return nil, fmt.Errorf("auvm: encode snapshot: %w", err)
	}
	if err := os.WriteFile(c.Path, buf.Bytes(), 0o644); err != nil {
		return nil, fmt.Errorf("auvm: write snapshot: %w", err)
	}
	return &command.SnapshotResult{Path: c.Path, Models: len(dto.Models),
		Bytes: int64(buf.Len())}, nil
}

// doRestore loads a snapshot file into the session's workspace,
// overwriting models of the same name and merging interpreter state.
func (s *Session) doRestore(c command.Restore) (command.Result, error) {
	raw, err := os.ReadFile(c.Path)
	if err != nil {
		return nil, fmt.Errorf("auvm: read snapshot: %w", err)
	}
	if len(raw) < len(snapshotMagic) || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("auvm: %s is not a FEM-2 snapshot", c.Path)
	}
	var dto snapshotDTO
	if err := gob.NewDecoder(bytes.NewReader(raw[len(snapshotMagic):])).Decode(&dto); err != nil {
		return nil, fmt.Errorf("auvm: decode snapshot: %w", err)
	}
	for _, ms := range dto.Models {
		m, loads, err := decodeModel(&ms.Model)
		if err != nil {
			return nil, fmt.Errorf("auvm: restore model %q: %w", ms.Model.Name, err)
		}
		s.WS.PutModel(m)
		for _, ls := range loads {
			if err := s.WS.PutLoadSet(m.Name, ls); err != nil {
				return nil, err
			}
		}
		if ms.Solution != nil {
			s.WS.PutSolution(m.Name, &fem.Solution{
				U: linalg.Vector(ms.Solution.U), Backend: ms.Solution.Backend,
				Precond: ms.Solution.Precond, Iterations: ms.Solution.Iterations,
				Residual: ms.Solution.Residual, Refactored: ms.Solution.Refactored,
			})
		}
		if ms.Stresses != nil {
			s.WS.PutStresses(m.Name, ms.Stresses)
		}
	}
	s.stateMu.Lock()
	s.mat = dto.Material
	for name, o := range dto.Grids {
		s.grids[name] = o
	}
	s.stateMu.Unlock()
	return &command.RestoreResult{Path: c.Path, Models: len(dto.Models)}, nil
}
