package auvm

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/errs"
	"repro/internal/store"
)

// openFileDB opens (or reopens) a file-backed database at path.
func openFileDB(t *testing.T, path string) (*Database, store.Store) {
	t.Helper()
	st, err := store.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return NewDatabaseOn(st, store.BackendFile), st
}

// TestDatabaseSurvivesReopen pins the durability story at the database
// layer: models and solution history stored through a file-backed
// database are all there when a fresh database opens the same file.
func TestDatabaseSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fem2.db")
	db, st := openFileDB(t, path)
	alice := NewSession("alice", db)
	mustExec(t, alice, "generate grid plate 4 3 4 3 clamp-left")
	mustExec(t, alice, "load plate tip endload 0 -100")
	mustExec(t, alice, "solve plate tip")
	mustExec(t, alice, "store plate")
	wantList := mustExec(t, alice, "list db")
	if err := db.AppendSolution(SolutionRecord{Model: "plate", Set: "tip", Backend: "cholesky"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	db2, st2 := openFileDB(t, path)
	defer st2.Close()
	if got := mustExec(t, NewSession("bob", db2), "list db"); got != wantList {
		t.Errorf("list db after reopen = %q, want %q", got, wantList)
	}
	bob := NewSession("bob", db2)
	mustExec(t, bob, "retrieve plate")
	out := mustExec(t, bob, "solve plate tip")
	if !strings.Contains(out, "plate") {
		t.Errorf("solve on recovered model: %q", out)
	}
	recs, err := db2.Solutions("plate")
	if err != nil {
		t.Fatal(err)
	}
	// Alice's solve, the hand-appended record, then bob's solve — the
	// sequence resumed past the recovered ones instead of colliding.
	if len(recs) != 3 {
		t.Fatalf("solution history after reopen = %+v", recs)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Seq >= recs[i].Seq {
			t.Fatalf("sequence did not resume: %+v", recs)
		}
	}
}

// TestDatabaseDeleteClearsSolutions pins Delete's batch semantics: the
// model and its whole solution history vanish atomically.
func TestDatabaseDeleteClearsSolutions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fem2.db")
	db, st := openFileDB(t, path)
	defer st.Close()
	s := NewSession("alice", db)
	mustExec(t, s, "generate bar rod 4 10")
	mustExec(t, s, "store rod")
	if err := db.AppendSolution(SolutionRecord{Model: "rod", Set: "l"}); err != nil {
		t.Fatal(err)
	}
	if !db.Delete("rod") {
		t.Fatal("Delete(rod) = false, want true")
	}
	if _, _, err := db.Retrieve("rod"); !errors.Is(err, errs.ErrNotFound) {
		t.Errorf("Retrieve after delete = %v, want not-found", err)
	}
	if recs, _ := db.Solutions("rod"); len(recs) != 0 {
		t.Errorf("solutions after delete = %+v, want none", recs)
	}
}

// TestSolveRecordsHistory pins the session → database history hook: a
// successful solve appends one solution record.
func TestSolveRecordsHistory(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "generate grid g 4 3 4 3 clamp-left")
	mustExec(t, s, "load g tip endload 0 -100")
	mustExec(t, s, "solve g tip method cg precond jacobi")
	recs, err := s.DB.Solutions("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("history = %+v, want one record", recs)
	}
	r := recs[0]
	if r.Model != "g" || r.Set != "tip" || r.Backend != "cg" || r.Precond != "jacobi" ||
		r.Iterations <= 0 || r.MaxDisp == 0 {
		t.Errorf("solution record = %+v", r)
	}
}

// snapshotScript drives one session through the canonical workload the
// snapshot tests compare across.
func snapshotScript(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, "material 200000 0.3 10 2000")
	mustExec(t, s, "generate grid plate 6 4 6 4 clamp-left")
	mustExec(t, s, "load plate tip endload 0 -250")
	mustExec(t, s, "solve plate tip")
	mustExec(t, s, "stresses plate")
	mustExec(t, s, "generate truss tower 3 100 80")
}

// renderState collects every display rendering the snapshot must
// preserve.
func renderState(t *testing.T, s *Session) string {
	t.Helper()
	return strings.Join([]string{
		mustExec(t, s, "display model plate"),
		mustExec(t, s, "display displacements plate"),
		mustExec(t, s, "display stresses plate"),
		mustExec(t, s, "display model tower"),
		mustExec(t, s, "list workspace"),
	}, "\n")
}

// TestSnapshotRestoreRoundTrip pins the snapshot verbs: restoring into
// a fresh session renders the workspace — models, solutions, stresses,
// material — byte-identically to the session that wrote it.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ws.snap")
	a := newSession(t)
	snapshotScript(t, a)
	want := renderState(t, a)
	out := mustExec(t, a, "snapshot "+path)
	if !strings.Contains(out, "2 models") {
		t.Errorf("snapshot rendering = %q", out)
	}

	b := newSession(t)
	out = mustExec(t, b, "restore "+path)
	if !strings.Contains(out, "restored 2 models") {
		t.Errorf("restore rendering = %q", out)
	}
	if got := renderState(t, b); got != want {
		t.Errorf("restored state diverged:\n got: %q\nwant: %q", got, want)
	}
	// The restored solution is live, not just displayable: stress
	// recovery and a fresh solve both run on it.
	if got, want := mustExec(t, b, "stresses plate"), mustExec(t, a, "stresses plate"); got != want {
		t.Errorf("stresses after restore = %q, want %q", got, want)
	}
}

// TestSnapshotDeterministic pins the snapshot encoding: the same
// workspace snapshots to the same byte count every time (gob of fixed
// concrete types), so the acceptance comparison is stable.
func TestSnapshotDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := newSession(t)
	snapshotScript(t, a)
	mustExec(t, a, "snapshot "+filepath.Join(dir, "one.snap"))
	mustExec(t, a, "snapshot "+filepath.Join(dir, "two.snap"))
	one, err := os.ReadFile(filepath.Join(dir, "one.snap"))
	if err != nil {
		t.Fatal(err)
	}
	two, err := os.ReadFile(filepath.Join(dir, "two.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(two) {
		t.Errorf("snapshot sizes diverged: %d vs %d", len(one), len(two))
	}
}

// TestRestoreErrors pins the failure modes: a missing file and a file
// that is not a snapshot both fail usefully, touching nothing.
func TestRestoreErrors(t *testing.T) {
	s := newSession(t)
	if _, err := s.Execute("restore /no/such/file.snap"); err == nil {
		t.Error("restore of a missing file succeeded")
	}
	bogus := filepath.Join(t.TempDir(), "bogus.snap")
	if err := os.WriteFile(bogus, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("restore " + bogus); err == nil ||
		!strings.Contains(err.Error(), "not a FEM-2 snapshot") {
		t.Errorf("restore of a bogus file = %v", err)
	}
}
