package auvm

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/fem"
	"repro/internal/metrics"
	"repro/internal/navm"
	"repro/internal/trace"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession("alice", NewDatabase())
	s.Metrics = metrics.NewCollector()
	return s
}

// mustExec runs a command and fails the test on error.
func mustExec(t *testing.T, s *Session, line string) string {
	t.Helper()
	out, err := s.Execute(line)
	if err != nil {
		t.Fatalf("command %q: %v", line, err)
	}
	return out
}

func TestHelpAndUnknown(t *testing.T) {
	s := newSession(t)
	if out := mustExec(t, s, "help"); !strings.Contains(out, "solve") {
		t.Error("help missing solve")
	}
	if _, err := s.Execute("frobnicate"); !errors.Is(err, ErrUsage) {
		t.Errorf("unknown command: %v", err)
	}
	// Blank lines and comments are no-ops.
	if out := mustExec(t, s, ""); out != "" {
		t.Error("blank line produced output")
	}
	if out := mustExec(t, s, "# comment"); out != "" {
		t.Error("comment produced output")
	}
}

func TestQuit(t *testing.T) {
	s := newSession(t)
	_, err := s.Execute("quit")
	if !errors.Is(err, ErrQuit) {
		t.Errorf("quit: %v", err)
	}
}

func TestDefineNodeElementFixSolveByHand(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "define structure beam")
	mustExec(t, s, "material 200000 0.3 10 100")
	// A two-bar chain along x.
	mustExec(t, s, "node beam 0 0")
	mustExec(t, s, "node beam 100 0")
	mustExec(t, s, "node beam 200 0")
	mustExec(t, s, "element bar beam 0 1")
	mustExec(t, s, "element bar beam 1 2")
	mustExec(t, s, "fix node beam 0")
	mustExec(t, s, "fix dof beam 3") // y of node 1
	mustExec(t, s, "fix dof beam 5") // y of node 2
	mustExec(t, s, "load beam pull 4 1000")
	out := mustExec(t, s, "solve beam pull")
	if !strings.Contains(out, "solved") {
		t.Errorf("solve output %q", out)
	}
	sol := s.WS.Solution("beam")
	if sol == nil {
		t.Fatal("no solution in workspace")
	}
	// u(tip) = P*L/(E*A) = 1000*200/(200000*100).
	want := 1000.0 * 200 / (200000 * 100)
	if got := sol.U[fem.DOF(2, 0)]; math.Abs(got-want) > 1e-12 {
		t.Errorf("tip displacement %g, want %g", got, want)
	}
	out = mustExec(t, s, "stresses beam")
	if !strings.Contains(out, "von Mises") {
		t.Errorf("stresses output %q", out)
	}
	if got := mustExec(t, s, "display displacements beam"); !strings.Contains(got, "|u|∞") {
		t.Errorf("display displacements %q", got)
	}
	if got := mustExec(t, s, "display stresses beam"); !strings.Contains(got, "von Mises") {
		t.Errorf("display stresses %q", got)
	}
	if got := mustExec(t, s, "display model beam"); !strings.Contains(got, "2 bar") {
		t.Errorf("display model %q", got)
	}
}

func TestGenerateGridEndLoadSolveMethods(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "generate grid plate 4 4 4 4 clamp-left")
	mustExec(t, s, "load plate shear endload 0 -500")
	outD := mustExec(t, s, "solve plate shear method cholesky")
	solD := s.WS.Solution("plate").U
	mustExec(t, s, "solve plate shear method cg")
	solCG := s.WS.Solution("plate").U
	var maxDiff float64
	for i := range solD {
		if d := math.Abs(solD[i] - solCG[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-5 {
		t.Errorf("cholesky vs cg differ by %g", maxDiff)
	}
	if !strings.Contains(outD, "max |u|") {
		t.Errorf("solve output %q", outD)
	}
}

func TestGenerateTrussAndBar(t *testing.T) {
	s := newSession(t)
	if out := mustExec(t, s, "generate truss tr 4 1000 800"); !strings.Contains(out, "members") {
		t.Errorf("truss output %q", out)
	}
	mustExec(t, s, "load tr tip 9 -10000")
	mustExec(t, s, "solve tr tip")
	if out := mustExec(t, s, "generate bar chain 10 100"); !strings.Contains(out, "10 segments") {
		t.Errorf("bar output %q", out)
	}
}

func TestSolveSubstructures(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "generate grid plate 8 4 8 4 clamp-left")
	mustExec(t, s, "load plate tip endload 0 -100")
	mustExec(t, s, "solve plate tip method cholesky")
	ref := s.WS.Solution("plate").U
	mustExec(t, s, "solve plate tip substructures 4")
	got := s.WS.Solution("plate").U
	var maxDiff float64
	for i := range ref {
		if d := math.Abs(ref[i] - got[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Errorf("substructured differs by %g", maxDiff)
	}
}

func TestSolveParallelThroughSession(t *testing.T) {
	s := newSession(t)
	cfg := arch.DefaultConfig()
	cfg.Clusters = 2
	cfg.PEsPerCluster = 4
	rt := navm.NewRuntime(arch.MustNew(cfg))
	rt.AttachInstrumentation(s.Metrics, trace.NewCapped(1000))
	s.RT = rt
	mustExec(t, s, "generate grid plate 6 4 6 4 clamp-left")
	mustExec(t, s, "load plate tip endload 0 -100")
	out := mustExec(t, s, "solve plate tip parallel 4")
	if !strings.Contains(out, "parallel on 4 workers") || !strings.Contains(out, "makespan") {
		t.Errorf("parallel solve output %q", out)
	}
	// Parallel solve without a machine fails cleanly.
	s2 := newSession(t)
	mustExec(t, s2, "generate grid p 2 2 2 2 clamp-left")
	mustExec(t, s2, "load p l endload 1 0")
	if _, err := s2.Execute("solve p l parallel 2"); err == nil {
		t.Error("parallel solve without machine accepted")
	}
}

func TestErrorPaths(t *testing.T) {
	s := newSession(t)
	bad := []string{
		"define structure",            // missing name
		"material 1 2 3",              // missing arg
		"material x 2 3 4",            // non-numeric
		"material -1 0 1 1",           // negative modulus
		"generate grid g 0 1 1 1",     // zero cells
		"generate grid g a b c d",     // non-numeric
		"generate sphere s 1",         // unknown kind
		"node ghost 1 2",              // no model
		"element bar ghost 0 1",       // no model
		"fix node ghost 0",            // no model
		"loadset ghost ls",            // no model
		"solve ghost ls",              // no model
		"stresses ghost",              // no model
		"display displacements ghost", // no solution
		"display wat ghost",           // unknown display
		"store ghost",                 // no model
		"retrieve ghost",              // not in DB
		"delete ghost",                // not in DB
		"list wat",                    // unknown list
	}
	for _, cmd := range bad {
		if _, err := s.Execute(cmd); err == nil {
			t.Errorf("command %q did not fail", cmd)
		}
	}
	// Duplicate define fails.
	mustExec(t, s, "define structure m")
	if _, err := s.Execute("define structure m"); err == nil {
		t.Error("duplicate define accepted")
	}
	// Solve without load set.
	mustExec(t, s, "generate grid g2 2 2 2 2 clamp-left")
	if _, err := s.Execute("solve g2 nope"); err == nil {
		t.Error("solve without loadset accepted")
	}
	// Stresses before solve.
	if _, err := s.Execute("stresses g2"); err == nil {
		t.Error("stresses before solve accepted")
	}
	// endload on a hand-built model.
	mustExec(t, s, "define structure hand")
	if _, err := s.Execute("load hand ls endload 1 0"); err == nil {
		t.Error("endload on non-grid accepted")
	}
}

func TestStoreRetrieveRoundTripThroughDB(t *testing.T) {
	db := NewDatabase()
	alice := NewSession("alice", db)
	alice.Metrics = metrics.NewCollector()
	mustExec(t, alice, "generate truss bridge 4 1000 800")
	mustExec(t, alice, "load bridge tip 9 -5000")
	mustExec(t, alice, "store bridge")

	// Bob retrieves into his own workspace and solves; the database is
	// the shared data path between users.
	bob := NewSession("bob", db)
	bob.Metrics = metrics.NewCollector()
	mustExec(t, bob, "retrieve bridge")
	out := mustExec(t, bob, "solve bridge tip")
	if !strings.Contains(out, "solved") {
		t.Errorf("bob solve %q", out)
	}
	// Bob's copy is independent of Alice's.
	bob.WS.Model("bridge").AddNode(9999, 9999)
	if len(alice.WS.Model("bridge").Nodes) == len(bob.WS.Model("bridge").Nodes) {
		t.Error("retrieve shares storage with the original workspace")
	}
	// Listing shows the model.
	if out := mustExec(t, alice, "list db"); !strings.Contains(out, "bridge") {
		t.Errorf("list db %q", out)
	}
	if out := mustExec(t, alice, "list workspace"); !strings.Contains(out, "bridge") {
		t.Errorf("list workspace %q", out)
	}
	mustExec(t, alice, "delete bridge")
	if _, err := bob.Execute("retrieve bridge"); !errors.Is(err, ErrNotFound) {
		t.Errorf("retrieve after delete: %v", err)
	}
}

func TestDatabaseSerializesMixedElements(t *testing.T) {
	db := NewDatabase()
	m := fem.NewModel("mixed")
	m.AddNode(0, 0)
	m.AddNode(1, 0)
	m.AddNode(0, 1)
	m.AddElement(&fem.Bar{N1: 0, N2: 1, Mat: fem.Steel()})
	m.AddElement(&fem.CST{N1: 0, N2: 1, N3: 2, Mat: fem.Steel()})
	m.AddElement(&fem.Bar{N1: 1, N2: 2, Mat: fem.Steel()})
	m.FixNode(0)
	m.FixDOF(3)
	if err := db.Store(m, []*fem.LoadSet{{Name: "l", Entries: []fem.LoadEntry{{DOF: 4, Value: 2}}}}); err != nil {
		t.Fatal(err)
	}
	got, loads, err := db.Retrieve("mixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Elements) != 3 {
		t.Fatalf("elements = %d", len(got.Elements))
	}
	// Element order preserved.
	if got.Elements[0].Kind() != "bar" || got.Elements[1].Kind() != "cst" || got.Elements[2].Kind() != "bar" {
		t.Error("element order lost")
	}
	if !got.Fixed(0) || !got.Fixed(1) || !got.Fixed(3) || got.Fixed(4) {
		t.Error("constraints lost")
	}
	if len(loads) != 1 || loads[0].Entries[0].Value != 2 {
		t.Errorf("loads = %+v", loads)
	}
	if db.Bytes() == 0 {
		t.Error("Bytes() = 0")
	}
}

func TestWorkspaceAccounting(t *testing.T) {
	s := newSession(t)
	if s.WS.Words() != 0 {
		t.Error("fresh workspace not empty")
	}
	mustExec(t, s, "generate grid g 3 3 3 3 clamp-left")
	w1 := s.WS.Words()
	if w1 == 0 {
		t.Error("model contributes no words")
	}
	mustExec(t, s, "load g l endload 1 0")
	mustExec(t, s, "solve g l")
	if s.WS.Words() <= w1 {
		t.Error("solution did not grow the workspace")
	}
	if !s.WS.DropModel("g") {
		t.Error("DropModel failed")
	}
	if s.WS.DropModel("g") {
		t.Error("double drop succeeded")
	}
	if s.WS.Words() != 0 {
		t.Errorf("workspace after drop = %d words", s.WS.Words())
	}
}

func TestAUVMOperationCounting(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "generate grid g 2 2 2 2 clamp-left")
	mustExec(t, s, "load g l endload 1 0")
	mustExec(t, s, "solve g l")
	if got := s.Metrics.Get(metrics.LevelAUVM, metrics.CtrOps); got != 3 {
		t.Errorf("AUVM ops = %d, want 3", got)
	}
}

func TestRunREPL(t *testing.T) {
	s := newSession(t)
	script := `generate grid g 2 2 2 2 clamp-left
load g l endload 10 0
solve g l
bogus command
quit
solve g l`
	var out strings.Builder
	if err := s.Run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "solved") {
		t.Errorf("REPL output missing solve:\n%s", text)
	}
	if !strings.Contains(text, "error:") {
		t.Errorf("REPL output missing error report:\n%s", text)
	}
	if !strings.Contains(text, "bye") {
		t.Errorf("REPL did not quit:\n%s", text)
	}
	// Nothing after quit ran.
	if strings.Count(text, "solved") != 1 {
		t.Errorf("commands after quit executed:\n%s", text)
	}
}

func TestConcurrentMultiUserDatabase(t *testing.T) {
	db := NewDatabase()
	const users = 8
	var wg sync.WaitGroup
	errs := make([]error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			s := NewSession(string(rune('a'+u)), db)
			name := "m" + string(rune('a'+u))
			cmds := []string{
				"generate grid " + name + " 3 3 3 3 clamp-left",
				"load " + name + " l endload 5 0",
				"solve " + name + " l",
				"store " + name,
				"retrieve " + name,
			}
			for _, c := range cmds {
				if _, err := s.Execute(c); err != nil {
					errs[u] = err
					return
				}
			}
		}(u)
	}
	wg.Wait()
	for u, err := range errs {
		if err != nil {
			t.Errorf("user %d: %v", u, err)
		}
	}
	if len(db.Names()) != users {
		t.Errorf("db has %d models, want %d", len(db.Names()), users)
	}
}

func TestMaxHelpers(t *testing.T) {
	sol := &fem.Solution{U: []float64{0, -3, 2}}
	dof, v := MaxDisplacement(sol)
	if dof != 1 || v != 3 {
		t.Errorf("MaxDisplacement = %d, %g", dof, v)
	}
	elem, vm := MaxVonMises([][]float64{{1}, {-5}, {2}})
	if elem != 1 || vm != 5 {
		t.Errorf("MaxVonMises = %d, %g", elem, vm)
	}
}
