// Package auvm implements the FEM-2 application user's virtual machine:
// the interactive workstation view of the system.  A structural engineer
// stores structural model descriptions, invokes analysis operations, and
// displays results through a small command language; user-local data
// lives in a workspace, and long-term shared data in a model database.
//
// The paper's AUVM component list maps directly onto this package:
// data objects (structure model, grid description, node/element
// description, load set, displacements, stresses), operations (define
// structure model, generate grid, define elements, solve, calculate
// stresses, database store/retrieve), sequence control (direct
// interpretation of user commands), data control (workspace vs data
// base), and storage management (dynamic allocation for models, results,
// workspaces; data movement between data base and workspace).
package auvm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fem"
	"repro/internal/linalg"
)

// Workspace is one user's local data area: models under construction,
// load sets, solutions, and stresses.  It tracks its word footprint so
// experiments can report AUVM-level storage requirements.
type Workspace struct {
	mu        sync.Mutex
	models    map[string]*fem.Model
	loads     map[string]map[string]*fem.LoadSet // model -> set name -> set
	solutions map[string]*fem.Solution           // model -> last solution
	stresses  map[string][][]float64             // model -> element stresses
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		models:    map[string]*fem.Model{},
		loads:     map[string]map[string]*fem.LoadSet{},
		solutions: map[string]*fem.Solution{},
		stresses:  map[string][][]float64{},
	}
}

// PutModel stores (or replaces) a model in the workspace.
func (w *Workspace) PutModel(m *fem.Model) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.models[m.Name] = m
	if w.loads[m.Name] == nil {
		w.loads[m.Name] = map[string]*fem.LoadSet{}
	}
}

// Model returns the named model, or nil.
func (w *Workspace) Model(name string) *fem.Model {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.models[name]
}

// ModelNames returns the workspace's model names, sorted.
func (w *Workspace) ModelNames() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.models))
	for k := range w.models {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DropModel removes a model and its dependent data, reporting whether it
// existed.
func (w *Workspace) DropModel(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.models[name]; !ok {
		return false
	}
	delete(w.models, name)
	delete(w.loads, name)
	delete(w.solutions, name)
	delete(w.stresses, name)
	return true
}

// PutLoadSet attaches a load set to a model.
func (w *Workspace) PutLoadSet(model string, ls *fem.LoadSet) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.models[model]; !ok {
		return fmt.Errorf("auvm: no model %q in workspace", model)
	}
	if w.loads[model] == nil {
		w.loads[model] = map[string]*fem.LoadSet{}
	}
	w.loads[model][ls.Name] = ls
	return nil
}

// LoadSet returns a model's named load set, or nil.
func (w *Workspace) LoadSet(model, name string) *fem.LoadSet {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.loads[model][name]
}

// LoadSetNames returns a model's load set names, sorted.
func (w *Workspace) LoadSetNames(model string) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.loads[model]))
	for k := range w.loads[model] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PutSolution stores a model's latest displacement solution.
func (w *Workspace) PutSolution(model string, s *fem.Solution) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.solutions[model] = s
}

// Solution returns a model's latest solution, or nil.
func (w *Workspace) Solution(model string) *fem.Solution {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.solutions[model]
}

// PutStresses stores a model's latest element stresses.
func (w *Workspace) PutStresses(model string, s [][]float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stresses[model] = s
}

// Stresses returns a model's latest stresses, or nil.
func (w *Workspace) Stresses(model string) [][]float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stresses[model]
}

// Words estimates the workspace footprint in 8-byte words: node
// coordinates, element connectivity, load entries, solutions, and
// stresses.
func (w *Workspace) Words() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var words int64
	for _, m := range w.models {
		words += int64(2 * len(m.Nodes))
		for _, e := range m.Elements {
			words += int64(len(e.Nodes()) + 1)
		}
	}
	for _, sets := range w.loads {
		for _, ls := range sets {
			words += int64(2 * len(ls.Entries))
		}
	}
	for _, s := range w.solutions {
		words += int64(len(s.U))
	}
	for _, ss := range w.stresses {
		for _, s := range ss {
			words += int64(len(s))
		}
	}
	return words
}

// MaxDisplacement returns the largest displacement magnitude and its dof
// for a solution (the display operation's headline number).
func MaxDisplacement(s *fem.Solution) (dof int, value float64) {
	dof = -1
	for d, v := range s.U {
		av := v
		if av < 0 {
			av = -av
		}
		if av > value {
			value, dof = av, d
		}
	}
	return dof, value
}

// MaxVonMises returns the index and value of the worst-stressed element.
func MaxVonMises(stresses [][]float64) (elem int, value float64) {
	elem = -1
	for i, s := range stresses {
		if vm := fem.VonMises(s); vm > value {
			value, elem = vm, i
		}
	}
	return elem, value
}

// displacementNorm is the displayed solution magnitude.
func displacementNorm(s *fem.Solution) float64 {
	return linalg.NormInf(s.U)
}
