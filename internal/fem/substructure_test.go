package fem

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/navm"
	"repro/internal/trace"
)

func plateAndLoad(t *testing.T, nx, ny int) (*Model, RectGridOpts, *LoadSet) {
	t.Helper()
	o := RectGridOpts{NX: nx, NY: ny, W: float64(nx), H: float64(ny), Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("sub-plate", o)
	if err != nil {
		t.Fatal(err)
	}
	return m, o, EndLoad("tip", o, 200, -800)
}

func TestPartitionByXClassifiesDOFs(t *testing.T) {
	m, _, _ := plateAndLoad(t, 8, 4)
	s, err := PartitionByX(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Subs) != 4 {
		t.Fatalf("subs = %d", len(s.Subs))
	}
	// Every element appears exactly once.
	count := 0
	for _, sub := range s.Subs {
		count += len(sub.Elems)
	}
	if count != len(m.Elements) {
		t.Errorf("elements covered %d of %d", count, len(m.Elements))
	}
	// Interface dofs are shared by construction; internal dofs of
	// different substructures are disjoint.
	seen := map[int]int{}
	for si, sub := range s.Subs {
		for _, d := range sub.Internal {
			if prev, dup := seen[d]; dup {
				t.Errorf("dof %d internal to substructures %d and %d", d, prev, si)
			}
			seen[d] = si
		}
	}
	// No internal dof is fixed or on the interface.
	iface := map[int]bool{}
	for _, d := range s.Interface {
		iface[d] = true
	}
	for _, sub := range s.Subs {
		for _, d := range sub.Internal {
			if m.Fixed(d) || iface[d] {
				t.Errorf("dof %d misclassified as internal", d)
			}
		}
	}
	if len(s.Interface) == 0 {
		t.Error("no interface dofs in a 4-way split")
	}
}

func TestPartitionByXErrors(t *testing.T) {
	m, _, _ := plateAndLoad(t, 4, 2)
	if _, err := PartitionByX(m, 0); err == nil {
		t.Error("0 bands accepted")
	}
	if _, err := PartitionByX(m, 100); err == nil {
		t.Error("bands with empty substructures accepted")
	}
	empty := NewModel("e")
	if _, err := PartitionByX(empty, 2); err == nil {
		t.Error("empty model accepted")
	}
}

func TestSubstructuredMatchesDirectSolve(t *testing.T) {
	m, _, ls := plateAndLoad(t, 8, 4)
	ref, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4} {
		s, err := PartitionByX(m, k)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveSubstructured(context.Background(), m, s, ls, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		scale := linalg.NormInf(ref.U)
		if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-8*scale {
			t.Errorf("k=%d: substructured differs from direct by %g (scale %g)", k, d, scale)
		}
	}
}

func TestSubstructuredTrussMatchesDirect(t *testing.T) {
	m, err := CantileverTruss("truss", 6, 500, 400, Material{E: 200000, A: 50})
	if err != nil {
		t.Fatal(err)
	}
	ls := TipLoad("tip", 6, 5000)
	ref, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := PartitionByX(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveSubstructured(context.Background(), m, s, ls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-8*linalg.NormInf(ref.U) {
		t.Errorf("truss substructured differs by %g", d)
	}
}

func TestSubstructuredWithLoadOnInterface(t *testing.T) {
	// A load landing exactly on an interface dof must be counted once.
	m, _, _ := plateAndLoad(t, 4, 2)
	s, err := PartitionByX(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	ls := &LoadSet{Name: "iface", Entries: []LoadEntry{{DOF: s.Interface[0], Value: 123}}}
	ref, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveSubstructured(context.Background(), m, s, ls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-8*linalg.NormInf(ref.U) {
		t.Errorf("interface load differs by %g", d)
	}
}

func TestSubstructuredParallelCostAccounting(t *testing.T) {
	m, _, ls := plateAndLoad(t, 8, 4)
	cfg := arch.DefaultConfig()
	cfg.Clusters = 4
	cfg.PEsPerCluster = 3
	rt := navm.NewRuntime(arch.MustNew(cfg))
	rt.AttachInstrumentation(metrics.NewCollector(), trace.New())
	s, err := PartitionByX(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveSubstructured(context.Background(), m, s, ls, rt)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := Solve(context.Background(), m, ls, SolveOpts{})
	if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-8*linalg.NormInf(ref.U) {
		t.Errorf("parallel-accounted solve differs by %g", d)
	}
	if rt.Machine().Makespan() == 0 {
		t.Error("no simulated time recorded")
	}
	if rt.Machine().Network().TotalMessages() == 0 {
		t.Error("interface gather produced no network traffic")
	}
}

func TestSubstructureParallelSpeedupShape(t *testing.T) {
	// E3's shape: condensing K substructures on K PEs beats condensing
	// them on one PE (the per-substructure work is independent).
	m, _, ls := plateAndLoad(t, 12, 4)
	run := func(clusters int) int64 {
		cfg := arch.DefaultConfig()
		cfg.Clusters = clusters
		cfg.PEsPerCluster = 3
		rt := navm.NewRuntime(arch.MustNew(cfg))
		rt.AttachInstrumentation(metrics.NewCollector(), trace.New())
		s, err := PartitionByX(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SolveSubstructured(context.Background(), m, s, ls, rt); err != nil {
			t.Fatal(err)
		}
		return rt.Machine().Makespan()
	}
	// 1 cluster of 2 workers vs 4 clusters of 2 workers.
	slow := run(1)
	fast := run(4)
	if fast >= slow {
		t.Errorf("4-cluster condensation (%d) not faster than 1-cluster (%d)", fast, slow)
	}
}
