package fem

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestModelBasics(t *testing.T) {
	m := NewModel("m")
	n0 := m.AddNode(0, 0)
	n1 := m.AddNode(1, 0)
	if n0 != 0 || n1 != 1 {
		t.Errorf("node ids %d, %d", n0, n1)
	}
	if err := m.AddElement(&Bar{N1: 0, N2: 1, Mat: Steel()}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddElement(&Bar{N1: 0, N2: 7, Mat: Steel()}); err == nil {
		t.Error("element with missing node accepted")
	}
	if m.NumDOF() != 4 {
		t.Errorf("NumDOF = %d", m.NumDOF())
	}
	if err := m.FixDOF(99); err == nil {
		t.Error("fix of out-of-range dof accepted")
	}
	if err := m.FixNode(0); err != nil {
		t.Fatal(err)
	}
	if !m.Fixed(0) || !m.Fixed(1) || m.Fixed(2) {
		t.Error("Fixed flags wrong")
	}
	if m.NumFixed() != 2 {
		t.Errorf("NumFixed = %d", m.NumFixed())
	}
	free, index := m.FreeDOFs()
	if len(free) != 2 || free[0] != 2 || free[1] != 3 {
		t.Errorf("free = %v", free)
	}
	if index[0] != -1 || index[2] != 0 {
		t.Errorf("index = %v", index)
	}
}

func TestModelValidate(t *testing.T) {
	m := NewModel("v")
	if err := m.Validate(); err == nil {
		t.Error("empty model validated")
	}
	m.AddNode(0, 0)
	m.AddNode(1, 0)
	if err := m.Validate(); err == nil {
		t.Error("element-less model validated")
	}
	m.AddElement(&Bar{N1: 0, N2: 1, Mat: Steel()})
	if err := m.Validate(); err == nil {
		t.Error("unconstrained model validated")
	}
	m.FixNode(0)
	m.FixDOF(DOF(1, 1))
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestBarStiffnessAxial(t *testing.T) {
	m := NewModel("bar")
	m.AddNode(0, 0)
	m.AddNode(2, 0)
	mat := Material{E: 100, A: 3}
	b := &Bar{N1: 0, N2: 1, Mat: mat}
	k, err := b.Stiffness(m)
	if err != nil {
		t.Fatal(err)
	}
	// EA/L = 150, pure x coupling.
	if k.At(0, 0) != 150 || k.At(0, 2) != -150 || k.At(1, 1) != 0 {
		t.Errorf("bar stiffness wrong: %v %v %v", k.At(0, 0), k.At(0, 2), k.At(1, 1))
	}
	if !k.IsSymmetric(0) {
		t.Error("bar stiffness asymmetric")
	}
}

func TestBarZeroLength(t *testing.T) {
	m := NewModel("z")
	m.AddNode(1, 1)
	m.AddNode(1, 1)
	b := &Bar{N1: 0, N2: 1, Mat: Steel()}
	if _, err := b.Stiffness(m); err == nil {
		t.Error("zero-length bar accepted")
	}
	if _, err := b.Stress(m, linalg.NewVector(4)); err == nil {
		t.Error("zero-length bar stress accepted")
	}
}

func TestUniaxialBarExactSolution(t *testing.T) {
	// P = 1000 N on a chain of 10 bars: u(x) = P·x/(E·A).
	mat := Material{E: 200000, A: 10}
	const L, P = 100.0, 1000.0
	m, err := UniaxialBar("chain", 10, L, mat)
	if err != nil {
		t.Fatal(err)
	}
	ls := &LoadSet{Name: "tip", Entries: []LoadEntry{{DOF: DOF(10, 0), Value: P}}}
	for _, method := range []string{linalg.BackendCholesky, linalg.BackendCG, linalg.BackendSOR, linalg.BackendJacobi} {
		sol, err := Solve(context.Background(), m, ls, SolveOpts{Backend: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		// Direct solves hit machine precision; iterative ones stop at
		// the 1e-8 relative residual.
		utol := 1e-12
		stol := 1e-7
		if method != linalg.BackendCholesky {
			utol, stol = 1e-8, 1e-4
		}
		for i := 0; i <= 10; i++ {
			x := m.Nodes[i].X
			want := P * x / (mat.E * mat.A)
			got := sol.U[DOF(i, 0)]
			if math.Abs(got-want) > utol {
				t.Errorf("%v: u(%g) = %g, want %g", method, x, got, want)
			}
		}
		// Uniform axial stress P/A in every element.
		stresses, err := Stresses(m, sol)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range stresses {
			if math.Abs(s[0]-P/mat.A) > stol {
				t.Errorf("%v: element %d stress %g, want %g", method, i, s[0], P/mat.A)
			}
		}
	}
}

func TestReactionsBalanceAppliedLoad(t *testing.T) {
	mat := Material{E: 200000, A: 10}
	m, _ := UniaxialBar("chain", 5, 50, mat)
	const P = 777.0
	ls := &LoadSet{Name: "tip", Entries: []LoadEntry{{DOF: DOF(5, 0), Value: P}}}
	sol, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	reac, err := Reactions(m, sol)
	if err != nil {
		t.Fatal(err)
	}
	// The clamped root must carry -P in x.
	if r := reac[DOF(0, 0)]; math.Abs(r+P) > 1e-8 {
		t.Errorf("root reaction %g, want %g", r, -P)
	}
}

func TestCSTPatchTest(t *testing.T) {
	// The patch test: a mesh of CSTs under a linear displacement field
	// must reproduce the field exactly and give constant stress.
	// Uniaxial tension of a rectangular plate: σx = p, u_x = p·x/E,
	// u_y = -ν·p·y/E.
	mat := Material{E: 1000, Nu: 0.25, T: 2}
	o := RectGridOpts{NX: 4, NY: 3, W: 4, H: 3, Mat: mat}
	m, err := RectGrid("patch", o)
	if err != nil {
		t.Fatal(err)
	}
	// Constraints for pure uniaxial stress: u_x = 0 on x=0 edge,
	// u_y = 0 at one node only (no Poisson restraint).
	for j := 0; j <= o.NY; j++ {
		m.FixDOF(DOF(GridNodeID(o.NY, 0, j), 0))
	}
	m.FixDOF(DOF(GridNodeID(o.NY, 0, 0), 1))
	const p = 10.0 // traction
	// Consistent nodal loads on the right edge: p·t·H total, half
	// weights at the corners.
	total := p * mat.T * o.H
	ls := &LoadSet{Name: "tension"}
	for j := 0; j <= o.NY; j++ {
		w := 1.0
		if j == 0 || j == o.NY {
			w = 0.5
		}
		ls.Entries = append(ls.Entries, LoadEntry{
			DOF:   DOF(GridNodeID(o.NY, o.NX, j), 0),
			Value: total * w / float64(o.NY),
		})
	}
	sol, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= o.NX; i++ {
		for j := 0; j <= o.NY; j++ {
			n := GridNodeID(o.NY, i, j)
			x := m.Nodes[n].X
			wantUx := p * x / mat.E
			if got := sol.U[DOF(n, 0)]; math.Abs(got-wantUx) > 1e-9 {
				t.Errorf("u_x(%d,%d) = %g, want %g", i, j, got, wantUx)
			}
		}
	}
	stresses, err := Stresses(m, sol)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stresses {
		if math.Abs(s[0]-p) > 1e-8 || math.Abs(s[1]) > 1e-8 || math.Abs(s[2]) > 1e-8 {
			t.Errorf("element %d stress = %v, want [%g 0 0]", i, s, p)
		}
		if vm := VonMises(s); math.Abs(vm-p) > 1e-8 {
			t.Errorf("element %d von Mises = %g", i, vm)
		}
	}
}

func TestCSTDegenerateTriangle(t *testing.T) {
	m := NewModel("d")
	m.AddNode(0, 0)
	m.AddNode(1, 0)
	m.AddNode(2, 0) // collinear
	c := &CST{N1: 0, N2: 1, N3: 2, Mat: Steel()}
	if _, err := c.Stiffness(m); err == nil {
		t.Error("degenerate CST accepted")
	}
}

func TestAssembledSystemSPD(t *testing.T) {
	o := RectGridOpts{NX: 5, NY: 4, W: 5, H: 4, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("spd", o)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	if !asm.K.IsSymmetric(1e-9) {
		t.Error("assembled stiffness not symmetric")
	}
	if _, err := asm.K.ToBanded().CholeskyFactor(nil); err != nil {
		t.Errorf("assembled stiffness not positive definite: %v", err)
	}
	wantN := m.NumDOF() - m.NumFixed()
	if asm.K.N != wantN {
		t.Errorf("reduced order %d, want %d", asm.K.N, wantN)
	}
}

func TestExpandReduceRoundTrip(t *testing.T) {
	o := RectGridOpts{NX: 3, NY: 3, W: 3, H: 3, Mat: Steel(), ClampLeft: true}
	m, _ := RectGrid("er", o)
	asm, err := Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewVector(asm.K.N)
	for i := range x {
		x[i] = float64(i + 1)
	}
	full := asm.Expand(x)
	back := asm.Reduce(full)
	if linalg.MaxAbsDiff(x, back) != 0 {
		t.Error("Expand/Reduce not inverse")
	}
	for d := 0; d < m.NumDOF(); d++ {
		if m.Fixed(d) && full[d] != 0 {
			t.Errorf("fixed dof %d nonzero", d)
		}
	}
}

func TestAllMethodsAgreeOnPlate(t *testing.T) {
	o := RectGridOpts{NX: 4, NY: 4, W: 4, H: 4, Mat: Steel(), ClampLeft: true}
	m, _ := RectGrid("agree", o)
	ls := EndLoad("shear", o, 0, -500)
	ref, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Jacobi is excluded: its spectral radius on CST plates is too close
	// to 1 for the default budget (the classical reason the FEM
	// literature moved to SOR and CG).
	scale := linalg.NormInf(ref.U)
	for _, method := range []string{linalg.BackendCG, linalg.BackendSOR} {
		sol, err := Solve(context.Background(), m, ls, SolveOpts{Backend: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if d := linalg.MaxAbsDiff(sol.U, ref.U); d > 1e-5*scale {
			t.Errorf("%v differs from direct by %g (scale %g)", method, d, scale)
		}
	}
}

func TestCantileverTrussTipDeflection(t *testing.T) {
	m, err := CantileverTruss("truss", 4, 1000, 1000, Material{E: 200000, A: 100})
	if err != nil {
		t.Fatal(err)
	}
	ls := TipLoad("tip", 4, 10000)
	sol, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tip := sol.U[DOF(4, 1)]
	if tip >= 0 {
		t.Errorf("tip moved up (%g) under downward load", tip)
	}
	// Stresses exist and the worst member is loaded.
	stresses, err := Stresses(m, sol)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, s := range stresses {
		if v := math.Abs(s[0]); v > worst {
			worst = v
		}
	}
	if worst == 0 {
		t.Error("no member carries stress")
	}
}

func TestPlateReactionsBalanceTotalLoad(t *testing.T) {
	// Global equilibrium: the clamped edge's y reactions must sum to
	// minus the total applied shear.
	o := RectGridOpts{NX: 6, NY: 4, W: 6, H: 4, Mat: Steel(), ClampLeft: true}
	m, _ := RectGrid("eq", o)
	const fy = -1234.0
	ls := EndLoad("shear", o, 0, fy)
	sol, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	reac, err := Reactions(m, sol)
	if err != nil {
		t.Fatal(err)
	}
	var sumY, sumX float64
	for d, v := range reac {
		if d%2 == 1 {
			sumY += v
		} else {
			sumX += v
		}
	}
	if math.Abs(sumY+fy) > 1e-6 {
		t.Errorf("y reactions sum to %g, want %g", sumY, -fy)
	}
	if math.Abs(sumX) > 1e-6 {
		t.Errorf("x reactions sum to %g, want 0", sumX)
	}
}

func TestRHSRejectsBadDOF(t *testing.T) {
	m, _ := UniaxialBar("r", 2, 2, Steel())
	_, index := m.FreeDOFs()
	free, _ := m.FreeDOFs()
	if _, err := m.RHS(&LoadSet{Entries: []LoadEntry{{DOF: 999, Value: 1}}}, index, len(free)); err == nil {
		t.Error("load on missing dof accepted")
	}
}

func TestGridGeneratorErrors(t *testing.T) {
	if _, err := RectGrid("x", RectGridOpts{NX: 0, NY: 1, W: 1, H: 1}); err == nil {
		t.Error("0-cell grid accepted")
	}
	if _, err := RectGrid("x", RectGridOpts{NX: 1, NY: 1, W: 0, H: 1}); err == nil {
		t.Error("zero-width grid accepted")
	}
	if _, err := CantileverTruss("t", 0, 1, 1, Steel()); err == nil {
		t.Error("0-bay truss accepted")
	}
	if _, err := UniaxialBar("b", 0, 1, Steel()); err == nil {
		t.Error("0-element bar accepted")
	}
}

func TestJitteredGridStillSolvable(t *testing.T) {
	o := RectGridOpts{NX: 6, NY: 6, W: 6, H: 6, Mat: Steel(), ClampLeft: true, Jitter: 0.25, Seed: 3}
	m, err := RectGrid("irregular", o)
	if err != nil {
		t.Fatal(err)
	}
	ls := EndLoad("pull", o, 1000, 0)
	sol, err := Solve(context.Background(), m, ls, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if linalg.NormInf(sol.U) == 0 {
		t.Error("load produced no displacement")
	}
	// Determinism: same seed, same mesh.
	m2, _ := RectGrid("irregular2", o)
	for i := range m.Nodes {
		if m.Nodes[i] != m2.Nodes[i] {
			t.Fatal("jitter not deterministic")
		}
	}
}

// Property: for random bar orientations the element stiffness is
// symmetric positive semidefinite with exactly two zero eigen-directions
// (rigid translations along the kernel) — checked via xᵀKx ≥ 0.
func TestQuickBarStiffnessPSD(t *testing.T) {
	f := func(x1, y1, x2, y2 int8, probe [4]int8) bool {
		if x1 == x2 && y1 == y2 {
			return true
		}
		m := NewModel("q")
		m.AddNode(float64(x1), float64(y1))
		m.AddNode(float64(x2), float64(y2))
		b := &Bar{N1: 0, N2: 1, Mat: Material{E: 100, A: 1}}
		k, err := b.Stiffness(m)
		if err != nil {
			return false
		}
		if !k.IsSymmetric(1e-9) {
			return false
		}
		v := linalg.Vector{float64(probe[0]), float64(probe[1]), float64(probe[2]), float64(probe[3])}
		kv := k.MulVec(v, nil, nil)
		return linalg.Dot(v, kv, nil) >= -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: rigid body translation produces zero stress in any element.
func TestQuickRigidTranslationZeroStress(t *testing.T) {
	o := RectGridOpts{NX: 2, NY: 2, W: 2, H: 2, Mat: Steel(), ClampLeft: true}
	m, _ := RectGrid("rigid", o)
	f := func(tx, ty int8) bool {
		u := linalg.NewVector(m.NumDOF())
		for n := range m.Nodes {
			u[DOF(n, 0)] = float64(tx)
			u[DOF(n, 1)] = float64(ty)
		}
		for _, e := range m.Elements {
			s, err := e.Stress(m, u)
			if err != nil {
				return false
			}
			for _, c := range s {
				if math.Abs(c) > 1e-8*math.Abs(float64(tx)+float64(ty)+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
