// Package fem implements the finite element substrate of the FEM-2
// reproduction: the structure/substructure models, grid descriptions,
// node/element descriptions, load sets, displacement solutions, and
// element stresses that the application user's virtual machine operates
// on.
//
// The element library matches the structural-analysis workloads the
// Finite Element Machine targeted: 2D bar (truss) elements and constant
// strain triangles in plane stress.  Assembly produces the symmetric
// positive definite systems the paper's "solution of a particular system
// of simultaneous equations" parallelism level refers to.
package fem

import (
	"errors"
	"fmt"

	"repro/internal/linalg"
)

// DOFPerNode is the planar degrees of freedom per node (u_x, u_y).
const DOFPerNode = 2

// ErrModel is the base error for structurally invalid models.
var ErrModel = errors.New("fem: invalid model")

// NodeCoord is one grid node's position.
type NodeCoord struct {
	X, Y float64
}

// Material carries the element material/section properties: Young's
// modulus E, Poisson ratio Nu, plate thickness T (CST), and bar
// cross-section area A.
type Material struct {
	E, Nu, T, A float64
}

// Steel returns a typical structural steel in consistent units
// (N, mm): E = 200 GPa = 200000 N/mm², ν = 0.3.
func Steel() Material { return Material{E: 200000, Nu: 0.3, T: 10, A: 100} }

// Element is one finite element: it knows its connectivity, its local
// stiffness matrix, and how to recover stresses from nodal displacements.
type Element interface {
	// Kind returns the element type name ("bar", "cst").
	Kind() string
	// Nodes returns the global node indices, element-local order.
	Nodes() []int
	// Stiffness returns the element stiffness matrix in global
	// coordinates, of order DOFPerNode*len(Nodes()).
	Stiffness(m *Model) (*linalg.Dense, error)
	// Stress recovers the element stress components from the global
	// displacement vector.
	Stress(m *Model, u linalg.Vector) ([]float64, error)
}

// LoadEntry applies a force value to one global degree of freedom.
type LoadEntry struct {
	DOF   int
	Value float64
}

// LoadSet is a named collection of applied loads — the AUVM "load set"
// data object.
type LoadSet struct {
	Name    string
	Entries []LoadEntry
}

// Model is the AUVM "structure/substructure model": grid, elements, and
// boundary conditions.  Load sets are kept separately so one model can be
// solved for many load sets.
type Model struct {
	// Name identifies the model in the database.
	Name string
	// Nodes is the grid description.
	Nodes []NodeCoord
	// Elements is the element description list.
	Elements []Element

	fixed map[int]bool
	// factors caches direct-solve factorisations of this model's
	// assembled system; see Factors.
	factors linalg.FactorCache
}

// NewModel returns an empty model.
func NewModel(name string) *Model {
	return &Model{Name: name, fixed: map[int]bool{}}
}

// AddNode appends a grid node and returns its index.
func (m *Model) AddNode(x, y float64) int {
	m.Nodes = append(m.Nodes, NodeCoord{X: x, Y: y})
	return len(m.Nodes) - 1
}

// AddElement appends an element after validating its connectivity.
func (m *Model) AddElement(e Element) error {
	for _, n := range e.Nodes() {
		if n < 0 || n >= len(m.Nodes) {
			return fmt.Errorf("%w: element references node %d of %d", ErrModel, n, len(m.Nodes))
		}
	}
	m.Elements = append(m.Elements, e)
	return nil
}

// Factors returns the model's direct-solve factor cache: one retained
// DirectPlan per direct backend, so repeated solves of an unchanged
// model reuse the factorisation (Solve consults it automatically).  A
// cache hit requires the freshly assembled values to equal the factored
// ones bit for bit, so mutating the model — through its methods or its
// exported fields — always triggers an in-place refactor on the next
// solve rather than a stale answer.  Safe for concurrent use.
func (m *Model) Factors() *linalg.FactorCache { return &m.factors }

// Touch drops the model's cached factorisations outright, forcing the
// next direct solve to replan.  Mutations are detected by value
// comparison anyway, so Touch is only needed to release the cache's
// memory early.
func (m *Model) Touch() { m.factors.Invalidate() }

// NumDOF returns the total degree-of-freedom count.
func (m *Model) NumDOF() int { return DOFPerNode * len(m.Nodes) }

// DOF returns the global index of node n's d'th local freedom.
func DOF(n, d int) int { return DOFPerNode*n + d }

// FixDOF constrains one degree of freedom to zero displacement.
func (m *Model) FixDOF(dof int) error {
	if dof < 0 || dof >= m.NumDOF() {
		return fmt.Errorf("%w: fix dof %d of %d", ErrModel, dof, m.NumDOF())
	}
	if m.fixed == nil {
		m.fixed = map[int]bool{}
	}
	m.fixed[dof] = true
	return nil
}

// FixNode constrains both freedoms of a node (a pin support).
func (m *Model) FixNode(n int) error {
	if err := m.FixDOF(DOF(n, 0)); err != nil {
		return err
	}
	return m.FixDOF(DOF(n, 1))
}

// Fixed reports whether a dof is constrained.
func (m *Model) Fixed(dof int) bool { return m.fixed[dof] }

// NumFixed returns the number of constrained freedoms.
func (m *Model) NumFixed() int { return len(m.fixed) }

// FreeDOFs returns the unconstrained global dof indices in ascending
// order, plus the inverse map from global dof to reduced index (-1 for
// fixed).
func (m *Model) FreeDOFs() (free []int, index []int) {
	index = make([]int, m.NumDOF())
	for i := range index {
		index[i] = -1
	}
	for d := 0; d < m.NumDOF(); d++ {
		if !m.fixed[d] {
			index[d] = len(free)
			free = append(free, d)
		}
	}
	return free, index
}

// Validate checks the model is solvable: nodes exist, elements exist, and
// at least three freedoms are fixed (rigid body modes removed in 2D).
func (m *Model) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("%w: no nodes", ErrModel)
	}
	if len(m.Elements) == 0 {
		return fmt.Errorf("%w: no elements", ErrModel)
	}
	if len(m.fixed) < 3 {
		return fmt.Errorf("%w: only %d constrained freedoms; 2D statics needs >= 3", ErrModel, len(m.fixed))
	}
	return nil
}

// RHS builds the load vector over free dofs for a load set, using the
// dof→reduced index map from FreeDOFs.
func (m *Model) RHS(ls *LoadSet, index []int, nfree int) (linalg.Vector, error) {
	b := linalg.NewVector(nfree)
	for _, e := range ls.Entries {
		if e.DOF < 0 || e.DOF >= m.NumDOF() {
			return nil, fmt.Errorf("%w: load on dof %d of %d", ErrModel, e.DOF, m.NumDOF())
		}
		if idx := index[e.DOF]; idx >= 0 {
			b[idx] += e.Value
		}
		// Loads on fixed dofs go straight into the reactions; they
		// do not enter the reduced system.
	}
	return b, nil
}
