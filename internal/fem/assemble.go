package fem

import (
	"fmt"

	"repro/internal/linalg"
)

// Assembled is a model's reduced (constraints eliminated) global system.
type Assembled struct {
	// K is the reduced stiffness matrix over free dofs.
	K *linalg.CSR
	// Free lists the global dof of each reduced index.
	Free []int
	// Index maps global dof -> reduced index (-1 when fixed).
	Index []int
	// Stats carries the assembly flop count.
	Stats linalg.Stats
}

// Assemble builds the reduced global stiffness matrix by the direct
// stiffness method: every element's stiffness scatters into the global
// system at its free dofs, with fixed rows/columns eliminated — the AUVM
// "solve structure model" operation's first half.  It is the one-shot
// form of the symbolic/numeric split: a Workspace is built, run once,
// and discarded.  Callers that assemble a topology repeatedly should
// retain a Workspace (NewWorkspace) instead.
func Assemble(m *Model) (*Assembled, error) {
	ws, err := NewWorkspace(m)
	if err != nil {
		return nil, err
	}
	return ws.Assemble()
}

// AssembleTriplets is the reference assembly path: element stiffnesses
// append to a triplet list that is then sorted into CSR form, with
// zero-valued entries skipped.  It is kept for differential testing and
// benchmarking against the Workspace scatter path; production callers
// use Assemble.  On shared entries the two paths agree bitwise (both
// sum contributions in element order); the Workspace pattern may store
// additional explicit zeros where an element stiffness entry is exactly
// zero.
func AssembleTriplets(m *Model) (*Assembled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	free, index := m.FreeDOFs()
	var ts []linalg.Triplet
	st := linalg.Stats{}
	for ei, e := range m.Elements {
		ke, err := e.Stiffness(m)
		if err != nil {
			return nil, fmt.Errorf("fem: element %d: %w", ei, err)
		}
		dofs := ElementDOFs(e)
		if ke.Rows != len(dofs) || ke.Cols != len(dofs) {
			return nil, fmt.Errorf("fem: element %d stiffness %dx%d for %d dofs", ei, ke.Rows, ke.Cols, len(dofs))
		}
		for i, gi := range dofs {
			ri := index[gi]
			if ri < 0 {
				continue
			}
			for j, gj := range dofs {
				rj := index[gj]
				if rj < 0 {
					continue
				}
				v := ke.At(i, j)
				if v != 0 {
					ts = append(ts, linalg.Triplet{Row: ri, Col: rj, Val: v})
					st.Flops++
				}
			}
		}
	}
	k, err := linalg.NewCSRFromTriplets(len(free), ts)
	if err != nil {
		return nil, err
	}
	return &Assembled{K: k, Free: free, Index: index, Stats: st}, nil
}

// Expand scatters a reduced solution back to the full dof vector, with
// zeros at fixed dofs.
func (a *Assembled) Expand(x linalg.Vector) linalg.Vector {
	full := linalg.NewVector(len(a.Index))
	for ri, d := range a.Free {
		full[d] = x[ri]
	}
	return full
}

// Reduce gathers a full dof vector into reduced form.
func (a *Assembled) Reduce(full linalg.Vector) linalg.Vector {
	out := linalg.NewVector(len(a.Free))
	for ri, d := range a.Free {
		out[ri] = full[d]
	}
	return out
}
