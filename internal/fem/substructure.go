package fem

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/errs"
	"repro/internal/linalg"
	"repro/internal/navm"
)

// Substructure is one piece of a partitioned model: a set of elements,
// the free dofs interior to the piece, and the free dofs it shares with
// other pieces (the interface).
type Substructure struct {
	// Elems indexes the parent model's element list.
	Elems []int
	// Internal lists global free dofs touched only by this piece.
	Internal []int
	// Boundary lists global free dofs shared with other pieces.
	Boundary []int
}

// Substructured is a model partitioned for substructure analysis — the
// paper's "parallelism in the substructure analysis of a larger
// structure".
type Substructured struct {
	Model *Model
	Subs  []*Substructure
	// Interface lists every shared global dof, sorted; the condensed
	// problem is solved over these.
	Interface []int
}

// PartitionByX splits the model's elements into k vertical bands by
// element centroid, the natural decomposition of an elongated structure
// (a wing, a fuselage section) into substructures.
func PartitionByX(m *Model, k int) (*Substructured, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: %d substructures", ErrModel, k)
	}
	if len(m.Elements) == 0 {
		return nil, fmt.Errorf("%w: no elements", ErrModel)
	}
	minX, maxX := m.Nodes[0].X, m.Nodes[0].X
	for _, n := range m.Nodes {
		if n.X < minX {
			minX = n.X
		}
		if n.X > maxX {
			maxX = n.X
		}
	}
	width := maxX - minX
	if width == 0 {
		width = 1
	}
	s := &Substructured{Model: m, Subs: make([]*Substructure, k)}
	for i := range s.Subs {
		s.Subs[i] = &Substructure{}
	}
	// Which substructures touch each dof?
	touch := make([]map[int]bool, m.NumDOF())
	for ei, e := range m.Elements {
		var cx float64
		for _, n := range e.Nodes() {
			cx += m.Nodes[n].X
		}
		cx /= float64(len(e.Nodes()))
		band := int(float64(k) * (cx - minX) / width)
		if band >= k {
			band = k - 1
		}
		if band < 0 {
			band = 0
		}
		s.Subs[band].Elems = append(s.Subs[band].Elems, ei)
		for _, d := range ElementDOFs(e) {
			if touch[d] == nil {
				touch[d] = map[int]bool{}
			}
			touch[d][band] = true
		}
	}
	for i := range s.Subs {
		if len(s.Subs[i].Elems) == 0 {
			return nil, fmt.Errorf("%w: substructure %d is empty; use fewer bands", ErrModel, i)
		}
	}
	// Classify free dofs.
	ifaceSet := map[int]bool{}
	for d := 0; d < m.NumDOF(); d++ {
		if m.Fixed(d) || touch[d] == nil {
			continue
		}
		if len(touch[d]) > 1 {
			ifaceSet[d] = true
			for band := range touch[d] {
				s.Subs[band].Boundary = append(s.Subs[band].Boundary, d)
			}
		} else {
			for band := range touch[d] {
				s.Subs[band].Internal = append(s.Subs[band].Internal, d)
			}
		}
	}
	for d := range ifaceSet {
		s.Interface = append(s.Interface, d)
	}
	sort.Ints(s.Interface)
	for _, sub := range s.Subs {
		sort.Ints(sub.Internal)
		sort.Ints(sub.Boundary)
	}
	return s, nil
}

// condensed is one substructure's Schur complement contribution.
type condensed struct {
	sub *Substructure
	// schur is |Boundary|×|Boundary|: K_bb - K_biᵀ·K_ii⁻¹·K_ib.
	schur *linalg.Dense
	// fb is the condensed boundary load.
	fb linalg.Vector
	// chol (the banded Cholesky factor of K_ii) and kib allow internal
	// back-substitution.
	chol *linalg.Banded
	kib  *linalg.Dense
	fi   linalg.Vector
	// flops spent condensing (for cost attribution).
	flops int64
}

// condense performs static condensation of one substructure for one load
// set.  K_ii is stored and factored in symmetric banded form: the
// internal dofs of a vertical band are nearly contiguous in the mesh
// numbering, so the interior block has a small local bandwidth and the
// factorisation costs O(ni·bw²) instead of the dense O(ni³).
func condense(m *Model, sub *Substructure, ls *LoadSet) (*condensed, error) {
	ni, nb := len(sub.Internal), len(sub.Boundary)
	idxI := map[int]int{}
	for i, d := range sub.Internal {
		idxI[d] = i
	}
	idxB := map[int]int{}
	for i, d := range sub.Boundary {
		idxB[d] = i
	}
	// Symbolic pass: the interior block's local half-bandwidth, from
	// connectivity alone.
	bw := 0
	for _, ei := range sub.Elems {
		dofs := ElementDOFs(m.Elements[ei])
		for _, gi := range dofs {
			ii, isI := idxI[gi]
			if !isI {
				continue
			}
			for _, gj := range dofs {
				ji, jIsI := idxI[gj]
				if !jIsI {
					continue
				}
				if d := ii - ji; d > bw {
					bw = d
				}
			}
		}
	}
	kii := linalg.NewBanded(ni, bw)
	kib := linalg.NewDense(ni, nb)
	kbb := linalg.NewDense(nb, nb)
	st := &linalg.Stats{}
	for _, ei := range sub.Elems {
		e := m.Elements[ei]
		ke, err := e.Stiffness(m)
		if err != nil {
			return nil, err
		}
		dofs := ElementDOFs(e)
		for i, gi := range dofs {
			ii, isI := idxI[gi]
			ib, isB := idxB[gi]
			if !isI && !isB {
				continue // fixed dof
			}
			for j, gj := range dofs {
				ji, jIsI := idxI[gj]
				jb, jIsB := idxB[gj]
				v := ke.At(i, j)
				if v == 0 {
					continue
				}
				switch {
				case isI && jIsI:
					// Banded storage holds each symmetric pair once, so
					// only the lower-triangle visit scatters (ke is
					// symmetric; the upper visit is its mirror).
					if ii >= ji {
						kii.AddAt(ii, ji, v)
					}
				case isI && jIsB:
					kib.AddAt(ii, jb, v)
				case isB && jIsB:
					kbb.AddAt(ib, jb, v)
					// isB && jIsI lands in kib via the symmetric visit.
				}
				st.Flops++
			}
		}
	}
	// Loads restricted to this substructure's dofs.
	// Internal loads enter the condensation here; loads on interface
	// dofs are applied once, by SolveSubstructured, when the interface
	// system is assembled.
	fi := linalg.NewVector(ni)
	for _, le := range ls.Entries {
		if i, ok := idxI[le.DOF]; ok {
			fi[i] += le.Value
		}
	}
	c := &condensed{sub: sub, fi: fi, kib: kib}
	if ni > 0 {
		chol, err := kii.CholeskyFactor(st)
		if err != nil {
			return nil, fmt.Errorf("fem: substructure interior not SPD: %w", err)
		}
		c.chol = chol
		// S = K_bb - K_ibᵀ · (K_ii⁻¹ K_ib)
		y := chol.CholeskySolveMatrix(kib, st) // ni×nb
		s := kib.Transpose().Mul(y, st)
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				kbb.AddAt(i, j, -s.At(i, j))
			}
		}
		// fb := -K_ibᵀ · K_ii⁻¹ fi  (applied loads on boundary added
		// by the caller)
		z := chol.CholeskySolve(fi, st)
		corr := kib.Transpose().MulVec(z, nil, st)
		fbv := linalg.NewVector(nb)
		for i := range fbv {
			fbv[i] = -corr[i]
		}
		c.fb = fbv
	} else {
		c.fb = linalg.NewVector(nb)
	}
	c.schur = kbb
	c.flops = st.Flops
	return c, nil
}

// SolveSubstructured solves the model by substructure analysis: each
// substructure condenses its interior onto the interface (fanned out
// over a host worker pool, and costed in parallel on the simulated
// machine when rt is non-nil), the assembled interface system is solved,
// and interiors are recovered by back-substitution.  ctx is checked
// before each condensation and before the interface solve; a cancelled
// solve returns an error wrapping errs.ErrCancelled.  The host pool uses
// GOMAXPROCS workers; SolveSubstructuredWorkers pins the count.
func SolveSubstructured(ctx context.Context, m *Model, s *Substructured, ls *LoadSet, rt *navm.Runtime) (*Solution, error) {
	return SolveSubstructuredWorkers(ctx, m, s, ls, rt, 0)
}

// SolveSubstructuredWorkers is SolveSubstructured with an explicit host
// worker count for the condensation fan-out (0 selects GOMAXPROCS).
// Results are independent of the worker count: condensations are
// mutually independent and land in per-substructure slots.
func SolveSubstructuredWorkers(ctx context.Context, m *Model, s *Substructured, ls *LoadSet, rt *navm.Runtime, workers int) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	k := len(s.Subs)
	conds := make([]*condensed, k)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	condErrs := make([]error, k)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= k {
					return
				}
				if err := errs.Cancelled(ctx); err != nil {
					condErrs[i] = err
					return
				}
				c, err := condense(m, s.Subs[i], ls)
				if err != nil {
					condErrs[i] = fmt.Errorf("fem: substructure %d: %w", i, err)
					return
				}
				conds[i] = c
			}
		}()
	}
	wg.Wait()
	for _, err := range condErrs {
		if err != nil {
			return nil, err
		}
	}
	// Parallel cost attribution: each condensation runs on its own
	// worker PE (least-loaded, interleaved over clusters), then a
	// barrier gathers the interface contributions at the coordinator.
	if rt != nil {
		pes, err := rt.SolveWorkers(k)
		if err != nil {
			return nil, fmt.Errorf("fem: no live workers for substructure solve: %w", err)
		}
		ids := make([]int, 0, k)
		for i, c := range conds {
			pe := pes[i]
			pe.Charge(c.flops * navm.CyclesPerFlop)
			ids = append(ids, pe.ID)
			// Interface contribution ships to the coordinator.
			words := int64(len(c.sub.Boundary) * (len(c.sub.Boundary) + 1))
			rt.Machine().RemoteFetch(pes[0].ID, pe.Cluster, words)
		}
		rt.Machine().Barrier(ids)
	}

	// Assemble the interface system.
	iface := s.Interface
	ifaceIdx := map[int]int{}
	for i, d := range iface {
		ifaceIdx[d] = i
	}
	n := len(iface)
	sys := linalg.NewDense(n, n)
	rhs := linalg.NewVector(n)
	for _, c := range conds {
		for i, di := range c.sub.Boundary {
			gi := ifaceIdx[di]
			rhs[gi] += c.fb[i]
			for j, dj := range c.sub.Boundary {
				gj := ifaceIdx[dj]
				sys.AddAt(gi, gj, c.schur.At(i, j))
			}
		}
	}
	// Applied loads on interface dofs enter once, here.
	for _, le := range ls.Entries {
		if gi, ok := ifaceIdx[le.DOF]; ok {
			rhs[gi] += le.Value
		}
	}
	var ub linalg.Vector
	if n > 0 {
		if err := errs.Cancelled(ctx); err != nil {
			return nil, err
		}
		var err error
		ub, err = sys.SolveGauss(rhs, nil)
		if err != nil {
			return nil, fmt.Errorf("fem: interface solve: %w", err)
		}
	}

	// Back-substitute interiors: u_i = K_ii⁻¹ (f_i - K_ib u_b).
	u := linalg.NewVector(m.NumDOF())
	for i, d := range iface {
		u[d] = ub[i]
	}
	for _, c := range conds {
		ni := len(c.sub.Internal)
		if ni == 0 {
			continue
		}
		ubLocal := linalg.NewVector(len(c.sub.Boundary))
		for i, d := range c.sub.Boundary {
			ubLocal[i] = u[d]
		}
		t := c.kib.MulVec(ubLocal, nil, nil)
		rhsI := linalg.NewVector(ni)
		for i := range rhsI {
			rhsI[i] = c.fi[i] - t[i]
		}
		ui := c.chol.CholeskySolve(rhsI, nil)
		for i, d := range c.sub.Internal {
			u[d] = ui[i]
		}
	}
	// Condensation factors every interior block afresh each call.
	return &Solution{U: u, Refactored: true}, nil
}
