package fem

import (
	"context"
	"fmt"

	"repro/internal/errs"
	"repro/internal/linalg"
	"repro/internal/navm"
)

// SolveOpts selects and tunes the solution strategy for Solve — the one
// knob set for every way the paper solves a structure.  Exactly one
// execution path applies: Substructured > 0 partitions the model into
// that many vertical bands and condenses them (in parallel on RT when
// attached); otherwise Parallel > 0 runs the Backend's NAVM-distributed
// variant on that many simulated workers; otherwise the Backend runs
// sequentially through the linalg solver registry.
type SolveOpts struct {
	// Backend names the solver engine ("" selects the banded Cholesky
	// baseline); see linalg.Backends for the registry.
	Backend string
	// Precond names the preconditioner for iterative backends ("" for
	// none); see linalg.Preconds.
	Precond string
	// Parallel, when positive, solves with the backend's distributed
	// variant on that many simulated workers (cg, jacobi, and sor have
	// one; the direct backends do not).  Requires RT.
	Parallel int
	// Substructured, when positive, partitions the model into that many
	// vertical bands and condenses them, in parallel when RT is
	// attached.
	Substructured int
	// Tol is the iterative relative-residual tolerance (0 = 1e-8).
	Tol float64
	// MaxIter bounds iterative solvers.  Zero selects the backend's
	// default budget (clamped to linalg.MaxIterCeiling); an explicit
	// value is used as given.
	MaxIter int
	// Omega is the SOR/SSOR relaxation factor (0 = 1.5).
	Omega float64
	// RT is the simulated machine's runtime; required for Parallel,
	// optional (cost attribution only) for Substructured.
	RT *navm.Runtime
	// OnIteration, when non-nil, traces iterative convergence.
	OnIteration func(iter int, resid float64)
}

// iterOpts lowers the solve options to the linalg layer.
func (o SolveOpts) iterOpts() linalg.IterOpts {
	return linalg.IterOpts{
		Tol: o.Tol, MaxIter: o.MaxIter, Omega: o.Omega,
		Precond: o.Precond, OnIteration: o.OnIteration,
	}
}

// backendName resolves the default backend name.
func (o SolveOpts) backendName() string {
	if o.Backend == "" {
		return linalg.BackendCholesky
	}
	return o.Backend
}

// Solution is a solved load case: full displacement vector and the
// unified solver accounting.
type Solution struct {
	// U is the full displacement vector (zeros at fixed dofs).
	U linalg.Vector
	// Backend is the engine that produced U ("substructured" paths echo
	// the interface solver's requested backend).
	Backend string
	// Precond is the preconditioner applied, "" when none.
	Precond string
	// Iterations is 0 for direct solves.
	Iterations int
	// Residual is the relative residual ‖b-Kx‖/‖b‖ of the reduced
	// system (0 where not measured, e.g. substructured solves).
	Residual float64
	// Stats accumulates assembly and solver flops.
	Stats linalg.Stats
	// Refactored reports whether a direct solve computed a fresh
	// factorisation; false when the model's factor cache served a warm
	// factor, in which case the solve cost one triangular solve and
	// Stats carries no factorisation flops.  Iterative and substructured
	// paths never factor a cached plan and always report true.
	Refactored bool
	// Par carries the simulated-machine statistics of a distributed
	// solve; nil for sequential and substructured paths.
	Par *navm.SolveStats
}

// Solve assembles the model and solves it for one load set as SolveOpts
// directs — the AUVM "solve structure model/load set for displacements"
// operation, unified over sequential, NAVM-parallel, and substructured
// execution.  All three paths honour ctx: a cancelled solve returns an
// error wrapping errs.ErrCancelled.
func Solve(ctx context.Context, m *Model, ls *LoadSet, opts SolveOpts) (*Solution, error) {
	if opts.Substructured > 0 {
		// The condensation path performs its own direct solves, so the
		// backend name must still be a real one (usage error on every
		// route) and a preconditioner is rejected rather than silently
		// ignored — mirroring the direct backends.
		if _, err := linalg.Backend(opts.Backend); err != nil {
			return nil, err
		}
		if opts.Precond != "" && opts.Precond != "none" {
			return nil, errs.Usage("substructured solves condense directly and take no preconditioner (%q requested)", opts.Precond)
		}
		s, err := PartitionByX(m, opts.Substructured)
		if err != nil {
			return nil, err
		}
		sol, err := SolveSubstructured(ctx, m, s, ls, opts.RT)
		if err != nil {
			return nil, err
		}
		sol.Backend = opts.backendName()
		return sol, nil
	}
	asm, err := Assemble(m)
	if err != nil {
		return nil, err
	}
	return SolveAssembled(ctx, m, asm, ls, opts)
}

// SolveAssembled solves a pre-assembled system (several load sets can
// share one assembly) sequentially or NAVM-distributed as SolveOpts
// directs.  The substructured route is rejected rather than silently
// ignored: it condenses element blocks instead of solving a global
// assembly, so it only exists on Solve.
func SolveAssembled(ctx context.Context, m *Model, asm *Assembled, ls *LoadSet, opts SolveOpts) (*Solution, error) {
	if opts.Substructured > 0 {
		return nil, errs.Usage("SolveAssembled solves a pre-assembled global system; the substructured path condenses per-substructure blocks instead (use Solve)")
	}
	b, err := m.RHS(ls, asm.Index, len(asm.Free))
	if err != nil {
		return nil, err
	}
	if opts.Parallel > 0 {
		sol, err := solveParallel(ctx, asm, b, opts)
		if err != nil {
			return nil, err
		}
		sol.Refactored = true
		return sol, nil
	}
	// Direct backends route through the model's factor cache (or a
	// context-carried one — the job scheduler's per-model cache), so the
	// production pattern of many solves on one model factors once.
	if _, direct := linalg.PlanOptsFor(opts.backendName()); direct {
		return solveDirectCached(ctx, m, asm, b, opts)
	}
	solver, err := linalg.Backend(opts.Backend)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Refactored: true}
	sol.Stats.Merge(asm.Stats)
	x, info, err := solver.Solve(ctx, asm.K, b, opts.iterOpts())
	sol.Backend = info.Backend
	sol.Precond = info.Precond
	sol.Iterations = info.Iterations
	sol.Residual = info.Residual
	sol.Stats.Flops += info.Flops
	sol.Stats.Iterations += info.Iterations
	if err != nil {
		return nil, err
	}
	sol.U = asm.Expand(x)
	return sol, nil
}

// solveDirectCached is the sequential direct path: solve through a
// cached DirectPlan, factoring only when the assembled values changed
// since the factor was computed.  The cache is the context-carried one
// when present (the job scheduler threads its per-model cache through
// the job context so queued solves on one model share a factorisation,
// whichever session submitted them), the model's own otherwise.  A warm
// result is bit-identical to the cold solve the registry backend would
// have produced.
func solveDirectCached(ctx context.Context, m *Model, asm *Assembled, b linalg.Vector, opts SolveOpts) (*Solution, error) {
	name := opts.backendName()
	if err := linalg.RejectDirectPrecond(name, opts.Precond); err != nil {
		return nil, err
	}
	if err := linalg.CheckCancel(ctx, 1); err != nil {
		return nil, err
	}
	fc, ok := linalg.FactorCacheFromContext(ctx)
	if !ok {
		fc = m.Factors()
	}
	sol := &Solution{}
	sol.Stats.Merge(asm.Stats)
	st := &linalg.Stats{}
	x, refactored, err := fc.SolveCached(name, asm.K, b, st)
	if err != nil {
		return nil, err
	}
	info := linalg.DirectSolveInfo(name, asm.K, x, b, st)
	info.Refactored = refactored
	sol.Backend = info.Backend
	sol.Residual = info.Residual
	sol.Stats.Flops += info.Flops
	sol.Refactored = info.Refactored
	sol.U = asm.Expand(x)
	return sol, nil
}

// solveParallel routes a distributed solve to the backend's NAVM
// variant: cg (the default), jacobi, or multi-colour sor.
func solveParallel(ctx context.Context, asm *Assembled, b linalg.Vector, opts SolveOpts) (*Solution, error) {
	rt := opts.RT
	if rt == nil {
		return nil, fmt.Errorf("fem: parallel solve needs an attached runtime (no parallel machine)")
	}
	backend := opts.Backend
	if backend == "" {
		backend = linalg.BackendCG
	}
	if opts.Precond != "" && opts.Precond != "none" {
		return nil, errs.Usage("distributed %s has no preconditioned variant (%q requested)",
			backend, opts.Precond)
	}
	d, err := navm.Partition(asm.K, b, opts.Parallel)
	if err != nil {
		return nil, err
	}
	// Zero-value fields pass through: each distributed solver applies
	// the same linalg.IterDefaults as its sequential backend.
	iopts := opts.iterOpts()
	iopts.Precond = "" // rejected above; the distributed variants have none
	var x linalg.Vector
	var stats navm.SolveStats
	switch backend {
	case linalg.BackendCG:
		x, stats, err = rt.ParallelCG(ctx, d, iopts)
	case linalg.BackendJacobi:
		x, stats, err = rt.ParallelJacobi(ctx, d, iopts)
	case linalg.BackendSOR:
		x, stats, err = rt.ParallelMultiColorSOR(ctx, d, linalg.GreedyColoring(asm.K), iopts)
	default:
		return nil, errs.Usage("backend %q has no distributed variant (try cg, jacobi, or sor)", backend)
	}
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		Backend:    backend,
		Iterations: stats.Iterations,
		Residual:   stats.ResidualNorm,
		Par:        &stats,
	}
	sol.Stats.Merge(asm.Stats)
	sol.Stats.Flops += stats.Flops
	sol.Stats.Iterations += stats.Iterations
	sol.U = asm.Expand(x)
	return sol, nil
}

// Stresses recovers per-element stress components from a solution — the
// AUVM "calculate stresses" operation.
func Stresses(m *Model, sol *Solution) ([][]float64, error) {
	out := make([][]float64, len(m.Elements))
	for i, e := range m.Elements {
		s, err := e.Stress(m, sol.U)
		if err != nil {
			return nil, fmt.Errorf("fem: stress of element %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// Reactions computes the constrained-dof reaction forces K_full·u at the
// fixed dofs (useful for equilibrium checks: reactions balance applied
// loads).
func Reactions(m *Model, sol *Solution) (map[int]float64, error) {
	reac := map[int]float64{}
	for ei, e := range m.Elements {
		ke, err := e.Stiffness(m)
		if err != nil {
			return nil, fmt.Errorf("fem: element %d: %w", ei, err)
		}
		dofs := ElementDOFs(e)
		for i, gi := range dofs {
			if !m.Fixed(gi) {
				continue
			}
			var f float64
			for j, gj := range dofs {
				f += ke.At(i, j) * sol.U[gj]
			}
			reac[gi] += f
		}
	}
	return reac, nil
}
