package fem

import (
	"fmt"

	"repro/internal/errs"
	"repro/internal/linalg"
	"repro/internal/navm"
)

// Method selects a solution algorithm for Solve.
type Method int

// Solution methods: the sequential baselines and the iterative methods
// the NAVM parallelises.
const (
	// MethodCholesky is the sequential banded direct solver — the
	// 1980s production baseline.
	MethodCholesky Method = iota
	// MethodCG is sequential conjugate gradients.
	MethodCG
	// MethodJacobi is sequential Jacobi iteration.
	MethodJacobi
	// MethodSOR is sequential successive over-relaxation.
	MethodSOR
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodCholesky:
		return "cholesky"
	case MethodCG:
		return "cg"
	case MethodJacobi:
		return "jacobi"
	case MethodSOR:
		return "sor"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Solution is a solved load case: full displacement vector and solver
// accounting.
type Solution struct {
	// U is the full displacement vector (zeros at fixed dofs).
	U linalg.Vector
	// Iterations is 0 for direct solves.
	Iterations int
	// Stats accumulates solver flops.
	Stats linalg.Stats
}

// Solve assembles the model and solves it for one load set with the given
// sequential method — the AUVM "solve structure model/load set for
// displacements" operation.
func Solve(m *Model, ls *LoadSet, method Method) (*Solution, error) {
	asm, err := Assemble(m)
	if err != nil {
		return nil, err
	}
	return SolveAssembled(m, asm, ls, method)
}

// SolveAssembled solves a pre-assembled system (several load sets can
// share one assembly).
func SolveAssembled(m *Model, asm *Assembled, ls *LoadSet, method Method) (*Solution, error) {
	b, err := m.RHS(ls, asm.Index, len(asm.Free))
	if err != nil {
		return nil, err
	}
	sol := &Solution{}
	sol.Stats.Merge(asm.Stats)
	opts := linalg.DefaultIterOpts(asm.K.N)
	var x linalg.Vector
	var iters int
	switch method {
	case MethodCholesky:
		x, err = asm.K.ToBanded().SolveCholesky(b, &sol.Stats)
	case MethodCG:
		x, iters, err = linalg.CG(asm.K, b, opts, &sol.Stats)
	case MethodJacobi:
		opts.MaxIter = 200 * asm.K.N
		x, iters, err = linalg.Jacobi(asm.K, b, opts, &sol.Stats)
	case MethodSOR:
		opts.MaxIter = 100 * asm.K.N
		x, iters, err = linalg.SOR(asm.K, b, opts, &sol.Stats)
	default:
		return nil, fmt.Errorf("%w: fem: unknown method %d", errs.ErrUsage, method)
	}
	if err != nil {
		return nil, err
	}
	sol.U = asm.Expand(x)
	sol.Iterations = iters
	return sol, nil
}

// SolveParallel assembles the model and solves it with the NAVM
// distributed CG on p simulated workers, returning the solution and the
// simulated cost statistics.
func SolveParallel(rt *navm.Runtime, m *Model, ls *LoadSet, p int) (*Solution, navm.SolveStats, error) {
	var zero navm.SolveStats
	asm, err := Assemble(m)
	if err != nil {
		return nil, zero, err
	}
	b, err := m.RHS(ls, asm.Index, len(asm.Free))
	if err != nil {
		return nil, zero, err
	}
	d, err := navm.Partition(asm.K, b, p)
	if err != nil {
		return nil, zero, err
	}
	x, stats, err := rt.ParallelCG(d, linalg.DefaultIterOpts(asm.K.N))
	if err != nil {
		return nil, stats, err
	}
	return &Solution{U: asm.Expand(x), Iterations: stats.Iterations}, stats, nil
}

// Stresses recovers per-element stress components from a solution — the
// AUVM "calculate stresses" operation.
func Stresses(m *Model, sol *Solution) ([][]float64, error) {
	out := make([][]float64, len(m.Elements))
	for i, e := range m.Elements {
		s, err := e.Stress(m, sol.U)
		if err != nil {
			return nil, fmt.Errorf("fem: stress of element %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// Reactions computes the constrained-dof reaction forces K_full·u at the
// fixed dofs (useful for equilibrium checks: reactions balance applied
// loads).
func Reactions(m *Model, sol *Solution) (map[int]float64, error) {
	reac := map[int]float64{}
	for ei, e := range m.Elements {
		ke, err := e.Stiffness(m)
		if err != nil {
			return nil, fmt.Errorf("fem: element %d: %w", ei, err)
		}
		dofs := ElementDOFs(e)
		for i, gi := range dofs {
			if !m.Fixed(gi) {
				continue
			}
			var f float64
			for j, gj := range dofs {
				f += ke.At(i, j) * sol.U[gj]
			}
			reac[gi] += f
		}
	}
	return reac, nil
}
