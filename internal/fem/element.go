package fem

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Bar is a two-node axial (truss) element in the plane.
type Bar struct {
	// N1, N2 are the end node indices.
	N1, N2 int
	// Mat supplies E and A.
	Mat Material
}

// Kind returns "bar".
func (b *Bar) Kind() string { return "bar" }

// Nodes returns the element connectivity.
func (b *Bar) Nodes() []int { return []int{b.N1, b.N2} }

// geometry returns length and direction cosines.
func (b *Bar) geometry(m *Model) (l, c, s float64, err error) {
	p1, p2 := m.Nodes[b.N1], m.Nodes[b.N2]
	dx, dy := p2.X-p1.X, p2.Y-p1.Y
	l = math.Hypot(dx, dy)
	if l == 0 {
		return 0, 0, 0, fmt.Errorf("%w: zero-length bar %d-%d", ErrModel, b.N1, b.N2)
	}
	return l, dx / l, dy / l, nil
}

// Stiffness returns the 4×4 global-coordinate bar stiffness
// k = (EA/L)·[cc cs; cs ss] pattern.
func (b *Bar) Stiffness(m *Model) (*linalg.Dense, error) {
	ke := linalg.NewDense(4, 4)
	if err := b.StiffnessInto(m, ke); err != nil {
		return nil, err
	}
	return ke, nil
}

// StiffnessInto writes the bar stiffness into a caller-owned 4×4 matrix,
// allocating nothing — the assembly workspace's numeric phase calls it
// once per element per re-assembly.
func (b *Bar) StiffnessInto(m *Model, ke *linalg.Dense) error {
	if ke.Rows != 4 || ke.Cols != 4 {
		return fmt.Errorf("%w: bar stiffness into %dx%d", linalg.ErrDimension, ke.Rows, ke.Cols)
	}
	l, c, s, err := b.geometry(m)
	if err != nil {
		return err
	}
	k := b.Mat.E * b.Mat.A / l
	cc, ss, cs := c*c, s*s, c*s
	rows := [4][4]float64{
		{k * cc, k * cs, -k * cc, -k * cs},
		{k * cs, k * ss, -k * cs, -k * ss},
		{-k * cc, -k * cs, k * cc, k * cs},
		{-k * cs, -k * ss, k * cs, k * ss},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			ke.Set(i, j, rows[i][j])
		}
	}
	return nil
}

// Stress returns the single axial stress component (positive in tension).
func (b *Bar) Stress(m *Model, u linalg.Vector) ([]float64, error) {
	l, c, s, err := b.geometry(m)
	if err != nil {
		return nil, err
	}
	u1x, u1y := u[DOF(b.N1, 0)], u[DOF(b.N1, 1)]
	u2x, u2y := u[DOF(b.N2, 0)], u[DOF(b.N2, 1)]
	elong := (u2x-u1x)*c + (u2y-u1y)*s
	return []float64{b.Mat.E * elong / l}, nil
}

// CST is the three-node constant strain triangle in plane stress.
type CST struct {
	// N1, N2, N3 are the corner node indices, counterclockwise.
	N1, N2, N3 int
	// Mat supplies E, Nu, and thickness T.
	Mat Material
}

// Kind returns "cst".
func (t *CST) Kind() string { return "cst" }

// Nodes returns the element connectivity.
func (t *CST) Nodes() []int { return []int{t.N1, t.N2, t.N3} }

// bMatrixAndArea computes the 3×6 strain-displacement matrix and the
// (signed) element area.
func (t *CST) bMatrixAndArea(m *Model) (*linalg.Dense, float64, error) {
	p1, p2, p3 := m.Nodes[t.N1], m.Nodes[t.N2], m.Nodes[t.N3]
	// Signed area via the shoelace formula.
	a2 := (p2.X-p1.X)*(p3.Y-p1.Y) - (p3.X-p1.X)*(p2.Y-p1.Y)
	if a2 == 0 {
		return nil, 0, fmt.Errorf("%w: degenerate CST %d-%d-%d", ErrModel, t.N1, t.N2, t.N3)
	}
	area := a2 / 2
	b1 := p2.Y - p3.Y
	b2 := p3.Y - p1.Y
	b3 := p1.Y - p2.Y
	c1 := p3.X - p2.X
	c2 := p1.X - p3.X
	c3 := p2.X - p1.X
	inv := 1 / a2
	b := linalg.DenseFromRows([][]float64{
		{b1 * inv, 0, b2 * inv, 0, b3 * inv, 0},
		{0, c1 * inv, 0, c2 * inv, 0, c3 * inv},
		{c1 * inv, b1 * inv, c2 * inv, b2 * inv, c3 * inv, b3 * inv},
	})
	return b, area, nil
}

// dMatrix returns the plane stress constitutive matrix.
func (t *CST) dMatrix() *linalg.Dense {
	e, nu := t.Mat.E, t.Mat.Nu
	f := e / (1 - nu*nu)
	return linalg.DenseFromRows([][]float64{
		{f, f * nu, 0},
		{f * nu, f, 0},
		{0, 0, f * (1 - nu) / 2},
	})
}

// Stiffness returns the 6×6 element stiffness k = t·|A|·BᵀDB.
func (t *CST) Stiffness(m *Model) (*linalg.Dense, error) {
	ke := linalg.NewDense(6, 6)
	if err := t.StiffnessInto(m, ke); err != nil {
		return nil, err
	}
	return ke, nil
}

// StiffnessInto writes the CST stiffness k = t·|A|·BᵀDB into a
// caller-owned 6×6 matrix using fixed-size local arrays, allocating
// nothing.  The accumulation order matches the Dense.Mul chain the dense
// path historically used, so both paths produce bit-identical entries.
func (t *CST) StiffnessInto(m *Model, ke *linalg.Dense) error {
	if ke.Rows != 6 || ke.Cols != 6 {
		return fmt.Errorf("%w: CST stiffness into %dx%d", linalg.ErrDimension, ke.Rows, ke.Cols)
	}
	p1, p2, p3 := m.Nodes[t.N1], m.Nodes[t.N2], m.Nodes[t.N3]
	a2 := (p2.X-p1.X)*(p3.Y-p1.Y) - (p3.X-p1.X)*(p2.Y-p1.Y)
	if a2 == 0 {
		return fmt.Errorf("%w: degenerate CST %d-%d-%d", ErrModel, t.N1, t.N2, t.N3)
	}
	area := a2 / 2
	if area < 0 {
		area = -area
	}
	b1, b2, b3 := p2.Y-p3.Y, p3.Y-p1.Y, p1.Y-p2.Y
	c1, c2, c3 := p3.X-p2.X, p1.X-p3.X, p2.X-p1.X
	inv := 1 / a2
	b := [3][6]float64{
		{b1 * inv, 0, b2 * inv, 0, b3 * inv, 0},
		{0, c1 * inv, 0, c2 * inv, 0, c3 * inv},
		{c1 * inv, b1 * inv, c2 * inv, b2 * inv, c3 * inv, b3 * inv},
	}
	e, nu := t.Mat.E, t.Mat.Nu
	f := e / (1 - nu*nu)
	d := [3][3]float64{
		{f, f * nu, 0},
		{f * nu, f, 0},
		{0, 0, f * (1 - nu) / 2},
	}
	// m1 = Bᵀ·D, then ke = (m1·B)·scale, both accumulated in Dense.Mul's
	// i,k,j order with its zero skip.
	var m1 [6][3]float64
	for i := 0; i < 6; i++ {
		for k := 0; k < 3; k++ {
			a := b[k][i]
			if a == 0 {
				continue
			}
			for j := 0; j < 3; j++ {
				m1[i][j] += a * d[k][j]
			}
		}
	}
	scale := t.Mat.T * area
	for i := 0; i < 6; i++ {
		var row [6]float64
		for k := 0; k < 3; k++ {
			a := m1[i][k]
			if a == 0 {
				continue
			}
			for j := 0; j < 6; j++ {
				row[j] += a * b[k][j]
			}
		}
		for j := 0; j < 6; j++ {
			ke.Set(i, j, row[j]*scale)
		}
	}
	return nil
}

// Stress returns the element stress components (σx, σy, τxy), constant
// over the triangle.
func (t *CST) Stress(m *Model, u linalg.Vector) ([]float64, error) {
	b, _, err := t.bMatrixAndArea(m)
	if err != nil {
		return nil, err
	}
	ue := linalg.Vector{
		u[DOF(t.N1, 0)], u[DOF(t.N1, 1)],
		u[DOF(t.N2, 0)], u[DOF(t.N2, 1)],
		u[DOF(t.N3, 0)], u[DOF(t.N3, 1)],
	}
	strain := b.MulVec(ue, nil, nil)
	stress := t.dMatrix().MulVec(strain, nil, nil)
	return []float64(stress), nil
}

// ElementDOFs returns the global dof indices of an element in local
// order.
func ElementDOFs(e Element) []int {
	ns := e.Nodes()
	out := make([]int, 0, DOFPerNode*len(ns))
	for _, n := range ns {
		out = append(out, DOF(n, 0), DOF(n, 1))
	}
	return out
}

// VonMises returns the von Mises equivalent stress for a plane stress
// state (σx, σy, τxy).
func VonMises(s []float64) float64 {
	if len(s) == 1 {
		return math.Abs(s[0]) // bar: axial only
	}
	sx, sy, txy := s[0], s[1], s[2]
	return math.Sqrt(sx*sx - sx*sy + sy*sy + 3*txy*txy)
}
