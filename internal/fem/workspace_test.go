package fem

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/errs"
	"repro/internal/linalg"
)

// csrEqualExact asserts two assembled systems agree element-for-element
// with no tolerance (explicit zeros in one pattern but not the other are
// fine: At reads both as 0).
func csrEqualExact(t *testing.T, label string, a, b *linalg.CSR) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("%s: order %d vs %d", label, a.N, b.N)
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if av, bv := a.At(i, j), b.At(i, j); av != bv {
				t.Fatalf("%s: (%d,%d) = %g vs %g", label, i, j, av, bv)
			}
		}
	}
}

// csrEqualUlps asserts per-entry agreement within a few ulps — the slack
// a reassociated parallel reduction is allowed.
func csrEqualUlps(t *testing.T, label string, a, b *linalg.CSR) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("%s: order %d vs %d", label, a.N, b.N)
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			av, bv := a.At(i, j), b.At(i, j)
			if av == bv {
				continue
			}
			scale := math.Max(math.Abs(av), math.Abs(bv))
			if math.Abs(av-bv) > 4*scale*2.220446049250313e-16 {
				t.Fatalf("%s: (%d,%d) = %.17g vs %.17g", label, i, j, av, bv)
			}
		}
	}
}

// randomModel builds a randomized mesh: a plate or truss generator with
// random dimensions, then jittered node coordinates (same topology,
// perturbed values) and occasionally an extra random stiffening bar.
func randomModel(t *testing.T, rng *rand.Rand) *Model {
	t.Helper()
	var m *Model
	var err error
	if rng.Intn(2) == 0 {
		o := RectGridOpts{
			NX: 2 + rng.Intn(5), NY: 2 + rng.Intn(4),
			W: 1 + 4*rng.Float64(), H: 1 + 3*rng.Float64(),
			Mat: Steel(), ClampLeft: true,
		}
		m, err = RectGrid("rand-plate", o)
	} else {
		m, err = CantileverTruss("rand-truss", 2+rng.Intn(5), 500+500*rng.Float64(), 800, Steel())
	}
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Nodes {
		m.Nodes[i].X += 0.05 * (rng.Float64() - 0.5)
		m.Nodes[i].Y += 0.05 * (rng.Float64() - 0.5)
	}
	if rng.Intn(2) == 0 && len(m.Nodes) >= 4 {
		n1, n2 := rng.Intn(len(m.Nodes)), rng.Intn(len(m.Nodes))
		if n1 != n2 {
			if err := m.AddElement(&Bar{N1: n1, N2: n2, Mat: Steel()}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

// TestWorkspaceMatchesTripletAssembly is the sequential half of the
// differential property: on the fixed plate and bar fixtures the
// workspace scatter path must agree bitwise with the triplet reference
// path (both sum element contributions in the same order).
func TestWorkspaceMatchesTripletAssembly(t *testing.T) {
	plate, err := RectGrid("plate", RectGridOpts{NX: 6, NY: 4, W: 6, H: 4, Mat: Steel(), ClampLeft: true})
	if err != nil {
		t.Fatal(err)
	}
	truss, err := CantileverTruss("truss", 5, 1000, 800, Steel())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Model{plate, truss} {
		ref, err := AssembleTriplets(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Assemble(m)
		if err != nil {
			t.Fatal(err)
		}
		csrEqualExact(t, m.Name, ref.K, got.K)
		if len(got.Free) != len(ref.Free) {
			t.Errorf("%s: free dof count %d vs %d", m.Name, len(got.Free), len(ref.Free))
		}
	}
}

// TestWorkspaceParallelMatchesSequential is the parallel half: across
// randomized meshes and worker counts, the parallel numeric phase agrees
// with the sequential triplet path within a few ulps, and is bitwise
// deterministic for a fixed worker count (per-worker buffers merge in
// worker order).
func TestWorkspaceParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := randomModel(t, rng)
		ref, err := AssembleTriplets(m)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := NewWorkspace(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 4} {
			asm, err := ws.AssembleParallel(workers)
			if err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				csrEqualExact(t, m.Name, ref.K, asm.K)
			} else {
				csrEqualUlps(t, m.Name, ref.K, asm.K)
			}
			first := append([]float64(nil), asm.K.Val...)
			again, err := ws.AssembleParallel(workers)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range again.K.Val {
				if v != first[i] {
					t.Fatalf("%s workers=%d: nondeterministic value at %d: %.17g vs %.17g",
						m.Name, workers, i, v, first[i])
				}
			}
		}
	}
}

// TestWorkspaceReuseTracksValueChanges re-assembles through one
// workspace after node coordinates move: same topology, new values.  The
// result must match a from-scratch build of the moved model exactly.
func TestWorkspaceReuseTracksValueChanges(t *testing.T) {
	m, err := RectGrid("mv", RectGridOpts{NX: 4, NY: 3, W: 4, H: 3, Mat: Steel(), ClampLeft: true})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWorkspace(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Assemble(); err != nil {
		t.Fatal(err)
	}
	for i := range m.Nodes {
		m.Nodes[i].X *= 1.1
		m.Nodes[i].Y *= 0.9
	}
	reused, err := ws.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := AssembleTriplets(m)
	if err != nil {
		t.Fatal(err)
	}
	csrEqualExact(t, "moved", fresh.K, reused.K)
}

// TestWorkspaceAssembleOnceSolveMany covers the retained-workspace
// workflow end to end: one assembly feeding several load sets through
// SolveAssembled must match independent Solve calls.
func TestWorkspaceAssembleOnceSolveMany(t *testing.T) {
	o := RectGridOpts{NX: 5, NY: 3, W: 5, H: 3, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("many", o)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWorkspace(m)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := ws.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, ls := range []*LoadSet{
		EndLoad("a", o, 0, -1000),
		EndLoad("b", o, 500, 0),
		EndLoad("c", o, -200, 300),
	} {
		shared, err := SolveAssembled(ctx, m, asm, ls, SolveOpts{})
		if err != nil {
			t.Fatal(err)
		}
		independent, err := Solve(ctx, m, ls, SolveOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if d := linalg.MaxAbsDiff(shared.U, independent.U); d != 0 {
			t.Errorf("load set %d: shared assembly differs by %g", i, d)
		}
	}
}

// TestSolveAssembledRejectsSubstructured: the substructured route
// condenses instead of using a global assembly, so requesting it on a
// pre-assembled system is a usage error, not a silent fallback.
func TestSolveAssembledRejectsSubstructured(t *testing.T) {
	o := RectGridOpts{NX: 3, NY: 3, W: 3, H: 3, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("rej", o)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	_, err = SolveAssembled(context.Background(), m, asm, EndLoad("l", o, 0, -1), SolveOpts{Substructured: 2})
	if !errors.Is(err, errs.ErrUsage) {
		t.Errorf("Substructured on SolveAssembled: err = %v, want ErrUsage", err)
	}
}

// TestWorkspaceRejectsInvalidModel mirrors Assemble's validation.
func TestWorkspaceRejectsInvalidModel(t *testing.T) {
	if _, err := NewWorkspace(NewModel("empty")); err == nil {
		t.Error("workspace built over empty model")
	}
}

// TestWorkspaceWorkerCountClamped: more workers than elements (or cores)
// must still assemble correctly.
func TestWorkspaceWorkerCountClamped(t *testing.T) {
	m, err := CantileverTruss("small", 1, 100, 100, Steel())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWorkspace(m)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := ws.AssembleParallel(64)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := AssembleTriplets(m)
	if err != nil {
		t.Fatal(err)
	}
	csrEqualExact(t, "clamped", ref.K, asm.K)
}
