package fem

import (
	"context"
	"testing"

	"repro/internal/linalg"
)

// cachePlate builds the small plate fixture the cache tests solve.
func cachePlate(t *testing.T) (*Model, *LoadSet) {
	t.Helper()
	o := RectGridOpts{NX: 6, NY: 4, W: 6, H: 4, Mat: Steel(), ClampLeft: true}
	m, err := RectGrid("plate", o)
	if err != nil {
		t.Fatal(err)
	}
	return m, EndLoad("tip", o, 0, -500)
}

// TestSolveFactorCacheWarmReuse pins the tentpole contract for every
// direct backend: the second solve of an unchanged model rides the
// cached factor (Refactored false, no second factorisation, fewer
// flops) and its solution is bit-identical to the cold solve.
func TestSolveFactorCacheWarmReuse(t *testing.T) {
	for _, backend := range []string{"", linalg.BackendCholesky, linalg.BackendCholeskyRCM, linalg.BackendCholeskyEnv} {
		t.Run("backend="+backend, func(t *testing.T) {
			m, ls := cachePlate(t)
			ctx := context.Background()
			cold, err := Solve(ctx, m, ls, SolveOpts{Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			if !cold.Refactored {
				t.Error("cold solve did not report Refactored")
			}
			if g := m.Factors().Generation(); g != 1 {
				t.Errorf("generation after cold solve = %d, want 1", g)
			}
			warm, err := Solve(ctx, m, ls, SolveOpts{Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Refactored {
				t.Error("warm solve refactored despite unchanged model")
			}
			if g := m.Factors().Generation(); g != 1 {
				t.Errorf("generation after warm solve = %d, want 1", g)
			}
			if warm.Stats.Flops >= cold.Stats.Flops {
				t.Errorf("warm flops %d not below cold %d", warm.Stats.Flops, cold.Stats.Flops)
			}
			for i := range cold.U {
				if warm.U[i] != cold.U[i] {
					t.Fatalf("warm solution differs at dof %d", i)
				}
			}
			// And against a model that never had a cache: bit-identical.
			fresh, lsFresh := cachePlate(t)
			ref, err := Solve(ctx, fresh, lsFresh, SolveOpts{Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.U {
				if warm.U[i] != ref.U[i] {
					t.Fatalf("cached solution differs from fresh-model solve at dof %d", i)
				}
			}
		})
	}
}

// TestSolveFactorCacheInvalidation covers the satellite: reassembling
// after an element property change must refactor (generation bump) and
// produce exactly the fresh-model answer — even though the mutation
// went through an exported field the model could not observe.
func TestSolveFactorCacheInvalidation(t *testing.T) {
	m, ls := cachePlate(t)
	ctx := context.Background()
	if _, err := Solve(ctx, m, ls, SolveOpts{Backend: linalg.BackendCholeskyRCM}); err != nil {
		t.Fatal(err)
	}
	if g := m.Factors().Generation(); g != 1 {
		t.Fatalf("generation after first solve = %d, want 1", g)
	}
	// Soften one element behind the model's back.
	cst, ok := m.Elements[3].(*CST)
	if !ok {
		t.Fatalf("element 3 is %T, want *CST", m.Elements[3])
	}
	cst.Mat.E /= 2
	changed, err := Solve(ctx, m, ls, SolveOpts{Backend: linalg.BackendCholeskyRCM})
	if err != nil {
		t.Fatal(err)
	}
	if !changed.Refactored {
		t.Error("solve after property change did not refactor")
	}
	if g := m.Factors().Generation(); g != 2 {
		t.Errorf("generation after property change = %d, want 2", g)
	}
	// The refactored answer equals a never-cached solve of the changed
	// model bit for bit.
	fresh, lsFresh := cachePlate(t)
	fresh.Elements[3].(*CST).Mat.E /= 2
	ref, err := Solve(ctx, fresh, lsFresh, SolveOpts{Backend: linalg.BackendCholeskyRCM})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.U {
		if changed.U[i] != ref.U[i] {
			t.Fatalf("refactored solution differs from fresh solve at dof %d", i)
		}
	}
	// Topology change: the plan is rebuilt, not refactored in place.
	// The new node hangs off two existing grid nodes so the system stays
	// positive definite.
	nn := m.AddNode(7, 0)
	for _, other := range []int{len(m.Nodes) - 2, len(m.Nodes) - 3} {
		if err := m.AddElement(&Bar{N1: nn, N2: other, Mat: Steel()}); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := Solve(ctx, m, ls, SolveOpts{Backend: linalg.BackendCholeskyRCM})
	if err != nil {
		t.Fatal(err)
	}
	if !grown.Refactored {
		t.Error("solve after topology change did not refactor")
	}
	if len(grown.U) != m.NumDOF() {
		t.Errorf("solution length %d, want %d", len(grown.U), m.NumDOF())
	}
	// Touch releases the cache; the next solve factors again.
	m.Touch()
	after, err := Solve(ctx, m, ls, SolveOpts{Backend: linalg.BackendCholeskyRCM})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Refactored {
		t.Error("solve after Touch did not refactor")
	}
}

// TestSolveContextCarriedCache checks a context-carried cache outranks
// the model's own — the channel the job scheduler shares one cache per
// model name across sessions.
func TestSolveContextCarriedCache(t *testing.T) {
	m, ls := cachePlate(t)
	shared := &linalg.FactorCache{}
	ctx := linalg.NewFactorCacheContext(context.Background(), shared)
	if _, err := Solve(ctx, m, ls, SolveOpts{}); err != nil {
		t.Fatal(err)
	}
	if g := shared.Generation(); g != 1 {
		t.Errorf("shared cache generation = %d, want 1", g)
	}
	if g := m.Factors().Generation(); g != 0 {
		t.Errorf("model cache generation = %d, want 0 (context cache should have served)", g)
	}
	// A second model with identical assembly shares the factor through
	// the same context cache.
	m2, ls2 := cachePlate(t)
	sol, err := Solve(ctx, m2, ls2, SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Refactored {
		t.Error("identical model through shared cache refactored")
	}
	if g := shared.Generation(); g != 1 {
		t.Errorf("shared cache generation after second model = %d, want 1", g)
	}
}

// TestSolveCachedPathOptionGuards pins the cached path's error
// behaviour to the registry backends': preconditioners are rejected,
// unknown backends are usage errors, cancellation is honoured.
func TestSolveCachedPathOptionGuards(t *testing.T) {
	m, ls := cachePlate(t)
	ctx := context.Background()
	if _, err := Solve(ctx, m, ls, SolveOpts{Backend: linalg.BackendCholesky, Precond: "jacobi"}); err == nil {
		t.Error("direct solve accepted a preconditioner")
	}
	if _, err := Solve(ctx, m, ls, SolveOpts{Backend: "no-such"}); err == nil {
		t.Error("unknown backend accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Solve(cancelled, m, ls, SolveOpts{}); err == nil {
		t.Error("cancelled direct solve succeeded")
	}
}
